// amr_serve: batched partitioner-as-a-service front-end (DESIGN.md §17).
//
// Drives serve::Server with a deterministic synthetic job stream spanning
// mesh distributions x seeds x sizes x machine presets x rank counts x
// partitioner variants x application alphas, and measures the service
// under three regimes:
//
//   cold    -- every unique job once against an empty cache (mesh-level
//              sharing already engages: many jobs share a mesh),
//   warm    -- the identical stream again on the same server: every job
//              must hit the partition cache,
//   nocache -- the same stream on a cache-disabled server: the reference
//              each cached result is compared against BIT FOR BIT.
//
// Reports jobs/s and p50/p99 service latency from the server's
// obs::LatencyHistogram and emits BENCH_serve.json. Exit is non-zero if
//   * any cached result diverges from the uncached reference (a single
//     mismatched offset or metric double fails the run),
//   * the warm pass is not >= 1.5x faster than the cold pass,
//   * the warm pass missed the partition cache even once.
//
// Usage: amr_serve [--dispatchers N] [--queue N] [--json PATH] [--smoke]
// --smoke shrinks the stream (72 unique jobs instead of 576) for CI and
// the perturbed-TSan job; gates are identical.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "machine/machine_model.hpp"
#include "serve/serve.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace amr;

namespace {

/// Deterministic unique-job stream. Every axis that changes a cache key is
/// represented, so the run exercises mesh sharing (many jobs per mesh) and
/// key separation (no two distinct model inputs may share cuts).
std::vector<serve::JobSpec> build_stream(bool smoke) {
  using octree::PointDistribution;
  const std::vector<PointDistribution> distributions = {
      PointDistribution::kNormal, PointDistribution::kLogNormal,
      PointDistribution::kUniform};
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{7} : std::vector<std::uint64_t>{7, 21};
  const std::vector<std::size_t> points =
      smoke ? std::vector<std::size_t>{2000} : std::vector<std::size_t>{2000, 6000};
  std::vector<std::string> machines;
  for (const machine::MachinePreset& preset : machine::preset_registry()) {
    if (preset.paper_machine) machines.emplace_back(preset.name);
  }
  if (smoke) machines.resize(2);  // wisconsin8/titan keep both network regimes
  const std::vector<int> ranks = {8, 32};
  const std::vector<double> alphas = {8.0, 24.0};
  struct Variant {
    serve::Partitioner partitioner;
    double tolerance;
  };
  const std::vector<Variant> variants = {
      {serve::Partitioner::kTreeSort, 0.0},
      {serve::Partitioner::kTreeSort, 0.3},
      {serve::Partitioner::kOptiPart, 0.0},
  };

  std::vector<serve::JobSpec> stream;
  for (const PointDistribution distribution : distributions) {
    for (const std::uint64_t seed : seeds) {
      for (const std::size_t n : points) {
        serve::MeshSpec mesh;
        mesh.points = n;
        mesh.distribution = distribution;
        mesh.seed = seed;
        mesh.max_level = 8;
        for (const std::string& machine : machines) {
          for (const int p : ranks) {
            for (const Variant& variant : variants) {
              for (const double alpha : alphas) {
                serve::JobSpec job;
                job.mesh = mesh;
                job.machine = machine;
                job.ranks = p;
                job.partitioner = variant.partitioner;
                job.tolerance = variant.tolerance;
                job.profile.alpha = alpha;
                stream.push_back(std::move(job));
              }
            }
          }
        }
      }
    }
  }
  return stream;
}

/// Bitwise result identity: every offset and every metric double must
/// match exactly. Any tolerance here would let a cache bug hide.
bool same_result(const serve::JobResult& a, const serve::JobResult& b) {
  return a.cuts.offsets == b.cuts.offsets && a.metrics.work == b.metrics.work &&
         a.metrics.boundary == b.metrics.boundary &&
         a.metrics.degree == b.metrics.degree && a.metrics.w_max == b.metrics.w_max &&
         a.metrics.c_max == b.metrics.c_max && a.metrics.m_max == b.metrics.m_max &&
         a.metrics.load_imbalance == b.metrics.load_imbalance &&
         a.metrics.comm_imbalance == b.metrics.comm_imbalance &&
         a.metrics.total_boundary == b.metrics.total_boundary &&
         a.predicted_seconds == b.predicted_seconds &&
         a.mesh_elements == b.mesh_elements;
}

struct Pass {
  double seconds = 0.0;
  std::vector<serve::JobResult> results;
};

Pass run_pass(serve::Server& server, const std::vector<serve::JobSpec>& stream) {
  Pass pass;
  const util::Timer timer;
  std::vector<std::future<serve::JobResult>> futures;
  futures.reserve(stream.size());
  for (const serve::JobSpec& job : stream) futures.push_back(server.submit(job));
  pass.results.reserve(stream.size());
  for (std::future<serve::JobResult>& future : futures) {
    pass.results.push_back(future.get());
  }
  pass.seconds = timer.seconds();
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  serve::ServerOptions options;
  options.dispatchers = static_cast<int>(args.get_int("dispatchers", 4));
  options.queue_capacity = static_cast<std::size_t>(args.get_int("queue", 32));
  const std::string json_path = args.get("json", "BENCH_serve.json");

  const std::vector<serve::JobSpec> stream = build_stream(smoke);
  std::printf("amr_serve: %zu unique jobs, %d dispatchers, queue %zu%s\n",
              stream.size(), options.dispatchers, options.queue_capacity,
              smoke ? " (smoke)" : "");

  serve::Server server(options);
  const Pass cold = run_pass(server, stream);
  const serve::ServerStats cold_stats = server.stats();
  const Pass warm = run_pass(server, stream);
  const serve::ServerStats stream_stats = server.stats();

  serve::ServerOptions nocache_options = options;
  nocache_options.cache_enabled = false;
  serve::Server reference(nocache_options);
  const Pass nocache = run_pass(reference, stream);

  // --- cross-regime divergence ---
  std::size_t divergent = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (!same_result(cold.results[i], nocache.results[i]) ||
        !same_result(warm.results[i], nocache.results[i])) {
      ++divergent;
    }
  }
  // And the standalone inline helper agrees with the service (spot check a
  // stride to keep it cheap).
  for (std::size_t i = 0; i < stream.size(); i += 37) {
    if (!same_result(serve::execute_job(stream[i]), cold.results[i])) ++divergent;
  }

  const std::uint64_t warm_hits =
      stream_stats.partition_cache_hits - cold_stats.partition_cache_hits;
  const double warm_speedup = warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
  const double cold_jobs_per_s = static_cast<double>(stream.size()) / cold.seconds;
  const double warm_jobs_per_s = static_cast<double>(stream.size()) / warm.seconds;
  // bench_diff gates "advantage"-named fields portably (cross-host), so
  // those must be deterministic. The raw warm/cold ratio is timing noise
  // (the warm pass takes microseconds) and goes out under a neutral name;
  // what gates is whether the binary's own bars were cleared: 1.0 when
  // they were, proportionally less the moment caching or bitwise
  // fidelity regresses.
  const double warm_gate_advantage = std::min(warm_speedup, 1.5) / 1.5;
  const double fidelity_advantage =
      static_cast<double>(stream.size() - std::min(divergent, stream.size())) /
      static_cast<double>(stream.size());
  const double warm_hit_advantage =
      static_cast<double>(warm_hits) / static_cast<double>(stream.size());

  util::Table table({"pass", "seconds", "jobs/s", "p50 (us)", "p99 (us)"});
  table.add_row({"cold", util::Table::fmt(cold.seconds, 3),
                 util::Table::fmt(cold_jobs_per_s, 1),
                 util::Table::fmt(static_cast<double>(cold_stats.latency_ns.p50()) / 1e3, 1),
                 util::Table::fmt(static_cast<double>(cold_stats.latency_ns.p99()) / 1e3, 1)});
  table.add_row({"warm", util::Table::fmt(warm.seconds, 3),
                 util::Table::fmt(warm_jobs_per_s, 1), "-", "-"});
  table.add_row({"stream", util::Table::fmt(cold.seconds + warm.seconds, 3),
                 util::Table::fmt(2.0 * static_cast<double>(stream.size()) /
                                      (cold.seconds + warm.seconds),
                                  1),
                 util::Table::fmt(static_cast<double>(stream_stats.latency_ns.p50()) / 1e3, 1),
                 util::Table::fmt(static_cast<double>(stream_stats.latency_ns.p99()) / 1e3, 1)});
  bench::emit(table, args, "serve", "partition service (" +
                                        std::to_string(stream.size()) +
                                        " unique jobs/pass)");
  std::printf("warm speedup %.1fx; mesh cache %llu hits / %llu misses; partition "
              "cache %llu hits / %llu misses; divergent results: %zu\n",
              warm_speedup,
              static_cast<unsigned long long>(stream_stats.mesh_cache_hits),
              static_cast<unsigned long long>(stream_stats.mesh_cache_misses),
              static_cast<unsigned long long>(stream_stats.partition_cache_hits),
              static_cast<unsigned long long>(stream_stats.partition_cache_misses),
              divergent);

  std::ofstream json(json_path);
  bench::write_bench_preamble(json, "serve", 1);
  json << "  \"unique_jobs\": " << stream.size()
       << ",\n  \"dispatchers\": " << options.dispatchers
       << ",\n  \"queue_capacity\": " << options.queue_capacity
       << ",\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"cold_seconds\": " << cold.seconds
       << ",\n  \"warm_seconds\": " << warm.seconds
       << ",\n  \"nocache_seconds\": " << nocache.seconds
       << ",\n  \"cold_jobs_per_s\": " << cold_jobs_per_s
       << ",\n  \"warm_jobs_per_s\": " << warm_jobs_per_s
       << ",\n  \"warm_over_cold_x\": " << warm_speedup
       << ",\n  \"warm_gate_advantage\": " << warm_gate_advantage
       << ",\n  \"warm_hit_advantage\": " << warm_hit_advantage
       << ",\n  \"bitwise_fidelity_advantage\": " << fidelity_advantage
       << ",\n  \"cold_latency\": ";
  cold_stats.latency_ns.to_json(json);
  json << ",\n  \"stream_latency\": ";
  stream_stats.latency_ns.to_json(json);
  json << ",\n  \"mesh_cache_hits\": " << stream_stats.mesh_cache_hits
       << ",\n  \"mesh_cache_misses\": " << stream_stats.mesh_cache_misses
       << ",\n  \"partition_cache_hits\": " << stream_stats.partition_cache_hits
       << ",\n  \"partition_cache_misses\": " << stream_stats.partition_cache_misses
       << ",\n  \"warm_partition_hits\": " << warm_hits
       << ",\n  \"result_divergence\": " << divergent << "\n}\n";
  json.close();
  std::printf("wrote %s\n", json_path.c_str());

  int rc = 0;
  if (divergent != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu jobs returned cached results that differ from the "
                 "uncached computation\n",
                 divergent);
    rc = 1;
  }
  if (warm_speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: warm pass only %.2fx faster than cold (< 1.5x): the "
                 "artifact cache is not engaging\n",
                 warm_speedup);
    rc = 1;
  }
  if (warm_hits != stream.size()) {
    std::fprintf(stderr,
                 "FAIL: warm pass hit the partition cache %llu/%zu times -- "
                 "some cache key is unstable across identical jobs\n",
                 static_cast<unsigned long long>(warm_hits), stream.size());
    rc = 1;
  }
  return rc;
}
