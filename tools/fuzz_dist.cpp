// Differential fuzz driver for the distributed layer.
//
// Modes:
//   fuzz_dist                          run the built-in seed corpus
//   fuzz_dist --corpus DIR             run every case line in DIR/*.case
//   fuzz_dist --random 20 --seed 7     time-boxed random fuzzing (seconds)
//   fuzz_dist --stall-demo             deliberately stall a cohort under a
//                                      short watchdog with the flight
//                                      recorder on; exits 0 iff the
//                                      DeadlockError diagnostic carries the
//                                      per-rank last-events dump
//
// Every case is printed as its one-line spec before it runs, so any
// failure (including a crash) identifies the case to replay. Failures
// print `FUZZ-FAIL: <spec line>` followed by the oracle summary -- paste
// the line into a .case file to pin it as a regression. Exit code 0 iff
// every case passed.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fuzz/harness.hpp"
#include "obs/recorder.hpp"
#include "simmpi/runtime.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"

namespace {

using amr::fuzz::CaseResult;
using amr::fuzz::CaseSpec;

struct Totals {
  int run = 0;
  int failed = 0;
};

void report(const CaseResult& result, Totals& totals) {
  ++totals.run;
  if (result.ok()) return;
  ++totals.failed;
  std::cout << "FUZZ-FAIL: " << amr::fuzz::to_string(result.spec) << "\n"
            << result.oracles.summary() << std::endl;
}

bool run_one(const CaseSpec& spec, bool verbose, Totals& totals) {
  if (verbose) {
    std::cout << "case: " << amr::fuzz::to_string(spec) << std::endl;
  }
  const CaseResult result = amr::fuzz::run_case(spec);
  report(result, totals);
  return result.ok();
}

int run_corpus_dir(const std::string& dir, bool verbose, Totals& totals) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".case") files.push_back(entry.path());
  }
  if (ec) {
    std::cerr << "fuzz_dist: cannot read corpus directory " << dir << ": "
              << ec.message() << std::endl;
    return 1;
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "fuzz_dist: no .case files in " << dir << std::endl;
    return 1;
  }
  for (const fs::path& file : files) {
    std::ifstream in(file);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const std::size_t hash = line.find('#');
      const std::string body = hash == std::string::npos ? line : line.substr(0, hash);
      if (body.find_first_not_of(" \t\r") == std::string::npos) continue;
      const auto spec = amr::fuzz::case_from_string(line);
      if (!spec.has_value()) {
        std::cerr << "fuzz_dist: " << file.string() << ":" << lineno
                  << ": malformed case line: " << line << std::endl;
        ++totals.run;
        ++totals.failed;
        continue;
      }
      run_one(*spec, verbose, totals);
    }
  }
  return 0;
}

/// Provoke a watchdog expiry with the flight recorder armed: rank 1 does
/// a little recorded work and then receives a message rank 0 never sends.
/// The DeadlockError must carry each rank's last-events tail -- the
/// post-mortem a real hang at scale would produce.
int run_stall_demo() {
  namespace obs = amr::obs;
  namespace simmpi = amr::simmpi;
  obs::set_mode(obs::RecordMode::kFlight);
  obs::clear();

  simmpi::ContextOptions options;
  options.watchdog = std::chrono::milliseconds(250);
  options.perturb_seed = 0;
  try {
    simmpi::run_ranks(2, options, [](simmpi::Comm& comm) {
      {
        AMR_SPAN("stall_demo.setup");
        AMR_COUNTER("stall_demo.rank", comm.rank());
      }
      if (comm.rank() == 1) {
        AMR_INSTANT("stall_demo.before_recv");
        (void)comm.recv<std::uint8_t>(0, 7);  // never sent: stalls
      }
      comm.barrier();
    });
  } catch (const simmpi::DeadlockError& e) {
    const std::string what = e.what();
    std::cout << what << std::endl;
    const bool has_dump = what.find("flight recorder") != std::string::npos &&
                          what.find("stall_demo.before_recv") != std::string::npos;
    std::cout << "stall-demo: flight-recorder dump "
              << (has_dump ? "present" : "MISSING") << std::endl;
    return has_dump ? 0 : 1;
  }
  std::cout << "stall-demo: cohort did not stall (expected DeadlockError)"
            << std::endl;
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const amr::util::Args args(argc, argv);
  const bool verbose = args.get_bool("verbose", false);
  Totals totals;

  if (args.has("stall-demo")) {
    return run_stall_demo();
  }
  if (args.has("corpus")) {
    const int rc = run_corpus_dir(args.get("corpus", ""), verbose, totals);
    if (rc != 0) return rc;
  } else if (args.has("random")) {
    const double seconds = args.get_double("random", 10.0);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 1));
    amr::util::Rng rng = amr::util::make_rng(seed);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(seconds);
    std::cout << "fuzz_dist: random mode, " << seconds << "s, seed " << seed
              << std::endl;
    while (std::chrono::steady_clock::now() < deadline) {
      const CaseSpec spec = amr::fuzz::random_case(rng);
      // Always announce random cases: if the process dies (sanitizer abort,
      // crash), the last printed line is the reproducer.
      if (!run_one(spec, /*verbose=*/true, totals)) break;
    }
  } else {
    for (const CaseSpec& spec : amr::fuzz::seed_corpus()) {
      run_one(spec, verbose, totals);
    }
  }

  std::cout << "fuzz_dist: " << totals.run << " case(s), " << totals.failed
            << " failure(s)" << std::endl;
  return totals.failed == 0 ? 0 : 1;
}
