// bench_diff: the perf-regression gate over BENCH_*.json files.
//
// Two modes:
//   bench_diff BASELINE.json CANDIDATE.json
//       compare one pair
//   bench_diff --baseline-dir DIR CANDIDATE.json [CANDIDATE2.json ...]
//       compare each candidate against the same-named file in DIR
//       (candidates with no baseline are reported and skipped)
//
// Options:
//   --threshold=R   wrong-direction ratio that flags a row (default 1.5)
//   --min-time=S    noise floor in seconds for wall-time rows (default 1e-4)
//   --show-ok       print within-threshold rows too
//
// Exit codes: 0 no regression, 1 regression found, 2 parse/IO error,
// 3 incommensurable runs (bench name / build type / AMR_THREADS differ).
// CI runs this after the smoke benches with the committed baselines
// snapshot as --baseline-dir (see .github/workflows/ci.yml).

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_diff.hpp"
#include "util/args.hpp"
#include "util/json.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitError = 2;
constexpr int kExitIncommensurable = 3;

amr::util::Json load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return amr::util::Json::parse(buffer.str());
}

}  // namespace

int main(int argc, char** argv) {
  const amr::util::Args args(argc, argv);

  amr::obs::BenchDiffOptions options;
  options.ratio_threshold = args.get_double("threshold", options.ratio_threshold);
  options.min_time_seconds = args.get_double("min-time", options.min_time_seconds);
  const bool show_ok = args.get_bool("show-ok", false);
  const std::string baseline_dir = args.get("baseline-dir", "");

  std::vector<std::pair<std::string, std::string>> pairs;  // (baseline, candidate)
  if (!baseline_dir.empty()) {
    if (args.positional().empty()) {
      std::cerr << "bench_diff: --baseline-dir needs candidate files\n";
      return kExitError;
    }
    for (const std::string& candidate : args.positional()) {
      const std::filesystem::path base =
          std::filesystem::path(baseline_dir) /
          std::filesystem::path(candidate).filename();
      if (!std::filesystem::exists(base)) {
        std::cout << "bench_diff: no baseline for "
                  << std::filesystem::path(candidate).filename().string()
                  << " in " << baseline_dir << "; skipping\n";
        continue;
      }
      pairs.emplace_back(base.string(), candidate);
    }
  } else {
    if (args.positional().size() != 2) {
      std::cerr << "usage: bench_diff BASELINE.json CANDIDATE.json\n"
                   "       bench_diff --baseline-dir DIR CANDIDATE.json ...\n";
      return kExitError;
    }
    pairs.emplace_back(args.positional()[0], args.positional()[1]);
  }

  int exit_code = kExitOk;
  for (const auto& [baseline_path, candidate_path] : pairs) {
    amr::util::Json baseline;
    amr::util::Json candidate;
    try {
      baseline = load_json(baseline_path);
      candidate = load_json(candidate_path);
    } catch (const std::exception& e) {
      std::cerr << "bench_diff: " << e.what() << "\n";
      return kExitError;
    }

    std::cout << "== " << baseline_path << " vs " << candidate_path << "\n";
    const amr::obs::DiffReport report =
        amr::obs::diff_bench(baseline, candidate, options);
    amr::obs::print_report(std::cout, report, show_ok);
    if (report.incommensurable) return kExitIncommensurable;
    if (report.regressions > 0) exit_code = kExitRegression;
  }
  return exit_code;
}
