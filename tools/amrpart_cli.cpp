// amrpart: command-line driver over the library.
//
//   amrpart machines
//       List the machine-model presets and their parameters.
//   amrpart partition [--elements N] [--p P] [--machine M] [--curve C]
//                     [--algo optipart|treesort|heuristic|ideal]
//                     [--tolerance T] [--vtk out.vtk] [--csv out.csv]
//       Generate an adaptive octree, partition it, print quality metrics.
//   amrpart sweep     [--elements N] [--p P] [--machine M] [--curve C]
//       Tolerance sweep: imbalance / NNZ / ghost volume / modeled time.
//   amrpart simulate  [--n N] [--p P] [--machine M] [--tolerance T] [--k K]
//       Cluster-scale TreeSort partitioning simulation (Eq. 1/2 costs).
//   amrpart place     [--elements N] [--p P] [--torus-x/y/z D] [--cores-per-node C]
//       Rank placement on a torus: SFC vs linear vs random, hops and
//       link congestion against the real communication matrix.
//
// Everything the CLI does goes through the public library API; it exists
// so the partitioner can be explored without writing a program.
#include <cstdio>
#include <string>

#include "alloc/placement.hpp"
#include "io/vtk.hpp"
#include "machine/perf_model.hpp"
#include "mesh/adjacency.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "partition/heuristic.hpp"
#include "partition/optipart.hpp"
#include "sim/splitter_sim.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace amr;

namespace {

int usage() {
  std::printf(
      "usage: amrpart <command> [options]\n"
      "commands:\n"
      "  machines                         list machine presets\n"
      "  partition [--elements N] [--p P] [--machine M] [--curve C]\n"
      "            [--algo optipart|treesort|heuristic|ideal] [--tolerance T]\n"
      "            [--seed S] [--distribution D] [--vtk F] [--csv F]\n"
      "  sweep     [--elements N] [--p P] [--machine M] [--curve C]\n"
      "  simulate  [--n N] [--p P] [--machine M] [--tolerance T] [--k K]\n"
      "  place     [--elements N] [--p P] [--torus-x X ...] [--cores-per-node C]\n");
  return 2;
}

int cmd_machines() {
  util::Table table({"name", "tc (s/B)", "ts (s)", "tw (s/B)", "tw/tc",
                     "cores/node", "nodes", "idle W", "W/core"});
  for (const auto& preset : machine::preset_registry()) {
    const machine::MachineModel m = preset.make();
    table.add_row({m.name, util::Table::fmt(m.tc, 12), util::Table::fmt(m.ts, 8),
                   util::Table::fmt(m.tw, 12), util::Table::fmt(m.tw / m.tc, 1),
                   std::to_string(m.cores_per_node), std::to_string(m.total_nodes),
                   util::Table::fmt(m.idle_watts, 0),
                   util::Table::fmt(m.core_active_watts, 1)});
  }
  table.print("machine presets:");
  for (const auto& preset : machine::preset_registry()) {
    std::printf("  %-11s %s\n", preset.name, preset.summary);
  }
  return 0;
}

struct Workload {
  sfc::Curve curve;
  std::vector<octree::Octant> tree;
};

Workload build_workload(const util::Args& args) {
  const sfc::Curve curve(sfc::curve_kind_from_string(args.get("curve", "hilbert")), 3);
  octree::GenerateOptions gen;
  gen.distribution =
      octree::distribution_from_string(args.get("distribution", "normal"));
  gen.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  gen.max_level = static_cast<int>(args.get_int("max-level", 9));
  gen.max_points_per_leaf = static_cast<std::size_t>(args.get_int("leaf", 1));
  auto tree = octree::random_octree(
      static_cast<std::size_t>(args.get_int("elements", 50000)), curve, gen);
  if (args.get_bool("balance", true)) {
    tree = octree::balance_octree(std::move(tree), curve);
  }
  return Workload{curve, std::move(tree)};
}

int cmd_partition(const util::Args& args) {
  const Workload w = build_workload(args);
  const int p = static_cast<int>(args.get_int("p", 32));
  const machine::MachineModel machine =
      machine::machine_by_name(args.get("machine", "clemson32"));
  machine::ApplicationProfile app;
  app.alpha = args.get_double("alpha", 8.0);
  app.include_latency_term = args.get_bool("latency-term", false);
  const machine::PerfModel model(machine, app);

  const std::string algo = args.get("algo", "optipart");
  partition::Partition part;
  if (algo == "optipart") {
    part = partition::optipart_partition(w.tree, w.curve, p, model);
  } else if (algo == "treesort") {
    partition::TreeSortPartitionOptions options;
    options.tolerance = args.get_double("tolerance", 0.3);
    part = partition::treesort_partition(w.tree, w.curve, p, options);
  } else if (algo == "heuristic") {
    partition::HeuristicOptions options;
    options.coarsen_levels = static_cast<int>(args.get_int("coarsen", 2));
    part = partition::heuristic_coarse_partition(w.tree, w.curve, p, options);
  } else if (algo == "ideal") {
    part = partition::ideal_partition(w.tree.size(), p);
  } else {
    std::printf("unknown --algo %s\n", algo.c_str());
    return 2;
  }

  const auto adjacency = mesh::build_adjacency(w.tree, w.curve);
  const auto metrics = mesh::metrics_from_adjacency(adjacency, part);
  const auto comm = mesh::comm_matrix_from_adjacency(adjacency, part);

  util::Table table({"metric", "value"});
  table.add_row({"elements", std::to_string(w.tree.size())});
  table.add_row({"ranks", std::to_string(p)});
  table.add_row({"algorithm", algo});
  table.add_row({"machine", machine.name});
  table.add_row({"lambda (work max/min)", util::Table::fmt(metrics.load_imbalance, 4)});
  table.add_row({"achieved tolerance", util::Table::fmt(part.max_deviation(), 4)});
  table.add_row({"Wmax (elements)", util::Table::fmt(metrics.w_max, 0)});
  table.add_row({"Cmax (boundary octants)", util::Table::fmt(metrics.c_max, 0)});
  table.add_row({"comm matrix NNZ", std::to_string(comm.nnz())});
  table.add_row({"ghost volume (elements)", util::Table::fmt(comm.total_elements(), 0)});
  table.add_row({"max peers per rank", util::Table::fmt(metrics.m_max, 0)});
  table.add_row(
      {"modeled matvec (us)", util::Table::fmt(metrics.predicted_time(model) * 1e6, 3)});
  table.print("partition quality:");

  if (args.has("csv")) {
    (void)table.write_csv(args.get("csv", "partition.csv"));
  }
  if (args.has("vtk")) {
    std::vector<io::CellField> fields(2);
    fields[0].name = "rank";
    fields[1].name = "level";
    for (std::size_t i = 0; i < w.tree.size(); ++i) {
      fields[0].values.push_back(part.owner_of(i));
      fields[1].values.push_back(w.tree[i].level);
    }
    const std::string path = args.get("vtk", "partition.vtk");
    if (io::write_vtk(path, w.tree, fields)) {
      std::printf("wrote %s\n", path.c_str());
    }
  }
  return 0;
}

int cmd_sweep(const util::Args& args) {
  const Workload w = build_workload(args);
  const int p = static_cast<int>(args.get_int("p", 32));
  const machine::MachineModel machine =
      machine::machine_by_name(args.get("machine", "clemson32"));
  const machine::PerfModel model(machine, machine::ApplicationProfile{});
  const auto adjacency = mesh::build_adjacency(w.tree, w.curve);

  util::Table table({"tolerance", "lambda", "Cmax", "NNZ", "ghost volume",
                     "modeled matvec (us)"});
  for (double tol = 0.0; tol <= 0.5001; tol += 0.05) {
    partition::TreeSortPartitionOptions options;
    options.tolerance = tol;
    const auto part = partition::treesort_partition(w.tree, w.curve, p, options);
    const auto metrics = mesh::metrics_from_adjacency(adjacency, part);
    const auto comm = mesh::comm_matrix_from_adjacency(adjacency, part);
    table.add_row({util::Table::fmt(tol, 2), util::Table::fmt(metrics.load_imbalance, 3),
                   util::Table::fmt(metrics.c_max, 0), std::to_string(comm.nnz()),
                   util::Table::fmt(comm.total_elements(), 0),
                   util::Table::fmt(metrics.predicted_time(model) * 1e6, 2)});
  }
  table.print("tolerance sweep (" + std::string(sfc::to_string(w.curve.kind())) +
              ", p=" + std::to_string(p) + ", " + machine.name + "):");
  return 0;
}

int cmd_place(const util::Args& args) {
  const Workload w = build_workload(args);
  const int p = static_cast<int>(args.get_int("p", 256));
  alloc::TorusConfig torus;
  torus.dims = {static_cast<int>(args.get_int("torus-x", 8)),
                static_cast<int>(args.get_int("torus-y", 8)),
                static_cast<int>(args.get_int("torus-z", 8))};
  torus.cores_per_node = static_cast<int>(args.get_int("cores-per-node", 16));

  const auto part = partition::ideal_partition(w.tree.size(), p);
  const auto adjacency = mesh::build_adjacency(w.tree, w.curve);
  const auto comm = mesh::comm_matrix_from_adjacency(adjacency, part);

  util::Table table({"placement", "avg hops", "max hops", "on-node (%)",
                     "hot link (elems)", "links used"});
  for (const auto strategy : {alloc::PlacementStrategy::kSfc,
                              alloc::PlacementStrategy::kLinear,
                              alloc::PlacementStrategy::kRandom}) {
    const auto placement = alloc::place_ranks(p, torus, strategy, w.curve.kind(),
                                              static_cast<std::uint64_t>(
                                                  args.get_int("seed", 42)));
    const auto hops = alloc::evaluate_placement(comm, placement, torus);
    const auto congestion = alloc::evaluate_congestion(comm, placement, torus);
    table.add_row({alloc::to_string(strategy), util::Table::fmt(hops.average_hops, 3),
                   std::to_string(hops.max_hops),
                   util::Table::fmt(100.0 * hops.on_node_fraction, 1),
                   util::Table::fmt(congestion.max_link_load, 0),
                   std::to_string(congestion.links_used)});
  }
  table.print("rank placement on " + std::to_string(torus.dims[0]) + "x" +
              std::to_string(torus.dims[1]) + "x" + std::to_string(torus.dims[2]) +
              " torus, p=" + std::to_string(p) + ":");
  return 0;
}

int cmd_simulate(const util::Args& args) {
  sim::SimConfig config;
  config.n = static_cast<std::uint64_t>(args.get_int("n", 1'000'000'000));
  config.p = static_cast<int>(args.get_int("p", 4096));
  config.tolerance = args.get_double("tolerance", 0.0);
  config.staged_splitters = static_cast<int>(args.get_int("k", 0));
  config.curve = sfc::curve_kind_from_string(args.get("curve", "hilbert"));
  const machine::MachineModel machine =
      machine::machine_by_name(args.get("machine", "titan"));

  const sim::SimResult treesort = sim::simulate_treesort(config, machine);
  const sim::SimResult samplesort = sim::simulate_samplesort(config, machine);

  util::Table table({"algorithm", "levels", "local (s)", "splitter (s)", "all2all (s)",
                     "total (s)", "achieved tol"});
  table.add_row({"TreeSort/OptiPart", std::to_string(treesort.levels_used),
                 util::Table::fmt(treesort.time.local_sort, 4),
                 util::Table::fmt(treesort.time.splitter, 4),
                 util::Table::fmt(treesort.time.all2all, 4),
                 util::Table::fmt(treesort.time.total(), 4),
                 util::Table::fmt(treesort.achieved_tolerance, 4)});
  table.add_row({"SampleSort", "-", util::Table::fmt(samplesort.time.local_sort, 4),
                 util::Table::fmt(samplesort.time.splitter, 4),
                 util::Table::fmt(samplesort.time.all2all, 4),
                 util::Table::fmt(samplesort.time.total(), 4), "0"});
  table.print("partitioning simulation: N=" + std::to_string(config.n) +
              ", p=" + std::to_string(config.p) + ", machine=" + machine.name + ":");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string& command = args.positional().front();
  try {
    if (command == "machines") return cmd_machines();
    if (command == "partition") return cmd_partition(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "place") return cmd_place(args);
    if (command == "simulate") return cmd_simulate(args);
  } catch (const std::exception& e) {
    std::printf("error: %s\n", e.what());
    return 1;
  }
  return usage();
}
