// amr_report: run the instrumented distributed pipeline with tracing
// enabled and emit the observability artifacts (DESIGN.md §11):
//
//   * trace.json  -- Chrome trace_event timeline (chrome://tracing or
//                    https://ui.perfetto.dev), one process row per
//                    simulated rank;
//   * report.json -- the unified RunMetrics tree (cost ledgers, fem phase
//                    timings, partition quality, simulated energy) plus
//                    the model-validation rows;
//   * stdout      -- a pretty predicted/measured/ratio table per phase.
//
// The validation rows audit the paper's Eq. 3 machinery against the
// instrumented reality: TreeSort phases are priced with Eq. 2's
// breakdown, the matvec and multigrid epochs with the overlap-aware Eq. 3
// extension, and the ghost/balance rounds with tw on the volume the cost
// ledger actually attributed to them. By default the machine constants
// tc/tw are calibrated from this host's memcpy bandwidth (simmpi's
// "network" is a memcpy through shared memory), so ratios are meaningful;
// pass --machine <preset> to price against a paper machine instead.
//
// Every registered application family (app/application.hpp) is also
// alpha-calibrated on this host (§3.3) -- the per-app rows land in
// report.json under metrics.apps, which is where the application-aware
// partitioning claim gets its measured inputs.
//
// Run: ./tools/amr_report [--p 4] [--points-per-rank 2000]
//      [--iterations 10] [--mg-iterations 2] [--driver-steps 3]
//      [--trace trace.json] [--report report.json] [--band-low 0.1]
//      [--band-high 10] [--machine host|titan|...]
//      [--alpha 8|<value>|auto] [--require-complete] [--json [PATH]]
//
// --json additionally emits the validation rows and the per-app alpha
// calibration machine-readably (to PATH, or to stdout after the table
// when given bare) so CI asserts on rows instead of grepping the table.
//
// --driver-steps runs a short dynamic-AMR driver campaign (moving-Gaussian
// scenario, adapt -> diff -> incremental repartition -> solve) so the trace
// and the validation table also cover the driver's own spans (driver.adapt,
// driver.diff) and report.json carries the per-step "driver" subtree; 0
// skips the stage.
//
// --alpha sets the application profile's accesses-per-element; "auto"
// prices the report with the matvec application's re-measured alpha (the
// same app::Application::measure_alpha probe the per-app calibration rows
// use) so the model is fed by the engine actually being validated.
//
// Exit codes: 0 ok; 2 when --require-complete is set and an expected
// phase was never measured (instrumentation rot -- CI fails on it).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "app/application.hpp"
#include "app/multigrid.hpp"
#include "driver/driver.hpp"
#include "energy/sampler.hpp"
#include "machine/machine_model.hpp"
#include "machine/perf_model.hpp"
#include "mesh/mesh.hpp"
#include "obs/metrics.hpp"
#include "obs/model_validation.hpp"
#include "obs/recorder.hpp"
#include "obs/trace_export.hpp"
#include "octree/adapt.hpp"
#include "octree/generate.hpp"
#include "octree/octant.hpp"
#include "partition/metrics.hpp"
#include "simmpi/dist_balance.hpp"
#include "simmpi/dist_fem.hpp"
#include "simmpi/dist_mesh.hpp"
#include "simmpi/dist_octree.hpp"
#include "simmpi/dist_treesort.hpp"
#include "simmpi/runtime.hpp"
#include "util/args.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

using namespace amr;

namespace {

/// Probe mesh for the §3.3 alpha calibration: every registered application
/// is timed on the same small adaptive mesh against the host's memcpy
/// stream rate. Built (and probed) before tracing is enabled.
mesh::GlobalMesh build_alpha_probe_mesh(const sfc::Curve& curve) {
  octree::GenerateOptions gen;
  gen.distribution = octree::PointDistribution::kNormal;
  gen.seed = 12345;
  return mesh::build_global_mesh(octree::random_octree(60000, curve, gen), curve);
}

/// Per-message cost of simmpi's transport (a mutex+condvar handoff, not a
/// NIC): timed over a short two-rank ping-pong, with tracing still off.
double measure_simmpi_ts() {
  const int msgs = 1000;
  const auto t0 = std::chrono::steady_clock::now();
  simmpi::run_ranks(2, [&](simmpi::Comm& comm) {
    std::vector<std::uint8_t> one(8, 1);
    for (int i = 0; i < msgs; ++i) {
      if (comm.rank() == 0) {
        comm.send<std::uint8_t>(one, 1, 0);
        (void)comm.recv<std::uint8_t>(1, 0);
      } else {
        (void)comm.recv<std::uint8_t>(0, 0);
        comm.send<std::uint8_t>(one, 0, 0);
      }
    }
  });
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return std::max(1.0e-7, s / (2.0 * msgs));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int p = static_cast<int>(args.get_int("p", 4));
  const std::size_t per_rank =
      static_cast<std::size_t>(args.get_int("points-per-rank", 2000));
  const int iterations = static_cast<int>(args.get_int("iterations", 10));
  const int mg_iterations = static_cast<int>(args.get_int("mg-iterations", 2));
  const int driver_steps = static_cast<int>(args.get_int("driver-steps", 3));
  const std::string trace_path = args.get("trace", "trace.json");
  const std::string report_path = args.get("report", "report.json");
  const std::string machine_name = args.get("machine", "host");
  const bool require_complete = args.get_bool("require-complete", false);
  const std::string json_out = args.get("json", "");

  obs::ValidationOptions validation_options;
  validation_options.band_low = args.get_double("band-low", validation_options.band_low);
  validation_options.band_high =
      args.get_double("band-high", validation_options.band_high);

  // --- machine model ---------------------------------------------------
  // "host": wisconsin8's node shape and power constants, but tc/tw from
  // this machine's measured memory bandwidth (and a thread-wakeup-scale
  // ts) so predicted/measured ratios are about the model, not about the
  // gap between this host and a 2016 testbed.
  machine::MachineModel machine;
  double host_bw = 0.0;
  if (machine_name == "host") {
    machine = machine::wisconsin8();
    machine.name = "host-calibrated";
    host_bw = machine::measure_memcpy_bandwidth();
    machine.tc = 1.0 / host_bw;
    machine.tw = 1.0 / host_bw;
    machine.ts = measure_simmpi_ts();
  } else {
    machine = machine::machine_by_name(machine_name);
  }
  machine::ApplicationProfile profile;  // alpha=8, 8 B/element
  profile.include_latency_term = true;  // simmpi is latency-dominated

  // Per-application alpha calibration (§3.3): every registered family on
  // the same probe mesh against the host stream rate. These are the
  // measured inputs of the application-aware partitioning claim; they land
  // in report.json under metrics.apps.
  if (host_bw == 0.0) host_bw = machine::measure_memcpy_bandwidth();
  struct AppAlpha {
    const app::Application* application = nullptr;
    double measured = 0.0;
  };
  std::vector<AppAlpha> app_alphas;
  {
    const sfc::Curve probe_curve(sfc::CurveKind::kHilbert, 3);
    const mesh::GlobalMesh probe_mesh = build_alpha_probe_mesh(probe_curve);
    for (const app::Application* application : app::all_applications()) {
      const double measured =
          application->measure_alpha(probe_mesh, probe_curve, host_bw);
      app_alphas.push_back({application, measured});
      std::printf("alpha[%s] measured on this host: %.2f (nominal %.1f)\n",
                  application->name(), measured, application->profile().alpha);
    }
  }

  const std::string alpha_arg = args.get("alpha", "");
  if (alpha_arg == "auto") {
    profile.alpha = app_alphas.front().measured;  // the matvec epoch's app
  } else if (!alpha_arg.empty()) {
    profile.alpha = args.get_double("alpha", profile.alpha);
  }
  const machine::PerfModel model(machine, profile);

  // --- instrumented pipeline ------------------------------------------
  obs::set_enabled(true);
  obs::clear();

  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  std::vector<std::vector<octree::Octant>> pieces(static_cast<std::size_t>(p));
  std::vector<mesh::LocalMesh> meshes(static_cast<std::size_t>(p));
  std::vector<simmpi::DistFemReport> fem_reports(static_cast<std::size_t>(p));

  const simmpi::RunResult run =
      simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
        octree::GenerateOptions gen;
        gen.seed = 100 + static_cast<std::uint64_t>(comm.rank());
        gen.distribution = octree::PointDistribution::kNormal;
        auto points = octree::generate_points(per_rank, gen);

        simmpi::DistOctreeOptions build;
        build.max_points_per_leaf = 4;
        build.max_level = 8;
        auto built =
            simmpi::dist_points_to_octree(std::move(points), comm, curve, build);

        built.leaves = simmpi::dist_balance_octree(
            std::move(built.leaves), built.splitters, comm, curve, nullptr);

        const mesh::LocalMesh mesh = simmpi::dist_build_local_mesh(
            built.leaves, built.splitters, comm, curve, nullptr);

        std::vector<double> u(mesh.elements.size());
        for (std::size_t i = 0; i < u.size(); ++i) {
          const auto a = mesh.elements[i].anchor_unit();
          u[i] = std::sin(6.28 * a[0]) * std::cos(6.28 * a[1]);
        }
        const auto fem_report =
            simmpi::dist_matvec_loop_overlapped(mesh, comm, iterations, u);

        const auto r = static_cast<std::size_t>(comm.rank());
        pieces[r] = std::move(built.leaves);
        meshes[r] = mesh;
        fem_reports[r] = fem_report;
      });

  // --- multigrid epoch --------------------------------------------------
  // The second application family over the same local meshes: a few
  // distributed V-cycles (app/multigrid.hpp), so the trace and validation
  // table also cover the mg.* span taxonomy -- the overlapped fine-level
  // halo (mg.post/mg.interior/mg.wait/mg.boundary) plus the rank-local
  // coarse hierarchy (mg.coarse).
  std::vector<app::EpochReport> mg_reports(static_cast<std::size_t>(p));
  simmpi::RunResult mg_run;
  if (mg_iterations > 0) {
    mg_run = simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
      const auto r = static_cast<std::size_t>(comm.rank());
      std::vector<double> u(meshes[r].elements.size());
      for (std::size_t i = 0; i < u.size(); ++i) {
        const auto a = meshes[r].elements[i].anchor_unit();
        u[i] = std::sin(6.28 * a[0]) * std::cos(6.28 * a[1]);
      }
      mg_reports[r] =
          app::multigrid_app().run_epoch(meshes[r], curve, comm, mg_iterations, u);
    });
  }

  // --- incremental adapt epoch ----------------------------------------
  // One AMR step on the pipeline's own leaves: every rank refines ~1% of
  // its slice (delete a leaf, insert its children), the delta is spliced
  // by sorted-merge (sort.merge spans) and the migration-aware OptiPart
  // decides keep-vs-adopt (part.migrate spans) -- so the report audits the
  // incremental path (DESIGN.md §13) alongside the from-scratch pipeline.
  std::vector<simmpi::DistIncrementalReport> inc_reports(static_cast<std::size_t>(p));
  std::vector<simmpi::RepartitionDecision> inc_decisions(static_cast<std::size_t>(p));
  std::vector<std::size_t> inc_local_sizes(static_cast<std::size_t>(p));
  const simmpi::RunResult inc_run = simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    auto local = pieces[r];
    // Re-derive the previous epoch's splitter state over the same stream
    // (tolerance 0), then key the slice it leaves behind.
    const auto prev = simmpi::dist_treesort(local, comm, curve);
    auto keys = sfc::keys_of(curve, local);

    octree::DeltaStream delta;
    if (!local.empty()) {
      util::Rng rng = util::make_rng(4242, comm.rank());
      const std::size_t refines = std::max<std::size_t>(1, local.size() / 900);
      std::vector<std::size_t> positions;
      for (std::size_t i = 0; i < refines; ++i) {
        positions.push_back(rng() % local.size());
      }
      std::sort(positions.begin(), positions.end());
      positions.erase(std::unique(positions.begin(), positions.end()),
                      positions.end());
      for (const std::size_t pos : positions) {
        if (local[pos].level >= octree::kMaxDepth) continue;
        delta.delete_positions.push_back(pos);
        for (int c = 0; c < curve.num_children(); ++c) {
          delta.inserts.push_back(local[pos].child(c, curve.dim()));
        }
      }
    }
    inc_reports[r] = simmpi::dist_optipart_incremental(
        local, keys, comm, curve, model, prev.splitter_set, delta, {}, nullptr,
        &inc_decisions[r]);
    inc_local_sizes[r] = local.size();
  });

  // --- dynamic driver campaign -----------------------------------------
  // A short amr::Driver campaign so the trace covers the dynamic-AMR
  // loop's own spans (driver.adapt, driver.diff) and the report carries
  // the per-step "driver" subtree (DESIGN.md §14). CFL-ish partial sweep:
  // the Gaussian moves about a fine cell per step, keeping the deltas in
  // the sorted-merge regime the incremental route audits above.
  const driver::Scenario scenario =
      driver::make_scenario(driver::ScenarioKind::kMovingGaussian, 3);
  driver::DriverOptions driver_options;
  driver::CampaignResult campaign;
  if (driver_steps > 0) {
    driver_options.ranks = p;
    driver_options.steps = driver_steps;
    driver_options.min_level = 2;
    driver_options.max_level = 5;
    driver_options.t_end = 0.05 * driver_steps;
    driver_options.deref_count = 1;
    driver_options.matvec_iterations = 1;
    driver::Driver drv(scenario, curve, model, driver_options);
    campaign = drv.run();
  }

  const obs::Snapshot snap = obs::snapshot();
  const auto phases = obs::aggregate_phases(snap);

  // --- predictions -----------------------------------------------------
  // Per-rank extremes the bulk-synchronous model prices.
  std::size_t w_max = 0, interior_max = 0, boundary_max = 0, ghost_sent_max = 0;
  std::size_t m_max = 0;
  for (int r = 0; r < p; ++r) {
    const auto& mesh = meshes[static_cast<std::size_t>(r)];
    w_max = std::max(w_max, mesh.elements.size());
    boundary_max = std::max(boundary_max, mesh.boundary_elements.size());
    interior_max = std::max(
        interior_max, mesh.elements.size() - mesh.boundary_elements.size());
    m_max = std::max(m_max, mesh.peers.size());
    ghost_sent_max = std::max(
        ghost_sent_max,
        static_cast<std::size_t>(
            fem_reports[static_cast<std::size_t>(r)].ghost_elements_sent));
  }
  const double c_max_per_iter =
      iterations > 0 ? static_cast<double>(ghost_sent_max) / iterations : 0.0;

  std::vector<obs::PhaseExpectation> expected;
  {
    // Eq. 2 breakdown for the TreeSort that partitioned the point cells.
    const double n_points = static_cast<double>(per_rank) * p;
    const double levels_est =
        std::max(1.0, std::ceil(std::log(std::max(2.0, n_points)) /
                                std::log(static_cast<double>(curve.num_children()))));
    const auto tb = model.treesort_breakdown(
        n_points, p, p, static_cast<double>(sizeof(octree::Octant)), levels_est);
    expected.push_back({"treesort.local_sort", tb.local_sort});
    expected.push_back({"treesort.splitter", tb.splitter});
    expected.push_back({"treesort.exchange", tb.all2all});

    // Overlap-aware Eq. 3 for the matvec epoch (latency extension on:
    // each of the M peer messages costs a ts handoff).
    const auto step = model.application_time_overlapped(
        static_cast<double>(interior_max), static_cast<double>(boundary_max),
        c_max_per_iter, static_cast<double>(m_max));
    expected.push_back(
        {"matvec.interior", model.compute_time(static_cast<double>(interior_max)) *
                                iterations});
    expected.push_back(
        {"matvec.boundary", model.compute_time(static_cast<double>(boundary_max)) *
                                iterations});
    expected.push_back({"matvec.wait", step.exposed_comm * iterations});

    // The engine's own phases: fem.interior/fem.tail are the kernel time
    // inside the matvec.interior/boundary wrappers (same prices), and
    // fem.plan is the once-per-rank SoA build -- roughly three passes over
    // the largest rank's matvec footprint (read the AoS faces, write the
    // SoA CSR, extract the diagonal).
    expected.push_back(
        {"fem.interior", model.compute_time(static_cast<double>(interior_max)) *
                             iterations});
    expected.push_back(
        {"fem.tail", model.compute_time(static_cast<double>(boundary_max)) *
                         iterations});
    std::size_t plan_bytes_max = 0;
    for (const auto& mesh : meshes) {
      plan_bytes_max = std::max(
          plan_bytes_max, mesh.gather_refs.size() * 20 +
                              mesh.wall_coeffs.size() * 8 + mesh.elements.size() * 24);
    }
    expected.push_back(
        {"fem.plan", machine.tc * 3.0 * static_cast<double>(plan_bytes_max)});

    // Multigrid epoch. The fine level runs pre + 1 (residual) + post
    // overlapped halo'd applies per V-cycle -- on every rank, whatever its
    // local hierarchy depth (the wire-schedule invariant) -- so the fine
    // phases are priced exactly like the matvec's, scaled by that count.
    // The coarse correction is rank-local: price mg.coarse by replaying
    // the coarsening ladder over each rank's slice and charging the
    // Jacobi/residual applies each coarse level actually runs.
    if (mg_iterations > 0) {
      const app::MultigridOptions mg_options;
      const double fine_applies =
          static_cast<double>(mg_options.pre_smooth + 1 + mg_options.post_smooth) *
          mg_iterations;
      const auto mg_step = model.application_time_overlapped(
          static_cast<double>(interior_max), static_cast<double>(boundary_max),
          c_max_per_iter, static_cast<double>(m_max));
      expected.push_back(
          {"mg.interior",
           model.compute_time(static_cast<double>(interior_max)) * fine_applies});
      expected.push_back(
          {"mg.boundary",
           model.compute_time(static_cast<double>(boundary_max)) * fine_applies});
      expected.push_back({"mg.wait", mg_step.exposed_comm * fine_applies});

      int mg_levels_max = 1;
      for (const auto& rep : mg_reports) mg_levels_max = std::max(mg_levels_max, rep.levels);
      if (mg_levels_max > 1) {
        double coarse_work_max = 0.0;
        for (const auto& mesh : meshes) {
          std::vector<std::size_t> level_sizes{mesh.elements.size()};
          std::vector<octree::Octant> fine(mesh.elements.begin(), mesh.elements.end());
          while (level_sizes.size() <
                 static_cast<std::size_t>(mg_options.max_levels)) {
            auto coarse = octree::coarsen_octree(fine, curve, 1);
            if (coarse.size() == fine.size() ||
                coarse.size() < mg_options.min_coarse_elements) {
              break;
            }
            level_sizes.push_back(coarse.size());
            fine = std::move(coarse);
          }
          double work = 0.0;
          for (std::size_t l = 1; l < level_sizes.size(); ++l) {
            const bool bottom = l + 1 == level_sizes.size();
            const double applies =
                bottom ? static_cast<double>(mg_options.coarse_sweeps)
                       : static_cast<double>(mg_options.pre_smooth + 1 +
                                             mg_options.post_smooth);
            work += applies * static_cast<double>(level_sizes[l]);
          }
          coarse_work_max = std::max(coarse_work_max, work);
        }
        expected.push_back(
            {"mg.coarse", model.compute_time(coarse_work_max) * mg_iterations});
      }
    }

    // Incremental adapt epoch: the merge splice streams the largest
    // post-split slice once through memory, octants plus the 128-bit key
    // cache, read + write (Eq. 2's bandwidth term specialized to one merge
    // pass).
    std::size_t inc_w_max = 0;
    for (const std::size_t s : inc_local_sizes) inc_w_max = std::max(inc_w_max, s);
    expected.push_back(
        {"sort.merge",
         machine.tc * 2.0 * static_cast<double>(inc_w_max) *
             static_cast<double>(sizeof(octree::Octant) + sizeof(sfc::CurveKey))});

    // part.migrate: two migration-quality sweeps (previous cuts and the
    // refined candidate), each streaming the slice once to classify every
    // octant and its face neighbors against the cuts (7 lookups in 3D),
    // then a 4p-section uint64 reduction.
    expected.push_back(
        {"part.migrate",
         2.0 * (machine.tc * 7.0 * static_cast<double>(inc_w_max) *
                    static_cast<double>(sizeof(sfc::CurveKey)) +
                machine.tw * 32.0 * p + machine.ts)});

    // Driver campaign spans. driver.adapt is dominated by the error
    // estimate -- seven scenario evaluations per leaf (six face samples
    // plus the center), priced like an alpha-weighted compute pass --
    // with the structural passes (coarsen/refine/balance) folded in as a
    // second sweep. driver.diff is the keyed two-pointer walk over the
    // old and new sorted trees, one streaming pass over both.
    if (driver_steps > 0 && !campaign.steps.empty()) {
      double adapted_leaves = 0.0;
      for (const driver::StepMetrics& m : campaign.steps) {
        if (!m.first_epoch) adapted_leaves += static_cast<double>(m.leaves);
      }
      expected.push_back(
          {"driver.adapt", 2.0 * model.compute_time(7.0 * adapted_leaves)});
      expected.push_back(
          {"driver.diff",
           machine.tc * 2.0 * adapted_leaves *
               static_cast<double>(sizeof(octree::Octant) + sizeof(sfc::CurveKey))});
    }

    // Volume-priced rounds: tw on the bytes and ts on the messages the
    // ledger attributed to the phase (averaged per rank -- the counters
    // sum over ranks).
    std::vector<const char*> volume_phases{"mesh.push", "mesh.keep", "mesh.ids",
                                           "balance.ripple", "matvec.post"};
    if (mg_iterations > 0) volume_phases.push_back("mg.post");
    for (const char* phase : volume_phases) {
      const auto it = phases.find(phase);
      const double bytes =
          it != phases.end() ? static_cast<double>(it->second.comm_bytes) / p : 0.0;
      const double msgs =
          it != phases.end() ? static_cast<double>(it->second.comm_messages) / p : 0.0;
      expected.push_back({phase, machine.tw * bytes + machine.ts * msgs});
    }
  }

  const obs::ModelValidationReport validation =
      obs::validate_model(snap, expected, validation_options);

  // --- unified metrics tree -------------------------------------------
  obs::RunMetrics metrics("run");
  {
    auto& config = metrics.child("config");
    config.set("ranks", p);
    config.set("points_per_rank", static_cast<double>(per_rank));
    config.set("iterations", iterations);

    append_ledgers(metrics.child("comm"), run.ledgers);

    // Matvec epoch timings: the max over ranks of each phase (what the
    // bulk-synchronous epoch costs) plus rank 0's full report.
    simmpi::DistFemReport slowest;
    for (const auto& r : fem_reports) {
      slowest.compute_seconds = std::max(slowest.compute_seconds, r.compute_seconds);
      slowest.exchange_seconds = std::max(slowest.exchange_seconds, r.exchange_seconds);
      slowest.post_seconds = std::max(slowest.post_seconds, r.post_seconds);
      slowest.exchange_wait_seconds =
          std::max(slowest.exchange_wait_seconds, r.exchange_wait_seconds);
      slowest.interior_compute_seconds =
          std::max(slowest.interior_compute_seconds, r.interior_compute_seconds);
      slowest.boundary_compute_seconds =
          std::max(slowest.boundary_compute_seconds, r.boundary_compute_seconds);
      slowest.ghost_elements_sent += r.ghost_elements_sent;
    }
    append_fem_report(metrics.child("fem"), slowest);

    // Per-application alpha calibration rows (measured before tracing).
    auto& apps_node = metrics.child("apps");
    for (const AppAlpha& a : app_alphas) {
      auto& child = apps_node.child(a.application->name());
      child.set("alpha_measured", a.measured);
      child.set("alpha_nominal", a.application->profile().alpha);
      child.set("bytes_per_element", a.application->profile().bytes_per_element);
    }

    // Multigrid epoch timings (max over ranks, like the matvec's).
    if (mg_iterations > 0) {
      app::EpochReport mg_slowest;
      int mg_levels_max = 1;
      for (const auto& r : mg_reports) {
        mg_slowest.compute_seconds =
            std::max(mg_slowest.compute_seconds, r.compute_seconds);
        mg_slowest.exchange_seconds =
            std::max(mg_slowest.exchange_seconds, r.exchange_seconds);
        mg_slowest.plan_seconds = std::max(mg_slowest.plan_seconds, r.plan_seconds);
        mg_slowest.ghost_elements_sent += r.ghost_elements_sent;
        mg_levels_max = std::max(mg_levels_max, r.levels);
      }
      auto& mg_node = metrics.child("mg");
      mg_node.set("iterations", mg_iterations);
      mg_node.set("compute_seconds", mg_slowest.compute_seconds);
      mg_node.set("exchange_seconds", mg_slowest.exchange_seconds);
      mg_node.set("plan_seconds", mg_slowest.plan_seconds);
      mg_node.set("ghost_elements_sent",
                  static_cast<double>(mg_slowest.ghost_elements_sent));
      mg_node.set("levels_max", mg_levels_max);
    }

    // Partition quality of the pieces the pipeline actually produced.
    std::vector<octree::Octant> tree;
    partition::Partition part;
    part.offsets.push_back(0);
    for (const auto& piece : pieces) {
      tree.insert(tree.end(), piece.begin(), piece.end());
      part.offsets.push_back(tree.size());
    }
    append_partition_metrics(metrics.child("partition"),
                             partition::compute_metrics(tree, curve, part));
    metrics.child("partition").set("total_leaves", static_cast<double>(tree.size()));

    // The incremental adapt epoch's outcome (decision fields are
    // allreduced, so rank 0's copy is everyone's).
    auto& inc = metrics.child("incremental");
    double merge_seconds = 0.0;
    for (const auto& r : inc_reports) {
      merge_seconds = std::max(merge_seconds, r.merge_seconds);
    }
    inc.set("merge_seconds", merge_seconds);
    inc.set("global_changes", static_cast<double>(inc_reports[0].global_changes));
    inc.set("merge_path", inc_reports[0].merge_path ? 1.0 : 0.0);
    inc.set("kept_previous", inc_decisions[0].kept_previous ? 1.0 : 0.0);
    inc.set("moved_elements", static_cast<double>(inc_decisions[0].moved_elements));
    inc.set("predicted_migration_seconds",
            inc_decisions[0].predicted_migration_seconds);

    // The dynamic driver campaign's per-step ledger (DESIGN.md §14).
    if (driver_steps > 0 && !campaign.steps.empty()) {
      driver::Driver::append_campaign(metrics, campaign, driver_options, scenario);
    }

    // Simulated energy: each rank contributes a compute stretch and a
    // communication stretch (its measured matvec phases) to its node's
    // activity timeline, sampled at the paper's 1 Hz.
    const int nodes =
        std::max(1, (p + machine.cores_per_node - 1) / machine.cores_per_node);
    std::vector<energy::NodeActivity> activity(static_cast<std::size_t>(nodes));
    for (int r = 0; r < p; ++r) {
      const auto& rep = fem_reports[static_cast<std::size_t>(r)];
      auto& node = activity[static_cast<std::size_t>(machine.node_of_rank(r))];
      node.add_compute(0.0, rep.compute_seconds, 1);
      node.add_comm(rep.compute_seconds, rep.compute_seconds + rep.exchange_seconds,
                    static_cast<double>(rep.ghost_elements_sent) * sizeof(double), 1);
    }
    append_energy_report(metrics.child("energy"),
                         energy::measure_energy(activity, machine));

    // Per-phase measurements (seconds are the max over ranks; bytes the
    // ledger-attributed total).
    auto& phase_node = metrics.child("phases");
    for (const auto& [name, agg] : phases) {
      auto& child = phase_node.child(name);
      child.set("max_rank_seconds", agg.max_rank_seconds);
      child.set("total_seconds", agg.total_seconds);
      child.set("spans", static_cast<double>(agg.span_count));
      child.set("comm_bytes", static_cast<double>(agg.comm_bytes));
    }
  }

  // --- artifacts -------------------------------------------------------
  if (!obs::write_chrome_trace_file(trace_path, snap)) return 1;
  {
    std::ofstream out(report_path);
    if (!out) {
      AMR_LOG_ERROR << "amr_report: cannot write " << report_path;
      return 1;
    }
    out << "{\n\"metrics\": ";
    metrics.to_json(out, 1);
    out << ",\n\"validation\": ";
    validation.to_json(out);
    out << "\n}\n";
  }

  // --- stdout ----------------------------------------------------------
  std::uint64_t attributed = 0;
  for (const auto& [name, agg] : phases) attributed += agg.comm_bytes;
  std::uint64_t ledger_total = 0;
  for (const auto& ledger : run.ledgers) ledger_total += ledger.total_bytes_sent();
  for (const auto& ledger : mg_run.ledgers) ledger_total += ledger.total_bytes_sent();
  for (const auto& ledger : inc_run.ledgers) ledger_total += ledger.total_bytes_sent();

  validation.to_table().print("model validation (" + machine.name + ")");
  std::printf("\n%zu trace events (%llu dropped); %llu of %llu ledger bytes "
              "attributed to phases (%.1f%%)\n",
              snap.events.size(), static_cast<unsigned long long>(snap.dropped),
              static_cast<unsigned long long>(attributed),
              static_cast<unsigned long long>(ledger_total),
              ledger_total > 0 ? 100.0 * static_cast<double>(attributed) /
                                     static_cast<double>(ledger_total)
                               : 0.0);
  std::printf("trace:  %s\nreport: %s\n", trace_path.c_str(), report_path.c_str());

  if (!json_out.empty()) {
    std::ofstream json_file;
    std::ostream* jout = &std::cout;
    if (json_out != "true") {  // bare --json parses as "true" -> stdout
      json_file.open(json_out);
      if (!json_file) {
        AMR_LOG_ERROR << "amr_report: cannot write " << json_out;
        return 1;
      }
      jout = &json_file;
    }
    *jout << "{\n\"machine\": \"" << machine.name << "\",\n\"apps\": [\n";
    for (std::size_t i = 0; i < app_alphas.size(); ++i) {
      const AppAlpha& a = app_alphas[i];
      *jout << "  {\"name\": \"" << a.application->name()
            << "\", \"alpha_measured\": " << a.measured
            << ", \"alpha_nominal\": " << a.application->profile().alpha
            << ", \"bytes_per_element\": " << a.application->profile().bytes_per_element
            << "}" << (i + 1 < app_alphas.size() ? ",\n" : "\n");
    }
    *jout << "],\n\"validation\": ";
    validation.to_json(*jout);
    *jout << "}\n";
  }

  if (!validation.complete()) {
    for (const auto& name : validation.missing) {
      std::printf("MISSING phase: %s (expected but never measured)\n", name.c_str());
    }
    if (require_complete) return 2;
  }
  return 0;
}
