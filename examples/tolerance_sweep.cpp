// Example: a miniature of the paper's §5.4/§5.5 study -- sweep the load
// tolerance on one mesh and watch the quality metrics move:
// load/communication imbalance up, NNZ and ghost volume down, and the
// modeled epoch time dip at an interior optimum that OptiPart then finds
// on its own.
//
// Run: ./examples/tolerance_sweep [--elements 60000] [--p 128]
//      [--machine clemson32] [--curve hilbert]
#include <cstdio>

#include "machine/perf_model.hpp"
#include "mesh/comm_matrix.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "partition/optipart.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace amr;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.get_int("elements", 60000));
  const int p = static_cast<int>(args.get_int("p", 128));
  const sfc::Curve curve(sfc::curve_kind_from_string(args.get("curve", "hilbert")), 3);
  const machine::MachineModel machine =
      machine::machine_by_name(args.get("machine", "clemson32"));
  const machine::PerfModel model(machine, machine::ApplicationProfile{});

  octree::GenerateOptions gen;
  gen.seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  const auto tree = octree::balance_octree(octree::random_octree(n, curve, gen), curve);
  std::printf("octree: %zu leaves, p=%d, machine=%s, curve=%s\n\n", tree.size(), p,
              machine.name.c_str(), sfc::to_string(curve.kind()).c_str());

  util::Table table({"tolerance", "lambda", "comm imbalance", "NNZ", "ghost volume",
                     "modeled matvec (us)"});
  double best_time = 1e300;
  double best_tol = 0.0;
  for (double tol = 0.0; tol <= 0.6001; tol += 0.1) {
    partition::TreeSortPartitionOptions options;
    options.tolerance = tol;
    const auto part = partition::treesort_partition(tree, curve, p, options);
    const auto metrics = partition::compute_metrics(tree, curve, part);
    const auto comm = mesh::build_comm_matrix(tree, curve, part);
    const double t = metrics.predicted_time(model);
    if (t < best_time) {
      best_time = t;
      best_tol = tol;
    }
    table.add_row({util::Table::fmt(tol, 1), util::Table::fmt(metrics.load_imbalance, 3),
                   util::Table::fmt(metrics.comm_imbalance, 3),
                   std::to_string(comm.nnz()),
                   util::Table::fmt(comm.total_elements(), 0),
                   util::Table::fmt(t * 1e6, 2)});
  }
  table.print("tolerance sweep:");

  const auto opti = partition::optipart_partition(tree, curve, p, model);
  const auto opti_metrics = partition::compute_metrics(tree, curve, opti);
  std::printf("\nbrute-force best tolerance: %.1f (modeled %.2f us)\n"
              "OptiPart (no sweep needed): achieved tolerance %.3f, modeled %.2f us\n",
              best_tol, best_time * 1e6, opti.max_deviation(),
              opti_metrics.predicted_time(model) * 1e6);
  return 0;
}
