// Example: explicit time stepping of the heat equation du/dt = lap u on an
// adaptive mesh -- "time-dependent problems ... can all be represented as
// a series of matvecs" (paper §5.3). Each forward-Euler step is one
// Laplacian matvec plus an axpy, executed with the distributed engine, so
// the epoch has exactly the communication pattern the paper times.
//
// The demo also shows the footnote-1 point: the heat kernel (matvec +
// 2 vector ops) has a different alpha than the bare matvec, and OptiPart
// consumes that difference.
//
// Run: ./examples/heat_stepping [--elements 15000] [--p 8] [--steps 200]
#include <cmath>
#include <cstdio>

#include "fem/laplacian.hpp"
#include "fem/vector.hpp"
#include "machine/perf_model.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "partition/optipart.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace amr;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.get_int("elements", 15000));
  const int p = static_cast<int>(args.get_int("p", 8));
  const int steps = static_cast<int>(args.get_int("steps", 200));

  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  octree::GenerateOptions gen;
  gen.distribution = octree::PointDistribution::kNormal;
  gen.normal_sigma = 0.1;
  gen.max_level = 7;
  auto tree = octree::balance_octree(octree::random_octree(n, curve, gen), curve);

  // alpha for the heat kernel: the matvec touches the face list, the Euler
  // update streams the vectors twice more.
  machine::ApplicationProfile app;
  app.alpha = args.get_double("alpha", 10.0);
  const machine::PerfModel model(machine::wisconsin8(), app);
  const auto part = partition::optipart_partition(tree, curve, p, model);
  const auto meshes = mesh::build_local_meshes(tree, curve, part);
  const fem::DistributedLaplacian engine(meshes);

  // Initial condition: hot blob at the center.
  std::vector<double> u(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto a = tree[i].anchor_unit();
    const double r2 = (a[0] - 0.5) * (a[0] - 0.5) + (a[1] - 0.5) * (a[1] - 0.5) +
                      (a[2] - 0.5) * (a[2] - 0.5);
    u[i] = std::exp(-r2 / 0.01);
  }

  // The operator is the volume-integrated Laplacian; the pointwise update
  // divides by cell volume. Forward Euler is stable while
  // dt < 2 min_i V_i / diag_i; the diagonal gives the bound exactly, with
  // graded faces and Dirichlet walls included.
  const mesh::GlobalMesh global = mesh::build_global_mesh(tree, curve);
  const std::vector<double> diag = fem::operator_diagonal(global);
  std::vector<double> inv_volume(tree.size());
  double dt = 1.0;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const double h = static_cast<double>(tree[i].size()) /
                     static_cast<double>(1U << octree::kMaxDepth);
    const double volume = h * h * h;
    inv_volume[i] = 1.0 / volume;
    dt = std::min(dt, 0.9 * volume / diag[i]);
  }

  std::printf("heat stepping: %zu elements, %d ranks, dt=%.2e (CFL from the "
              "operator diagonal), %d steps\n",
              tree.size(), p, dt, steps);

  auto pieces = engine.scatter(u);
  std::vector<std::vector<double>> lap;
  util::Timer timer;
  double heat0 = 0.0;
  for (const double v : u) heat0 += v;

  for (int step = 0; step < steps; ++step) {
    engine.matvec(pieces, lap);
    for (int r = 0; r < p; ++r) {
      auto& mine = pieces[static_cast<std::size_t>(r)];
      const auto& flux = lap[static_cast<std::size_t>(r)];
      const std::size_t base = meshes[static_cast<std::size_t>(r)].global_begin;
      for (std::size_t i = 0; i < mine.size(); ++i) {
        mine[i] -= dt * flux[i] * inv_volume[base + i];
      }
    }
  }
  const double elapsed = timer.seconds();
  const auto u_final = engine.gather(pieces);

  double heat1 = 0.0;
  double u_max = 0.0;
  bool finite = true;
  for (const double v : u_final) {
    heat1 += v;
    u_max = std::max(u_max, std::abs(v));
    finite = finite && std::isfinite(v);
  }
  std::printf("after %d steps (%.2f s): peak %.4f (from 1.0), total heat %.4f -> "
              "%.4f (decays through the cold walls), %s\n",
              steps, elapsed, u_max, heat0, heat1,
              finite && u_max <= 1.0 + 1e-9 ? "stable" : "UNSTABLE");
  return finite && u_max <= 1.0 + 1e-9 ? 0 : 1;
}
