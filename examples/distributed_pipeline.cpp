// Example: the fully distributed pipeline -- no rank ever holds a global
// structure, which is how the paper's algorithms run on a real cluster:
//
//   points  --dist_treesort-->  partitioned cells
//           --range-restricted p2o-->  per-rank octree pieces
//           --ripple rounds + shell exchange-->  2:1 balanced pieces
//           --two-round ghost discovery-->  per-rank meshes
//           --overlapped halo exchange-->  matvec epoch
//
// The only shared knowledge between ranks is the splitter key vector
// (p octants), exactly like an MPI production code. A final cross-check
// gathers the pieces and verifies the epoch against the sequential engine.
//
// Run: ./examples/distributed_pipeline [--p 8] [--points-per-rank 4000]
//      [--iterations 20] [--trace trace.json]
#include <cmath>
#include <cstdio>
#include <fstream>

#include "fem/laplacian.hpp"
#include "mesh/mesh.hpp"
#include "obs/recorder.hpp"
#include "obs/trace_export.hpp"
#include "octree/treesort.hpp"
#include "simmpi/dist_balance.hpp"
#include "simmpi/dist_fem.hpp"
#include "simmpi/dist_mesh.hpp"
#include "simmpi/dist_octree.hpp"
#include "simmpi/runtime.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace amr;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int p = static_cast<int>(args.get_int("p", 8));
  const std::size_t per_rank = static_cast<std::size_t>(args.get_int("points-per-rank", 4000));
  const int iterations = static_cast<int>(args.get_int("iterations", 20));
  const std::string trace_path = args.get("trace", "");
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  if (!trace_path.empty()) obs::set_enabled(true);

  std::vector<std::vector<octree::Octant>> pieces(static_cast<std::size_t>(p));
  std::vector<std::vector<double>> results(static_cast<std::size_t>(p));
  std::vector<mesh::LocalMesh> meshes(static_cast<std::size_t>(p));

  util::Timer timer;
  simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
    // Stage 1-2: local points -> this rank's octree piece.
    octree::GenerateOptions gen;
    gen.seed = 100 + static_cast<std::uint64_t>(comm.rank());
    gen.distribution = octree::PointDistribution::kNormal;
    auto points = octree::generate_points(per_rank, gen);

    simmpi::DistOctreeOptions build;
    build.max_points_per_leaf = 4;
    build.max_level = 8;
    auto built = simmpi::dist_points_to_octree(std::move(points), comm, curve, build);

    // Stage 3: distributed 2:1 balance (imbalance ripples across rank
    // boundaries through the shell exchange).
    simmpi::DistBalanceReport balance_report;
    built.leaves = simmpi::dist_balance_octree(std::move(built.leaves),
                                               built.splitters, comm, curve,
                                               &balance_report);

    // Stage 4: ghost discovery, two message rounds.
    simmpi::DistMeshReport mesh_report;
    const mesh::LocalMesh mesh =
        simmpi::dist_build_local_mesh(built.leaves, built.splitters, comm, curve,
                                      &mesh_report);

    // Stage 5: matvec epoch with the overlapped halo exchange -- irecvs
    // and isends posted, interior rows computed while the messages fly,
    // boundary rows after the wait. Bit-identical to the blocking
    // variants, so the sequential cross-check below still holds exactly.
    std::vector<double> u(mesh.elements.size());
    for (std::size_t i = 0; i < u.size(); ++i) {
      const auto a = mesh.elements[i].anchor_unit();
      u[i] = std::sin(6.28 * a[0]) * std::cos(6.28 * a[1]);
    }
    const auto fem_report =
        simmpi::dist_matvec_loop_overlapped(mesh, comm, iterations, u);

    if (comm.rank() == 0) {
      std::printf("rank 0: %zu leaves (balanced in %d rounds, %zu splits), "
                  "%zu ghosts (%zu candidates screened), %llu ghost values "
                  "shipped over %d iterations, %.0f%% of exchange time "
                  "exposed\n",
                  mesh.elements.size(), balance_report.rounds,
                  balance_report.local_splits, mesh.ghosts.size(),
                  mesh_report.candidates_received,
                  static_cast<unsigned long long>(fem_report.ghost_elements_sent),
                  iterations, 100.0 * fem_report.exposed_comm_fraction());
    }
    pieces[static_cast<std::size_t>(comm.rank())] = std::move(built.leaves);
    results[static_cast<std::size_t>(comm.rank())] = std::move(u);
    meshes[static_cast<std::size_t>(comm.rank())] = mesh;
  });
  const double pipeline_s = timer.seconds();
  if (!trace_path.empty()) {
    obs::set_enabled(false);
    std::ofstream out(trace_path);
    obs::write_chrome_trace(out, obs::snapshot());
    std::printf("wrote %s (open at https://ui.perfetto.dev)\n", trace_path.c_str());
  }

  // Cross-check: the gathered pieces form a complete tree, and the epoch
  // matches the sequential engine bit for bit.
  std::vector<octree::Octant> tree;
  for (const auto& piece : pieces) tree.insert(tree.end(), piece.begin(), piece.end());
  const bool complete = octree::is_complete(tree, curve);

  const fem::DistributedLaplacian engine(meshes);
  std::vector<std::vector<double>> ref(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& u = ref[static_cast<std::size_t>(r)];
    u.resize(meshes[static_cast<std::size_t>(r)].elements.size());
    for (std::size_t i = 0; i < u.size(); ++i) {
      const auto a = meshes[static_cast<std::size_t>(r)].elements[i].anchor_unit();
      u[i] = std::sin(6.28 * a[0]) * std::cos(6.28 * a[1]);
    }
  }
  std::vector<std::vector<double>> out;
  for (int it = 0; it < iterations; ++it) {
    engine.matvec(ref, out);
    std::swap(ref, out);
  }
  double worst = 0.0;
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < ref[static_cast<std::size_t>(r)].size(); ++i) {
      worst = std::max(worst, std::abs(ref[static_cast<std::size_t>(r)][i] -
                                       results[static_cast<std::size_t>(r)][i]));
    }
  }

  std::printf("pipeline: %d ranks, %zu total leaves in %.2f s; gathered tree %s;"
              " threaded-vs-sequential max divergence %.1e\n",
              p, tree.size(), pipeline_s, complete ? "complete" : "NOT COMPLETE",
              worst);
  return complete && worst < 1e-12 ? 0 : 1;
}
