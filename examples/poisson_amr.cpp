// Example: solving the 3D Poisson problem (-lap u = f, u = 0 on the walls
// of the unit cube) on an adaptively refined octree -- the paper's test
// application (§5.3) taken all the way to a solution.
//
// The mesh refines around a point source; CG drives the residual down
// using the cell-centered Laplacian; the distributed matvec (the epoch the
// paper times) then runs over real threads via simmpi with an OptiPart
// partition, and the example cross-checks it against the sequential
// reference.
//
// Run: ./examples/poisson_amr [--elements 20000] [--p 8] [--iterations 50]
#include <cmath>
#include <cstdio>

#include "fem/cg.hpp"
#include "fem/laplacian.hpp"
#include "machine/perf_model.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "partition/optipart.hpp"
#include "simmpi/dist_fem.hpp"
#include "simmpi/runtime.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace amr;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.get_int("elements", 20000));
  const int p = static_cast<int>(args.get_int("p", 8));
  const int iterations = static_cast<int>(args.get_int("iterations", 50));

  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  octree::GenerateOptions gen;
  gen.distribution = octree::PointDistribution::kNormal;
  gen.normal_sigma = 0.08;  // tight cluster: strong refinement at center
  gen.max_level = 8;
  auto tree = octree::balance_octree(octree::random_octree(n, curve, gen), curve);

  const mesh::GlobalMesh global = mesh::build_global_mesh(tree, curve);
  std::printf("mesh: %zu elements, %zu interior faces, %zu boundary faces\n",
              global.elements.size(), global.faces.size(),
              global.boundary_faces.size());

  // Source: f = 1 near the center (scaled by cell volume for the FV form).
  std::vector<double> b(global.elements.size(), 0.0);
  for (std::size_t i = 0; i < global.elements.size(); ++i) {
    const auto a = global.elements[i].anchor_unit();
    const double r2 = (a[0] - 0.5) * (a[0] - 0.5) + (a[1] - 0.5) * (a[1] - 0.5) +
                      (a[2] - 0.5) * (a[2] - 0.5);
    if (r2 < 0.05) {
      const double h = static_cast<double>(global.elements[i].size()) /
                       static_cast<double>(1U << octree::kMaxDepth);
      b[i] = h * h * h;
    }
  }

  util::Timer timer;
  std::vector<double> u;
  const fem::CgResult cg = fem::conjugate_gradient(global, b, u, {4000, 1e-8});
  std::printf("CG: %s in %d iterations, relative residual %.2e (%.2f s)\n",
              cg.converged ? "converged" : "NOT converged", cg.iterations,
              cg.relative_residual, timer.seconds());

  double u_max = 0.0;
  for (const double v : u) u_max = std::max(u_max, v);
  std::printf("solution: max u = %.3e (positive interior peak, zero walls)\n\n", u_max);

  // Distributed matvec epoch over real threads with an OptiPart partition.
  const machine::PerfModel model(machine::wisconsin8(), machine::ApplicationProfile{});
  const auto part = partition::optipart_partition(tree, curve, p, model);
  const auto meshes = mesh::build_local_meshes(tree, curve, part);

  std::vector<std::vector<double>> pieces(static_cast<std::size_t>(p));
  std::uint64_t ghosts_sent = 0;
  timer.reset();
  simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
    const mesh::LocalMesh& m = meshes[static_cast<std::size_t>(comm.rank())];
    std::vector<double> local(u.begin() + static_cast<std::ptrdiff_t>(m.global_begin),
                              u.begin() + static_cast<std::ptrdiff_t>(
                                              m.global_begin + m.elements.size()));
    const auto report = simmpi::dist_matvec_loop(m, comm, iterations, local);
    if (comm.rank() == 0) ghosts_sent = report.ghost_elements_sent;
    pieces[static_cast<std::size_t>(comm.rank())] = std::move(local);
  });
  const double epoch_s = timer.seconds();

  // Cross-check against the sequential engine.
  const fem::DistributedLaplacian engine(meshes);
  auto ref = engine.scatter(u);
  std::vector<std::vector<double>> out;
  for (int it = 0; it < iterations; ++it) {
    engine.matvec(ref, out);
    std::swap(ref, out);
  }
  double worst = 0.0;
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < ref[static_cast<std::size_t>(r)].size(); ++i) {
      worst = std::max(worst, std::abs(ref[static_cast<std::size_t>(r)][i] -
                                       pieces[static_cast<std::size_t>(r)][i]));
    }
  }
  std::printf("distributed epoch: %d matvecs on %d threaded ranks in %.2f s\n"
              "(rank 0 shipped %llu ghost values; threaded vs sequential max "
              "divergence %.1e)\n",
              iterations, p, epoch_s, static_cast<unsigned long long>(ghosts_sent),
              worst);
  return worst < 1e-9 ? 0 : 1;
}
