// Quickstart: the library in ~60 lines.
//
//   1. generate an adaptive octree from a point cloud (normal distribution),
//   2. 2:1 balance it,
//   3. partition three ways -- ideal equal split (what SampleSort/Dendro
//      converges to), TreeSort with a fixed tolerance, and OptiPart with
//      the machine model choosing the trade-off,
//   4. compare work balance, boundary, communication volume and the
//      modeled matvec time on a CloudLab-like machine.
//
// Build & run:  ./examples/quickstart [--elements 50000] [--p 32]
#include <cstdio>

#include "machine/perf_model.hpp"
#include "mesh/comm_matrix.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "partition/optipart.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace amr;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.get_int("elements", 50000));
  const int p = static_cast<int>(args.get_int("p", 32));

  // 1-2: adaptive 2:1-balanced octree in Hilbert order.
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  octree::GenerateOptions gen;
  gen.distribution = octree::PointDistribution::kNormal;
  gen.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  auto tree = octree::balance_octree(octree::random_octree(n, curve, gen), curve);
  std::printf("octree: %zu leaves (from %zu points), 2:1 balanced, Hilbert order\n\n",
              tree.size(), n);

  // 3: three partitions of the same tree.
  const machine::PerfModel model(machine::wisconsin8(), machine::ApplicationProfile{});
  const auto ideal = partition::ideal_partition(tree.size(), p);
  partition::TreeSortPartitionOptions tol;
  tol.tolerance = 0.3;
  const auto flexible = partition::treesort_partition(tree, curve, p, tol);
  const auto opti = partition::optipart_partition(tree, curve, p, model);

  // 4: compare.
  util::Table table({"partition", "lambda", "Wmax", "Cmax (bdy octants)",
                     "ghost volume", "NNZ", "modeled matvec (us)"});
  const auto describe = [&](const std::string& name, const partition::Partition& part) {
    const auto metrics = partition::compute_metrics(tree, curve, part);
    const auto comm = mesh::build_comm_matrix(tree, curve, part);
    table.add_row({name, util::Table::fmt(metrics.load_imbalance, 3),
                   util::Table::fmt(metrics.w_max, 0), util::Table::fmt(metrics.c_max, 0),
                   util::Table::fmt(comm.total_elements(), 0),
                   std::to_string(comm.nnz()),
                   util::Table::fmt(metrics.predicted_time(model) * 1e6, 2)});
  };
  describe("ideal (SampleSort)", ideal);
  describe("TreeSort tol=0.3", flexible);
  describe("OptiPart (auto)", opti);
  table.print("partition quality on " + model.machine().name + " with p=" +
              std::to_string(p) + ":");

  std::printf("\nOptiPart chose tolerance %.3f for this machine/application without\n"
              "being told one -- that is the paper's contribution in one line.\n",
              opti.max_deviation());
  return 0;
}
