// Example: a full AMR cycle -- the dynamic workload that motivates
// SFC-based partitioning in the first place (paper §1: "applications
// requiring repeated partitioning, such as Adaptive Mesh Refinement").
//
// A Gaussian feature sweeps across the unit cube. Every step:
//   1. refine leaves near the feature, coarsen leaves far from it,
//   2. re-establish the 2:1 balance,
//   3. repartition with OptiPart for the target machine,
//   4. account the migration volume (elements that change owner) and the
//      partition quality for the step's matvec epoch.
//
// The output shows what makes SFC partitioning attractive here: the mesh
// changes every step, yet repartitioning costs O(N/p + log p) and only a
// small fraction of elements migrates.
//
// Run: ./examples/amr_cycle [--steps 8] [--p 32] [--machine clemson32]
#include <cmath>
#include <cstdio>

#include "machine/perf_model.hpp"
#include "mesh/adjacency.hpp"
#include "octree/adapt.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "octree/treesort.hpp"
#include "partition/optipart.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace amr;

namespace {

double feature_distance(const octree::Octant& o, double t) {
  // Feature center moves along the main diagonal.
  const auto a = o.anchor_unit();
  const double h = static_cast<double>(o.size()) /
                   static_cast<double>(1U << octree::kMaxDepth);
  const double cx = 0.2 + 0.6 * t;
  const double dx = a[0] + 0.5 * h - cx;
  const double dy = a[1] + 0.5 * h - cx;
  const double dz = a[2] + 0.5 * h - 0.5;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int steps = static_cast<int>(args.get_int("steps", 8));
  const int p = static_cast<int>(args.get_int("p", 32));
  const int fine_level = static_cast<int>(args.get_int("fine-level", 7));
  const machine::MachineModel machine =
      machine::machine_by_name(args.get("machine", "clemson32"));
  const machine::PerfModel model(machine, machine::ApplicationProfile{});
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);

  // Repartition only when the drifted imbalance exceeds this trigger --
  // what production AMR codes do to avoid paying migration every step.
  const double repartition_trigger = args.get_double("trigger", 1.25);

  // Start from a uniform coarse mesh.
  auto tree = octree::uniform_octree(3, curve);
  std::vector<octree::Octant> old_keys;

  util::Table table({"step", "leaves", "refined+", "coarsened-", "drift lambda",
                     "action", "lambda", "Cmax", "migrated", "migrated %",
                     "partition ms"});
  for (int step = 0; step < steps; ++step) {
    const double t = static_cast<double>(step) / std::max(1, steps - 1);

    // 1: adapt toward the moving feature.
    std::size_t before = tree.size();
    for (int round = 0; round < fine_level; ++round) {
      auto refined = octree::refine_octree(tree, curve, [&](const octree::Octant& o) {
        return static_cast<int>(o.level) < fine_level && feature_distance(o, t) < 0.15;
      });
      if (refined.size() == tree.size()) break;
      tree = std::move(refined);
    }
    const std::size_t after_refine = tree.size();
    tree = octree::coarsen_octree_if(tree, curve, [&](const octree::Octant& parent) {
      return feature_distance(parent, t) > 0.3 && parent.level >= 3;
    });
    const std::size_t after_coarsen = tree.size();

    // 2: restore 2:1 balance.
    tree = octree::balance_octree(std::move(tree), curve);

    // 3: measure how far the *old* partition has drifted on the adapted
    // mesh; repartition only when the trigger is exceeded.
    partition::Partition part;
    double drift_lambda = 0.0;
    bool repartitioned = false;
    double partition_ms = 0.0;
    if (!old_keys.empty()) {
      part.offsets.assign(static_cast<std::size_t>(p) + 1, 0);
      std::vector<std::size_t> counts(static_cast<std::size_t>(p), 0);
      for (const octree::Octant& o : tree) {
        counts[static_cast<std::size_t>(partition::owner_by_keys(old_keys, o, curve))]++;
      }
      for (int r = 0; r < p; ++r) {
        part.offsets[static_cast<std::size_t>(r) + 1] =
            part.offsets[static_cast<std::size_t>(r)] + counts[static_cast<std::size_t>(r)];
      }
      drift_lambda = part.load_imbalance();
    }
    if (old_keys.empty() || drift_lambda > repartition_trigger) {
      util::Timer timer;
      part = partition::optipart_partition(tree, curve, p, model,
                                           {octree::kMaxDepth, 4, 0});
      partition_ms = timer.seconds() * 1e3;
      repartitioned = true;
    }

    // 4: quality + migration accounting.
    const bool first_step = old_keys.empty();
    const auto adjacency = mesh::build_adjacency(tree, curve);
    const auto metrics = mesh::metrics_from_adjacency(adjacency, part);
    const std::size_t migrated =
        first_step ? tree.size()
        : repartitioned ? partition::migration_volume(tree, curve, old_keys, part)
                        : 0;
    old_keys = partition::splitter_keys(tree, part);

    table.add_row({std::to_string(step), std::to_string(tree.size()),
                   std::to_string(after_refine - before),
                   std::to_string(after_refine - after_coarsen),
                   first_step ? "-" : util::Table::fmt(drift_lambda, 3),
                   repartitioned ? "repartition" : "keep",
                   util::Table::fmt(metrics.load_imbalance, 3),
                   util::Table::fmt(metrics.c_max, 0), std::to_string(migrated),
                   util::Table::fmt(100.0 * static_cast<double>(migrated) /
                                        static_cast<double>(tree.size()),
                                    1),
                   util::Table::fmt(partition_ms, 1)});
  }
  table.print("AMR cycle on " + machine.name + " (moving feature, p=" +
              std::to_string(p) + ", repartition trigger lambda>" +
              util::Table::fmt(repartition_trigger, 2) + "):");
  std::printf("\nA moving refinement front unbalances the old cuts at essentially every\n"
              "adaptation (drift lambda >> trigger), which is precisely the paper's\n"
              "motivation: AMR needs partitioning cheap enough to re-run each step --\n"
              "the O(N/p + log p) SFC repartition (`partition ms` column) costs a\n"
              "fraction of the remeshing itself. Raise --trigger (or slow the\n"
              "feature with more --steps) to see the keep-partition path.\n");
  return 0;
}
