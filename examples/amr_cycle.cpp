// Example: a full dynamic AMR campaign -- the workload that motivates
// SFC-based partitioning in the first place (paper §1: "applications
// requiring repeated partitioning, such as Adaptive Mesh Refinement").
//
// This is the amr::Driver loop (src/driver/): a scenario field sweeps the
// unit cube; every step the mesh refines toward the feature and coarsens
// behind it (with deref-count hysteresis), the structural delta feeds the
// incremental repartitioner, and the migration-aware objective decides
// whether the refreshed cuts pay for the elements they move.
//
// Migration accounting: `migrated` counts elements whose owner changed
// between the previous and the new cuts, from the keyed migration_volume
// pass. On the first step there *is* no previous owner -- everything is
// placed, nothing migrates -- so the column prints `-` rather than the
// misleading 100% the pre-driver version of this example reported.
//
// Run: ./examples/amr_cycle [--steps 8] [--p 32] [--scenario gaussian]
//      [--route incremental|scratch] [--partitioner optipart|equal]
#include <cstdio>
#include <string>

#include "driver/driver.hpp"
#include "machine/machine_model.hpp"
#include "machine/perf_model.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace amr;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const machine::MachineModel machine =
      machine::machine_by_name(args.get("machine", "clemson32"));
  machine::ApplicationProfile profile;
  profile.migration_cost_factor = args.get_double("migration-cost", 1.0);
  const machine::PerfModel model(machine, profile);
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);

  const std::string scenario_name = args.get("scenario", "gaussian");
  const auto kind = driver::scenario_from_string(scenario_name);
  if (!kind) {
    std::fprintf(stderr, "unknown scenario '%s' (gaussian|blast|slotted)\n",
                 scenario_name.c_str());
    return 1;
  }
  const driver::Scenario scenario = driver::make_scenario(*kind, 3);

  driver::DriverOptions options;
  options.ranks = static_cast<int>(args.get_int("p", 32));
  options.steps = static_cast<int>(args.get_int("steps", 8));
  options.min_level = static_cast<int>(args.get_int("min-level", 3));
  options.max_level = static_cast<int>(args.get_int("fine-level", 6));
  options.route = args.get("route", "incremental") == "scratch"
                      ? driver::RepartitionRoute::kFromScratch
                      : driver::RepartitionRoute::kIncremental;
  options.partitioner = args.get("partitioner", "optipart") == "equal"
                            ? driver::Partitioner::kEqualSplit
                            : driver::Partitioner::kOptiPart;
  options.matvec_iterations = static_cast<int>(args.get_int("matvec", 4));

  driver::Driver drv(scenario, curve, model, options);

  util::Table table({"step", "t", "leaves", "refined+", "coarsened-", "delta %",
                     "route", "action", "lambda", "Cmax", "migrated",
                     "migrated %", "repartition ms"});
  const driver::CampaignResult result = drv.run();
  for (const driver::StepMetrics& m : result.steps) {
    // First step: no previous cuts exist, so there is no migration to
    // report -- print `-` instead of pretending the initial placement
    // moved 100% of the mesh.
    const std::string migrated =
        m.first_epoch ? "-" : std::to_string(m.migrated);
    const std::string migrated_pct =
        m.first_epoch ? "-"
                      : util::Table::fmt(100.0 * static_cast<double>(m.migrated) /
                                             static_cast<double>(m.leaves),
                                         1);
    table.add_row(
        {std::to_string(m.step), util::Table::fmt(m.t, 2),
         std::to_string(m.leaves), std::to_string(m.refined),
         std::to_string(m.coarsened),
         m.first_epoch ? "-" : util::Table::fmt(100.0 * m.change_fraction, 1),
         m.first_epoch ? "scratch" : (m.merge_route ? "merge" : "resort"),
         m.kept_previous ? "keep" : "repartition",
         util::Table::fmt(m.load_imbalance, 3), util::Table::fmt(m.c_max, 0),
         migrated, migrated_pct, util::Table::fmt(m.repartition_seconds * 1e3, 1)});
  }
  table.print("Dynamic AMR campaign on " + machine.name +
              " (scenario=" + driver::to_string(scenario.kind) +
              ", p=" + std::to_string(options.ranks) +
              ", route=" + driver::to_string(options.route) +
              ", partitioner=" + driver::to_string(options.partitioner) + "):");
  std::printf(
      "\nThe moving feature re-refines the mesh every step, yet the delta stays a\n"
      "small fraction of the tree, so the incremental route splices it by sorted\n"
      "merge (`route` = merge) instead of re-sorting. The migration-aware\n"
      "objective (--migration-cost, 0 = always adopt fresh cuts) decides `keep`\n"
      "vs `repartition`; `migrated` is the keyed owner-change count -- and `-`\n"
      "on step 0, where the initial placement has no previous owner to migrate\n"
      "from. Try --scenario blast (growing mesh) or slotted (rotating feature),\n"
      "and --route scratch to compare against full re-partitioning.\n");
  return 0;
}
