// Example: the same mesh, the same application, four machines -- four
// different partitions.
//
// This demonstrates the "machine aware" half of the paper's title: OptiPart
// consumes tc/tw from the machine model, so on a fat-interconnect machine
// (Titan, Stampede) it stays near the ideal equal split, while on a 10 GbE
// CloudLab cluster it deliberately unbalances work to cut the boundary.
//
// Run: ./examples/machine_comparison [--elements 60000] [--p 64]
#include <cstdio>

#include "machine/perf_model.hpp"
#include "mesh/comm_matrix.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "partition/optipart.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace amr;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.get_int("elements", 40000));
  const int p = static_cast<int>(args.get_int("p", 192));

  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  octree::GenerateOptions gen;
  gen.distribution = octree::PointDistribution::kLogNormal;
  gen.seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
  const auto tree = octree::balance_octree(octree::random_octree(n, curve, gen), curve);
  std::printf("octree: %zu leaves (log-normal cluster), p=%d\n\n", tree.size(), p);

  const auto ideal = partition::ideal_partition(tree.size(), p);
  const auto ideal_metrics = partition::compute_metrics(tree, curve, ideal);

  util::Table table({"machine", "model", "tw/tc", "chosen tolerance", "lambda",
                     "Cmax", "modeled speedup vs ideal"});
  for (const auto& machine : machine::all_machines()) {
    for (const bool latency : {false, true}) {
      machine::ApplicationProfile app;
      app.include_latency_term = latency;
      const machine::PerfModel model(machine, app);
      const auto part = partition::optipart_partition(tree, curve, p, model);
      const auto metrics = partition::compute_metrics(tree, curve, part);
      const double t_opti = metrics.predicted_time(model);
      const double t_ideal = ideal_metrics.predicted_time(model);
      table.add_row({machine.name, latency ? "Eq.3+latency" : "Eq.3",
                     util::Table::fmt(machine.tw / machine.tc, 1),
                     util::Table::fmt(part.max_deviation(), 3),
                     util::Table::fmt(metrics.load_imbalance, 3),
                     util::Table::fmt(metrics.c_max, 0),
                     util::Table::fmt(t_ideal / t_opti, 3) + "x"});
    }
  }
  table.print("OptiPart on every machine preset (same mesh, alpha=8):");
  std::printf("\nideal split for reference: lambda=%.3f, Cmax=%.0f, peers max=%.0f.\n"
              "Expected pattern: higher tw/tc -> more accepted imbalance -> lower\n"
              "Cmax -> larger modeled speedup over the equal split; the latency\n"
              "extension (paper's future-work model refinement) amplifies the\n"
              "effect on the TCP/Ethernet CloudLab machines.\n",
              ideal_metrics.load_imbalance, ideal_metrics.c_max, ideal_metrics.m_max);
  return 0;
}
