// Example: export an adaptive mesh, its OptiPart partition and a Poisson
// solution to a legacy VTK file for ParaView/VisIt.
//
// Run: ./examples/export_vtk [--elements 5000] [--p 16] [--out mesh.vtk]
#include <cstdio>

#include "fem/cg.hpp"
#include "io/vtk.hpp"
#include "machine/perf_model.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "partition/optipart.hpp"
#include "util/args.hpp"

using namespace amr;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.get_int("elements", 5000));
  const int p = static_cast<int>(args.get_int("p", 16));
  const std::string out = args.get("out", "mesh.vtk");

  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  octree::GenerateOptions gen;
  gen.distribution = octree::PointDistribution::kNormal;
  gen.max_level = 7;
  auto tree = octree::balance_octree(octree::random_octree(n, curve, gen), curve);

  const machine::PerfModel model(machine::clemson32(), machine::ApplicationProfile{});
  const auto part = partition::optipart_partition(tree, curve, p, model);

  // Solve -lap u = 1 for a solution field worth looking at.
  const mesh::GlobalMesh global = mesh::build_global_mesh(tree, curve);
  std::vector<double> b(global.elements.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double h = static_cast<double>(global.elements[i].size()) /
                     static_cast<double>(1U << octree::kMaxDepth);
    b[i] = h * h * h;
  }
  std::vector<double> u;
  const auto cg = fem::conjugate_gradient(global, b, u, {3000, 1e-7});

  std::vector<io::CellField> fields(3);
  fields[0].name = "level";
  fields[1].name = "rank";
  fields[2].name = "u";
  for (std::size_t i = 0; i < tree.size(); ++i) {
    fields[0].values.push_back(tree[i].level);
    fields[1].values.push_back(part.owner_of(i));
    fields[2].values.push_back(u[i]);
  }

  if (!io::write_vtk(out, tree, fields)) {
    std::printf("failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s: %zu cells, fields level/rank/u (CG %s, %d iterations)\n",
              out.c_str(), tree.size(), cg.converged ? "converged" : "not converged",
              cg.iterations);
  return 0;
}
