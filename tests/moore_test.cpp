// Moore curve tests: closedness (the defining property: first and last
// cells of every level are neighbors), continuity, permutation validity,
// and interoperability with TreeSort/partitioning.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "octree/generate.hpp"
#include "octree/treesort.hpp"
#include "partition/partition.hpp"
#include "sfc/curve.hpp"
#include "sfc/hilbert.hpp"

namespace amr::sfc {
namespace {

using octree::Octant;

// Coordinates of the cell at curve position `rank` on a 2^level grid,
// found by walking the tables (inverse of rank_at_own_level).
std::array<std::uint32_t, 3> cell_at_rank(const Curve& curve, std::uint64_t rank,
                                          int level) {
  std::array<std::uint32_t, 3> coords{};
  int state = 0;
  for (int depth = 1; depth <= level; ++depth) {
    const int j = static_cast<int>(
        (rank >> (static_cast<std::uint64_t>(curve.dim()) *
                  static_cast<std::uint64_t>(level - depth))) &
        ((1U << curve.dim()) - 1));
    const int c = curve.child_at(state, j);
    for (int axis = 0; axis < curve.dim(); ++axis) {
      coords[static_cast<std::size_t>(axis)] |=
          static_cast<std::uint32_t>((c >> axis) & 1) << (level - depth);
    }
    state = curve.next_state(state, c);
  }
  return coords;
}

int manhattan(const std::array<std::uint32_t, 3>& a,
              const std::array<std::uint32_t, 3>& b, int dim) {
  int d = 0;
  for (int axis = 0; axis < dim; ++axis) {
    d += std::abs(static_cast<int>(a[static_cast<std::size_t>(axis)]) -
                  static_cast<int>(b[static_cast<std::size_t>(axis)]));
  }
  return d;
}

class MooreTest : public ::testing::TestWithParam<int> {};  // dim

TEST_P(MooreTest, TablesAreValidPermutations) {
  const int dim = GetParam();
  const auto& tables = moore_tables(dim);
  const int children = 1 << dim;
  EXPECT_EQ(tables.num_children, children);
  for (int s = 0; s < tables.num_states; ++s) {
    std::set<int> seen;
    for (int j = 0; j < children; ++j) {
      seen.insert(tables.child_at[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)]);
      EXPECT_LT(tables.next_state[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)],
                tables.num_states);
    }
    EXPECT_EQ(static_cast<int>(seen.size()), children);
  }
}

TEST_P(MooreTest, CurveIsContinuous) {
  // Consecutive cells differ by exactly one grid step (like Hilbert).
  const int dim = GetParam();
  const Curve curve(CurveKind::kMoore, dim);
  const int level = dim == 2 ? 5 : 3;
  const std::uint64_t cells = 1ULL << (dim * level);
  auto prev = cell_at_rank(curve, 0, level);
  for (std::uint64_t r = 1; r < cells; ++r) {
    const auto cur = cell_at_rank(curve, r, level);
    EXPECT_EQ(manhattan(prev, cur, dim), 1) << "jump at rank " << r;
    prev = cur;
  }
}

TEST_P(MooreTest, CurveIsClosed) {
  // The Moore property: the last cell is one step from the first.
  const int dim = GetParam();
  const Curve curve(CurveKind::kMoore, dim);
  for (int level = 1; level <= (dim == 2 ? 6 : 4); ++level) {
    const std::uint64_t cells = 1ULL << (dim * level);
    const auto first = cell_at_rank(curve, 0, level);
    const auto last = cell_at_rank(curve, cells - 1, level);
    EXPECT_EQ(manhattan(first, last, dim), 1) << "level " << level;
  }
}

TEST_P(MooreTest, HilbertIsNotClosedForComparison) {
  const int dim = GetParam();
  const Curve curve(CurveKind::kHilbert, dim);
  const int level = 4;
  const std::uint64_t cells = 1ULL << (dim * level);
  const auto first = cell_at_rank(curve, 0, level);
  const auto last = cell_at_rank(curve, cells - 1, level);
  EXPECT_GT(manhattan(first, last, dim), 1);
}

TEST_P(MooreTest, VisitsEveryCellOnce) {
  const int dim = GetParam();
  const Curve curve(CurveKind::kMoore, dim);
  const int level = dim == 2 ? 4 : 2;
  std::set<std::array<std::uint32_t, 3>> seen;
  const std::uint64_t cells = 1ULL << (dim * level);
  for (std::uint64_t r = 0; r < cells; ++r) {
    seen.insert(cell_at_rank(curve, r, level));
  }
  EXPECT_EQ(seen.size(), cells);
}

INSTANTIATE_TEST_SUITE_P(Dims, MooreTest, ::testing::Values(2, 3),
                         [](const auto& info) {
                           return "dim" + std::to_string(info.param);
                         });

TEST(Moore, EndCornersOfHilbertStatesAreCorners) {
  // Helper sanity: entry/exit corners used by the Moore construction.
  const auto& tables = hilbert_tables(3);
  for (int s = 0; s < tables.num_states; ++s) {
    const int entry = curve_entry_corner(tables, s);
    const int exit = curve_exit_corner(tables, s);
    EXPECT_GE(entry, 0);
    EXPECT_LT(entry, 8);
    EXPECT_GE(exit, 0);
    EXPECT_LT(exit, 8);
    EXPECT_NE(entry, exit);
  }
}

TEST(Moore, WorksWithTreeSortAndPartitioning) {
  const Curve curve(CurveKind::kMoore, 3);
  octree::GenerateOptions options;
  options.seed = 7;
  options.max_level = 8;
  const auto tree = octree::random_octree(10000, curve, options);
  EXPECT_TRUE(octree::is_sfc_sorted(tree, curve));
  EXPECT_TRUE(octree::is_complete(tree, curve));

  const auto part = partition::treesort_partition(tree, curve, 16, {});
  EXPECT_EQ(part.total(), tree.size());
  EXPECT_LT(part.max_deviation(), 0.01);
}

TEST(Moore, NameRoundTrip) {
  EXPECT_EQ(to_string(CurveKind::kMoore), "moore");
  EXPECT_EQ(curve_kind_from_string("moore"), CurveKind::kMoore);
}

}  // namespace
}  // namespace amr::sfc
