// Distributed TreeSort / OptiPart / SampleSort tests over simmpi: the
// redistributed array must be a correct global sort, tolerances must be
// honored, SampleSort and TreeSort must agree on the multiset, and
// distributed OptiPart must match its machine-model semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

#include "octree/generate.hpp"
#include "octree/treesort.hpp"
#include "simmpi/dist_samplesort.hpp"
#include "simmpi/dist_treesort.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"

namespace amr::simmpi {
namespace {

using octree::Octant;
using sfc::Curve;
using sfc::CurveKind;

std::vector<Octant> random_octants(std::size_t n, std::uint64_t seed) {
  util::Rng rng = util::make_rng(seed);
  std::uniform_int_distribution<std::uint32_t> coord(0, (1U << octree::kMaxDepth) - 1);
  std::uniform_int_distribution<int> lvl(2, 12);
  std::vector<Octant> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(octree::octant_from_point(coord(rng), coord(rng), coord(rng),
                                            lvl(rng)));
  }
  return out;
}

struct GatherResult {
  std::vector<std::vector<Octant>> pieces;
  std::vector<DistSortReport> reports;

  [[nodiscard]] std::vector<Octant> concatenated() const {
    std::vector<Octant> all;
    for (const auto& piece : pieces) all.insert(all.end(), piece.begin(), piece.end());
    return all;
  }
};

GatherResult run_dist_treesort(int p, std::size_t per_rank, CurveKind kind,
                               double tolerance, std::uint64_t seed) {
  GatherResult result;
  result.pieces.resize(static_cast<std::size_t>(p));
  result.reports.resize(static_cast<std::size_t>(p));
  run_ranks(p, [&](Comm& comm) {
    const Curve curve(kind, 3);
    auto local = random_octants(per_rank, seed + static_cast<std::uint64_t>(comm.rank()));
    DistSortOptions options;
    options.tolerance = tolerance;
    const DistSortReport report = dist_treesort(local, comm, curve, options);
    result.pieces[static_cast<std::size_t>(comm.rank())] = std::move(local);
    result.reports[static_cast<std::size_t>(comm.rank())] = report;
  });
  return result;
}

bool same_multiset(std::vector<Octant> a, std::vector<Octant> b, const Curve& curve) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end(), curve.comparator());
  std::sort(b.begin(), b.end(), curve.comparator());
  return a == b;
}

struct DistCase {
  int p;
  CurveKind kind;
  double tolerance;
};

class DistTreesortTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistTreesortTest, GloballySortsAndBalances) {
  const auto [p, kind, tolerance] = GetParam();
  const Curve curve(kind, 3);
  const std::size_t per_rank = 2000;
  const auto result = run_dist_treesort(p, per_rank, kind, tolerance, 1000);

  // Global order: concatenation by rank is SFC-sorted, and the multiset of
  // elements is preserved.
  const auto all = result.concatenated();
  EXPECT_EQ(all.size(), per_rank * static_cast<std::size_t>(p));
  EXPECT_TRUE(octree::is_sfc_sorted(all, curve));

  std::vector<Octant> input;
  for (int r = 0; r < p; ++r) {
    const auto piece = random_octants(per_rank, 1000 + static_cast<std::uint64_t>(r));
    input.insert(input.end(), piece.begin(), piece.end());
  }
  EXPECT_TRUE(same_multiset(all, input, curve));

  // Tolerance honored: every rank's share within tolerance*N/p of ideal
  // (plus one element of slack for indivisibility).
  const double grain = static_cast<double>(all.size()) / p;
  for (int r = 0; r < p; ++r) {
    const double dev =
        std::abs(static_cast<double>(result.pieces[static_cast<std::size_t>(r)].size()) -
                 grain);
    EXPECT_LE(dev, 2.0 * std::max(1.0, tolerance * grain) + 2.0) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistTreesortTest,
    ::testing::Values(DistCase{2, CurveKind::kMorton, 0.0},
                      DistCase{4, CurveKind::kHilbert, 0.0},
                      DistCase{8, CurveKind::kHilbert, 0.0},
                      DistCase{4, CurveKind::kMorton, 0.3},
                      DistCase{8, CurveKind::kHilbert, 0.3},
                      DistCase{5, CurveKind::kHilbert, 0.1}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.p) + "_" +
             sfc::to_string(info.param.kind) + "_tol" +
             std::to_string(static_cast<int>(info.param.tolerance * 100));
    });

TEST(DistTreesort, ReportsAreConsistent) {
  const auto result = run_dist_treesort(4, 1000, CurveKind::kHilbert, 0.0, 7);
  for (const auto& report : result.reports) {
    EXPECT_EQ(report.global_elements, 4000U);
    EXPECT_GT(report.levels_used, 0);
    EXPECT_EQ(report.splitters.size(), 4U);
  }
  // All ranks agreed on the splitters.
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(result.reports[static_cast<std::size_t>(r)].splitters,
              result.reports[0].splitters);
  }
}

TEST(DistSampleSort, SortsGloballyAndMatchesTreesortMultiset) {
  const int p = 6;
  const std::size_t per_rank = 1500;
  const Curve curve(CurveKind::kHilbert, 3);

  std::vector<std::vector<Octant>> pieces(static_cast<std::size_t>(p));
  run_ranks(p, [&](Comm& comm) {
    auto local = random_octants(per_rank, 500 + static_cast<std::uint64_t>(comm.rank()));
    const SampleSortReport report = dist_samplesort(local, comm, curve);
    EXPECT_EQ(report.global_elements, per_rank * static_cast<std::size_t>(p));
    pieces[static_cast<std::size_t>(comm.rank())] = std::move(local);
  });

  std::vector<Octant> all;
  for (const auto& piece : pieces) all.insert(all.end(), piece.begin(), piece.end());
  EXPECT_TRUE(octree::is_sfc_sorted(all, curve));

  std::vector<Octant> input;
  for (int r = 0; r < p; ++r) {
    const auto piece = random_octants(per_rank, 500 + static_cast<std::uint64_t>(r));
    input.insert(input.end(), piece.begin(), piece.end());
  }
  EXPECT_TRUE(same_multiset(all, input, curve));
}

TEST(DistOptiPart, SortsAndTracksModel) {
  const int p = 8;
  const Curve curve(CurveKind::kHilbert, 3);
  const machine::PerfModel model(machine::wisconsin8(), machine::ApplicationProfile{});

  std::vector<std::vector<Octant>> pieces(static_cast<std::size_t>(p));
  std::vector<DistOptiPartTrace> traces(static_cast<std::size_t>(p));
  run_ranks(p, [&](Comm& comm) {
    auto local = random_octants(2000, 900 + static_cast<std::uint64_t>(comm.rank()));
    DistOptiPartTrace trace;
    const DistSortReport report =
        dist_optipart(local, comm, curve, model, octree::kMaxDepth, &trace);
    EXPECT_EQ(report.global_elements, 16000U);
    pieces[static_cast<std::size_t>(comm.rank())] = std::move(local);
    traces[static_cast<std::size_t>(comm.rank())] = trace;
  });

  std::vector<Octant> all;
  for (const auto& piece : pieces) all.insert(all.end(), piece.begin(), piece.end());
  EXPECT_TRUE(octree::is_sfc_sorted(all, curve));
  EXPECT_EQ(all.size(), 16000U);

  // Every rank saw the identical quality trace (deterministic SPMD), and
  // the final round is the first predicted-worse one (or the last overall).
  ASSERT_FALSE(traces[0].rounds.empty());
  for (int r = 1; r < p; ++r) {
    ASSERT_EQ(traces[static_cast<std::size_t>(r)].rounds.size(), traces[0].rounds.size());
    for (std::size_t i = 0; i < traces[0].rounds.size(); ++i) {
      EXPECT_DOUBLE_EQ(traces[static_cast<std::size_t>(r)].rounds[i].predicted_time,
                       traces[0].rounds[i].predicted_time);
    }
  }
  for (std::size_t i = 0; i + 2 < traces[0].rounds.size(); ++i) {
    EXPECT_LE(traces[0].rounds[i + 1].predicted_time,
              traces[0].rounds[i].predicted_time * (1.0 + 1e-12))
        << "non-final round got worse but loop continued";
  }
}

TEST(DistTreesort, StagedSplitterCapSameResultMoreRounds) {
  // Eq. 2's k <= p staging: identical splitters, identical distribution,
  // but the reduction schedule splits into more, smaller collectives.
  const int p = 8;
  const Curve curve(CurveKind::kHilbert, 3);

  auto run = [&](int k) {
    std::vector<std::vector<Octant>> pieces(static_cast<std::size_t>(p));
    std::vector<std::vector<Octant>> splitters(static_cast<std::size_t>(p));
    const RunResult rr = run_ranks(p, [&](Comm& comm) {
      auto local = random_octants(1500, 3000 + static_cast<std::uint64_t>(comm.rank()));
      DistSortOptions options;
      options.max_splitters_per_round = k;
      const DistSortReport report = dist_treesort(local, comm, curve, options);
      pieces[static_cast<std::size_t>(comm.rank())] = std::move(local);
      splitters[static_cast<std::size_t>(comm.rank())] = report.splitters;
    });
    std::uint64_t collectives = 0;
    for (const auto& ledger : rr.ledgers) collectives += ledger.collectives;
    return std::make_tuple(pieces, splitters[0], collectives);
  };

  const auto [pieces_full, splitters_full, collectives_full] = run(0);
  const auto [pieces_staged, splitters_staged, collectives_staged] = run(2);

  EXPECT_EQ(splitters_full, splitters_staged);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(pieces_full[static_cast<std::size_t>(r)],
              pieces_staged[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
  EXPECT_GT(collectives_staged, collectives_full);
}

void expect_splitter_set_consistent(const SplitterSet& s,
                                    const std::vector<std::vector<Octant>>& pieces,
                                    const Curve& curve) {
  const std::size_t p = pieces.size();
  ASSERT_EQ(s.codes.size(), p);
  ASSERT_EQ(s.cuts.size(), p + 1);
  // codes must be non-decreasing or dest_of_key's upper_bound is undefined.
  EXPECT_TRUE(std::is_sorted(s.codes.begin(), s.codes.end()));
  EXPECT_TRUE(std::is_sorted(s.cuts.begin(), s.cuts.end()));
  // Routing agrees with the cuts: classify every delivered element and the
  // counts must reproduce the cut ranges exactly.
  for (std::size_t r = 0; r < p; ++r) {
    EXPECT_EQ(pieces[r].size(), s.cuts[r + 1] - s.cuts[r]) << "rank " << r;
    for (const Octant& o : pieces[r]) {
      EXPECT_EQ(s.dest_of_key(sfc::curve_key(curve, o)), static_cast<int>(r));
    }
  }
}

TEST(DistTreesort, CollapsedSplittersDuplicateHeavy) {
  // Regression: with p far above the number of distinct keys (here 2),
  // most splitter targets collapse onto the same cut position but can pick
  // keys of different depths. The old monotonicity fixup repaired only the
  // cuts, leaving SplitterSet::codes unsorted -- so dest_of_key
  // (upper_bound over codes) disagreed with the cuts it shipped with.
  const int p = 8;
  const Curve curve(CurveKind::kHilbert, 3);
  const auto pool = random_octants(2, 77);

  std::vector<std::vector<Octant>> pieces(static_cast<std::size_t>(p));
  std::vector<DistSortReport> reports(static_cast<std::size_t>(p));
  run_ranks(p, [&](Comm& comm) {
    util::Rng rng = util::make_rng(5, static_cast<std::uint64_t>(comm.rank()));
    std::vector<Octant> local;
    for (int i = 0; i < 300; ++i) local.push_back(pool[rng() % pool.size()]);
    reports[static_cast<std::size_t>(comm.rank())] =
        dist_treesort(local, comm, curve, {});
    pieces[static_cast<std::size_t>(comm.rank())] = std::move(local);
  });

  std::size_t total = 0;
  for (const auto& piece : pieces) total += piece.size();
  EXPECT_EQ(total, 8U * 300U);
  EXPECT_TRUE(octree::is_sfc_sorted(pieces[0], curve));
  expect_splitter_set_consistent(reports[0].splitter_set, pieces, curve);
}

TEST(DistTreesort, RoutingMatchesCutsUnderTolerance) {
  // Flexible partitions stop refining early, so splitters sit at coarse
  // bucket boundaries -- the configuration where cut fixups happen. The
  // published SplitterSet must still route exactly onto its own cuts.
  const int p = 8;
  const Curve curve(CurveKind::kMorton, 3);
  std::vector<std::vector<Octant>> pieces(static_cast<std::size_t>(p));
  std::vector<DistSortReport> reports(static_cast<std::size_t>(p));
  run_ranks(p, [&](Comm& comm) {
    auto local = random_octants(1200, 4000 + static_cast<std::uint64_t>(comm.rank()));
    DistSortOptions options;
    options.tolerance = 0.3;
    reports[static_cast<std::size_t>(comm.rank())] =
        dist_treesort(local, comm, curve, options);
    pieces[static_cast<std::size_t>(comm.rank())] = std::move(local);
  });
  expect_splitter_set_consistent(reports[0].splitter_set, pieces, curve);
  // All ranks shipped the identical set.
  for (int r = 1; r < p; ++r) {
    EXPECT_EQ(reports[static_cast<std::size_t>(r)].splitter_set.cuts,
              reports[0].splitter_set.cuts);
    EXPECT_EQ(reports[static_cast<std::size_t>(r)].splitter_set.codes,
              reports[0].splitter_set.codes);
  }
}

TEST(DistOptiPart, ChosenTimeIsRunningMinimum) {
  const int p = 8;
  const Curve curve(CurveKind::kHilbert, 3);
  const machine::PerfModel model(machine::wisconsin8(), machine::ApplicationProfile{});
  std::vector<DistOptiPartTrace> traces(static_cast<std::size_t>(p));
  run_ranks(p, [&](Comm& comm) {
    auto local = random_octants(1500, 600 + static_cast<std::uint64_t>(comm.rank()));
    DistOptiPartTrace trace;
    dist_optipart(local, comm, curve, model, octree::kMaxDepth, &trace);
    traces[static_cast<std::size_t>(comm.rank())] = trace;
  });
  ASSERT_FALSE(traces[0].rounds.empty());
  double running_min = traces[0].rounds.front().predicted_time;
  for (const auto& round : traces[0].rounds) {
    running_min = std::min(running_min, round.predicted_time);
  }
  EXPECT_DOUBLE_EQ(traces[0].chosen_time, running_min);
  // Never worse than the >= p-buckets equal-split baseline round.
  EXPECT_LE(traces[0].chosen_time, traces[0].rounds.front().predicted_time);
}

TEST(DistTreesort, WorksWithUnevenInputSizes) {
  const int p = 4;
  const Curve curve(CurveKind::kMorton, 3);
  std::vector<std::vector<Octant>> pieces(static_cast<std::size_t>(p));
  run_ranks(p, [&](Comm& comm) {
    // Rank r starts with wildly different counts, including zero.
    const std::size_t mine = static_cast<std::size_t>(comm.rank()) * 1000;
    auto local = random_octants(mine, 77 + static_cast<std::uint64_t>(comm.rank()));
    dist_treesort(local, comm, curve, {});
    pieces[static_cast<std::size_t>(comm.rank())] = std::move(local);
  });
  std::size_t total = 0;
  for (const auto& piece : pieces) total += piece.size();
  EXPECT_EQ(total, 0U + 1000 + 2000 + 3000);
  // Near-even redistribution.
  for (const auto& piece : pieces) {
    EXPECT_NEAR(static_cast<double>(piece.size()), 1500.0, 100.0);
  }
}

}  // namespace
}  // namespace amr::simmpi
