// Energy substrate tests: power model arithmetic, sampling, trace
// integration, and the runtime-energy correlation the paper relies on.
#include <gtest/gtest.h>

#include "energy/power_model.hpp"
#include "energy/sampler.hpp"
#include "machine/machine_model.hpp"

namespace amr::energy {
namespace {

machine::MachineModel test_machine() {
  machine::MachineModel m = machine::wisconsin8();
  m.idle_watts = 100.0;
  m.core_active_watts = 10.0;
  m.nic_watts_per_gbps = 1.0;
  return m;
}

TEST(PowerModel, IdleNodeDrawsIdleWatts) {
  const NodeActivity node;
  EXPECT_DOUBLE_EQ(node.watts_at(0.0, test_machine()), 100.0);
}

TEST(PowerModel, ComputeAddsPerCoreDraw) {
  NodeActivity node;
  node.add_compute(0.0, 10.0, 4);
  const auto m = test_machine();
  EXPECT_DOUBLE_EQ(node.watts_at(5.0, m), 140.0);
  EXPECT_DOUBLE_EQ(node.watts_at(15.0, m), 100.0);  // after the interval
}

TEST(PowerModel, BusyCoresClampToNodeSize) {
  NodeActivity node;
  node.add_compute(0.0, 1.0, 9999);
  const auto m = test_machine();
  EXPECT_DOUBLE_EQ(node.watts_at(0.5, m), 100.0 + 10.0 * m.cores_per_node);
}

TEST(PowerModel, NicDrawProportionalToRate) {
  NodeActivity node;
  // 1 GB over 8 seconds = 1 Gbit/s.
  node.add_comm(0.0, 8.0, 1.0e9, 0);
  EXPECT_NEAR(node.watts_at(1.0, test_machine()), 101.0, 1e-9);
  EXPECT_TRUE(node.comm_active_at(1.0));
  EXPECT_FALSE(node.comm_active_at(9.0));
}

TEST(PowerModel, OverlappingIntervalsAdd) {
  NodeActivity node;
  node.add_compute(0.0, 10.0, 2);
  node.add_compute(5.0, 15.0, 3);
  const auto m = test_machine();
  EXPECT_DOUBLE_EQ(node.watts_at(2.0, m), 120.0);
  EXPECT_DOUBLE_EQ(node.watts_at(7.0, m), 150.0);
  EXPECT_DOUBLE_EQ(node.watts_at(12.0, m), 130.0);
  EXPECT_DOUBLE_EQ(node.end_time(), 15.0);
}

TEST(Sampler, ConstantLoadIntegratesExactly) {
  NodeActivity node;
  node.add_compute(0.0, 100.0, 10);
  std::vector<NodeActivity> nodes{node};
  SamplerOptions options;
  options.sample_hz = 1.0;
  const EnergyReport report = measure_energy(nodes, test_machine(), options);
  // 200 W for 100 s = 20 kJ; the final 1 Hz trapezoid segment straddles the
  // falling edge of the load, so allow half a sample of slack.
  EXPECT_NEAR(report.total_joules, 20000.0, 60.0);
  EXPECT_EQ(report.per_node_joules.size(), 1U);
  EXPECT_NEAR(report.duration_s, 100.0, 1e-9);
}

TEST(Sampler, CommJoulesAttributedToCommPhase) {
  NodeActivity node;
  node.add_compute(0.0, 50.0, 1);
  node.add_comm(50.0, 100.0, 1.0e9, 1);
  std::vector<NodeActivity> nodes{node};
  const EnergyReport report = measure_energy(nodes, test_machine(), {});
  EXPECT_GT(report.comm_joules, 0.0);
  EXPECT_LT(report.comm_joules, report.total_joules);
  // Roughly half the job is the comm phase.
  EXPECT_NEAR(report.comm_joules / report.total_joules, 0.5, 0.05);
}

TEST(Sampler, NoiseIsZeroMeanAndDeterministic) {
  NodeActivity node;
  node.add_compute(0.0, 2000.0, 4);
  std::vector<NodeActivity> nodes{node};
  SamplerOptions noisy;
  noisy.noise_sd_watts = 5.0;
  noisy.seed = 7;
  const EnergyReport a = measure_energy(nodes, test_machine(), noisy);
  const EnergyReport b = measure_energy(nodes, test_machine(), noisy);
  EXPECT_DOUBLE_EQ(a.total_joules, b.total_joules);  // same seed
  const EnergyReport clean = measure_energy(nodes, test_machine(), {});
  // Zero-mean noise: integrals agree within a fraction of a percent over
  // 2000 samples.
  EXPECT_NEAR(a.total_joules / clean.total_joules, 1.0, 0.01);
}

TEST(Sampler, HigherSampleRateConvergesToSameEnergy) {
  NodeActivity node;
  for (int i = 0; i < 20; ++i) {
    node.add_compute(i * 1.0, i * 1.0 + 0.4, 8);  // sub-second bursts
  }
  std::vector<NodeActivity> nodes{node};
  SamplerOptions coarse;
  coarse.sample_hz = 100.0;
  SamplerOptions fine;
  fine.sample_hz = 1000.0;
  const double e_coarse = measure_energy(nodes, test_machine(), coarse).total_joules;
  const double e_fine = measure_energy(nodes, test_machine(), fine).total_joules;
  EXPECT_NEAR(e_coarse / e_fine, 1.0, 0.02);
}

TEST(Sampler, LongerJobUsesMoreEnergy) {
  // The paper's premise on frequency-pinned nodes: energy tracks runtime.
  NodeActivity quick;
  quick.add_compute(0.0, 50.0, 8);
  NodeActivity slow;
  slow.add_compute(0.0, 80.0, 8);
  std::vector<NodeActivity> a{quick};
  std::vector<NodeActivity> b{slow};
  EXPECT_LT(measure_energy(a, test_machine(), {}).total_joules,
            measure_energy(b, test_machine(), {}).total_joules);
}

}  // namespace
}  // namespace amr::energy
