// Observability report tests: the exact byte/message conservation law
// between phase counters and cost ledgers on a deterministic distributed
// run, model-validation band flagging and missing-phase detection, and
// the RunMetrics tree.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/model_validation.hpp"
#include "obs/recorder.hpp"
#include "octree/generate.hpp"
#include "simmpi/dist_balance.hpp"
#include "simmpi/dist_fem.hpp"
#include "simmpi/dist_mesh.hpp"
#include "simmpi/dist_octree.hpp"
#include "simmpi/runtime.hpp"

namespace amr {
namespace {

/// The instrumented pipeline of tools/amr_report, shrunk for a test.
simmpi::RunResult run_instrumented_pipeline(int p, std::size_t per_rank,
                                            int iterations) {
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  return simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
    octree::GenerateOptions gen;
    gen.seed = 100 + static_cast<std::uint64_t>(comm.rank());
    gen.distribution = octree::PointDistribution::kNormal;
    auto points = octree::generate_points(per_rank, gen);

    simmpi::DistOctreeOptions build;
    build.max_points_per_leaf = 4;
    build.max_level = 8;
    auto built = simmpi::dist_points_to_octree(std::move(points), comm, curve, build);

    built.leaves = simmpi::dist_balance_octree(std::move(built.leaves),
                                               built.splitters, comm, curve, nullptr);

    const mesh::LocalMesh mesh = simmpi::dist_build_local_mesh(
        built.leaves, built.splitters, comm, curve, nullptr);

    std::vector<double> u(mesh.elements.size());
    for (std::size_t i = 0; i < u.size(); ++i) {
      const auto a = mesh.elements[i].anchor_unit();
      u[i] = std::sin(6.28 * a[0]) * std::cos(6.28 * a[1]);
    }
    (void)simmpi::dist_matvec_loop_overlapped(mesh, comm, iterations, u);
  });
}

/// Sum counter events whose name ends in `suffix`, bucketed by rank.
std::map<int, std::uint64_t> counters_by_rank(const obs::Snapshot& snap,
                                              const char* suffix) {
  std::map<int, std::uint64_t> sums;
  const std::size_t suffix_len = std::strlen(suffix);
  for (const obs::Event& e : snap.events) {
    if (e.type != obs::EventType::kCounter) continue;
    const std::size_t len = std::strlen(e.name);
    if (len < suffix_len || std::strcmp(e.name + len - suffix_len, suffix) != 0) {
      continue;
    }
    sums[e.rank] += static_cast<std::uint64_t>(e.value);
  }
  return sums;
}

TEST(ObsReportConservation, PhaseByteCountersEqualLedgerTotalsPerRank) {
  obs::set_enabled(true);
  obs::clear();
  const int p = 4;
  const simmpi::RunResult run = run_instrumented_pipeline(p, 1500, 5);
  obs::set_enabled(false);

  const obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(snap.dropped, 0u);

  // The phases tile every byte the ledger charged: per rank, the sum of
  // the "<phase>/bytes" counters equals the ledger total EXACTLY.
  const auto bytes = counters_by_rank(snap, "/bytes");
  const auto msgs = counters_by_rank(snap, "/msgs");
  ASSERT_EQ(run.ledgers.size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const auto& ledger = run.ledgers[static_cast<std::size_t>(r)];
    const auto it = bytes.find(r);
    ASSERT_NE(it, bytes.end()) << "rank " << r << " recorded no byte counters";
    EXPECT_EQ(it->second, ledger.total_bytes_sent()) << "rank " << r;
    const auto mt = msgs.find(r);
    ASSERT_NE(mt, msgs.end()) << "rank " << r << " recorded no msg counters";
    EXPECT_EQ(mt->second, ledger.total_messages_sent()) << "rank " << r;
  }
  obs::clear();
}

TEST(ObsReportConservation, InstrumentedPhasesAreAllPresent) {
  obs::set_enabled(true);
  obs::clear();
  const simmpi::RunResult run = run_instrumented_pipeline(4, 1500, 5);
  obs::set_enabled(false);
  (void)run;

  const obs::Snapshot snap = obs::snapshot();
  const auto phases = obs::aggregate_phases(snap);

  // The stable span taxonomy of the pipeline (DESIGN.md §11): a missing
  // name here means instrumentation rot.
  for (const char* name :
       {"treesort.local_sort", "treesort.splitter", "treesort.exchange",
        "balance.ripple", "mesh.push", "mesh.filter", "mesh.keep", "mesh.ids",
        "matvec.post", "matvec.interior", "matvec.wait", "matvec.boundary"}) {
    const auto it = phases.find(name);
    ASSERT_NE(it, phases.end()) << "phase never recorded: " << name;
    EXPECT_GT(it->second.span_count, 0u) << name;
    EXPECT_GT(it->second.max_rank_seconds, 0.0) << name;
  }
  obs::clear();
}

// --- validate_model on synthesized snapshots ------------------------------

obs::Snapshot one_second_span(const char* name) {
  obs::Snapshot snap;
  obs::Event e;
  e.name = name;
  e.ts_ns = 0;
  e.dur_ns = 1'000'000'000;  // 1 s
  e.rank = 0;
  e.type = obs::EventType::kSpan;
  snap.events.push_back(e);
  return snap;
}

TEST(ObsModelValidation, FlagsRatiosOutsideTheBand) {
  const obs::Snapshot snap = one_second_span("x.phase");
  const std::vector<obs::PhaseExpectation> expected = {{"x.phase", 0.5}};

  obs::ValidationOptions wide;  // default 0.1 .. 10
  const auto ok = obs::validate_model(snap, expected, wide);
  ASSERT_EQ(ok.rows.size(), 1u);
  EXPECT_NEAR(ok.rows[0].ratio, 0.5, 1e-9);
  EXPECT_TRUE(ok.rows[0].within_band);
  EXPECT_TRUE(ok.all_within_band());
  EXPECT_TRUE(ok.complete());

  obs::ValidationOptions narrow;
  narrow.band_low = 0.9;
  narrow.band_high = 1.1;
  const auto flagged = obs::validate_model(snap, expected, narrow);
  ASSERT_EQ(flagged.rows.size(), 1u);
  EXPECT_FALSE(flagged.rows[0].within_band);
  EXPECT_FALSE(flagged.all_within_band());
  EXPECT_TRUE(flagged.complete());
}

TEST(ObsModelValidation, ReportsExpectedButUnmeasuredPhases) {
  const obs::Snapshot snap = one_second_span("present.phase");
  const std::vector<obs::PhaseExpectation> expected = {
      {"present.phase", 1.0}, {"absent.phase", 1.0}};
  const auto report = obs::validate_model(snap, expected, {});
  EXPECT_EQ(report.rows.size(), 1u);
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing[0], "absent.phase");
  EXPECT_FALSE(report.complete());
}

TEST(ObsModelValidation, AggregatesBytesAndMessagesPerPhase) {
  obs::Snapshot snap = one_second_span("y.phase");
  obs::Event bytes;
  bytes.name = "y.phase/bytes";
  bytes.value = 1000;
  bytes.rank = 0;
  bytes.type = obs::EventType::kCounter;
  snap.events.push_back(bytes);
  bytes.rank = 1;
  bytes.value = 500;
  snap.events.push_back(bytes);
  obs::Event msgs;
  msgs.name = "y.phase/msgs";
  msgs.value = 3;
  msgs.rank = 0;
  msgs.type = obs::EventType::kCounter;
  snap.events.push_back(msgs);

  const auto phases = obs::aggregate_phases(snap);
  const auto it = phases.find("y.phase");
  ASSERT_NE(it, phases.end());
  EXPECT_EQ(it->second.comm_bytes, 1500u);
  EXPECT_EQ(it->second.comm_messages, 3u);
  EXPECT_EQ(it->second.span_count, 1u);
}

TEST(ObsModelValidation, TableAndJsonRender) {
  const obs::Snapshot snap = one_second_span("z.phase");
  const std::vector<obs::PhaseExpectation> expected = {{"z.phase", 2.0},
                                                       {"gone.phase", 1.0}};
  const auto report = obs::validate_model(snap, expected, {});

  const std::string table = report.to_table().to_string();
  EXPECT_NE(table.find("z.phase"), std::string::npos);
  EXPECT_NE(table.find("gone.phase"), std::string::npos);
  EXPECT_NE(table.find("MISSING"), std::string::npos);

  std::ostringstream json;
  report.to_json(json);
  const std::string text = json.str();
  EXPECT_NE(text.find("\"complete\": false"), std::string::npos);
  EXPECT_NE(text.find("\"gone.phase\""), std::string::npos);
  EXPECT_NE(text.find("\"ratio\": 2"), std::string::npos);
}

// --- RunMetrics tree ------------------------------------------------------

TEST(ObsRunMetrics, TreeSetGetAndSerialization) {
  obs::RunMetrics root("run");
  root.set("answer", 42.0);
  root.child("sub").set("pi", 3.5);
  root.child("sub").set("pi", 3.25);  // overwrite, no duplicate key

  EXPECT_EQ(root.get("answer"), 42.0);
  EXPECT_EQ(root.child("sub").get("pi"), 3.25);
  EXPECT_EQ(root.get("nope", -1.0), -1.0);
  ASSERT_NE(root.find("sub"), nullptr);
  EXPECT_EQ(root.find("missing"), nullptr);

  const std::string json = root.json();
  EXPECT_NE(json.find("\"answer\""), std::string::npos);
  EXPECT_NE(json.find("\"sub\""), std::string::npos);
  EXPECT_NE(json.find("3.25"), std::string::npos);

  const std::string text = root.text();
  EXPECT_NE(text.find("answer"), std::string::npos);
}

TEST(ObsRunMetrics, LedgerBuilderFoldsTotals) {
  simmpi::CostLedger a;
  a.record(1000, 4);          // one collective, 1000 B over 4 messages
  a.record_p2p_send(250);
  simmpi::CostLedger b;
  b.record_p2p_send(750);

  obs::RunMetrics node("comm");
  const std::vector<simmpi::CostLedger> ledgers = {a, b};
  append_ledgers(node, ledgers);

  EXPECT_EQ(node.get("total_bytes_sent"), 2000.0);
  EXPECT_EQ(node.get("max_rank_bytes_sent"), 1250.0);
  EXPECT_EQ(node.get("ranks"), 2.0);
  ASSERT_NE(node.find("rank_0"), nullptr);
  EXPECT_EQ(node.find("rank_0")->get("total_bytes_sent"), 1250.0);
}

}  // namespace
}  // namespace amr
