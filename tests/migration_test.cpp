// Repartitioning/migration tests: splitter keys, cross-tree ownership, and
// the locality property that makes SFC partitioning attractive for AMR --
// local mesh changes cause only local ownership changes.
#include <gtest/gtest.h>

#include "octree/adapt.hpp"
#include "octree/generate.hpp"
#include "partition/partition.hpp"

namespace amr::partition {
namespace {

using octree::Octant;
using sfc::Curve;
using sfc::CurveKind;

TEST(SplitterKeys, OwnerByKeysMatchesPartitionOnSameTree) {
  const Curve curve(CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = 3;
  options.max_level = 8;
  const auto tree = octree::random_octree(8000, curve, options);
  for (const int p : {2, 7, 32}) {
    const Partition part = ideal_partition(tree.size(), p);
    const auto keys = splitter_keys(tree, part);
    ASSERT_EQ(keys.size(), static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < tree.size(); ++i) {
      EXPECT_EQ(owner_by_keys(keys, tree[i], curve), part.owner_of(i))
          << "element " << i << " p " << p;
    }
  }
}

TEST(SplitterKeys, MigrationZeroWhenNothingChanges) {
  const Curve curve(CurveKind::kMorton, 3);
  octree::GenerateOptions options;
  options.seed = 9;
  const auto tree = octree::random_octree(5000, curve, options);
  const Partition part = ideal_partition(tree.size(), 8);
  const auto keys = splitter_keys(tree, part);
  EXPECT_EQ(migration_volume(tree, curve, keys, part), 0U);
}

TEST(SplitterKeys, LocalRefinementCausesLocalMigration) {
  const Curve curve(CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = 13;
  options.max_level = 7;
  const auto tree = octree::random_octree(10000, curve, options);
  const int p = 16;
  const Partition before = ideal_partition(tree.size(), p);
  const auto keys = splitter_keys(tree, before);

  // Refine a small ball of the domain, repartition, count migration.
  const auto refined = octree::refine_octree(tree, curve, [](const Octant& o) {
    const auto a = o.anchor_unit();
    const double dx = a[0] - 0.5;
    const double dy = a[1] - 0.5;
    const double dz = a[2] - 0.5;
    return dx * dx + dy * dy + dz * dz < 0.01 && o.level < 9;
  });
  ASSERT_GT(refined.size(), tree.size());
  const Partition after = ideal_partition(refined.size(), p);
  const std::size_t moved = migration_volume(refined, curve, keys, after);

  // Ownership shifts are bounded: far less than a full redistribution.
  EXPECT_GT(moved, 0U);
  EXPECT_LT(moved, refined.size() / 2);
}

TEST(SplitterKeys, FullPerturbationMovesAlmostEverything) {
  const Curve curve(CurveKind::kMorton, 3);
  octree::GenerateOptions options;
  options.seed = 17;
  const auto tree = octree::random_octree(6000, curve, options);
  const int p = 8;
  const Partition part = ideal_partition(tree.size(), p);
  const auto keys = splitter_keys(tree, part);

  // Rotate ownership by one rank: everything migrates.
  Partition rotated = part;
  for (int r = 1; r < p; ++r) {
    rotated.offsets[static_cast<std::size_t>(r)] =
        part.offsets[static_cast<std::size_t>(r) - 1];
  }
  const std::size_t moved = migration_volume(tree, curve, keys, rotated);
  EXPECT_GT(moved, tree.size() / 2);
}

TEST(SplitterKeys, EmptyRanksInheritPredecessorKey) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = octree::uniform_octree(1, curve);
  Partition part;
  part.offsets = {0, 8, 8, 8};  // ranks 1 and 2 own nothing
  const auto keys = splitter_keys(tree, part);
  ASSERT_EQ(keys.size(), 3U);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    // owner_by_keys assigns the last rank whose key <= element; for an
    // empty trailing range that is the last rank with the shared key.
    EXPECT_GE(owner_by_keys(keys, tree[i], curve), 0);
  }
}

}  // namespace
}  // namespace amr::partition
