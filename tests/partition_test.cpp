// Partition and BucketSearch tests: ideal splits, tolerance semantics
// (§3.2), cut positions on bucket boundaries, and the monotone
// imbalance-vs-level property the flexible partitioning exploits.
#include <gtest/gtest.h>

#include "octree/generate.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace amr::partition {
namespace {

using octree::Octant;
using sfc::Curve;
using sfc::CurveKind;

std::vector<Octant> test_tree(CurveKind kind, std::size_t points, std::uint64_t seed) {
  const Curve curve(kind, 3);
  octree::GenerateOptions options;
  options.seed = seed;
  options.max_level = 10;
  options.max_points_per_leaf = 1;
  return octree::random_octree(points, curve, options);
}

TEST(IdealPartition, SplitsEvenly) {
  const Partition part = ideal_partition(1000, 8);
  EXPECT_EQ(part.num_ranks(), 8);
  EXPECT_EQ(part.total(), 1000U);
  for (int r = 0; r < 8; ++r) EXPECT_EQ(part.size_of(r), 125U);
  EXPECT_DOUBLE_EQ(part.load_imbalance(), 1.0);
  EXPECT_EQ(part.w_max(), 125U);
  EXPECT_DOUBLE_EQ(part.max_deviation(), 0.0);
}

TEST(IdealPartition, HandlesRemainders) {
  const Partition part = ideal_partition(10, 3);
  std::size_t total = 0;
  for (int r = 0; r < 3; ++r) total += part.size_of(r);
  EXPECT_EQ(total, 10U);
  EXPECT_LE(part.w_max(), 4U);
}

TEST(Partition, OwnerOfIsConsistentWithOffsets) {
  const Partition part = ideal_partition(1003, 7);
  for (std::size_t i = 0; i < part.total(); ++i) {
    const int r = part.owner_of(i);
    EXPECT_GE(i, part.offsets[static_cast<std::size_t>(r)]);
    EXPECT_LT(i, part.offsets[static_cast<std::size_t>(r) + 1]);
  }
}

class TolerancePartitionTest
    : public ::testing::TestWithParam<std::tuple<CurveKind, double>> {};

TEST_P(TolerancePartitionTest, RespectsTolerance) {
  const auto [kind, tolerance] = GetParam();
  const Curve curve(kind, 3);
  const auto tree = test_tree(kind, 20000, 5);
  const int p = 16;

  TreeSortPartitionOptions options;
  options.tolerance = tolerance;
  const Partition part = treesort_partition(tree, curve, p, options);
  EXPECT_EQ(part.total(), tree.size());

  // Each cut lands within tolerance*N/p of its target (or at the nearest
  // available element boundary when tolerance is 0).
  const double grain = static_cast<double>(tree.size()) / p;
  for (int r = 1; r < p; ++r) {
    const double target = grain * r;
    const double cut = static_cast<double>(part.offsets[static_cast<std::size_t>(r)]);
    EXPECT_LE(std::abs(cut - target), std::max(1.0, tolerance * grain) + 1.0)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TolerancePartitionTest,
    ::testing::Combine(::testing::Values(CurveKind::kMorton, CurveKind::kHilbert),
                       ::testing::Values(0.0, 0.05, 0.1, 0.3, 0.5)),
    [](const auto& info) {
      return sfc::to_string(std::get<0>(info.param)) + "_tol" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(TreesortPartition, ZeroToleranceIsNearIdeal) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = test_tree(CurveKind::kHilbert, 30000, 9);
  const Partition part = treesort_partition(tree, curve, 32, {});
  EXPECT_LT(part.max_deviation(), 0.01);
}

TEST(BucketSearch, CutsLieOnBucketBoundaries) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = test_tree(CurveKind::kMorton, 5000, 3);
  const BucketSearch search(tree, curve);

  for (const std::size_t target : {100UL, 1234UL, 2500UL, 4990UL}) {
    for (const int depth : {1, 2, 3, 5}) {
      const auto cut = search.find(target, depth, 0);
      ASSERT_LE(cut.position, tree.size());
      if (cut.position == 0 || cut.position == tree.size()) continue;
      // The element starting the right part differs from its predecessor in
      // the ancestor chain at or above depth `cut.depth_used`.
      const Octant& left = tree[cut.position - 1];
      const Octant& right = tree[cut.position];
      const int check = std::min(
          {cut.depth_used, static_cast<int>(left.level), static_cast<int>(right.level)});
      bool differs = false;
      for (int d = 1; d <= check; ++d) {
        differs = differs || left.child_number(d) != right.child_number(d);
      }
      EXPECT_TRUE(differs) << "cut at " << cut.position << " depth "
                           << cut.depth_used;
    }
  }
}

TEST(BucketSearch, DeeperSearchNeverIncreasesDeviation) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = test_tree(CurveKind::kHilbert, 8000, 11);
  const BucketSearch search(tree, curve);
  for (std::size_t target = 500; target < tree.size(); target += 977) {
    std::size_t prev_dev = tree.size();
    for (int depth = 1; depth <= 12; ++depth) {
      const auto cut = search.find(target, depth, 0);
      EXPECT_LE(cut.deviation, prev_dev) << "target " << target << " depth " << depth;
      prev_dev = cut.deviation;
    }
  }
}

// Paper §3.2 / Fig. 2: load imbalance decreases monotonically as the
// partition is refined level by level.
TEST(PartitionAtDepth, ImbalanceDecreasesWithDepth) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = test_tree(CurveKind::kHilbert, 30000, 21);
  const BucketSearch search(tree, curve);
  const int p = 12;
  double prev = 1e18;
  for (int depth = 2; depth <= 10; ++depth) {
    const Partition part = partition_at_depth(search, p, depth);
    const double dev = part.max_deviation();
    EXPECT_LE(dev, prev + 1e-12) << "depth " << depth;
    prev = dev;
  }
  // And at full depth it is essentially balanced.
  EXPECT_LT(partition_at_depth(search, p, octree::kMaxDepth).max_deviation(), 0.01);
}

// Property: find() returns the *globally optimal* cut among all bucket
// boundaries available at the depth cap, verified by brute force. A
// position i is a valid cut at depth d iff the SFC paths of tree[i-1] and
// tree[i] diverge at some depth <= d (plus the array ends).
TEST(BucketSearch, FindIsOptimalVsBruteForce) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = test_tree(CurveKind::kHilbert, 4000, 77);
  const BucketSearch search(tree, curve);

  // Divergence depth of each adjacent pair.
  std::vector<int> divergence(tree.size() + 1, 0);  // 0: always available
  for (std::size_t i = 1; i < tree.size(); ++i) {
    const Octant& a = tree[i - 1];
    const Octant& b = tree[i];
    const int common = std::min(a.level, b.level);
    int depth = 1;
    while (depth <= common && a.child_number(depth) == b.child_number(depth)) {
      ++depth;
    }
    divergence[i] = depth;  // first differing digit
  }

  util::Rng rng = util::make_rng(99);
  std::uniform_int_distribution<std::size_t> pick(1, tree.size() - 1);
  for (const int depth_cap : {1, 2, 3, 4, 6}) {
    for (int trial = 0; trial < 50; ++trial) {
      const std::size_t target = pick(rng);
      std::size_t best = std::min(target, tree.size() - target);  // ends
      for (std::size_t i = 1; i < tree.size(); ++i) {
        if (divergence[i] <= depth_cap) {
          const std::size_t dev = i > target ? i - target : target - i;
          best = std::min(best, dev);
        }
      }
      const auto cut = search.find(target, depth_cap, 0);
      EXPECT_EQ(cut.deviation, best)
          << "target " << target << " depth cap " << depth_cap;
    }
  }
}

TEST(Partition, LoadImbalanceLambda) {
  Partition part;
  part.offsets = {0, 10, 30, 40};
  EXPECT_DOUBLE_EQ(part.load_imbalance(), 2.0);
  EXPECT_EQ(part.w_max(), 20U);
}

TEST(TreesortPartition, SingleRankOwnsEverything) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = test_tree(CurveKind::kMorton, 1000, 2);
  const Partition part = treesort_partition(tree, curve, 1, {});
  EXPECT_EQ(part.num_ranks(), 1);
  EXPECT_EQ(part.size_of(0), tree.size());
}

TEST(TreesortPartition, MoreRanksThanElements) {
  const Curve curve(CurveKind::kMorton, 3);
  std::vector<Octant> tree = octree::uniform_octree(1, curve);  // 8 leaves
  const Partition part = treesort_partition(tree, curve, 16, {});
  EXPECT_EQ(part.total(), 8U);
  std::size_t total = 0;
  for (int r = 0; r < 16; ++r) total += part.size_of(r);
  EXPECT_EQ(total, 8U);
}

}  // namespace
}  // namespace amr::partition
