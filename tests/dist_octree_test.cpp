// Distributed points-to-octree tests: the per-rank pieces must concatenate
// to a complete linear curve-ordered octree, respect rank intervals, keep
// every point, and honor the leaf-size bound away from interval edges.
#include <gtest/gtest.h>

#include "octree/search.hpp"
#include "octree/treesort.hpp"
#include "partition/partition.hpp"
#include "simmpi/dist_octree.hpp"
#include "simmpi/runtime.hpp"

namespace amr::simmpi {
namespace {

using octree::Octant;
using sfc::Curve;
using sfc::CurveKind;

struct BuildResult {
  std::vector<std::vector<Octant>> pieces;
  std::vector<Octant> splitters;
  std::vector<std::array<std::uint32_t, 3>> all_points;
};

BuildResult run_build(CurveKind kind, int p, std::size_t points_per_rank,
                      const DistOctreeOptions& options, std::uint64_t seed) {
  BuildResult result;
  result.pieces.resize(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    octree::GenerateOptions gen;
    gen.seed = seed + static_cast<std::uint64_t>(r);
    gen.distribution = octree::PointDistribution::kNormal;
    const auto points = octree::generate_points(points_per_rank, gen);
    result.all_points.insert(result.all_points.end(), points.begin(), points.end());
  }
  run_ranks(p, [&](Comm& comm) {
    octree::GenerateOptions gen;
    gen.seed = seed + static_cast<std::uint64_t>(comm.rank());
    gen.distribution = octree::PointDistribution::kNormal;
    auto points = octree::generate_points(points_per_rank, gen);
    const Curve curve(kind, 3);
    auto built = dist_points_to_octree(std::move(points), comm, curve, options);
    result.pieces[static_cast<std::size_t>(comm.rank())] = std::move(built.leaves);
    if (comm.rank() == 0) result.splitters = built.splitters;
  });
  return result;
}

class DistOctreeTest : public ::testing::TestWithParam<std::tuple<CurveKind, int>> {};

TEST_P(DistOctreeTest, PiecesConcatenateToACompleteTree) {
  const auto [kind, p] = GetParam();
  const Curve curve(kind, 3);
  DistOctreeOptions options;
  options.max_points_per_leaf = 4;
  options.max_level = 10;
  const auto result = run_build(kind, p, 3000, options, 500);

  std::vector<Octant> all;
  for (const auto& piece : result.pieces) {
    all.insert(all.end(), piece.begin(), piece.end());
  }
  EXPECT_TRUE(octree::is_sfc_sorted(all, curve));
  EXPECT_TRUE(octree::is_linear(all, curve));
  EXPECT_TRUE(octree::is_complete(all, curve));

  // Every original point lands in some leaf of its owner's piece.
  for (const auto& point : result.all_points) {
    const std::size_t idx =
        octree::leaf_containing(all, curve, point[0], point[1], point[2]);
    EXPECT_TRUE(all[idx].contains_point(point[0], point[1], point[2]));
  }
}

TEST_P(DistOctreeTest, PiecesRespectRankIntervals) {
  const auto [kind, p] = GetParam();
  const Curve curve(kind, 3);
  DistOctreeOptions options;
  options.max_points_per_leaf = 2;
  options.max_level = 10;
  const auto result = run_build(kind, p, 2000, options, 700);
  ASSERT_EQ(result.splitters.size(), static_cast<std::size_t>(p));

  for (int r = 0; r < p; ++r) {
    for (const Octant& leaf : result.pieces[static_cast<std::size_t>(r)]) {
      EXPECT_EQ(partition::owner_by_keys(result.splitters,
                                         curve.first_descendant(leaf), curve),
                r);
      EXPECT_EQ(partition::owner_by_keys(result.splitters,
                                         curve.last_descendant(leaf), curve),
                r);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistOctreeTest,
    ::testing::Combine(::testing::Values(CurveKind::kMorton, CurveKind::kHilbert),
                       ::testing::Values(2, 4, 7)),
    [](const auto& info) {
      return sfc::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST(DistOctree, SingleRankMatchesSequentialBuilder) {
  const Curve curve(CurveKind::kHilbert, 3);
  octree::GenerateOptions gen;
  gen.seed = 42;
  gen.distribution = octree::PointDistribution::kNormal;
  const auto points = octree::generate_points(5000, gen);

  DistOctreeOptions options;
  options.max_points_per_leaf = 3;
  options.max_level = 9;
  std::vector<Octant> distributed;
  run_ranks(1, [&](Comm& comm) {
    auto mine = points;
    distributed = dist_points_to_octree(std::move(mine), comm, curve, options).leaves;
  });

  octree::GenerateOptions seq;
  seq.max_points_per_leaf = 3;
  seq.max_level = 9;
  const auto sequential = octree::build_octree(points, curve, seq);
  EXPECT_EQ(distributed, sequential);
}

TEST(DistOctree, LeafBoundHolds) {
  // Each rank's leaves hold at most max_points_per_leaf of the rank's
  // points (interval-edge splits only make leaves finer).
  const int p = 4;
  const Curve curve(CurveKind::kHilbert, 3);
  DistOctreeOptions options;
  options.max_points_per_leaf = 5;
  options.max_level = 12;
  const auto result = run_build(CurveKind::kHilbert, p, 2500, options, 900);

  std::vector<Octant> all;
  for (const auto& piece : result.pieces) {
    all.insert(all.end(), piece.begin(), piece.end());
  }
  std::vector<std::size_t> counts(all.size(), 0);
  for (const auto& point : result.all_points) {
    counts[octree::leaf_containing(all, curve, point[0], point[1], point[2])]++;
  }
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (static_cast<int>(all[i].level) < options.max_level) {
      EXPECT_LE(counts[i], options.max_points_per_leaf) << all[i].to_string();
    }
  }
}

}  // namespace
}  // namespace amr::simmpi
