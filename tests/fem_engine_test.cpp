// FEM engine tests: the KernelPlan's bit-identity contract (SoA plan ==
// fused sequential kernels, exactly, for any thread count), the
// interior/tail split, the deterministic parallel reductions, CG iterate
// histories that do not depend on AMR_THREADS, the hoisted Jacobi
// diagonal, and the simmpi overlapped schedule against the sequential
// oracle (the suite the TSan job replays under schedule perturbation).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "fem/cg.hpp"
#include "fem/engine.hpp"
#include "fem/laplacian.hpp"
#include "fem/vector.hpp"
#include "fuzz/generators.hpp"
#include "fuzz/harness.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "octree/octant.hpp"
#include "octree/treesort.hpp"
#include "partition/partition.hpp"
#include "simmpi/dist_fem.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace amr::fem {
namespace {

using mesh::GlobalMesh;
using partition::ideal_partition;
using sfc::Curve;
using sfc::CurveKind;

GlobalMesh make_mesh(CurveKind kind, std::size_t points, std::uint64_t seed,
                     int max_level = 6) {
  const Curve curve(kind, 3);
  octree::GenerateOptions options;
  options.seed = seed;
  options.max_level = max_level;
  options.max_points_per_leaf = 2;
  options.distribution = octree::PointDistribution::kNormal;
  auto tree =
      octree::balance_octree(octree::random_octree(points, curve, options), curve);
  return mesh::build_global_mesh(std::move(tree), curve);
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  util::Rng rng = util::make_rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// ParOptions pinned to a private pool of `width` threads, with the
/// parallel cutoff removed so even small meshes take the threaded path.
struct WidthFixture {
  explicit WidthFixture(int width) : pool(width) {
    par.pool = &pool;
    par.parallel_cutoff = 0;
  }
  util::ThreadPool pool;
  ParOptions par;
};

TEST(FemEngine, GlobalPlanMatchesApplyGlobalBitwise) {
  for (const CurveKind kind : {CurveKind::kHilbert, CurveKind::kMorton}) {
    const GlobalMesh mesh = make_mesh(kind, 1200, 3);
    const std::size_t n = mesh.elements.size();
    const KernelPlan plan = KernelPlan::build(mesh);
    ASSERT_TRUE(plan.built());
    EXPECT_EQ(plan.num_rows(), n);
    EXPECT_EQ(plan.num_ghosts(), 0U);

    const auto u = random_vector(n, 7);
    std::vector<double> reference(n);
    apply_global(mesh, u, reference);

    ParOptions seq;
    seq.num_threads = 1;
    std::vector<double> out(n, -7.0);
    plan.apply(u, out, seq);
    EXPECT_TRUE(bit_identical(reference, out));

    for (const int width : {2, 7}) {
      WidthFixture fx(width);
      std::vector<double> threaded(n, -7.0);
      plan.apply(u, threaded, fx.par);
      EXPECT_TRUE(bit_identical(reference, threaded)) << "width " << width;
    }
  }
}

TEST(FemEngine, LocalPlanMatchesApplyLocalBitwise) {
  const Curve curve(CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = 23;
  options.max_level = 6;
  options.distribution = octree::PointDistribution::kNormal;
  auto tree =
      octree::balance_octree(octree::random_octree(1800, curve, options), curve);
  const auto locals =
      mesh::build_local_meshes(tree, curve, ideal_partition(tree.size(), 5));

  for (const mesh::LocalMesh& m : locals) {
    ASSERT_TRUE(m.has_overlap_split());
    const std::size_t n = m.elements.size();
    const KernelPlan plan = KernelPlan::build(m);
    EXPECT_EQ(plan.num_ghosts(), m.ghosts.size());
    EXPECT_EQ(plan.interior_rows().size(), m.interior_elements.size());
    EXPECT_EQ(plan.tail_rows().size(), m.boundary_elements.size());

    const auto u = random_vector(n, 90 + static_cast<std::uint64_t>(m.rank));
    const auto ghost_u =
        random_vector(m.ghosts.size(), 190 + static_cast<std::uint64_t>(m.rank));

    std::vector<double> fused_ref(n);
    apply_local(m, u, ghost_u, fused_ref);

    for (const int width : {1, 2, 7}) {
      WidthFixture fx(width);
      std::vector<double> fused(n, -7.0);
      plan.apply(u, ghost_u, fused, fx.par);
      EXPECT_TRUE(bit_identical(fused_ref, fused)) << "rank " << m.rank
                                                   << " width " << width;

      // Interior rows take no ghost argument at all; tail finishes the
      // boundary rows. Together they must equal the fused kernel exactly.
      std::vector<double> split(n, -7.0);
      plan.apply_interior(u, split, fx.par);
      plan.apply_tail(u, ghost_u, split, fx.par);
      EXPECT_TRUE(bit_identical(fused_ref, split)) << "rank " << m.rank
                                                   << " width " << width;
    }
  }
}

TEST(FemEngine, DiagonalMatchesOperatorDiagonalBitwise) {
  const GlobalMesh mesh = make_mesh(CurveKind::kMorton, 900, 11);
  const KernelPlan plan = KernelPlan::build(mesh);
  const auto reference = operator_diagonal(mesh);
  ASSERT_EQ(plan.diagonal().size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(plan.diagonal()[i], reference[i]) << i;
    EXPECT_EQ(plan.inv_diagonal()[i],
              reference[i] > 0.0 ? 1.0 / reference[i] : 1.0)
        << i;
  }
}

TEST(FemEngine, DiagonalComputedOncePerPlanAcrossSolves) {
  // Regression hook for the hoisted Jacobi diagonal: repeated PCG solves
  // on one plan must not re-derive it.
  const GlobalMesh mesh = make_mesh(CurveKind::kHilbert, 800, 12);
  const std::uint64_t before = KernelPlan::total_diagonal_builds();
  const KernelPlan plan = KernelPlan::build(mesh);
  EXPECT_EQ(KernelPlan::total_diagonal_builds(), before + 1);

  const std::size_t n = mesh.elements.size();
  std::vector<double> b(n, 1.0);
  for (int solve = 0; solve < 3; ++solve) {
    std::vector<double> x;
    const CgResult result = preconditioned_conjugate_gradient(plan, b, x, {200, 1e-6});
    EXPECT_TRUE(result.converged);
  }
  EXPECT_EQ(KernelPlan::total_diagonal_builds(), before + 1)
      << "a PCG solve re-derived the diagonal";
}

TEST(FemEngine, DeterministicReductionsAcrossWidths) {
  // dot_det / norm2_det and the fused ops use a fixed-shape blocked
  // pairwise tree: the bits must not depend on thread count or pool.
  for (const std::size_t n : {1UL, 5UL, 4096UL, 4097UL, 100000UL}) {
    const auto a = random_vector(n, 1000 + n);
    const auto b = random_vector(n, 2000 + n);
    ParOptions seq;
    seq.num_threads = 1;
    const double dot_ref = dot_det(a, b, seq);
    const double norm_ref = norm2_det(a, seq);

    for (const int width : {2, 7}) {
      WidthFixture fx(width);
      EXPECT_EQ(dot_det(a, b, fx.par), dot_ref) << "n=" << n << " width=" << width;
      EXPECT_EQ(norm2_det(a, fx.par), norm_ref) << "n=" << n << " width=" << width;

      // Fused axpy+dot == axpy then dot, bitwise, at any width.
      std::vector<double> y1 = b;
      axpy(0.37, a, y1, fx.par);
      const double fused_ref = dot_det(y1, y1, seq);
      std::vector<double> y2 = b;
      const double fused = axpy_dot(0.37, a, y2, fx.par);
      EXPECT_EQ(fused, fused_ref) << "n=" << n << " width=" << width;
      EXPECT_TRUE(bit_identical(y1, y2));

      // scale_dot: z = d .* r and dot(r, z), fused.
      std::vector<double> z1(n);
      for (std::size_t i = 0; i < n; ++i) z1[i] = a[i] * b[i];
      const double sd_ref = dot_det(b, z1, seq);
      std::vector<double> z2(n);
      const double sd = scale_dot(a, b, z2, fx.par);
      EXPECT_EQ(sd, sd_ref) << "n=" << n << " width=" << width;
      EXPECT_TRUE(bit_identical(z1, z2));
    }
  }
}

TEST(FemEngine, CgHistoryIdenticalAcrossThreadCounts) {
  const GlobalMesh mesh = make_mesh(CurveKind::kHilbert, 1000, 14);
  const std::size_t n = mesh.elements.size();
  const KernelPlan plan = KernelPlan::build(mesh);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double h = static_cast<double>(mesh.elements[i].size()) /
                     static_cast<double>(1U << octree::kMaxDepth);
    b[i] = h * h * h;
  }

  CgOptions base;
  base.max_iterations = 300;
  base.rel_tolerance = 1e-9;
  base.num_threads = 1;
  std::vector<double> x_ref;
  const CgResult ref = conjugate_gradient(plan, b, x_ref, base);
  std::vector<double> px_ref;
  const CgResult pref = preconditioned_conjugate_gradient(plan, b, px_ref, base);
  ASSERT_TRUE(ref.converged);
  ASSERT_TRUE(pref.converged);
  ASSERT_FALSE(ref.residual_history.empty());

  for (const int width : {2, 7}) {
    util::ThreadPool pool(width);
    CgOptions opts = base;
    opts.num_threads = 0;
    opts.pool = &pool;

    std::vector<double> x;
    const CgResult run = conjugate_gradient(plan, b, x, opts);
    EXPECT_EQ(run.iterations, ref.iterations) << "width " << width;
    ASSERT_EQ(run.residual_history.size(), ref.residual_history.size());
    for (std::size_t i = 0; i < ref.residual_history.size(); ++i) {
      EXPECT_EQ(run.residual_history[i], ref.residual_history[i])
          << "width " << width << " iteration " << i;
    }
    EXPECT_TRUE(bit_identical(x, x_ref)) << "width " << width;

    std::vector<double> px;
    const CgResult prun = preconditioned_conjugate_gradient(plan, b, px, opts);
    EXPECT_EQ(prun.iterations, pref.iterations) << "width " << width;
    ASSERT_EQ(prun.residual_history.size(), pref.residual_history.size());
    for (std::size_t i = 0; i < pref.residual_history.size(); ++i) {
      EXPECT_EQ(prun.residual_history[i], pref.residual_history[i])
          << "width " << width << " iteration " << i;
    }
    EXPECT_TRUE(bit_identical(px, px_ref)) << "width " << width;
  }
}

TEST(FemEngine, FuzzCorpusMeshesBitIdenticalAcrossWidths) {
  // Property test over the fuzz seed corpus: for every corpus case that
  // exercises the matvec stage (complete balanced-tree unions), the plan
  // matvec is bit-identical sequential / 1-thread / N-thread, and a short
  // CG run has an identical iterate history across widths.
  int cases = 0;
  for (const fuzz::CaseSpec& spec : fuzz::seed_corpus()) {
    if (spec.matvec_iterations <= 0) continue;
    if (++cases > 4) break;

    const Curve curve(spec.curve, spec.dim);
    auto inputs = fuzz::make_inputs(spec);
    std::vector<octree::Octant> tree;
    for (auto& piece : inputs) {
      tree.insert(tree.end(), piece.begin(), piece.end());
    }
    octree::tree_sort(tree, curve);
    const GlobalMesh mesh = mesh::build_global_mesh(std::move(tree), curve);
    const std::size_t n = mesh.elements.size();
    ASSERT_GT(n, 0U);
    const KernelPlan plan = KernelPlan::build(mesh);

    const auto u = random_vector(n, spec.seed);
    std::vector<double> reference(n);
    apply_global(mesh, u, reference);

    std::vector<std::vector<double>> solutions;
    std::vector<std::vector<double>> histories;
    for (const int width : {1, 2, 7}) {
      WidthFixture fx(width);
      std::vector<double> out(n, -7.0);
      plan.apply(u, out, fx.par);
      EXPECT_TRUE(bit_identical(reference, out))
          << fuzz::to_string(spec) << " width " << width;

      CgOptions opts;
      opts.max_iterations = 25;
      opts.rel_tolerance = 0.0;  // fixed-length run: compare full histories
      opts.pool = &fx.pool;
      std::vector<double> x;
      const CgResult run = conjugate_gradient(plan, u, x, opts);
      solutions.push_back(std::move(x));
      histories.push_back(run.residual_history);
    }
    for (std::size_t w = 1; w < solutions.size(); ++w) {
      EXPECT_TRUE(bit_identical(solutions[0], solutions[w])) << fuzz::to_string(spec);
      ASSERT_EQ(histories[0].size(), histories[w].size());
      for (std::size_t i = 0; i < histories[0].size(); ++i) {
        EXPECT_EQ(histories[0][i], histories[w][i])
            << fuzz::to_string(spec) << " iteration " << i;
      }
    }
  }
  EXPECT_GT(cases, 0) << "seed corpus lost its matvec cases";
}

TEST(FemEngineOverlap, SimmpiOverlappedMatchesSequentialOracle) {
  // The overlapped schedule on prebuilt plans, with concurrently running
  // rank threads, against the sequential "global engine" oracle -- the
  // test the TSan job replays under AMR_SIMMPI_PERTURB_SEED schedule
  // perturbation.
  const Curve curve(CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = 44;
  options.max_level = 6;
  options.distribution = octree::PointDistribution::kNormal;
  auto tree =
      octree::balance_octree(octree::random_octree(2500, curve, options), curve);
  const int p = 4;
  const int iterations = 8;
  const auto locals =
      mesh::build_local_meshes(tree, curve, ideal_partition(tree.size(), p));
  std::vector<KernelPlan> plans;
  plans.reserve(locals.size());
  for (const auto& m : locals) plans.push_back(KernelPlan::build(m));

  const auto u0 = random_vector(tree.size(), 45);
  const DistributedLaplacian oracle(locals);
  auto pieces = oracle.scatter(u0);
  {
    auto out = pieces;
    for (int it = 0; it < iterations; ++it) {
      oracle.matvec(pieces, out);
      std::swap(pieces, out);
    }
  }
  const std::vector<double> expected = oracle.gather(pieces);

  std::vector<std::vector<double>> results(static_cast<std::size_t>(p));
  simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    const mesh::LocalMesh& m = locals[r];
    std::vector<double> u(u0.begin() + static_cast<std::ptrdiff_t>(m.global_begin),
                          u0.begin() + static_cast<std::ptrdiff_t>(
                                           m.global_begin + m.elements.size()));
    const auto report =
        simmpi::dist_matvec_loop_overlapped(m, plans[r], comm, iterations, u);
    EXPECT_EQ(report.plan_seconds, 0.0);  // prebuilt plan: nothing to build
    results[r] = std::move(u);
  });
  std::vector<double> actual;
  for (const auto& piece : results) actual.insert(actual.end(), piece.begin(), piece.end());
  EXPECT_TRUE(bit_identical(actual, expected));
}

TEST(FemEngineOverlap, InteriorKernelNeverReadsGhosts) {
  // Structural guarantee behind the overlap: apply_interior has no ghost
  // parameter, and the rows it writes must be final even when the ghost
  // array is poisoned for the tail pass of a *different* buffer.
  const Curve curve(CurveKind::kMorton, 3);
  octree::GenerateOptions options;
  options.seed = 55;
  options.max_level = 6;
  auto tree =
      octree::balance_octree(octree::random_octree(1500, curve, options), curve);
  const auto locals =
      mesh::build_local_meshes(tree, curve, ideal_partition(tree.size(), 3));
  for (const mesh::LocalMesh& m : locals) {
    const KernelPlan plan = KernelPlan::build(m);
    const std::size_t n = m.elements.size();
    const auto u = random_vector(n, 60);
    const auto ghost_u = random_vector(m.ghosts.size(), 61);

    std::vector<double> fused(n);
    plan.apply(u, ghost_u, fused);

    std::vector<double> split(n, -7.0);
    plan.apply_interior(u, split);
    // Interior rows already final and equal to the fused kernel's.
    for (const std::uint32_t row : plan.interior_rows()) {
      EXPECT_EQ(split[row], fused[row]);
    }
    plan.apply_tail(u, ghost_u, split, {});
    EXPECT_TRUE(bit_identical(split, fused)) << "rank " << m.rank;
  }
}

}  // namespace
}  // namespace amr::fem
