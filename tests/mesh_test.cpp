// Distributed mesh construction tests: faces, ghosts, matched exchange
// channels, and consistency between the global and per-rank views.
#include <gtest/gtest.h>

#include <map>

#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"

namespace amr::mesh {
namespace {

using octree::Octant;
using partition::Partition;
using partition::ideal_partition;
using sfc::Curve;
using sfc::CurveKind;

std::vector<Octant> balanced_tree(CurveKind kind, std::size_t points,
                                  std::uint64_t seed) {
  const Curve curve(kind, 3);
  octree::GenerateOptions options;
  options.seed = seed;
  options.max_level = 7;
  options.max_points_per_leaf = 2;
  options.distribution = octree::PointDistribution::kNormal;
  return octree::balance_octree(octree::random_octree(points, curve, options), curve);
}

TEST(GlobalMesh, UniformGridFaceCount) {
  const Curve curve(CurveKind::kMorton, 3);
  const GlobalMesh mesh = build_global_mesh(octree::uniform_octree(2, curve), curve);
  // 4x4x4 grid: interior faces = 3 axes * 3 planes/axis * 16 faces = 144;
  // boundary faces = 6 sides * 16 = 96.
  EXPECT_EQ(mesh.faces.size(), 144U);
  EXPECT_EQ(mesh.boundary_faces.size(), 96U);
  for (const Face& f : mesh.faces) {
    EXPECT_FALSE(f.b_is_ghost);
    EXPECT_GT(f.area, 0.0);
    EXPECT_GT(f.dist, 0.0);
  }
}

TEST(GlobalMesh, FaceAreasSumToSurfaceBudget) {
  // Sum of interior face areas x2 plus boundary areas equals the total
  // per-element surface: 6 unit faces per cell of a uniform grid.
  const Curve curve(CurveKind::kHilbert, 3);
  const GlobalMesh mesh = build_global_mesh(octree::uniform_octree(3, curve), curve);
  double total = 0.0;
  for (const Face& f : mesh.faces) total += 2.0 * f.area;
  for (const BoundaryFace& f : mesh.boundary_faces) total += f.area;
  const double per_cell = 6.0 * (1.0 / 8.0) * (1.0 / 8.0);
  EXPECT_NEAR(total, per_cell * 512.0, 1e-9);
}

TEST(GlobalMesh, AdaptiveTreeFacesConserveArea) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = balanced_tree(CurveKind::kHilbert, 3000, 3);
  const GlobalMesh mesh = build_global_mesh(tree, curve);
  double per_element_surface = 0.0;
  for (const Octant& o : tree) {
    const double s = static_cast<double>(o.size()) /
                     static_cast<double>(1U << octree::kMaxDepth);
    per_element_surface += 6.0 * s * s;
  }
  double accounted = 0.0;
  for (const Face& f : mesh.faces) accounted += 2.0 * f.area;
  for (const BoundaryFace& f : mesh.boundary_faces) accounted += f.area;
  EXPECT_NEAR(accounted / per_element_surface, 1.0, 1e-9);
}

class LocalMeshTest : public ::testing::TestWithParam<int> {};

TEST_P(LocalMeshTest, LocalViewsTileTheGlobalMesh) {
  const int p = GetParam();
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = balanced_tree(CurveKind::kHilbert, 4000, 9);
  const Partition part = ideal_partition(tree.size(), p);
  const auto meshes = build_local_meshes(tree, curve, part);
  const GlobalMesh global = build_global_mesh(tree, curve);

  ASSERT_EQ(meshes.size(), static_cast<std::size_t>(p));

  std::size_t elements = 0;
  std::size_t boundary_faces = 0;
  std::size_t owned_faces = 0;
  std::size_t ghost_faces = 0;
  for (const LocalMesh& m : meshes) {
    elements += m.elements.size();
    boundary_faces += m.boundary_faces.size();
    for (const Face& f : m.faces) {
      (f.b_is_ghost ? ghost_faces : owned_faces)++;
    }
    // Channel sanity: peers strictly ascending, no self-channel.
    for (std::size_t k = 0; k < m.peers.size(); ++k) {
      EXPECT_NE(m.peers[k], m.rank);
      if (k > 0) {
        EXPECT_LT(m.peers[k - 1], m.peers[k]);
      }
    }
    EXPECT_EQ(m.recv_volume(), m.ghosts.size());
  }
  EXPECT_EQ(elements, tree.size());
  EXPECT_EQ(boundary_faces, global.boundary_faces.size());
  // Every cross-rank face appears twice (once per side); owned faces once.
  EXPECT_EQ(owned_faces + ghost_faces / 2, global.faces.size());
  EXPECT_EQ(ghost_faces % 2, 0U);
}

TEST_P(LocalMeshTest, SendRecvChannelsMatch) {
  const int p = GetParam();
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = balanced_tree(CurveKind::kMorton, 3000, 5);
  const auto meshes = build_local_meshes(tree, curve, ideal_partition(tree.size(), p));

  for (const LocalMesh& m : meshes) {
    for (std::size_t k = 0; k < m.peers.size(); ++k) {
      const LocalMesh& peer = meshes[static_cast<std::size_t>(m.peers[k])];
      // Find the reciprocal channel.
      const auto it = std::find(peer.peers.begin(), peer.peers.end(), m.rank);
      ASSERT_NE(it, peer.peers.end());
      const std::size_t pk = static_cast<std::size_t>(it - peer.peers.begin());
      EXPECT_EQ(m.recv_lists[k].size(), peer.send_lists[pk].size());
      // Payload agreement: the peer's send elements are exactly our ghosts
      // in those slots.
      for (std::size_t i = 0; i < m.recv_lists[k].size(); ++i) {
        const Octant sent = peer.elements[peer.send_lists[pk][i]];
        const Octant expected = m.ghosts[m.recv_lists[k][i]];
        EXPECT_EQ(sent, expected);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, LocalMeshTest, ::testing::Values(1, 2, 5, 8, 16),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(LocalMesh, GhostOwnersAreCorrect) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = balanced_tree(CurveKind::kHilbert, 2000, 7);
  const Partition part = ideal_partition(tree.size(), 6);
  const auto meshes = build_local_meshes(tree, curve, part);
  for (const LocalMesh& m : meshes) {
    for (std::size_t g = 0; g < m.ghosts.size(); ++g) {
      EXPECT_EQ(m.ghost_owner[g], part.owner_of(m.ghost_global[g]));
      EXPECT_NE(m.ghost_owner[g], m.rank);
      EXPECT_EQ(tree[m.ghost_global[g]], m.ghosts[g]);
    }
  }
}

}  // namespace
}  // namespace amr::mesh
