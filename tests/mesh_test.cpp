// Distributed mesh construction tests: faces, ghosts, matched exchange
// channels, and consistency between the global and per-rank views.
#include <gtest/gtest.h>

#include <map>

#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"

namespace amr::mesh {
namespace {

using octree::Octant;
using partition::Partition;
using partition::ideal_partition;
using sfc::Curve;
using sfc::CurveKind;

std::vector<Octant> balanced_tree(CurveKind kind, std::size_t points,
                                  std::uint64_t seed) {
  const Curve curve(kind, 3);
  octree::GenerateOptions options;
  options.seed = seed;
  options.max_level = 7;
  options.max_points_per_leaf = 2;
  options.distribution = octree::PointDistribution::kNormal;
  return octree::balance_octree(octree::random_octree(points, curve, options), curve);
}

TEST(GlobalMesh, UniformGridFaceCount) {
  const Curve curve(CurveKind::kMorton, 3);
  const GlobalMesh mesh = build_global_mesh(octree::uniform_octree(2, curve), curve);
  // 4x4x4 grid: interior faces = 3 axes * 3 planes/axis * 16 faces = 144;
  // boundary faces = 6 sides * 16 = 96.
  EXPECT_EQ(mesh.faces.size(), 144U);
  EXPECT_EQ(mesh.boundary_faces.size(), 96U);
  for (const Face& f : mesh.faces) {
    EXPECT_FALSE(f.b_is_ghost);
    EXPECT_GT(f.area, 0.0);
    EXPECT_GT(f.dist, 0.0);
  }
}

TEST(GlobalMesh, FaceAreasSumToSurfaceBudget) {
  // Sum of interior face areas x2 plus boundary areas equals the total
  // per-element surface: 6 unit faces per cell of a uniform grid.
  const Curve curve(CurveKind::kHilbert, 3);
  const GlobalMesh mesh = build_global_mesh(octree::uniform_octree(3, curve), curve);
  double total = 0.0;
  for (const Face& f : mesh.faces) total += 2.0 * f.area;
  for (const BoundaryFace& f : mesh.boundary_faces) total += f.area;
  const double per_cell = 6.0 * (1.0 / 8.0) * (1.0 / 8.0);
  EXPECT_NEAR(total, per_cell * 512.0, 1e-9);
}

TEST(GlobalMesh, AdaptiveTreeFacesConserveArea) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = balanced_tree(CurveKind::kHilbert, 3000, 3);
  const GlobalMesh mesh = build_global_mesh(tree, curve);
  double per_element_surface = 0.0;
  for (const Octant& o : tree) {
    const double s = static_cast<double>(o.size()) /
                     static_cast<double>(1U << octree::kMaxDepth);
    per_element_surface += 6.0 * s * s;
  }
  double accounted = 0.0;
  for (const Face& f : mesh.faces) accounted += 2.0 * f.area;
  for (const BoundaryFace& f : mesh.boundary_faces) accounted += f.area;
  EXPECT_NEAR(accounted / per_element_surface, 1.0, 1e-9);
}

class LocalMeshTest : public ::testing::TestWithParam<int> {};

TEST_P(LocalMeshTest, LocalViewsTileTheGlobalMesh) {
  const int p = GetParam();
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = balanced_tree(CurveKind::kHilbert, 4000, 9);
  const Partition part = ideal_partition(tree.size(), p);
  const auto meshes = build_local_meshes(tree, curve, part);
  const GlobalMesh global = build_global_mesh(tree, curve);

  ASSERT_EQ(meshes.size(), static_cast<std::size_t>(p));

  std::size_t elements = 0;
  std::size_t boundary_faces = 0;
  std::size_t owned_faces = 0;
  std::size_t ghost_faces = 0;
  for (const LocalMesh& m : meshes) {
    elements += m.elements.size();
    boundary_faces += m.boundary_faces.size();
    for (const Face& f : m.faces) {
      (f.b_is_ghost ? ghost_faces : owned_faces)++;
    }
    // Channel sanity: peers strictly ascending, no self-channel.
    for (std::size_t k = 0; k < m.peers.size(); ++k) {
      EXPECT_NE(m.peers[k], m.rank);
      if (k > 0) {
        EXPECT_LT(m.peers[k - 1], m.peers[k]);
      }
    }
    EXPECT_EQ(m.recv_volume(), m.ghosts.size());
  }
  EXPECT_EQ(elements, tree.size());
  EXPECT_EQ(boundary_faces, global.boundary_faces.size());
  // Every cross-rank face appears twice (once per side); owned faces once.
  EXPECT_EQ(owned_faces + ghost_faces / 2, global.faces.size());
  EXPECT_EQ(ghost_faces % 2, 0U);
}

TEST_P(LocalMeshTest, SendRecvChannelsMatch) {
  const int p = GetParam();
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = balanced_tree(CurveKind::kMorton, 3000, 5);
  const auto meshes = build_local_meshes(tree, curve, ideal_partition(tree.size(), p));

  for (const LocalMesh& m : meshes) {
    for (std::size_t k = 0; k < m.peers.size(); ++k) {
      const LocalMesh& peer = meshes[static_cast<std::size_t>(m.peers[k])];
      // Find the reciprocal channel.
      const auto it = std::find(peer.peers.begin(), peer.peers.end(), m.rank);
      ASSERT_NE(it, peer.peers.end());
      const std::size_t pk = static_cast<std::size_t>(it - peer.peers.begin());
      EXPECT_EQ(m.recv_lists[k].size(), peer.send_lists[pk].size());
      // Payload agreement: the peer's send elements are exactly our ghosts
      // in those slots.
      for (std::size_t i = 0; i < m.recv_lists[k].size(); ++i) {
        const Octant sent = peer.elements[peer.send_lists[pk][i]];
        const Octant expected = m.ghosts[m.recv_lists[k][i]];
        EXPECT_EQ(sent, expected);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, LocalMeshTest, ::testing::Values(1, 2, 5, 8, 16),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(LocalMesh, OverlapSplitPartitionsElements) {
  // build_local_meshes must leave every rank with a valid overlap split:
  // interior + boundary is a disjoint cover of the owned elements, and
  // membership matches "touches a ghost-backed face" recomputed here.
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = balanced_tree(CurveKind::kHilbert, 3000, 13);
  const auto meshes = build_local_meshes(tree, curve, ideal_partition(tree.size(), 6));
  for (const LocalMesh& m : meshes) {
    ASSERT_TRUE(m.has_overlap_split());
    EXPECT_EQ(m.interior_elements.size() + m.boundary_elements.size(),
              m.elements.size());

    std::vector<char> touches_ghost(m.elements.size(), 0);
    for (const Face& f : m.faces) {
      if (f.b_is_ghost) touches_ghost[f.a] = 1;
    }
    std::vector<char> seen(m.elements.size(), 0);
    for (const std::uint32_t e : m.interior_elements) {
      EXPECT_EQ(touches_ghost[e], 0);
      EXPECT_EQ(seen[e]++, 0);
    }
    for (const std::uint32_t e : m.boundary_elements) {
      EXPECT_EQ(touches_ghost[e], 1);
      EXPECT_EQ(seen[e]++, 0);
    }
  }
}

TEST(LocalMesh, OverlapSplitFaceRefsCoverEveryFaceOnce) {
  // The element->face CSR holds one reference per (face, owned side):
  // ghost faces appear once (their `a` side), owned-owned faces twice.
  // Per element, references must walk the face list in ascending order --
  // that ordering is what makes the phase-split kernel bit-identical to
  // the fused one.
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = balanced_tree(CurveKind::kMorton, 2500, 17);
  const auto meshes = build_local_meshes(tree, curve, ideal_partition(tree.size(), 5));
  for (const LocalMesh& m : meshes) {
    ASSERT_TRUE(m.has_overlap_split());
    std::size_t expected_refs = 0;
    for (const Face& f : m.faces) expected_refs += f.b_is_ghost ? 1 : 2;
    EXPECT_EQ(m.face_refs.size(), expected_refs);
    EXPECT_EQ(m.face_ref_offsets.back(), expected_refs);
    EXPECT_EQ(m.wall_refs.size(), m.boundary_faces.size());

    std::map<std::uint32_t, int> ref_count;
    for (std::size_t e = 0; e < m.elements.size(); ++e) {
      std::uint32_t prev_face = 0;
      for (std::uint32_t k = m.face_ref_offsets[e]; k < m.face_ref_offsets[e + 1];
           ++k) {
        const std::uint32_t face = m.face_refs[k] >> 1U;
        const bool is_b_side = (m.face_refs[k] & 1U) != 0;
        ASSERT_LT(face, m.faces.size());
        const Face& f = m.faces[face];
        if (is_b_side) {
          EXPECT_FALSE(f.b_is_ghost);
          EXPECT_EQ(f.b, e);
        } else {
          EXPECT_EQ(f.a, e);
        }
        if (k > m.face_ref_offsets[e]) EXPECT_GE(face, prev_face);
        prev_face = face;
        ++ref_count[m.face_refs[k]];

        // The flattened gather entry must mirror the face record exactly:
        // the same area/dist division and the opposite side's index.
        ASSERT_EQ(m.gather_refs.size(), m.face_refs.size());
        const LocalMesh::GatherRef& g = m.gather_refs[k];
        EXPECT_EQ(g.k, f.area / f.dist);
        if (is_b_side) {
          EXPECT_EQ(g.other, f.a);
          EXPECT_EQ(g.ghost, 0U);
        } else {
          EXPECT_EQ(g.other, f.b);
          EXPECT_EQ(g.ghost, f.b_is_ghost ? 1U : 0U);
        }
      }
    }
    for (const auto& [ref, count] : ref_count) EXPECT_EQ(count, 1) << ref;

    ASSERT_EQ(m.wall_coeffs.size(), m.wall_refs.size());
    for (std::size_t w = 0; w < m.wall_refs.size(); ++w) {
      const BoundaryFace& bf = m.boundary_faces[m.wall_refs[w]];
      EXPECT_EQ(m.wall_coeffs[w], bf.area / bf.dist);
    }
  }
}

TEST(LocalMesh, OverlapSplitPartitionsFaceLists) {
  // build_overlap_split must leave the face list stably partitioned:
  // owned-owned faces in [0, num_owned_faces), ghost faces after, and the
  // wall list split the same way by whether its row touches a ghost face.
  // The overlapped matvec kernels stream these ranges directly.
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = balanced_tree(CurveKind::kHilbert, 2800, 23);
  const auto meshes = build_local_meshes(tree, curve, ideal_partition(tree.size(), 5));
  for (const LocalMesh& m : meshes) {
    ASSERT_TRUE(m.has_overlap_split());
    ASSERT_LE(m.num_owned_faces, m.faces.size());
    for (std::size_t i = 0; i < m.faces.size(); ++i) {
      EXPECT_EQ(m.faces[i].b_is_ghost, i >= m.num_owned_faces) << i;
    }
    ASSERT_EQ(m.boundary_mask.size(), m.elements.size());
    ASSERT_LE(m.num_interior_walls, m.boundary_faces.size());
    for (std::size_t i = 0; i < m.boundary_faces.size(); ++i) {
      EXPECT_EQ(m.boundary_mask[m.boundary_faces[i].a] != 0,
                i >= m.num_interior_walls)
          << i;
    }
  }
}

TEST(LocalMesh, GhostOwnersAreCorrect) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = balanced_tree(CurveKind::kHilbert, 2000, 7);
  const Partition part = ideal_partition(tree.size(), 6);
  const auto meshes = build_local_meshes(tree, curve, part);
  for (const LocalMesh& m : meshes) {
    for (std::size_t g = 0; g < m.ghosts.size(); ++g) {
      EXPECT_EQ(m.ghost_owner[g], part.owner_of(m.ghost_global[g]));
      EXPECT_NE(m.ghost_owner[g], m.rank);
      EXPECT_EQ(tree[m.ghost_global[g]], m.ghosts[g]);
    }
  }
}

}  // namespace
}  // namespace amr::mesh
