// TreeSort (Alg. 1) tests: agreement with comparison sort under both
// curves, stability, mixed-level inputs, and the radix/quadtree
// equivalence of paper Fig. 1.
#include <gtest/gtest.h>

#include <algorithm>

#include "octree/generate.hpp"
#include "octree/octant.hpp"
#include "octree/treesort.hpp"
#include "sfc/curve.hpp"
#include "util/rng.hpp"

namespace amr::octree {
namespace {

using sfc::Curve;
using sfc::CurveKind;

std::vector<Octant> random_octants(std::size_t n, int max_level, std::uint64_t seed) {
  util::Rng rng = util::make_rng(seed);
  std::uniform_int_distribution<std::uint32_t> coord(0, (1U << kMaxDepth) - 1);
  std::uniform_int_distribution<int> lvl(1, max_level);
  std::vector<Octant> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(octant_from_point(coord(rng), coord(rng), coord(rng), lvl(rng)));
  }
  return out;
}

struct SortCase {
  CurveKind kind;
  std::size_t n;
  std::size_t cutoff;
};

class TreeSortTest : public ::testing::TestWithParam<SortCase> {};

TEST_P(TreeSortTest, MatchesComparisonSort) {
  const auto [kind, n, cutoff] = GetParam();
  const Curve curve(kind, 3);
  std::vector<Octant> octants = random_octants(n, 12, 100 + n);
  std::vector<Octant> reference = octants;

  TreeSortOptions options;
  options.small_cutoff = cutoff;
  tree_sort(octants, curve, options);
  std::stable_sort(reference.begin(), reference.end(), curve.comparator());

  ASSERT_EQ(octants.size(), reference.size());
  for (std::size_t i = 0; i < octants.size(); ++i) {
    EXPECT_EQ(curve.compare(octants[i], reference[i]), 0) << "at " << i;
  }
  EXPECT_TRUE(is_sfc_sorted(octants, curve));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeSortTest,
    ::testing::Values(SortCase{CurveKind::kMorton, 1000, 16},
                      SortCase{CurveKind::kHilbert, 1000, 16},
                      SortCase{CurveKind::kMorton, 5000, 1},
                      SortCase{CurveKind::kHilbert, 5000, 1},
                      SortCase{CurveKind::kMorton, 0, 16},
                      SortCase{CurveKind::kHilbert, 1, 16},
                      SortCase{CurveKind::kHilbert, 20000, 32}),
    [](const auto& info) {
      return sfc::to_string(info.param.kind) + "_n" + std::to_string(info.param.n) +
             "_c" + std::to_string(info.param.cutoff);
    });

TEST(TreeSort, HandlesMixedLevelsWithAncestors) {
  const Curve curve(CurveKind::kHilbert, 3);
  // A chain of nested octants plus scattered leaves.
  std::vector<Octant> octants;
  Octant o = root_octant();
  for (int l = 1; l <= 10; ++l) {
    o = o.child(l % 8);
    octants.push_back(o);
  }
  auto extra = random_octants(500, 10, 77);
  octants.insert(octants.end(), extra.begin(), extra.end());

  std::vector<Octant> reference = octants;
  tree_sort(octants, curve);
  std::sort(reference.begin(), reference.end(), curve.comparator());
  for (std::size_t i = 0; i < octants.size(); ++i) {
    EXPECT_EQ(curve.compare(octants[i], reference[i]), 0);
  }
}

TEST(TreeSort, DuplicatesSurvive) {
  const Curve curve(CurveKind::kMorton, 3);
  std::vector<Octant> octants(100, octant_from_point(123 << 20, 45 << 20, 67 << 20, 9));
  auto extra = random_octants(100, 9, 5);
  octants.insert(octants.end(), extra.begin(), extra.end());
  const std::size_t before = octants.size();
  tree_sort(octants, curve);
  EXPECT_EQ(octants.size(), before);
  EXPECT_TRUE(is_sfc_sorted(octants, curve));
}

TEST(TreeSort, WorksIn2d) {
  const Curve curve(CurveKind::kHilbert, 2);
  util::Rng rng = util::make_rng(21);
  std::uniform_int_distribution<std::uint32_t> coord(0, (1U << kMaxDepth) - 1);
  std::vector<Octant> octants;
  for (int i = 0; i < 2000; ++i) {
    Octant o = octant_from_point(coord(rng), coord(rng), 0, 10);
    octants.push_back(o);
  }
  std::vector<Octant> reference = octants;
  tree_sort(octants, curve);
  std::sort(reference.begin(), reference.end(), curve.comparator());
  for (std::size_t i = 0; i < octants.size(); ++i) {
    EXPECT_EQ(curve.compare(octants[i], reference[i]), 0);
  }
}

// Paper Fig. 1: bucketing by most-significant coordinate bits in curve
// order is exactly a top-down quadtree construction -- after sorting,
// elements of each level-l quadrant form a contiguous run whose order of
// first appearance follows the curve.
TEST(TreeSort, RadixEqualsTopDownQuadtree) {
  const Curve curve(CurveKind::kHilbert, 2);
  util::Rng rng = util::make_rng(42);
  std::uniform_int_distribution<std::uint32_t> coord(0, (1U << kMaxDepth) - 1);
  std::vector<Octant> points;
  for (int i = 0; i < 4096; ++i) {
    points.push_back(octant_from_point(coord(rng), coord(rng), 0, kMaxDepth));
  }
  tree_sort(points, curve);

  for (int level = 1; level <= 3; ++level) {
    // Quadrant of each point at this level must be non-repeating runs.
    std::vector<std::uint64_t> run_ids;
    for (const Octant& p : points) {
      const std::uint64_t id = curve.rank_at_own_level(p.ancestor_at(level));
      if (run_ids.empty() || run_ids.back() != id) run_ids.push_back(id);
    }
    // Runs are strictly increasing curve ranks: each quadrant appears once,
    // in curve order.
    for (std::size_t i = 1; i < run_ids.size(); ++i) {
      EXPECT_LT(run_ids[i - 1], run_ids[i]);
    }
  }
}

TEST(TreeSortChecks, DetectorsWork) {
  const Curve curve(CurveKind::kMorton, 3);
  std::vector<Octant> tree = uniform_octree(2, curve);
  EXPECT_TRUE(is_sfc_sorted(tree, curve));
  EXPECT_TRUE(is_linear(tree, curve));
  EXPECT_TRUE(is_complete(tree, curve));

  std::swap(tree[3], tree[10]);
  EXPECT_FALSE(is_sfc_sorted(tree, curve));
  std::swap(tree[3], tree[10]);

  // Overlap: replace one leaf with its parent (covers siblings).
  auto broken = tree;
  broken[8] = broken[8].parent();
  tree_sort(broken, curve);
  EXPECT_FALSE(is_linear(broken, curve));

  // Missing leaf: not complete anymore.
  auto missing = tree;
  missing.pop_back();
  EXPECT_TRUE(is_linear(missing, curve));
  EXPECT_FALSE(is_complete(missing, curve));
}

}  // namespace
}  // namespace amr::octree
