// Properties of the incremental sort/repartition path that the fuzz
// harness pins differentially but that deserve named, deterministic tests:
// the merge route is bit-identical to the full sort, the fallback
// threshold actually routes (merge above the threshold must never run),
// migration-term-zero reproduces the seed OptiPart exactly, and a
// migration-dominated model keeps the previous cuts.
#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <vector>

#include "machine/machine_model.hpp"
#include "machine/perf_model.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "octree/incremental.hpp"
#include "octree/octant.hpp"
#include "octree/treesort.hpp"
#include "sfc/curve.hpp"
#include "sfc/key.hpp"
#include "simmpi/dist_treesort.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"

namespace {

using namespace amr;
using octree::Octant;

std::vector<Octant> random_octants(std::size_t n, std::uint64_t seed) {
  util::Rng rng = util::make_rng(seed);
  std::uniform_int_distribution<std::uint32_t> coord(0,
                                                     (1U << octree::kMaxDepth) - 1);
  std::uniform_int_distribution<int> lvl(1, 14);
  std::vector<Octant> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(octree::octant_from_point(coord(rng), coord(rng), coord(rng),
                                            lvl(rng)));
  }
  return out;
}

octree::DeltaStream random_delta(std::size_t inserts, std::size_t deletes,
                                 std::size_t base_size, std::uint64_t seed) {
  octree::DeltaStream delta;
  delta.inserts = random_octants(inserts, seed);
  util::Rng rng = util::make_rng(seed, 99);
  for (std::size_t i = 0; i < deletes; ++i) {
    delta.delete_positions.push_back(rng() % base_size);
  }
  return delta;
}

/// The edited stream the incremental splice must agree with: survivors of
/// the (deduplicated, range-checked) delete set plus the inserts.
std::vector<Octant> edited_stream(const std::vector<Octant>& base,
                                  const octree::DeltaStream& delta) {
  std::vector<bool> dead(base.size(), false);
  for (const std::size_t pos : delta.delete_positions) {
    if (pos < base.size()) dead[pos] = true;
  }
  std::vector<Octant> out;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (!dead[i]) out.push_back(base[i]);
  }
  out.insert(out.end(), delta.inserts.begin(), delta.inserts.end());
  return out;
}

TEST(IncrementalSort, MergeMatchesFullSortAcrossChangeFractions) {
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  auto base = random_octants(20000, 7);
  auto keys = octree::tree_sort_with_keys(base, curve);
  for (const double fraction : {0.001, 0.01, 0.1, 0.4}) {
    const auto changes =
        static_cast<std::size_t>(fraction * static_cast<double>(base.size()));
    const auto delta = random_delta(changes / 2 + 1, changes / 2 + 1,
                                    base.size(), 1000 + changes);
    auto expected = edited_stream(base, delta);
    octree::tree_sort(expected, curve);

    auto elements = base;
    auto element_keys = keys;
    octree::IncrementalSortOptions options;
    options.fallback_change_fraction = std::numeric_limits<double>::infinity();
    const auto report =
        octree::tree_sort_incremental(elements, element_keys, curve, delta, options);
    EXPECT_TRUE(report.used_merge);
    EXPECT_EQ(elements, expected) << "fraction " << fraction;
    EXPECT_EQ(element_keys, sfc::keys_of(curve, elements));
    EXPECT_TRUE(octree::is_sfc_sorted(element_keys));
  }
}

TEST(IncrementalSort, FallbackThresholdRoutes) {
  const sfc::Curve curve(sfc::CurveKind::kMorton, 3);
  auto base = random_octants(10000, 11);
  auto keys = octree::tree_sort_with_keys(base, curve);
  octree::IncrementalSortOptions options;
  options.fallback_change_fraction = 0.25;

  // Just under the threshold: the merge must run.
  {
    const auto delta = random_delta(1200, 1200, base.size(), 21);
    auto elements = base;
    auto element_keys = keys;
    const auto report =
        octree::tree_sort_incremental(elements, element_keys, curve, delta, options);
    EXPECT_TRUE(report.used_merge);
  }
  // Over the threshold: the merge path must never run.
  {
    const auto delta = random_delta(1500, 1500, base.size(), 22);
    auto elements = base;
    auto element_keys = keys;
    const auto report =
        octree::tree_sort_incremental(elements, element_keys, curve, delta, options);
    EXPECT_FALSE(report.used_merge);
    // ...and the fallback still produces the right answer with a fresh cache.
    auto expected = edited_stream(base, delta);
    octree::tree_sort(expected, curve);
    EXPECT_EQ(elements, expected);
    EXPECT_EQ(element_keys, sfc::keys_of(curve, elements));
  }
}

TEST(IncrementalSort, DeleteSanitizerIgnoresDuplicatesAndOutOfRange) {
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  auto base = random_octants(500, 3);
  auto keys = octree::tree_sort_with_keys(base, curve);
  octree::DeltaStream delta;
  delta.delete_positions = {4, 4, 4, 10, 9999, 500, 10};
  auto elements = base;
  const auto report = octree::tree_sort_incremental(elements, keys, curve, delta);
  EXPECT_EQ(report.deleted, 2U);  // positions 4 and 10, once each
  EXPECT_EQ(report.total, base.size() - 2);
  auto expected = edited_stream(base, delta);
  octree::tree_sort(expected, curve);
  EXPECT_EQ(elements, expected);
}

TEST(IncrementalSort, EmptyBaseAndFullDeletion) {
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  // Insert into an empty array.
  {
    std::vector<Octant> elements;
    std::vector<sfc::CurveKey> keys;
    octree::DeltaStream delta;
    delta.inserts = random_octants(100, 5);
    auto expected = delta.inserts;
    octree::tree_sort(expected, curve);
    (void)octree::tree_sort_incremental(elements, keys, curve, delta);
    EXPECT_EQ(elements, expected);
    EXPECT_EQ(keys, sfc::keys_of(curve, elements));
  }
  // Delete everything.
  {
    auto elements = random_octants(64, 6);
    auto keys = octree::tree_sort_with_keys(elements, curve);
    octree::DeltaStream delta;
    for (std::size_t i = 0; i < 64; ++i) delta.delete_positions.push_back(i);
    octree::IncrementalSortOptions options;
    options.fallback_change_fraction = std::numeric_limits<double>::infinity();
    const auto report =
        octree::tree_sort_incremental(elements, keys, curve, delta, options);
    EXPECT_TRUE(elements.empty());
    EXPECT_TRUE(keys.empty());
    EXPECT_EQ(report.total, 0U);
  }
}

TEST(IncrementalSort, MergeKeyedRunsMatchesSort) {
  const sfc::Curve curve(sfc::CurveKind::kMoore, 3);
  auto a = random_octants(5000, 13);
  auto b = random_octants(300, 14);
  const auto a_keys = octree::tree_sort_with_keys(a, curve);
  const auto b_keys = octree::tree_sort_with_keys(b, curve);
  std::vector<Octant> out;
  std::vector<sfc::CurveKey> out_keys;
  octree::merge_keyed_runs(a, a_keys, b, b_keys, out, out_keys);

  std::vector<Octant> expected = a;
  expected.insert(expected.end(), b.begin(), b.end());
  octree::tree_sort(expected, curve);
  EXPECT_EQ(out, expected);
  EXPECT_EQ(out_keys, sfc::keys_of(curve, out));
  EXPECT_TRUE(octree::is_sfc_sorted(out_keys));
}

// --- Distributed properties -------------------------------------------------

struct DistCase {
  std::vector<std::vector<Octant>> prev;
  std::vector<simmpi::SplitterSet> prev_splitters;
  std::vector<octree::DeltaStream> deltas;
  std::vector<std::vector<Octant>> edited;
};

DistCase make_dist_case(int ranks, std::size_t per_rank, const sfc::Curve& curve,
                        std::size_t insert_count, std::size_t delete_count) {
  DistCase c;
  const auto p = static_cast<std::size_t>(ranks);
  std::vector<std::vector<Octant>> inputs(p);
  for (std::size_t r = 0; r < p; ++r) {
    inputs[r] = random_octants(per_rank, util::split_seed(77, r));
  }
  c.prev.resize(p);
  c.prev_splitters.resize(p);
  simmpi::run_ranks(ranks, [&](simmpi::Comm& comm) {
    const std::size_t r = static_cast<std::size_t>(comm.rank());
    auto local = inputs[r];
    const auto report = simmpi::dist_treesort(local, comm, curve);
    c.prev_splitters[r] = report.splitter_set;
    c.prev[r] = std::move(local);
  });
  c.deltas.resize(p);
  c.edited.resize(p);
  for (std::size_t r = 0; r < p; ++r) {
    c.deltas[r] = random_delta(insert_count, delete_count, c.prev[r].size(),
                               util::split_seed(123, r));
    c.edited[r] = edited_stream(c.prev[r], c.deltas[r]);
  }
  return c;
}

TEST(IncrementalDist, MergeAndFullRoutesAgree) {
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  constexpr int kRanks = 4;
  const DistCase c = make_dist_case(kRanks, 600, curve, 20, 20);

  const auto run = [&](double fallback) {
    std::vector<std::vector<Octant>> out(kRanks);
    std::vector<simmpi::DistIncrementalReport> reports(kRanks);
    simmpi::run_ranks(kRanks, [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = c.prev[r];
      auto keys = sfc::keys_of(curve, local);
      simmpi::DistIncrementalOptions options;
      options.fallback_change_fraction = fallback;
      reports[r] =
          simmpi::dist_treesort_incremental(local, keys, comm, curve, c.deltas[r],
                                            options);
      out[r] = std::move(local);
    });
    return std::pair(out, reports);
  };

  const auto [merged, merged_reports] = run(1e9);
  const auto [full, full_reports] = run(0.0);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_TRUE(merged_reports[static_cast<std::size_t>(r)].merge_path);
    EXPECT_FALSE(full_reports[static_cast<std::size_t>(r)].merge_path);
    EXPECT_EQ(merged[static_cast<std::size_t>(r)], full[static_cast<std::size_t>(r)]);
  }
}

TEST(IncrementalDist, MigrationTermZeroReproducesSeedOptiPart) {
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  constexpr int kRanks = 4;
  const DistCase c = make_dist_case(kRanks, 500, curve, 15, 15);

  machine::ApplicationProfile app;
  app.migration_cost_factor = 0.0;
  const machine::PerfModel model(machine::wisconsin8(), app);

  std::vector<std::vector<Octant>> scratch(kRanks);
  std::vector<simmpi::DistSortReport> scratch_reports(kRanks);
  simmpi::run_ranks(kRanks, [&](simmpi::Comm& comm) {
    const std::size_t r = static_cast<std::size_t>(comm.rank());
    auto local = c.edited[r];
    scratch_reports[r] = simmpi::dist_optipart(local, comm, curve, model);
    scratch[r] = std::move(local);
  });

  std::vector<std::vector<Octant>> inc(kRanks);
  std::vector<simmpi::DistIncrementalReport> inc_reports(kRanks);
  std::vector<simmpi::RepartitionDecision> decisions(kRanks);
  simmpi::run_ranks(kRanks, [&](simmpi::Comm& comm) {
    const std::size_t r = static_cast<std::size_t>(comm.rank());
    auto local = c.prev[r];
    auto keys = sfc::keys_of(curve, local);
    inc_reports[r] = simmpi::dist_optipart_incremental(
        local, keys, comm, curve, model, c.prev_splitters[r], c.deltas[r], {},
        nullptr, &decisions[r]);
    inc[r] = std::move(local);
  });

  for (std::size_t r = 0; r < kRanks; ++r) {
    EXPECT_FALSE(decisions[r].kept_previous);
    EXPECT_EQ(inc[r], scratch[r]) << "rank " << r;
    EXPECT_EQ(inc_reports[r].sort.splitter_set.cuts,
              scratch_reports[r].splitter_set.cuts);
    EXPECT_EQ(inc_reports[r].sort.splitter_set.codes,
              scratch_reports[r].splitter_set.codes);
  }
}

TEST(IncrementalDist, MigrationDominatedModelKeepsPreviousCuts) {
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  constexpr int kRanks = 8;
  // A 2:1-balanced tree gives OptiPart's comm term something to optimize:
  // its candidate cuts deviate from the previous ideal split, so adopting
  // them moves data. The data is already laid out by the previous cuts and
  // the delta is tiny, so keeping them moves (almost) nothing -- under a
  // migration-dominated model the decision must be to keep.
  octree::GenerateOptions gen;
  gen.seed = 5;
  auto tree = octree::random_octree(4000, curve, gen);
  tree = octree::balance_octree(std::move(tree), curve);
  DistCase c;
  {
    const std::size_t p = kRanks;
    std::vector<std::vector<Octant>> inputs(p);
    const std::size_t chunk = tree.size() / p;
    for (std::size_t r = 0; r < p; ++r) {
      const std::size_t lo = r * chunk;
      const std::size_t hi = r + 1 == p ? tree.size() : lo + chunk;
      inputs[r].assign(tree.begin() + static_cast<std::ptrdiff_t>(lo),
                       tree.begin() + static_cast<std::ptrdiff_t>(hi));
    }
    c.prev.resize(p);
    c.prev_splitters.resize(p);
    simmpi::run_ranks(kRanks, [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = inputs[r];
      const auto report = simmpi::dist_treesort(local, comm, curve);
      c.prev_splitters[r] = report.splitter_set;
      c.prev[r] = std::move(local);
    });
    c.deltas.resize(p);
    c.edited.resize(p);
    c.deltas[0].inserts = random_octants(2, 999);
    for (std::size_t r = 0; r < p; ++r) {
      c.edited[r] = edited_stream(c.prev[r], c.deltas[r]);
    }
  }

  machine::ApplicationProfile app;
  app.migration_cost_factor = 1e9;  // a byte moved costs more than any step
  app.steps_per_repartition = 1e-9;
  const machine::PerfModel model(machine::wisconsin8(), app);

  std::vector<std::vector<Octant>> out(kRanks);
  std::vector<simmpi::DistIncrementalReport> reports(kRanks);
  std::vector<simmpi::RepartitionDecision> decisions(kRanks);
  simmpi::run_ranks(kRanks, [&](simmpi::Comm& comm) {
    const std::size_t r = static_cast<std::size_t>(comm.rank());
    auto local = c.prev[r];
    auto keys = sfc::keys_of(curve, local);
    reports[r] = simmpi::dist_optipart_incremental(
        local, keys, comm, curve, model, c.prev_splitters[r], c.deltas[r], {},
        nullptr, &decisions[r]);
    out[r] = std::move(local);
  });

  std::size_t total = 0;
  for (std::size_t r = 0; r < kRanks; ++r) {
    EXPECT_EQ(decisions[r].kept_previous, decisions[0].kept_previous);
    total += out[r].size();
  }
  ASSERT_TRUE(decisions[0].kept_previous);
  EXPECT_LE(decisions[0].previous_objective, decisions[0].candidate_objective);
  std::size_t edited_total = 0;
  for (const auto& e : c.edited) edited_total += e.size();
  EXPECT_EQ(total, edited_total);
  for (std::size_t r = 0; r < kRanks; ++r) {
    // Every element a rank ends with must route there by the *previous*
    // codes: the kept decision really did keep the old partition.
    EXPECT_EQ(reports[r].sort.splitter_set.codes, c.prev_splitters[r].codes);
    for (const Octant& oct : out[r]) {
      EXPECT_EQ(c.prev_splitters[r].dest_of_key(sfc::curve_key(curve, oct)),
                static_cast<int>(r));
    }
  }
}

}  // namespace
