// Resource-allocation tests: torus geometry, placement strategies, and the
// headline property -- SFC placement of SFC-partitioned ranks yields lower
// average hop distance than linear or random allocations.
#include <gtest/gtest.h>

#include <set>

#include "alloc/placement.hpp"
#include "mesh/adjacency.hpp"
#include "octree/generate.hpp"
#include "partition/partition.hpp"

namespace amr::alloc {
namespace {

TEST(Torus, CoordsRoundTrip) {
  TorusConfig config;
  config.dims = {4, 5, 6};
  for (int n = 0; n < config.total_nodes(); ++n) {
    EXPECT_EQ(torus_index(config, torus_coords(config, n)), n);
  }
}

TEST(Torus, HopsUseWraparound) {
  TorusConfig config;
  config.dims = {8, 8, 8};
  const int a = torus_index(config, {0, 0, 0});
  const int b = torus_index(config, {7, 0, 0});
  EXPECT_EQ(torus_hops(config, a, b), 1);  // wraps, not 7
  const int c = torus_index(config, {4, 4, 4});
  EXPECT_EQ(torus_hops(config, a, c), 12);
  EXPECT_EQ(torus_hops(config, a, a), 0);
  EXPECT_EQ(torus_hops(config, a, b), torus_hops(config, b, a));
}

TEST(Torus, TitanShape) {
  const TorusConfig titan = titan_torus();
  EXPECT_EQ(titan.total_nodes(), 25 * 16 * 48);
  EXPECT_GE(titan.total_cores(), 299008);
}

TEST(Placement, EveryStrategyUsesDistinctNodes) {
  TorusConfig config;
  config.dims = {4, 4, 4};
  config.cores_per_node = 4;
  const int p = 64;  // 16 nodes
  for (const auto strategy : {PlacementStrategy::kLinear, PlacementStrategy::kRandom,
                              PlacementStrategy::kSfc}) {
    const auto placement = place_ranks(p, config, strategy);
    ASSERT_EQ(placement.size(), static_cast<std::size_t>(p));
    std::set<int> nodes(placement.begin(), placement.end());
    EXPECT_EQ(nodes.size(), 16U) << to_string(strategy);
    // Blocks of cores_per_node consecutive ranks share a node.
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(placement[static_cast<std::size_t>(r)],
                placement[static_cast<std::size_t>(r - r % config.cores_per_node)]);
    }
  }
}

TEST(Placement, SfcOrderVisitsNeighboringNodes) {
  TorusConfig config;
  config.dims = {8, 8, 8};
  const auto order =
      node_order(config.total_nodes(), config, PlacementStrategy::kSfc,
                 sfc::CurveKind::kHilbert, 1);
  ASSERT_EQ(order.size(), 512U);
  std::set<int> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 512U);
  // Hilbert order on a power-of-two torus: consecutive nodes are 1 hop.
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_EQ(torus_hops(config, order[i - 1], order[i]), 1) << "at " << i;
  }
}

TEST(Placement, NonPowerOfTwoTorusStillCovered) {
  TorusConfig config;
  config.dims = {5, 3, 6};
  const auto order = node_order(config.total_nodes(), config,
                                PlacementStrategy::kSfc, sfc::CurveKind::kHilbert, 1);
  std::set<int> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(config.total_nodes()));
}

TEST(Placement, RejectsOversizedJobs) {
  TorusConfig config;
  config.dims = {2, 2, 2};
  config.cores_per_node = 1;
  EXPECT_THROW(place_ranks(9, config, PlacementStrategy::kLinear),
               std::invalid_argument);
}

TEST(Placement, SfcBeatsRandomOnRealCommMatrix) {
  // Build a real ghost-exchange matrix from a partitioned mesh and compare
  // the placements end to end.
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = 5;
  options.max_level = 8;
  const auto tree = octree::random_octree(20000, curve, options);
  const int p = 256;
  const auto part = partition::ideal_partition(tree.size(), p);
  const auto adjacency = mesh::build_adjacency(tree, curve);
  const auto comm = mesh::comm_matrix_from_adjacency(adjacency, part);

  TorusConfig config;
  config.dims = {8, 8, 8};
  config.cores_per_node = 8;  // 32 nodes used

  const auto sfc = evaluate_placement(
      comm, place_ranks(p, config, PlacementStrategy::kSfc), config);
  const auto linear = evaluate_placement(
      comm, place_ranks(p, config, PlacementStrategy::kLinear), config);
  const auto random = evaluate_placement(
      comm, place_ranks(p, config, PlacementStrategy::kRandom), config);

  EXPECT_LT(sfc.average_hops, random.average_hops);
  EXPECT_LE(sfc.average_hops, linear.average_hops * 1.05);
  EXPECT_GT(sfc.on_node_fraction, 0.0);
}

TEST(Congestion, SingleFlowLoadsExactlyItsPath) {
  TorusConfig config;
  config.dims = {8, 8, 8};
  config.cores_per_node = 1;
  mesh::CommMatrix comm(8);
  comm.add(3, 0, 10.0);  // one flow, 10 elements
  // Linear placement: rank r on node r; nodes 0 and 3 are 3 x-hops apart.
  const auto placement = place_ranks(8, config, PlacementStrategy::kLinear);
  const auto report = evaluate_congestion(comm, placement, config);
  EXPECT_DOUBLE_EQ(report.max_link_load, 10.0);
  EXPECT_DOUBLE_EQ(report.mean_link_load, 10.0);
  EXPECT_EQ(report.links_used, 3U);  // 3 hops = 3 links
}

TEST(Congestion, WrapAroundTakesShortestDirection) {
  TorusConfig config;
  config.dims = {8, 1, 1};
  config.cores_per_node = 1;
  mesh::CommMatrix comm(8);
  comm.add(7, 0, 1.0);  // 0 -> 7 is one hop backwards around the ring
  const auto placement = place_ranks(8, config, PlacementStrategy::kLinear);
  const auto report = evaluate_congestion(comm, placement, config);
  EXPECT_EQ(report.links_used, 1U);
}

TEST(Congestion, SfcPlacementReducesHotLink) {
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = 15;
  options.max_level = 8;
  const auto tree = octree::random_octree(20000, curve, options);
  const int p = 256;
  const auto part = partition::ideal_partition(tree.size(), p);
  const auto adjacency = mesh::build_adjacency(tree, curve);
  const auto comm = mesh::comm_matrix_from_adjacency(adjacency, part);

  TorusConfig config;
  config.dims = {8, 8, 8};
  config.cores_per_node = 8;

  const auto sfc = evaluate_congestion(
      comm, place_ranks(p, config, PlacementStrategy::kSfc), config);
  const auto random = evaluate_congestion(
      comm, place_ranks(p, config, PlacementStrategy::kRandom), config);
  // The hot link (the exchange's bottleneck) is cooler under SFC
  // placement, and the traffic crosses far fewer links in total. The mean
  // *per used link* can be higher -- concentration is the point.
  EXPECT_LT(sfc.max_link_load, random.max_link_load);
  EXPECT_LT(sfc.links_used, random.links_used);
}

TEST(Placement, HopReportEmptyMatrix) {
  mesh::CommMatrix comm(4);
  TorusConfig config;
  const auto report = evaluate_placement(comm, place_ranks(4, config,
                                                           PlacementStrategy::kLinear),
                                         config);
  EXPECT_DOUBLE_EQ(report.average_hops, 0.0);
  EXPECT_EQ(report.max_hops, 0);
}

}  // namespace
}  // namespace amr::alloc
