// Dynamic AMR driver tests: scenario indicator sanity, hysteresis
// counters across steps, invariant preservation over a campaign, the
// diff_sorted / apply_delta differential oracle, and bit-identity of the
// incremental repartition route against the from-scratch route with the
// migration term off.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "driver/driver.hpp"
#include "machine/machine_model.hpp"
#include "octree/adapt.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "octree/incremental.hpp"
#include "octree/treesort.hpp"
#include "util/json.hpp"

namespace amr::driver {
namespace {

machine::PerfModel model_with_factor(double migration_cost_factor) {
  machine::ApplicationProfile app;
  app.migration_cost_factor = migration_cost_factor;
  return {machine::wisconsin8(), app};
}

DriverOptions small_options() {
  DriverOptions options;
  options.ranks = 4;
  options.steps = 4;
  options.min_level = 2;
  options.max_level = 5;
  options.matvec_iterations = 0;  // partition-only: keep the test fast
  return options;
}

TEST(Scenario, FieldsAreBoundedAndFeatureLocalized) {
  for (const ScenarioKind kind : all_scenarios()) {
    const Scenario s = make_scenario(kind, 2);
    for (const double t : {0.0, 0.5, 1.0}) {
      double max_value = 0.0;
      for (int i = 0; i < 32; ++i) {
        for (int j = 0; j < 32; ++j) {
          const double v =
              s.value({(i + 0.5) / 32.0, (j + 0.5) / 32.0, 0.5}, t);
          EXPECT_GE(v, -1e-12) << to_string(kind);
          EXPECT_LE(v, 1.0 + 1e-12) << to_string(kind);
          max_value = std::max(max_value, v);
        }
      }
      // The feature is somewhere in the domain at every time.
      EXPECT_GT(max_value, 0.5) << to_string(kind) << " t=" << t;
    }
  }
}

TEST(Scenario, ErrorIndicatorHalvesWithRefinement) {
  // err ~ h*|grad phi|: a leaf's indicator should dominate its children's.
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 2);
  const Scenario s = make_scenario(ScenarioKind::kMovingGaussian, 2);
  auto tree = octree::uniform_octree(3, curve);
  double flagged = 0.0;
  for (const auto& o : tree) {
    const double err = s.error(o, 0.0);
    if (err < 0.05) continue;
    ++flagged;
    double child_max = 0.0;
    for (int c = 0; c < 4; ++c) {
      child_max = std::max(child_max, s.error(o.child(c, 2), 0.0));
    }
    EXPECT_LT(child_max, 1.5 * err);
  }
  EXPECT_GT(flagged, 0.0);  // the bump flags someone at level 3
}

TEST(Driver, CampaignPreservesInvariantsAndConservation) {
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 2);
  const Scenario s = make_scenario(ScenarioKind::kMovingGaussian, 2);
  Driver drv(s, curve, model_with_factor(1.0), small_options());
  for (int i = 0; i < 4; ++i) {
    const StepMetrics m = drv.step();
    EXPECT_TRUE(octree::is_complete(drv.tree(), curve));
    EXPECT_TRUE(octree::is_face_balanced(drv.tree(), curve));
    EXPECT_EQ(m.leaves, drv.tree().size());
    // Conservation: the rank slices concatenate to exactly the global tree.
    std::vector<octree::Octant> all;
    for (const auto& slice : drv.slices()) {
      all.insert(all.end(), slice.begin(), slice.end());
    }
    EXPECT_EQ(all, drv.tree());
    // Splitter cuts partition the global size.
    ASSERT_EQ(drv.splitters().cuts.size(), 5U);
    EXPECT_EQ(drv.splitters().cuts.back(), drv.tree().size());
    // Counters stay aligned and bounded by the adapt steps taken.
    ASSERT_EQ(drv.deref_counters().size(), drv.tree().size());
    for (const int c : drv.deref_counters()) {
      EXPECT_GE(c, 0);
      EXPECT_LE(c, i);
    }
  }
}

TEST(Driver, FirstStepIsFirstEpochWithNoMigration) {
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 2);
  const Scenario s = make_scenario(ScenarioKind::kBlastShell, 2);
  Driver drv(s, curve, model_with_factor(1.0), small_options());
  const StepMetrics m0 = drv.step();
  EXPECT_TRUE(m0.first_epoch);
  EXPECT_EQ(m0.migrated, 0U);
  EXPECT_EQ(m0.delta_inserts, 0U);
  EXPECT_EQ(m0.delta_deletes, 0U);
  const StepMetrics m1 = drv.step();
  EXPECT_FALSE(m1.first_epoch);
  EXPECT_GT(m1.delta_inserts + m1.delta_deletes, 0U);
}

TEST(Driver, HysteresisDelaysCoarsening) {
  // With an effectively infinite deref_count nothing ever coarsens; with
  // deref_count 1 the mesh coarsens behind the moving feature. Identical
  // options otherwise, so the difference is the hysteresis counter alone.
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 2);
  const Scenario s = make_scenario(ScenarioKind::kMovingGaussian, 2);

  DriverOptions frozen = small_options();
  frozen.steps = 5;
  frozen.deref_count = 1000000;
  Driver locked(s, curve, model_with_factor(1.0), frozen);
  std::size_t coarsened_locked = 0;
  for (int i = 0; i < 5; ++i) coarsened_locked += locked.step().coarsened;
  EXPECT_EQ(coarsened_locked, 0U);

  DriverOptions eager = small_options();
  eager.steps = 5;
  eager.deref_count = 1;
  Driver moving(s, curve, model_with_factor(1.0), eager);
  std::size_t coarsened_eager = 0;
  for (int i = 0; i < 5; ++i) coarsened_eager += moving.step().coarsened;
  EXPECT_GT(coarsened_eager, 0U);
}

TEST(Driver, DerefCountDelaysTheFirstMerge) {
  // A group can only merge once its children have asked deref_count
  // consecutive times; step 0 runs no adaptation and each later step
  // increments the streak at most once, so no coarsening can happen
  // before global step K.
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 2);
  const Scenario s = make_scenario(ScenarioKind::kMovingGaussian, 2);
  DriverOptions options = small_options();
  options.steps = 6;
  options.deref_count = 3;
  Driver drv(s, curve, model_with_factor(1.0), options);
  for (int i = 0; i < 6; ++i) {
    const StepMetrics m = drv.step();
    if (m.step < options.deref_count) {
      EXPECT_EQ(m.coarsened, 0U) << "step " << m.step;
    }
  }
}

TEST(Driver, DiffAndReplayRoundTrip) {
  // diff_sorted of consecutive driver trees replayed through
  // tree_sort_incremental must reproduce the new tree bit for bit.
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 2);
  const Scenario s = make_scenario(ScenarioKind::kSlottedCylinder, 2);
  DriverOptions options = small_options();
  options.deref_count = 1;
  Driver drv(s, curve, model_with_factor(1.0), options);
  std::vector<octree::Octant> old_tree = drv.tree();
  std::vector<sfc::CurveKey> old_keys = sfc::keys_of(curve, old_tree);
  for (int i = 0; i < 4; ++i) {
    (void)drv.step();
    const auto& new_tree = drv.tree();
    const auto new_keys = sfc::keys_of(curve, new_tree);
    const octree::DeltaStream delta =
        octree::diff_sorted(old_tree, old_keys, new_tree, new_keys);
    auto replay = old_tree;
    auto replay_keys = old_keys;
    (void)octree::tree_sort_incremental(replay, replay_keys, curve, delta);
    EXPECT_EQ(replay, new_tree);
    EXPECT_EQ(replay_keys, new_keys);
    // apply_delta + full sort agrees too (unsorted replay of the same delta).
    auto edited = octree::apply_delta(old_tree, delta);
    octree::tree_sort(edited, curve);
    EXPECT_EQ(edited, new_tree);
    old_tree = new_tree;
    old_keys = new_keys;
  }
}

class RouteIdentityTest : public ::testing::TestWithParam<Partitioner> {};

TEST_P(RouteIdentityTest, IncrementalMatchesFromScratchWithFactorZero) {
  // With migration_cost_factor 0 the incremental route must adopt the
  // model-best candidate unconditionally, making the whole campaign --
  // slices, cuts, splitter codes -- bit-identical to re-partitioning from
  // scratch every step (the fuzz-pinned property, driven end to end).
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 2);
  const Scenario s = make_scenario(ScenarioKind::kMovingGaussian, 2);
  DriverOptions inc_options = small_options();
  inc_options.partitioner = GetParam();
  inc_options.deref_count = 1;
  inc_options.route = RepartitionRoute::kIncremental;
  DriverOptions scratch_options = inc_options;
  scratch_options.route = RepartitionRoute::kFromScratch;

  const machine::PerfModel model0 = model_with_factor(0.0);
  Driver inc(s, curve, model0, inc_options);
  Driver scratch(s, curve, model0, scratch_options);
  for (int i = 0; i < 4; ++i) {
    const StepMetrics mi = inc.step();
    const StepMetrics ms = scratch.step();
    ASSERT_EQ(inc.tree(), scratch.tree()) << "step " << i;
    EXPECT_EQ(inc.splitters().cuts, scratch.splitters().cuts) << "step " << i;
    EXPECT_EQ(inc.splitters().codes, scratch.splitters().codes) << "step " << i;
    for (std::size_t r = 0; r < inc.slices().size(); ++r) {
      EXPECT_EQ(inc.slices()[r], scratch.slices()[r])
          << "step " << i << " rank " << r;
    }
    EXPECT_EQ(mi.migrated, ms.migrated) << "step " << i;
    EXPECT_FALSE(mi.kept_previous);
  }
}

INSTANTIATE_TEST_SUITE_P(BothPartitioners, RouteIdentityTest,
                         ::testing::Values(Partitioner::kOptiPart,
                                           Partitioner::kEqualSplit),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Driver, AppendCampaignFoldsTotalsAndSteps) {
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 2);
  const Scenario s = make_scenario(ScenarioKind::kBlastShell, 2);
  DriverOptions options = small_options();
  options.steps = 3;
  Driver drv(s, curve, model_with_factor(1.0), options);
  const CampaignResult result = drv.run();
  ASSERT_EQ(result.steps.size(), 3U);
  EXPECT_GT(result.total_repartition_seconds(), 0.0);
  EXPECT_GT(result.total_predicted_seconds(), 0.0);

  obs::RunMetrics root("run");
  Driver::append_campaign(root, result, options, s);
  const obs::RunMetrics* d = root.find("driver");
  ASSERT_NE(d, nullptr);
  ASSERT_NE(d->find("config"), nullptr);
  ASSERT_NE(d->find("totals"), nullptr);
  EXPECT_EQ(d->find("totals")->get("steps"), 3.0);
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(d->find("step." + std::to_string(i)), nullptr) << i;
  }
}

TEST(Driver, TimelineStreamsOneValidJsonlRecordPerStep) {
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 2);
  const Scenario s = make_scenario(ScenarioKind::kMovingGaussian, 2);
  DriverOptions options = small_options();
  std::ostringstream timeline;
  options.timeline = &timeline;
  Driver drv(s, curve, model_with_factor(1.0), options);
  for (int i = 0; i < options.steps; ++i) (void)drv.step();

  // One line per record: a campaign header, then exactly one step record
  // per completed step, each independently parseable JSON.
  std::istringstream lines(timeline.str());
  std::string line;
  int step_records = 0;
  bool saw_campaign = false;
  while (std::getline(lines, line)) {
    const util::Json record = util::Json::parse(line);
    ASSERT_TRUE(record.is_object()) << line;
    const std::string type = record.find("type")->str();
    if (type == "campaign") {
      EXPECT_FALSE(saw_campaign);  // header comes once, first
      EXPECT_EQ(step_records, 0);
      saw_campaign = true;
      EXPECT_EQ(static_cast<int>(record.find("ranks")->number()),
                options.ranks);
      EXPECT_NE(record.find("scenario"), nullptr);
      EXPECT_NE(record.find("partitioner"), nullptr);
      continue;
    }
    ASSERT_EQ(type, "step") << line;
    // Schema: every analysis-relevant StepMetrics field is present.
    for (const char* key :
         {"step", "t", "route", "leaves", "refined", "coarsened",
          "balance_splits", "delta_inserts", "delta_deletes",
          "change_fraction", "kept_previous", "migrated", "load_imbalance",
          "c_max", "predicted_step_seconds", "measured_step_seconds",
          "adapt_seconds", "diff_seconds", "repartition_seconds",
          "sort_seconds", "solve_seconds", "phases"}) {
      EXPECT_NE(record.find(key), nullptr) << key << " missing in " << line;
    }
    EXPECT_EQ(static_cast<int>(record.find("step")->number()), step_records);
    const std::string route = record.find("route")->str();
    EXPECT_TRUE(route == "first" || route == "scratch" || route == "merge" ||
                route == "full")
        << route;
    if (step_records == 0) {
      EXPECT_EQ(route, "first");
    }
    // Per-phase histogram snapshots carry counts covering the steps so far.
    const util::Json* phases = record.find("phases");
    ASSERT_TRUE(phases->is_object());
    for (const char* phase : {"adapt_ns", "diff_ns", "repartition_ns",
                              "sort_ns", "solve_ns"}) {
      const util::Json* h = phases->find(phase);
      ASSERT_NE(h, nullptr) << phase;
      EXPECT_GE(h->find("count")->number(), step_records + 1) << phase;
      EXPECT_NE(h->find("p50"), nullptr) << phase;
    }
    ++step_records;
  }
  EXPECT_TRUE(saw_campaign);
  EXPECT_EQ(step_records, options.steps);
}

TEST(Driver, SolveEpochRunsOnTheNewPartition) {
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 2);
  const Scenario s = make_scenario(ScenarioKind::kMovingGaussian, 2);
  DriverOptions options = small_options();
  options.steps = 2;
  options.matvec_iterations = 2;
  Driver drv(s, curve, model_with_factor(1.0), options);
  const CampaignResult result = drv.run();
  for (const StepMetrics& m : result.steps) {
    EXPECT_GT(m.solve_seconds, 0.0) << "step " << m.step;
  }
}

}  // namespace
}  // namespace amr::driver
