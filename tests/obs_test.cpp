// Recorder unit tests: disabled-mode cost, ring wraparound, concurrent
// recording from ThreadPool workers (the TSan job runs this suite), and
// the Chrome trace exporter's JSON (golden snapshot + structure checks).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/recorder.hpp"
#include "obs/trace_export.hpp"
#include "util/thread_id.hpp"
#include "util/thread_pool.hpp"

namespace amr {
namespace {

/// Events recorded by this test binary so far (other tests in the same
/// process may have left some behind; every test clears first).
std::size_t event_count() { return obs::snapshot().events.size(); }

TEST(ObsRecorder, DisabledModeRecordsNothingAndAllocatesNoBuffers) {
  obs::set_enabled(false);
  obs::clear();
  const std::size_t buffers_before = obs::buffer_count();
  const std::size_t events_before = event_count();

  for (int i = 0; i < 100; ++i) {
    AMR_SPAN("off.span");
    AMR_INSTANT("off.instant");
    AMR_COUNTER("off.counter", 42);
  }
  // A worker thread that records only while disabled must not create a
  // ring buffer either.
  std::thread t([] {
    for (int i = 0; i < 10; ++i) AMR_INSTANT("off.worker");
  });
  t.join();

  EXPECT_EQ(obs::buffer_count(), buffers_before);
  EXPECT_EQ(event_count(), events_before);
}

TEST(ObsRecorder, RecordsSpansInstantsAndCounters) {
  obs::set_enabled(true);
  obs::clear();
  {
    AMR_SPAN_NAMED(outer, "test.outer");
    outer.set_value(7);
    { AMR_SPAN("test.inner"); }
    AMR_INSTANT("test.mark");
    AMR_COUNTER("test.count", 123);
  }
  obs::set_enabled(false);

  const obs::Snapshot snap = obs::snapshot();
  ASSERT_EQ(snap.events.size(), 4u);
  EXPECT_EQ(snap.dropped, 0u);

  const obs::Event* outer = nullptr;
  const obs::Event* inner = nullptr;
  const obs::Event* mark = nullptr;
  const obs::Event* count = nullptr;
  for (const obs::Event& e : snap.events) {
    if (std::string(e.name) == "test.outer") outer = &e;
    if (std::string(e.name) == "test.inner") inner = &e;
    if (std::string(e.name) == "test.mark") mark = &e;
    if (std::string(e.name) == "test.count") count = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(mark, nullptr);
  ASSERT_NE(count, nullptr);

  EXPECT_EQ(outer->type, obs::EventType::kSpan);
  EXPECT_EQ(outer->value, 7);
  EXPECT_EQ(count->type, obs::EventType::kCounter);
  EXPECT_EQ(count->value, 123);
  EXPECT_EQ(mark->type, obs::EventType::kInstant);

  // The inner span nests inside the outer one.
  EXPECT_GE(inner->ts_ns, outer->ts_ns);
  EXPECT_LE(inner->ts_ns + inner->dur_ns, outer->ts_ns + outer->dur_ns);
  EXPECT_GE(outer->dur_ns, 0);
}

TEST(ObsRecorder, SpanCloseIsIdempotentAndEndsTheSpanEarly) {
  obs::set_enabled(true);
  obs::clear();
  {
    obs::SpanScope span("test.closed");
    span.close();
    span.close();  // second close must not record again
  }
  obs::set_enabled(false);
  EXPECT_EQ(event_count(), 1u);
}

TEST(ObsRecorder, EventsCarryScopedRank) {
  obs::set_enabled(true);
  obs::clear();
  {
    const util::ScopedRank scope(7);
    AMR_INSTANT("test.ranked");
  }
  AMR_INSTANT("test.unranked");
  obs::set_enabled(false);

  const obs::Snapshot snap = obs::snapshot();
  ASSERT_EQ(snap.events.size(), 2u);
  for (const obs::Event& e : snap.events) {
    if (std::string(e.name) == "test.ranked") {
      EXPECT_EQ(e.rank, 7);
    } else {
      EXPECT_EQ(e.rank, -1);
    }
  }
}

TEST(ObsRecorder, RingWraparoundKeepsNewestAndCountsDropped) {
  obs::set_enabled(true);
  obs::clear();
  obs::set_buffer_capacity(16);  // applies to buffers created from now on
  // A fresh thread gets a fresh (16-slot) ring.
  std::thread t([] {
    for (int i = 0; i < 100; ++i) AMR_COUNTER("wrap.count", i);
  });
  t.join();
  obs::set_enabled(false);
  obs::set_buffer_capacity(std::size_t{1} << 16);

  const obs::Snapshot snap = obs::snapshot();
  std::vector<std::int64_t> kept;
  for (const obs::Event& e : snap.events) {
    if (std::string(e.name) == "wrap.count") kept.push_back(e.value);
  }
  ASSERT_EQ(kept.size(), 16u);
  EXPECT_EQ(snap.dropped, 84u);
  // The newest events survive, in order.
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i], static_cast<std::int64_t>(84 + i));
  }
  obs::clear();  // prune the dead thread's buffer
}

TEST(ObsRecorder, ClearPrunesBuffersOfFinishedThreads) {
  obs::set_enabled(true);
  obs::clear();
  const std::size_t before = obs::buffer_count();
  std::thread t([] { AMR_INSTANT("prune.me"); });
  t.join();
  EXPECT_EQ(obs::buffer_count(), before + 1);  // retained for snapshot
  obs::clear();
  EXPECT_EQ(obs::buffer_count(), before);
  obs::set_enabled(false);
}

TEST(ObsThreadPool, ConcurrentSpansFromWorkersAreAllRetained) {
  obs::set_enabled(true);
  obs::clear();

  util::ThreadPool& pool = util::ThreadPool::global();
  constexpr int kTasks = 64;
  constexpr int kSpansPerTask = 25;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    tasks.push_back([] {
      for (int i = 0; i < kSpansPerTask; ++i) {
        AMR_SPAN_NAMED(span, "pool.work");
        span.set_value(i);
        AMR_COUNTER("pool.progress", i);
      }
    });
  }
  pool.run(std::move(tasks));
  obs::set_enabled(false);

  const obs::Snapshot snap = obs::snapshot();
  std::size_t spans = 0, counters = 0;
  for (const obs::Event& e : snap.events) {
    if (std::string(e.name) == "pool.work") ++spans;
    if (std::string(e.name) == "pool.progress") ++counters;
  }
  EXPECT_EQ(spans, static_cast<std::size_t>(kTasks) * kSpansPerTask);
  EXPECT_EQ(counters, static_cast<std::size_t>(kTasks) * kSpansPerTask);
  EXPECT_EQ(snap.dropped, 0u);

  // Timestamps arrive globally sorted.
  for (std::size_t i = 1; i < snap.events.size(); ++i) {
    EXPECT_LE(snap.events[i - 1].ts_ns, snap.events[i].ts_ns);
  }
}

// --- Chrome trace exporter ------------------------------------------------

/// Structural JSON scan: balanced braces/brackets outside strings, and at
/// least `min_events` objects in the traceEvents array.
void expect_parseable_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(ObsTraceExport, GoldenChromeTraceForSynthesizedSnapshot) {
  // A hand-built snapshot makes the output byte-deterministic.
  obs::Snapshot snap;
  obs::Event span;
  span.name = "phase.exchange";
  span.ts_ns = 1500;       // 1.500 us
  span.dur_ns = 2000500;   // 2000.500 us
  span.value = 4096;
  span.rank = 2;
  span.tid = 5;
  span.type = obs::EventType::kSpan;
  snap.events.push_back(span);

  obs::Event mark;
  mark.name = "phase.round";
  mark.ts_ns = 2000;
  mark.rank = 2;
  mark.tid = 5;
  mark.type = obs::EventType::kInstant;
  snap.events.push_back(mark);

  obs::Event count;
  count.name = "phase.exchange/bytes";
  count.ts_ns = 3000;
  count.value = 4096;
  count.rank = -1;  // host
  count.tid = 0;
  count.type = obs::EventType::kCounter;
  snap.events.push_back(count);

  std::ostringstream out;
  obs::write_chrome_trace(out, snap);
  const std::string text = out.str();

  expect_parseable_json(text);
  // Complete event with microsecond timestamps and the span payload.
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"phase.exchange\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":2000.500"), std::string::npos);
  EXPECT_NE(text.find("\"value\":4096"), std::string::npos);
  // Instant and counter phases.
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  // One process per rank (pid = rank + 1; host = 0), labeled.
  EXPECT_NE(text.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(text.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"rank 2\""), std::string::npos);
  EXPECT_NE(text.find("\"host\""), std::string::npos);
}

TEST(ObsTraceExport, RecordedNestingSurvivesExport) {
  obs::set_enabled(true);
  obs::clear();
  {
    AMR_SPAN("outer.scope");
    { AMR_SPAN("inner.scope"); }
  }
  obs::set_enabled(false);

  std::ostringstream out;
  obs::write_chrome_trace(out, obs::snapshot());
  const std::string text = out.str();
  expect_parseable_json(text);

  // Both spans present; the trace format carries nesting through ts+dur,
  // which the recorder test already pinned -- here we check the exporter
  // kept both complete events.
  EXPECT_NE(text.find("\"name\":\"outer.scope\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"inner.scope\""), std::string::npos);
}

}  // namespace
}  // namespace amr
