// Utility tests: stats, table/CSV emission, argument parsing, RNG streams.
#include <gtest/gtest.h>

#include <cmath>

#include "util/args.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace amr::util {
namespace {

TEST(Stats, SummaryBasics) {
  const std::vector<double> values{4.0, 1.0, 3.0, 2.0, 5.0};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 5U);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0U);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, MaxMinRatio) {
  EXPECT_DOUBLE_EQ(max_min_ratio(std::vector<double>{2.0, 4.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(max_min_ratio(std::vector<double>{5.0}), 1.0);
  EXPECT_DOUBLE_EQ(max_min_ratio(std::vector<double>{}), 1.0);
  // Zero minimum falls back to the smallest positive value.
  EXPECT_DOUBLE_EQ(max_min_ratio(std::vector<double>{0.0, 2.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(max_min_ratio(std::vector<double>{0.0, 0.0}), 1.0);
}

TEST(Stats, Pearson) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(pearson(xs, std::vector<double>{1.0, 1.0, 1.0, 1.0}), 0.0);
}

TEST(Stats, LerpCurve) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(lerp_curve(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(lerp_curve(xs, ys, 1.5), 5.0);
  EXPECT_DOUBLE_EQ(lerp_curve(xs, ys, -1.0), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(lerp_curve(xs, ys, 5.0), 0.0);
}

TEST(Stats, Trapezoid) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(trapezoid(xs, ys), 1.0);
  EXPECT_DOUBLE_EQ(trapezoid(std::vector<double>{0.0}, std::vector<double>{7.0}), 0.0);
}

TEST(Table, RendersAlignedAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::fmt(1.5, 2)});
  t.add_row({"b,c", "x\"y"});
  const std::string text = t.to_string();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"b,c\""), std::string::npos);
  EXPECT_NE(csv.find("\"x\"\"y\""), std::string::npos);
  EXPECT_EQ(t.rows(), 2U);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.row(0).size(), 3U);
}

TEST(Args, ParsesAllForms) {
  // Note: a bare `--flag` followed by a non-flag token would consume the
  // token as its value (documented `--key value` form), so the positional
  // argument comes first here.
  const char* argv[] = {"prog", "positional", "--n=100", "--machine", "titan",
                        "--ratio=0.5", "--flag"};
  const Args args(7, argv);
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_EQ(args.get("machine", ""), "titan");
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_FALSE(args.get_bool("missing", false));
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 0.5);
  ASSERT_EQ(args.positional().size(), 1U);
  EXPECT_EQ(args.positional()[0], "positional");
  EXPECT_EQ(args.get_int("absent", -7), -7);
  EXPECT_TRUE(args.has("n"));
  EXPECT_FALSE(args.has("absent"));
}

TEST(Args, FalseLikeValues) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=no", "--d=yes"};
  const Args args(5, argv);
  EXPECT_FALSE(args.get_bool("a", true));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_FALSE(args.get_bool("c", true));
  EXPECT_TRUE(args.get_bool("d", false));
}

TEST(Log, ThresholdRoundTripsAndFiltersQuietly) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  // Below-threshold messages are dropped without side effects; these just
  // must not crash or deadlock.
  AMR_LOG_DEBUG << "dropped " << 42;
  AMR_LOG_INFO << "dropped too";
  log_line(LogLevel::kWarn, "also dropped");
  set_log_threshold(before);
}

TEST(Timer, MeasuresMonotonicallyAndResets) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  const double first = timer.seconds();
  EXPECT_GT(first, 0.0);
  EXPECT_GE(timer.nanoseconds(), 0);
  timer.reset();
  EXPECT_LT(timer.seconds(), first + 1.0);  // reset restarts the clock
  (void)sink;
}

TEST(Json, ParsesScalarsContainersAndEscapes) {
  const Json doc = Json::parse(
      "{\"s\": \"a\\n\\\"b\\\" \\u0041\", \"n\": -2.5e2, \"t\": true,"
      " \"z\": null, \"arr\": [1, 2, 3], \"obj\": {\"k\": 1, \"k2\": 2}}");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("s")->str(), "a\n\"b\" A");
  EXPECT_DOUBLE_EQ(doc.find("n")->number(), -250.0);
  EXPECT_TRUE(doc.find("t")->boolean());
  EXPECT_TRUE(doc.find("z")->is_null());
  ASSERT_EQ(doc.find("arr")->array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.find("arr")->array()[2].number(), 3.0);
  // Object members keep document order (bench_diff walks them aligned).
  const auto& items = doc.find("obj")->items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].first, "k");
  EXPECT_EQ(items[1].first, "k2");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInputWithOffset) {
  EXPECT_THROW((void)Json::parse(""), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{\"a\": 1"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1, 2,]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::runtime_error);
  try {
    (void)Json::parse("[1, x]");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    // The message carries a byte offset so bad bench files are locatable.
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
}

TEST(Rng, StreamsAreIndependentAndStable) {
  EXPECT_EQ(split_seed(1, 0), split_seed(1, 0));
  EXPECT_NE(split_seed(1, 0), split_seed(1, 1));
  EXPECT_NE(split_seed(1, 0), split_seed(2, 0));
  Rng a = make_rng(5, 0);
  Rng b = make_rng(5, 0);
  EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace amr::util
