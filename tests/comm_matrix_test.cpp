// Communication matrix tests (paper §5.5): ghost counting, NNZ and
// total-data metrics, and their response to tolerance and curve choice.
#include <gtest/gtest.h>

#include "mesh/comm_matrix.hpp"
#include "octree/generate.hpp"

namespace amr::mesh {
namespace {

using partition::Partition;
using partition::ideal_partition;
using sfc::Curve;
using sfc::CurveKind;

TEST(CommMatrix, AccumulatesAndSummarizes) {
  CommMatrix m(3);
  m.add(0, 1, 5.0);
  m.add(0, 2, 3.0);
  m.add(1, 0, 2.0);
  m.add(0, 1, 1.0);  // accumulate into existing entry
  EXPECT_EQ(m.nnz(), 3U);
  EXPECT_DOUBLE_EQ(m.total_elements(), 11.0);
  EXPECT_DOUBLE_EQ(m.recv_of(0), 9.0);
  EXPECT_DOUBLE_EQ(m.send_of(1), 6.0);
  EXPECT_DOUBLE_EQ(m.send_of(0), 2.0);
  EXPECT_DOUBLE_EQ(m.c_max(), 9.0);
  EXPECT_EQ(m.degree_of(2), 1);
}

TEST(CommMatrix, UniformGridTwoRanksIssymmetric) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = octree::uniform_octree(2, curve);
  const Partition part = ideal_partition(tree.size(), 2);
  const CommMatrix m = build_comm_matrix(tree, curve, part);
  // Two ranks split along z: each needs the 16-cell plane of the other.
  EXPECT_EQ(m.nnz(), 2U);
  EXPECT_DOUBLE_EQ(m.total_elements(), 32.0);
  EXPECT_DOUBLE_EQ(m.recv_of(0), 16.0);
  EXPECT_DOUBLE_EQ(m.recv_of(1), 16.0);
}

TEST(CommMatrix, NoSelfEntries) {
  const Curve curve(CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = 4;
  options.max_level = 7;
  const auto tree = octree::random_octree(4000, curve, options);
  const CommMatrix m = build_comm_matrix(tree, curve, ideal_partition(tree.size(), 8));
  for (const auto& [key, count] : m.entries()) {
    EXPECT_NE(key.first, key.second);
    EXPECT_GT(count, 0.0);
  }
}

TEST(CommMatrix, GhostsCountedOncePerNeeder) {
  // A single remote element adjacent to several local elements must be
  // counted once: build a 2-rank split of a 2x2x2 grid where rank 1 owns
  // one cell... use 8 cells, rank sizes 7/1: rank 0 needs the 1 remote
  // cell exactly once even though 3 of its cells touch it.
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = octree::uniform_octree(1, curve);
  Partition part;
  part.offsets = {0, 7, 8};
  const CommMatrix m = build_comm_matrix(tree, curve, part);
  EXPECT_DOUBLE_EQ(m.recv_of(0), 1.0);  // one ghost cell
  EXPECT_DOUBLE_EQ(m.recv_of(1), 3.0);  // the corner cell touches 3 faces
}

TEST(CommMatrix, NnzDecreasesWithTolerance) {
  // Fig. 12 (left/center): increasing tolerance lowers NNZ (or at least
  // never raises it much) because cuts move to coarser bucket boundaries.
  const Curve curve(CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = 31;
  options.max_level = 9;
  options.distribution = octree::PointDistribution::kNormal;
  const auto tree = octree::random_octree(30000, curve, options);
  const int p = 16;

  partition::TreeSortPartitionOptions t0;
  partition::TreeSortPartitionOptions t5;
  t5.tolerance = 0.5;
  const auto m0 =
      build_comm_matrix(tree, curve, treesort_partition(tree, curve, p, t0));
  const auto m5 =
      build_comm_matrix(tree, curve, treesort_partition(tree, curve, p, t5));
  EXPECT_LE(m5.total_elements(), m0.total_elements() * 1.05);
}

TEST(CommMatrix, HilbertBeatsMortonOnTotalData) {
  // Fig. 12: the Hilbert curve's better locality yields lower ghost volume
  // than Morton for the same tree and rank count.
  octree::GenerateOptions options;
  options.seed = 37;
  options.max_level = 9;
  options.distribution = octree::PointDistribution::kNormal;
  const Curve hilbert(CurveKind::kHilbert, 3);
  const Curve morton(CurveKind::kMorton, 3);
  const auto tree_h = octree::random_octree(30000, hilbert, options);
  const auto tree_m = octree::random_octree(30000, morton, options);
  const int p = 32;
  const double data_h =
      build_comm_matrix(tree_h, hilbert, ideal_partition(tree_h.size(), p))
          .total_elements();
  const double data_m =
      build_comm_matrix(tree_m, morton, ideal_partition(tree_m.size(), p))
          .total_elements();
  EXPECT_LT(data_h, data_m);
}

}  // namespace
}  // namespace amr::mesh
