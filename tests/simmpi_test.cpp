// simmpi runtime tests: collectives against hand-computed results under
// real thread concurrency, the traffic ledger, schedule perturbation, and
// the stall watchdog.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>

#include "simmpi/runtime.hpp"
#include "util/thread_pool.hpp"

namespace amr::simmpi {
namespace {

TEST(Runtime, AllRanksRun) {
  std::atomic<int> count{0};
  run_ranks(8, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 8);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 8);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(Runtime, RejectsZeroRanks) {
  EXPECT_THROW(run_ranks(0, [](Comm&) {}), std::invalid_argument);
}

TEST(Collectives, Barrier) {
  // Phase counter: all ranks must observe every phase together.
  std::atomic<int> phase{0};
  run_ranks(6, [&](Comm& comm) {
    for (int step = 0; step < 10; ++step) {
      if (comm.rank() == 0) phase.store(step);
      comm.barrier();
      EXPECT_EQ(phase.load(), step);
      comm.barrier();
    }
  });
}

TEST(Collectives, AllreduceSumMaxMin) {
  run_ranks(7, [](Comm& comm) {
    const std::uint64_t mine = static_cast<std::uint64_t>(comm.rank()) + 1;
    EXPECT_EQ(comm.allreduce_one(mine, ReduceOp::kSum), 28U);  // 1+..+7
    EXPECT_EQ(comm.allreduce_one(mine, ReduceOp::kMax), 7U);
    EXPECT_EQ(comm.allreduce_one(mine, ReduceOp::kMin), 1U);
  });
}

TEST(Collectives, AllreduceVector) {
  run_ranks(5, [](Comm& comm) {
    std::vector<double> in(4, static_cast<double>(comm.rank()));
    std::vector<double> out(4);
    comm.allreduce<double>(in, out, ReduceOp::kSum);
    for (const double v : out) EXPECT_DOUBLE_EQ(v, 0.0 + 1 + 2 + 3 + 4);
  });
}

TEST(Collectives, ExscanSum) {
  run_ranks(8, [](Comm& comm) {
    const int prefix = comm.exscan_sum(comm.rank() + 1);
    // exscan of (1,2,...,8): rank r gets sum of 1..r.
    EXPECT_EQ(prefix, comm.rank() * (comm.rank() + 1) / 2);
  });
}

TEST(Collectives, Bcast) {
  run_ranks(6, [](Comm& comm) {
    std::vector<int> data;
    if (comm.rank() == 2) data = {10, 20, 30};
    comm.bcast(data, 2);
    ASSERT_EQ(data.size(), 3U);
    EXPECT_EQ(data[1], 20);
  });
}

TEST(Collectives, AllgatherOneAndV) {
  run_ranks(5, [](Comm& comm) {
    const auto gathered = comm.allgather_one(comm.rank() * comm.rank());
    ASSERT_EQ(gathered.size(), 5U);
    for (int r = 0; r < 5; ++r) EXPECT_EQ(gathered[static_cast<std::size_t>(r)], r * r);

    // Variable lengths: rank r contributes r copies of r.
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()), comm.rank());
    const auto all = comm.allgatherv<int>(mine);
    EXPECT_EQ(all.size(), 0U + 1 + 2 + 3 + 4);
    EXPECT_EQ(std::accumulate(all.begin(), all.end(), 0), 0 + 1 + 4 + 9 + 16);
  });
}

TEST(Collectives, Alltoallv) {
  run_ranks(6, [](Comm& comm) {
    // Rank r sends {r*100 + q} to every q.
    std::vector<std::vector<int>> send(6);
    for (int q = 0; q < 6; ++q) send[static_cast<std::size_t>(q)] = {comm.rank() * 100 + q};
    const auto recv = comm.alltoallv(send);
    for (int q = 0; q < 6; ++q) {
      ASSERT_EQ(recv[static_cast<std::size_t>(q)].size(), 1U);
      EXPECT_EQ(recv[static_cast<std::size_t>(q)][0], q * 100 + comm.rank());
    }
  });
}

TEST(Collectives, AlltoallvEmptyLanes) {
  run_ranks(4, [](Comm& comm) {
    std::vector<std::vector<double>> send(4);
    if (comm.rank() == 0) send[3] = {3.14};
    const auto recv = comm.alltoallv(send);
    if (comm.rank() == 3) {
      ASSERT_EQ(recv[0].size(), 1U);
      EXPECT_DOUBLE_EQ(recv[0][0], 3.14);
    } else {
      for (const auto& lane : recv) EXPECT_TRUE(lane.empty());
    }
  });
}

TEST(Ledger, CountsAlltoallvTraffic) {
  const RunResult result = run_ranks(4, [](Comm& comm) {
    std::vector<std::vector<std::uint64_t>> send(4);
    for (int q = 0; q < 4; ++q) {
      if (q != comm.rank()) send[static_cast<std::size_t>(q)] = {1, 2, 3};
    }
    (void)comm.alltoallv(send);
  });
  for (const CostLedger& ledger : result.ledgers) {
    EXPECT_EQ(ledger.messages_sent, 3U);
    EXPECT_EQ(ledger.bytes_sent, 3U * 3U * sizeof(std::uint64_t));
    EXPECT_EQ(ledger.collectives, 1U);
  }
}

TEST(Ledger, AllreduceCountsOnce) {
  const RunResult result = run_ranks(3, [](Comm& comm) {
    (void)comm.allreduce_one<std::uint64_t>(1, ReduceOp::kSum);
    (void)comm.allreduce_one<std::uint64_t>(2, ReduceOp::kMax);
  });
  for (const CostLedger& ledger : result.ledgers) {
    EXPECT_EQ(ledger.collectives, 2U);
  }
}

TEST(PointToPoint, PingPong) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> payload{1, 2, 3};
      comm.send<int>(payload, 1, 7);
      const auto reply = comm.recv<int>(1, 8);
      ASSERT_EQ(reply.size(), 3U);
      EXPECT_EQ(reply[0], 2);
      EXPECT_EQ(reply[2], 6);
    } else {
      auto incoming = comm.recv<int>(0, 7);
      for (int& v : incoming) v *= 2;
      comm.send<int>(incoming, 0, 8);
    }
  });
}

TEST(PointToPoint, FifoPerChannel) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        const std::vector<int> payload{i};
        comm.send<int>(payload, 1, 0);
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        const auto msg = comm.recv<int>(0, 0);
        ASSERT_EQ(msg.size(), 1U);
        EXPECT_EQ(msg[0], i);  // non-overtaking per channel
      }
    }
  });
}

TEST(PointToPoint, TagsSeparateChannels) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(std::vector<int>{10}, 1, 1);
      comm.send<int>(std::vector<int>{20}, 1, 2);
    } else {
      // Receive in the opposite order of sending: tags keep them apart.
      EXPECT_EQ(comm.recv<int>(0, 2).at(0), 20);
      EXPECT_EQ(comm.recv<int>(0, 1).at(0), 10);
    }
  });
}

TEST(PointToPoint, EmptyMessage) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<double>(std::vector<double>{}, 1, 0);
    } else {
      EXPECT_TRUE(comm.recv<double>(0, 0).empty());
    }
  });
}

TEST(PointToPoint, AllPairsExchange) {
  const int p = 6;
  run_ranks(p, [&](Comm& comm) {
    for (int q = 0; q < p; ++q) {
      if (q == comm.rank()) continue;
      comm.send<int>(std::vector<int>{comm.rank() * 100 + q}, q, 3);
    }
    for (int q = 0; q < p; ++q) {
      if (q == comm.rank()) continue;
      const auto msg = comm.recv<int>(q, 3);
      EXPECT_EQ(msg.at(0), q * 100 + comm.rank());
    }
  });
}

TEST(Collectives, AllreduceAliasedInOut) {
  // Regression: allreduce used to combine directly into `out` between the
  // publish and the closing barrier. With in == out (MPI_IN_PLACE style)
  // that overwrote the published buffer while peers were still reading it.
  // Perturbation widens the read window so the pre-fix race fails reliably.
  ContextOptions options;
  options.perturb_seed = 99;
  run_ranks(6, options, [](Comm& comm) {
    for (int round = 0; round < 25; ++round) {
      std::vector<std::uint64_t> data(8);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint64_t>(comm.rank()) + i;
      }
      comm.allreduce<std::uint64_t>(data, data, ReduceOp::kSum);  // aliased
      for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_EQ(data[i], 15U + 6U * i);  // sum(0..5) + 6*i
      }
    }
  });
}

TEST(Collectives, PerturbedSchedulesStayCorrect) {
  // The same collectives as elsewhere in this file, but under seeded
  // random yields/sleeps at every barrier, publish, and mailbox op.
  for (const std::uint64_t seed : {1ULL, 7ULL, 12345ULL}) {
    ContextOptions options;
    options.perturb_seed = seed;
    run_ranks(5, options, [](Comm& comm) {
      const int prefix = comm.exscan_sum(comm.rank() + 1);
      EXPECT_EQ(prefix, comm.rank() * (comm.rank() + 1) / 2);

      std::vector<std::vector<int>> send(5);
      for (int q = 0; q < 5; ++q) {
        send[static_cast<std::size_t>(q)] = {comm.rank() * 10 + q};
      }
      const auto recv = comm.alltoallv(send);
      for (int q = 0; q < 5; ++q) {
        EXPECT_EQ(recv[static_cast<std::size_t>(q)].at(0), q * 10 + comm.rank());
      }

      EXPECT_EQ(comm.allreduce_one<std::uint64_t>(
                    static_cast<std::uint64_t>(comm.rank()), ReduceOp::kMax),
                4U);
    });
  }
}

TEST(Watchdog, RecvStallThrowsDiagnostic) {
  // Rank 0 waits for a message nobody sends. The watchdog must turn the
  // would-be hang into a DeadlockError naming the stalled receive.
  ContextOptions options;
  options.watchdog = std::chrono::milliseconds(200);
  try {
    run_ranks(2, options, [](Comm& comm) {
      if (comm.rank() == 0) (void)comm.recv<int>(1, 5);
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("recv"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
  }
}

TEST(Watchdog, BarrierStallThrowsDiagnostic) {
  // Rank 2 never reaches the barrier; everyone else is stuck in it. All
  // waiting ranks unwind on the shared watchdog and the cohort joins.
  ContextOptions options;
  options.watchdog = std::chrono::milliseconds(200);
  try {
    run_ranks(4, options, [](Comm& comm) {
      if (comm.rank() != 2) comm.barrier();
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("barrier"), std::string::npos) << what;
  }
}

TEST(Watchdog, UndeliveredMailboxAppearsInDump) {
  // A message sent to the wrong tag shows up in the stall dump, pointing
  // at the mismatched send/recv pair.
  ContextOptions options;
  options.watchdog = std::chrono::milliseconds(200);
  try {
    run_ranks(2, options, [](Comm& comm) {
      if (comm.rank() == 1) {
        comm.send<int>(std::vector<int>{42}, 0, 3);  // tag 3...
      } else {
        (void)comm.recv<int>(1, 4);  // ...but rank 0 expects tag 4
      }
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("undelivered"), std::string::npos) << what;
  }
}

TEST(CommRequests, IsendIrecvRoundTrip) {
  run_ranks(2, [](Comm& comm) {
    // Default-constructed handles are complete and safe to wait on.
    Request idle;
    EXPECT_TRUE(idle.done());
    idle.wait();

    if (comm.rank() == 0) {
      const std::vector<int> payload{5, 6, 7};
      Request s = comm.isend<int>(payload, 1, 4);
      EXPECT_TRUE(s.done());  // buffered: send requests are born complete
      s.wait();
    } else {
      std::vector<int> incoming;
      Request r = comm.irecv(incoming, 0, 4);
      r.wait();
      EXPECT_TRUE(r.done());
      ASSERT_EQ(incoming.size(), 3U);
      EXPECT_EQ(incoming[0], 5);
      EXPECT_EQ(incoming[2], 7);
    }
  });
}

TEST(CommRequests, TestPollsWithoutBlocking) {
  run_ranks(2, [](Comm& comm) {
    std::vector<double> incoming;
    Request r;
    if (comm.rank() == 1) {
      r = comm.irecv(incoming, 0, 9);
      EXPECT_FALSE(r.test());  // sender is still held at the first barrier
      EXPECT_FALSE(r.done());
    }
    comm.barrier();  // releases the send
    if (comm.rank() == 0) comm.send<double>(std::vector<double>{2.5}, 1, 9);
    comm.barrier();  // the send happened-before this point on every rank
    if (comm.rank() == 1) {
      EXPECT_TRUE(r.test());  // must match without blocking now
      EXPECT_TRUE(r.done());
      ASSERT_EQ(incoming.size(), 1U);
      EXPECT_DOUBLE_EQ(incoming[0], 2.5);
    }
  });
}

TEST(CommRequests, OutOfOrderWaitAcrossChannels) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(std::vector<int>{1}, 1, 1);
      comm.send<int>(std::vector<int>{2}, 1, 2);
    } else {
      std::vector<int> a;
      std::vector<int> b;
      Request ra = comm.irecv(a, 0, 1);
      Request rb = comm.irecv(b, 0, 2);
      rb.wait();  // distinct channels may complete in any order
      ra.wait();
      EXPECT_EQ(a.at(0), 1);
      EXPECT_EQ(b.at(0), 2);
    }
  });
}

TEST(CommRequests, IalltoallvMatchesAlltoallv) {
  run_ranks(6, [](Comm& comm) {
    std::vector<std::vector<int>> send(6);
    for (int q = 0; q < 6; ++q) {
      send[static_cast<std::size_t>(q)] = {comm.rank() * 100 + q, q};
    }
    const auto blocking = comm.alltoallv(send);
    std::vector<std::vector<int>> nonblocking;
    comm.ialltoallv(send, nonblocking, 11).wait();
    EXPECT_EQ(nonblocking, blocking);
  });
}

TEST(CommRequests, EmptyLanesStillComplete) {
  // A receiver cannot know a peer had nothing to say without hearing so:
  // ialltoallv posts zero-byte messages for empty lanes, and every rank's
  // wait completes even when the whole exchange is (almost) empty.
  run_ranks(4, [](Comm& comm) {
    std::vector<std::vector<double>> send(4);
    if (comm.rank() == 2) send[0] = {1.25};
    std::vector<std::vector<double>> recv;
    comm.ialltoallv(send, recv, 12).wait();
    for (int q = 0; q < 4; ++q) {
      if (comm.rank() == 0 && q == 2) {
        ASSERT_EQ(recv[2].size(), 1U);
        EXPECT_DOUBLE_EQ(recv[2][0], 1.25);
      } else {
        EXPECT_TRUE(recv[static_cast<std::size_t>(q)].empty());
      }
    }
  });
}

TEST(CommRequests, PerturbedOverlapStaysCorrect) {
  // The overlapped-exchange pattern (post irecvs, post isends, local work,
  // wait_all) under seeded adversarial schedules at every mailbox op.
  for (const std::uint64_t seed : {3ULL, 41ULL, 977ULL}) {
    ContextOptions options;
    options.perturb_seed = seed;
    const int p = 5;
    run_ranks(p, options, [&](Comm& comm) {
      for (int round = 0; round < 8; ++round) {
        std::vector<std::vector<int>> incoming(static_cast<std::size_t>(p));
        std::vector<Request> requests;
        for (int q = 0; q < p; ++q) {
          if (q == comm.rank()) continue;
          requests.push_back(comm.irecv(incoming[static_cast<std::size_t>(q)], q, 13));
        }
        for (int q = 0; q < p; ++q) {
          if (q == comm.rank()) continue;
          requests.push_back(comm.isend<int>(
              std::vector<int>{round * 1000 + comm.rank() * 10 + q}, q, 13));
        }
        // "Interior" local work while the exchange is in flight.
        long local = 0;
        for (int i = 0; i < 1000; ++i) local += i;
        EXPECT_EQ(local, 499500);
        wait_all(requests);
        for (int q = 0; q < p; ++q) {
          if (q == comm.rank()) continue;
          EXPECT_EQ(incoming[static_cast<std::size_t>(q)].at(0),
                    round * 1000 + q * 10 + comm.rank());
        }
      }
    });
  }
}

TEST(CommRequests, WatchdogOnWaitStall) {
  // A wait on an irecv nobody answers must unwind through the watchdog
  // with the same diagnostic as a blocking recv stall.
  ContextOptions options;
  options.watchdog = std::chrono::milliseconds(200);
  try {
    run_ranks(2, options, [](Comm& comm) {
      if (comm.rank() == 0) {
        std::vector<int> buf;
        comm.irecv(buf, 1, 6).wait();  // nobody sends
      }
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("recv"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
  }
}

TEST(Ledger, PointToPointConservation) {
  // Every p2p byte posted is eventually taken: over a run where each rank
  // sends a differently-sized message to every peer (including zero-byte
  // lanes), the cohort-wide posted and taken totals must agree -- and none
  // of it may book as collective traffic.
  const int p = 5;
  const RunResult result = run_ranks(p, [&](Comm& comm) {
    std::vector<std::vector<std::uint32_t>> incoming(static_cast<std::size_t>(p));
    std::vector<Request> requests;
    for (int q = 0; q < p; ++q) {
      if (q == comm.rank()) continue;
      requests.push_back(comm.irecv(incoming[static_cast<std::size_t>(q)], q, 2));
    }
    for (int q = 0; q < p; ++q) {
      if (q == comm.rank()) continue;
      // Every rank sends q elements to rank q (rank 0 gets empty messages).
      const std::vector<std::uint32_t> payload(
          static_cast<std::size_t>(q), static_cast<std::uint32_t>(comm.rank()));
      requests.push_back(comm.isend<std::uint32_t>(payload, q, 2));
    }
    wait_all(requests);
    for (int q = 0; q < p; ++q) {
      if (q == comm.rank()) continue;
      ASSERT_EQ(incoming[static_cast<std::size_t>(q)].size(),
                static_cast<std::size_t>(comm.rank()));
    }
  });
  std::uint64_t posted_bytes = 0;
  std::uint64_t taken_bytes = 0;
  std::uint64_t posted_messages = 0;
  std::uint64_t taken_messages = 0;
  for (const CostLedger& ledger : result.ledgers) {
    posted_bytes += ledger.p2p_bytes_sent;
    taken_bytes += ledger.p2p_bytes_received;
    posted_messages += ledger.p2p_messages_sent;
    taken_messages += ledger.p2p_messages_received;
    EXPECT_EQ(ledger.collectives, 0U);
    EXPECT_EQ(ledger.bytes_sent, 0U);
    EXPECT_EQ(ledger.messages_sent, 0U);
  }
  EXPECT_EQ(posted_bytes, taken_bytes);
  EXPECT_EQ(posted_messages, taken_messages);
  EXPECT_EQ(posted_messages, static_cast<std::uint64_t>(p) * (p - 1));
  // Rank q hears q elements from each of its p-1 peers.
  std::uint64_t expected_bytes = 0;
  for (int q = 0; q < p; ++q) {
    expected_bytes +=
        static_cast<std::uint64_t>(q) * (p - 1) * sizeof(std::uint32_t);
  }
  EXPECT_EQ(posted_bytes, expected_bytes);
}

TEST(ThreadPoolComm, InteriorKernelRunsWhileRequestsInFlight) {
  // The overlapped-matvec shape: post the exchange, run the interior
  // kernel as a fork-join batch on a shared thread pool while requests
  // are in flight, then wait and consume. All ranks share one pool, so
  // pool workers and mailbox wakeups interleave freely (the TSan job
  // checks the synchronization between them).
  util::ThreadPool pool(3);
  const int p = 4;
  run_ranks(p, [&](Comm& comm) {
    for (int round = 0; round < 5; ++round) {
      const int left = (comm.rank() + p - 1) % p;
      const int right = (comm.rank() + 1) % p;
      std::vector<int> from_left;
      std::vector<int> from_right;
      std::vector<Request> requests;
      requests.push_back(comm.irecv(from_left, left, 21));
      requests.push_back(comm.irecv(from_right, right, 21));
      const std::vector<int> mine{comm.rank() * 7 + round};
      requests.push_back(comm.isend<int>(mine, left, 21));
      requests.push_back(comm.isend<int>(mine, right, 21));

      // Interior kernel: strided partial sums joined on the pool.
      std::vector<long> data(4096);
      std::iota(data.begin(), data.end(), 0L);
      std::vector<long> partial(4);
      std::vector<std::function<void()>> tasks;
      for (std::size_t t = 0; t < partial.size(); ++t) {
        tasks.push_back([t, &data, &partial] {
          long acc = 0;
          for (std::size_t i = t; i < data.size(); i += 4) acc += data[i];
          partial[t] = acc;
        });
      }
      pool.run(std::move(tasks));
      const long total = std::accumulate(partial.begin(), partial.end(), 0L);
      EXPECT_EQ(total, 4096L * 4095L / 2);

      wait_all(requests);
      ASSERT_EQ(from_left.size(), 1U);
      ASSERT_EQ(from_right.size(), 1U);
      EXPECT_EQ(from_left[0], left * 7 + round);
      EXPECT_EQ(from_right[0], right * 7 + round);
    }
  });
}

TEST(Runtime, ManyRanksStress) {
  // More ranks than cores: exercises the barrier under oversubscription.
  run_ranks(32, [](Comm& comm) {
    std::uint64_t total = 0;
    for (int round = 0; round < 20; ++round) {
      total = comm.allreduce_one<std::uint64_t>(1, ReduceOp::kSum);
    }
    EXPECT_EQ(total, 32U);
  });
}

}  // namespace
}  // namespace amr::simmpi
