// End-to-end integration tests across modules: the full paper pipeline
// (generate -> balance -> sort -> partition -> mesh -> matvec -> energy)
// executed (a) by the sequential global engine and (b) by real threads via
// simmpi, with the two agreeing exactly; plus the headline hypothesis test:
// on a communication-bound machine, the OptiPart partition's simulated
// matvec epoch is faster than the ideal equal split's.
#include <gtest/gtest.h>

#include <cmath>

#include "fem/laplacian.hpp"
#include "mesh/comm_matrix.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "octree/treesort.hpp"
#include "partition/optipart.hpp"
#include "sim/matvec_sim.hpp"
#include "simmpi/dist_fem.hpp"
#include "simmpi/dist_treesort.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace amr {
namespace {

using octree::Octant;
using sfc::Curve;
using sfc::CurveKind;

std::vector<Octant> pipeline_tree(CurveKind kind, std::size_t points,
                                  std::uint64_t seed) {
  const Curve curve(kind, 3);
  octree::GenerateOptions options;
  options.seed = seed;
  options.max_level = 7;
  options.max_points_per_leaf = 2;
  options.distribution = octree::PointDistribution::kNormal;
  return octree::balance_octree(octree::random_octree(points, curve, options), curve);
}

TEST(Integration, ThreadedMatvecEqualsSequentialEngine) {
  const int p = 6;
  const int iterations = 5;
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = pipeline_tree(CurveKind::kHilbert, 2500, 42);
  const auto part = partition::ideal_partition(tree.size(), p);
  const auto meshes = mesh::build_local_meshes(tree, curve, part);

  // Initial field: smooth bump.
  std::vector<double> u0(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto a = tree[i].anchor_unit();
    u0[i] = std::sin(3.14159 * a[0]) * std::sin(3.14159 * a[1]) * a[2];
  }

  // Sequential engine: iterate u <- L u.
  const fem::DistributedLaplacian engine(meshes);
  auto pieces = engine.scatter(u0);
  std::vector<std::vector<double>> out;
  for (int it = 0; it < iterations; ++it) {
    engine.matvec(pieces, out);
    std::swap(pieces, out);
  }
  const auto sequential = engine.gather(pieces);

  // Threaded engine over simmpi.
  std::vector<std::vector<double>> threaded_pieces(static_cast<std::size_t>(p));
  simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
    const mesh::LocalMesh& m = meshes[static_cast<std::size_t>(comm.rank())];
    std::vector<double> u(u0.begin() + static_cast<std::ptrdiff_t>(m.global_begin),
                          u0.begin() + static_cast<std::ptrdiff_t>(m.global_begin +
                                                                   m.elements.size()));
    simmpi::dist_matvec_loop(m, comm, iterations, u);
    threaded_pieces[static_cast<std::size_t>(comm.rank())] = std::move(u);
  });

  std::vector<double> threaded;
  for (const auto& piece : threaded_pieces) {
    threaded.insert(threaded.end(), piece.begin(), piece.end());
  }

  ASSERT_EQ(threaded.size(), sequential.size());
  for (std::size_t i = 0; i < threaded.size(); ++i) {
    EXPECT_DOUBLE_EQ(threaded[i], sequential[i]) << "element " << i;
  }
}

TEST(Integration, P2pExchangeMatchesCollectiveExchange) {
  const int p = 5;
  const int iterations = 4;
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = pipeline_tree(CurveKind::kHilbert, 2000, 19);
  const auto meshes =
      mesh::build_local_meshes(tree, curve, partition::ideal_partition(tree.size(), p));

  std::vector<double> u0(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    u0[i] = std::sin(static_cast<double>(i));
  }

  auto run_variant = [&](bool p2p) {
    std::vector<std::vector<double>> pieces(static_cast<std::size_t>(p));
    simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
      const mesh::LocalMesh& m = meshes[static_cast<std::size_t>(comm.rank())];
      std::vector<double> u(u0.begin() + static_cast<std::ptrdiff_t>(m.global_begin),
                            u0.begin() + static_cast<std::ptrdiff_t>(m.global_begin +
                                                                     m.elements.size()));
      if (p2p) {
        simmpi::dist_matvec_loop_p2p(m, comm, iterations, u);
      } else {
        simmpi::dist_matvec_loop(m, comm, iterations, u);
      }
      pieces[static_cast<std::size_t>(comm.rank())] = std::move(u);
    });
    std::vector<double> all;
    for (const auto& piece : pieces) all.insert(all.end(), piece.begin(), piece.end());
    return all;
  };

  const auto collective = run_variant(false);
  const auto p2p = run_variant(true);
  ASSERT_EQ(collective.size(), p2p.size());
  for (std::size_t i = 0; i < collective.size(); ++i) {
    EXPECT_DOUBLE_EQ(collective[i], p2p[i]) << i;
  }
}

TEST(Integration, OverlappedMatvecEqualsBlockingVariants) {
  // The overlapped variant (irecv/isend posted, interior rows computed
  // while the halo is in flight, boundary rows after the wait) must stay
  // bit-identical to both blocking variants and to the sequential engine
  // -- the phase split may not change a single ulp.
  const int p = 6;
  const int iterations = 5;
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = pipeline_tree(CurveKind::kHilbert, 2200, 27);
  const auto meshes =
      mesh::build_local_meshes(tree, curve, partition::ideal_partition(tree.size(), p));

  std::vector<double> u0(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto a = tree[i].anchor_unit();
    u0[i] = std::cos(2.7 * a[0]) * std::sin(1.9 * a[1] + a[2]);
  }

  using Variant = simmpi::DistFemReport (*)(const mesh::LocalMesh&, simmpi::Comm&,
                                            int, std::vector<double>&);
  std::vector<simmpi::DistFemReport> reports(static_cast<std::size_t>(p));
  auto run_variant = [&](Variant variant, bool keep_reports) {
    std::vector<std::vector<double>> pieces(static_cast<std::size_t>(p));
    simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
      const mesh::LocalMesh& m = meshes[static_cast<std::size_t>(comm.rank())];
      std::vector<double> u(u0.begin() + static_cast<std::ptrdiff_t>(m.global_begin),
                            u0.begin() + static_cast<std::ptrdiff_t>(m.global_begin +
                                                                     m.elements.size()));
      const simmpi::DistFemReport report = variant(m, comm, iterations, u);
      if (keep_reports) reports[static_cast<std::size_t>(comm.rank())] = report;
      pieces[static_cast<std::size_t>(comm.rank())] = std::move(u);
    });
    std::vector<double> all;
    for (const auto& piece : pieces) all.insert(all.end(), piece.begin(), piece.end());
    return all;
  };

  const auto overlapped = run_variant(&simmpi::dist_matvec_loop_overlapped, true);
  const auto p2p = run_variant(&simmpi::dist_matvec_loop_p2p, false);
  const auto collective = run_variant(&simmpi::dist_matvec_loop, false);

  // Sequential engine reference.
  const fem::DistributedLaplacian engine(meshes);
  auto engine_pieces = engine.scatter(u0);
  std::vector<std::vector<double>> out;
  for (int it = 0; it < iterations; ++it) {
    engine.matvec(engine_pieces, out);
    std::swap(engine_pieces, out);
  }
  const auto sequential = engine.gather(engine_pieces);

  ASSERT_EQ(overlapped.size(), sequential.size());
  for (std::size_t i = 0; i < overlapped.size(); ++i) {
    EXPECT_DOUBLE_EQ(overlapped[i], sequential[i]) << i;
    EXPECT_DOUBLE_EQ(overlapped[i], p2p[i]) << i;
    EXPECT_DOUBLE_EQ(overlapped[i], collective[i]) << i;
  }

  // Report accounting: phases sum into the totals and the exposed-comm
  // fraction is a valid ratio (the blocking variants pin it at 1).
  for (const simmpi::DistFemReport& r : reports) {
    EXPECT_NEAR(r.compute_seconds,
                r.interior_compute_seconds + r.boundary_compute_seconds, 1e-12);
    EXPECT_NEAR(r.exchange_seconds, r.post_seconds + r.exchange_wait_seconds, 1e-12);
    EXPECT_GE(r.exposed_comm_fraction(), 0.0);
    EXPECT_LE(r.exposed_comm_fraction(), 1.0);
  }
}

TEST(Integration, OptiPartBeatsIdealOnCommBoundMachine) {
  // The paper's hypothesis, end to end: build the mesh, partition with
  // OptiPart vs the ideal split, build real comm matrices, simulate the
  // 100-matvec epoch on the (comm-bound) CloudLab machine: OptiPart's
  // partition must yield lower time AND energy.
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = pipeline_tree(CurveKind::kHilbert, 12000, 7);
  const int p = 32;
  const machine::PerfModel model(machine::wisconsin8(), machine::ApplicationProfile{});

  const auto ideal = partition::ideal_partition(tree.size(), p);
  const auto opti = partition::optipart_partition(tree, curve, p, model);

  const auto metrics_ideal = partition::compute_metrics(tree, curve, ideal);
  const auto metrics_opti = partition::compute_metrics(tree, curve, opti);
  const auto comm_ideal = mesh::build_comm_matrix(tree, curve, ideal);
  const auto comm_opti = mesh::build_comm_matrix(tree, curve, opti);

  sim::MatvecSimConfig config;
  config.iterations = 100;
  config.sampler.sample_hz = 1e5;
  const auto run_ideal = sim::simulate_matvec(metrics_ideal, comm_ideal, model, config);
  const auto run_opti = sim::simulate_matvec(metrics_opti, comm_opti, model, config);

  EXPECT_LE(run_opti.total_seconds, run_ideal.total_seconds * 1.001);
  EXPECT_LE(run_opti.energy.total_joules, run_ideal.energy.total_joules * 1.001);
  // And the flexible partition moves no more ghost data in total.
  EXPECT_LE(comm_opti.total_elements(), comm_ideal.total_elements() * 1.001);
}

TEST(Integration, DistTreesortThenMeshThenMatvec) {
  // Distributed pipeline: ranks generate disjoint random octant streams,
  // dist_treesort partitions them, and the resulting per-rank trees tile a
  // valid global linear octree whose mesh supports a matvec.
  const int p = 4;
  const Curve curve(CurveKind::kMorton, 3);

  std::vector<std::vector<Octant>> pieces(static_cast<std::size_t>(p));
  simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
    octree::GenerateOptions options;
    options.seed = 1000 + static_cast<std::uint64_t>(comm.rank());
    options.max_level = 6;
    // Each rank contributes points; leaves of a *local* octree act as the
    // element stream (duplicates across ranks are fine for sorting).
    auto local = octree::random_octree(1000, curve, options);
    simmpi::dist_treesort(local, comm, curve, {});
    pieces[static_cast<std::size_t>(comm.rank())] = std::move(local);
  });

  std::vector<Octant> all;
  for (const auto& piece : pieces) all.insert(all.end(), piece.begin(), piece.end());
  EXPECT_TRUE(octree::is_sfc_sorted(all, curve));
}

TEST(Integration, EnergyRuntimeCorrelationAcrossTolerances) {
  // Sweep tolerances like Fig. 7 and verify runtime and energy move
  // together (strong positive correlation).
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = pipeline_tree(CurveKind::kHilbert, 8000, 3);
  const int p = 16;
  const machine::PerfModel model(machine::clemson32(), machine::ApplicationProfile{});

  std::vector<double> times;
  std::vector<double> energies;
  for (const double tol : {0.0, 0.1, 0.2, 0.3, 0.5}) {
    partition::TreeSortPartitionOptions options;
    options.tolerance = tol;
    const auto part = partition::treesort_partition(tree, curve, p, options);
    const auto metrics = partition::compute_metrics(tree, curve, part);
    const auto comm = mesh::build_comm_matrix(tree, curve, part);
    sim::MatvecSimConfig config;
    config.iterations = 20;
    config.sampler.sample_hz = 1e5;
    const auto run = sim::simulate_matvec(metrics, comm, model, config);
    times.push_back(run.total_seconds);
    energies.push_back(run.energy.total_joules);
  }
  EXPECT_GT(util::pearson(times, energies), 0.9);
}

}  // namespace
}  // namespace amr
