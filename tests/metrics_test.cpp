// PartitionQuality (Alg. 2) metric tests: boundary octant counting,
// imbalance measures, and the monotone communication-vs-level trade-off
// of paper Figs. 2 and 11.
#include <gtest/gtest.h>

#include <algorithm>

#include "machine/perf_model.hpp"
#include "octree/generate.hpp"
#include "partition/metrics.hpp"
#include "partition/partition.hpp"

namespace amr::partition {
namespace {

using octree::Octant;
using sfc::Curve;
using sfc::CurveKind;

TEST(Metrics, UniformGridTwoRanks) {
  // 4x4x4 grid split in half along the curve: work 32/32.
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = octree::uniform_octree(2, curve);
  const Partition part = ideal_partition(tree.size(), 2);
  const Metrics m = compute_metrics(tree, curve, part);
  EXPECT_DOUBLE_EQ(m.work[0], 32.0);
  EXPECT_DOUBLE_EQ(m.work[1], 32.0);
  EXPECT_DOUBLE_EQ(m.load_imbalance, 1.0);
  // Under Morton, the first 32 cells are the z < 1/2 half: the boundary is
  // the full 4x4 plane of cells on each side.
  EXPECT_DOUBLE_EQ(m.boundary[0], 16.0);
  EXPECT_DOUBLE_EQ(m.boundary[1], 16.0);
  EXPECT_DOUBLE_EQ(m.c_max, 16.0);
}

TEST(Metrics, SingleRankHasNoBoundary) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = octree::uniform_octree(2, curve);
  const Partition part = ideal_partition(tree.size(), 1);
  const Metrics m = compute_metrics(tree, curve, part);
  EXPECT_DOUBLE_EQ(m.c_max, 0.0);
  EXPECT_DOUBLE_EQ(m.total_boundary, 0.0);
}

TEST(Metrics, SampledEstimatorTracksExact) {
  const Curve curve(CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = 17;
  options.max_level = 9;
  const auto tree = octree::random_octree(20000, curve, options);
  const Partition part = ideal_partition(tree.size(), 8);
  const Metrics exact = compute_metrics(tree, curve, part);
  const Metrics sampled = compute_metrics(tree, curve, part, {4});
  EXPECT_NEAR(sampled.c_max / exact.c_max, 1.0, 0.25);
  EXPECT_DOUBLE_EQ(sampled.w_max, exact.w_max);  // work is exact regardless
}

TEST(Metrics, SampledBoundaryClampedToRankSize) {
  // 4x4x4 Morton grid over 8 ranks: each rank owns one 2x2x2 block (8
  // cells), of which exactly 7 are boundary (the block's domain-corner
  // cell has every in-domain neighbor inside its own block).
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = octree::uniform_octree(2, curve);
  const Partition part = ideal_partition(tree.size(), 8);

  const Metrics exact = compute_metrics(tree, curve, part);
  const Metrics s1 = compute_metrics(tree, curve, part, {1});
  for (int r = 0; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(exact.boundary[static_cast<std::size_t>(r)], 7.0);
    // stride 1 is the exact path, sample bookkeeping included.
    EXPECT_DOUBLE_EQ(s1.boundary[static_cast<std::size_t>(r)],
                     exact.boundary[static_cast<std::size_t>(r)]);
  }

  // Regression: a boundary sample used to be credited a full stride even
  // when fewer elements remained in the rank. stride 3 on 8 elements put
  // the estimate at 3+3+3 = 9 of 8 cells; stride 16 put it at 16. Clamped,
  // the estimate can never exceed the rank size.
  const Metrics s3 = compute_metrics(tree, curve, part, {3});
  const Metrics s16 = compute_metrics(tree, curve, part, {16});
  double max3 = 0.0;
  double max16 = 0.0;
  for (int r = 0; r < 8; ++r) {
    EXPECT_LE(s3.boundary[static_cast<std::size_t>(r)], 8.0) << "rank " << r;
    EXPECT_LE(s16.boundary[static_cast<std::size_t>(r)], 8.0) << "rank " << r;
    max3 = std::max(max3, s3.boundary[static_cast<std::size_t>(r)]);
    max16 = std::max(max16, s16.boundary[static_cast<std::size_t>(r)]);
  }
  // The estimator still saturates at full rank size for ranks whose
  // samples are all boundary, so the clamp is exercised, not vacuous.
  EXPECT_DOUBLE_EQ(max3, 8.0);
  EXPECT_DOUBLE_EQ(max16, 8.0);
  EXPECT_DOUBLE_EQ(s16.c_max, 8.0);
}

TEST(Metrics, PredictedTimeMatchesEquation3) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = octree::uniform_octree(2, curve);
  const Partition part = ideal_partition(tree.size(), 2);
  const Metrics m = compute_metrics(tree, curve, part);
  const machine::PerfModel model(machine::titan(), machine::ApplicationProfile{});
  EXPECT_DOUBLE_EQ(m.predicted_time(model), model.application_time(m.w_max, m.c_max));
  EXPECT_DOUBLE_EQ(partition_quality(tree, curve, part, model),
                   m.predicted_time(model));
}

// Fig. 2's trade-off on the real metric: refining the partition toward the
// ideal split must not decrease the boundary (communication), while the
// imbalance shrinks.
TEST(Metrics, BoundaryGrowsAsImbalanceShrinks) {
  const Curve curve(CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = 23;
  options.max_level = 9;
  options.distribution = octree::PointDistribution::kNormal;
  const auto tree = octree::random_octree(30000, curve, options);
  const int p = 8;

  // Coarse partition (high tolerance) vs fine partition (tolerance 0).
  TreeSortPartitionOptions coarse_opt;
  coarse_opt.tolerance = 0.4;
  const Partition coarse = treesort_partition(tree, curve, p, coarse_opt);
  const Partition fine = treesort_partition(tree, curve, p, {});

  const Metrics m_coarse = compute_metrics(tree, curve, coarse);
  const Metrics m_fine = compute_metrics(tree, curve, fine);

  EXPECT_LE(m_fine.load_imbalance, m_coarse.load_imbalance + 1e-9);
  // The total boundary surface of the flexible partition is no larger.
  EXPECT_LE(m_coarse.total_boundary, m_fine.total_boundary * 1.02 + 1.0);
}

TEST(Metrics, ImbalanceGrowsWithTolerance) {
  // Fig. 11: load imbalance increases with tolerance.
  const Curve curve(CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = 29;
  options.max_level = 10;
  const auto tree = octree::random_octree(40000, curve, options);
  const int p = 16;

  double prev_lambda = 0.0;
  for (const double tol : {0.0, 0.2, 0.5}) {
    TreeSortPartitionOptions opt;
    opt.tolerance = tol;
    const Partition part = treesort_partition(tree, curve, p, opt);
    const double lambda = part.load_imbalance();
    EXPECT_GE(lambda, prev_lambda - 1e-9) << "tol " << tol;
    prev_lambda = lambda;
  }
  EXPECT_GT(prev_lambda, 1.05);  // tolerance 0.5 visibly imbalanced
}

TEST(Metrics, TwoDPartitionBoundary) {
  const Curve curve(CurveKind::kHilbert, 2);
  const auto tree = octree::uniform_octree(3, curve);  // 8x8 quadtree
  const Partition part = ideal_partition(tree.size(), 4);
  const Metrics m = compute_metrics(tree, curve, part);
  // Hilbert splits an 8x8 grid over 4 ranks into four 4x4 quadrants, each
  // exposing its 7 interior-facing cells... at minimum the boundary is the
  // quadrant edge (7 cells), at most the full quadrant (16).
  for (int r = 0; r < 4; ++r) {
    EXPECT_GE(m.boundary[static_cast<std::size_t>(r)], 4.0);
    EXPECT_LE(m.boundary[static_cast<std::size_t>(r)], 16.0);
  }
}

}  // namespace
}  // namespace amr::partition
