// Streaming-telemetry tests (DESIGN.md §16): histogram bucket geometry
// and merge algebra (associative, commutative, bitwise-equal to
// single-stream ingest -- including across simmpi ranks via the
// reduction), quantile accuracy on a million lognormal samples, the
// registry's shard fold, the single-relaxed-load disabled path for both
// the recorder macros and the registry, the flight recorder's bounded
// rings, its dump inside the watchdog's DeadlockError, and the
// bench_diff regression gate. The perturbed TSan CI job runs these
// suites (Telemetry*) to pin that concurrent shard writes are clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/bench_diff.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"
#include "simmpi/dist_telemetry.hpp"
#include "simmpi/runtime.hpp"
#include "util/json.hpp"

namespace amr {
namespace {

using obs::LatencyHistogram;

std::vector<std::int64_t> lognormal_samples(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::lognormal_distribution<double> dist(0.0, 1.0);
  std::vector<std::int64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::int64_t>(dist(rng) * 1.0e5));
  }
  return out;
}

LatencyHistogram ingest(const std::vector<std::int64_t>& samples) {
  LatencyHistogram h;
  for (const std::int64_t v : samples) h.record(v);
  return h;
}

TEST(TelemetryHistogram, BucketGeometryRoundTrips) {
  // Every probed value lands in a bucket whose bounds contain it, the
  // bounds map back to the same bucket, and the bucket is narrow enough
  // for the advertised <= 1/16 relative resolution.
  std::vector<std::int64_t> probes;
  for (std::int64_t v = 0; v < 200; ++v) probes.push_back(v);
  for (int e = 8; e < 62; ++e) {
    const std::int64_t p = std::int64_t{1} << e;
    probes.insert(probes.end(), {p - 1, p, p + 1, p + p / 3});
  }
  for (const std::int64_t v : probes) {
    const int b = LatencyHistogram::bucket_of(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, LatencyHistogram::kBucketCount);
    const std::int64_t lo = LatencyHistogram::bucket_lower_bound(b);
    const std::int64_t hi = LatencyHistogram::bucket_upper_bound(b);
    EXPECT_LE(lo, v) << v;
    EXPECT_GE(hi, v) << v;
    EXPECT_EQ(LatencyHistogram::bucket_of(lo), b) << v;
    if (hi < std::numeric_limits<std::int64_t>::max()) {
      EXPECT_EQ(LatencyHistogram::bucket_of(hi), b) << v;
      if (v >= LatencyHistogram::kSubBuckets) {
        // Bucket width relative to its lower bound bounds the error.
        EXPECT_LE(static_cast<double>(hi - lo + 1),
                  static_cast<double>(lo) / LatencyHistogram::kSubBuckets + 1.0)
            << v;
      }
    }
  }
  EXPECT_EQ(LatencyHistogram::bucket_of(-5), 0);
}

TEST(TelemetryHistogram, MergeIsAssociativeCommutativeAndMatchesSingleStream) {
  const auto sa = lognormal_samples(4000, 1);
  const auto sb = lognormal_samples(3000, 2);
  const auto sc = lognormal_samples(5000, 3);
  const LatencyHistogram a = ingest(sa), b = ingest(sb), c = ingest(sc);

  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ba = b;
  ba.merge(a);
  EXPECT_TRUE(ab == ba);  // commutative, bitwise

  LatencyHistogram ab_c = ab;
  ab_c.merge(c);
  LatencyHistogram bc = b;
  bc.merge(c);
  LatencyHistogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_TRUE(ab_c == a_bc);  // associative, bitwise

  // Merged state is the concatenated stream's state, so every quantile
  // read from it matches the single-stream oracle exactly.
  std::vector<std::int64_t> all = sa;
  all.insert(all.end(), sb.begin(), sb.end());
  all.insert(all.end(), sc.begin(), sc.end());
  const LatencyHistogram single = ingest(all);
  EXPECT_TRUE(ab_c == single);
  EXPECT_EQ(ab_c.p50(), single.p50());
  EXPECT_EQ(ab_c.p99(), single.p99());
  EXPECT_EQ(ab_c.p999(), single.p999());

  // Merging an empty histogram is the identity.
  LatencyHistogram with_empty = ab_c;
  with_empty.merge(LatencyHistogram{});
  EXPECT_TRUE(with_empty == ab_c);
}

TEST(TelemetryHistogram, QuantilesWithinOneBucketOfExactOnLognormal) {
  auto samples = lognormal_samples(1'000'000, 42);
  const LatencyHistogram h = ingest(samples);
  ASSERT_EQ(h.count(), samples.size());

  std::sort(samples.begin(), samples.end());
  EXPECT_EQ(h.min(), samples.front());
  EXPECT_EQ(h.max(), samples.back());

  for (const double q : {0.50, 0.99, 0.999}) {
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(q * static_cast<double>(samples.size()))));
    const std::int64_t exact = samples[rank - 1];
    const std::int64_t reported = h.value_at_quantile(q);
    // Within one bucket: the reported bucket is the exact value's bucket
    // (the upper bound read can only stay inside it).
    EXPECT_EQ(LatencyHistogram::bucket_of(reported),
              LatencyHistogram::bucket_of(exact))
        << "q=" << q;
    // And therefore within the advertised relative resolution.
    EXPECT_NEAR(static_cast<double>(reported), static_cast<double>(exact),
                static_cast<double>(exact) / LatencyHistogram::kSubBuckets + 1.0)
        << "q=" << q;
  }
}

TEST(TelemetryHistogram, RankMergeEqualsSingleStreamIngestBitwise) {
  constexpr int kRanks = 4;
  std::vector<std::vector<std::int64_t>> per_rank;
  std::vector<std::int64_t> all;
  for (int r = 0; r < kRanks; ++r) {
    per_rank.push_back(lognormal_samples(2500 + 100 * static_cast<std::size_t>(r),
                                         100 + static_cast<std::uint64_t>(r)));
    all.insert(all.end(), per_rank.back().begin(), per_rank.back().end());
  }
  const LatencyHistogram oracle = ingest(all);

  std::vector<LatencyHistogram> reduced(kRanks);
  simmpi::run_ranks(kRanks, [&](simmpi::Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    const LatencyHistogram local = ingest(per_rank[r]);
    reduced[r] = simmpi::allreduce_histogram(comm, local);
  });

  for (int r = 0; r < kRanks; ++r) {
    EXPECT_TRUE(reduced[static_cast<std::size_t>(r)] == oracle) << "rank " << r;
    EXPECT_EQ(reduced[static_cast<std::size_t>(r)].p99(), oracle.p99());
  }

  // Ranks with no samples contribute the identity.
  std::vector<LatencyHistogram> sparse(kRanks);
  simmpi::run_ranks(kRanks, [&](simmpi::Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    LatencyHistogram local;
    if (r == 2) local = ingest(per_rank[0]);
    sparse[r] = simmpi::allreduce_histogram(comm, local);
  });
  EXPECT_TRUE(sparse[0] == ingest(per_rank[0]));
}

TEST(TelemetryRegistry, CountersGaugesAndHistogramsFoldAcrossThreads) {
  obs::Registry& reg = obs::Registry::global();
  obs::set_telemetry_enabled(true);
  reg.reset();

  const obs::MetricId jobs = reg.counter("test.jobs");
  const obs::MetricId depth = reg.gauge("test.depth");
  const obs::MetricId lat = reg.histogram("test.latency_ns");

  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.add(jobs);
        reg.observe(lat, 1000 + t);
      }
    });
  }
  for (auto& w : workers) w.join();
  reg.set_gauge(depth, 17);

  const std::vector<obs::MetricValue> values = reg.collect();
  ASSERT_GE(values.size(), 3u);
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const obs::MetricValue& v : values) {
    if (v.name == "test.jobs") {
      saw_counter = true;
      EXPECT_EQ(v.kind, obs::MetricKind::kCounter);
      EXPECT_EQ(v.value, kThreads * kPerThread);
    } else if (v.name == "test.depth") {
      saw_gauge = true;
      EXPECT_EQ(v.value, 17);
    } else if (v.name == "test.latency_ns") {
      saw_hist = true;
      EXPECT_EQ(v.histogram.count(),
                static_cast<std::uint64_t>(kThreads * kPerThread));
      EXPECT_EQ(v.histogram.min(), 1000);
      EXPECT_EQ(v.histogram.max(), 1000 + kThreads - 1);
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);

  // Re-registering the same name returns the same id; a kind change is an
  // instrumentation bug and throws.
  EXPECT_EQ(reg.counter("test.jobs"), jobs);
  EXPECT_THROW((void)reg.gauge("test.jobs"), std::logic_error);

  reg.reset();
  EXPECT_EQ(reg.histogram_value(lat).count(), 0u);
  obs::set_telemetry_enabled(false);
}

TEST(TelemetryRegistry, DisabledPathTouchesNoShardAndAllocatesNothing) {
  obs::Registry& reg = obs::Registry::global();
  obs::set_telemetry_enabled(true);
  const obs::MetricId counter = reg.counter("test.disabled_counter");
  const obs::MetricId hist = reg.histogram("test.disabled_hist");
  reg.reset();
  obs::set_telemetry_enabled(false);

  // A thread that only ever records while telemetry is off must not
  // create a shard: the whole update is one relaxed load of the switch.
  const std::size_t shards_before = reg.shard_count();
  std::thread t([&] {
    for (int i = 0; i < 1000; ++i) {
      reg.add(counter, 3);
      reg.observe(hist, 12345);
      reg.set_gauge(counter, 1);  // wrong kind on purpose: also a no-op
    }
  });
  t.join();
  EXPECT_EQ(reg.shard_count(), shards_before);

  obs::set_telemetry_enabled(true);
  for (const obs::MetricValue& v : reg.collect()) {
    if (v.name == "test.disabled_counter") {
      EXPECT_EQ(v.value, 0);
    }
    if (v.name == "test.disabled_hist") {
      EXPECT_EQ(v.histogram.count(), 0u);
    }
  }
  obs::set_telemetry_enabled(false);
}

TEST(TelemetryRecorder, DisabledMacrosCreateNoBuffers) {
  // The satellite guard for the tracing half: with recording off, the
  // span/counter macros are a single relaxed load -- no ring buffer is
  // ever created, even from a fresh thread.
  obs::set_enabled(false);
  obs::clear();
  const std::size_t buffers_before = obs::buffer_count();
  std::thread t([] {
    for (int i = 0; i < 1000; ++i) {
      AMR_SPAN("disabled.span");
      AMR_COUNTER("disabled.counter", 7);
    }
  });
  t.join();
  EXPECT_EQ(obs::buffer_count(), buffers_before);
  EXPECT_TRUE(obs::snapshot().events.empty());
}

TEST(TelemetryFlight, RingRetainsOnlyTheTail) {
  obs::set_mode(obs::RecordMode::kFlight);
  obs::set_flight_capacity(16);
  obs::clear();

  // A fresh thread gets a flight-size ring; 100 instants overflow it.
  std::thread t([] {
    for (int i = 0; i < 99; ++i) AMR_INSTANT("flight.early");
    AMR_INSTANT("flight.last");
  });
  t.join();

  const obs::Snapshot snap = obs::snapshot();
  std::size_t mine = 0;
  bool saw_last = false;
  for (const obs::Event& e : snap.events) {
    if (std::string(e.name).rfind("flight.", 0) == 0) {
      ++mine;
      if (std::string(e.name) == "flight.last") saw_last = true;
    }
  }
  EXPECT_LE(mine, 16u);
  EXPECT_GT(mine, 0u);
  EXPECT_TRUE(saw_last);
  EXPECT_GE(snap.dropped, 84u);

  const std::string dump = obs::flight_dump();
  EXPECT_NE(dump.find("flight recorder"), std::string::npos);
  EXPECT_NE(dump.find("flight.last"), std::string::npos);

  obs::set_mode(obs::RecordMode::kOff);
  obs::clear();
}

TEST(TelemetryFlight, DumpIsInsideWatchdogDeadlockError) {
  obs::set_mode(obs::RecordMode::kFlight);
  obs::clear();

  simmpi::ContextOptions options;
  options.watchdog = std::chrono::milliseconds(200);
  options.perturb_seed = 0;
  try {
    simmpi::run_ranks(2, options, [](simmpi::Comm& comm) {
      if (comm.rank() == 1) {
        AMR_INSTANT("telemetry.pre_stall");
        (void)comm.recv<std::uint8_t>(0, 9);  // never sent
      }
      comm.barrier();
    });
    FAIL() << "expected DeadlockError";
  } catch (const simmpi::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("simmpi watchdog"), std::string::npos);
    EXPECT_NE(what.find("flight recorder"), std::string::npos);
    // The stalled rank's last recorded event is in the post-mortem.
    EXPECT_NE(what.find("telemetry.pre_stall"), std::string::npos);
  }

  obs::set_mode(obs::RecordMode::kOff);
  obs::clear();
}

TEST(TelemetryFlight, DumpSaysOffWhenRecordingIsOff) {
  obs::set_mode(obs::RecordMode::kOff);
  const std::string dump = obs::flight_dump();
  EXPECT_NE(dump.find("off"), std::string::npos);
}

TEST(TelemetryHistogram, ToJsonIsParseableAndCarriesQuantiles) {
  const LatencyHistogram h = ingest(lognormal_samples(1000, 7));
  std::ostringstream out;
  h.to_json(out);
  const util::Json doc = util::Json::parse(out.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(static_cast<std::uint64_t>(doc.find("count")->number()), h.count());
  EXPECT_EQ(static_cast<std::int64_t>(doc.find("p50")->number()), h.p50());
  EXPECT_EQ(static_cast<std::int64_t>(doc.find("p999")->number()), h.p999());
  EXPECT_NE(doc.find("mean"), nullptr);
}

// ---------------------------------------------------------------------------
// bench_diff

util::Json bench_doc(double median_seconds, double speedup,
                     const std::string& host = "vm",
                     const std::string& build_type = "Release") {
  std::ostringstream out;
  out << "{\"bench\": \"demo\", \"build_type\": \"" << build_type
      << "\", \"amr_threads\": \"\", \"host\": {\"hostname\": \"" << host
      << "\"}, \"results\": [{\"merge_median_seconds\": " << median_seconds
      << ", \"sort_speedup\": " << speedup << ", \"elements\": 1000}]}";
  return util::Json::parse(out.str());
}

TEST(TelemetryBenchDiff, PassesOnIdenticalInputs) {
  const util::Json doc = bench_doc(0.010, 2.0);
  const obs::DiffReport report = obs::diff_bench(doc, doc);
  EXPECT_FALSE(report.incommensurable);
  EXPECT_EQ(report.regressions, 0);
  EXPECT_EQ(report.improvements, 0);
  EXPECT_FALSE(report.rows.empty());
}

TEST(TelemetryBenchDiff, FlagsSyntheticTwoTimesMedianRegression) {
  const obs::DiffReport report =
      obs::diff_bench(bench_doc(0.010, 2.0), bench_doc(0.020, 2.0));
  EXPECT_FALSE(report.incommensurable);
  EXPECT_EQ(report.regressions, 1);
  bool found = false;
  for (const obs::DiffRow& row : report.rows) {
    if (row.status == obs::DiffRowStatus::kRegressed) {
      found = true;
      EXPECT_EQ(row.path, "results[0].merge_median_seconds");
      EXPECT_NEAR(row.ratio, 2.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(TelemetryBenchDiff, ImprovementAndSpeedupDirections) {
  // Faster wall time is an improvement, not a regression...
  EXPECT_EQ(obs::diff_bench(bench_doc(0.020, 2.0), bench_doc(0.010, 2.0))
                .regressions,
            0);
  // ...and a halved speedup is a regression even with times unchanged.
  const obs::DiffReport report =
      obs::diff_bench(bench_doc(0.010, 2.0), bench_doc(0.010, 0.9));
  EXPECT_EQ(report.regressions, 1);
}

TEST(TelemetryBenchDiff, NoiseFloorSuppressesTinyTimes) {
  // 20us vs 50us is under the 100us floor: informational, not a gate.
  const obs::DiffReport report =
      obs::diff_bench(bench_doc(20e-6, 2.0), bench_doc(50e-6, 2.0));
  EXPECT_EQ(report.regressions, 0);
  bool saw_info = false;
  for (const obs::DiffRow& row : report.rows) {
    if (row.status == obs::DiffRowStatus::kInfo) saw_info = true;
  }
  EXPECT_TRUE(saw_info);
}

TEST(TelemetryBenchDiff, HostMismatchDemotesTimesButGatesRatios) {
  // Different hosts: the 3x slower median is informational (different
  // silicon), but the halved speedup -- a within-run ratio -- still gates.
  const obs::DiffReport report = obs::diff_bench(
      bench_doc(0.010, 2.0, "vm"), bench_doc(0.030, 0.9, "ci-runner"));
  EXPECT_TRUE(report.host_mismatch);
  EXPECT_EQ(report.regressions, 1);
  for (const obs::DiffRow& row : report.rows) {
    if (row.path == "results[0].merge_median_seconds") {
      EXPECT_EQ(row.status, obs::DiffRowStatus::kInfo);
    }
    if (row.path == "results[0].sort_speedup") {
      EXPECT_EQ(row.status, obs::DiffRowStatus::kRegressed);
    }
  }
}

TEST(TelemetryBenchDiff, RefusesIncommensurableRuns) {
  // Different bench entirely.
  util::Json other = util::Json::parse("{\"bench\": \"other\"}");
  EXPECT_TRUE(obs::diff_bench(bench_doc(0.01, 2.0), other).incommensurable);
  // Same bench, different build type.
  const obs::DiffReport report = obs::diff_bench(
      bench_doc(0.010, 2.0, "vm", "Release"), bench_doc(0.010, 2.0, "vm", "Debug"));
  EXPECT_TRUE(report.incommensurable);
  EXPECT_NE(report.reason.find("build_type"), std::string::npos);
  // Old baseline without provenance fields: compared, not refused.
  util::Json old = util::Json::parse(
      "{\"bench\": \"demo\", \"results\": [{\"merge_median_seconds\": 0.010}]}");
  EXPECT_FALSE(obs::diff_bench(old, bench_doc(0.010, 2.0)).incommensurable);
}

}  // namespace
}  // namespace amr
