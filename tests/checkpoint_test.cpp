// Checkpoint I/O tests: byte-level round trip, file round trip, and
// rejection of malformed inputs.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <utility>

#include "io/checkpoint.hpp"
#include "octree/generate.hpp"
#include "octree/treesort.hpp"
#include "partition/partition.hpp"

namespace amr::io {
namespace {

using sfc::Curve;
using sfc::CurveKind;

Checkpoint make_checkpoint(std::uint64_t seed) {
  const Curve curve(CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = seed;
  options.max_level = 7;
  Checkpoint checkpoint;
  checkpoint.tree = octree::random_octree(2000, curve, options);
  checkpoint.part = partition::ideal_partition(checkpoint.tree.size(), 8);
  checkpoint.field.resize(checkpoint.tree.size());
  for (std::size_t i = 0; i < checkpoint.field.size(); ++i) {
    checkpoint.field[i] = 0.5 * static_cast<double>(i);
  }
  return checkpoint;
}

TEST(Checkpoint, BytesRoundTrip) {
  const Checkpoint original = make_checkpoint(3);
  const auto bytes = checkpoint_to_bytes(original);
  const auto restored = checkpoint_from_bytes(bytes);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, original);
}

TEST(Checkpoint, OptionalPartsCanBeEmpty) {
  Checkpoint minimal;
  minimal.tree = {octree::root_octant()};
  const auto restored = checkpoint_from_bytes(checkpoint_to_bytes(minimal));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, minimal);
  EXPECT_TRUE(restored->part.offsets.empty());
  EXPECT_TRUE(restored->field.empty());
}

TEST(Checkpoint, FileRoundTrip) {
  const Checkpoint original = make_checkpoint(9);
  const std::string path = "/tmp/amrpart_checkpoint_test.bin";
  ASSERT_TRUE(save_checkpoint(path, original));
  const auto restored = load_checkpoint(path);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, original);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMalformedInput) {
  const Checkpoint original = make_checkpoint(5);
  auto bytes = checkpoint_to_bytes(original);

  // Truncated payload.
  auto truncated = bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(checkpoint_from_bytes(truncated).has_value());

  // Corrupted magic.
  auto corrupted = bytes;
  corrupted[0] = std::byte{0xFF};
  EXPECT_FALSE(checkpoint_from_bytes(corrupted).has_value());

  // Trailing garbage.
  auto padded = bytes;
  padded.push_back(std::byte{0});
  EXPECT_FALSE(checkpoint_from_bytes(padded).has_value());

  // Empty buffer.
  EXPECT_FALSE(checkpoint_from_bytes({}).has_value());

  // Missing file.
  EXPECT_FALSE(load_checkpoint("/tmp/definitely_missing_amrpart.bin").has_value());
}

TEST(Checkpoint, RejectsForeignEndianness) {
  // A file written on a machine of the opposite byte order has its header
  // words byte-swapped. The reader must refuse it (loudly) instead of
  // decoding garbage counts. Swap the first four u32 header words (magic,
  // version, dim, endian tag) to fake such a file.
  const Checkpoint original = make_checkpoint(13);
  auto bytes = checkpoint_to_bytes(original);
  ASSERT_GE(bytes.size(), 16U);
  for (std::size_t word = 0; word < 4; ++word) {
    std::swap(bytes[word * 4 + 0], bytes[word * 4 + 3]);
    std::swap(bytes[word * 4 + 1], bytes[word * 4 + 2]);
  }
  EXPECT_FALSE(checkpoint_from_bytes(bytes).has_value());
}

TEST(Checkpoint, RejectsVersionMismatch) {
  // Bump the version word (offset 4): a reader of a different format
  // version must fail the header check, not attempt a decode.
  const Checkpoint original = make_checkpoint(14);
  auto bytes = checkpoint_to_bytes(original);
  bytes[4] = std::byte{static_cast<unsigned char>(std::to_integer<unsigned>(bytes[4]) + 1)};
  EXPECT_FALSE(checkpoint_from_bytes(bytes).has_value());
}

TEST(Checkpoint, RejectsCorruptEndianTag) {
  // An endian tag that is neither native nor swapped means the header
  // itself is damaged.
  const Checkpoint original = make_checkpoint(15);
  auto bytes = checkpoint_to_bytes(original);
  bytes[12] = std::byte{0xAB};
  bytes[13] = std::byte{0xCD};
  EXPECT_FALSE(checkpoint_from_bytes(bytes).has_value());
}

TEST(Checkpoint, HeaderStartsWithMagicAndVersion) {
  // The on-disk prefix is stable: "AMRP" magic then the format version,
  // so external tools (and humans with xxd) can identify the file.
  const auto bytes = checkpoint_to_bytes(make_checkpoint(16));
  ASSERT_GE(bytes.size(), 8U);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::memcpy(&magic, bytes.data(), 4);
  std::memcpy(&version, bytes.data() + 4, 4);
  EXPECT_EQ(magic, 0x414d5250U);
  EXPECT_EQ(version, 2U);
}

TEST(Checkpoint, RejectsInconsistentCounts) {
  Checkpoint bad = make_checkpoint(7);
  bad.field.resize(bad.field.size() / 2);  // field != tree size
  EXPECT_FALSE(checkpoint_from_bytes(checkpoint_to_bytes(bad)).has_value());

  Checkpoint bad_offsets = make_checkpoint(8);
  bad_offsets.part.offsets.back() += 1;  // offsets do not end at N
  EXPECT_FALSE(
      checkpoint_from_bytes(checkpoint_to_bytes(bad_offsets)).has_value());
}

TEST(Checkpoint, RestartContinuesARun) {
  // The intended use: partition state survives a save/load cycle intact
  // enough to keep computing.
  const Checkpoint original = make_checkpoint(11);
  const auto restored = checkpoint_from_bytes(checkpoint_to_bytes(original));
  ASSERT_TRUE(restored.has_value());
  const Curve curve(CurveKind::kHilbert, 3);
  EXPECT_TRUE(octree::is_complete(restored->tree, curve));
  EXPECT_EQ(restored->part.num_ranks(), 8);
  EXPECT_EQ(restored->part.total(), restored->tree.size());
}

}  // namespace
}  // namespace amr::io
