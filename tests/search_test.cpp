// Linear-octree query tests: point-to-leaf lookup and cross-level face
// neighbor enumeration, verified against brute force.
#include <gtest/gtest.h>

#include <algorithm>

#include "octree/generate.hpp"
#include "octree/search.hpp"
#include "util/rng.hpp"

namespace amr::octree {
namespace {

using sfc::Curve;
using sfc::CurveKind;

std::vector<Octant> make_tree(CurveKind kind, std::size_t points, std::uint64_t seed,
                              int max_level = 8) {
  const Curve curve(kind, 3);
  GenerateOptions options;
  options.seed = seed;
  options.max_level = max_level;
  options.max_points_per_leaf = 2;
  return random_octree(points, curve, options);
}

TEST(LeafContaining, FindsTheCoveringLeafForRandomPoints) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = make_tree(CurveKind::kHilbert, 3000, 5);
  util::Rng rng = util::make_rng(17);
  std::uniform_int_distribution<std::uint32_t> coord(0, (1U << kMaxDepth) - 1);
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t x = coord(rng);
    const std::uint32_t y = coord(rng);
    const std::uint32_t z = coord(rng);
    const std::size_t idx = leaf_containing(tree, curve, x, y, z);
    EXPECT_TRUE(tree[idx].contains_point(x, y, z));
  }
}

TEST(LeafContaining, EveryLeafFindsItself) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = make_tree(CurveKind::kMorton, 2000, 6);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(leaf_containing(tree, curve, tree[i].x, tree[i].y, tree[i].z), i);
  }
}

// Brute-force face adjacency: two octants share a face if they abut along
// one axis and their projections overlap on the other two.
bool faces_touch(const Octant& a, const Octant& b) {
  const std::uint64_t ax0 = a.x;
  const std::uint64_t ax1 = a.x + a.size();
  const std::uint64_t ay0 = a.y;
  const std::uint64_t ay1 = a.y + a.size();
  const std::uint64_t az0 = a.z;
  const std::uint64_t az1 = a.z + a.size();
  const std::uint64_t bx0 = b.x;
  const std::uint64_t bx1 = b.x + b.size();
  const std::uint64_t by0 = b.y;
  const std::uint64_t by1 = b.y + b.size();
  const std::uint64_t bz0 = b.z;
  const std::uint64_t bz1 = b.z + b.size();
  auto overlap = [](std::uint64_t lo0, std::uint64_t hi0, std::uint64_t lo1,
                    std::uint64_t hi1) {
    return std::min(hi0, hi1) > std::max(lo0, lo1);
  };
  const bool xab = (ax1 == bx0 || bx1 == ax0) && overlap(ay0, ay1, by0, by1) &&
                   overlap(az0, az1, bz0, bz1);
  const bool yab = (ay1 == by0 || by1 == ay0) && overlap(ax0, ax1, bx0, bx1) &&
                   overlap(az0, az1, bz0, bz1);
  const bool zab = (az1 == bz0 || bz1 == az0) && overlap(ax0, ax1, bx0, bx1) &&
                   overlap(ay0, ay1, by0, by1);
  return xab || yab || zab;
}

class NeighborTest : public ::testing::TestWithParam<CurveKind> {};

TEST_P(NeighborTest, MatchesBruteForceOnSmallTree) {
  const Curve curve(GetParam(), 3);
  GenerateOptions options;
  options.seed = 31;
  options.max_level = 5;
  options.max_points_per_leaf = 1;
  const auto tree = random_octree(300, curve, options);

  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto found = all_face_neighbors(tree, curve, i);
    std::vector<std::size_t> expected;
    for (std::size_t j = 0; j < tree.size(); ++j) {
      if (j != i && faces_touch(tree[i], tree[j])) expected.push_back(j);
    }
    EXPECT_EQ(found, expected) << "leaf " << i << " " << tree[i].to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(BothCurves, NeighborTest,
                         ::testing::Values(CurveKind::kMorton, CurveKind::kHilbert),
                         [](const auto& info) { return sfc::to_string(info.param); });

TEST(Neighbors, UniformTreeHasSixInteriorNeighbors) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = uniform_octree(3, curve);
  int interior = 0;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto found = all_face_neighbors(tree, curve, i);
    const Octant& o = tree[i];
    int domain_faces = 0;
    for (int face = 0; face < 6; ++face) {
      Octant nb;
      if (!o.face_neighbor(face, nb)) ++domain_faces;
    }
    EXPECT_EQ(found.size(), static_cast<std::size_t>(6 - domain_faces));
    if (domain_faces == 0) ++interior;
  }
  EXPECT_EQ(interior, 6 * 6 * 6);  // 8^3 grid has 6^3 interior cells
}

TEST(Neighbors, SymmetricAdjacency) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = make_tree(CurveKind::kHilbert, 1000, 8, 6);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    for (const std::size_t j : all_face_neighbors(tree, curve, i)) {
      const auto back = all_face_neighbors(tree, curve, j);
      EXPECT_TRUE(std::find(back.begin(), back.end(), i) != back.end())
          << i << " -> " << j << " not symmetric";
    }
  }
}

TEST(Neighbors, SharedFaceAreaUsesFinerLevel) {
  const Octant coarse = octant_from_point(0, 0, 0, 3);
  const Octant fine = octant_from_point(coarse.size(), 0, 0, 5);
  EXPECT_DOUBLE_EQ(shared_face_area(coarse, fine, 3), fine.face_area(3));
  EXPECT_DOUBLE_EQ(shared_face_area(fine, coarse, 3), fine.face_area(3));
}

}  // namespace
}  // namespace amr::octree
