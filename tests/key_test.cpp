// Property tests for the 128-bit curve-key codec (sfc/key.hpp): the key
// order must be *isomorphic* to Curve::less for every curve kind in 2D and
// 3D -- this is the invariant the whole key-cached sorting/partitioning
// path (treesort, dist_treesort, dist_samplesort, BucketSearch) rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "octree/generate.hpp"
#include "octree/octant.hpp"
#include "octree/treesort.hpp"
#include "sfc/curve.hpp"
#include "sfc/key.hpp"
#include "util/rng.hpp"

namespace amr::sfc {
namespace {

using octree::kMaxDepth;
using octree::Octant;

struct KeyCase {
  CurveKind kind;
  int dim;
  octree::PointDistribution distribution;
};

std::string case_name(const ::testing::TestParamInfo<KeyCase>& info) {
  return to_string(info.param.kind) + "_" + std::to_string(info.param.dim) + "d_" +
         octree::to_string(info.param.distribution);
}

/// Random octants of mixed levels following the case's point distribution.
std::vector<Octant> random_octants(const KeyCase& c, std::size_t n,
                                   std::uint64_t seed) {
  octree::GenerateOptions options;
  options.distribution = c.distribution;
  options.seed = seed;
  options.dim = c.dim;
  const auto points = octree::generate_points(n, options);
  util::Rng rng = util::make_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::uniform_int_distribution<int> lvl(0, kMaxDepth);
  std::vector<Octant> out;
  out.reserve(n);
  for (const auto& pt : points) {
    out.push_back(octree::octant_from_point(pt[0], pt[1], c.dim == 3 ? pt[2] : 0,
                                            lvl(rng)));
  }
  return out;
}

class KeyCodecTest : public ::testing::TestWithParam<KeyCase> {};

int sign(int v) { return (v > 0) - (v < 0); }
int sign_key(CurveKey a, CurveKey b) { return (a > b) - (a < b); }

TEST_P(KeyCodecTest, KeyOrderIsCurveOrder) {
  const KeyCase c = GetParam();
  const Curve curve(c.kind, c.dim);
  const auto octants = random_octants(c, 600, 1234);
  const auto keys = keys_of(curve, octants);

  for (std::size_t i = 0; i < octants.size(); ++i) {
    for (std::size_t j = i; j < octants.size(); ++j) {
      ASSERT_EQ(sign(curve.compare(octants[i], octants[j])),
                sign_key(keys[i], keys[j]))
          << octants[i].to_string() << " vs " << octants[j].to_string();
    }
  }
}

TEST_P(KeyCodecTest, KeyRoundTripsAndEncodesLevel) {
  const KeyCase c = GetParam();
  const Curve curve(c.kind, c.dim);
  for (const Octant& o : random_octants(c, 500, 99)) {
    const CurveKey key = curve_key(curve, o);
    EXPECT_EQ(key_level(key), static_cast<int>(o.level));
    EXPECT_EQ(octant_of_key(curve, key), o);
    EXPECT_LT(key, key_supremum());
  }
}

TEST_P(KeyCodecTest, DescendantKeysBracketTheRegion) {
  const KeyCase c = GetParam();
  const Curve curve(c.kind, c.dim);
  util::Rng rng = util::make_rng(7);
  std::uniform_int_distribution<std::uint32_t> coord(0, (1U << kMaxDepth) - 1);
  std::uniform_int_distribution<int> lvl(0, 12);
  for (int i = 0; i < 200; ++i) {
    const Octant region = octree::octant_from_point(
        coord(rng), coord(rng), c.dim == 3 ? coord(rng) : 0, lvl(rng));
    EXPECT_EQ(key_min_descendant(curve, region),
              curve_key(curve, curve.first_descendant(region)));
    EXPECT_EQ(key_max_descendant(curve, region),
              curve_key(curve, curve.last_descendant(region)));
    // Every descendant's key lies in [key(region), key_max_descendant]:
    // coarse descendants may precede the finest-level first descendant
    // (ancestors sort first) but never the region itself, and nothing in
    // the region sorts after the maximal finest-level cell.
    Octant probe = region;
    while (static_cast<int>(probe.level) < 16) {
      probe = probe.child(static_cast<int>(probe.level) % curve.num_children(), c.dim);
      const CurveKey k = curve_key(curve, probe);
      EXPECT_GT(k, curve_key(curve, region));
      EXPECT_LE(k, key_max_descendant(curve, region));
      if (static_cast<int>(probe.level) == kMaxDepth) {
        EXPECT_GE(k, key_min_descendant(curve, region));
      }
    }
  }
}

TEST_P(KeyCodecTest, AncestorsSortFirst) {
  const KeyCase c = GetParam();
  const Curve curve(c.kind, c.dim);
  util::Rng rng = util::make_rng(13);
  std::uniform_int_distribution<std::uint32_t> coord(0, (1U << kMaxDepth) - 1);
  for (int i = 0; i < 200; ++i) {
    Octant o = octree::octant_from_point(coord(rng), coord(rng),
                                         c.dim == 3 ? coord(rng) : 0, 14);
    CurveKey child_key = curve_key(curve, o);
    while (o.level > 0) {
      o = o.parent();
      const CurveKey parent_key = curve_key(curve, o);
      EXPECT_LT(parent_key, child_key);
      child_key = parent_key;
    }
  }
}

TEST_P(KeyCodecTest, SortingByKeyEqualsComparatorSort) {
  const KeyCase c = GetParam();
  const Curve curve(c.kind, c.dim);
  auto octants = random_octants(c, 2000, 5150);
  auto reference = octants;

  std::stable_sort(reference.begin(), reference.end(), curve.comparator());
  std::stable_sort(octants.begin(), octants.end(),
                   [&](const Octant& a, const Octant& b) {
                     return curve_key(curve, a) < curve_key(curve, b);
                   });
  EXPECT_EQ(octants, reference);
}

INSTANTIATE_TEST_SUITE_P(
    AllCurves, KeyCodecTest,
    ::testing::Values(
        KeyCase{CurveKind::kMorton, 2, octree::PointDistribution::kUniform},
        KeyCase{CurveKind::kMorton, 3, octree::PointDistribution::kNormal},
        KeyCase{CurveKind::kHilbert, 2, octree::PointDistribution::kLogNormal},
        KeyCase{CurveKind::kHilbert, 3, octree::PointDistribution::kUniform},
        KeyCase{CurveKind::kMoore, 2, octree::PointDistribution::kNormal},
        KeyCase{CurveKind::kMoore, 3, octree::PointDistribution::kLogNormal}),
    case_name);

// ---------------------------------------------------------------------------
// Engine equivalence: keyed tree_sort (sequential and parallel) must be
// bit-identical to the table-walk reference for every curve/dim/distribution.
// ---------------------------------------------------------------------------

class EngineEquivalenceTest : public ::testing::TestWithParam<KeyCase> {};

TEST_P(EngineEquivalenceTest, KeyedMatchesTableWalkAndParallelMatchesSequential) {
  const KeyCase c = GetParam();
  const Curve curve(c.kind, c.dim);
  const auto base = random_octants(c, 20000, 4242);

  auto reference = base;
  octree::TreeSortOptions table_walk;
  table_walk.engine = octree::TreeSortEngine::kTableWalk;
  octree::tree_sort(reference, curve, table_walk);

  auto sequential = base;
  octree::TreeSortOptions seq;
  seq.num_threads = 1;
  octree::tree_sort(sequential, curve, seq);
  EXPECT_EQ(sequential, reference);

  auto parallel = base;
  octree::TreeSortOptions par;
  par.num_threads = 8;
  par.parallel_cutoff = 1;  // force the parallel path even at this size
  octree::tree_sort(parallel, curve, par);
  EXPECT_EQ(parallel, reference);

  auto keyed = base;
  const auto keys = octree::tree_sort_with_keys(keyed, curve);
  EXPECT_EQ(keyed, reference);
  ASSERT_EQ(keys.size(), keyed.size());
  for (std::size_t i = 0; i < keyed.size(); ++i) {
    ASSERT_EQ(keys[i], curve_key(curve, keyed[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCurves, EngineEquivalenceTest,
    ::testing::Values(
        KeyCase{CurveKind::kMorton, 2, octree::PointDistribution::kNormal},
        KeyCase{CurveKind::kMorton, 3, octree::PointDistribution::kUniform},
        KeyCase{CurveKind::kHilbert, 2, octree::PointDistribution::kUniform},
        KeyCase{CurveKind::kHilbert, 3, octree::PointDistribution::kLogNormal},
        KeyCase{CurveKind::kMoore, 2, octree::PointDistribution::kLogNormal},
        KeyCase{CurveKind::kMoore, 3, octree::PointDistribution::kNormal}),
    case_name);

// Mixed ancestor chains exercise the level-tiebreak path of the codec and
// the ancestor bucket of the keyed radix.
TEST(KeyedTreeSort, AncestorChainsWithDuplicates) {
  const Curve curve(CurveKind::kHilbert, 3);
  std::vector<Octant> octants;
  Octant o = octree::root_octant();
  for (int l = 1; l <= 12; ++l) {
    o = o.child(l % 8);
    octants.push_back(o);
    octants.push_back(o);  // duplicates
  }
  util::Rng rng = util::make_rng(3);
  std::uniform_int_distribution<std::uint32_t> coord(0, (1U << kMaxDepth) - 1);
  for (int i = 0; i < 3000; ++i) {
    octants.push_back(octree::octant_from_point(coord(rng), coord(rng), coord(rng), 9));
  }

  auto reference = octants;
  octree::TreeSortOptions table_walk;
  table_walk.engine = octree::TreeSortEngine::kTableWalk;
  octree::tree_sort(reference, curve, table_walk);

  octree::TreeSortOptions par;
  par.parallel_cutoff = 1;
  octree::tree_sort(octants, curve, par);
  EXPECT_EQ(octants, reference);
  EXPECT_TRUE(octree::is_sfc_sorted(octants, curve));
}

TEST(KeyedTreeSort, EndDepthLimitsRecursionIdentically) {
  const Curve curve(CurveKind::kMorton, 3);
  util::Rng rng = util::make_rng(11);
  std::uniform_int_distribution<std::uint32_t> coord(0, (1U << kMaxDepth) - 1);
  std::vector<Octant> base;
  for (int i = 0; i < 4000; ++i) {
    base.push_back(octree::octant_from_point(coord(rng), coord(rng), coord(rng), 10));
  }
  for (const std::size_t cutoff : {std::size_t{1}, std::size_t{16}}) {
    octree::TreeSortOptions a;
    a.end_depth = 4;
    a.small_cutoff = cutoff;
    a.engine = octree::TreeSortEngine::kTableWalk;
    octree::TreeSortOptions b = a;
    b.engine = octree::TreeSortEngine::kKeyed;
    b.num_threads = 1;
    auto table_walk = base;
    auto keyed = base;
    octree::tree_sort(table_walk, curve, a);
    octree::tree_sort(keyed, curve, b);
    EXPECT_EQ(keyed, table_walk) << "cutoff " << cutoff;
  }
}

}  // namespace
}  // namespace amr::sfc
