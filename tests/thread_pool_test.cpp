// util::ThreadPool: fork-join batches, caller participation, concurrent
// callers (the simmpi pattern: many rank threads sorting at once), and the
// pool-backed parallel TreeSort path. Built to run under -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "octree/generate.hpp"
#include "octree/treesort.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace amr::util {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(100);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { hits[i]++; });
  }
  pool.run(std::move(tasks));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SizeOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    tasks.push_back([&seen, i, caller] { seen[i] = std::this_thread::get_id(); });
  }
  pool.run(std::move(tasks));
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int t = 0; t < 7; ++t) {
      tasks.push_back([&total] { total++; });
    }
    pool.run(std::move(tasks));
  }
  EXPECT_EQ(total.load(), 50 * 7);
}

TEST(ThreadPool, ConcurrentCallersEachSeeTheirBatchComplete) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr int kTasksPerBatch = 40;
  std::vector<std::atomic<int>> per_caller(kCallers);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &per_caller, c] {
      for (int round = 0; round < 10; ++round) {
        std::vector<std::function<void()>> tasks;
        for (int t = 0; t < kTasksPerBatch; ++t) {
          tasks.push_back([&per_caller, c] { per_caller[c]++; });
        }
        pool.run(std::move(tasks));
      }
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& count : per_caller) EXPECT_EQ(count.load(), 10 * kTasksPerBatch);
}

TEST(ThreadPool, DefaultThreadsHonorsEnvironment) {
  // The global pool is sized from AMR_THREADS (AMR_SORT_THREADS kept as a
  // deprecated alias); this only checks the parser, not the global
  // singleton (which may already exist). setenv is safe here: the test
  // binary is single-threaded at this point.
  const char* saved_threads = std::getenv("AMR_THREADS");
  const std::string saved_threads_value = saved_threads ? saved_threads : "";
  const char* saved_sort = std::getenv("AMR_SORT_THREADS");
  const std::string saved_sort_value = saved_sort ? saved_sort : "";

  setenv("AMR_THREADS", "5", 1);
  unsetenv("AMR_SORT_THREADS");
  EXPECT_EQ(ThreadPool::default_num_threads(), 5);

  // Deprecated alias still honored when AMR_THREADS is absent...
  unsetenv("AMR_THREADS");
  setenv("AMR_SORT_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_num_threads(), 3);

  // ...and AMR_THREADS wins when both are set.
  setenv("AMR_THREADS", "2", 1);
  EXPECT_EQ(ThreadPool::default_num_threads(), 2);

  if (saved_threads) {
    setenv("AMR_THREADS", saved_threads_value.c_str(), 1);
  } else {
    unsetenv("AMR_THREADS");
  }
  if (saved_sort) {
    setenv("AMR_SORT_THREADS", saved_sort_value.c_str(), 1);
  } else {
    unsetenv("AMR_SORT_THREADS");
  }
  EXPECT_GE(ThreadPool::default_num_threads(), 1);
}

TEST(ThreadPool, RunRangesCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.run_ranges(hits.size(), 256, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Degenerate shapes: empty range, single chunk, chunk 0 (clamped to 1).
  bool ran = false;
  pool.run_ranges(0, 16, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  std::atomic<int> count{0};
  pool.run_ranges(7, 0, [&](std::size_t begin, std::size_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 7);
}

// The end-to-end consumer: parallel TreeSort on the shared pool from
// several threads at once must produce the exact sequential result.
TEST(ThreadPool, ParallelTreeSortFromManyThreads) {
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  util::Rng rng = util::make_rng(77);
  std::uniform_int_distribution<std::uint32_t> coord(0, (1U << octree::kMaxDepth) - 1);
  std::vector<octree::Octant> base;
  for (int i = 0; i < 50000; ++i) {
    base.push_back(octree::octant_from_point(coord(rng), coord(rng), coord(rng), 12));
  }
  auto expected = base;
  octree::TreeSortOptions seq;
  seq.num_threads = 1;
  octree::tree_sort(expected, curve, seq);

  std::vector<std::thread> sorters;
  std::vector<std::vector<octree::Octant>> results(4, base);
  for (auto& result : results) {
    sorters.emplace_back([&result, &curve] {
      octree::TreeSortOptions par;
      par.parallel_cutoff = 1;
      octree::tree_sort(result, curve, par);
    });
  }
  for (auto& t : sorters) t.join();
  for (const auto& result : results) EXPECT_EQ(result, expected);
}

}  // namespace
}  // namespace amr::util
