// Weighted partitioning tests: weight-balanced cuts, tolerance semantics
// in weight space, degenerate weights, weighted OptiPart, and the [35]
// coarse-grid heuristic baseline.
#include <gtest/gtest.h>

#include <numeric>

#include "octree/adapt.hpp"
#include "octree/generate.hpp"
#include "partition/heuristic.hpp"
#include "partition/weighted.hpp"
#include "util/rng.hpp"

namespace amr::partition {
namespace {

using octree::Octant;
using sfc::Curve;
using sfc::CurveKind;

std::vector<Octant> make_tree(CurveKind kind, std::size_t points, std::uint64_t seed) {
  const Curve curve(kind, 3);
  octree::GenerateOptions options;
  options.seed = seed;
  options.max_level = 9;
  options.distribution = octree::PointDistribution::kNormal;
  return octree::random_octree(points, curve, options);
}

std::vector<double> random_weights(std::size_t n, std::uint64_t seed) {
  util::Rng rng = util::make_rng(seed);
  std::uniform_real_distribution<double> dist(0.5, 4.0);
  std::vector<double> weights(n);
  for (double& w : weights) w = dist(rng);
  return weights;
}

TEST(WeightedPartition, UnitWeightsMatchUnweighted) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = make_tree(CurveKind::kHilbert, 10000, 3);
  const std::vector<double> ones(tree.size(), 1.0);
  for (const double tol : {0.0, 0.2}) {
    WeightedPartitionOptions w_opt;
    w_opt.tolerance = tol;
    TreeSortPartitionOptions u_opt;
    u_opt.tolerance = tol;
    const Partition weighted = weighted_treesort_partition(tree, curve, ones, 16, w_opt);
    const Partition unweighted = treesort_partition(tree, curve, 16, u_opt);
    // Targets r*W/p vs floor(r*N/p) differ by sub-element rounding, so the
    // cuts may sit one element apart.
    ASSERT_EQ(weighted.offsets.size(), unweighted.offsets.size());
    for (std::size_t r = 0; r < weighted.offsets.size(); ++r) {
      const auto a = static_cast<std::int64_t>(weighted.offsets[r]);
      const auto b = static_cast<std::int64_t>(unweighted.offsets[r]);
      EXPECT_LE(std::abs(a - b), 1) << "rank " << r << " tol " << tol;
    }
  }
}

class WeightedToleranceTest
    : public ::testing::TestWithParam<std::tuple<CurveKind, double>> {};

TEST_P(WeightedToleranceTest, SharesWithinToleranceOfIdeal) {
  const auto [kind, tolerance] = GetParam();
  const Curve curve(kind, 3);
  const auto tree = make_tree(kind, 12000, 9);
  const auto weights = random_weights(tree.size(), 17);
  const int p = 12;

  WeightedPartitionOptions options;
  options.tolerance = tolerance;
  const Partition part = weighted_treesort_partition(tree, curve, weights, p, options);
  const WeightedBucketSearch search(tree, curve, weights);
  const auto shares = partition_weights(search, part);

  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  const double grain = total / p;
  const double max_weight = 4.0;  // element indivisibility in weight units
  for (int r = 1; r < p; ++r) {
    // Each *cut* is within tolerance (or one element) of its target.
    const double cut_weight = search.weight_before(part.offsets[static_cast<std::size_t>(r)]);
    const double target = grain * r;
    EXPECT_LE(std::abs(cut_weight - target),
              std::max(max_weight, tolerance * grain) + 1e-9)
        << "rank " << r;
  }
  EXPECT_NEAR(std::accumulate(shares.begin(), shares.end(), 0.0), total, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeightedToleranceTest,
    ::testing::Combine(::testing::Values(CurveKind::kMorton, CurveKind::kHilbert),
                       ::testing::Values(0.0, 0.1, 0.4)),
    [](const auto& info) {
      return sfc::to_string(std::get<0>(info.param)) + "_tol" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(WeightedPartition, HeavyElementsGetSmallerCounts) {
  // First half of the curve carries 10x weights: the element *count* of the
  // ranks owning it must be ~10x smaller while weight shares balance.
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = make_tree(CurveKind::kMorton, 20000, 21);
  std::vector<double> weights(tree.size(), 1.0);
  for (std::size_t i = 0; i < tree.size() / 2; ++i) weights[i] = 10.0;

  const Partition part = weighted_treesort_partition(tree, curve, weights, 2, {});
  const WeightedBucketSearch search(tree, curve, weights);
  EXPECT_LT(weighted_load_imbalance(search, part), 1.01);
  // Rank 0's cut falls inside the heavy half (it owns only heavy
  // elements), so it holds far fewer elements than rank 1.
  EXPECT_LT(part.offsets[1], tree.size() / 2);
  EXPECT_LT(part.size_of(0) * 2, part.size_of(1));
}

TEST(WeightedPartition, ZeroWeightElementsDoNotBreakCuts) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = make_tree(CurveKind::kHilbert, 5000, 25);
  std::vector<double> weights(tree.size(), 0.0);
  for (std::size_t i = 0; i < tree.size(); i += 7) weights[i] = 1.0;
  const Partition part = weighted_treesort_partition(tree, curve, weights, 8, {});
  EXPECT_EQ(part.total(), tree.size());
  const WeightedBucketSearch search(tree, curve, weights);
  EXPECT_LT(weighted_load_imbalance(search, part), 1.2);
}

TEST(WeightedPartition, RejectsBadWeights) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = make_tree(CurveKind::kMorton, 100, 1);
  std::vector<double> short_weights(tree.size() - 1, 1.0);
  EXPECT_THROW(WeightedBucketSearch(tree, curve, short_weights), std::invalid_argument);
  std::vector<double> negative(tree.size(), 1.0);
  negative[5] = -1.0;
  EXPECT_THROW(WeightedBucketSearch(tree, curve, negative), std::invalid_argument);
}

TEST(WeightedOptiPart, NeverWorseThanWeightedIdealUnderModel) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = make_tree(CurveKind::kHilbert, 10000, 31);
  const auto weights = random_weights(tree.size(), 33);
  const int p = 8;
  const machine::PerfModel model(machine::wisconsin8(), machine::ApplicationProfile{});

  const Partition opti =
      weighted_optipart_partition(tree, curve, weights, p, model);
  const Partition ideal = weighted_treesort_partition(tree, curve, weights, p, {});

  const WeightedBucketSearch search(tree, curve, weights);
  const auto evaluate = [&](const Partition& part) {
    Metrics m = compute_metrics(tree, curve, part);
    m.work = partition_weights(search, part);
    m.w_max = 0.0;
    for (const double w : m.work) m.w_max = std::max(m.w_max, w);
    return m.predicted_time(model);
  };
  EXPECT_LE(evaluate(opti), evaluate(ideal) * (1.0 + 1e-9));
}

TEST(HeuristicPartition, BalancesWithinCoarseGranularity) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = make_tree(CurveKind::kHilbert, 15000, 41);
  const int p = 8;
  HeuristicOptions options;
  options.coarsen_levels = 2;
  const Partition part = heuristic_coarse_partition(tree, curve, p, options);
  EXPECT_EQ(part.total(), tree.size());
  EXPECT_EQ(part.num_ranks(), p);
  // Whole coarse cells per rank: imbalance bounded but not ideal.
  EXPECT_LT(part.load_imbalance(), 3.0);
}

TEST(HeuristicPartition, CutsLieOnCoarseCellBoundaries) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = make_tree(CurveKind::kMorton, 8000, 43);
  HeuristicOptions options;
  options.coarsen_levels = 3;
  const Partition part = heuristic_coarse_partition(tree, curve, 6, options);

  const auto coarse = octree::coarsen_octree(tree, curve, options.coarsen_levels);
  const auto ranges = octree::coarse_to_fine_ranges(tree, coarse, curve);
  std::vector<std::size_t> starts;
  for (const auto& range : ranges) starts.push_back(range.first);
  for (int r = 1; r < part.num_ranks(); ++r) {
    const std::size_t cut = part.offsets[static_cast<std::size_t>(r)];
    EXPECT_TRUE(cut == tree.size() ||
                std::find(starts.begin(), starts.end(), cut) != starts.end())
        << "cut " << cut << " not on a coarse-cell boundary";
  }
}

TEST(HeuristicPartition, ProducesSimplerBoundariesThanIdealSplit) {
  // The [35] intuition: coarse-grid cuts give no *larger* total boundary
  // than the fine ideal split (that is the reason the heuristic existed).
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = make_tree(CurveKind::kHilbert, 20000, 47);
  const int p = 8;
  const auto heuristic = heuristic_coarse_partition(tree, curve, p, {2, 0.0});
  const auto ideal = ideal_partition(tree.size(), p);
  const auto m_h = compute_metrics(tree, curve, heuristic);
  const auto m_i = compute_metrics(tree, curve, ideal);
  EXPECT_LE(m_h.total_boundary, m_i.total_boundary * 1.05);
}

}  // namespace
}  // namespace amr::partition
