// VTK export tests: structural validity of the emitted legacy file,
// vertex deduplication, field handling, and error paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/vtk.hpp"
#include "octree/generate.hpp"

namespace amr::io {
namespace {

using sfc::Curve;
using sfc::CurveKind;

TEST(Vtk, UniformGridStructure) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = octree::uniform_octree(1, curve);  // 2x2x2 = 8 voxels
  const std::string vtk = vtk_to_string(tree, {});
  // 8 cells share a 3x3x3 = 27 vertex lattice.
  EXPECT_NE(vtk.find("POINTS 27 double"), std::string::npos);
  EXPECT_NE(vtk.find("CELLS 8 72"), std::string::npos);
  EXPECT_NE(vtk.find("CELL_TYPES 8"), std::string::npos);
  EXPECT_EQ(vtk.find("CELL_DATA"), std::string::npos);  // no fields
}

TEST(Vtk, FieldsEmitted) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = octree::uniform_octree(1, curve);
  std::vector<CellField> fields(2);
  fields[0].name = "level";
  fields[1].name = "rank";
  for (std::size_t i = 0; i < tree.size(); ++i) {
    fields[0].values.push_back(tree[i].level);
    fields[1].values.push_back(static_cast<double>(i % 2));
  }
  const std::string vtk = vtk_to_string(tree, fields);
  EXPECT_NE(vtk.find("CELL_DATA 8"), std::string::npos);
  EXPECT_NE(vtk.find("SCALARS level double 1"), std::string::npos);
  EXPECT_NE(vtk.find("SCALARS rank double 1"), std::string::npos);
}

TEST(Vtk, MismatchedFieldRejected) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = octree::uniform_octree(1, curve);
  std::vector<CellField> fields(1);
  fields[0].name = "bad";
  fields[0].values = {1.0};  // 1 value for 8 cells
  EXPECT_TRUE(vtk_to_string(tree, fields).empty());
}

TEST(Vtk, AdaptiveTreeVertexCountsAreConsistent) {
  const Curve curve(CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = 3;
  options.max_level = 5;
  const auto tree = octree::random_octree(500, curve, options);
  const std::string vtk = vtk_to_string(tree, {});

  std::istringstream in(vtk);
  std::string line;
  std::size_t points = 0;
  std::size_t cells = 0;
  while (std::getline(in, line)) {
    if (line.rfind("POINTS ", 0) == 0) points = std::stoul(line.substr(7));
    if (line.rfind("CELLS ", 0) == 0) cells = std::stoul(line.substr(6));
  }
  EXPECT_EQ(cells, tree.size());
  EXPECT_GT(points, tree.size());           // more vertices than cells
  EXPECT_LE(points, tree.size() * 8);       // dedup keeps it below 8 per cell
}

TEST(Vtk, WritesFile) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = octree::uniform_octree(1, curve);
  const std::string path = "/tmp/amrpart_vtk_test.vtk";
  ASSERT_TRUE(write_vtk(path, tree, {}));
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string first;
  std::getline(file, first);
  EXPECT_EQ(first, "# vtk DataFile Version 3.0");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace amr::io
