// Octant geometry unit tests: parent/child algebra, containment, face
// neighbors, and point quantization.
#include <gtest/gtest.h>

#include "octree/octant.hpp"
#include "util/rng.hpp"

namespace amr::octree {
namespace {

TEST(Octant, RootProperties) {
  const Octant root = root_octant();
  EXPECT_EQ(root.level, 0);
  EXPECT_EQ(root.size(), 1U << kMaxDepth);
  EXPECT_TRUE(root.contains_point(0, 0, 0));
  EXPECT_TRUE(root.contains_point((1U << kMaxDepth) - 1, 5, 9));
}

TEST(Octant, ChildParentRoundTrip) {
  util::Rng rng = util::make_rng(3);
  std::uniform_int_distribution<int> lvl(0, kMaxDepth - 1);
  std::uniform_int_distribution<std::uint32_t> coord(0, (1U << kMaxDepth) - 1);
  for (int i = 0; i < 1000; ++i) {
    const Octant o = octant_from_point(coord(rng), coord(rng), coord(rng), lvl(rng));
    for (int c = 0; c < 8; ++c) {
      const Octant child = o.child(c);
      EXPECT_EQ(child.parent(), o);
      EXPECT_TRUE(o.is_ancestor_of(child));
      EXPECT_FALSE(child.is_ancestor_of(o));
      EXPECT_EQ(child.child_number(child.level), c);
    }
  }
}

TEST(Octant, ChildrenTileParentExactly) {
  const Octant o = octant_from_point(12345 << 8, 4567 << 8, 321 << 8, 10);
  std::uint64_t child_volume = 0;
  for (int c = 0; c < 8; ++c) {
    const Octant child = o.child(c);
    child_volume += static_cast<std::uint64_t>(child.size()) * child.size();
    EXPECT_TRUE(o.contains_point(child.x, child.y, child.z));
  }
  // 8 children, each (s/2)^3: volumes checked indirectly via size.
  for (int c = 0; c < 8; ++c) EXPECT_EQ(o.child(c).size(), o.size() / 2);
}

TEST(Octant, AncestorAtTruncates) {
  const Octant leaf = octant_from_point(0x2ABCDEF0, 0x1234560, 0x0FEDCBA0, kMaxDepth);
  for (int l = 0; l <= kMaxDepth; ++l) {
    const Octant anc = leaf.ancestor_at(l);
    EXPECT_EQ(anc.level, l);
    EXPECT_TRUE(anc.contains_point(leaf.x, leaf.y, leaf.z));
    if (l < kMaxDepth) {
      EXPECT_TRUE(anc.is_ancestor_of(leaf));
    }
  }
}

TEST(Octant, FaceNeighborsInsideDomain) {
  // Interior octant with coordinates aligned to its own (level 8) grid.
  const Octant o = octant_from_point(1U << 23, 1U << 24, 1U << 25, 8);
  for (int face = 0; face < 6; ++face) {
    Octant nb;
    ASSERT_TRUE(o.face_neighbor(face, nb)) << "face " << face;
    EXPECT_EQ(nb.level, o.level);
    const int axis = face / 2;
    const std::uint32_t o_coord = axis == 0 ? o.x : axis == 1 ? o.y : o.z;
    const std::uint32_t nb_coord = axis == 0 ? nb.x : axis == 1 ? nb.y : nb.z;
    const std::int64_t delta =
        static_cast<std::int64_t>(nb_coord) - static_cast<std::int64_t>(o_coord);
    EXPECT_EQ(std::abs(delta), static_cast<std::int64_t>(o.size()));
  }
}

TEST(Octant, FaceNeighborRespectsDomainBoundary) {
  // Corner octant: three faces leave the domain.
  const Octant corner = octant_from_point(0, 0, 0, 5);
  Octant nb;
  EXPECT_FALSE(corner.face_neighbor(0, nb));  // -x
  EXPECT_FALSE(corner.face_neighbor(2, nb));  // -y
  EXPECT_FALSE(corner.face_neighbor(4, nb));  // -z
  EXPECT_TRUE(corner.face_neighbor(1, nb));
  EXPECT_TRUE(corner.face_neighbor(3, nb));
  EXPECT_TRUE(corner.face_neighbor(5, nb));

  const std::uint32_t last = (1U << kMaxDepth) - (1U << (kMaxDepth - 5));
  const Octant far = octant_from_point(last, last, last, 5);
  EXPECT_FALSE(far.face_neighbor(1, nb));
  EXPECT_FALSE(far.face_neighbor(3, nb));
  EXPECT_FALSE(far.face_neighbor(5, nb));
  EXPECT_TRUE(far.face_neighbor(0, nb));
}

TEST(Octant, OverlapsIsReflexiveAndAncestral) {
  const Octant a = octant_from_point(7U << 24, 9U << 24, 3U << 24, 6);
  EXPECT_TRUE(overlaps(a, a));
  EXPECT_TRUE(overlaps(a, a.child(3)));
  EXPECT_TRUE(overlaps(a.child(3), a));
  Octant sibling;
  ASSERT_TRUE(a.face_neighbor(1, sibling));
  EXPECT_FALSE(overlaps(a, sibling));
}

TEST(Octant, ChildNumber2dIgnoresZ) {
  Octant o = root_octant().child(3, 2);  // x=1, y=1 in 2D
  EXPECT_EQ(o.z, 0U);
  EXPECT_EQ(o.child_number(1, 2), 3);
  EXPECT_EQ(o.child_number(1, 3), 3);  // z bit is zero anyway
}

TEST(Octant, FaceAreaScalesWithLevel) {
  const Octant coarse = octant_from_point(0, 0, 0, 4);
  const Octant fine = octant_from_point(0, 0, 0, 5);
  EXPECT_DOUBLE_EQ(coarse.face_area(3), 4.0 * fine.face_area(3));
  EXPECT_DOUBLE_EQ(coarse.face_area(2), 2.0 * fine.face_area(2));
}

TEST(Octant, AnchorUnitInUnitCube) {
  const Octant o = octant_from_point((1U << kMaxDepth) - 1, 0, 1U << 29, kMaxDepth);
  const auto a = o.anchor_unit();
  EXPECT_GE(a[0], 0.0);
  EXPECT_LT(a[0], 1.0);
  EXPECT_DOUBLE_EQ(a[1], 0.0);
  EXPECT_DOUBLE_EQ(a[2], 0.5);
}

TEST(Octant, ToStringIsHumanReadable) {
  const Octant o = octant_from_point(0, 0, 0, 2);
  EXPECT_EQ(o.to_string(), "(0,0,0)@2");
}

}  // namespace
}  // namespace amr::octree
