// Machine-model and performance-model (Eq. 1-3) tests.
#include <gtest/gtest.h>

#include "machine/machine_model.hpp"
#include "machine/perf_model.hpp"

namespace amr::machine {
namespace {

TEST(MachineModel, PresetsAreWellFormed) {
  for (const MachineModel& m : all_machines()) {
    EXPECT_FALSE(m.name.empty());
    EXPECT_GT(m.tc, 0.0);
    EXPECT_GT(m.ts, 0.0);
    EXPECT_GT(m.tw, 0.0);
    EXPECT_GT(m.cores_per_node, 0);
    EXPECT_GT(m.total_nodes, 0);
    EXPECT_GT(m.idle_watts, 0.0);
    // On every preset a byte over the network is slower than a byte from
    // memory -- the premise of communication-minimizing partitioning.
    EXPECT_GT(m.tw, m.tc) << m.name;
  }
}

TEST(MachineModel, LookupByName) {
  EXPECT_EQ(machine_by_name("titan").name, "titan");
  EXPECT_EQ(machine_by_name("stampede").name, "stampede");
  EXPECT_EQ(machine_by_name("wisconsin8").name, "wisconsin8");
  EXPECT_EQ(machine_by_name("clemson32").name, "clemson32");
  EXPECT_THROW(machine_by_name("summit"), std::invalid_argument);
}

TEST(MachineModel, PresetRegistryIsTheSingleSourceOfTruth) {
  const auto& registry = preset_registry();
  ASSERT_GE(registry.size(), 5u);
  // Every lookup surface agrees with the registry, entry by entry.
  const auto machines = all_machines();
  ASSERT_EQ(machines.size(), registry.size());
  for (std::size_t i = 0; i < registry.size(); ++i) {
    EXPECT_FALSE(std::string(registry[i].summary).empty()) << registry[i].name;
    EXPECT_EQ(machines[i].name, registry[i].name);
    const MachineModel by_name = machine_by_name(registry[i].name);
    const MachineModel by_factory = registry[i].make();
    EXPECT_EQ(by_name.name, by_factory.name);
    EXPECT_EQ(by_name.tc, by_factory.tc);
    EXPECT_EQ(by_name.ts, by_factory.ts);
    EXPECT_EQ(by_name.tw, by_factory.tw);
    // Names are unique (cache keys and CLI lookups rely on it).
    for (std::size_t j = i + 1; j < registry.size(); ++j) {
      EXPECT_STRNE(registry[i].name, registry[j].name);
    }
  }
  // The paper subset is exactly the four evaluation machines, in order.
  const auto paper = paper_machines();
  ASSERT_EQ(paper.size(), 4u);
  EXPECT_EQ(paper[0].name, "titan");
  EXPECT_EQ(paper[1].name, "stampede");
  EXPECT_EQ(paper[2].name, "wisconsin8");
  EXPECT_EQ(paper[3].name, "clemson32");
}

TEST(MachineModel, CloudLabEthernetIsMoreCommBoundThanTitan) {
  // The tw/tc ratio decides how much imbalance OptiPart will trade for
  // lower communication; CloudLab's 10 GbE must be more communication
  // bound than the HPC interconnects (which is where the paper measures
  // the largest savings).
  EXPECT_GT(wisconsin8().tw / wisconsin8().tc, titan().tw / titan().tc);
  EXPECT_GT(clemson32().tw / clemson32().tc, stampede().tw / stampede().tc);
}

TEST(MachineModel, RankPlacement) {
  const MachineModel m = wisconsin8();
  EXPECT_EQ(m.node_of_rank(0), 0);
  EXPECT_EQ(m.node_of_rank(m.cores_per_node - 1), 0);
  EXPECT_EQ(m.node_of_rank(m.cores_per_node), 1);
  EXPECT_EQ(m.total_cores(), static_cast<std::int64_t>(m.cores_per_node) * m.total_nodes);
}

TEST(PerfModel, Equation3Structure) {
  MachineModel m = titan();
  m.tc = 1.0e-9;
  m.tw = 1.0e-8;
  const PerfModel model(m, ApplicationProfile{8.0, 8.0});
  // alpha*tc*W*bytes + tw*C*bytes.
  EXPECT_DOUBLE_EQ(model.application_time(1000.0, 0.0), 8.0 * 1.0e-9 * 8.0 * 1000.0);
  EXPECT_DOUBLE_EQ(model.application_time(0.0, 500.0), 1.0e-8 * 8.0 * 500.0);
  EXPECT_DOUBLE_EQ(model.application_time(1000.0, 500.0),
                   model.compute_time(1000.0) + model.comm_time(500.0));
}

TEST(PerfModel, MoreWorkOrCommNeverFaster) {
  const PerfModel model(stampede(), ApplicationProfile{});
  EXPECT_LT(model.application_time(100.0, 10.0), model.application_time(200.0, 10.0));
  EXPECT_LT(model.application_time(100.0, 10.0), model.application_time(100.0, 20.0));
}

TEST(PerfModel, TreesortTimeDecreasesWithMoreRanks) {
  const PerfModel model(titan(), ApplicationProfile{});
  // Strong scaling: for fixed N the grain terms shrink with p.
  const double t64 = model.treesort_time(1.0e8, 64, 64);
  const double t1024 = model.treesort_time(1.0e8, 1024, 1024);
  EXPECT_GT(t64, t1024);
}

TEST(PerfModel, StagedSplittersCheaperThanFull) {
  const PerfModel model(titan(), ApplicationProfile{});
  // Eq. 2 vs Eq. 1: capping k below p reduces the splitter term.
  const double staged = model.treesort_time(1.0e9, 262144, 4096);
  const double full = model.treesort_time(1.0e9, 262144, 262144);
  EXPECT_LT(staged, full);
}

TEST(PerfModel, BreakdownSumsToTotal) {
  const PerfModel model(stampede(), ApplicationProfile{});
  const auto b = model.treesort_breakdown(1.0e7, 256, 256, 32.0, 10.0);
  EXPECT_GT(b.local_sort, 0.0);
  EXPECT_GT(b.splitter, 0.0);
  EXPECT_GT(b.all2all, 0.0);
  EXPECT_DOUBLE_EQ(b.total(), b.local_sort + b.splitter + b.all2all);
}

TEST(PerfModel, OverlappedStepHidesCommBehindInteriorWork) {
  MachineModel m = titan();
  m.tc = 1.0e-9;
  m.tw = 1.0e-8;
  const PerfModel model(m, ApplicationProfile{8.0, 8.0});

  // Compute-bound: the exchange fits entirely under the interior kernel.
  const auto hidden = model.application_time_overlapped(10000.0, 500.0, 100.0);
  EXPECT_DOUBLE_EQ(hidden.exposed_comm, 0.0);
  EXPECT_DOUBLE_EQ(hidden.hidden_comm, model.comm_time(100.0));
  EXPECT_DOUBLE_EQ(hidden.seconds,
                   model.compute_time(10000.0) + model.compute_time(500.0));

  // Comm-bound: only the part of the exchange past the interior kernel is
  // exposed; the split conserves the total exchange time.
  const auto exposed = model.application_time_overlapped(100.0, 50.0, 10000.0);
  EXPECT_GT(exposed.exposed_comm, 0.0);
  EXPECT_DOUBLE_EQ(exposed.exposed_comm + exposed.hidden_comm,
                   model.comm_time(10000.0));
  EXPECT_DOUBLE_EQ(exposed.seconds, model.compute_time(100.0) +
                                        exposed.exposed_comm +
                                        model.compute_time(50.0));

  // No interior work recovers Eq. 3 exactly.
  const auto degenerate = model.application_time_overlapped(0.0, 1000.0, 500.0);
  EXPECT_DOUBLE_EQ(degenerate.seconds, model.application_time(1000.0, 500.0));

  // Overlap never costs more than the blocking schedule.
  EXPECT_LE(exposed.seconds, model.application_time(150.0, 10000.0));
  EXPECT_LE(hidden.seconds, model.application_time(10500.0, 100.0));
}

TEST(PerfModel, AlphaFromRates) {
  // A kernel streaming at half the rate of pure copy touches ~2x the data.
  EXPECT_DOUBLE_EQ(measure_alpha_from_rates(1.0e9, 2.0e9), 2.0);
  EXPECT_DOUBLE_EQ(measure_alpha_from_rates(2.0e9, 1.0e9), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(measure_alpha_from_rates(0.0, 1.0e9), 1.0);    // guard
}

}  // namespace
}  // namespace amr::machine
