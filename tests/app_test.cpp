// Application-interface tests: the registry, the ported matvec app pinned
// bit-identical to the direct overlapped loop (per rank, per iteration
// count) and to the driver's default route, the multigrid V-cycle's
// determinism across thread widths, its residual contraction, and the
// application-aware divergence the interface exists to make measurable --
// two apps with different alphas lead OptiPart to different cuts on the
// same mesh and machine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "app/application.hpp"
#include "app/multigrid.hpp"
#include "driver/driver.hpp"
#include "machine/machine_model.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "partition/optipart.hpp"
#include "partition/partition.hpp"
#include "simmpi/dist_fem.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace amr::app {
namespace {

using partition::ideal_partition;
using sfc::Curve;
using sfc::CurveKind;

std::vector<octree::Octant> make_tree(CurveKind kind, std::size_t points,
                                      std::uint64_t seed, int max_level = 6,
                                      octree::PointDistribution dist =
                                          octree::PointDistribution::kNormal) {
  const Curve curve(kind, 3);
  octree::GenerateOptions options;
  options.seed = seed;
  options.max_level = max_level;
  options.max_points_per_leaf = 2;
  options.distribution = dist;
  return octree::balance_octree(octree::random_octree(points, curve, options), curve);
}

std::vector<double> initial_state(const mesh::LocalMesh& m) {
  std::vector<double> u(m.elements.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    const auto a = m.elements[i].anchor_unit();
    u[i] = std::sin(6.28 * a[0]) * std::cos(6.28 * a[1]);
  }
  return u;
}

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(AppRegistry, NamesRoundTripAndProfilesDiffer) {
  const auto apps = all_applications();
  ASSERT_EQ(apps.size(), 2U);
  for (const Application* app : apps) {
    EXPECT_EQ(application_by_name(app->name()), app);
  }
  EXPECT_EQ(application_by_name("matvec"), &matvec_app());
  EXPECT_EQ(application_by_name("multigrid"), &multigrid_app());
  EXPECT_EQ(application_by_name("no_such_app"), nullptr);
  EXPECT_STREQ(matvec_app().span_prefix(), "matvec");
  EXPECT_STREQ(multigrid_app().span_prefix(), "mg");
  // The nominal alphas Eq. 3 consumes must already separate the families.
  EXPECT_GT(multigrid_app().profile().alpha, matvec_app().profile().alpha);
}

TEST(AppIdentity, MatvecAppMatchesDirectOverlappedLoopBitwise) {
  // The port is a refactor, not a reimplementation: an epoch through the
  // Application interface must produce the same doubles as calling
  // dist_matvec_loop_overlapped directly, per rank and per iteration
  // count, memcmp-exact.
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = make_tree(CurveKind::kHilbert, 1500, 17);
  const int p = 5;
  const auto meshes =
      mesh::build_local_meshes(tree, curve, ideal_partition(tree.size(), p));
  const Application& app = matvec_app();

  for (const int iterations : {1, 3}) {
    std::vector<std::vector<double>> direct(static_cast<std::size_t>(p));
    std::vector<std::vector<double>> ported(static_cast<std::size_t>(p));
    simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      std::vector<double> u = initial_state(meshes[r]);
      (void)simmpi::dist_matvec_loop_overlapped(meshes[r], comm, iterations, u);
      direct[r] = std::move(u);
    });
    simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      std::vector<double> u = initial_state(meshes[r]);
      const EpochReport report = app.run_epoch(meshes[r], curve, comm, iterations, u);
      EXPECT_EQ(report.levels, 1);
      ported[r] = std::move(u);
    });
    for (std::size_t r = 0; r < static_cast<std::size_t>(p); ++r) {
      EXPECT_TRUE(bit_identical(direct[r], ported[r]))
          << "iterations " << iterations << " rank " << r;
    }
    // And both must equal the app's own sequential oracle.
    std::vector<std::vector<double>> init(static_cast<std::size_t>(p));
    for (std::size_t r = 0; r < init.size(); ++r) init[r] = initial_state(meshes[r]);
    const auto oracle = app.run_epoch_sequential(meshes, curve, iterations, init);
    for (std::size_t r = 0; r < static_cast<std::size_t>(p); ++r) {
      EXPECT_TRUE(bit_identical(oracle[r], ported[r]))
          << "oracle, iterations " << iterations << " rank " << r;
    }
  }
}

TEST(AppIdentity, DriverDefaultRouteEqualsExplicitMatvecApp) {
  // DriverOptions.application = nullptr must be the pre-refactor driver:
  // running the same campaign with the matvec app passed explicitly gives
  // the same adapted tree and the same splitters at every step.
  const driver::Scenario scenario =
      driver::make_scenario(driver::ScenarioKind::kMovingGaussian, 2);
  driver::DriverOptions options;
  options.ranks = 4;
  options.steps = 3;
  options.min_level = 2;
  options.max_level = 5;
  options.matvec_iterations = 2;
  const Curve curve(CurveKind::kHilbert, 2);
  const machine::PerfModel model(machine::wisconsin8(),
                                 machine::ApplicationProfile{});

  driver::Driver by_default(scenario, curve, model, options);
  options.application = &matvec_app();
  driver::Driver by_app(scenario, curve, model, options);
  for (int step = 0; step < options.steps; ++step) {
    (void)by_default.step();
    (void)by_app.step();
    ASSERT_EQ(by_default.tree(), by_app.tree()) << "step " << step;
    ASSERT_EQ(by_default.splitters().cuts, by_app.splitters().cuts)
        << "step " << step;
  }
}

TEST(MultigridApp, EpochIsBitIdenticalAcrossThreadWidths) {
  // The full distributed V-cycle epoch -- halo schedule, smoother sweeps,
  // per-rank coarse hierarchies, transfers -- must not depend on the
  // kernel thread width. parallel_cutoff = 0 forces even the small
  // per-level applies onto the threaded path.
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = make_tree(CurveKind::kMorton, 1800, 29);
  const int p = 4;
  const auto meshes =
      mesh::build_local_meshes(tree, curve, ideal_partition(tree.size(), p));

  std::vector<std::vector<std::vector<double>>> by_width;
  std::vector<int> rank_levels(static_cast<std::size_t>(p), 1);
  for (const int width : {1, 2, 7}) {
    util::ThreadPool pool(width);
    MultigridOptions options;
    options.par.pool = &pool;
    options.par.parallel_cutoff = 0;
    const MultigridApplication app(options);
    std::vector<std::vector<double>> result(static_cast<std::size_t>(p));
    simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      std::vector<double> u = initial_state(meshes[r]);
      const EpochReport report = app.run_epoch(meshes[r], curve, comm, 2, u);
      EXPECT_GE(report.levels, 1);
      rank_levels[r] = report.levels;
      result[r] = std::move(u);
    });
    by_width.push_back(std::move(result));
  }
  const int max_levels_seen =
      *std::max_element(rank_levels.begin(), rank_levels.end());
  // The mesh is big enough that slices actually coarsen -- otherwise this
  // test would pin single-level Jacobi, not multigrid.
  EXPECT_GT(max_levels_seen, 1);
  for (std::size_t w = 1; w < by_width.size(); ++w) {
    for (std::size_t r = 0; r < static_cast<std::size_t>(p); ++r) {
      EXPECT_TRUE(bit_identical(by_width[0][r], by_width[w][r]))
          << "width index " << w << " rank " << r;
    }
  }
}

TEST(MultigridApp, VcycleContractsResidual) {
  // Convergence property on fuzz-corpus-style balanced meshes: each
  // V-cycle must shrink ||b - A x||_2, and a few cycles must beat what
  // the smoother sweeps alone could plausibly do on the low frequencies.
  for (const std::uint64_t seed : {5U, 23U}) {
    const Curve curve(CurveKind::kHilbert, 3);
    const mesh::GlobalMesh mesh =
        mesh::build_global_mesh(make_tree(CurveKind::kHilbert, 1400, seed), curve);
    const MultigridOptions options;
    MultigridHierarchy hierarchy = MultigridHierarchy::build(
        fem::KernelPlan::build(mesh), mesh.elements, curve, options);
    ASSERT_GT(hierarchy.num_levels(), 1U);

    const std::size_t n = mesh.elements.size();
    util::Rng rng = util::make_rng(seed);
    std::normal_distribution<double> dist(0.0, 1.0);
    std::vector<double> b(n);
    for (double& v : b) v = dist(rng);
    std::vector<double> x(n, 0.0);
    std::vector<double> work(n);

    const auto residual_norm = [&] {
      hierarchy.fine_plan().apply(x, work);
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double r = b[i] - work[i];
        sum += r * r;
      }
      return std::sqrt(sum);
    };

    double previous = residual_norm();
    const double initial = previous;
    for (int cycle = 0; cycle < 4; ++cycle) {
      hierarchy.vcycle(x, b, options);
      const double current = residual_norm();
      EXPECT_LT(current, previous) << "seed " << seed << " cycle " << cycle;
      previous = current;
    }
    EXPECT_LT(previous, 0.5 * initial) << "seed " << seed;
  }
}

TEST(DifferentAlpha, MeasuredAlphasSeparateTheApplications) {
  // The measured-alpha probe (paper §3.3) against a shared synthetic
  // stream rate: a V-cycle costs several operator applications plus
  // transfers per fine element, so its alpha must come out well above the
  // matvec's on the same mesh. The stream rate is synthetic (both apps get
  // the same one), so only the two kernels' relative per-element cost is
  // being measured -- robust under sanitizers and load.
  const Curve curve(CurveKind::kHilbert, 3);
  const mesh::GlobalMesh mesh =
      mesh::build_global_mesh(make_tree(CurveKind::kHilbert, 2000, 41), curve);
  constexpr double kStream = 1e11;  // far above any real kernel rate: no clamp

  double ratio = 0.0;
  for (int attempt = 0; attempt < 3 && ratio < 1.3; ++attempt) {
    const double alpha_matvec = matvec_app().measure_alpha(mesh, curve, kStream, 6);
    const double alpha_mg = multigrid_app().measure_alpha(mesh, curve, kStream, 6);
    ASSERT_GT(alpha_matvec, 1.0);
    ratio = std::max(ratio, alpha_mg / alpha_matvec);
  }
  EXPECT_GE(ratio, 1.3);
}

TEST(DifferentAlpha, OptiPartChoosesDifferentCutsPerApplication) {
  // The application-aware claim, end to end and fully deterministic: the
  // same imbalance-prone mesh on the same machine, partitioned once with
  // each app's profile, must land on different cuts (the higher-alpha
  // multigrid is work-dominated, so OptiPart buys more balance with
  // communication the matvec profile refuses to pay for).
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = make_tree(CurveKind::kHilbert, 4000, 13, 8,
                              octree::PointDistribution::kLogNormal);
  const int p = 8;
  const machine::MachineModel machine = machine::wisconsin8();

  partition::OptiPartTrace trace_matvec;
  partition::OptiPartTrace trace_mg;
  const partition::Partition cuts_matvec = partition::optipart_partition(
      tree, curve, p, machine::PerfModel(machine, matvec_app().profile()), {},
      &trace_matvec);
  const partition::Partition cuts_mg = partition::optipart_partition(
      tree, curve, p, machine::PerfModel(machine, multigrid_app().profile()), {},
      &trace_mg);

  EXPECT_NE(cuts_matvec.offsets, cuts_mg.offsets);
  EXPECT_GT(trace_mg.chosen_depth, trace_matvec.chosen_depth);
}

}  // namespace
}  // namespace amr::app
