// Space-filling-curve tests: Skilling reference round-trips, generated
// Hilbert tables vs the reference, Morton identities, and SFC order
// properties over octants.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "octree/octant.hpp"
#include "sfc/curve.hpp"
#include "sfc/hilbert.hpp"
#include "sfc/skilling.hpp"
#include "util/rng.hpp"

namespace amr {
namespace {

using octree::Octant;
using sfc::Curve;
using sfc::CurveKind;

TEST(Skilling, RoundTrip2d) {
  for (int bits = 1; bits <= 8; ++bits) {
    const std::uint64_t cells = 1ULL << (2 * bits);
    for (std::uint64_t index = 0; index < cells; ++index) {
      const auto coords = sfc::hilbert_coords<2>(index, bits);
      EXPECT_EQ(sfc::hilbert_index<2>(coords, bits), index);
    }
    if (bits >= 6) break;  // keep runtime bounded; low bits cover structure
  }
}

TEST(Skilling, RoundTrip3d) {
  for (int bits = 1; bits <= 4; ++bits) {
    const std::uint64_t cells = 1ULL << (3 * bits);
    for (std::uint64_t index = 0; index < cells; ++index) {
      const auto coords = sfc::hilbert_coords<3>(index, bits);
      EXPECT_EQ(sfc::hilbert_index<3>(coords, bits), index);
    }
  }
}

TEST(Skilling, VisitsEveryCellOnce3d) {
  const int bits = 3;
  std::set<std::array<std::uint32_t, 3>> seen;
  for (std::uint64_t index = 0; index < (1ULL << (3 * bits)); ++index) {
    seen.insert(sfc::hilbert_coords<3>(index, bits));
  }
  EXPECT_EQ(seen.size(), 1ULL << (3 * bits));
}

TEST(Skilling, ConsecutiveCellsAreFaceAdjacent3d) {
  // The defining property of the Hilbert curve: consecutive cells differ
  // by exactly one grid step in exactly one axis.
  const int bits = 4;
  auto prev = sfc::hilbert_coords<3>(0, bits);
  for (std::uint64_t index = 1; index < (1ULL << (3 * bits)); ++index) {
    const auto cur = sfc::hilbert_coords<3>(index, bits);
    int moved = 0;
    for (int axis = 0; axis < 3; ++axis) {
      const int d = std::abs(static_cast<int>(cur[static_cast<std::size_t>(axis)]) -
                             static_cast<int>(prev[static_cast<std::size_t>(axis)]));
      moved += d;
      EXPECT_LE(d, 1);
    }
    EXPECT_EQ(moved, 1) << "jump at index " << index;
    prev = cur;
  }
}

TEST(Skilling, MortonIndexInterleavesBits) {
  EXPECT_EQ(sfc::morton_index<3>({0, 0, 0}, 1), 0U);
  EXPECT_EQ(sfc::morton_index<3>({1, 0, 0}, 1), 1U);
  EXPECT_EQ(sfc::morton_index<3>({0, 1, 0}, 1), 2U);
  EXPECT_EQ(sfc::morton_index<3>({0, 0, 1}, 1), 4U);
  EXPECT_EQ(sfc::morton_index<3>({1, 1, 1}, 1), 7U);
  // Two-bit coordinates: (3,0,0) -> x bits in positions 0 and 3.
  EXPECT_EQ(sfc::morton_index<3>({3, 0, 0}, 2), 0b001001U);
}

TEST(HilbertTables, StateCountsAreClosedAndSmall) {
  const auto& t2 = sfc::hilbert_tables(2);
  const auto& t3 = sfc::hilbert_tables(3);
  EXPECT_EQ(t2.num_children, 4);
  EXPECT_EQ(t3.num_children, 8);
  // The 2D Hilbert curve has 4 orientation states; 3D variants have 12 or
  // 24 depending on the base curve. Either way the BFS must close.
  EXPECT_EQ(t2.num_states, 4);
  EXPECT_GE(t3.num_states, 12);
  EXPECT_LE(t3.num_states, 24);
  for (int s = 0; s < t3.num_states; ++s) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_LT(t3.next_state[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)],
                t3.num_states);
    }
  }
}

TEST(HilbertTables, EveryStateOrderIsAPermutation) {
  for (const int dim : {2, 3}) {
    const auto& tables = sfc::hilbert_tables(dim);
    const int children = tables.num_children;
    for (int s = 0; s < tables.num_states; ++s) {
      std::set<int> seen;
      for (int j = 0; j < children; ++j) {
        seen.insert(tables.child_at[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)]);
      }
      EXPECT_EQ(static_cast<int>(seen.size()), children);
      for (int c = 0; c < children; ++c) {
        const int r =
            tables.rank_of[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)];
        EXPECT_EQ(tables.child_at[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)],
                  c);
      }
    }
  }
}

// Walking the generated tables must reproduce Skilling's ranks exactly.
TEST(HilbertTables, TableWalkMatchesSkilling3d) {
  const Curve curve(CurveKind::kHilbert, 3);
  const int level = 4;
  const std::uint32_t cells = 1U << level;
  for (std::uint32_t x = 0; x < cells; ++x) {
    for (std::uint32_t y = 0; y < cells; ++y) {
      for (std::uint32_t z = 0; z < cells; ++z) {
        Octant o;
        o.x = x << (octree::kMaxDepth - level);
        o.y = y << (octree::kMaxDepth - level);
        o.z = z << (octree::kMaxDepth - level);
        o.level = level;
        EXPECT_EQ(curve.rank_at_own_level(o), sfc::hilbert_index<3>({x, y, z}, level))
            << "cell " << x << "," << y << "," << z;
      }
    }
  }
}

TEST(HilbertTables, TableWalkMatchesSkilling2d) {
  const Curve curve(CurveKind::kHilbert, 2);
  const int level = 6;
  const std::uint32_t cells = 1U << level;
  for (std::uint32_t x = 0; x < cells; ++x) {
    for (std::uint32_t y = 0; y < cells; ++y) {
      Octant o;
      o.x = x << (octree::kMaxDepth - level);
      o.y = y << (octree::kMaxDepth - level);
      o.level = level;
      EXPECT_EQ(curve.rank_at_own_level(o), sfc::hilbert_index<2>({x, y}, level));
    }
  }
}

TEST(MortonCurve, RankMatchesBitInterleave) {
  const Curve curve(CurveKind::kMorton, 3);
  const int level = 4;
  util::Rng rng = util::make_rng(7);
  std::uniform_int_distribution<std::uint32_t> dist(0, (1U << level) - 1);
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t x = dist(rng);
    const std::uint32_t y = dist(rng);
    const std::uint32_t z = dist(rng);
    Octant o{x << (octree::kMaxDepth - level), y << (octree::kMaxDepth - level),
             z << (octree::kMaxDepth - level), static_cast<std::uint8_t>(level)};
    EXPECT_EQ(curve.rank_at_own_level(o), sfc::morton_index<3>({x, y, z}, level));
  }
}

class CurveOrderTest : public ::testing::TestWithParam<CurveKind> {};

TEST_P(CurveOrderTest, CompareIsStrictWeakOrderOnRandomOctants) {
  const Curve curve(GetParam(), 3);
  util::Rng rng = util::make_rng(11);
  std::uniform_int_distribution<std::uint32_t> coord(0, (1U << 10) - 1);
  std::uniform_int_distribution<int> lvl(1, 10);
  std::vector<Octant> octants;
  for (int i = 0; i < 300; ++i) {
    const int level = lvl(rng);
    octants.push_back(octree::octant_from_point(coord(rng) << (octree::kMaxDepth - 10),
                                                coord(rng) << (octree::kMaxDepth - 10),
                                                coord(rng) << (octree::kMaxDepth - 10),
                                                level));
  }
  for (const Octant& a : octants) {
    EXPECT_EQ(curve.compare(a, a), 0);
    for (const Octant& b : octants) {
      EXPECT_EQ(curve.compare(a, b), -curve.compare(b, a));
    }
  }
  // Transitivity via sort + pairwise verification.
  std::sort(octants.begin(), octants.end(), curve.comparator());
  for (std::size_t i = 1; i < octants.size(); ++i) {
    EXPECT_LE(curve.compare(octants[i - 1], octants[i]), 0);
  }
}

TEST_P(CurveOrderTest, AncestorsPrecedeDescendants) {
  const Curve curve(GetParam(), 3);
  util::Rng rng = util::make_rng(13);
  std::uniform_int_distribution<std::uint32_t> coord(0, (1U << 12) - 1);
  for (int i = 0; i < 200; ++i) {
    const Octant leaf = octree::octant_from_point(
        coord(rng) << (octree::kMaxDepth - 12), coord(rng) << (octree::kMaxDepth - 12),
        coord(rng) << (octree::kMaxDepth - 12), 12);
    for (int l = 0; l < 12; ++l) {
      const Octant anc = leaf.ancestor_at(l);
      EXPECT_LT(curve.compare(anc, leaf), 0);
      EXPECT_TRUE(anc.is_ancestor_of(leaf));
    }
  }
}

TEST_P(CurveOrderTest, SiblingVisitOrderConsistentWithRank) {
  const Curve curve(GetParam(), 3);
  const Octant parent = octree::root_octant();
  std::vector<Octant> children;
  for (int c = 0; c < 8; ++c) children.push_back(parent.child(c));
  std::sort(children.begin(), children.end(), curve.comparator());
  for (std::size_t j = 0; j < children.size(); ++j) {
    EXPECT_EQ(children[j], parent.child(curve.child_at(0, static_cast<int>(j))));
  }
}

INSTANTIATE_TEST_SUITE_P(BothCurves, CurveOrderTest,
                         ::testing::Values(CurveKind::kMorton, CurveKind::kHilbert),
                         [](const auto& info) { return sfc::to_string(info.param); });

TEST(CurveNames, RoundTrip) {
  EXPECT_EQ(sfc::to_string(CurveKind::kMorton), "morton");
  EXPECT_EQ(sfc::to_string(CurveKind::kHilbert), "hilbert");
  EXPECT_EQ(sfc::curve_kind_from_string("morton"), CurveKind::kMorton);
  EXPECT_EQ(sfc::curve_kind_from_string("hilbert"), CurveKind::kHilbert);
  EXPECT_THROW((void)sfc::curve_kind_from_string("peano"), std::invalid_argument);
}

TEST(CurveDescendants, FirstAndLastBoundTheRegionInterval) {
  // Property: every cell inside a region compares within
  // [first_descendant, last_descendant] in SFC order; cells outside fall
  // outside. For Morton these are the geometric corners; for Hilbert and
  // Moore they generally are not.
  util::Rng rng = util::make_rng(31);
  std::uniform_int_distribution<std::uint32_t> coord(0, (1U << 6) - 1);
  for (const auto kind :
       {CurveKind::kMorton, CurveKind::kHilbert, CurveKind::kMoore}) {
    const Curve curve(kind, 3);
    for (int trial = 0; trial < 30; ++trial) {
      const Octant region = octree::octant_from_point(
          coord(rng) << (octree::kMaxDepth - 6), coord(rng) << (octree::kMaxDepth - 6),
          coord(rng) << (octree::kMaxDepth - 6), 6);
      const int probe_level = 9;
      const Octant first = curve.first_descendant(region, probe_level);
      const Octant last = curve.last_descendant(region, probe_level);
      EXPECT_TRUE(region.is_ancestor_of(first));
      EXPECT_TRUE(region.is_ancestor_of(last));
      EXPECT_LE(curve.compare(first, last), 0);
      // All probe-level descendants sit within [first, last].
      for (int c = 0; c < 27; ++c) {
        const std::uint32_t step = region.size() / 4;
        const Octant inside = octree::octant_from_point(
            region.x + (static_cast<std::uint32_t>(c) % 3) * step,
            region.y + ((static_cast<std::uint32_t>(c) / 3) % 3) * step,
            region.z + (static_cast<std::uint32_t>(c) / 9) * step, probe_level);
        EXPECT_LE(curve.compare(first, inside), 0);
        EXPECT_LE(curve.compare(inside, last), 0);
      }
      // A cell outside the region is outside the interval.
      Octant neighbor_region;
      if (region.face_neighbor(1, neighbor_region)) {
        const Octant outside = curve.first_descendant(neighbor_region, probe_level);
        EXPECT_TRUE(curve.compare(outside, first) < 0 ||
                    curve.compare(last, outside) < 0);
      }
    }
  }
}

TEST(CurveStates, StateAtWalksAncestorChain) {
  const Curve curve(CurveKind::kHilbert, 3);
  const Octant leaf = octree::octant_from_point(123456u << 10, 654321u << 10,
                                                111111u << 10, 8);
  int state = 0;
  for (int depth = 1; depth <= 8; ++depth) {
    state = curve.next_state(state, leaf.child_number(depth, 3));
    EXPECT_EQ(curve.state_at(leaf, depth), state);
  }
}

}  // namespace
}  // namespace amr
