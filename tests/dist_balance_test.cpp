// Distributed 2:1 balancing tests: the per-rank results must concatenate
// to exactly the sequential balance of the gathered tree (refinement-only
// balancing has a unique fixpoint), stay within rank intervals, and be
// idempotent.
#include <gtest/gtest.h>

#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "octree/treesort.hpp"
#include "partition/partition.hpp"
#include "simmpi/dist_balance.hpp"
#include "simmpi/runtime.hpp"

namespace amr::simmpi {
namespace {

using octree::Octant;
using sfc::Curve;
using sfc::CurveKind;

struct Pieces {
  std::vector<std::vector<Octant>> balanced;
  std::vector<DistBalanceReport> reports;
};

Pieces run_balance(const std::vector<Octant>& tree, const partition::Partition& part,
                   CurveKind kind, int p) {
  const Curve curve(kind, 3);
  const auto keys = partition::splitter_keys(tree, part);
  Pieces result;
  result.balanced.resize(static_cast<std::size_t>(p));
  result.reports.resize(static_cast<std::size_t>(p));
  run_ranks(p, [&](Comm& comm) {
    std::vector<Octant> local(
        tree.begin() + static_cast<std::ptrdiff_t>(
                           part.offsets[static_cast<std::size_t>(comm.rank())]),
        tree.begin() + static_cast<std::ptrdiff_t>(
                           part.offsets[static_cast<std::size_t>(comm.rank()) + 1]));
    result.balanced[static_cast<std::size_t>(comm.rank())] = dist_balance_octree(
        std::move(local), keys, comm, curve,
        &result.reports[static_cast<std::size_t>(comm.rank())]);
  });
  return result;
}

class DistBalanceTest : public ::testing::TestWithParam<std::tuple<CurveKind, int>> {};

TEST_P(DistBalanceTest, MatchesSequentialBalanceExactly) {
  const auto [kind, p] = GetParam();
  const Curve curve(kind, 3);
  octree::GenerateOptions options;
  options.seed = 600 + static_cast<std::uint64_t>(p);
  options.max_level = 9;
  options.max_points_per_leaf = 1;
  options.distribution = octree::PointDistribution::kLogNormal;  // steep jumps
  const auto tree = octree::random_octree(4000, curve, options);
  ASSERT_FALSE(octree::is_face_balanced(tree, curve));
  const auto part = partition::ideal_partition(tree.size(), p);

  const Pieces result = run_balance(tree, part, kind, p);
  std::vector<Octant> gathered;
  for (const auto& piece : result.balanced) {
    gathered.insert(gathered.end(), piece.begin(), piece.end());
  }

  const auto sequential = octree::balance_octree(tree, curve);
  EXPECT_EQ(gathered, sequential);
  EXPECT_TRUE(octree::is_face_balanced(gathered, curve));
  EXPECT_TRUE(octree::is_complete(gathered, curve));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistBalanceTest,
    ::testing::Combine(::testing::Values(CurveKind::kMorton, CurveKind::kHilbert),
                       ::testing::Values(2, 4, 7)),
    [](const auto& info) {
      return sfc::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST(DistBalance, PiecesStayInTheirIntervals) {
  const Curve curve(CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = 77;
  options.max_level = 9;
  options.max_points_per_leaf = 1;
  options.distribution = octree::PointDistribution::kLogNormal;
  const auto tree = octree::random_octree(3000, curve, options);
  const int p = 5;
  const auto part = partition::ideal_partition(tree.size(), p);
  const auto keys = partition::splitter_keys(tree, part);

  const Pieces result = run_balance(tree, part, CurveKind::kHilbert, p);
  for (int r = 0; r < p; ++r) {
    for (const Octant& leaf : result.balanced[static_cast<std::size_t>(r)]) {
      EXPECT_EQ(partition::owner_by_keys(keys, curve.first_descendant(leaf), curve), r);
      EXPECT_EQ(partition::owner_by_keys(keys, curve.last_descendant(leaf), curve), r);
    }
  }
}

TEST(DistBalance, IdempotentOnBalancedInput) {
  const Curve curve(CurveKind::kMorton, 3);
  octree::GenerateOptions options;
  options.seed = 88;
  options.max_level = 8;
  const auto tree =
      octree::balance_octree(octree::random_octree(2500, curve, options), curve);
  const int p = 4;
  const auto part = partition::ideal_partition(tree.size(), p);

  const Pieces result = run_balance(tree, part, CurveKind::kMorton, p);
  std::size_t total = 0;
  for (int r = 0; r < p; ++r) {
    total += result.balanced[static_cast<std::size_t>(r)].size();
    EXPECT_EQ(result.reports[static_cast<std::size_t>(r)].local_splits, 0U);
    EXPECT_EQ(result.reports[static_cast<std::size_t>(r)].rounds, 1);
  }
  EXPECT_EQ(total, tree.size());
}

}  // namespace
}  // namespace amr::simmpi
