// Mesh adaptation tests: refinement/coarsening preserve the complete/
// linear/sorted invariants, round-trip correctly, and coarse-to-fine
// range mapping is exact.
#include <gtest/gtest.h>

#include "octree/adapt.hpp"
#include "octree/generate.hpp"
#include "octree/treesort.hpp"

namespace amr::octree {
namespace {

using sfc::Curve;
using sfc::CurveKind;

std::vector<Octant> make_tree(CurveKind kind, std::size_t points, std::uint64_t seed) {
  const Curve curve(kind, 3);
  GenerateOptions options;
  options.seed = seed;
  options.max_level = 8;
  options.distribution = PointDistribution::kNormal;
  return random_octree(points, curve, options);
}

class AdaptTest : public ::testing::TestWithParam<CurveKind> {};

TEST_P(AdaptTest, RefineAllSplitsEveryLeaf) {
  const Curve curve(GetParam(), 3);
  const auto tree = uniform_octree(2, curve);
  const auto refined = refine_octree(tree, curve, [](const Octant&) { return true; });
  EXPECT_EQ(refined.size(), tree.size() * 8);
  EXPECT_TRUE(is_complete(refined, curve));
  EXPECT_TRUE(is_sfc_sorted(refined, curve));
}

TEST_P(AdaptTest, RefinePredicatePreservesInvariants) {
  const Curve curve(GetParam(), 3);
  const auto tree = make_tree(GetParam(), 3000, 3);
  const auto refined = refine_octree(tree, curve, [](const Octant& o) {
    const auto a = o.anchor_unit();
    return a[0] < 0.5 && o.level < 9;  // refine one half-space
  });
  EXPECT_GT(refined.size(), tree.size());
  EXPECT_TRUE(is_complete(refined, curve));
  EXPECT_TRUE(is_linear(refined, curve));
}

TEST_P(AdaptTest, CoarsenUndoesUniformRefine) {
  const Curve curve(GetParam(), 3);
  const auto tree = make_tree(GetParam(), 2000, 7);
  const auto refined = refine_octree(tree, curve, [](const Octant&) { return true; });
  const auto coarsened =
      coarsen_octree_if(refined, curve, [](const Octant&) { return true; });
  EXPECT_EQ(coarsened, tree);
}

INSTANTIATE_TEST_SUITE_P(BothCurves, AdaptTest,
                         ::testing::Values(CurveKind::kMorton, CurveKind::kHilbert),
                         [](const auto& info) { return sfc::to_string(info.param); });

TEST(Adapt, RefineRespectsMaxDepth) {
  const Curve curve(CurveKind::kMorton, 3);
  std::vector<Octant> tree{root_octant()};
  for (int i = 0; i < kMaxDepth + 5; ++i) {
    tree = refine_octree(tree, curve, [](const Octant& o) {
      return o.x == 0 && o.y == 0 && o.z == 0;  // refine the origin chain
    });
  }
  for (const Octant& o : tree) EXPECT_LE(static_cast<int>(o.level), kMaxDepth);
  EXPECT_TRUE(is_complete(tree, curve));
}

TEST(Adapt, CoarsenPredicateOnlyMergesWhereAllowed) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = uniform_octree(2, curve);  // 64 level-2 leaves
  // Allow coarsening only in the z < 1/2 half.
  const auto coarsened = coarsen_octree_if(tree, curve, [](const Octant& parent) {
    return parent.z < (1U << (kMaxDepth - 1));
  });
  // 32 lower leaves merge into 4 parents; 32 upper leaves survive.
  EXPECT_EQ(coarsened.size(), 4U + 32U);
  EXPECT_TRUE(is_complete(coarsened, curve));
}

TEST(Adapt, CoarsenLevelsConvergesToRoot) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = uniform_octree(3, curve);
  const auto once = coarsen_octree(tree, curve, 1);
  EXPECT_EQ(once.size(), 64U);
  const auto all = coarsen_octree(tree, curve, 10);
  ASSERT_EQ(all.size(), 1U);
  EXPECT_EQ(all[0], root_octant());
}

TEST(Adapt, CoarsenStopsAtIncompleteGroups) {
  const Curve curve(CurveKind::kMorton, 3);
  // Mixed levels: refine one leaf of a level-1 tree; its siblings cannot
  // merge with it.
  auto tree = uniform_octree(1, curve);
  tree = refine_octree(tree, curve,
                       [&](const Octant& o) { return o == root_octant().child(0); });
  const auto coarsened = coarsen_octree_if(tree, curve, [](const Octant&) {
    return true;
  });
  // The 8 level-2 children merge back; the 7 level-1 leaves plus the merged
  // one then form a complete group only in a second sweep.
  EXPECT_EQ(coarsened.size(), 8U);
  const auto twice = coarsen_octree(tree, curve, 2);
  EXPECT_EQ(twice.size(), 1U);
}

TEST(Adapt, CoarseToFineRangesCoverExactly) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto fine = make_tree(CurveKind::kHilbert, 4000, 11);
  for (const int levels : {1, 2, 4}) {
    const auto coarse = coarsen_octree(fine, curve, levels);
    const auto ranges = coarse_to_fine_ranges(fine, coarse, curve);
    ASSERT_EQ(ranges.size(), coarse.size());
    std::size_t cursor = 0;
    for (std::size_t c = 0; c < coarse.size(); ++c) {
      EXPECT_EQ(ranges[c].first, cursor);
      EXPECT_GT(ranges[c].second, ranges[c].first);
      for (std::size_t i = ranges[c].first; i < ranges[c].second; ++i) {
        EXPECT_TRUE(fine[i] == coarse[c] || coarse[c].is_ancestor_of(fine[i]));
      }
      cursor = ranges[c].second;
    }
    EXPECT_EQ(cursor, fine.size());
  }
}

}  // namespace
}  // namespace amr::octree
