// Mesh adaptation tests: refinement/coarsening preserve the complete/
// linear/sorted invariants, round-trip correctly, and coarse-to-fine
// range mapping is exact.
#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>

#include "octree/adapt.hpp"
#include "octree/generate.hpp"
#include "octree/treesort.hpp"

namespace amr::octree {
namespace {

using sfc::Curve;
using sfc::CurveKind;

std::vector<Octant> make_tree(CurveKind kind, std::size_t points, std::uint64_t seed) {
  const Curve curve(kind, 3);
  GenerateOptions options;
  options.seed = seed;
  options.max_level = 8;
  options.distribution = PointDistribution::kNormal;
  return random_octree(points, curve, options);
}

class AdaptTest : public ::testing::TestWithParam<CurveKind> {};

TEST_P(AdaptTest, RefineAllSplitsEveryLeaf) {
  const Curve curve(GetParam(), 3);
  const auto tree = uniform_octree(2, curve);
  const auto refined = refine_octree(tree, curve, [](const Octant&) { return true; });
  EXPECT_EQ(refined.size(), tree.size() * 8);
  EXPECT_TRUE(is_complete(refined, curve));
  EXPECT_TRUE(is_sfc_sorted(refined, curve));
}

TEST_P(AdaptTest, RefinePredicatePreservesInvariants) {
  const Curve curve(GetParam(), 3);
  const auto tree = make_tree(GetParam(), 3000, 3);
  const auto refined = refine_octree(tree, curve, [](const Octant& o) {
    const auto a = o.anchor_unit();
    return a[0] < 0.5 && o.level < 9;  // refine one half-space
  });
  EXPECT_GT(refined.size(), tree.size());
  EXPECT_TRUE(is_complete(refined, curve));
  EXPECT_TRUE(is_linear(refined, curve));
}

TEST_P(AdaptTest, CoarsenUndoesUniformRefine) {
  const Curve curve(GetParam(), 3);
  const auto tree = make_tree(GetParam(), 2000, 7);
  const auto refined = refine_octree(tree, curve, [](const Octant&) { return true; });
  const auto coarsened =
      coarsen_octree_if(refined, curve, [](const Octant&) { return true; });
  EXPECT_EQ(coarsened, tree);
}

INSTANTIATE_TEST_SUITE_P(BothCurves, AdaptTest,
                         ::testing::Values(CurveKind::kMorton, CurveKind::kHilbert),
                         [](const auto& info) { return sfc::to_string(info.param); });

TEST(Adapt, RefineRespectsMaxDepth) {
  const Curve curve(CurveKind::kMorton, 3);
  std::vector<Octant> tree{root_octant()};
  for (int i = 0; i < kMaxDepth + 5; ++i) {
    tree = refine_octree(tree, curve, [](const Octant& o) {
      return o.x == 0 && o.y == 0 && o.z == 0;  // refine the origin chain
    });
  }
  for (const Octant& o : tree) EXPECT_LE(static_cast<int>(o.level), kMaxDepth);
  EXPECT_TRUE(is_complete(tree, curve));
}

TEST(Adapt, CoarsenPredicateOnlyMergesWhereAllowed) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = uniform_octree(2, curve);  // 64 level-2 leaves
  // Allow coarsening only in the z < 1/2 half.
  const auto coarsened = coarsen_octree_if(tree, curve, [](const Octant& parent) {
    return parent.z < (1U << (kMaxDepth - 1));
  });
  // 32 lower leaves merge into 4 parents; 32 upper leaves survive.
  EXPECT_EQ(coarsened.size(), 4U + 32U);
  EXPECT_TRUE(is_complete(coarsened, curve));
}

TEST(Adapt, CoarsenLevelsConvergesToRoot) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = uniform_octree(3, curve);
  const auto once = coarsen_octree(tree, curve, 1);
  EXPECT_EQ(once.size(), 64U);
  const auto all = coarsen_octree(tree, curve, 10);
  ASSERT_EQ(all.size(), 1U);
  EXPECT_EQ(all[0], root_octant());
}

TEST(Adapt, CoarsenStopsAtIncompleteGroups) {
  const Curve curve(CurveKind::kMorton, 3);
  // Mixed levels: refine one leaf of a level-1 tree; its siblings cannot
  // merge with it.
  auto tree = uniform_octree(1, curve);
  tree = refine_octree(tree, curve,
                       [&](const Octant& o) { return o == root_octant().child(0); });
  const auto coarsened = coarsen_octree_if(tree, curve, [](const Octant&) {
    return true;
  });
  // The 8 level-2 children merge back; the 7 level-1 leaves plus the merged
  // one then form a complete group only in a second sweep.
  EXPECT_EQ(coarsened.size(), 8U);
  const auto twice = coarsen_octree(tree, curve, 2);
  EXPECT_EQ(twice.size(), 1U);
}

TEST(Adapt, CoarseToFineRangesCoverExactly) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto fine = make_tree(CurveKind::kHilbert, 4000, 11);
  for (const int levels : {1, 2, 4}) {
    const auto coarse = coarsen_octree(fine, curve, levels);
    const auto ranges = coarse_to_fine_ranges(fine, coarse, curve);
    ASSERT_EQ(ranges.size(), coarse.size());
    std::size_t cursor = 0;
    for (std::size_t c = 0; c < coarse.size(); ++c) {
      EXPECT_EQ(ranges[c].first, cursor);
      EXPECT_GT(ranges[c].second, ranges[c].first);
      for (std::size_t i = ranges[c].first; i < ranges[c].second; ++i) {
        EXPECT_TRUE(fine[i] == coarse[c] || coarse[c].is_ancestor_of(fine[i]));
      }
      cursor = ranges[c].second;
    }
    EXPECT_EQ(cursor, fine.size());
  }
}

TEST(Adapt, RefineReservationIsExact) {
  // The reservation pre-counts split leaves, so refine-heavy rounds must
  // come back with capacity == size (no reallocation, no over-reserve).
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = make_tree(CurveKind::kHilbert, 3000, 5);
  for (const double fraction : {0.0, 0.3, 1.0}) {
    const auto refined = refine_octree(tree, curve, [&](const Octant& o) {
      return o.anchor_unit()[0] < fraction && o.level < 10;
    });
    EXPECT_EQ(refined.capacity(), refined.size()) << "fraction " << fraction;
  }
}

TEST(Adapt, RefineToFixpointStopsAtPredicateFixpoint) {
  const Curve curve(CurveKind::kHilbert, 3);
  std::vector<Octant> tree{root_octant()};
  const int rounds = refine_to_fixpoint(
      tree, curve, [](const Octant& o) { return o.level < 4; });
  EXPECT_EQ(rounds, 4);
  EXPECT_EQ(tree.size(), std::size_t{1} << 12);  // uniform level 4
  EXPECT_TRUE(is_complete(tree, curve));
}

TEST(Adapt, RefineToFixpointTerminatesAtMaxDepth) {
  // An always-eager predicate along one corner chain wants to refine
  // forever; kMaxDepth leaves cannot split, so the loop must end on its
  // own after exactly kMaxDepth productive rounds.
  const Curve curve(CurveKind::kMorton, 3);
  std::vector<Octant> tree{root_octant()};
  const int rounds = refine_to_fixpoint(tree, curve, [](const Octant& o) {
    return o.x == 0 && o.y == 0 && o.z == 0;  // the origin chain, any level
  });
  EXPECT_EQ(rounds, kMaxDepth);
  EXPECT_EQ(tree.size(), 1U + 7U * static_cast<unsigned>(kMaxDepth));
  for (const Octant& o : tree) EXPECT_LE(static_cast<int>(o.level), kMaxDepth);
  EXPECT_TRUE(is_complete(tree, curve));
}

TEST(Adapt, IndexedCoarsenSeesTheWholeSiblingGroup) {
  // The indexed overload must hand back the position of each *complete*
  // group's first leaf even when partial sibling runs (split children)
  // sit right next to it.
  const Curve curve(CurveKind::kHilbert, 3);
  auto tree = uniform_octree(1, curve);
  // Split one child: its 8 grandchildren form a complete group; the 7
  // remaining level-1 leaves are a partial run of the root's group.
  tree = refine_octree(tree, curve,
                       [&](const Octant& o) { return o == root_octant().child(0); });
  std::vector<std::pair<Octant, std::size_t>> offers;
  const auto coarsened = coarsen_octree_if(
      tree, curve, [&](const Octant& parent, std::size_t group_begin) {
        offers.emplace_back(parent, group_begin);
        // Every offered group must be 8 consecutive children of `parent`.
        for (int c = 0; c < 8; ++c) {
          EXPECT_TRUE(parent.is_ancestor_of(tree[group_begin + c]));
          EXPECT_EQ(static_cast<int>(tree[group_begin + c].level),
                    static_cast<int>(parent.level) + 1);
        }
        return false;  // observe only
      });
  // Only the split child's group is complete; the root's partial run of 7
  // level-1 leaves must never be offered.
  ASSERT_EQ(offers.size(), 1U);
  EXPECT_EQ(offers[0].first, root_octant().child(0));
  EXPECT_EQ(coarsened, tree);  // predicate declined: nothing merged
}

TEST(Adapt, IndexedCoarsenHonorsPerLeafState) {
  // Per-leaf counters aligned with the tree (the driver's hysteresis):
  // only groups whose every child passes the counter check may merge.
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = uniform_octree(2, curve);  // 8 complete groups of 8
  std::vector<int> counters(tree.size(), 0);
  // Arm all counters of the first two groups, and 7/8 of the third.
  for (std::size_t i = 0; i < 23; ++i) counters[i] = 1;
  const auto coarsened = coarsen_octree_if(
      tree, curve, [&](const Octant&, std::size_t group_begin) {
        for (std::size_t c = 0; c < 8; ++c) {
          if (counters[group_begin + c] < 1) return false;
        }
        return true;
      });
  // Two groups merge (16 leaves -> 2 parents); the 7/8 group survives.
  EXPECT_EQ(coarsened.size(), tree.size() - 2 * 8 + 2);
  EXPECT_TRUE(is_complete(coarsened, curve));
}

TEST(Adapt, CoarseToFineRangesThrowsOnEmptyCoarseCell) {
  // Regression: precondition violations used to be assert-only, returning
  // silently wrong ranges in release builds. A coarse tree *deeper* than
  // the fine tree has cells covering no fine leaf -> must throw.
  const Curve curve(CurveKind::kHilbert, 3);
  const auto fine = uniform_octree(1, curve);
  const auto coarse = uniform_octree(2, curve);
  EXPECT_THROW((void)coarse_to_fine_ranges(fine, coarse, curve),
               std::invalid_argument);
}

TEST(Adapt, CoarseToFineRangesThrowsOnUncoveredFineLeaves) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto fine = uniform_octree(2, curve);
  auto coarse = uniform_octree(1, curve);
  coarse.pop_back();  // the last coarse cell's fine leaves are now orphans
  EXPECT_THROW((void)coarse_to_fine_ranges(fine, coarse, curve),
               std::invalid_argument);
}

}  // namespace
}  // namespace amr::octree
