// Cluster-simulator tests: analytic densities vs empirical generation,
// splitter-simulation convergence, cost-model shapes at scale, and the
// matvec/energy simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "machine/machine_model.hpp"
#include "mesh/comm_matrix.hpp"
#include "octree/generate.hpp"
#include "partition/metrics.hpp"
#include "sim/cluster.hpp"
#include "sim/density.hpp"
#include "sim/matvec_sim.hpp"
#include "sim/splitter_sim.hpp"
#include "simmpi/dist_treesort.hpp"
#include "simmpi/runtime.hpp"

namespace amr::sim {
namespace {

using octree::GenerateOptions;
using octree::PointDistribution;

TEST(Density, UniformMatchesVolume) {
  GenerateOptions options;
  options.distribution = PointDistribution::kUniform;
  const Density density(options);
  EXPECT_NEAR(density.box_probability({0, 0, 0}, {1, 1, 1}), 1.0, 1e-12);
  EXPECT_NEAR(density.box_probability({0, 0, 0}, {0.5, 0.5, 0.5}), 0.125, 1e-12);
  EXPECT_NEAR(density.box_probability({0.25, 0.25, 0.25}, {0.75, 0.75, 0.75}), 0.125,
              1e-12);
}

TEST(Density, CdfIsMonotoneAndNormalized) {
  for (const auto dist : {PointDistribution::kUniform, PointDistribution::kNormal,
                          PointDistribution::kLogNormal}) {
    GenerateOptions options;
    options.distribution = dist;
    const Density density(options);
    EXPECT_DOUBLE_EQ(density.axis_cdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(density.axis_cdf(1.0), 1.0);
    double prev = 0.0;
    for (double x = 0.05; x < 1.0; x += 0.05) {
      const double c = density.axis_cdf(x);
      EXPECT_GE(c, prev - 1e-12);
      EXPECT_LE(c, 1.0 + 1e-12);
      prev = c;
    }
  }
}

TEST(Density, MatchesEmpiricalCounts) {
  // The analytic box mass must agree with the fraction of generated points
  // falling in the box, for each distribution.
  for (const auto dist : {PointDistribution::kUniform, PointDistribution::kNormal,
                          PointDistribution::kLogNormal}) {
    GenerateOptions options;
    options.distribution = dist;
    options.seed = 5;
    const Density density(options);
    const auto points = octree::generate_points(200000, options);

    const std::array<double, 3> lo{0.25, 0.25, 0.0};
    const std::array<double, 3> hi{0.75, 0.75, 0.5};
    const double grid = static_cast<double>(1U << octree::kMaxDepth);
    std::size_t inside = 0;
    for (const auto& p : points) {
      const double x = p[0] / grid;
      const double y = p[1] / grid;
      const double z = p[2] / grid;
      if (x >= lo[0] && x < hi[0] && y >= lo[1] && y < hi[1] && z >= lo[2] && z < hi[2]) {
        ++inside;
      }
    }
    const double expected = density.box_probability(lo, hi);
    const double observed = static_cast<double>(inside) / points.size();
    EXPECT_NEAR(observed, expected, 0.01) << to_string(dist);
  }
}

TEST(SplitterSim, ToleranceReducesLevels) {
  SimConfig config;
  config.n = 100'000'000;
  config.p = 1024;
  config.distribution.distribution = PointDistribution::kNormal;
  const auto machine = machine::titan();

  config.tolerance = 0.0;
  const SimResult exact = simulate_treesort(config, machine);
  config.tolerance = 0.3;
  const SimResult loose = simulate_treesort(config, machine);

  EXPECT_GT(exact.levels_used, 0);
  EXPECT_LT(loose.levels_used, exact.levels_used);
  EXPECT_LE(loose.time.total(), exact.time.total());
  // Achieved tolerance is honored.
  EXPECT_LE(loose.achieved_tolerance, 0.3 + 1e-9);
}

TEST(SplitterSim, WeakScalingDominatedByExchange) {
  // Fig. 5's shape: at fixed grain the all2all term stays put while the
  // splitter term grows slowly with log p.
  const auto machine = machine::titan();
  SimConfig config;
  config.distribution.distribution = PointDistribution::kNormal;
  config.tolerance = 0.0;

  double prev_total = 0.0;
  for (const int p : {16, 256, 4096, 65536, 262144}) {
    config.p = p;
    config.n = static_cast<std::uint64_t>(p) * 1'000'000ULL;
    const SimResult r = simulate_treesort(config, machine);
    EXPECT_GT(r.time.all2all, r.time.splitter) << "p=" << p;
    EXPECT_GE(r.time.total(), prev_total * 0.95) << "p=" << p;
    prev_total = r.time.total();
  }
}

TEST(SplitterSim, SampleSortSplitterCostBlowsUpWithP) {
  const auto machine = machine::stampede();
  SimConfig config;
  config.n = 1'000'000ULL * 4096ULL;
  config.p = 4096;
  const SimResult treesort = simulate_treesort(config, machine);
  const SimResult samplesort = simulate_samplesort(config, machine);
  // The p^2 sample term dominates SampleSort's splitter phase at scale.
  EXPECT_GT(samplesort.time.splitter, treesort.time.splitter * 10.0);
}

TEST(SplitterSim, StrongScalingImprovesWithRanks) {
  const auto machine = machine::titan();
  SimConfig config;
  config.n = 16'000'000;
  config.tolerance = 0.0;
  config.p = 16;
  const double t16 = simulate_treesort(config, machine).time.total();
  config.p = 1024;
  const double t1024 = simulate_treesort(config, machine).time.total();
  EXPECT_LT(t1024, t16);
  // Efficiency is below 100% (communication overhead) but meaningful.
  const double speedup = t16 / t1024;
  EXPECT_GT(speedup, 4.0);
  EXPECT_LE(speedup, 64.0 * 1.05);
}

TEST(SplitterSim, LevelsMatchTheRealDistributedImplementation) {
  // Cross-validation: the analytic simulator must predict the refinement
  // depth the real simmpi implementation uses on a sampled workload of the
  // same distribution (within the granularity noise of finite sampling).
  const int p = 8;
  const std::size_t per_rank = 4000;
  const double tolerance = 0.1;

  SimConfig config;
  config.n = static_cast<std::uint64_t>(p) * per_rank;
  config.p = p;
  config.tolerance = tolerance;
  config.distribution.distribution = PointDistribution::kNormal;
  const SimResult predicted = simulate_treesort(config, machine::titan());

  std::vector<int> levels(static_cast<std::size_t>(p), 0);
  simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
    octree::GenerateOptions gen;
    gen.distribution = PointDistribution::kNormal;
    gen.seed = 7000 + static_cast<std::uint64_t>(comm.rank());
    auto points = octree::generate_points(per_rank, gen);
    std::vector<octree::Octant> local;
    local.reserve(points.size());
    for (const auto& point : points) {
      local.push_back(
          octree::octant_from_point(point[0], point[1], point[2], octree::kMaxDepth));
    }
    const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
    simmpi::DistSortOptions options;
    options.tolerance = tolerance;
    const auto report = simmpi::dist_treesort(local, comm, curve, options);
    levels[static_cast<std::size_t>(comm.rank())] = report.levels_used;
  });

  EXPECT_NEAR(levels[0], predicted.levels_used, 2) << "sim drifted from reality";
}

TEST(MatvecSim, EnergyTracksRuntime) {
  // Two synthetic partitions with identical total work: the one with more
  // communication must take longer AND use more energy (paper Fig. 7's
  // correlation).
  const machine::PerfModel model(machine::clemson32(), machine::ApplicationProfile{});
  partition::Metrics balanced;
  balanced.work = {1000.0, 1000.0, 1000.0, 1000.0};
  balanced.w_max = 1000.0;

  mesh::CommMatrix light(4);
  light.add(0, 1, 50.0);
  light.add(1, 0, 50.0);
  mesh::CommMatrix heavy(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) heavy.add(i, j, 400.0);
    }
  }

  MatvecSimConfig config;
  config.iterations = 10;
  config.sampler.sample_hz = 1e7;  // fine sampling for the tiny job
  const MatvecSimResult a = simulate_matvec(balanced, light, model, config);
  const MatvecSimResult b = simulate_matvec(balanced, heavy, model, config);
  EXPECT_LT(a.total_seconds, b.total_seconds);
  EXPECT_LT(a.energy.total_joules, b.energy.total_joules);
  EXPECT_GT(b.total_data_elements, a.total_data_elements);
  EXPECT_EQ(a.energy.per_node_joules.size(), 1U);  // 4 ranks on one node
}

TEST(MatvecSim, OverlapShortensCommBoundEpochs) {
  // Same partition, same machine: with overlap modeled, the epoch can only
  // get shorter, exposed + hidden must conserve the total comm time, and
  // on a comm-heavy partition some (not all) of the exchange stays exposed.
  const machine::PerfModel model(machine::wisconsin8(), machine::ApplicationProfile{});
  partition::Metrics metrics;
  metrics.work = {2000.0, 2000.0, 2000.0, 2000.0};
  metrics.w_max = 2000.0;
  mesh::CommMatrix comm(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) comm.add(i, j, 300.0);
    }
  }

  MatvecSimConfig blocking;
  blocking.iterations = 10;
  blocking.sampler.sample_hz = 1e7;
  MatvecSimConfig overlapped = blocking;
  overlapped.overlap = true;

  const MatvecSimResult base = simulate_matvec(metrics, comm, model, blocking);
  const MatvecSimResult over = simulate_matvec(metrics, comm, model, overlapped);

  EXPECT_LE(over.total_seconds, base.total_seconds * (1.0 + 1e-12));
  EXPECT_DOUBLE_EQ(base.exposed_comm_seconds, base.comm_seconds);  // all exposed
  EXPECT_DOUBLE_EQ(base.hidden_comm_seconds, 0.0);
  EXPECT_NEAR(over.exposed_comm_seconds + over.hidden_comm_seconds,
              over.comm_seconds, 1e-12 * over.comm_seconds + 1e-15);
  EXPECT_GT(over.hidden_comm_seconds, 0.0);

  ASSERT_EQ(over.rank_exposed_fraction.size(), 4U);
  for (const double f : over.rank_exposed_fraction) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  for (const double f : base.rank_exposed_fraction) {
    EXPECT_DOUBLE_EQ(f, 1.0);  // blocking exchange hides nothing
  }
}

TEST(MatvecSim, ExplicitBoundaryWorkOverridesDerivedSplit) {
  // Supplying measured boundary counts changes the overlap window: a rank
  // with all of its work on the boundary cannot hide any communication.
  const machine::PerfModel model(machine::wisconsin8(), machine::ApplicationProfile{});
  partition::Metrics metrics;
  metrics.work = {1000.0, 1000.0};
  metrics.w_max = 1000.0;
  mesh::CommMatrix comm(2);
  comm.add(0, 1, 200.0);
  comm.add(1, 0, 200.0);

  MatvecSimConfig config;
  config.iterations = 4;
  config.overlap = true;
  config.sampler.sample_hz = 1e7;
  const MatvecSimResult derived = simulate_matvec(metrics, comm, model, config);

  config.boundary_work = {1000.0, 1000.0};  // nothing interior anywhere
  const MatvecSimResult all_boundary = simulate_matvec(metrics, comm, model, config);

  EXPECT_GE(all_boundary.total_seconds, derived.total_seconds);
  for (const double f : all_boundary.rank_exposed_fraction) {
    EXPECT_DOUBLE_EQ(f, 1.0);  // no interior window to hide behind
  }
  // With zero interior the overlapped schedule degenerates to blocking.
  config.overlap = false;
  config.boundary_work.clear();
  const MatvecSimResult blocking = simulate_matvec(metrics, comm, model, config);
  EXPECT_NEAR(all_boundary.total_seconds, blocking.total_seconds,
              1e-12 * blocking.total_seconds);
}

TEST(MatvecSim, PerNodeEnergyReflectsPlacement) {
  machine::MachineModel machine = machine::wisconsin8();
  machine.cores_per_node = 2;
  const machine::PerfModel model(machine, machine::ApplicationProfile{});
  partition::Metrics metrics;
  metrics.work = {4000.0, 4000.0, 100.0, 100.0};  // node 0 loaded, node 1 idle
  metrics.w_max = 4000.0;
  mesh::CommMatrix comm(4);
  comm.add(0, 2, 10.0);
  comm.add(2, 0, 10.0);

  MatvecSimConfig config;
  config.iterations = 5;
  config.sampler.sample_hz = 1e7;
  const MatvecSimResult r = simulate_matvec(metrics, comm, model, config);
  ASSERT_EQ(r.energy.per_node_joules.size(), 2U);
  EXPECT_GT(r.energy.per_node_joules[0], r.energy.per_node_joules[1]);
}

TEST(ScaleSim, ClusterMatchesSimulateTreesortExactly) {
  // simulate_treesort delegates to Cluster; a Cluster held across queries
  // must answer bit-for-bit what the one-shot path answers, for every
  // distribution/curve/tolerance combination.
  for (const auto dist : {PointDistribution::kUniform, PointDistribution::kNormal,
                          PointDistribution::kLogNormal}) {
    SimConfig config;
    config.distribution.distribution = dist;
    config.n = 40'000'000;
    config.p = 256;
    Cluster cluster(config.distribution, config.curve);
    for (const double tol : {0.0, 0.1, 0.3}) {
      config.tolerance = tol;
      Cluster::TreesortQuery query;
      query.n = config.n;
      query.p = config.p;
      query.tolerance = tol;
      const SimResult expected = simulate_treesort(config, machine::titan());
      const SimResult got = cluster.treesort_result(query, machine::titan());
      EXPECT_EQ(got.levels_used, expected.levels_used);
      EXPECT_EQ(got.max_deviation_elements, expected.max_deviation_elements);
      EXPECT_EQ(got.achieved_tolerance, expected.achieved_tolerance);
      EXPECT_EQ(got.time.local_sort, expected.time.local_sort);
      EXPECT_EQ(got.time.splitter, expected.time.splitter);
      EXPECT_EQ(got.time.all2all, expected.time.all2all);
    }
  }
}

TEST(ScaleSim, HistogramTreeIsMemoizedAcrossQueries) {
  GenerateOptions options;
  options.distribution = PointDistribution::kNormal;
  Cluster cluster(options, sfc::CurveKind::kHilbert);
  const AnalyticPartition first = cluster.resolve_cuts(1'000'000, 64, 0.0);
  const std::size_t after_first = cluster.node_count();
  ASSERT_GT(after_first, 1u);
  // Re-asking the same question expands nothing and answers identically.
  const AnalyticPartition again = cluster.resolve_cuts(1'000'000, 64, 0.0);
  EXPECT_EQ(cluster.node_count(), after_first);
  EXPECT_EQ(again.cut_mass, first.cut_mass);
  EXPECT_EQ(again.levels_used, first.levels_used);
  // A coarser query walks existing nodes only (its cuts are a subset of
  // boundaries the finer query already resolved past).
  (void)cluster.resolve_cuts(1'000'000, 32, 0.0);
  EXPECT_EQ(cluster.node_count(), after_first);
}

TEST(ScaleSim, CutPositionsPartitionTheMassLine) {
  GenerateOptions options;
  options.distribution = PointDistribution::kLogNormal;
  Cluster cluster(options, sfc::CurveKind::kHilbert);
  const std::uint64_t n = 100'000'000;
  const int p = 512;
  const AnalyticPartition cuts = cluster.resolve_cuts(n, p, 0.0);
  ASSERT_EQ(cuts.num_ranks(), p);
  EXPECT_EQ(cuts.cut_mass.front(), 0.0);
  EXPECT_EQ(cuts.cut_mass.back(), 1.0);
  for (int r = 1; r <= p; ++r) {
    const auto i = static_cast<std::size_t>(r);
    EXPECT_GE(cuts.cut_mass[i], cuts.cut_mass[i - 1]);
    if (r < p) {
      // Every interior cut lands within the reported worst deviation of
      // its target r/p.
      const double target = static_cast<double>(r) / p;
      EXPECT_LE(std::abs(cuts.cut_mass[i] - target),
                cuts.max_deviation_mass + 1e-15);
    }
  }
}

TEST(ScaleSim, ToleranceBoundsAchievedDeviation) {
  GenerateOptions options;
  options.distribution = PointDistribution::kNormal;
  Cluster cluster(options, sfc::CurveKind::kHilbert);
  const std::uint64_t n = 1'000'000'000;
  for (const double tol : {0.01, 0.1, 0.3}) {
    const AnalyticPartition cuts = cluster.resolve_cuts(n, 128, tol);
    const double achieved = cuts.max_deviation_mass / (1.0 / 128.0);
    EXPECT_LE(achieved, tol + 1e-12) << "tolerance " << tol;
  }
}

TEST(ScaleSim, ElementCountsSurviveThe32BitBoundary) {
  // Overflow canary for the scale sweeps: n = 2^32 + 2^20 elements over
  // 4096 ranks. If any step of the pipeline held the count in 32 bits the
  // run would silently see n mod 2^32 = 2^20 elements -- 4096x fewer --
  // and the coarser min-bucket mass would stop refinement about 12 levels
  // early. The 64-bit path must refine strictly deeper.
  GenerateOptions options;
  options.distribution = PointDistribution::kNormal;
  Cluster cluster(options, sfc::CurveKind::kHilbert);
  const int p = 4096;
  const std::uint64_t n = (std::uint64_t{1} << 32) + (std::uint64_t{1} << 20);
  ASSERT_GT(n, std::uint64_t{0xffffffff});
  const std::uint64_t truncated = n & 0xffffffffull;
  ASSERT_NE(truncated, n);
  const AnalyticPartition full = cluster.resolve_cuts(n, p, 0.0);
  const AnalyticPartition narrow = cluster.resolve_cuts(truncated, p, 0.0);
  EXPECT_GT(full.levels_used, narrow.levels_used);
  // Deviations stay sub-grain at the true count: the refinement really ran
  // at 8.2e9 elements.
  EXPECT_LT(full.max_deviation_mass * static_cast<double>(n),
            static_cast<double>(n) / p);
  // And the one-shot simulate_treesort sees the same 64-bit count.
  SimConfig config;
  config.distribution = options;
  config.n = n;
  config.p = p;
  const SimResult result = simulate_treesort(config, machine::titan());
  EXPECT_EQ(result.levels_used, full.levels_used);
}

TEST(ScaleSim, StepModelFollowsEquation3) {
  GenerateOptions options;
  options.distribution = PointDistribution::kNormal;
  Cluster cluster(options, sfc::CurveKind::kHilbert);
  const std::uint64_t n = 64'000'000;
  const machine::PerfModel model(machine::wisconsin8(), machine::ApplicationProfile{});
  const AnalyticPartition ideal = cluster.resolve_cuts(n, 256, 0.0);
  const ScaleStepModel step = cluster.step_model(ideal, n, model);
  EXPECT_GT(step.w_max, 0.0);
  EXPECT_LE(step.w_min, step.w_max);
  EXPECT_GE(step.load_imbalance, 1.0 - 1e-9);
  // Surface model: boundaries are sub-linear in the grain.
  EXPECT_LT(step.c_max, step.w_max);
  EXPECT_DOUBLE_EQ(step.step_seconds, model.application_time(step.w_max, step.c_max));
  // A coarse tolerance concentrates more work on some rank.
  const AnalyticPartition loose = cluster.resolve_cuts(n, 256, 0.3);
  const ScaleStepModel loose_step = cluster.step_model(loose, n, model);
  EXPECT_GE(loose_step.w_max, step.w_max);
  // Both endpoints of a rank may deviate by tol*grain, so Wmax is bounded
  // by (1 + 2*tol) grains.
  EXPECT_LE(loose_step.load_imbalance, 1.0 + 2.0 * 0.3 + 1e-9);
}

TEST(ScaleSim, EpochEnergyScalesWithIterationsAndPlacement) {
  GenerateOptions options;
  options.distribution = PointDistribution::kNormal;
  Cluster cluster(options, sfc::CurveKind::kHilbert);
  const std::uint64_t n = 64'000'000;
  const machine::PerfModel model(machine::wisconsin8(), machine::ApplicationProfile{});
  const AnalyticPartition cuts = cluster.resolve_cuts(n, 256, 0.0);
  const ScaleEpochResult one = cluster.epoch(cuts, n, 10, model);
  // 256 ranks on wisconsin8 (32 cores/node) is exactly the paper's 8 nodes.
  EXPECT_EQ(one.nodes, 8u);
  EXPECT_GT(one.total_seconds, 0.0);
  EXPECT_GT(one.total_joules, 0.0);
  EXPECT_LE(one.node_joules_min, one.node_joules_mean);
  EXPECT_LE(one.node_joules_mean, one.node_joules_max);
  // The energy integral is linear in epoch length.
  const ScaleEpochResult two = cluster.epoch(cuts, n, 20, model);
  EXPECT_NEAR(two.total_joules, 2.0 * one.total_joules, 1e-9 * one.total_joules);
  EXPECT_NEAR(two.total_seconds, 2.0 * one.total_seconds, 1e-12);
  // Sanity: a node is never cheaper than its idle draw over the epoch.
  EXPECT_GE(one.node_joules_min,
            model.machine().idle_watts * one.total_seconds - 1e-9);
}

}  // namespace
}  // namespace amr::sim
