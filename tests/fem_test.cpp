// FEM tests: Laplacian operator properties (symmetry, positive
// definiteness, null action on constants away from the boundary),
// distributed-vs-global matvec agreement, and CG convergence on the
// 3D Poisson problem.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "fem/cg.hpp"
#include "fem/laplacian.hpp"
#include "fem/vector.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "util/rng.hpp"

namespace amr::fem {
namespace {

using mesh::GlobalMesh;
using partition::ideal_partition;
using sfc::Curve;
using sfc::CurveKind;

GlobalMesh make_mesh(CurveKind kind, std::size_t points, std::uint64_t seed,
                     int max_level = 6) {
  const Curve curve(kind, 3);
  octree::GenerateOptions options;
  options.seed = seed;
  options.max_level = max_level;
  options.max_points_per_leaf = 2;
  options.distribution = octree::PointDistribution::kNormal;
  auto tree = octree::balance_octree(octree::random_octree(points, curve, options), curve);
  return mesh::build_global_mesh(std::move(tree), curve);
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  util::Rng rng = util::make_rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

TEST(VectorOps, Basics) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{4.0, -1.0, 0.5};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 2.0 + 1.5);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3.0, 4.0}), 5.0);
  axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  xpby(a, 0.5, b);
  EXPECT_DOUBLE_EQ(b[0], 1.0 + 3.0);
  fill(b, 0.0);
  EXPECT_DOUBLE_EQ(norm2(b), 0.0);
}

TEST(Laplacian, OperatorIsSymmetric) {
  const GlobalMesh mesh = make_mesh(CurveKind::kHilbert, 800, 2);
  const std::size_t n = mesh.elements.size();
  const auto u = random_vector(n, 10);
  const auto v = random_vector(n, 11);
  std::vector<double> lu(n);
  std::vector<double> lv(n);
  apply_global(mesh, u, lu);
  apply_global(mesh, v, lv);
  // <Lu, v> == <u, Lv>.
  EXPECT_NEAR(dot(lu, v), dot(u, lv), 1e-9 * std::abs(dot(lu, v)) + 1e-12);
}

TEST(Laplacian, PositiveDefinite) {
  const GlobalMesh mesh = make_mesh(CurveKind::kMorton, 600, 4);
  const std::size_t n = mesh.elements.size();
  for (std::uint64_t seed = 20; seed < 25; ++seed) {
    const auto u = random_vector(n, seed);
    std::vector<double> lu(n);
    apply_global(mesh, u, lu);
    EXPECT_GT(dot(u, lu), 0.0);
  }
}

TEST(Laplacian, ConstantVectorOnlyFeelsTheBoundary) {
  const GlobalMesh mesh = make_mesh(CurveKind::kHilbert, 500, 6);
  const std::size_t n = mesh.elements.size();
  std::vector<double> ones(n, 1.0);
  std::vector<double> out(n);
  apply_global(mesh, ones, out);
  // Interior fluxes cancel for a constant field; only Dirichlet faces
  // contribute. Elements with no boundary face must map to ~0.
  std::vector<char> touches_boundary(n, 0);
  for (const mesh::BoundaryFace& f : mesh.boundary_faces) touches_boundary[f.a] = 1;
  int interior = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (touches_boundary[i] == 0) {
      EXPECT_NEAR(out[i], 0.0, 1e-12);
      ++interior;
    } else {
      EXPECT_GT(out[i], 0.0);
    }
  }
  EXPECT_GT(interior, 0);
}

class DistributedMatvecTest : public ::testing::TestWithParam<int> {};

TEST_P(DistributedMatvecTest, MatchesGlobalReference) {
  const int p = GetParam();
  const Curve curve(CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = 8;
  options.max_level = 6;
  options.distribution = octree::PointDistribution::kNormal;
  auto tree = octree::balance_octree(octree::random_octree(1500, curve, options), curve);

  const GlobalMesh global = mesh::build_global_mesh(tree, curve);
  const auto part = ideal_partition(tree.size(), p);
  const auto locals = mesh::build_local_meshes(tree, curve, part);
  const DistributedLaplacian dist(locals);

  const auto u = random_vector(tree.size(), 99);
  std::vector<double> expected(u.size());
  apply_global(global, u, expected);

  auto pieces = dist.scatter(u);
  std::vector<std::vector<double>> out;
  StepCost cost;
  dist.matvec(pieces, out, &cost);
  const auto actual = dist.gather(out);

  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-9 * (std::abs(expected[i]) + 1.0))
        << "element " << i;
  }
  // Cost accounting: work sums to N; sent volumes only when p > 1.
  double work = 0.0;
  double sent = 0.0;
  for (int r = 0; r < p; ++r) {
    work += cost.work[static_cast<std::size_t>(r)];
    sent += cost.sent[static_cast<std::size_t>(r)];
  }
  EXPECT_DOUBLE_EQ(work, static_cast<double>(tree.size()));
  if (p > 1) {
    EXPECT_GT(sent, 0.0);
  } else {
    EXPECT_DOUBLE_EQ(sent, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistributedMatvecTest,
                         ::testing::Values(1, 2, 4, 7, 12), [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(ConjugateGradient, SolvesPoissonProblem) {
  const GlobalMesh mesh = make_mesh(CurveKind::kHilbert, 1200, 14);
  const std::size_t n = mesh.elements.size();
  // f = 1 source term scaled by cell volume.
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double h = static_cast<double>(mesh.elements[i].size()) /
                     static_cast<double>(1U << octree::kMaxDepth);
    b[i] = h * h * h;
  }
  std::vector<double> x;
  const CgResult result = conjugate_gradient(mesh, b, x, {2000, 1e-9});
  EXPECT_TRUE(result.converged) << "residual " << result.relative_residual;

  // Residual check against a fresh matvec.
  std::vector<double> ax(n);
  apply_global(mesh, x, ax);
  axpy(-1.0, b, ax);
  EXPECT_LT(norm2(ax) / norm2(b), 1e-8);

  // Physics sanity: solution of -lap u = 1 with u=0 walls is positive and
  // peaks away from the boundary.
  double max_u = 0.0;
  for (const double v : x) {
    EXPECT_GT(v, -1e-12);
    max_u = std::max(max_u, v);
  }
  EXPECT_GT(max_u, 0.0);
}

TEST(VarCoef, ReducesToConstantCoefficientAtKappaOne) {
  const GlobalMesh mesh = make_mesh(CurveKind::kHilbert, 700, 31);
  const std::size_t n = mesh.elements.size();
  const std::vector<double> kappa(n, 1.0);
  const auto u = random_vector(n, 50);
  std::vector<double> a(n);
  std::vector<double> b(n);
  apply_global(mesh, u, a);
  apply_global_varcoef(mesh, kappa, u, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12 * (std::abs(a[i]) + 1.0));
  }
}

TEST(VarCoef, StaysSymmetricPositiveDefinite) {
  const GlobalMesh mesh = make_mesh(CurveKind::kMorton, 600, 33);
  const std::size_t n = mesh.elements.size();
  // Two-layer medium: kappa jumps by 1000x across x = 0.5.
  std::vector<double> kappa(n);
  for (std::size_t i = 0; i < n; ++i) {
    kappa[i] = mesh.elements[i].anchor_unit()[0] < 0.5 ? 1.0 : 1000.0;
  }
  const auto u = random_vector(n, 51);
  const auto v = random_vector(n, 52);
  std::vector<double> lu(n);
  std::vector<double> lv(n);
  apply_global_varcoef(mesh, kappa, u, lu);
  apply_global_varcoef(mesh, kappa, v, lv);
  EXPECT_NEAR(dot(lu, v), dot(u, lv), 1e-9 * std::abs(dot(lu, v)) + 1e-9);
  EXPECT_GT(dot(u, lu), 0.0);
}

TEST(OperatorDiagonal, MatchesUnitVectorProbes) {
  const GlobalMesh mesh = make_mesh(CurveKind::kHilbert, 300, 35);
  const std::size_t n = mesh.elements.size();
  const auto diag = operator_diagonal(mesh);
  std::vector<double> e(n, 0.0);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < std::min<std::size_t>(n, 40); ++i) {
    e[i] = 1.0;
    apply_global(mesh, e, out);
    EXPECT_NEAR(out[i], diag[i], 1e-12 * (std::abs(diag[i]) + 1.0)) << i;
    e[i] = 0.0;
  }
}

TEST(PreconditionedCg, ConvergesFasterOnGradedMesh) {
  // A strongly graded mesh gives the plain operator a wide diagonal
  // spread; Jacobi scaling must converge in no more iterations.
  const Curve curve(CurveKind::kHilbert, 3);
  octree::GenerateOptions options;
  options.seed = 40;
  options.max_level = 8;
  options.max_points_per_leaf = 1;
  options.distribution = octree::PointDistribution::kLogNormal;
  auto tree = octree::balance_octree(octree::random_octree(1500, curve, options), curve);
  const GlobalMesh mesh = mesh::build_global_mesh(std::move(tree), curve);

  const std::size_t n = mesh.elements.size();
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double h = static_cast<double>(mesh.elements[i].size()) /
                     static_cast<double>(1U << octree::kMaxDepth);
    b[i] = h * h * h;
  }

  std::vector<double> x_plain;
  std::vector<double> x_pcg;
  const CgResult plain = conjugate_gradient(mesh, b, x_plain, {4000, 1e-9});
  const CgResult pcg = preconditioned_conjugate_gradient(mesh, b, x_pcg, {4000, 1e-9});
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(pcg.converged);
  EXPECT_LE(pcg.iterations, plain.iterations);

  // Same solution.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_pcg[i], x_plain[i], 1e-5 * (std::abs(x_plain[i]) + 1e-8));
  }
}

TEST(ConjugateGradient, ZeroRhsGivesZeroSolution) {
  const GlobalMesh mesh = make_mesh(CurveKind::kMorton, 300, 15);
  std::vector<double> b(mesh.elements.size(), 0.0);
  std::vector<double> x;
  const CgResult result = conjugate_gradient(mesh, b, x);
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(norm2(x), 0.0);
}

TEST(TwoDimensional, PoissonOnQuadtree) {
  // The whole mesh+FEM stack works on 2D quadtrees (z = 0, 4 faces).
  const Curve curve(CurveKind::kHilbert, 2);
  octree::GenerateOptions options;
  options.dim = 2;
  options.seed = 61;
  options.max_level = 7;
  options.distribution = octree::PointDistribution::kNormal;
  auto tree = octree::balance_octree(octree::random_octree(1500, curve, options), curve);
  const GlobalMesh mesh = mesh::build_global_mesh(std::move(tree), curve);

  // Structure: interior faces pair cells; each cell has 4 sides in total.
  EXPECT_GT(mesh.faces.size(), 0U);
  EXPECT_GT(mesh.boundary_faces.size(), 0U);

  const std::size_t n = mesh.elements.size();
  const auto u = random_vector(n, 70);
  const auto v = random_vector(n, 71);
  std::vector<double> lu(n);
  std::vector<double> lv(n);
  apply_global(mesh, u, lu);
  apply_global(mesh, v, lv);
  EXPECT_NEAR(dot(lu, v), dot(u, lv), 1e-9 * std::abs(dot(lu, v)) + 1e-12);
  EXPECT_GT(dot(u, lu), 0.0);

  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double h = static_cast<double>(mesh.elements[i].size()) /
                     static_cast<double>(1U << octree::kMaxDepth);
    b[i] = h * h;
  }
  std::vector<double> x;
  const CgResult result = conjugate_gradient(mesh, b, x, {3000, 1e-8});
  EXPECT_TRUE(result.converged);
  for (const double value : x) EXPECT_GT(value, -1e-12);
}

TEST(TwoDimensional, DistributedMatvecMatchesGlobal) {
  const Curve curve(CurveKind::kMorton, 2);
  octree::GenerateOptions options;
  options.dim = 2;
  options.seed = 62;
  options.max_level = 7;
  auto tree = octree::balance_octree(octree::random_octree(1000, curve, options), curve);
  const GlobalMesh global = mesh::build_global_mesh(tree, curve);
  const auto locals =
      mesh::build_local_meshes(tree, curve, ideal_partition(tree.size(), 4));
  const DistributedLaplacian dist(locals);

  const auto u = random_vector(tree.size(), 80);
  std::vector<double> expected(u.size());
  apply_global(global, u, expected);
  auto pieces = dist.scatter(u);
  std::vector<std::vector<double>> out;
  dist.matvec(pieces, out);
  const auto actual = dist.gather(out);
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-9 * (std::abs(expected[i]) + 1.0));
  }
}

TEST(ConjugateGradient, IterationCapRespected) {
  const GlobalMesh mesh = make_mesh(CurveKind::kHilbert, 2000, 16);
  std::vector<double> b(mesh.elements.size(), 1.0);
  std::vector<double> x;
  const CgResult result = conjugate_gradient(mesh, b, x, {3, 1e-16});
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 3);
}

}  // namespace
}  // namespace amr::fem
