// Distributed mesh construction tests: the two-round ghost-discovery
// protocol must reproduce the sequential engine's LocalMesh exactly --
// elements, ghosts, owners, global indices, matched channels, and faces
// (as multisets) -- and the resulting matvec must equal the global one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "fem/laplacian.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "partition/partition.hpp"
#include "simmpi/dist_fem.hpp"
#include "simmpi/dist_mesh.hpp"
#include "simmpi/runtime.hpp"

namespace amr::simmpi {
namespace {

using mesh::LocalMesh;
using octree::Octant;
using sfc::Curve;
using sfc::CurveKind;

struct MeshSetup {
  std::vector<Octant> tree;
  partition::Partition part;
  std::vector<Octant> keys;
  std::vector<LocalMesh> reference;
};

MeshSetup make_setup(CurveKind kind, std::size_t points, int p, std::uint64_t seed) {
  const Curve curve(kind, 3);
  octree::GenerateOptions options;
  options.seed = seed;
  options.max_level = 7;
  options.max_points_per_leaf = 2;
  options.distribution = octree::PointDistribution::kNormal;
  MeshSetup s;
  s.tree = octree::balance_octree(octree::random_octree(points, curve, options), curve);
  s.part = partition::ideal_partition(s.tree.size(), p);
  s.keys = partition::splitter_keys(s.tree, s.part);
  s.reference = mesh::build_local_meshes(s.tree, curve, s.part);
  return s;
}

std::vector<LocalMesh> build_distributed(const MeshSetup& s, CurveKind kind, int p) {
  const Curve curve(kind, 3);
  std::vector<LocalMesh> meshes(static_cast<std::size_t>(p));
  run_ranks(p, [&](Comm& comm) {
    const std::size_t begin = s.part.offsets[static_cast<std::size_t>(comm.rank())];
    const std::size_t end = s.part.offsets[static_cast<std::size_t>(comm.rank()) + 1];
    const std::vector<Octant> local(s.tree.begin() + static_cast<std::ptrdiff_t>(begin),
                                    s.tree.begin() + static_cast<std::ptrdiff_t>(end));
    meshes[static_cast<std::size_t>(comm.rank())] =
        dist_build_local_mesh(local, s.keys, comm, curve);
  });
  return meshes;
}

using FaceTuple = std::tuple<std::uint32_t, std::uint32_t, bool, double, double>;

std::vector<FaceTuple> face_multiset(const LocalMesh& m) {
  std::vector<FaceTuple> faces;
  for (const mesh::Face& f : m.faces) {
    auto a = f.a;
    auto b = f.b;
    if (!f.b_is_ghost && a > b) std::swap(a, b);
    faces.emplace_back(a, b, f.b_is_ghost, f.area, f.dist);
  }
  std::sort(faces.begin(), faces.end());
  return faces;
}

class DistMeshTest : public ::testing::TestWithParam<std::tuple<CurveKind, int>> {};

TEST_P(DistMeshTest, MatchesSequentialConstruction) {
  const auto [kind, p] = GetParam();
  const MeshSetup s = make_setup(kind, 2500, p, 400 + static_cast<std::uint64_t>(p));
  const auto distributed = build_distributed(s, kind, p);

  for (int r = 0; r < p; ++r) {
    const LocalMesh& got = distributed[static_cast<std::size_t>(r)];
    const LocalMesh& want = s.reference[static_cast<std::size_t>(r)];
    SCOPED_TRACE("rank " + std::to_string(r));

    EXPECT_EQ(got.global_begin, want.global_begin);
    EXPECT_EQ(got.elements, want.elements);
    EXPECT_EQ(got.ghosts, want.ghosts);
    EXPECT_EQ(got.ghost_owner, want.ghost_owner);
    EXPECT_EQ(got.ghost_global, want.ghost_global);
    EXPECT_EQ(got.peers, want.peers);
    EXPECT_EQ(got.send_lists, want.send_lists);
    EXPECT_EQ(got.recv_lists, want.recv_lists);
    EXPECT_EQ(face_multiset(got), face_multiset(want));
    EXPECT_EQ(got.boundary_faces.size(), want.boundary_faces.size());

    // The overlap split depends only on element/ghost adjacency, not on
    // face order, so both constructions must classify elements the same
    // way even though their face lists may be permuted.
    ASSERT_TRUE(got.has_overlap_split());
    ASSERT_TRUE(want.has_overlap_split());
    EXPECT_EQ(got.interior_elements, want.interior_elements);
    EXPECT_EQ(got.boundary_elements, want.boundary_elements);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistMeshTest,
    ::testing::Combine(::testing::Values(CurveKind::kMorton, CurveKind::kHilbert),
                       ::testing::Values(2, 5, 8)),
    [](const auto& info) {
      return sfc::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST(DistMesh, MatvecOnDistributedMeshMatchesGlobal) {
  const int p = 6;
  const Curve curve(CurveKind::kHilbert, 3);
  const MeshSetup s = make_setup(CurveKind::kHilbert, 2000, p, 900);
  const auto meshes = build_distributed(s, CurveKind::kHilbert, p);

  std::vector<double> u0(s.tree.size());
  for (std::size_t i = 0; i < u0.size(); ++i) u0[i] = std::cos(0.01 * static_cast<double>(i));

  const mesh::GlobalMesh global = mesh::build_global_mesh(s.tree, curve);
  std::vector<double> expected(u0.size());
  fem::apply_global(global, u0, expected);

  std::vector<std::vector<double>> pieces(static_cast<std::size_t>(p));
  run_ranks(p, [&](Comm& comm) {
    const LocalMesh& m = meshes[static_cast<std::size_t>(comm.rank())];
    std::vector<double> u(u0.begin() + static_cast<std::ptrdiff_t>(m.global_begin),
                          u0.begin() + static_cast<std::ptrdiff_t>(m.global_begin +
                                                                   m.elements.size()));
    dist_matvec_loop(m, comm, 1, u);
    pieces[static_cast<std::size_t>(comm.rank())] = std::move(u);
  });

  std::vector<double> actual;
  for (const auto& piece : pieces) actual.insert(actual.end(), piece.begin(), piece.end());
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-9 * (std::abs(expected[i]) + 1.0)) << i;
  }
}

TEST(DistMesh, ReportCountsAreConsistent) {
  const int p = 4;
  const Curve curve(CurveKind::kMorton, 3);
  const MeshSetup s = make_setup(CurveKind::kMorton, 1500, p, 1234);
  std::vector<DistMeshReport> reports(static_cast<std::size_t>(p));
  std::vector<LocalMesh> meshes(static_cast<std::size_t>(p));
  run_ranks(p, [&](Comm& comm) {
    const std::size_t begin = s.part.offsets[static_cast<std::size_t>(comm.rank())];
    const std::size_t end = s.part.offsets[static_cast<std::size_t>(comm.rank()) + 1];
    const std::vector<Octant> local(s.tree.begin() + static_cast<std::ptrdiff_t>(begin),
                                    s.tree.begin() + static_cast<std::ptrdiff_t>(end));
    meshes[static_cast<std::size_t>(comm.rank())] = dist_build_local_mesh(
        local, s.keys, comm, curve, &reports[static_cast<std::size_t>(comm.rank())]);
  });
  std::size_t sent = 0;
  std::size_t received = 0;
  for (const auto& report : reports) {
    sent += report.candidates_sent;
    received += report.candidates_received;
    EXPECT_LE(report.ghosts_kept, report.candidates_received);
  }
  EXPECT_EQ(sent, received);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(reports[static_cast<std::size_t>(r)].ghosts_kept,
              meshes[static_cast<std::size_t>(r)].ghosts.size());
  }
}

}  // namespace
}  // namespace amr::simmpi
