// OptiPart (Alg. 3) tests: the model-chosen partition must never predict
// worse than the ideal split, must adapt to the machine (comm-bound
// machines accept more imbalance), and the trace must show the refinement
// approaching the optimum from the right (Fig. 10).
#include <gtest/gtest.h>

#include "machine/perf_model.hpp"
#include "octree/generate.hpp"
#include "partition/optipart.hpp"

namespace amr::partition {
namespace {

using machine::ApplicationProfile;
using machine::MachineModel;
using machine::PerfModel;
using sfc::Curve;
using sfc::CurveKind;

std::vector<octree::Octant> adaptive_tree(CurveKind kind, std::size_t points,
                                          std::uint64_t seed) {
  const Curve curve(kind, 3);
  octree::GenerateOptions options;
  options.seed = seed;
  options.max_level = 9;
  options.max_points_per_leaf = 1;
  options.distribution = octree::PointDistribution::kNormal;
  return octree::random_octree(points, curve, options);
}

TEST(OptiPart, NeverWorseThanIdealUnderTheModel) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = adaptive_tree(CurveKind::kHilbert, 20000, 3);
  const int p = 16;
  for (const MachineModel& machine : machine::all_machines()) {
    const PerfModel model(machine, ApplicationProfile{});
    const Partition opti = optipart_partition(tree, curve, p, model);
    const Partition ideal = ideal_partition(tree.size(), p);
    EXPECT_LE(partition_quality(tree, curve, opti, model),
              partition_quality(tree, curve, ideal, model) * (1.0 + 1e-9))
        << machine.name;
  }
}

TEST(OptiPart, CommBoundMachineAcceptsMoreImbalance) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = adaptive_tree(CurveKind::kHilbert, 20000, 7);
  const int p = 16;

  // Same application, two machines: a compute-bound one (tw ~ tc) and a
  // heavily comm-bound one. The comm-bound machine's optimal partition
  // tolerates at least as much load imbalance.
  MachineModel balanced = machine::titan();
  balanced.tw = balanced.tc * 2.0;
  MachineModel commbound = machine::titan();
  commbound.tw = commbound.tc * 2000.0;

  const Partition a =
      optipart_partition(tree, curve, p, PerfModel(balanced, ApplicationProfile{}));
  const Partition b =
      optipart_partition(tree, curve, p, PerfModel(commbound, ApplicationProfile{}));
  EXPECT_LE(a.load_imbalance(), b.load_imbalance() + 1e-9);
}

TEST(OptiPart, ComputeBoundMachineConvergesToIdeal) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = adaptive_tree(CurveKind::kMorton, 15000, 11);
  MachineModel machine = machine::titan();
  machine.tw = machine.tc * 1e-3;  // network essentially free
  const PerfModel model(machine, ApplicationProfile{});
  const Partition part = optipart_partition(tree, curve, 8, model);
  EXPECT_LT(part.max_deviation(), 0.05);
}

TEST(OptiPart, TraceApproachesOptimumFromTheRight) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = adaptive_tree(CurveKind::kHilbert, 25000, 13);
  const PerfModel model(machine::wisconsin8(), ApplicationProfile{});

  OptiPartTrace trace;
  const Partition part = optipart_partition(tree, curve, 16, model, {}, &trace);
  ASSERT_GE(trace.rounds.size(), 2U);

  // Effective tolerance decreases (refinement), Wmax decreases, Cmax does
  // not decrease (Fig. 2's monotone trade-off along the rounds).
  for (std::size_t i = 1; i < trace.rounds.size(); ++i) {
    EXPECT_LE(trace.rounds[i].effective_tolerance,
              trace.rounds[i - 1].effective_tolerance + 1e-9);
    EXPECT_LE(trace.rounds[i].w_max, trace.rounds[i - 1].w_max + 1e-9);
  }
  // The chosen depth minimizes the model estimate over the trace.
  double best = trace.rounds.front().predicted_time;
  for (const auto& round : trace.rounds) best = std::min(best, round.predicted_time);
  const Metrics chosen = compute_metrics(tree, curve, part, {});
  EXPECT_NEAR(chosen.predicted_time(model), best, best * 1e-9);
}

TEST(OptiPart, WorksForBothCurvesAndSmallP) {
  for (const auto kind : {CurveKind::kMorton, CurveKind::kHilbert}) {
    const Curve curve(kind, 3);
    const auto tree = adaptive_tree(kind, 8000, 17);
    const PerfModel model(machine::clemson32(), ApplicationProfile{});
    for (const int p : {2, 3, 8}) {
      const Partition part = optipart_partition(tree, curve, p, model);
      EXPECT_EQ(part.num_ranks(), p);
      EXPECT_EQ(part.total(), tree.size());
    }
  }
}

TEST(OptiPart, QualitySampleStrideStillReasonable) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = adaptive_tree(CurveKind::kHilbert, 20000, 19);
  const PerfModel model(machine::wisconsin8(), ApplicationProfile{});
  OptiPartOptions options;
  options.quality_sample_stride = 4;
  const Partition sampled = optipart_partition(tree, curve, 16, model, options);
  const Partition exact = optipart_partition(tree, curve, 16, model, {});
  // The estimator may pick a neighboring depth, but the resulting quality
  // must be in the same ballpark.
  const double q_sampled = partition_quality(tree, curve, sampled, model);
  const double q_exact = partition_quality(tree, curve, exact, model);
  EXPECT_LE(q_sampled, q_exact * 1.5);
}

}  // namespace
}  // namespace amr::partition
