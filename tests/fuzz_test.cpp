// Fuzz-harness tests: the case-spec round trip, oracle sensitivity (every
// oracle must actually detect the violation it claims to), the shipped
// seed corpus, and the pinned regression corpus files under
// tests/corpus/*.case (path baked in via AMR_FUZZ_CORPUS_DIR).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fuzz/harness.hpp"
#include "octree/treesort.hpp"

namespace amr::fuzz {
namespace {

using octree::Octant;

TEST(CaseSpec, RoundTripsThroughString) {
  util::Rng rng = util::make_rng(2024);
  for (int i = 0; i < 50; ++i) {
    const CaseSpec spec = random_case(rng);
    const auto parsed = case_from_string(to_string(spec));
    ASSERT_TRUE(parsed.has_value()) << to_string(spec);
    EXPECT_EQ(to_string(*parsed), to_string(spec));
  }
}

TEST(CaseSpec, ParserRejectsMalformedLines) {
  EXPECT_FALSE(case_from_string("").has_value());
  EXPECT_FALSE(case_from_string("   # just a comment").has_value());
  EXPECT_FALSE(case_from_string("curve=klein dim=3").has_value());
  EXPECT_FALSE(case_from_string("shape=moebius").has_value());
  EXPECT_FALSE(case_from_string("dim=4 p=2").has_value());
  EXPECT_FALSE(case_from_string("p=0").has_value());
  EXPECT_FALSE(case_from_string("p=9999").has_value());
  EXPECT_FALSE(case_from_string("frobnicate=1").has_value());
  EXPECT_FALSE(case_from_string("p").has_value());
  EXPECT_FALSE(case_from_string("n=abc").has_value());
  // Trailing comments on a valid line are fine.
  EXPECT_TRUE(case_from_string("p=4 shape=uniform # pinned").has_value());
}

TEST(Generators, ShapesHaveTheirAdvertisedStructure) {
  CaseSpec spec;
  spec.ranks = 4;
  spec.elements_per_rank = 100;

  spec.shape = InputShape::kSingleRankEmpty;
  auto inputs = make_inputs(spec);
  EXPECT_TRUE(inputs[0].empty());
  EXPECT_FALSE(inputs[1].empty());

  spec.shape = InputShape::kAllOnOneRank;
  inputs = make_inputs(spec);
  EXPECT_TRUE(inputs[0].empty());
  EXPECT_EQ(inputs[3].size(), 400U);

  spec.shape = InputShape::kIdenticalRanks;
  inputs = make_inputs(spec);
  EXPECT_EQ(inputs[0], inputs[3]);

  spec.shape = InputShape::kDuplicateHeavy;
  spec.seed = 3;  // pool of 1 + 3 % 3 = 1 distinct octant
  inputs = make_inputs(spec);
  for (const auto& piece : inputs) {
    for (const Octant& o : piece) EXPECT_EQ(o, inputs[0][0]);
  }

  spec.shape = InputShape::kBalancedTree;
  spec.seed = 5;
  inputs = make_inputs(spec);
  const sfc::Curve curve(spec.curve, spec.dim);
  const auto whole = sorted_union(inputs, curve);
  EXPECT_TRUE(octree::is_complete(whole, curve));
}

TEST(Oracles, DetectTheViolationsTheyClaimTo) {
  // An oracle that never fires is worse than none. Feed each one a
  // minimally broken input and require a failure report.
  const sfc::Curve curve(sfc::CurveKind::kHilbert, 3);
  CaseSpec spec;
  spec.ranks = 2;
  spec.elements_per_rank = 50;
  const auto inputs = make_inputs(spec);
  const auto reference = sorted_union(inputs, curve);

  {  // dropped element
    auto outputs = inputs;
    outputs[0].pop_back();
    OracleResult r;
    check_conservation(inputs, outputs, r);
    EXPECT_FALSE(r.ok());
  }
  {  // swapped elements break the differential check
    std::vector<std::vector<Octant>> outputs(2);
    outputs[0].assign(reference.begin(), reference.begin() + 50);
    outputs[1].assign(reference.begin() + 50, reference.end());
    std::swap(outputs[0].front(), outputs[1].back());
    OracleResult r;
    check_matches_sequential(outputs, reference, curve, r);
    EXPECT_FALSE(r.ok());
  }
  {  // malformed partition offsets
    partition::Partition part;
    part.offsets = {0, 60, 50, 100};
    OracleResult r;
    check_partition_offsets(part, 100, r);
    EXPECT_FALSE(r.ok());
  }
  {  // optipart trace claiming a worse-than-baseline choice
    simmpi::DistOptiPartTrace trace;
    trace.rounds.push_back({0, 10.0, 1.0, 5.0});
    trace.rounds.push_back({1, 8.0, 2.0, 4.0});
    trace.chosen_time = 5.0;  // should be 4.0
    OracleResult r;
    check_optipart_trace(trace, r);
    EXPECT_FALSE(r.ok());
  }
  {  // splitter set with non-monotone codes (the pre-fix defect)
    simmpi::SplitterSet s;
    s.keys = {octree::root_octant(), reference[20], reference[10]};
    s.infinite = {0, 0, 0};
    s.cuts = {0, 10, 20, reference.size()};
    s.codes = {sfc::CurveKey{0}, sfc::curve_key(curve, reference[20]),
               sfc::curve_key(curve, reference[10])};
    std::vector<std::vector<Octant>> outputs(3);
    OracleResult r;
    check_splitters(s, reference, outputs, curve, r);
    EXPECT_FALSE(r.ok());
  }
}

TEST(Harness, SeedCorpusIsGreen) {
  for (const CaseSpec& spec : seed_corpus()) {
    const CaseResult result = run_case(spec);
    EXPECT_TRUE(result.ok()) << "FUZZ-FAIL: " << to_string(spec) << "\n"
                             << result.oracles.summary();
    EXPECT_GT(result.total_elements, 0U);
  }
}

TEST(Harness, PinnedCorpusFilesAreGreen) {
  // The same files fuzz_dist --corpus runs in CI; failing them from the
  // unit suite keeps the reproducers honest even without the tool.
  const std::filesystem::path dir = AMR_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  int cases = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".case") continue;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      const auto spec = case_from_string(line);
      if (!spec.has_value()) {
        // Must be a comment/blank line, not a typo silently skipped.
        const std::size_t hash = line.find('#');
        const std::string body =
            hash == std::string::npos ? line : line.substr(0, hash);
        EXPECT_EQ(body.find_first_not_of(" \t\r"), std::string::npos)
            << entry.path() << ": unparseable non-comment line: " << line;
        continue;
      }
      ++cases;
      const CaseResult result = run_case(*spec);
      EXPECT_TRUE(result.ok()) << "FUZZ-FAIL: " << to_string(*spec) << "\n"
                               << result.oracles.summary();
    }
  }
  EXPECT_GE(cases, 10) << "corpus unexpectedly small";
}

TEST(Harness, PerturbedCaseMatchesUnperturbed) {
  // Schedule perturbation must never change the result, only the timing.
  CaseSpec spec;
  spec.ranks = 4;
  spec.elements_per_rank = 200;
  spec.shape = InputShape::kRandomOctants;
  spec.seed = 321;
  const CaseResult calm = run_case(spec);
  spec.perturb_seed = 777;
  const CaseResult shaken = run_case(spec);
  EXPECT_TRUE(calm.ok()) << calm.oracles.summary();
  EXPECT_TRUE(shaken.ok()) << shaken.oracles.summary();
  EXPECT_EQ(calm.total_elements, shaken.total_elements);
}

}  // namespace
}  // namespace amr::fuzz
