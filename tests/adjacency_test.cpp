// Adjacency (CSR neighbor cache) tests: equivalence with the direct
// search-based metrics and communication matrices for arbitrary
// partitions, which the sweep benches rely on.
#include <gtest/gtest.h>

#include "mesh/adjacency.hpp"
#include "octree/generate.hpp"
#include "octree/search.hpp"
#include "partition/optipart.hpp"

namespace amr::mesh {
namespace {

using partition::Partition;
using sfc::Curve;
using sfc::CurveKind;

std::vector<octree::Octant> make_tree(CurveKind kind, std::size_t points,
                                      std::uint64_t seed) {
  const Curve curve(kind, 3);
  octree::GenerateOptions options;
  options.seed = seed;
  options.max_level = 8;
  options.max_points_per_leaf = 2;
  options.distribution = octree::PointDistribution::kNormal;
  return octree::random_octree(points, curve, options);
}

TEST(Adjacency, MatchesDirectNeighborSearch) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = make_tree(CurveKind::kHilbert, 3000, 5);
  const Adjacency adjacency = build_adjacency(tree, curve);
  ASSERT_EQ(adjacency.num_elements(), tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto expected = octree::all_face_neighbors(tree, curve, i);
    const auto got = adjacency.neighbors_of(i);
    ASSERT_EQ(got.size(), expected.size()) << "element " << i;
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_EQ(static_cast<std::size_t>(got[k]), expected[k]);
    }
  }
}

class AdjacencyEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<CurveKind, int, double>> {};

TEST_P(AdjacencyEquivalenceTest, MetricsAndCommMatrixMatchDirectPath) {
  const auto [kind, p, tolerance] = GetParam();
  const Curve curve(kind, 3);
  const auto tree = make_tree(kind, 6000, 17);
  partition::TreeSortPartitionOptions options;
  options.tolerance = tolerance;
  const Partition part = partition::treesort_partition(tree, curve, p, options);

  const Adjacency adjacency = build_adjacency(tree, curve);
  const auto m_fast = metrics_from_adjacency(adjacency, part);
  const auto m_direct = partition::compute_metrics(tree, curve, part);
  EXPECT_EQ(m_fast.work, m_direct.work);
  EXPECT_EQ(m_fast.boundary, m_direct.boundary);
  EXPECT_EQ(m_fast.degree, m_direct.degree);
  EXPECT_DOUBLE_EQ(m_fast.c_max, m_direct.c_max);
  EXPECT_DOUBLE_EQ(m_fast.m_max, m_direct.m_max);
  EXPECT_DOUBLE_EQ(m_fast.load_imbalance, m_direct.load_imbalance);

  const auto c_fast = comm_matrix_from_adjacency(adjacency, part);
  const auto c_direct = build_comm_matrix(tree, curve, part);
  EXPECT_EQ(c_fast.entries(), c_direct.entries());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdjacencyEquivalenceTest,
    ::testing::Combine(::testing::Values(CurveKind::kMorton, CurveKind::kHilbert),
                       ::testing::Values(4, 16, 64),
                       ::testing::Values(0.0, 0.3)),
    [](const auto& info) {
      return sfc::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_tol" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 10));
    });

TEST(Adjacency, DegreeConsistentWithCommMatrix) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = make_tree(CurveKind::kHilbert, 4000, 9);
  const Partition part = partition::ideal_partition(tree.size(), 8);
  const Adjacency adjacency = build_adjacency(tree, curve);
  const auto metrics = metrics_from_adjacency(adjacency, part);
  const auto comm = comm_matrix_from_adjacency(adjacency, part);
  // A rank's degree (distinct remote owners of its neighbors) equals its
  // number of receive partners in M.
  for (int r = 0; r < 8; ++r) {
    int recv_partners = 0;
    for (const auto& [key, count] : comm.entries()) {
      if (key.first == r) ++recv_partners;
    }
    EXPECT_DOUBLE_EQ(metrics.degree[static_cast<std::size_t>(r)], recv_partners);
  }
}

TEST(LatencyExtension, AddsTsTimesPeers) {
  machine::MachineModel machine = machine::wisconsin8();
  machine::ApplicationProfile plain;
  machine::ApplicationProfile extended;
  extended.include_latency_term = true;
  const machine::PerfModel a(machine, plain);
  const machine::PerfModel b(machine, extended);
  EXPECT_DOUBLE_EQ(a.application_time(100.0, 10.0, 6.0),
                   a.application_time(100.0, 10.0));
  EXPECT_DOUBLE_EQ(b.application_time(100.0, 10.0, 6.0),
                   a.application_time(100.0, 10.0) + machine.ts * 6.0);
}

TEST(LatencyExtension, NeverChoosesWorseSimulatedPartition) {
  const Curve curve(CurveKind::kHilbert, 3);
  const auto tree = make_tree(CurveKind::kHilbert, 8000, 21);
  const int p = 32;
  const Adjacency adjacency = build_adjacency(tree, curve);

  machine::ApplicationProfile extended;
  extended.include_latency_term = true;
  const machine::PerfModel model(machine::wisconsin8(), extended);
  const auto part = partition::optipart_partition(tree, curve, p, model);
  const auto metrics = metrics_from_adjacency(adjacency, part);
  const auto ideal_metrics =
      metrics_from_adjacency(adjacency, partition::ideal_partition(tree.size(), p));
  EXPECT_LE(metrics.predicted_time(model),
            ideal_metrics.predicted_time(model) * (1.0 + 1e-9));
}

}  // namespace
}  // namespace amr::mesh
