// Octree generation tests: the built trees must be complete, linear,
// curve-ordered, adaptive (deeper where points cluster) and reproducible.
#include <gtest/gtest.h>

#include <algorithm>

#include "octree/generate.hpp"
#include "octree/treesort.hpp"

namespace amr::octree {
namespace {

using sfc::Curve;
using sfc::CurveKind;

struct GenCase {
  PointDistribution dist;
  CurveKind kind;
};

class GenerateTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GenerateTest, ProducesCompleteLinearSortedOctree) {
  const auto [dist, kind] = GetParam();
  const Curve curve(kind, 3);
  GenerateOptions options;
  options.distribution = dist;
  options.seed = 1234;
  options.max_level = 12;
  options.max_points_per_leaf = 4;

  const auto tree = random_octree(5000, curve, options);
  EXPECT_GT(tree.size(), 100U);
  EXPECT_TRUE(is_sfc_sorted(tree, curve));
  EXPECT_TRUE(is_linear(tree, curve));
  EXPECT_TRUE(is_complete(tree, curve));
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, GenerateTest,
    ::testing::Values(GenCase{PointDistribution::kUniform, CurveKind::kMorton},
                      GenCase{PointDistribution::kNormal, CurveKind::kMorton},
                      GenCase{PointDistribution::kLogNormal, CurveKind::kMorton},
                      GenCase{PointDistribution::kUniform, CurveKind::kHilbert},
                      GenCase{PointDistribution::kNormal, CurveKind::kHilbert},
                      GenCase{PointDistribution::kLogNormal, CurveKind::kHilbert}),
    [](const auto& info) {
      return to_string(info.param.dist) + "_" + sfc::to_string(info.param.kind);
    });

TEST(Generate, DeterministicForFixedSeed) {
  const Curve curve(CurveKind::kHilbert, 3);
  GenerateOptions options;
  options.seed = 99;
  const auto a = random_octree(2000, curve, options);
  const auto b = random_octree(2000, curve, options);
  EXPECT_EQ(a, b);
  options.seed = 100;
  const auto c = random_octree(2000, curve, options);
  EXPECT_NE(a, c);
}

TEST(Generate, NormalDistributionRefinesCenter) {
  const Curve curve(CurveKind::kMorton, 3);
  GenerateOptions options;
  options.distribution = PointDistribution::kNormal;
  options.max_level = 10;
  options.max_points_per_leaf = 2;
  const auto tree = random_octree(20000, curve, options);

  // Leaves near the center must be finer (deeper) on average than near the
  // corner: adaptivity follows the density.
  double center_level = 0.0;
  double corner_level = 0.0;
  int center_count = 0;
  int corner_count = 0;
  for (const Octant& o : tree) {
    const auto a = o.anchor_unit();
    const double d =
        std::abs(a[0] - 0.5) + std::abs(a[1] - 0.5) + std::abs(a[2] - 0.5);
    if (d < 0.2) {
      center_level += o.level;
      ++center_count;
    } else if (d > 1.0) {
      corner_level += o.level;
      ++corner_count;
    }
  }
  ASSERT_GT(center_count, 0);
  ASSERT_GT(corner_count, 0);
  EXPECT_GT(center_level / center_count, corner_level / corner_count + 1.0);
}

TEST(Generate, MaxLevelRespected) {
  const Curve curve(CurveKind::kMorton, 3);
  GenerateOptions options;
  options.max_level = 6;
  options.max_points_per_leaf = 1;
  const auto tree = random_octree(10000, curve, options);
  for (const Octant& o : tree) EXPECT_LE(o.level, 6);
}

TEST(Generate, PointsAreQuantizedInDomain) {
  GenerateOptions options;
  options.distribution = PointDistribution::kLogNormal;
  const auto points = generate_points(5000, options);
  EXPECT_EQ(points.size(), 5000U);
  for (const auto& p : points) {
    EXPECT_LT(p[0], 1U << kMaxDepth);
    EXPECT_LT(p[1], 1U << kMaxDepth);
    EXPECT_LT(p[2], 1U << kMaxDepth);
  }
}

TEST(Generate, UniformOctreeHasPowerOf8Leaves) {
  const Curve curve(CurveKind::kHilbert, 3);
  for (int level = 0; level <= 3; ++level) {
    const auto tree = uniform_octree(level, curve);
    EXPECT_EQ(tree.size(), static_cast<std::size_t>(1) << (3 * level));
    EXPECT_TRUE(is_complete(tree, curve));
  }
}

TEST(Generate, UniformQuadtree2d) {
  const Curve curve(CurveKind::kHilbert, 2);
  const auto tree = uniform_octree(3, curve);
  EXPECT_EQ(tree.size(), 64U);
  EXPECT_TRUE(is_sfc_sorted(tree, curve));
  EXPECT_TRUE(is_complete(tree, curve));
}

TEST(Generate, EmptyPointSetYieldsRootLeaf) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = build_octree({}, curve, GenerateOptions{});
  ASSERT_EQ(tree.size(), 1U);
  EXPECT_EQ(tree[0], root_octant());
}

TEST(Generate, DistributionNamesRoundTrip) {
  for (const auto dist : {PointDistribution::kUniform, PointDistribution::kNormal,
                          PointDistribution::kLogNormal}) {
    EXPECT_EQ(distribution_from_string(to_string(dist)), dist);
  }
  EXPECT_THROW((void)distribution_from_string("cauchy"), std::invalid_argument);
}

}  // namespace
}  // namespace amr::octree
