// 2:1 balancing tests: the ripple refinement must produce a face-balanced,
// still complete and linear octree, only ever refining (never coarsening),
// and must be idempotent.
#include <gtest/gtest.h>

#include "octree/balance.hpp"
#include "octree/generate.hpp"
#include "octree/search.hpp"
#include "octree/treesort.hpp"

namespace amr::octree {
namespace {

using sfc::Curve;
using sfc::CurveKind;

class BalanceTest : public ::testing::TestWithParam<CurveKind> {};

TEST_P(BalanceTest, BalancesRandomAdaptiveTree) {
  const Curve curve(GetParam(), 3);
  GenerateOptions options;
  options.seed = 12;
  options.max_level = 9;
  options.max_points_per_leaf = 1;
  options.distribution = PointDistribution::kLogNormal;  // steep level jumps
  auto tree = random_octree(4000, curve, options);
  EXPECT_FALSE(is_face_balanced(tree, curve));  // log-normal clusters jump

  BalanceStats stats;
  const auto balanced = balance_octree(tree, curve, &stats);
  EXPECT_GT(stats.leaves_split, 0U);
  EXPECT_GE(balanced.size(), tree.size());
  EXPECT_TRUE(is_sfc_sorted(balanced, curve));
  EXPECT_TRUE(is_linear(balanced, curve));
  EXPECT_TRUE(is_complete(balanced, curve));
  EXPECT_TRUE(is_face_balanced(balanced, curve));
}

TEST_P(BalanceTest, IdempotentOnBalancedTree) {
  const Curve curve(GetParam(), 3);
  GenerateOptions options;
  options.seed = 21;
  options.max_level = 8;
  auto tree = random_octree(2000, curve, options);
  const auto once = balance_octree(tree, curve);
  BalanceStats stats;
  const auto twice = balance_octree(once, curve, &stats);
  EXPECT_EQ(stats.leaves_split, 0U);
  EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(BothCurves, BalanceTest,
                         ::testing::Values(CurveKind::kMorton, CurveKind::kHilbert),
                         [](const auto& info) { return sfc::to_string(info.param); });

TEST(Balance, UniformTreeIsAlreadyBalanced) {
  const Curve curve(CurveKind::kMorton, 3);
  const auto tree = uniform_octree(3, curve);
  BalanceStats stats;
  const auto balanced = balance_octree(tree, curve, &stats);
  EXPECT_EQ(stats.passes, 0);
  EXPECT_EQ(balanced, tree);
}

TEST(Balance, SingleRefinedBlockRipples) {
  // Refine one level-1 leaf uniformly to level 3 in an otherwise level-1
  // tree: its level-3 boundary cells touch level-1 leaves (jump of 2), so
  // balancing must refine the adjacent coarse leaves.
  const Curve curve(CurveKind::kMorton, 3);
  const auto coarse = uniform_octree(1, curve);
  std::vector<Octant> refined;
  const Octant target = coarse.front();  // origin octant under Morton
  for (const Octant& o : coarse) {
    if (o == target) continue;
    refined.push_back(o);
  }
  for (int c = 0; c < 8; ++c) {
    for (int cc = 0; cc < 8; ++cc) refined.push_back(target.child(c).child(cc));
  }
  tree_sort(refined, curve);
  ASSERT_TRUE(is_complete(refined, curve));
  ASSERT_FALSE(is_face_balanced(refined, curve));

  const auto balanced = balance_octree(refined, curve);
  EXPECT_TRUE(is_face_balanced(balanced, curve));
  EXPECT_TRUE(is_complete(balanced, curve));
  // Every level-3 cell of the refined block must survive (balancing never
  // coarsens), and the neighboring coarse leaves must now be level >= 2.
  for (int c = 0; c < 8; ++c) {
    for (int cc = 0; cc < 8; ++cc) {
      const Octant cell = target.child(c).child(cc);
      const std::size_t idx = leaf_containing(balanced, curve, cell.x, cell.y, cell.z);
      EXPECT_EQ(balanced[idx], cell);
    }
  }
}

TEST(Balance, NeverCoarsens) {
  const Curve curve(CurveKind::kHilbert, 3);
  GenerateOptions options;
  options.seed = 33;
  options.max_level = 8;
  options.distribution = PointDistribution::kNormal;
  const auto tree = random_octree(3000, curve, options);
  const auto balanced = balance_octree(tree, curve);
  // Every original leaf is present or was refined: the leaf containing each
  // original anchor is at least as deep.
  for (const Octant& o : tree) {
    const std::size_t idx = leaf_containing(balanced, curve, o.x, o.y, o.z);
    EXPECT_GE(balanced[idx].level, o.level);
  }
}

TEST(Balance, NeighborOffsetCounts) {
  EXPECT_EQ(neighbor_offsets(BalanceMode::kFace, 3).size(), 6U);
  EXPECT_EQ(neighbor_offsets(BalanceMode::kEdge, 3).size(), 18U);
  EXPECT_EQ(neighbor_offsets(BalanceMode::kFull, 3).size(), 26U);
  EXPECT_EQ(neighbor_offsets(BalanceMode::kFace, 2).size(), 4U);
  EXPECT_EQ(neighbor_offsets(BalanceMode::kEdge, 2).size(), 8U);
  EXPECT_EQ(neighbor_offsets(BalanceMode::kFull, 2).size(), 8U);
}

TEST(Balance, FullModeImpliesFaceMode) {
  const Curve curve(CurveKind::kHilbert, 3);
  GenerateOptions options;
  options.seed = 55;
  options.max_level = 8;
  options.max_points_per_leaf = 1;
  options.distribution = PointDistribution::kLogNormal;
  const auto tree = random_octree(3000, curve, options);

  const auto full = balance_octree(tree, curve, nullptr, BalanceMode::kFull);
  EXPECT_TRUE(is_balanced(full, curve, BalanceMode::kFull));
  EXPECT_TRUE(is_balanced(full, curve, BalanceMode::kEdge));
  EXPECT_TRUE(is_balanced(full, curve, BalanceMode::kFace));
  EXPECT_TRUE(is_face_balanced(full, curve));
  EXPECT_TRUE(is_complete(full, curve));

  // Full balance refines at least as much as face balance.
  const auto face = balance_octree(tree, curve, nullptr, BalanceMode::kFace);
  EXPECT_GE(full.size(), face.size());
}

TEST(Balance, FaceBalanceDoesNotImplyCornerBalance) {
  // Explicit edge-only violation (2D for clarity): the lower-left quadrant
  // A stays level 1; the two quadrants sharing its upper-right corner's
  // edges are refined to level 2 everywhere; the upper-right quadrant is
  // refined to level 3 at the corner touching A. Every *face* pair then
  // differs by <= 1 level, but the level-3 corner cell touches level-1 A
  // diagonally.
  const Curve curve(CurveKind::kMorton, 2);
  std::vector<Octant> tree;
  const Octant root = root_octant();
  tree.push_back(root.child(0, 2));  // A: lower-left at level 1
  for (const int q : {1, 2}) {       // lower-right, upper-left: level 2
    for (int c = 0; c < 4; ++c) tree.push_back(root.child(q, 2).child(c, 2));
  }
  const Octant q4 = root.child(3, 2);  // upper-right
  for (int c = 0; c < 4; ++c) {
    if (c == 0) {
      // The child at A's corner: refine once more (level 3).
      for (int cc = 0; cc < 4; ++cc) tree.push_back(q4.child(0, 2).child(cc, 2));
    } else {
      tree.push_back(q4.child(c, 2));
    }
  }
  tree_sort(tree, curve);
  ASSERT_TRUE(is_complete(tree, curve));
  ASSERT_TRUE(is_face_balanced(tree, curve));
  ASSERT_TRUE(is_balanced(tree, curve, BalanceMode::kFace));
  EXPECT_FALSE(is_balanced(tree, curve, BalanceMode::kFull));

  const auto full = balance_octree(tree, curve, nullptr, BalanceMode::kFull);
  EXPECT_TRUE(is_balanced(full, curve, BalanceMode::kFull));
  EXPECT_GT(full.size(), tree.size());
}

TEST(Balance, Works2d) {
  const Curve curve(CurveKind::kHilbert, 2);
  GenerateOptions options;
  options.seed = 44;
  options.max_level = 9;
  options.dim = 2;
  options.max_points_per_leaf = 1;
  options.distribution = PointDistribution::kLogNormal;
  const auto tree = random_octree(2000, curve, options);
  const auto balanced = balance_octree(tree, curve);
  EXPECT_TRUE(is_face_balanced(balanced, curve));
  EXPECT_TRUE(is_complete(balanced, curve));
}

}  // namespace
}  // namespace amr::octree
