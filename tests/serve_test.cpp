// Tests for the partitioner service (serve/serve.hpp): cache-key
// separation (jobs differing in ANY model input never share artifacts),
// bitwise cold/warm/uncached agreement, in-flight request coalescing,
// bounded admission, and failure paths.
#include "serve/serve.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

namespace amr::serve {
namespace {

JobSpec small_job() {
  JobSpec job;
  job.mesh.points = 1500;
  job.mesh.seed = 7;
  job.mesh.max_level = 8;
  job.machine = "wisconsin8";
  job.ranks = 8;
  job.partitioner = Partitioner::kOptiPart;
  return job;
}

void expect_bitwise_equal(const JobResult& a, const JobResult& b) {
  EXPECT_EQ(a.cuts.offsets, b.cuts.offsets);
  EXPECT_EQ(a.metrics.work, b.metrics.work);
  EXPECT_EQ(a.metrics.boundary, b.metrics.boundary);
  EXPECT_EQ(a.metrics.degree, b.metrics.degree);
  EXPECT_EQ(a.metrics.w_max, b.metrics.w_max);
  EXPECT_EQ(a.metrics.c_max, b.metrics.c_max);
  EXPECT_EQ(a.metrics.m_max, b.metrics.m_max);
  EXPECT_EQ(a.metrics.load_imbalance, b.metrics.load_imbalance);
  EXPECT_EQ(a.metrics.comm_imbalance, b.metrics.comm_imbalance);
  EXPECT_EQ(a.metrics.total_boundary, b.metrics.total_boundary);
  EXPECT_EQ(a.predicted_seconds, b.predicted_seconds);
  EXPECT_EQ(a.mesh_elements, b.mesh_elements);
}

TEST(Serve, WarmHitIsBitwiseIdenticalToColdAndToUncached) {
  const JobSpec job = small_job();
  const JobResult reference = execute_job(job);  // no queue, no cache

  Server server;
  const JobResult cold = server.submit(job).get();
  const JobResult warm = server.submit(job).get();

  expect_bitwise_equal(cold, reference);
  expect_bitwise_equal(warm, reference);
  EXPECT_FALSE(cold.partition_cache_hit);
  EXPECT_TRUE(warm.partition_cache_hit);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.partition_cache_misses, 1u);
  EXPECT_EQ(stats.partition_cache_hits, 1u);
  EXPECT_EQ(stats.latency_ns.count(), 2u);
}

TEST(Serve, CacheDisabledServerMatchesCachedServerBitwise) {
  const JobSpec job = small_job();
  ServerOptions nocache;
  nocache.cache_enabled = false;
  Server reference(nocache);
  Server cached;
  expect_bitwise_equal(cached.submit(job).get(), reference.submit(job).get());
  // The cache-disabled server records every execution as a miss-free run:
  // no cache counters move.
  const ServerStats stats = reference.stats();
  EXPECT_EQ(stats.partition_cache_hits + stats.partition_cache_misses, 0u);
  EXPECT_EQ(stats.mesh_cache_hits + stats.mesh_cache_misses, 0u);
}

// The central key-separation property: changing any single model input --
// alpha, machine, tolerance, curve, partitioner, ranks, seed -- must miss
// the partition cache and may change the result. No variant pair may ever
// share cuts through the cache.
TEST(Serve, EveryModelInputSeparatesThePartitionCache) {
  const JobSpec base = small_job();
  std::vector<JobSpec> variants;
  {
    JobSpec j = base;
    j.profile.alpha = 24.0;  // same mesh, same machine: only Eq. 3 changes
    variants.push_back(j);
  }
  {
    JobSpec j = base;
    j.machine = "titan";
    variants.push_back(j);
  }
  {
    JobSpec j = base;
    j.partitioner = Partitioner::kTreeSort;
    variants.push_back(j);
  }
  {
    JobSpec j = base;
    j.partitioner = Partitioner::kTreeSort;
    j.tolerance = 0.3;
    variants.push_back(j);
  }
  {
    JobSpec j = base;
    j.mesh.curve = sfc::CurveKind::kMorton;
    variants.push_back(j);
  }
  {
    JobSpec j = base;
    j.ranks = 16;
    variants.push_back(j);
  }
  {
    JobSpec j = base;
    j.mesh.seed = 8;
    variants.push_back(j);
  }

  Server server;
  const JobResult base_result = server.submit(base).get();
  EXPECT_FALSE(base_result.partition_cache_hit);
  for (const JobSpec& variant : variants) {
    const JobResult got = server.submit(variant).get();
    // A hit here would mean two different model inputs aliased one key.
    EXPECT_FALSE(got.partition_cache_hit);
    expect_bitwise_equal(got, execute_job(variant));
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.partition_cache_misses, 1u + variants.size());
  EXPECT_EQ(stats.partition_cache_hits, 0u);
  // Mesh-level sharing DOES engage for the variants that reuse the base
  // mesh (alpha/machine/partitioner/tolerance/ranks differ, mesh equal):
  // 5 of the 7 variants share the base mesh artifact.
  EXPECT_EQ(stats.mesh_cache_misses, 3u);  // base + curve variant + seed variant
  EXPECT_EQ(stats.mesh_cache_hits, 5u);
}

TEST(Serve, ConcurrentIdenticalJobsShareOneComputation) {
  ServerOptions options;
  options.dispatchers = 4;
  Server server(options);
  const JobSpec job = small_job();
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(server.submit(job));
  std::vector<JobResult> results;
  for (auto& future : futures) results.push_back(future.get());
  for (std::size_t i = 1; i < results.size(); ++i) {
    expect_bitwise_equal(results[i], results[0]);
  }
  // Exactly one owner computed; everyone else (including concurrent
  // submitters that arrived before the artifact was ready) hit the same
  // shared future.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.partition_cache_misses, 1u);
  EXPECT_EQ(stats.partition_cache_hits, 7u);
  EXPECT_EQ(stats.mesh_cache_misses, 1u);
}

TEST(Serve, BoundedAdmissionBlocksSubmittersAtCapacity) {
  ServerOptions options;
  options.dispatchers = 1;
  options.queue_capacity = 2;
  Server server(options);
  // Saturate the single dispatcher with enough work that the queue fills;
  // a further submit must block until space frees, and every future must
  // still complete. This can't deadlock: the dispatcher always drains.
  std::atomic<int> submitted{0};
  std::vector<std::future<JobResult>> futures;
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      JobSpec job = small_job();
      job.ranks = 4 + i;  // unique keys: no cache short-circuit
      futures.push_back(server.submit(std::move(job)));
      submitted.fetch_add(1);
    }
  });
  producer.join();
  EXPECT_EQ(submitted.load(), 6);
  for (auto& future : futures) (void)future.get();
  EXPECT_EQ(server.stats().completed, 6u);
}

TEST(Serve, UnknownMachineFailsTheFutureAndIsNotCached) {
  Server server;
  JobSpec job = small_job();
  job.machine = "no-such-machine";
  EXPECT_THROW(server.submit(job).get(), std::exception);
  // The failure was not memoized: a second submit fails again (rather than
  // returning a cached exception artifact) and no cache counters moved.
  EXPECT_THROW(server.submit(job).get(), std::exception);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.partition_cache_hits + stats.partition_cache_misses, 0u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(Serve, DestructorDrainsTheBacklog) {
  std::vector<std::future<JobResult>> futures;
  {
    ServerOptions options;
    options.dispatchers = 2;
    Server server(options);
    for (int i = 0; i < 5; ++i) {
      JobSpec job = small_job();
      job.ranks = 4 + i;
      futures.push_back(server.submit(std::move(job)));
    }
  }  // ~Server joins only after every queued job ran
  for (auto& future : futures) {
    EXPECT_GT(future.get().mesh_elements, 0u);
  }
}

TEST(Serve, MeshSpecEqualityDrivesTheMeshCache) {
  // Two jobs with field-wise equal mesh specs share the mesh artifact even
  // when everything downstream differs.
  Server server;
  JobSpec a = small_job();
  JobSpec b = small_job();
  b.machine = "clemson32";
  b.partitioner = Partitioner::kTreeSort;
  b.tolerance = 0.1;
  b.profile.alpha = 12.0;
  (void)server.submit(a).get();
  const JobResult second = server.submit(b).get();
  EXPECT_TRUE(second.mesh_cache_hit);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.mesh_cache_misses, 1u);
  EXPECT_EQ(stats.mesh_cache_hits, 1u);
  EXPECT_EQ(stats.partition_cache_misses, 2u);
}

}  // namespace
}  // namespace amr::serve
