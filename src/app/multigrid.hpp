// Octree geometric multigrid V-cycle: the second application family
// (DESIGN.md §15; ROADMAP item 2; cf. Holke et al., arXiv:1803.04970 for
// tree-based multigrid on adaptive octrees).
//
// The level hierarchy comes straight from the octree: level 0 is the given
// fine tree, and each coarser level merges every complete sibling group
// (octree::coarsen_octree), with inter-level transfer over
// octree::coarse_to_fine_ranges. The discretization is re-derived per
// level by mesh::build_global_mesh + fem::KernelPlan::build -- one shared
// operator-assembly path for every level of every application, no second
// kernel (the satellite-1 requirement). The transfer pair is the standard
// cell-centered choice: restriction sums child residuals (residuals are
// integrated quantities, and the integral over a parent is the sum over
// its children), prolongation injects the parent correction into each
// child.
//
// Distributed execution: only the fine level talks to other ranks. Each
// damped-Jacobi sweep and the residual evaluation exchange the halo with
// the same owned-prefix/ghost-tail overlap schedule as the matvec epoch
// (simmpi::HaloExchange + apply_interior/apply_tail). Coarse levels are
// built from the rank's owned slice alone: build_global_mesh on a partial
// tree simply omits faces whose neighbor is absent, so slice borders act
// as natural Neumann walls and the coarse correction is additive across
// ranks -- no coarse-level communication, which is exactly what makes the
// application latency/traversal-heavy per fine element and gives it a
// measurably different alpha than the matvec.
//
// Determinism: every kernel is a KernelPlan apply (bit-identical for any
// thread count by construction), transfers and Jacobi updates are
// fixed-order elementwise loops, and the epoch contains no global
// reductions (fixed sweep counts, no convergence tests) -- so the epoch is
// bit-identical for any AMR_THREADS and any simmpi schedule, and equal to
// the sequential oracle per rank (fuzz-pinned via tests/corpus/mg.case).
#pragma once

#include <cstddef>
#include <vector>

#include "app/application.hpp"
#include "fem/engine.hpp"
#include "octree/octant.hpp"

namespace amr::app {

struct MultigridOptions {
  int max_levels = 3;     ///< fine level included
  int pre_smooth = 2;     ///< damped-Jacobi sweeps before coarse correction
  int post_smooth = 2;    ///< sweeps after
  int coarse_sweeps = 8;  ///< Jacobi sweeps standing in for the coarse solve
  /// Damped-Jacobi weight; 2/3-ish damps the high-frequency half of the
  /// 7-point stencil's spectrum, which is all a smoother must do.
  double omega = 0.6;
  /// Stop coarsening once a level would have fewer elements than this.
  std::size_t min_coarse_elements = 8;
  /// Kernel execution knobs; results are identical for every value.
  fem::ParOptions par;
};

/// The once-per-mesh level hierarchy: coarsened trees, one KernelPlan per
/// level (built by the same assembly path as every other consumer), the
/// coarse->fine transfer ranges, and per-level work vectors. Shared by the
/// distributed epoch, the sequential oracle, and the alpha probe so the
/// per-level setup exists exactly once.
class MultigridHierarchy {
 public:
  /// Hierarchy over a rank's owned slice (or a whole tree at p=1).
  /// `fine_plan` is the level-0 operator -- for a distributed mesh, build
  /// it from the LocalMesh so it carries the ghost columns.
  [[nodiscard]] static MultigridHierarchy build(fem::KernelPlan fine_plan,
                                                std::vector<octree::Octant> fine_tree,
                                                const sfc::Curve& curve,
                                                const MultigridOptions& options);

  struct Level {
    std::vector<octree::Octant> tree;
    fem::KernelPlan plan;
    /// This level's cell c covers the next-finer level's range
    /// [to_fine[c].first, to_fine[c].second). Empty at level 0.
    std::vector<std::pair<std::size_t, std::size_t>> to_fine;
    // Work vectors, sized to the level.
    std::vector<double> x;
    std::vector<double> b;
    std::vector<double> scratch;  ///< A x, then the residual in place
  };

  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }
  [[nodiscard]] const fem::KernelPlan& fine_plan() const { return levels_[0].plan; }
  [[nodiscard]] Level& level(std::size_t l) { return levels_[l]; }

  /// One V-cycle below the fine level: assumes the caller has already
  /// pre-smoothed level 0 and deposited the restricted fine residual in
  /// level(1).b. No-op when the hierarchy has a single level.
  void coarse_correction(const MultigridOptions& options);

  /// Restrict the fine residual (in level(0).scratch) into level(1).b and
  /// zero level(1).x. Requires num_levels() > 1.
  void restrict_fine_residual();
  /// Add level(1).x into the fine iterate (injection).
  void prolong_to_fine();

  /// Ghost-free V-cycle for undistributed (p=1 / probe) use: x <- V(x, b).
  void vcycle(std::vector<double>& x, const std::vector<double>& b,
              const MultigridOptions& options);

 private:
  // All helpers operate on the levels' own x/b/scratch vectors. Level 0
  // variants require a ghost-free fine plan (the probe path); the
  // distributed epoch drives level 0 itself, halo included.
  void smooth(std::size_t l, int sweeps, const MultigridOptions& options);
  void residual(std::size_t l, const MultigridOptions& options);
  void transfer_down(std::size_t l);  ///< scratch[l] -> b[l+1], x[l+1] = 0
  void transfer_up(std::size_t l);    ///< x[l] += inject(x[l+1])
  void descend(std::size_t l, const MultigridOptions& options);

  std::vector<Level> levels_;
};

class MultigridApplication final : public Application {
 public:
  MultigridApplication() = default;
  explicit MultigridApplication(MultigridOptions options) : options_(options) {}

  [[nodiscard]] const char* name() const override { return "multigrid"; }
  [[nodiscard]] const char* span_prefix() const override { return "mg"; }
  [[nodiscard]] const MultigridOptions& options() const { return options_; }

  /// `iterations` V-cycles on A x = b with b = the incoming u and x0 = 0;
  /// u holds the final iterate on exit.
  EpochReport run_epoch(const mesh::LocalMesh& mesh, const sfc::Curve& curve,
                        simmpi::Comm& comm, int iterations,
                        std::vector<double>& u) const override;

  [[nodiscard]] std::vector<std::vector<double>> run_epoch_sequential(
      const std::vector<mesh::LocalMesh>& meshes, const sfc::Curve& curve,
      int iterations, const std::vector<std::vector<double>>& u) const override;

  [[nodiscard]] double measure_alpha(const mesh::GlobalMesh& mesh,
                                     const sfc::Curve& curve,
                                     double stream_bytes_per_second,
                                     int iterations = 10) const override;

  [[nodiscard]] machine::ApplicationProfile profile() const override;

 private:
  MultigridOptions options_;
};

}  // namespace amr::app
