#include "app/application.hpp"

#include "app/matvec_app.hpp"
#include "app/multigrid.hpp"

namespace amr::app {

const Application& matvec_app() {
  static const MatvecApplication app;
  return app;
}

const Application& multigrid_app() {
  static const MultigridApplication app;
  return app;
}

const Application* application_by_name(const std::string& name) {
  for (const Application* app : all_applications()) {
    if (name == app->name()) return app;
  }
  return nullptr;
}

std::vector<const Application*> all_applications() {
  return {&matvec_app(), &multigrid_app()};
}

}  // namespace amr::app
