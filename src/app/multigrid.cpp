#include "app/multigrid.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "octree/adapt.hpp"
#include "simmpi/halo.hpp"
#include "simmpi/phase_trace.hpp"
#include "util/timer.hpp"

namespace amr::app {

// ---------------------------------------------------------------------------
// MultigridHierarchy

MultigridHierarchy MultigridHierarchy::build(fem::KernelPlan fine_plan,
                                             std::vector<octree::Octant> fine_tree,
                                             const sfc::Curve& curve,
                                             const MultigridOptions& options) {
  MultigridHierarchy h;
  {
    Level fine;
    fine.tree = std::move(fine_tree);
    fine.plan = std::move(fine_plan);
    fine.x.resize(fine.plan.num_rows());
    fine.b.resize(fine.plan.num_rows());
    fine.scratch.resize(fine.plan.num_rows());
    h.levels_.push_back(std::move(fine));
  }
  while (static_cast<int>(h.levels_.size()) < options.max_levels) {
    const std::vector<octree::Octant>& fine = h.levels_.back().tree;
    std::vector<octree::Octant> coarse = octree::coarsen_octree(fine, curve, 1);
    // Stop when coarsening makes no progress (no complete sibling group in
    // this rank's slice) or the level would be too small to pay for itself.
    if (coarse.size() == fine.size() || coarse.size() < options.min_coarse_elements) {
      break;
    }
    Level level;
    level.to_fine = octree::coarse_to_fine_ranges(fine, coarse, curve);
    // Re-discretize on the coarse leaves with the one shared assembly path.
    // On a partial (slice) tree, faces whose neighbor is absent are simply
    // omitted -- natural Neumann walls at slice borders -- so the plan is
    // well-formed without any remote information.
    level.plan = fem::KernelPlan::build(mesh::build_global_mesh(coarse, curve));
    level.tree = std::move(coarse);
    level.x.resize(level.plan.num_rows());
    level.b.resize(level.plan.num_rows());
    level.scratch.resize(level.plan.num_rows());
    h.levels_.push_back(std::move(level));
  }
  return h;
}

void MultigridHierarchy::smooth(std::size_t l, int sweeps,
                                const MultigridOptions& options) {
  Level& lev = levels_[l];
  const std::span<const double> inv_diag = lev.plan.inv_diagonal();
  for (int s = 0; s < sweeps; ++s) {
    lev.plan.apply(lev.x, lev.scratch, options.par);
    // Damped Jacobi; elementwise with no reduction, so the fixed loop
    // order is trivially deterministic.
    for (std::size_t i = 0; i < lev.x.size(); ++i) {
      lev.x[i] += options.omega * inv_diag[i] * (lev.b[i] - lev.scratch[i]);
    }
  }
}

void MultigridHierarchy::residual(std::size_t l, const MultigridOptions& options) {
  Level& lev = levels_[l];
  lev.plan.apply(lev.x, lev.scratch, options.par);
  for (std::size_t i = 0; i < lev.scratch.size(); ++i) {
    lev.scratch[i] = lev.b[i] - lev.scratch[i];
  }
}

void MultigridHierarchy::transfer_down(std::size_t l) {
  const Level& fine = levels_[l];
  Level& coarse = levels_[l + 1];
  // Summation restriction: the residual is an integrated quantity, and the
  // integral over a parent cell is the sum over its children.
  for (std::size_t c = 0; c < coarse.to_fine.size(); ++c) {
    double sum = 0.0;
    for (std::size_t f = coarse.to_fine[c].first; f < coarse.to_fine[c].second; ++f) {
      sum += fine.scratch[f];
    }
    coarse.b[c] = sum;
  }
  std::fill(coarse.x.begin(), coarse.x.end(), 0.0);
}

void MultigridHierarchy::transfer_up(std::size_t l) {
  Level& fine = levels_[l];
  const Level& coarse = levels_[l + 1];
  // Piecewise-constant injection: each child inherits its parent's
  // correction.
  for (std::size_t c = 0; c < coarse.to_fine.size(); ++c) {
    for (std::size_t f = coarse.to_fine[c].first; f < coarse.to_fine[c].second; ++f) {
      fine.x[f] += coarse.x[c];
    }
  }
}

void MultigridHierarchy::descend(std::size_t l, const MultigridOptions& options) {
  if (l + 1 == levels_.size()) {
    // Coarsest level: a fixed block of Jacobi sweeps stands in for the
    // direct solve (deterministic, and plenty on O(min_coarse) unknowns).
    smooth(l, l == 0 ? options.pre_smooth + options.post_smooth
                     : options.coarse_sweeps,
           options);
    return;
  }
  smooth(l, options.pre_smooth, options);
  residual(l, options);
  transfer_down(l);
  descend(l + 1, options);
  transfer_up(l);
  smooth(l, options.post_smooth, options);
}

void MultigridHierarchy::coarse_correction(const MultigridOptions& options) {
  if (levels_.size() > 1) descend(1, options);
}

void MultigridHierarchy::restrict_fine_residual() {
  assert(levels_.size() > 1);
  transfer_down(0);
}

void MultigridHierarchy::prolong_to_fine() {
  assert(levels_.size() > 1);
  transfer_up(0);
}

void MultigridHierarchy::vcycle(std::vector<double>& x, const std::vector<double>& b,
                                const MultigridOptions& options) {
  assert(x.size() == levels_[0].plan.num_rows());
  assert(b.size() == levels_[0].plan.num_rows());
  levels_[0].x = x;
  levels_[0].b = b;
  descend(0, options);
  x = levels_[0].x;
}

// ---------------------------------------------------------------------------
// MultigridApplication

namespace {

/// Fill every rank's ghost array from the current iterates, walking each
/// (owner -> needer) channel positionally -- the DistributedLaplacian
/// exchange, reused as the oracle's stand-in for one collective halo
/// exchange.
void oracle_exchange(const std::vector<mesh::LocalMesh>& meshes,
                     const std::vector<std::vector<double>>& x,
                     std::vector<std::vector<double>>& ghosts) {
  for (std::size_t owner = 0; owner < meshes.size(); ++owner) {
    const mesh::LocalMesh& om = meshes[owner];
    for (std::size_t k = 0; k < om.peers.size(); ++k) {
      const auto& send = om.send_lists[k];
      if (send.empty()) continue;
      const int needer = om.peers[k];
      const mesh::LocalMesh& nm = meshes[static_cast<std::size_t>(needer)];
      const auto it = std::lower_bound(nm.peers.begin(), nm.peers.end(),
                                       static_cast<int>(owner));
      assert(it != nm.peers.end() && *it == static_cast<int>(owner));
      const auto& recv =
          nm.recv_lists[static_cast<std::size_t>(it - nm.peers.begin())];
      assert(recv.size() == send.size());
      auto& ghost = ghosts[static_cast<std::size_t>(needer)];
      for (std::size_t idx = 0; idx < send.size(); ++idx) {
        ghost[recv[idx]] = x[owner][send[idx]];
      }
    }
  }
}

}  // namespace

EpochReport MultigridApplication::run_epoch(const mesh::LocalMesh& mesh,
                                            const sfc::Curve& curve,
                                            simmpi::Comm& comm, int iterations,
                                            std::vector<double>& u) const {
  assert(u.size() == mesh.elements.size());
  assert(mesh.has_overlap_split());
  EpochReport report;
  util::Timer timer;

  MultigridHierarchy hierarchy = [&] {
    AMR_SPAN("mg.plan");
    return MultigridHierarchy::build(fem::KernelPlan::build(mesh), mesh.elements,
                                     curve, options_);
  }();
  report.plan_seconds = timer.seconds();
  report.levels = static_cast<int>(hierarchy.num_levels());

  MultigridHierarchy::Level& fine = hierarchy.level(0);
  fine.b = u;  // incoming state is the right-hand side
  std::fill(fine.x.begin(), fine.x.end(), 0.0);
  std::vector<double> ghosts(mesh.ghosts.size());
  simmpi::HaloExchange halo(mesh);

  // A x on the fine level with the shared overlapped halo schedule:
  // recvs/sends in flight, interior rows streamed meanwhile, then the
  // boundary tail. Every rank performs exactly pre + 1 + post of these per
  // V-cycle -- the residual pass runs even on single-level ranks so the
  // collective wire schedule never depends on a rank's local level count.
  const auto fine_apply = [&] {
    timer.reset();
    simmpi::PhaseScope post_phase(comm, "mg.post", "mg.post/bytes", "mg.post/msgs");
    report.ghost_elements_sent += halo.post(comm, fine.x, ghosts);
    post_phase.close();
    report.exchange_seconds += timer.seconds();

    timer.reset();
    {
      AMR_SPAN("mg.interior");
      fine.plan.apply_interior(fine.x, fine.scratch, options_.par);
    }
    report.compute_seconds += timer.seconds();

    timer.reset();
    {
      AMR_SPAN("mg.wait");
      halo.finish(ghosts);
    }
    report.exchange_seconds += timer.seconds();

    timer.reset();
    {
      AMR_SPAN("mg.boundary");
      fine.plan.apply_tail(fine.x, ghosts, fine.scratch, options_.par);
    }
    report.compute_seconds += timer.seconds();
  };
  const std::span<const double> inv_diag = fine.plan.inv_diagonal();
  const auto fine_smooth = [&](int sweeps) {
    for (int s = 0; s < sweeps; ++s) {
      fine_apply();
      timer.reset();
      for (std::size_t i = 0; i < fine.x.size(); ++i) {
        fine.x[i] += options_.omega * inv_diag[i] * (fine.b[i] - fine.scratch[i]);
      }
      report.compute_seconds += timer.seconds();
    }
  };

  for (int it = 0; it < iterations; ++it) {
    fine_smooth(options_.pre_smooth);
    fine_apply();
    timer.reset();
    for (std::size_t i = 0; i < fine.scratch.size(); ++i) {
      fine.scratch[i] = fine.b[i] - fine.scratch[i];
    }
    if (hierarchy.num_levels() > 1) {
      AMR_SPAN("mg.coarse");
      hierarchy.restrict_fine_residual();
      hierarchy.coarse_correction(options_);
      hierarchy.prolong_to_fine();
    }
    report.compute_seconds += timer.seconds();
    fine_smooth(options_.post_smooth);
  }
  u = fine.x;
  return report;
}

std::vector<std::vector<double>> MultigridApplication::run_epoch_sequential(
    const std::vector<mesh::LocalMesh>& meshes, const sfc::Curve& curve,
    int iterations, const std::vector<std::vector<double>>& u) const {
  const std::size_t p = meshes.size();
  MultigridOptions seq = options_;
  seq.par.num_threads = 1;  // the oracle is genuinely single-threaded

  std::vector<MultigridHierarchy> hierarchy;
  hierarchy.reserve(p);
  std::vector<std::vector<double>> x(p);
  std::vector<std::vector<double>> ghosts(p);
  for (std::size_t r = 0; r < p; ++r) {
    hierarchy.push_back(MultigridHierarchy::build(
        fem::KernelPlan::build(meshes[r]), meshes[r].elements, curve, seq));
    MultigridHierarchy::Level& fine = hierarchy[r].level(0);
    assert(u[r].size() == meshes[r].elements.size());
    fine.b = u[r];
    std::fill(fine.x.begin(), fine.x.end(), 0.0);
    ghosts[r].resize(meshes[r].ghosts.size());
    x[r].resize(meshes[r].elements.size());
  }

  // Lockstep replica of run_epoch: at every point where the distributed
  // epoch exchanges the halo, fill all ranks' ghosts, then advance every
  // rank one step. The fused apply(u, ghost, out) is bit-identical to the
  // distributed interior+tail pair by the engine's guarantee.
  const auto gather_x = [&] {
    for (std::size_t r = 0; r < p; ++r) x[r] = hierarchy[r].level(0).x;
  };
  const auto fine_apply_all = [&] {
    gather_x();
    oracle_exchange(meshes, x, ghosts);
    for (std::size_t r = 0; r < p; ++r) {
      MultigridHierarchy::Level& fine = hierarchy[r].level(0);
      fine.plan.apply(fine.x, ghosts[r], fine.scratch, seq.par);
    }
  };
  const auto fine_smooth_all = [&](int sweeps) {
    for (int s = 0; s < sweeps; ++s) {
      fine_apply_all();
      for (std::size_t r = 0; r < p; ++r) {
        MultigridHierarchy::Level& fine = hierarchy[r].level(0);
        const std::span<const double> inv_diag = fine.plan.inv_diagonal();
        for (std::size_t i = 0; i < fine.x.size(); ++i) {
          fine.x[i] += seq.omega * inv_diag[i] * (fine.b[i] - fine.scratch[i]);
        }
      }
    }
  };

  for (int it = 0; it < iterations; ++it) {
    fine_smooth_all(seq.pre_smooth);
    fine_apply_all();
    for (std::size_t r = 0; r < p; ++r) {
      MultigridHierarchy::Level& fine = hierarchy[r].level(0);
      for (std::size_t i = 0; i < fine.scratch.size(); ++i) {
        fine.scratch[i] = fine.b[i] - fine.scratch[i];
      }
      if (hierarchy[r].num_levels() > 1) {
        hierarchy[r].restrict_fine_residual();
        hierarchy[r].coarse_correction(seq);
        hierarchy[r].prolong_to_fine();
      }
    }
    fine_smooth_all(seq.post_smooth);
  }
  gather_x();
  return x;
}

double MultigridApplication::measure_alpha(const mesh::GlobalMesh& mesh,
                                           const sfc::Curve& curve,
                                           double stream_bytes_per_second,
                                           int iterations) const {
  MultigridOptions probe = options_;
  probe.par.num_threads = 1;
  MultigridHierarchy hierarchy = MultigridHierarchy::build(
      fem::KernelPlan::build(mesh), mesh.elements, curve, probe);
  const std::size_t n = hierarchy.fine_plan().num_rows();
  std::vector<double> x(n, 0.0);
  std::vector<double> b(n, 1.0);
  hierarchy.vcycle(x, b, probe);  // warm
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    hierarchy.vcycle(x, b, probe);
  }
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (s <= 0.0 || n == 0) return profile().alpha;
  // Alpha charges the whole V-cycle (coarse levels, transfers, smoother
  // passes) to the fine elements the partitioner counts -- that per-element
  // markup over a streaming pass IS the application's alpha (paper §3.3).
  const double element_rate = static_cast<double>(n) * iterations / s;
  return machine::measure_alpha_from_rates(
      element_rate * profile().bytes_per_element, stream_bytes_per_second);
}

machine::ApplicationProfile MultigridApplication::profile() const {
  machine::ApplicationProfile profile;
  // Per V-cycle each fine element is touched by pre+post+1 operator
  // applications plus the Jacobi updates and transfers, and the coarse
  // hierarchy adds ~1/7 of the fine work again -- about 6x the single
  // matvec sweep's accesses. 6 * 8 = 48.
  profile.alpha = 48.0;
  return profile;
}

}  // namespace amr::app
