#include "app/matvec_app.hpp"

#include <chrono>
#include <utility>

#include "fem/engine.hpp"
#include "fem/laplacian.hpp"
#include "simmpi/dist_fem.hpp"

namespace amr::app {

EpochReport MatvecApplication::run_epoch(const mesh::LocalMesh& mesh,
                                         const sfc::Curve& /*curve*/,
                                         simmpi::Comm& comm, int iterations,
                                         std::vector<double>& u) const {
  const simmpi::DistFemReport fem =
      simmpi::dist_matvec_loop_overlapped(mesh, comm, iterations, u);
  EpochReport report;
  report.compute_seconds = fem.compute_seconds;
  report.exchange_seconds = fem.exchange_seconds;
  report.plan_seconds = fem.plan_seconds;
  report.ghost_elements_sent = fem.ghost_elements_sent;
  return report;
}

std::vector<std::vector<double>> MatvecApplication::run_epoch_sequential(
    const std::vector<mesh::LocalMesh>& meshes, const sfc::Curve& /*curve*/,
    int iterations, const std::vector<std::vector<double>>& u) const {
  const fem::DistributedLaplacian engine(meshes);
  std::vector<std::vector<double>> x = u;
  std::vector<std::vector<double>> tmp;
  for (int it = 0; it < iterations; ++it) {
    engine.matvec(x, tmp);
    std::swap(x, tmp);
  }
  return x;
}

double MatvecApplication::measure_alpha(const mesh::GlobalMesh& mesh,
                                        const sfc::Curve& /*curve*/,
                                        double stream_bytes_per_second,
                                        int iterations) const {
  const fem::KernelPlan plan = fem::KernelPlan::build(mesh);
  std::vector<double> u(plan.num_rows(), 1.0);
  std::vector<double> out(plan.num_rows());
  fem::ParOptions seq;
  seq.num_threads = 1;
  plan.apply(u, out, seq);  // warm
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    plan.apply(u, out, seq);
    std::swap(u, out);
  }
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (s <= 0.0 || plan.num_rows() == 0) return profile().alpha;
  const double element_rate =
      static_cast<double>(plan.num_rows()) * iterations / s;
  return machine::measure_alpha_from_rates(
      element_rate * profile().bytes_per_element, stream_bytes_per_second);
}

machine::ApplicationProfile MatvecApplication::profile() const {
  return machine::ApplicationProfile{};  // alpha 8: the 7-point stencil, §3.3
}

}  // namespace amr::app
