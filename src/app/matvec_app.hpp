// The original application family: the 7-point Laplacian matvec loop
// (paper §5.3), ported onto app::Application with bitwise-identical
// results -- run_epoch is exactly simmpi::dist_matvec_loop_overlapped, so
// a driver epoch through this class produces the same doubles, per rank
// and per iteration, as the pre-refactor direct call (AppIdentity tests
// and the fuzz matvec stage pin this).
#pragma once

#include "app/application.hpp"

namespace amr::app {

class MatvecApplication final : public Application {
 public:
  [[nodiscard]] const char* name() const override { return "matvec"; }
  [[nodiscard]] const char* span_prefix() const override { return "matvec"; }

  EpochReport run_epoch(const mesh::LocalMesh& mesh, const sfc::Curve& curve,
                        simmpi::Comm& comm, int iterations,
                        std::vector<double>& u) const override;

  [[nodiscard]] std::vector<std::vector<double>> run_epoch_sequential(
      const std::vector<mesh::LocalMesh>& meshes, const sfc::Curve& curve,
      int iterations, const std::vector<std::vector<double>>& u) const override;

  [[nodiscard]] double measure_alpha(const mesh::GlobalMesh& mesh,
                                     const sfc::Curve& curve,
                                     double stream_bytes_per_second,
                                     int iterations = 10) const override;

  [[nodiscard]] machine::ApplicationProfile profile() const override;
};

}  // namespace amr::app
