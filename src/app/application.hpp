// The application-kernel interface (DESIGN.md §15; ROADMAP item 2).
//
// OptiPart's thesis is that the *application's* memory-access ratio alpha
// changes the optimal machine-aware partition (Eq. 3), so "the
// application" must be a first-class axis: something that can run a
// distributed solve epoch on a rank's mesh, be profiled for its alpha, and
// hand the partitioner an ApplicationProfile. This interface extracts that
// axis out of the FEM layer. Two families implement it:
//
//   * MatvecApplication (app/matvec_app.hpp) -- the original 7-point
//     Laplacian matvec loop. Its run_epoch is exactly
//     dist_matvec_loop_overlapped, so the port is bit-identical to the
//     pre-refactor driver (pinned by AppIdentity tests and the fuzz
//     matvec stage).
//   * MultigridApplication (app/multigrid.hpp) -- an octree geometric
//     multigrid V-cycle whose coarse levels and repeated fine-grid
//     smoothing give it a genuinely different (larger) alpha.
//
// Epoch contract: `u` carries the application's input state per owned
// element on entry and its output state on exit (the matvec loop iterates
// u <- L u; multigrid reads u as the right-hand side and returns the
// V-cycle iterate). Every implementation must be bit-identical for any
// AMR_THREADS and any simmpi schedule, and must provide a sequential
// oracle the fuzz harness can memcmp the distributed epoch against.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/perf_model.hpp"
#include "mesh/mesh.hpp"
#include "sfc/curve.hpp"
#include "simmpi/comm.hpp"

namespace amr::app {

struct EpochReport {
  double compute_seconds = 0.0;   ///< all kernel time
  double exchange_seconds = 0.0;  ///< all halo time (post + exposed wait)
  double plan_seconds = 0.0;      ///< per-mesh setup (KernelPlan / hierarchy)
  std::uint64_t ghost_elements_sent = 0;
  int levels = 1;  ///< grid levels touched (1 for single-level apps)
};

class Application {
 public:
  virtual ~Application() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  /// Span-taxonomy prefix of the epoch's phases ("matvec" -> matvec.post /
  /// matvec.interior / matvec.wait / matvec.boundary; "mg" likewise).
  [[nodiscard]] virtual const char* span_prefix() const = 0;

  /// One distributed solve epoch on this rank's piece of the mesh, run
  /// concurrently by every rank of `comm`: `iterations` applications of
  /// the kernel (matvec sweeps / V-cycles) with owned-prefix/ghost-tail
  /// overlap on the fine grid. `u` is input state on entry, output state
  /// on exit.
  virtual EpochReport run_epoch(const mesh::LocalMesh& mesh, const sfc::Curve& curve,
                                simmpi::Comm& comm, int iterations,
                                std::vector<double>& u) const = 0;

  /// Sequential oracle: the same epoch over all ranks' meshes advanced in
  /// one thread, ghost channels copied positionally. The distributed epoch
  /// must match this bit for bit per rank (the fuzz harness pins it).
  [[nodiscard]] virtual std::vector<std::vector<double>> run_epoch_sequential(
      const std::vector<mesh::LocalMesh>& meshes, const sfc::Curve& curve,
      int iterations, const std::vector<std::vector<double>>& u) const = 0;

  /// Measure this application's alpha on the given mesh (paper §3.3): time
  /// the sequential kernel per element against a pure streaming pass at
  /// `stream_bytes_per_second` (see machine::measure_alpha_from_rates).
  [[nodiscard]] virtual double measure_alpha(const mesh::GlobalMesh& mesh,
                                             const sfc::Curve& curve,
                                             double stream_bytes_per_second,
                                             int iterations = 10) const = 0;

  /// The profile Eq. 3 consumes: nominal alpha (measure_alpha refines it),
  /// payload bytes per element, repartition-horizon knobs.
  [[nodiscard]] virtual machine::ApplicationProfile profile() const = 0;
};

/// Process-wide default instances (stateless; safe to share).
[[nodiscard]] const Application& matvec_app();
[[nodiscard]] const Application& multigrid_app();

/// "matvec" / "multigrid"; nullptr for anything else.
[[nodiscard]] const Application* application_by_name(const std::string& name);
/// Every registered application, for per-app report/bench sweeps.
[[nodiscard]] std::vector<const Application*> all_applications();

}  // namespace amr::app
