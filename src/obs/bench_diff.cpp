#include "obs/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <string_view>

namespace amr::obs {

namespace {

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

struct FieldClass {
  int direction = 0;  ///< -1 lower-better, +1 higher-better, 0 not compared
  bool host_dependent = false;
  bool time_like = false;  ///< subject to the seconds noise floor
};

FieldClass classify(std::string_view key) {
  if (contains(key, "speedup") || contains(key, "advantage")) {
    return {+1, false, false};
  }
  if (ends_with(key, "_per_s") || contains(key, "throughput")) {
    return {+1, true, false};
  }
  if (ends_with(key, "seconds") || ends_with(key, "_ns") || ends_with(key, "_ms") ||
      ends_with(key, "joules") || key == "median" || key == "best") {
    return {-1, true, true};
  }
  return {};
}

/// Top-level string field, or empty when absent / not a string.
std::string_view string_field(const util::Json& doc, std::string_view key) {
  const util::Json* v = doc.find(key);
  return (v != nullptr && v->is_string()) ? std::string_view(v->str())
                                          : std::string_view{};
}

/// Provenance fields refuse comparison only when both sides carry a real
/// value (older baselines predate the fields; "unknown" stamps say
/// nothing either way).
bool provenance_conflicts(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return false;
  if (a == "unknown" || b == "unknown") return false;
  if (a == "unspecified" || b == "unspecified") return false;
  return a != b;
}

struct Walker {
  const BenchDiffOptions& options;
  DiffReport& report;

  void compare_leaf(const std::string& path, std::string_view key, double base,
                    double cand) {
    const FieldClass cls = classify(key);
    if (cls.direction == 0) return;

    DiffRow row;
    row.path = path;
    row.baseline = base;
    row.candidate = cand;
    row.ratio = base != 0.0 ? cand / base : 0.0;

    const bool demoted = cls.host_dependent && report.host_mismatch;
    const bool below_floor = cls.time_like &&
                             std::max(std::abs(base), std::abs(cand)) <
                                 options.min_time_seconds;
    if (demoted || below_floor) {
      row.status = DiffRowStatus::kInfo;
      row.note = demoted ? "host mismatch: informational" : "below noise floor";
      report.rows.push_back(std::move(row));
      return;
    }

    // Ratio of the worse side over the better side, oriented so > 1 means
    // the candidate moved in the named direction.
    double worse_ratio = 0.0;   // how much worse the candidate got
    double better_ratio = 0.0;  // how much better
    if (base > 0.0 && cand > 0.0) {
      if (cls.direction < 0) {  // lower is better
        worse_ratio = cand / base;
        better_ratio = base / cand;
      } else {
        worse_ratio = base / cand;
        better_ratio = cand / base;
      }
    }
    if (worse_ratio > options.ratio_threshold) {
      row.status = DiffRowStatus::kRegressed;
      ++report.regressions;
    } else if (better_ratio > options.ratio_threshold) {
      row.status = DiffRowStatus::kImproved;
      ++report.improvements;
    }
    report.rows.push_back(std::move(row));
  }

  void walk(const std::string& path, const util::Json& base, const util::Json& cand) {
    if (base.is_object() && cand.is_object()) {
      for (const auto& [key, value] : base.items()) {
        const util::Json* other = cand.find(key);
        if (other == nullptr) continue;
        const std::string child = path.empty() ? key : path + "." + key;
        if (value.is_number() && other->is_number()) {
          compare_leaf(child, key, value.number(), other->number());
        } else {
          walk(child, value, *other);
        }
      }
      return;
    }
    if (base.is_array() && cand.is_array()) {
      const std::size_t n = std::min(base.array().size(), cand.array().size());
      for (std::size_t i = 0; i < n; ++i) {
        walk(path + "[" + std::to_string(i) + "]", base.array()[i], cand.array()[i]);
      }
    }
  }
};

}  // namespace

DiffReport diff_bench(const util::Json& baseline, const util::Json& candidate,
                      const BenchDiffOptions& options) {
  DiffReport report;

  const std::string_view base_bench = string_field(baseline, "bench");
  const std::string_view cand_bench = string_field(candidate, "bench");
  if (base_bench != cand_bench) {
    report.incommensurable = true;
    report.reason = "bench name mismatch: '" + std::string(base_bench) + "' vs '" +
                    std::string(cand_bench) + "'";
    return report;
  }
  if (provenance_conflicts(string_field(baseline, "build_type"),
                           string_field(candidate, "build_type"))) {
    report.incommensurable = true;
    report.reason = "build_type mismatch: '" +
                    std::string(string_field(baseline, "build_type")) + "' vs '" +
                    std::string(string_field(candidate, "build_type")) + "'";
    return report;
  }
  if (provenance_conflicts(string_field(baseline, "amr_threads"),
                           string_field(candidate, "amr_threads"))) {
    report.incommensurable = true;
    report.reason = "AMR_THREADS mismatch: '" +
                    std::string(string_field(baseline, "amr_threads")) + "' vs '" +
                    std::string(string_field(candidate, "amr_threads")) + "'";
    return report;
  }

  const util::Json* base_host = baseline.find("host");
  const util::Json* cand_host = candidate.find("host");
  if (base_host != nullptr && cand_host != nullptr) {
    const std::string_view a = string_field(*base_host, "hostname");
    const std::string_view b = string_field(*cand_host, "hostname");
    report.host_mismatch = !a.empty() && !b.empty() && a != b;
  }

  Walker walker{options, report};
  walker.walk("", baseline, candidate);
  return report;
}

void print_report(std::ostream& out, const DiffReport& report, bool show_ok_rows) {
  if (report.incommensurable) {
    out << "bench_diff: incommensurable runs: " << report.reason << "\n";
    return;
  }
  if (report.host_mismatch) {
    out << "bench_diff: hostnames differ; wall-time rows are informational, "
           "ratio rows still gate\n";
  }
  for (const DiffRow& row : report.rows) {
    const char* tag = nullptr;
    switch (row.status) {
      case DiffRowStatus::kRegressed: tag = "REGRESSED"; break;
      case DiffRowStatus::kImproved: tag = "improved"; break;
      case DiffRowStatus::kInfo: tag = "info"; break;
      case DiffRowStatus::kOk:
        if (!show_ok_rows) continue;
        tag = "ok";
        break;
    }
    out << "  [" << tag << "] " << row.path << ": " << row.baseline << " -> "
        << row.candidate;
    if (row.ratio > 0.0) out << " (x" << row.ratio << ")";
    if (!row.note.empty()) out << " [" << row.note << "]";
    out << "\n";
  }
  out << "bench_diff: " << report.rows.size() << " compared, " << report.regressions
      << " regressed, " << report.improvements << " improved\n";
}

}  // namespace amr::obs
