// RunMetrics: one tree that unifies the repo's scattered run accounting --
// simmpi CostLedgers, DistFemReport phase timings, partition quality
// metrics, the energy sampler's report -- so a pipeline run dumps a single
// JSON/pretty-text document instead of four ad-hoc printf formats
// (DESIGN.md §11).
//
// The tree is deliberately dumb: named nodes holding ordered (key, double)
// scalars. Builders for each subsystem live here so call sites stay one
// line; serialization is stable (insertion order) so diffs between runs
// are meaningful.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace amr::simmpi {
struct CostLedger;
struct DistFemReport;
}  // namespace amr::simmpi
namespace amr::partition {
struct Metrics;
}
namespace amr::energy {
struct EnergyReport;
}

namespace amr::obs {

class RunMetrics {
 public:
  RunMetrics() = default;
  explicit RunMetrics(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Find-or-create a child node.
  RunMetrics& child(const std::string& name);
  [[nodiscard]] const RunMetrics* find(const std::string& name) const;

  /// Set (insert or overwrite) one scalar.
  void set(const std::string& key, double value);
  [[nodiscard]] double get(const std::string& key, double fallback = 0.0) const;

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& values() const {
    return values_;
  }
  [[nodiscard]] const std::vector<RunMetrics>& children() const { return children_; }

  void to_json(std::ostream& out, int indent = 0) const;
  void to_text(std::ostream& out, int indent = 0) const;
  [[nodiscard]] std::string json() const;
  [[nodiscard]] std::string text() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> values_;
  std::vector<RunMetrics> children_;
};

/// Builders: fold one subsystem's report into `node`.
void append_ledger(RunMetrics& node, const simmpi::CostLedger& ledger);
void append_ledgers(RunMetrics& node, std::span<const simmpi::CostLedger> ledgers);
void append_fem_report(RunMetrics& node, const simmpi::DistFemReport& report);
void append_partition_metrics(RunMetrics& node, const partition::Metrics& metrics);
void append_energy_report(RunMetrics& node, const energy::EnergyReport& report);

}  // namespace amr::obs
