#include "obs/model_validation.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ostream>

namespace amr::obs {

namespace {

/// "<phase>/bytes" or "<phase>/msgs" -> "<phase>" + which; empty phase if
/// the counter is neither.
struct CounterKey {
  std::string phase;
  bool is_msgs = false;
};

CounterKey phase_of_counter(const char* name) {
  const char* slash = std::strrchr(name, '/');
  if (slash == nullptr) return {};
  CounterKey key;
  if (std::strcmp(slash, "/bytes") == 0) {
    key.is_msgs = false;
  } else if (std::strcmp(slash, "/msgs") == 0) {
    key.is_msgs = true;
  } else {
    return {};
  }
  key.phase.assign(name, static_cast<std::size_t>(slash - name));
  return key;
}

}  // namespace

std::map<std::string, PhaseAggregate> aggregate_phases(const Snapshot& snap) {
  std::map<std::string, PhaseAggregate> phases;
  for (const Event& e : snap.events) {
    if (e.type == EventType::kSpan) {
      PhaseAggregate& agg = phases[e.name];
      const double seconds = static_cast<double>(e.dur_ns) * 1e-9;
      agg.total_seconds += seconds;
      agg.rank_seconds[e.rank] += seconds;
      ++agg.span_count;
    } else if (e.type == EventType::kCounter) {
      const CounterKey key = phase_of_counter(e.name);
      if (!key.phase.empty()) {
        if (key.is_msgs) {
          phases[key.phase].comm_messages += static_cast<std::uint64_t>(e.value);
        } else {
          phases[key.phase].comm_bytes += static_cast<std::uint64_t>(e.value);
        }
      }
    }
  }
  for (auto& [name, agg] : phases) {
    for (const auto& [rank, seconds] : agg.rank_seconds) {
      agg.max_rank_seconds = std::max(agg.max_rank_seconds, seconds);
    }
  }
  return phases;
}

bool ModelValidationReport::all_within_band() const {
  return std::all_of(rows.begin(), rows.end(),
                     [](const PhaseRow& r) { return r.within_band; });
}

util::Table ModelValidationReport::to_table() const {
  util::Table table({"phase", "predicted_s", "measured_s", "ratio", "comm_bytes",
                     "msgs", "spans", "in_band"});
  for (const PhaseRow& r : rows) {
    table.add_row({r.phase, util::Table::fmt(r.predicted_seconds, 6),
                   util::Table::fmt(r.measured_seconds, 6),
                   util::Table::fmt(r.ratio, 3),
                   util::Table::fmt_int(static_cast<long long>(r.comm_bytes)),
                   util::Table::fmt_int(static_cast<long long>(r.comm_messages)),
                   util::Table::fmt_int(static_cast<long long>(r.span_count)),
                   r.within_band ? "yes" : "NO"});
  }
  for (const std::string& m : missing) {
    table.add_row({m, "-", "MISSING", "-", "-", "-", "0", "NO"});
  }
  return table;
}

void ModelValidationReport::to_json(std::ostream& out) const {
  out << "{\n  \"band\": [" << band_low << ", " << band_high << "],\n"
      << "  \"complete\": " << (complete() ? "true" : "false") << ",\n"
      << "  \"all_within_band\": " << (all_within_band() ? "true" : "false")
      << ",\n  \"missing_phases\": [";
  for (std::size_t i = 0; i < missing.size(); ++i) {
    out << (i != 0 ? ", " : "") << '"' << missing[i] << '"';
  }
  out << "],\n  \"phases\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PhaseRow& r = rows[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"phase\": \"%s\", \"predicted_seconds\": %.9g, "
                  "\"measured_seconds\": %.9g, \"ratio\": %.6g, "
                  "\"comm_bytes\": %llu, \"comm_messages\": %llu, "
                  "\"spans\": %llu, \"within_band\": %s}",
                  r.phase.c_str(), r.predicted_seconds, r.measured_seconds, r.ratio,
                  static_cast<unsigned long long>(r.comm_bytes),
                  static_cast<unsigned long long>(r.comm_messages),
                  static_cast<unsigned long long>(r.span_count),
                  r.within_band ? "true" : "false");
    out << buf << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

ModelValidationReport validate_model(const Snapshot& snap,
                                     std::span<const PhaseExpectation> expected,
                                     const ValidationOptions& options) {
  const auto phases = aggregate_phases(snap);
  ModelValidationReport report;
  report.band_low = options.band_low;
  report.band_high = options.band_high;
  for (const PhaseExpectation& exp : expected) {
    const auto it = phases.find(exp.phase);
    if (it == phases.end() || it->second.span_count == 0) {
      report.missing.push_back(exp.phase);
      continue;
    }
    const PhaseAggregate& agg = it->second;
    PhaseRow row;
    row.phase = exp.phase;
    row.predicted_seconds = exp.predicted_seconds;
    row.measured_seconds = agg.max_rank_seconds;
    row.ratio = row.measured_seconds > 0.0
                    ? row.predicted_seconds / row.measured_seconds
                    : 0.0;
    row.comm_bytes = agg.comm_bytes;
    row.comm_messages = agg.comm_messages;
    row.span_count = agg.span_count;
    row.within_band =
        row.ratio >= options.band_low && row.ratio <= options.band_high;
    report.rows.push_back(std::move(row));
  }
  return report;
}

}  // namespace amr::obs
