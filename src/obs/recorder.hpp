// obs: per-rank span recorder -- the tracing half of the observability
// subsystem (DESIGN.md §11).
//
// Instrumented code records three kinds of events:
//   * spans    -- AMR_SPAN("treesort.exchange") opens an RAII scope; one
//                 complete event (begin timestamp + duration) is recorded
//                 when the scope closes. Spans may carry an int64 payload
//                 (e.g. bytes moved by the op).
//   * instants -- AMR_INSTANT("optipart.round") marks a point in time.
//   * counters -- AMR_COUNTER("treesort.exchange/bytes", n) records an
//                 int64 sample (rendered as a counter track in the trace
//                 viewer; summed by the metrics aggregation).
//
// Recording is lock-free and allocation-free on the hot path: every
// thread owns a fixed-capacity ring buffer it alone writes (oldest events
// are overwritten on wrap, with a dropped count), created on the thread's
// first recorded event. Timestamps come from one process-wide
// steady-clock epoch. Each event is stamped with the thread's tid and the
// simmpi rank it was acting as (util/thread_id), which is how the Chrome
// exporter lays one pid per simulated rank.
//
// When tracing is disabled (the default; enable with AMR_TRACE=1 or
// obs::set_enabled(true)) every macro reduces to one relaxed atomic load
// -- no clock read, no buffer creation, no allocation.
//
// A third mode sits between off and full tracing: the *flight recorder*
// (AMR_FLIGHT_RECORDER=1, or =N for an N-event ring; obs::set_mode).
// Recording runs through exactly the same hot path, but each thread's
// ring is tiny (default 256 events), so the process retains only the
// last-events tail per thread -- bounded memory, always-on. The simmpi
// stall watchdog appends this tail to every DeadlockError diagnostic
// (obs::flight_dump, telemetry.hpp), turning a would-be hang into a
// readable "last N events per rank" post-mortem.
//
// Span and counter names must have static storage duration (string
// literals): the recorder stores the pointer, not a copy.
//
// snapshot() may be called at any time, but sees a consistent, complete
// picture only for threads that are quiescent or have finished (the
// normal use: after run_ranks joins / ThreadPool::run returns, whose
// synchronization orders the workers' writes before the reader).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace amr::obs {

enum class EventType : std::uint8_t {
  kSpan = 0,     ///< complete scope: [ts_ns, ts_ns + dur_ns)
  kInstant = 1,  ///< point event at ts_ns
  kCounter = 2,  ///< int64 sample at ts_ns (value)
};

struct Event {
  const char* name = nullptr;  ///< static-storage string
  std::int64_t ts_ns = 0;      ///< nanoseconds since the recorder epoch
  std::int64_t dur_ns = 0;     ///< spans only
  std::int64_t value = 0;      ///< counter sample / optional span payload
  std::int32_t rank = -1;      ///< simmpi rank, -1 = host
  std::int32_t tid = 0;        ///< process-unique small thread id
  EventType type = EventType::kSpan;
};

/// How (and whether) events are being retained.
enum class RecordMode : int {
  kOff = 0,     ///< macros are one relaxed load, nothing recorded
  kFull = 1,    ///< full-trace rings (default 1<<16 events per thread)
  kFlight = 2,  ///< flight-recorder rings (default 256 events per thread)
};

namespace detail {
/// -1 = unresolved (consult AMR_TRACE / AMR_FLIGHT_RECORDER on first
/// query), else the RecordMode as an int.
extern std::atomic<int> g_enabled;
int resolve_enabled_slow() noexcept;
void record(const Event& event) noexcept;
[[nodiscard]] std::int64_t now_ns() noexcept;
}  // namespace detail

/// Fast global switch; one relaxed load on the disabled path. True in
/// both full-trace and flight-recorder modes.
[[nodiscard]] inline bool enabled() noexcept {
  int v = detail::g_enabled.load(std::memory_order_relaxed);
  if (v < 0) v = detail::resolve_enabled_slow();
  return v > 0;
}

void set_enabled(bool on) noexcept;  ///< kFull / kOff (legacy toggle)
void set_mode(RecordMode mode) noexcept;
[[nodiscard]] RecordMode mode() noexcept;

/// Capacity (events) of full-trace rings created after this call; rounded
/// up to a power of two, default 1<<16 (or AMR_TRACE_BUFFER). Existing
/// buffers keep their size.
void set_buffer_capacity(std::size_t events);

/// Capacity of flight-recorder rings created after this call; rounded up
/// to a power of two, default 256 (or the numeric value of
/// AMR_FLIGHT_RECORDER when > 1).
void set_flight_capacity(std::size_t events);

/// Drop all recorded events and retire buffers of threads that have
/// exited. Callers must ensure no thread is concurrently recording.
void clear();

/// Number of thread ring buffers ever created and still tracked (test
/// hook: disabled-mode recording must create none).
[[nodiscard]] std::size_t buffer_count();

struct Snapshot {
  std::vector<Event> events;    ///< all retained events, ascending ts_ns
  std::uint64_t dropped = 0;    ///< events lost to ring wraparound
};

/// Collect every retained event from every thread buffer.
[[nodiscard]] Snapshot snapshot();

inline void instant(const char* name) noexcept {
  if (!enabled()) return;
  Event e;
  e.name = name;
  e.ts_ns = detail::now_ns();
  e.type = EventType::kInstant;
  detail::record(e);
}

inline void counter(const char* name, std::int64_t value) noexcept {
  if (!enabled()) return;
  Event e;
  e.name = name;
  e.ts_ns = detail::now_ns();
  e.value = value;
  e.type = EventType::kCounter;
  detail::record(e);
}

/// RAII span. The enabled() decision is latched at construction so a
/// scope that straddles a toggle stays internally consistent.
class SpanScope {
 public:
  explicit SpanScope(const char* name) noexcept {
    if (!enabled()) return;
    name_ = name;
    start_ns_ = detail::now_ns();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Attach an int64 payload (e.g. bytes moved) to the span event.
  void set_value(std::int64_t value) noexcept { value_ = value; }

  /// Record the span now instead of at scope exit. Idempotent.
  void close() noexcept {
    if (name_ == nullptr) return;
    Event e;
    e.name = name_;
    e.ts_ns = start_ns_;
    e.dur_ns = detail::now_ns() - start_ns_;
    e.value = value_;
    e.type = EventType::kSpan;
    detail::record(e);
    name_ = nullptr;
  }

  ~SpanScope() { close(); }

 private:
  const char* name_ = nullptr;  ///< null = recording skipped
  std::int64_t start_ns_ = 0;
  std::int64_t value_ = 0;
};

}  // namespace amr::obs

#define AMR_OBS_CONCAT_IMPL(a, b) a##b
#define AMR_OBS_CONCAT(a, b) AMR_OBS_CONCAT_IMPL(a, b)

/// Open a span for the rest of the enclosing scope.
#define AMR_SPAN(name) ::amr::obs::SpanScope AMR_OBS_CONCAT(amr_span_, __COUNTER__)(name)

/// Open a span bound to a local variable (so .set_value can be called).
#define AMR_SPAN_NAMED(var, name) ::amr::obs::SpanScope var(name)

#define AMR_INSTANT(name) ::amr::obs::instant(name)
#define AMR_COUNTER(name, value) ::amr::obs::counter((name), (value))
