// obs: streaming telemetry -- the always-on half of the observability
// subsystem (DESIGN.md §16).
//
// The span recorder (recorder.hpp) answers "what happened, in order"
// after a run; this module answers quantile and rate questions *during*
// one, at hot-kernel cost. Three pieces:
//
//  * obs::LatencyHistogram -- a log-bucketed histogram of non-negative
//    int64 samples (nanoseconds, bytes, counts). Buckets are 16 linear
//    sub-buckets per power of two (values < 16 are exact), so any
//    reported quantile is within one bucket -- <= 1/16 relative error --
//    of the exact order statistic. Histograms merge by bucket-wise
//    addition: the merge is associative and commutative, a merged
//    histogram is bit-for-bit the histogram of the concatenated streams,
//    and so is every quantile read from it. That associativity is what
//    lets per-thread shards fold into a process view and process views
//    fold across simmpi ranks (simmpi/dist_telemetry.hpp) without any
//    coordination on the write path.
//
//  * obs::Registry -- a process-wide named-metric registry of counters,
//    gauges, and latency histograms. Names resolve to small ids once
//    (under a mutex; call sites cache the id in a static). Updates are
//    lock-free and stay on thread-private shards: each thread that
//    records gets one shard per lifetime, only that thread writes it,
//    and collect() merges all shards on demand. Gauges are last-write
//    process globals (sharding a "current value" is meaningless).
//
//  * The disabled path: every update begins with one relaxed atomic load
//    of the telemetry switch (AMR_TELEMETRY=1 / set_telemetry_enabled)
//    and returns immediately when off -- no allocation, no shard touch,
//    no clock read -- so the macros/calls are safe to leave in the
//    hottest kernels (telemetry_test pins this).
//
// flight_dump() renders the recorder's retained events (normally the
// flight-recorder tail, recorder.hpp) as the human-readable per-rank
// post-mortem the simmpi stall watchdog appends to DeadlockError.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

namespace amr::obs {

/// Log-bucketed latency/size histogram. Value type: copy, merge, compare
/// freely. All counts are exact; only the value axis is quantized.
class LatencyHistogram {
 public:
  /// 2^kSubBits linear sub-buckets per octave: relative quantization
  /// error of a reported value is at most 2^-kSubBits (6.25%).
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// Exponents kSubBits..62 (int64 max) plus the exact [0, 16) range.
  static constexpr int kBucketCount = (62 - kSubBits + 1) * kSubBuckets + kSubBuckets;

  /// Bucket index of a sample; negatives clamp to bucket 0.
  [[nodiscard]] static int bucket_of(std::int64_t value) noexcept;
  /// Smallest / largest value mapping to `bucket`.
  [[nodiscard]] static std::int64_t bucket_lower_bound(int bucket) noexcept;
  [[nodiscard]] static std::int64_t bucket_upper_bound(int bucket) noexcept;

  void record(std::int64_t value) noexcept;
  void merge(const LatencyHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  /// Min/max of recorded samples (0 when empty).
  [[nodiscard]] std::int64_t min() const { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] std::int64_t max() const { return count_ > 0 ? max_ : 0; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Value at quantile q in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q * count)-th smallest sample -- within one bucket of the
  /// exact order statistic by construction. 0 when empty.
  [[nodiscard]] std::int64_t value_at_quantile(double q) const noexcept;
  [[nodiscard]] std::int64_t p50() const { return value_at_quantile(0.50); }
  [[nodiscard]] std::int64_t p99() const { return value_at_quantile(0.99); }
  [[nodiscard]] std::int64_t p999() const { return value_at_quantile(0.999); }

  /// Bitwise state comparison (buckets, count, sum, min, max) -- what the
  /// merge-algebra tests pin.
  [[nodiscard]] bool operator==(const LatencyHistogram& other) const;

  [[nodiscard]] const std::array<std::uint64_t, kBucketCount>& buckets() const {
    return buckets_;
  }

  /// One `{"count": ..., "p50": ..., ...}` JSON object (no newline).
  void to_json(std::ostream& out) const;

  /// Rebuild from the wire image dist_telemetry reduces: the bucket array
  /// plus the scalar tail. Used by allreduce_histogram.
  static LatencyHistogram from_parts(const std::array<std::uint64_t, kBucketCount>& buckets,
                                     std::uint64_t count, std::int64_t sum,
                                     std::int64_t min, std::int64_t max);

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ = std::numeric_limits<std::int64_t>::min();
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Stable small id of a registered metric; resolve once, update many.
using MetricId = int;

/// One metric's merged-across-shards view.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t value = 0;     ///< counter total / gauge last write
  LatencyHistogram histogram; ///< kHistogram only
};

namespace detail {
/// -1 = unresolved (consult AMR_TELEMETRY on first query), 0/1 = off/on.
extern std::atomic<int> g_telemetry_enabled;
int resolve_telemetry_slow() noexcept;
}  // namespace detail

/// Fast global switch for Registry updates; one relaxed load when off.
[[nodiscard]] inline bool telemetry_enabled() noexcept {
  int v = detail::g_telemetry_enabled.load(std::memory_order_relaxed);
  if (v < 0) v = detail::resolve_telemetry_slow();
  return v == 1;
}

void set_telemetry_enabled(bool on) noexcept;

class Registry {
 public:
  /// The process-wide registry (leaked, like the recorder's: recording
  /// threads may outlive static destruction).
  [[nodiscard]] static Registry& global();

  /// Resolve (registering on first use) a metric name to its id. Names
  /// must have static storage duration; the registry keeps the pointer.
  /// Re-registering a name with a different kind throws std::logic_error.
  [[nodiscard]] MetricId counter(const char* name);
  [[nodiscard]] MetricId gauge(const char* name);
  [[nodiscard]] MetricId histogram(const char* name);

  /// Hot-path updates: one relaxed load when telemetry is off; otherwise
  /// lock-free writes to the calling thread's shard (gauge: one relaxed
  /// store to a process global).
  void add(MetricId id, std::int64_t delta = 1) noexcept;
  void set_gauge(MetricId id, std::int64_t value) noexcept;
  void observe(MetricId id, std::int64_t value) noexcept;

  /// Merge every shard into one value per metric, in registration order.
  /// Sees a consistent picture for quiescent/finished writer threads (the
  /// recorder's snapshot contract).
  [[nodiscard]] std::vector<MetricValue> collect() const;

  /// Merged view of one histogram metric.
  [[nodiscard]] LatencyHistogram histogram_value(MetricId id) const;

  /// Zero every metric and retire shards of exited threads. Callers must
  /// ensure no thread is concurrently recording (test hook).
  void reset();

  /// Shards ever created and still tracked (test hook: the disabled path
  /// must create none).
  [[nodiscard]] std::size_t shard_count() const;

  /// Registered metric count (ids are 0..metric_count()-1).
  [[nodiscard]] std::size_t metric_count() const;

  /// Hard cap on distinct metrics: shards are fixed-size arrays so the
  /// update path never resizes anything.
  static constexpr std::size_t kMaxMetrics = 256;

  struct Impl;  ///< definition private to telemetry.cpp

 private:
  Registry();
  Impl* impl_;  ///< leaked with the registry
};

/// Render the recorder's retained events (the flight-recorder tail when
/// mode is kFlight, or whatever full tracing retained) as a per-rank
/// "last events" listing; at most `per_rank` newest events per rank.
/// States plainly when nothing was retained because recording is off.
[[nodiscard]] std::string flight_dump(std::size_t per_rank = 64);

}  // namespace amr::obs
