#include "obs/trace_export.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>

#include "util/log.hpp"

namespace amr::obs {

namespace {

/// Escape a string for a JSON literal (names are ASCII identifiers in
/// practice, but the exporter must never emit invalid JSON).
std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// ns -> trace microseconds, exact: "1234.567".
std::string micros(std::int64_t ns) {
  const bool neg = ns < 0;
  const std::int64_t abs = neg ? -ns : ns;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%s%lld.%03lld", neg ? "-" : "",
                static_cast<long long>(abs / 1000), static_cast<long long>(abs % 1000));
  return buf;
}

int pid_of(const Event& e) { return e.rank + 1; }  // host (-1) -> 0

}  // namespace

void write_chrome_trace(std::ostream& out, const Snapshot& snap) {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&]() -> std::ostream& {
    if (!first) out << ",\n";
    first = false;
    return out;
  };

  // Metadata: name the processes so the viewer shows ranks, not pids.
  std::set<int> pids;
  for (const Event& e : snap.events) pids.insert(pid_of(e));
  for (const int pid : pids) {
    sep() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
          << ",\"tid\":0,\"args\":{\"name\":\""
          << (pid == 0 ? std::string("host") : "rank " + std::to_string(pid - 1))
          << "\"}}";
    sep() << "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" << pid
          << ",\"tid\":0,\"args\":{\"sort_index\":" << pid << "}}";
  }

  for (const Event& e : snap.events) {
    const std::string name = json_escape(e.name);
    switch (e.type) {
      case EventType::kSpan:
        sep() << "{\"name\":\"" << name << "\",\"cat\":\"amr\",\"ph\":\"X\",\"ts\":"
              << micros(e.ts_ns) << ",\"dur\":" << micros(e.dur_ns)
              << ",\"pid\":" << pid_of(e) << ",\"tid\":" << e.tid;
        if (e.value != 0) out << ",\"args\":{\"value\":" << e.value << "}";
        out << "}";
        break;
      case EventType::kInstant:
        sep() << "{\"name\":\"" << name << "\",\"cat\":\"amr\",\"ph\":\"i\",\"ts\":"
              << micros(e.ts_ns) << ",\"pid\":" << pid_of(e) << ",\"tid\":" << e.tid
              << ",\"s\":\"t\"}";
        break;
      case EventType::kCounter:
        sep() << "{\"name\":\"" << name << "\",\"cat\":\"amr\",\"ph\":\"C\",\"ts\":"
              << micros(e.ts_ns) << ",\"pid\":" << pid_of(e) << ",\"tid\":" << e.tid
              << ",\"args\":{\"value\":" << e.value << "}}";
        break;
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
      << snap.dropped << "}}\n";
}

bool write_chrome_trace_file(const std::string& path, const Snapshot& snap) {
  std::ofstream out(path);
  if (!out) {
    AMR_LOG_ERROR << "trace_export: cannot open " << path;
    return false;
  }
  write_chrome_trace(out, snap);
  return static_cast<bool>(out);
}

}  // namespace amr::obs
