// obs: noise-aware BENCH_*.json comparison -- the perf-regression gate
// (DESIGN.md §16).
//
// The bench harnesses emit one JSON document per family; CI commits them
// as baselines. diff_bench() walks two documents' matching numeric leaf
// paths and classifies each field by its name:
//
//   * lower-better, host-dependent  -- *_seconds, *_ns, *_joules, median,
//     best: wall-clock and energy. Comparable only between runs on the
//     same host.
//   * higher-better, host-portable  -- *speedup*, *advantage*: ratios of
//     two timings from the same run, so they survive a host change.
//   * higher-better, host-dependent -- *_per_s, *throughput*.
//   * everything else               -- shape/config fields, not compared.
//
// A directional field regresses when it moves the wrong way by more than
// `ratio_threshold` AND (for time fields) both sides sit above the noise
// floor `min_time_seconds` -- sub-100us medians flap on shared runners
// and gate nothing. When the hostnames differ, host-dependent rows are
// demoted to informational and only the portable ratios gate.
//
// Runs are refused outright (incommensurable) when bench name, build
// type, or the effective AMR_THREADS differ -- comparing a Debug run to
// a Release baseline is not a regression signal. Fields absent on either
// side (older baselines) are simply not compared.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace amr::obs {

struct BenchDiffOptions {
  /// Flag when the wrong-direction ratio exceeds this (1.5 = 50% worse).
  double ratio_threshold = 1.5;
  /// Time rows where both sides are below this many seconds never gate.
  double min_time_seconds = 1e-4;
};

enum class DiffRowStatus {
  kOk,         ///< within threshold
  kRegressed,  ///< moved the wrong way beyond threshold
  kImproved,   ///< moved the right way beyond threshold
  kInfo,       ///< reported but never gates (host mismatch / noise floor)
};

struct DiffRow {
  std::string path;        ///< dotted JSON path, e.g. "scenarios[0].sort_speedup"
  double baseline = 0.0;
  double candidate = 0.0;
  double ratio = 0.0;      ///< candidate / baseline (0 when baseline is 0)
  DiffRowStatus status = DiffRowStatus::kOk;
  std::string note;
};

struct DiffReport {
  std::vector<DiffRow> rows;     ///< every directional field found in both docs
  bool incommensurable = false;
  std::string reason;            ///< set when incommensurable
  bool host_mismatch = false;    ///< hostnames differ; time rows demoted
  int regressions = 0;
  int improvements = 0;
};

/// Compare candidate against baseline (both parsed BENCH_*.json docs).
[[nodiscard]] DiffReport diff_bench(const util::Json& baseline,
                                    const util::Json& candidate,
                                    const BenchDiffOptions& options = {});

/// Human-readable rendering: one line per non-kOk row plus a verdict.
void print_report(std::ostream& out, const DiffReport& report,
                  bool show_ok_rows = false);

}  // namespace amr::obs
