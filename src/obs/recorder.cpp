#include "obs/recorder.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "util/thread_id.hpp"

namespace amr::obs {

namespace {

constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t c = 1;
  while (c < n) c <<= 1;
  return c;
}

/// Single-writer ring buffer. The owning thread is the only writer; the
/// snapshot reader synchronizes through the release store of head_ (and,
/// in the supported usage, through the join/batch-completion that made
/// the owner quiescent).
class ThreadBuffer {
 public:
  explicit ThreadBuffer(std::size_t capacity)
      : mask_(capacity - 1), slots_(capacity) {}

  void push(const Event& event) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    slots_[static_cast<std::size_t>(h) & mask_] = event;
    head_.store(h + 1, std::memory_order_release);
  }

  void collect(std::vector<Event>& out, std::uint64_t& dropped) const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t capacity = mask_ + 1;
    const std::uint64_t kept = h < capacity ? h : capacity;
    dropped += h - kept;
    for (std::uint64_t i = h - kept; i < h; ++i) {
      out.push_back(slots_[static_cast<std::size_t>(i) & mask_]);
    }
  }

  void reset() noexcept { head_.store(0, std::memory_order_release); }

  /// Set by the owning thread's exit hook; clear() prunes dead buffers.
  std::atomic<bool> owner_alive{true};

 private:
  std::atomic<std::uint64_t> head_{0};
  std::size_t mask_;
  std::vector<Event> slots_;
};

constexpr std::size_t kDefaultFlightCapacity = 256;

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::size_t capacity = 0;         ///< 0 = resolve from env on first buffer
  std::size_t flight_capacity = 0;  ///< 0 = resolve from env on first buffer
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: threads may outlive statics
  return *r;
}

std::size_t resolve_capacity() {
  Registry& r = registry();
  if (amr::obs::mode() == amr::obs::RecordMode::kFlight) {
    if (r.flight_capacity == 0) {
      std::size_t cap = kDefaultFlightCapacity;
      if (const char* env = std::getenv("AMR_FLIGHT_RECORDER")) {
        const long long v = std::atoll(env);
        if (v > 1) cap = static_cast<std::size_t>(v);
      }
      r.flight_capacity = round_up_pow2(std::max<std::size_t>(cap, 8));
    }
    return r.flight_capacity;
  }
  if (r.capacity == 0) {
    std::size_t cap = kDefaultCapacity;
    if (const char* env = std::getenv("AMR_TRACE_BUFFER")) {
      const long long v = std::atoll(env);
      if (v > 0) cap = static_cast<std::size_t>(v);
    }
    r.capacity = round_up_pow2(std::max<std::size_t>(cap, 8));
  }
  return r.capacity;
}

/// Thread-local handle; its destructor marks the buffer as orphaned so a
/// later clear() can prune it, while snapshot() still sees the events of
/// finished threads (simmpi rank threads are gone by the time the tool
/// exports the trace).
struct LocalHandle {
  std::shared_ptr<ThreadBuffer> buffer;
  ~LocalHandle() {
    if (buffer) buffer->owner_alive.store(false, std::memory_order_release);
  }
};

ThreadBuffer& local_buffer() {
  thread_local LocalHandle handle;
  if (!handle.buffer) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    handle.buffer = std::make_shared<ThreadBuffer>(resolve_capacity());
    r.buffers.push_back(handle.buffer);
  }
  return *handle.buffer;
}

std::int64_t epoch_ns() noexcept {
  static const std::int64_t epoch =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return epoch;
}

}  // namespace

namespace detail {

std::atomic<int> g_enabled{-1};

int resolve_enabled_slow() noexcept {
  const char* trace = std::getenv("AMR_TRACE");
  const char* flight = std::getenv("AMR_FLIGHT_RECORDER");
  int v = 0;
  if (trace != nullptr && trace[0] != '\0' && trace[0] != '0') {
    v = static_cast<int>(RecordMode::kFull);
  } else if (flight != nullptr && flight[0] != '\0' && flight[0] != '0') {
    v = static_cast<int>(RecordMode::kFlight);
  }
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed);
}

std::int64_t now_ns() noexcept {
  const std::int64_t t = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now().time_since_epoch())
                             .count();
  return t - epoch_ns();
}

void record(const Event& event) noexcept {
  Event stamped = event;
  stamped.rank = util::current_rank();
  stamped.tid = util::current_tid();
  local_buffer().push(stamped);
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(
      static_cast<int>(on ? RecordMode::kFull : RecordMode::kOff),
      std::memory_order_relaxed);
}

void set_mode(RecordMode mode) noexcept {
  detail::g_enabled.store(static_cast<int>(mode), std::memory_order_relaxed);
}

RecordMode mode() noexcept {
  int v = detail::g_enabled.load(std::memory_order_relaxed);
  if (v < 0) v = detail::resolve_enabled_slow();
  return static_cast<RecordMode>(v);
}

void set_buffer_capacity(std::size_t events) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.capacity = round_up_pow2(std::max<std::size_t>(events, 8));
}

void set_flight_capacity(std::size_t events) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.flight_capacity = round_up_pow2(std::max<std::size_t>(events, 8));
}

void clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::erase_if(r.buffers, [](const std::shared_ptr<ThreadBuffer>& b) {
    return !b->owner_alive.load(std::memory_order_acquire);
  });
  for (const auto& b : r.buffers) b->reset();
}

std::size_t buffer_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.buffers.size();
}

Snapshot snapshot() {
  Registry& r = registry();
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    for (const auto& b : r.buffers) b->collect(snap.events, snap.dropped);
  }
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const Event& a, const Event& b) { return a.ts_ns < b.ts_ns; });
  return snap;
}

}  // namespace amr::obs
