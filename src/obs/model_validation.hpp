// Model-validation report: the join between what the performance model
// predicted and what the instrumented code actually did (DESIGN.md §11).
//
// The paper's argument rests on Eq. 3 -- Tp = alpha*tc*Wmax + tw*Cmax --
// and OptiPart chooses partitions by it, so every distributed_pipeline
// run should double as an audit of the model. The flow:
//
//   1. Instrumented phases (AMR_SPAN names, a stable public contract) are
//      aggregated from a recorder Snapshot: per phase, the per-rank span
//      totals, the max over ranks (what a bulk-synchronous model
//      predicts), and the communication bytes attributed to the phase by
//      the "<phase>/bytes" ledger-delta counters.
//   2. The caller supplies one PhaseExpectation per phase it can price
//      (treesort phases via Eq. 2's breakdown, the matvec epoch via the
//      overlap-aware Eq. 3 extension, exchange phases via tw/ts on the
//      measured volume, and the incremental adapt epoch's rows --
//      sort.merge via one read+write pass over octants plus the 128-bit
//      key cache, part.migrate via the two migration-quality sweeps and
//      their reductions; DESIGN.md §13).
//   3. validate_model joins the two into predicted/measured/ratio rows,
//      flags rows whose ratio leaves the configured band, and lists
//      expected phases with no measurement (instrumentation rot -- CI
//      fails on it).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "util/table.hpp"

namespace amr::obs {

/// Aggregate of one span name over a Snapshot.
struct PhaseAggregate {
  double max_rank_seconds = 0.0;    ///< max over ranks of per-rank span total
  double total_seconds = 0.0;       ///< sum over all ranks/threads
  std::uint64_t span_count = 0;
  std::uint64_t comm_bytes = 0;     ///< sum of "<phase>/bytes" counters
  std::uint64_t comm_messages = 0;  ///< sum of "<phase>/msgs" counters
  std::map<int, double> rank_seconds;
};

/// Span totals + byte counters per phase name. Counter events named
/// "<phase>/bytes" ("/msgs") are folded into the phase's comm_bytes
/// (comm_messages); other counters and instants are ignored here (the
/// trace keeps them).
[[nodiscard]] std::map<std::string, PhaseAggregate> aggregate_phases(
    const Snapshot& snap);

struct PhaseExpectation {
  std::string phase;
  double predicted_seconds = 0.0;
};

struct ValidationOptions {
  /// Acceptable predicted/measured ratio band. The defaults are wide on
  /// purpose: the machine model prices a modeled interconnect, not this
  /// host, so the report's job is to catch order-of-magnitude breaks and
  /// trends, not 5% noise.
  double band_low = 0.1;
  double band_high = 10.0;
};

struct PhaseRow {
  std::string phase;
  double predicted_seconds = 0.0;
  double measured_seconds = 0.0;  ///< max over ranks
  double ratio = 0.0;             ///< predicted / measured
  std::uint64_t comm_bytes = 0;
  std::uint64_t comm_messages = 0;
  std::uint64_t span_count = 0;
  bool within_band = false;
};

struct ModelValidationReport {
  std::vector<PhaseRow> rows;
  std::vector<std::string> missing;  ///< expected phases never measured
  double band_low = 0.0;
  double band_high = 0.0;

  /// Every expected phase was measured at least once.
  [[nodiscard]] bool complete() const { return missing.empty(); }
  [[nodiscard]] bool all_within_band() const;

  [[nodiscard]] util::Table to_table() const;
  void to_json(std::ostream& out) const;
};

/// Join measured phase aggregates against the model's predictions.
[[nodiscard]] ModelValidationReport validate_model(
    const Snapshot& snap, std::span<const PhaseExpectation> expected,
    const ValidationOptions& options = {});

}  // namespace amr::obs
