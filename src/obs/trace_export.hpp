// Chrome trace_event exporter: renders a recorder Snapshot as the JSON
// object format understood by chrome://tracing and https://ui.perfetto.dev
// (DESIGN.md §11).
//
// Layout: one trace "process" per simulated simmpi rank (pid = rank + 1;
// pid 0 is the host -- main thread, ThreadPool workers, bench harness),
// one trace "thread" per real thread (tid from util/thread_id). Spans
// become complete events ("ph":"X"), instants "i", counters "C"; process
// rows are labeled with metadata events so Perfetto shows "rank 3"
// instead of a bare pid.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/recorder.hpp"

namespace amr::obs {

/// Write `snap` as Chrome trace JSON. Timestamps are emitted in
/// microseconds (the trace_event unit) with nanosecond precision kept in
/// the fractional digits.
void write_chrome_trace(std::ostream& out, const Snapshot& snap);

/// Convenience: write to `path`; returns false (and logs) on failure.
bool write_chrome_trace_file(const std::string& path, const Snapshot& snap);

}  // namespace amr::obs
