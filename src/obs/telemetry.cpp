#include "obs/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/recorder.hpp"

namespace amr::obs {

// ---------------------------------------------------------------------------
// LatencyHistogram

int LatencyHistogram::bucket_of(std::int64_t value) noexcept {
  if (value < 0) return 0;
  const auto u = static_cast<std::uint64_t>(value);
  if (u < kSubBuckets) return static_cast<int>(u);
  const int e = 63 - std::countl_zero(u);  // exponent of the leading bit
  return (e - kSubBits + 1) * kSubBuckets +
         static_cast<int>((u >> (e - kSubBits)) & (kSubBuckets - 1));
}

std::int64_t LatencyHistogram::bucket_lower_bound(int bucket) noexcept {
  if (bucket < kSubBuckets) return bucket;
  const int e = bucket / kSubBuckets + kSubBits - 1;
  const int sub = bucket % kSubBuckets;
  return static_cast<std::int64_t>(kSubBuckets + sub) << (e - kSubBits);
}

std::int64_t LatencyHistogram::bucket_upper_bound(int bucket) noexcept {
  if (bucket >= kBucketCount - 1) return std::numeric_limits<std::int64_t>::max();
  return bucket_lower_bound(bucket + 1) - 1;
}

void LatencyHistogram::record(std::int64_t value) noexcept {
  ++buckets_[static_cast<std::size_t>(bucket_of(value))];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::int64_t LatencyHistogram::value_at_quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[static_cast<std::size_t>(i)];
    if (cumulative >= target) {
      // Clamping by the observed max only tightens the answer: the max lives
      // in this bucket or a later one, so the result stays within-bucket.
      return std::min(bucket_upper_bound(i), max_);
    }
  }
  return max_;  // unreachable when the invariants hold
}

bool LatencyHistogram::operator==(const LatencyHistogram& other) const {
  if (count_ != other.count_ || sum_ != other.sum_ || buckets_ != other.buckets_) {
    return false;
  }
  return count_ == 0 || (min_ == other.min_ && max_ == other.max_);
}

void LatencyHistogram::to_json(std::ostream& out) const {
  out << "{\"count\": " << count_ << ", \"sum\": " << (count_ > 0 ? sum_ : 0)
      << ", \"min\": " << min() << ", \"max\": " << max() << ", \"mean\": " << mean()
      << ", \"p50\": " << p50() << ", \"p99\": " << p99() << ", \"p999\": " << p999()
      << "}";
}

LatencyHistogram LatencyHistogram::from_parts(
    const std::array<std::uint64_t, kBucketCount>& buckets, std::uint64_t count,
    std::int64_t sum, std::int64_t min, std::int64_t max) {
  LatencyHistogram h;
  h.buckets_ = buckets;
  h.count_ = count;
  if (count > 0) {
    h.sum_ = sum;
    h.min_ = min;
    h.max_ = max;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Registry

namespace detail {

std::atomic<int> g_telemetry_enabled{-1};

int resolve_telemetry_slow() noexcept {
  const char* env = std::getenv("AMR_TELEMETRY");
  const int v = (env != nullptr && env[0] != '\0' && env[0] != '0') ? 1 : 0;
  int expected = -1;
  g_telemetry_enabled.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  return g_telemetry_enabled.load(std::memory_order_relaxed);
}

}  // namespace detail

void set_telemetry_enabled(bool on) noexcept {
  detail::g_telemetry_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace {

/// Histogram state of one (shard, metric) pair. Owner-only writes with
/// relaxed atomics; a concurrent collect() reads a racy-but-defined view
/// and a quiescent-writer collect() reads an exact one (the same contract
/// as the span recorder's snapshot()).
struct ShardHist {
  std::array<std::atomic<std::uint64_t>, LatencyHistogram::kBucketCount> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::int64_t> sum{0};
  std::atomic<std::int64_t> min{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max{std::numeric_limits<std::int64_t>::min()};
};

}  // namespace

struct Registry::Impl {
  struct MetricInfo {
    const char* name = nullptr;  ///< static-storage string, not copied
    MetricKind kind = MetricKind::kCounter;
  };

  /// One thread's private slice of every counter/histogram metric. Fixed
  /// arrays so the update path never resizes; histograms allocate lazily
  /// (one acquire load per observe, one allocation per (thread, metric)).
  struct Shard {
    std::array<std::atomic<std::int64_t>, kMaxMetrics> counters{};
    std::array<std::atomic<ShardHist*>, kMaxMetrics> hists{};
    std::atomic<bool> owner_alive{true};

    ~Shard() {
      for (auto& slot : hists) delete slot.load(std::memory_order_acquire);
    }
  };

  mutable std::mutex mutex;
  std::vector<MetricInfo> metrics;
  std::vector<std::shared_ptr<Shard>> shards;
  std::array<std::atomic<std::int64_t>, kMaxMetrics> gauges{};

  MetricId register_metric(const char* name, MetricKind kind) {
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      if (std::strcmp(metrics[i].name, name) == 0) {
        if (metrics[i].kind != kind) {
          throw std::logic_error(std::string("telemetry metric '") + name +
                                 "' re-registered with a different kind");
        }
        return static_cast<MetricId>(i);
      }
    }
    if (metrics.size() >= kMaxMetrics) {
      throw std::length_error("telemetry registry full (kMaxMetrics)");
    }
    metrics.push_back(MetricInfo{name, kind});
    return static_cast<MetricId>(metrics.size() - 1);
  }
};

namespace {

/// Thread-local shard handle. There is exactly one Registry (the leaked
/// global), so one handle per thread suffices; the destructor orphans the
/// shard so reset() can prune it once the thread is gone, while collect()
/// still folds the finished thread's contribution.
struct ShardHandle {
  std::shared_ptr<Registry::Impl::Shard> shard;
  ~ShardHandle() {
    if (shard) shard->owner_alive.store(false, std::memory_order_release);
  }
};

Registry::Impl::Shard& local_shard(Registry::Impl& impl) {
  thread_local ShardHandle handle;
  if (!handle.shard) {
    std::lock_guard<std::mutex> lock(impl.mutex);
    handle.shard = std::make_shared<Registry::Impl::Shard>();
    impl.shards.push_back(handle.shard);
  }
  return *handle.shard;
}

/// Fold one shard's histogram state into an exact-value LatencyHistogram.
LatencyHistogram fold_shard_hist(const ShardHist& sh) {
  std::array<std::uint64_t, LatencyHistogram::kBucketCount> buckets{};
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] = sh.buckets[i].load(std::memory_order_relaxed);
  }
  return LatencyHistogram::from_parts(
      buckets, sh.count.load(std::memory_order_relaxed),
      sh.sum.load(std::memory_order_relaxed), sh.min.load(std::memory_order_relaxed),
      sh.max.load(std::memory_order_relaxed));
}

}  // namespace

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::global() {
  static Registry* r = new Registry;  // leaked: threads may outlive statics
  return *r;
}

MetricId Registry::counter(const char* name) {
  return impl_->register_metric(name, MetricKind::kCounter);
}

MetricId Registry::gauge(const char* name) {
  return impl_->register_metric(name, MetricKind::kGauge);
}

MetricId Registry::histogram(const char* name) {
  return impl_->register_metric(name, MetricKind::kHistogram);
}

void Registry::add(MetricId id, std::int64_t delta) noexcept {
  if (!telemetry_enabled()) return;
  if (id < 0 || static_cast<std::size_t>(id) >= kMaxMetrics) return;
  local_shard(*impl_).counters[static_cast<std::size_t>(id)].fetch_add(
      delta, std::memory_order_relaxed);
}

void Registry::set_gauge(MetricId id, std::int64_t value) noexcept {
  if (!telemetry_enabled()) return;
  if (id < 0 || static_cast<std::size_t>(id) >= kMaxMetrics) return;
  impl_->gauges[static_cast<std::size_t>(id)].store(value, std::memory_order_relaxed);
}

void Registry::observe(MetricId id, std::int64_t value) noexcept {
  if (!telemetry_enabled()) return;
  if (id < 0 || static_cast<std::size_t>(id) >= kMaxMetrics) return;
  Impl::Shard& shard = local_shard(*impl_);
  auto& slot = shard.hists[static_cast<std::size_t>(id)];
  ShardHist* h = slot.load(std::memory_order_acquire);
  if (h == nullptr) {
    h = new ShardHist;
    slot.store(h, std::memory_order_release);  // owner is the only writer
  }
  h->buckets[static_cast<std::size_t>(LatencyHistogram::bucket_of(value))].fetch_add(
      1, std::memory_order_relaxed);
  h->count.fetch_add(1, std::memory_order_relaxed);
  h->sum.fetch_add(value, std::memory_order_relaxed);
  if (value < h->min.load(std::memory_order_relaxed)) {
    h->min.store(value, std::memory_order_relaxed);
  }
  if (value > h->max.load(std::memory_order_relaxed)) {
    h->max.store(value, std::memory_order_relaxed);
  }
}

std::vector<MetricValue> Registry::collect() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<MetricValue> out;
  out.reserve(impl_->metrics.size());
  for (std::size_t id = 0; id < impl_->metrics.size(); ++id) {
    MetricValue v;
    v.name = impl_->metrics[id].name;
    v.kind = impl_->metrics[id].kind;
    switch (v.kind) {
      case MetricKind::kCounter:
        for (const auto& shard : impl_->shards) {
          v.value += shard->counters[id].load(std::memory_order_relaxed);
        }
        break;
      case MetricKind::kGauge:
        v.value = impl_->gauges[id].load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram:
        for (const auto& shard : impl_->shards) {
          if (const ShardHist* h = shard->hists[id].load(std::memory_order_acquire)) {
            v.histogram.merge(fold_shard_hist(*h));
          }
        }
        v.value = static_cast<std::int64_t>(v.histogram.count());
        break;
    }
    out.push_back(std::move(v));
  }
  return out;
}

LatencyHistogram Registry::histogram_value(MetricId id) const {
  LatencyHistogram merged;
  if (id < 0 || static_cast<std::size_t>(id) >= kMaxMetrics) return merged;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& shard : impl_->shards) {
    if (const ShardHist* h =
            shard->hists[static_cast<std::size_t>(id)].load(std::memory_order_acquire)) {
      merged.merge(fold_shard_hist(*h));
    }
  }
  return merged;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::erase_if(impl_->shards, [](const std::shared_ptr<Impl::Shard>& s) {
    return !s->owner_alive.load(std::memory_order_acquire);
  });
  for (const auto& shard : impl_->shards) {
    for (std::size_t i = 0; i < kMaxMetrics; ++i) {
      shard->counters[i].store(0, std::memory_order_relaxed);
      if (ShardHist* h = shard->hists[i].load(std::memory_order_acquire)) {
        for (auto& b : h->buckets) b.store(0, std::memory_order_relaxed);
        h->count.store(0, std::memory_order_relaxed);
        h->sum.store(0, std::memory_order_relaxed);
        h->min.store(std::numeric_limits<std::int64_t>::max(),
                     std::memory_order_relaxed);
        h->max.store(std::numeric_limits<std::int64_t>::min(),
                     std::memory_order_relaxed);
      }
    }
  }
  for (auto& g : impl_->gauges) g.store(0, std::memory_order_relaxed);
}

std::size_t Registry::shard_count() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->shards.size();
}

std::size_t Registry::metric_count() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->metrics.size();
}

// ---------------------------------------------------------------------------
// flight_dump

std::string flight_dump(std::size_t per_rank) {
  std::ostringstream out;
  const RecordMode m = mode();
  if (m == RecordMode::kOff) {
    out << "flight recorder: off (set AMR_FLIGHT_RECORDER=1 to retain a "
           "per-thread event tail)\n";
    return out.str();
  }
  const Snapshot snap = snapshot();
  out << "flight recorder (" << (m == RecordMode::kFlight ? "flight" : "full-trace")
      << " mode, " << snap.events.size() << " events retained, " << snap.dropped
      << " overwritten):\n";
  if (snap.events.empty()) {
    out << "  (no events recorded)\n";
    return out.str();
  }
  std::map<int, std::vector<const Event*>> by_rank;
  for (const Event& e : snap.events) by_rank[e.rank].push_back(&e);
  for (const auto& [rank, events] : by_rank) {
    const std::size_t n = std::min(per_rank, events.size());
    out << "  ";
    if (rank < 0) {
      out << "host";
    } else {
      out << "rank " << rank;
    }
    out << " -- last " << n << " of " << events.size() << " events:\n";
    for (std::size_t i = events.size() - n; i < events.size(); ++i) {
      const Event& e = *events[i];
      out << "    t+" << e.ts_ns << "ns tid=" << e.tid << ' ';
      switch (e.type) {
        case EventType::kSpan:
          out << "span " << e.name << " dur=" << e.dur_ns << "ns";
          if (e.value != 0) out << " value=" << e.value;
          break;
        case EventType::kInstant:
          out << "instant " << e.name;
          break;
        case EventType::kCounter:
          out << "counter " << e.name << " = " << e.value;
          break;
      }
      out << '\n';
    }
  }
  return out.str();
}

}  // namespace amr::obs
