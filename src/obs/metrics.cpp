#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "energy/sampler.hpp"
#include "partition/metrics.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/dist_fem.hpp"

namespace amr::obs {

namespace {

/// JSON-safe number: finite doubles as shortest round-trip-ish form,
/// non-finite as null (JSON has no inf/nan).
void write_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    out << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

void write_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

void pad(std::ostream& out, int indent) {
  for (int i = 0; i < indent; ++i) out << ' ';
}

}  // namespace

RunMetrics& RunMetrics::child(const std::string& name) {
  for (RunMetrics& c : children_) {
    if (c.name_ == name) return c;
  }
  children_.emplace_back(name);
  return children_.back();
}

const RunMetrics* RunMetrics::find(const std::string& name) const {
  for (const RunMetrics& c : children_) {
    if (c.name_ == name) return &c;
  }
  return nullptr;
}

void RunMetrics::set(const std::string& key, double value) {
  for (auto& [k, v] : values_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  values_.emplace_back(key, value);
}

double RunMetrics::get(const std::string& key, double fallback) const {
  for (const auto& [k, v] : values_) {
    if (k == key) return v;
  }
  return fallback;
}

void RunMetrics::to_json(std::ostream& out, int indent) const {
  out << "{\n";
  bool first = true;
  for (const auto& [k, v] : values_) {
    if (!first) out << ",\n";
    first = false;
    pad(out, indent + 2);
    write_string(out, k);
    out << ": ";
    write_number(out, v);
  }
  for (const RunMetrics& c : children_) {
    if (!first) out << ",\n";
    first = false;
    pad(out, indent + 2);
    write_string(out, c.name_);
    out << ": ";
    c.to_json(out, indent + 2);
  }
  out << "\n";
  pad(out, indent);
  out << "}";
}

void RunMetrics::to_text(std::ostream& out, int indent) const {
  if (!name_.empty()) {
    pad(out, indent);
    out << name_ << ":\n";
    indent += 2;
  }
  for (const auto& [k, v] : values_) {
    pad(out, indent);
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out << k << " = " << buf << "\n";
  }
  for (const RunMetrics& c : children_) c.to_text(out, indent);
}

std::string RunMetrics::json() const {
  std::ostringstream out;
  to_json(out);
  out << "\n";
  return out.str();
}

std::string RunMetrics::text() const {
  std::ostringstream out;
  to_text(out);
  return out.str();
}

void append_ledger(RunMetrics& node, const simmpi::CostLedger& ledger) {
  node.set("collective_bytes_sent", static_cast<double>(ledger.bytes_sent));
  node.set("collective_messages", static_cast<double>(ledger.messages_sent));
  node.set("collectives", static_cast<double>(ledger.collectives));
  node.set("p2p_bytes_sent", static_cast<double>(ledger.p2p_bytes_sent));
  node.set("p2p_messages_sent", static_cast<double>(ledger.p2p_messages_sent));
  node.set("p2p_bytes_received", static_cast<double>(ledger.p2p_bytes_received));
  node.set("p2p_messages_received",
           static_cast<double>(ledger.p2p_messages_received));
  node.set("total_bytes_sent", static_cast<double>(ledger.total_bytes_sent()));
}

void append_ledgers(RunMetrics& node, std::span<const simmpi::CostLedger> ledgers) {
  simmpi::CostLedger total;
  std::uint64_t max_bytes = 0;
  for (const simmpi::CostLedger& l : ledgers) {
    total.bytes_sent += l.bytes_sent;
    total.messages_sent += l.messages_sent;
    total.collectives += l.collectives;
    total.p2p_bytes_sent += l.p2p_bytes_sent;
    total.p2p_messages_sent += l.p2p_messages_sent;
    total.p2p_bytes_received += l.p2p_bytes_received;
    total.p2p_messages_received += l.p2p_messages_received;
    max_bytes = std::max(max_bytes, l.total_bytes_sent());
  }
  append_ledger(node.child("total"), total);
  node.set("ranks", static_cast<double>(ledgers.size()));
  node.set("max_rank_bytes_sent", static_cast<double>(max_bytes));
  node.set("total_bytes_sent", static_cast<double>(total.total_bytes_sent()));
  node.set("total_messages_sent",
           static_cast<double>(total.total_messages_sent()));
  for (std::size_t r = 0; r < ledgers.size(); ++r) {
    append_ledger(node.child("rank_" + std::to_string(r)), ledgers[r]);
  }
}

void append_fem_report(RunMetrics& node, const simmpi::DistFemReport& report) {
  node.set("compute_seconds", report.compute_seconds);
  node.set("exchange_seconds", report.exchange_seconds);
  node.set("post_seconds", report.post_seconds);
  node.set("exchange_wait_seconds", report.exchange_wait_seconds);
  node.set("interior_compute_seconds", report.interior_compute_seconds);
  node.set("boundary_compute_seconds", report.boundary_compute_seconds);
  node.set("plan_seconds", report.plan_seconds);
  node.set("ghost_elements_sent", static_cast<double>(report.ghost_elements_sent));
  node.set("exposed_comm_fraction", report.exposed_comm_fraction());
}

void append_partition_metrics(RunMetrics& node, const partition::Metrics& metrics) {
  node.set("w_max", metrics.w_max);
  node.set("c_max", metrics.c_max);
  node.set("m_max", metrics.m_max);
  node.set("load_imbalance", metrics.load_imbalance);
  node.set("comm_imbalance", metrics.comm_imbalance);
  node.set("total_boundary", metrics.total_boundary);
}

void append_energy_report(RunMetrics& node, const energy::EnergyReport& report) {
  node.set("duration_s", report.duration_s);
  node.set("total_joules", report.total_joules);
  node.set("comm_joules", report.comm_joules);
  node.set("samples", static_cast<double>(report.samples));
  node.set("nodes", static_cast<double>(report.per_node_joules.size()));
}

}  // namespace amr::obs
