// Analytic element densities for the cluster simulator.
//
// The paper's weak-scaling runs partition up to 262 *billion* elements,
// which cannot be materialized here. But the element distributions are
// separable (each coordinate drawn independently: uniform, normal or
// log-normal, §4.2), so the expected number of elements in any dyadic box
// is N times a product of three 1D CDF differences. That is all the
// splitter-selection control flow of TreeSort/OptiPart consumes -- bucket
// counts per child per level -- so the simulator can run the *exact*
// algorithm logic at full N and p and charge machine-model costs for each
// round (see splitter_sim.hpp).
#pragma once

#include <array>

#include "octree/generate.hpp"
#include "octree/octant.hpp"

namespace amr::sim {

/// Probability mass of an axis-aligned box under the generator's (clamped)
/// coordinate distribution.
class Density {
 public:
  explicit Density(const octree::GenerateOptions& options) : options_(options) {}

  /// Probability of a child box given we work in fractions of the unit
  /// cube: [lo, hi) per axis.
  [[nodiscard]] double box_probability(const std::array<double, 3>& lo,
                                       const std::array<double, 3>& hi) const;

  /// 1D CDF of a single coordinate at x in [0, 1], including the clamping
  /// of out-of-range draws to the domain edges.
  [[nodiscard]] double axis_cdf(double x) const;

  [[nodiscard]] int dim() const { return options_.dim; }

 private:
  octree::GenerateOptions options_;
};

}  // namespace amr::sim
