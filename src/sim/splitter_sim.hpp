// Cluster-scale simulation of the partitioning algorithms (paper §5.1/5.2).
//
// Executes the *control flow* of distributed TreeSort / OptiPart splitter
// selection -- per-level bucket refinement of every target cut r*N/p --
// against an analytic density (density.hpp) instead of materialized
// elements, and charges each phase to the machine model:
//
//   local bucketing  : tc * (N/p) * element_bytes per refinement level
//   splitter rounds  : (ts + tw * k * 8) * log2 p per level (Eq. 2, staged
//                      splitter count k <= p)
//   all-to-all       : tw * (N/p) * element_bytes, staged over log p steps
//
// The SampleSort baseline (Dendro) is modeled per the analysis cited in
// §3.1/[34]: comparison local sort (log-factor on the grain), an
// all-gather of p*(p-1) samples plus their sort, and the same exchange.
// The p^2 sample term is what OptiPart's bucket-count selection avoids.
#pragma once

#include <cstdint>

#include "machine/perf_model.hpp"
#include "octree/generate.hpp"
#include "sfc/curve.hpp"
#include "sim/density.hpp"

namespace amr::sim {

struct SimConfig {
  std::uint64_t n = 1'000'000;  ///< global element count
  int p = 64;                   ///< ranks
  int staged_splitters = 0;     ///< Eq. 2's k; 0 means min(p, 4096)
  double tolerance = 0.0;       ///< stop refining a cut within tol*N/p
  int max_depth = octree::kMaxDepth;
  sfc::CurveKind curve = sfc::CurveKind::kHilbert;
  octree::GenerateOptions distribution;  ///< density parameters
  double element_bytes = 32.0;  ///< one octant key (x,y,z,level + padding)
};

struct SimBreakdown {
  double local_sort = 0.0;
  double splitter = 0.0;
  double all2all = 0.0;
  [[nodiscard]] double total() const { return local_sort + splitter + all2all; }
};

struct SimResult {
  int levels_used = 0;
  SimBreakdown time;
  double max_deviation_elements = 0.0;  ///< worst |cut - target|
  double achieved_tolerance = 0.0;      ///< as a fraction of N/p
};

/// Simulate distributed TreeSort splitter selection + exchange.
[[nodiscard]] SimResult simulate_treesort(const SimConfig& config,
                                          const machine::MachineModel& machine);

/// Simulate the SampleSort (Dendro) baseline on the same workload.
[[nodiscard]] SimResult simulate_samplesort(const SimConfig& config,
                                            const machine::MachineModel& machine);

}  // namespace amr::sim
