// Matvec-epoch simulation: turns partition quality (per-rank work and the
// communication matrix) into a bulk-synchronous execution timeline, total
// runtime, and sampled per-node energy (paper §5.4's 100-matvec jobs).
//
// Each iteration: every rank computes (alpha*tc*W_r), a barrier, then the
// ghost exchange (tw*C_r + ts per message). Iteration time is
// max(compute) + max(comm) -- the same Wmax/Cmax structure as Eq. 3, kept
// per-rank so node-level energy differences (Fig. 9) are visible.
#pragma once

#include "energy/sampler.hpp"
#include "machine/perf_model.hpp"
#include "mesh/comm_matrix.hpp"
#include "partition/metrics.hpp"

namespace amr::sim {

struct MatvecSimConfig {
  int iterations = 100;
  /// Model the overlapped exchange (dist_matvec_loop_overlapped): per rank
  /// an iteration costs max(interior_compute, comm) + boundary_compute
  /// instead of compute-then-exchange; only the exposed part of the
  /// communication extends the timeline.
  bool overlap = false;
  /// Per-rank boundary work in elements (overlap mode). Empty derives it
  /// from the comm matrix -- each ghost element a rank sends or receives
  /// touches about one boundary element -- clamped to the rank's work.
  std::vector<double> boundary_work;
  energy::SamplerOptions sampler;
};

struct MatvecSimResult {
  double total_seconds = 0.0;
  double compute_seconds = 0.0;  ///< sum over iterations of max compute
  double comm_seconds = 0.0;     ///< sum over iterations of max comm
  double total_data_elements = 0.0;  ///< ghost elements moved, all iterations
  /// Communication on the critical path (== comm_seconds when overlap is
  /// off; the max-rank exposed remainder when it is on) and the hidden
  /// complement.
  double exposed_comm_seconds = 0.0;
  double hidden_comm_seconds = 0.0;
  /// Per rank: exposed / total comm time for one iteration (1.0 when
  /// nothing is hidden; 0.0 for ranks with no communication).
  std::vector<double> rank_exposed_fraction;
  energy::EnergyReport energy;
};

/// Simulate `iterations` matvecs for a partition with the given per-rank
/// work (metrics.work) and ghost traffic (comm matrix).
[[nodiscard]] MatvecSimResult simulate_matvec(const partition::Metrics& metrics,
                                              const mesh::CommMatrix& comm,
                                              const machine::PerfModel& model,
                                              const MatvecSimConfig& config = {});

}  // namespace amr::sim
