#include "sim/density.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace amr::sim {

namespace {

double normal_cdf(double x, double mean, double sigma) {
  return 0.5 * (1.0 + std::erf((x - mean) / (sigma * std::numbers::sqrt2)));
}

}  // namespace

double Density::axis_cdf(double x) const {
  // Draws outside [0,1) are clamped by the generator, so all mass below 0
  // sits at 0 and all mass above 1 sits just below 1: the in-domain CDF is
  // simply the raw CDF clamped at the edges.
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  switch (options_.distribution) {
    case octree::PointDistribution::kUniform:
      return x;
    case octree::PointDistribution::kNormal:
      return normal_cdf(x, options_.normal_mean, options_.normal_sigma);
    case octree::PointDistribution::kLogNormal: {
      // Generator: value = lognormal(m, s) * scale with
      // scale = 1 / (4 e^m); P(value <= x) = Phi((ln(x/scale) - m)/s).
      const double scale = 1.0 / (4.0 * std::exp(options_.lognormal_m));
      const double z = (std::log(x / scale) - options_.lognormal_m) / options_.lognormal_s;
      return 0.5 * (1.0 + std::erf(z / std::numbers::sqrt2));
    }
  }
  return x;
}

double Density::box_probability(const std::array<double, 3>& lo,
                                const std::array<double, 3>& hi) const {
  double probability = 1.0;
  for (int axis = 0; axis < options_.dim; ++axis) {
    const double p = axis_cdf(hi[static_cast<std::size_t>(axis)]) -
                     axis_cdf(lo[static_cast<std::size_t>(axis)]);
    probability *= std::max(0.0, p);
  }
  return probability;
}

}  // namespace amr::sim
