#include "sim/adapt_sim.hpp"

#include <algorithm>
#include <cmath>

#include "octree/octant.hpp"
#include "sfc/key.hpp"
#include "util/thread_pool.hpp"

namespace amr::sim {

namespace {

/// Bytes the keyed engine streams per element: the octant payload plus its
/// aligned 128-bit key, read and written once per pass.
constexpr double kElementBytes =
    static_cast<double>(sizeof(octree::Octant) + sizeof(sfc::CurveKey));

double effective_threads(int threads) {
  const int width = threads > 0
                        ? threads
                        : static_cast<int>(util::ThreadPool::global().size());
  return static_cast<double>(std::max(1, width));
}

/// MSD byte-radix passes until buckets reach insertion-sort size: one pass
/// resolves 8 key bits, and log2(n) bits distinguish n uniform elements.
double radix_passes(double n) {
  if (n < 2.0) return 1.0;
  return std::max(1.0, std::ceil(std::log2(n) / 8.0));
}

/// Keyed radix sort of n elements: encode (read octant, write packed key),
/// one read+write sweep per radix pass, and the final payload permutation.
double keyed_sort_seconds(double n, double width, const machine::PerfModel& model) {
  const double passes = radix_passes(n);
  const double bytes = n * kElementBytes * (1.0 + 2.0 * passes + 2.0);
  return model.machine().tc * bytes / width;
}

}  // namespace

AdaptStepPrediction predict_adapt_step(std::size_t n, std::size_t changes,
                                       int threads,
                                       const machine::PerfModel& model) {
  const double width = effective_threads(threads);
  const double nd = static_cast<double>(n);
  const double delta = static_cast<double>(changes);
  // The splice streams the old order once (read element + key) and writes
  // the merged order once; the inserts additionally pay a radix sort over
  // the delta alone.
  const double splice_bytes = 2.0 * (nd + delta) * kElementBytes;
  AdaptStepPrediction p;
  p.merge_seconds = model.machine().tc * splice_bytes / width +
                    keyed_sort_seconds(delta, width, model);
  p.full_sort_seconds = keyed_sort_seconds(nd + delta, width, model);
  p.speedup = p.merge_seconds > 0.0 ? p.full_sort_seconds / p.merge_seconds : 1.0;
  p.merge_wins = p.merge_seconds < p.full_sort_seconds;
  return p;
}

double predicted_crossover_fraction(std::size_t n, int threads,
                                    const machine::PerfModel& model) {
  // merge_seconds grows monotonically in the change count while the full
  // sort barely moves, so the break-even fraction bisects cleanly.
  double lo = 0.0;
  double hi = 1.0;
  const auto wins = [&](double fraction) {
    const auto changes =
        static_cast<std::size_t>(fraction * static_cast<double>(n));
    return predict_adapt_step(n, changes, threads, model).merge_wins;
  };
  if (!wins(lo)) return 0.0;
  if (wins(hi)) return 1.0;
  for (int i = 0; i < 40; ++i) {
    const double mid = 0.5 * (lo + hi);
    (wins(mid) ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace amr::sim
