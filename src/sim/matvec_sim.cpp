#include "sim/matvec_sim.hpp"

#include <algorithm>

namespace amr::sim {

MatvecSimResult simulate_matvec(const partition::Metrics& metrics,
                                const mesh::CommMatrix& comm,
                                const machine::PerfModel& model,
                                const MatvecSimConfig& config) {
  const int p = static_cast<int>(metrics.work.size());
  const machine::MachineModel& machine = model.machine();

  // Per-rank phase durations (identical every iteration: the mesh and the
  // partition are static across the matvec epoch).
  std::vector<double> compute(static_cast<std::size_t>(p));
  std::vector<double> comm_time(static_cast<std::size_t>(p));
  std::vector<double> comm_bytes(static_cast<std::size_t>(p));
  double max_compute = 0.0;
  double max_comm = 0.0;
  for (int r = 0; r < p; ++r) {
    const double send = comm.send_of(r);
    const double recv = comm.recv_of(r);
    const double volume = std::max(send, recv);
    compute[static_cast<std::size_t>(r)] =
        model.compute_time(metrics.work[static_cast<std::size_t>(r)]);
    comm_time[static_cast<std::size_t>(r)] =
        model.comm_time(volume, static_cast<double>(comm.degree_of(r)));
    comm_bytes[static_cast<std::size_t>(r)] = send * model.app().bytes_per_element;
    max_compute = std::max(max_compute, compute[static_cast<std::size_t>(r)]);
    max_comm = std::max(max_comm, comm_time[static_cast<std::size_t>(r)]);
  }

  const double iteration = max_compute + max_comm;
  MatvecSimResult result;
  result.compute_seconds = max_compute * config.iterations;
  result.comm_seconds = max_comm * config.iterations;
  result.total_seconds = iteration * config.iterations;
  result.total_data_elements = comm.total_elements() * config.iterations;

  // Every iteration has the identical activity pattern (static mesh and
  // partition), so one iteration's timeline is sampled and the integrated
  // energy scaled by the iteration count -- exact, and it keeps the
  // sampler cost independent of epoch length.
  const int nodes =
      (p + machine.cores_per_node - 1) / machine.cores_per_node;
  std::vector<energy::NodeActivity> activity(static_cast<std::size_t>(nodes));
  for (int r = 0; r < p; ++r) {
    const int node = machine.node_of_rank(r);
    auto& act = activity[static_cast<std::size_t>(node)];
    if (compute[static_cast<std::size_t>(r)] > 0.0) {
      act.add_compute(0.0, compute[static_cast<std::size_t>(r)], 1);
    }
    if (comm_time[static_cast<std::size_t>(r)] > 0.0) {
      act.add_comm(max_compute, max_compute + comm_time[static_cast<std::size_t>(r)],
                   comm_bytes[static_cast<std::size_t>(r)], 1);
    }
  }
  energy::SamplerOptions sampler = config.sampler;
  // Guarantee a usable resolution over the single iteration.
  if (iteration > 0.0) {
    sampler.sample_hz = std::max(sampler.sample_hz, 512.0 / iteration);
  }
  result.energy = energy::measure_energy(activity, machine, sampler);
  result.energy.duration_s *= config.iterations;
  result.energy.total_joules *= config.iterations;
  result.energy.comm_joules *= config.iterations;
  for (double& joules : result.energy.per_node_joules) joules *= config.iterations;
  return result;
}

}  // namespace amr::sim
