#include "sim/matvec_sim.hpp"

#include <algorithm>

namespace amr::sim {

MatvecSimResult simulate_matvec(const partition::Metrics& metrics,
                                const mesh::CommMatrix& comm,
                                const machine::PerfModel& model,
                                const MatvecSimConfig& config) {
  const int p = static_cast<int>(metrics.work.size());
  const machine::MachineModel& machine = model.machine();

  // Per-rank phase durations (identical every iteration: the mesh and the
  // partition are static across the matvec epoch).
  std::vector<double> compute(static_cast<std::size_t>(p));
  std::vector<double> interior(static_cast<std::size_t>(p), 0.0);
  std::vector<double> boundary(static_cast<std::size_t>(p), 0.0);
  std::vector<double> comm_time(static_cast<std::size_t>(p));
  std::vector<double> comm_bytes(static_cast<std::size_t>(p));
  double max_compute = 0.0;
  double max_comm = 0.0;
  double max_step = 0.0;     ///< overlap: max(interior, comm) + boundary
  double max_exposed = 0.0;  ///< overlap: comm not hidden behind interior
  MatvecSimResult result;
  result.rank_exposed_fraction.assign(static_cast<std::size_t>(p), 0.0);
  for (int r = 0; r < p; ++r) {
    const double send = comm.send_of(r);
    const double recv = comm.recv_of(r);
    const double volume = std::max(send, recv);
    const double work = metrics.work[static_cast<std::size_t>(r)];
    compute[static_cast<std::size_t>(r)] = model.compute_time(work);
    comm_time[static_cast<std::size_t>(r)] =
        model.comm_time(volume, static_cast<double>(comm.degree_of(r)));
    comm_bytes[static_cast<std::size_t>(r)] = send * model.app().bytes_per_element;
    max_compute = std::max(max_compute, compute[static_cast<std::size_t>(r)]);
    max_comm = std::max(max_comm, comm_time[static_cast<std::size_t>(r)]);

    // Overlap split: boundary rows are roughly the elements shipped to
    // peers (every sent element borders another rank), unless the caller
    // supplied measured counts.
    const double boundary_elems =
        static_cast<std::size_t>(r) < config.boundary_work.size()
            ? std::min(work, config.boundary_work[static_cast<std::size_t>(r)])
            : std::min(work, send);
    boundary[static_cast<std::size_t>(r)] = model.compute_time(boundary_elems);
    interior[static_cast<std::size_t>(r)] = model.compute_time(work - boundary_elems);
    const double exposed =
        config.overlap
            ? std::max(0.0, comm_time[static_cast<std::size_t>(r)] -
                                interior[static_cast<std::size_t>(r)])
            : comm_time[static_cast<std::size_t>(r)];
    result.rank_exposed_fraction[static_cast<std::size_t>(r)] =
        comm_time[static_cast<std::size_t>(r)] > 0.0
            ? exposed / comm_time[static_cast<std::size_t>(r)]
            : 0.0;
    max_exposed = std::max(max_exposed, exposed);
    max_step = std::max(
        max_step, std::max(interior[static_cast<std::size_t>(r)],
                           comm_time[static_cast<std::size_t>(r)]) +
                      boundary[static_cast<std::size_t>(r)]);
  }

  const double iteration = config.overlap ? max_step : max_compute + max_comm;
  result.compute_seconds = max_compute * config.iterations;
  result.comm_seconds = max_comm * config.iterations;
  result.exposed_comm_seconds = max_exposed * config.iterations;
  result.hidden_comm_seconds = result.comm_seconds - result.exposed_comm_seconds;
  result.total_seconds = iteration * config.iterations;
  result.total_data_elements = comm.total_elements() * config.iterations;

  // Every iteration has the identical activity pattern (static mesh and
  // partition), so one iteration's timeline is sampled and the integrated
  // energy scaled by the iteration count -- exact, and it keeps the
  // sampler cost independent of epoch length.
  const int nodes =
      (p + machine.cores_per_node - 1) / machine.cores_per_node;
  std::vector<energy::NodeActivity> activity(static_cast<std::size_t>(nodes));
  for (int r = 0; r < p; ++r) {
    const int node = machine.node_of_rank(r);
    auto& act = activity[static_cast<std::size_t>(node)];
    if (config.overlap) {
      // Interior kernel and exchange run concurrently from t=0; the
      // boundary kernel starts when both are done.
      if (interior[static_cast<std::size_t>(r)] > 0.0) {
        act.add_compute(0.0, interior[static_cast<std::size_t>(r)], 1);
      }
      if (comm_time[static_cast<std::size_t>(r)] > 0.0) {
        act.add_comm(0.0, comm_time[static_cast<std::size_t>(r)],
                     comm_bytes[static_cast<std::size_t>(r)], 1);
      }
      const double start = std::max(interior[static_cast<std::size_t>(r)],
                                    comm_time[static_cast<std::size_t>(r)]);
      if (boundary[static_cast<std::size_t>(r)] > 0.0) {
        act.add_compute(start, start + boundary[static_cast<std::size_t>(r)], 1);
      }
    } else {
      if (compute[static_cast<std::size_t>(r)] > 0.0) {
        act.add_compute(0.0, compute[static_cast<std::size_t>(r)], 1);
      }
      if (comm_time[static_cast<std::size_t>(r)] > 0.0) {
        act.add_comm(max_compute, max_compute + comm_time[static_cast<std::size_t>(r)],
                     comm_bytes[static_cast<std::size_t>(r)], 1);
      }
    }
  }
  energy::SamplerOptions sampler = config.sampler;
  // Guarantee a usable resolution over the single iteration.
  if (iteration > 0.0) {
    sampler.sample_hz = std::max(sampler.sample_hz, 512.0 / iteration);
  }
  result.energy = energy::measure_energy(activity, machine, sampler);
  result.energy.duration_s *= config.iterations;
  result.energy.total_joules *= config.iterations;
  result.energy.comm_joules *= config.iterations;
  for (double& joules : result.energy.per_node_joules) joules *= config.iterations;
  return result;
}

}  // namespace amr::sim
