#include "sim/splitter_sim.hpp"

#include <algorithm>
#include <cmath>

namespace amr::sim {

namespace {

struct Frame {
  std::array<double, 3> lo{0.0, 0.0, 0.0};
  std::array<double, 3> hi{1.0, 1.0, 1.0};
  int state = 0;
  double mass_before = 0.0;  ///< global mass preceding this box in SFC order
  double mass = 1.0;         ///< mass of this box
};

/// Refine one target cut (mass fraction u) until within tol_mass or the
/// bucket is down to ~1 expected element. Returns (levels, deviation).
struct DescentResult {
  int levels = 0;
  double deviation_mass = 0.0;
};

DescentResult descend_target(double u, const Density& density, const sfc::Curve& curve,
                             double tol_mass, double min_bucket_mass, int max_depth) {
  Frame frame;
  double best_dev = std::min(u, 1.0 - u);  // domain ends are always cuts
  int level = 0;
  while (level < max_depth) {
    if (best_dev <= tol_mass) break;
    if (frame.mass <= min_bucket_mass) break;
    ++level;

    // Children in curve visit order; pick candidate cuts and the child
    // containing u.
    double cursor = frame.mass_before;
    Frame next;
    bool found = false;
    const int children = curve.num_children();
    for (int j = 0; j < children; ++j) {
      const int c = curve.child_at(frame.state, j);
      std::array<double, 3> lo = frame.lo;
      std::array<double, 3> hi = frame.hi;
      for (int axis = 0; axis < 3; ++axis) {
        const double mid = 0.5 * (frame.lo[static_cast<std::size_t>(axis)] +
                                  frame.hi[static_cast<std::size_t>(axis)]);
        if (((c >> axis) & 1) != 0) {
          lo[static_cast<std::size_t>(axis)] = mid;
        } else {
          hi[static_cast<std::size_t>(axis)] = mid;
        }
      }
      const double child_mass = density.box_probability(lo, hi);
      best_dev = std::min(best_dev, std::abs(cursor - u));  // cut before child
      if (!found && u >= cursor && u < cursor + child_mass) {
        next.lo = lo;
        next.hi = hi;
        next.state = curve.next_state(frame.state, c);
        next.mass_before = cursor;
        next.mass = child_mass;
        found = true;
      }
      cursor += child_mass;
    }
    best_dev = std::min(best_dev, std::abs(cursor - u));  // cut after last child
    if (!found) break;  // u fell into truncation slack; cuts won't improve
    frame = next;
  }
  return {level, best_dev};
}

double log2p(int p) { return p > 1 ? std::log2(static_cast<double>(p)) : 1.0; }

}  // namespace

SimResult simulate_treesort(const SimConfig& config,
                            const machine::MachineModel& machine) {
  const Density density(config.distribution);
  const sfc::Curve curve(config.curve, config.distribution.dim);
  const double n = static_cast<double>(config.n);
  const double grain_mass = 1.0 / static_cast<double>(config.p);
  const double tol_mass = config.tolerance * grain_mass;
  const double min_bucket_mass = 1.0 / n;  // ~one element

  SimResult result;
  for (int r = 1; r < config.p; ++r) {
    const double u = static_cast<double>(r) / static_cast<double>(config.p);
    const DescentResult d = descend_target(u, density, curve, tol_mass,
                                           min_bucket_mass, config.max_depth);
    result.levels_used = std::max(result.levels_used, d.levels);
    result.max_deviation_elements =
        std::max(result.max_deviation_elements, d.deviation_mass * n);
  }
  result.achieved_tolerance = result.max_deviation_elements / (n / config.p);

  const double grain_bytes = n / config.p * config.element_bytes;
  const int k = config.staged_splitters > 0 ? config.staged_splitters
                                            : std::min(config.p, 4096);
  const double levels = std::max(1, result.levels_used);
  result.time.local_sort = machine.tc * grain_bytes * levels;
  result.time.splitter = (machine.ts + machine.tw * k * 8.0) * log2p(config.p) * levels;
  // Staged personalized exchange (Bruck, paper refs [4][34]): log p rounds,
  // each moving about half the grain -- this is why the exchange, not the
  // splitter selection, dominates the paper's weak scaling (Fig. 5).
  result.time.all2all =
      machine.tw * grain_bytes * std::max(1.0, 0.5 * log2p(config.p)) +
      machine.ts * log2p(config.p);
  return result;
}

SimResult simulate_samplesort(const SimConfig& config,
                              const machine::MachineModel& machine) {
  const double n = static_cast<double>(config.n);
  const double p = static_cast<double>(config.p);
  const double grain = n / p;
  const double grain_bytes = grain * config.element_bytes;

  SimResult result;
  result.levels_used = 0;
  result.max_deviation_elements = 0.0;  // converges to the ideal split
  result.achieved_tolerance = 0.0;

  // Comparison-based local sort: log factor on the grain.
  result.time.local_sort =
      machine.tc * grain_bytes * std::max(1.0, std::log2(std::max(2.0, grain)));
  // Sample selection: every rank contributes up to p-1 samples (capped at
  // the customary oversampling of 128), all ranks gather and sort the
  // union -- the superlinear term that limits SampleSort's scalability
  // (§3.1 / [34]).
  const double samples = p * std::min(p - 1.0, 128.0);
  const double sample_bytes = samples * config.element_bytes;
  result.time.splitter =
      machine.ts * log2p(config.p) + machine.tw * sample_bytes +
      machine.tc * sample_bytes * std::max(1.0, std::log2(std::max(2.0, samples)));
  result.time.all2all =
      machine.tw * grain_bytes * std::max(1.0, 0.5 * log2p(config.p)) +
      machine.ts * log2p(config.p);
  return result;
}

}  // namespace amr::sim
