#include "sim/splitter_sim.hpp"

#include <algorithm>
#include <cmath>

#include "sim/cluster.hpp"

namespace amr::sim {

namespace {

double log2p(int p) { return p > 1 ? std::log2(static_cast<double>(p)) : 1.0; }

}  // namespace

SimResult simulate_treesort(const SimConfig& config,
                            const machine::MachineModel& machine) {
  // The refinement loop lives in sim::Cluster now (cluster.hpp), answered
  // from a memoized histogram tree over the analytic density. A one-shot
  // query builds a throwaway tree; sweeps that hold a Cluster share it
  // across every (n, p, tolerance, machine) point.
  Cluster cluster(config.distribution, config.curve);
  Cluster::TreesortQuery query;
  query.n = config.n;
  query.p = config.p;
  query.tolerance = config.tolerance;
  query.staged_splitters = config.staged_splitters;
  query.max_depth = config.max_depth;
  query.element_bytes = config.element_bytes;
  return cluster.treesort_result(query, machine);
}

SimResult simulate_samplesort(const SimConfig& config,
                              const machine::MachineModel& machine) {
  const double n = static_cast<double>(config.n);
  const double p = static_cast<double>(config.p);
  const double grain = n / p;
  const double grain_bytes = grain * config.element_bytes;

  SimResult result;
  result.levels_used = 0;
  result.max_deviation_elements = 0.0;  // converges to the ideal split
  result.achieved_tolerance = 0.0;

  // Comparison-based local sort: log factor on the grain.
  result.time.local_sort =
      machine.tc * grain_bytes * std::max(1.0, std::log2(std::max(2.0, grain)));
  // Sample selection: every rank contributes up to p-1 samples (capped at
  // the customary oversampling of 128), all ranks gather and sort the
  // union -- the superlinear term that limits SampleSort's scalability
  // (§3.1 / [34]).
  const double samples = p * std::min(p - 1.0, 128.0);
  const double sample_bytes = samples * config.element_bytes;
  result.time.splitter =
      machine.ts * log2p(config.p) + machine.tw * sample_bytes +
      machine.tc * sample_bytes * std::max(1.0, std::log2(std::max(2.0, samples)));
  result.time.all2all =
      machine.tw * grain_bytes * std::max(1.0, 0.5 * log2p(config.p)) +
      machine.ts * log2p(config.p);
  return result;
}

}  // namespace amr::sim
