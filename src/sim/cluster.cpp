#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace amr::sim {

namespace {

double log2p(int p) { return p > 1 ? std::log2(static_cast<double>(p)) : 1.0; }

}  // namespace

Cluster::Cluster(const octree::GenerateOptions& distribution, sfc::CurveKind kind)
    : density_(distribution), curve_(kind, distribution.dim) {
  nodes_.push_back(Node{1.0, -1, 0});  // root: the unit cube, curve state 0
}

std::int32_t Cluster::expand(std::int32_t index, const std::array<double, 3>& lo,
                             const std::array<double, 3>& hi) {
  const std::int32_t cached = nodes_[static_cast<std::size_t>(index)].first_child;
  if (cached >= 0) return cached;

  const int children = curve_.num_children();
  if (nodes_.size() + static_cast<std::size_t>(children) >
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    throw std::length_error("sim::Cluster histogram tree exceeds int32 indexing");
  }

  // One CDF evaluation per axis endpoint, shared by all children. Child
  // masses must match Density::box_probability bit for bit (the descent
  // must stay exactly the one simulate_treesort always ran), so each axis
  // factor is the same cdf(hi) - cdf(lo) subtraction under the same
  // max(0.0, .) clamp, multiplied in axis order.
  const int dim = density_.dim();
  std::array<double, 3> cdf_lo{};
  std::array<double, 3> cdf_mid{};
  std::array<double, 3> cdf_hi{};
  for (int axis = 0; axis < dim; ++axis) {
    const auto a = static_cast<std::size_t>(axis);
    cdf_lo[a] = density_.axis_cdf(lo[a]);
    cdf_mid[a] = density_.axis_cdf(0.5 * (lo[a] + hi[a]));
    cdf_hi[a] = density_.axis_cdf(hi[a]);
  }

  const auto first = static_cast<std::int32_t>(nodes_.size());
  const int state = nodes_[static_cast<std::size_t>(index)].state;
  for (int j = 0; j < children; ++j) {
    const int c = curve_.child_at(state, j);
    double mass = 1.0;
    for (int axis = 0; axis < dim; ++axis) {
      const auto a = static_cast<std::size_t>(axis);
      const double p = ((c >> axis) & 1) != 0 ? cdf_hi[a] - cdf_mid[a]
                                              : cdf_mid[a] - cdf_lo[a];
      mass *= std::max(0.0, p);
    }
    Node child;
    child.mass = mass;
    child.state = static_cast<std::uint8_t>(curve_.next_state(state, c));
    nodes_.push_back(child);  // children contiguous, in curve visit order
  }
  nodes_[static_cast<std::size_t>(index)].first_child = first;
  return first;
}

Cluster::CutResult Cluster::descend_target(double u, double tol_mass,
                                           double min_bucket_mass, int max_depth) {
  std::int32_t index = 0;
  std::array<double, 3> lo{0.0, 0.0, 0.0};
  std::array<double, 3> hi{1.0, 1.0, 1.0};
  double mass_before = 0.0;
  double best_dev = std::min(u, 1.0 - u);  // domain ends are always cuts
  double best_cut = u <= 1.0 - u ? 0.0 : 1.0;
  int level = 0;
  const int children = curve_.num_children();
  while (level < max_depth) {
    if (best_dev <= tol_mass) break;
    if (nodes_[static_cast<std::size_t>(index)].mass <= min_bucket_mass) break;
    ++level;

    const std::int32_t first = expand(index, lo, hi);
    const int state = nodes_[static_cast<std::size_t>(index)].state;
    double cursor = mass_before;
    bool found = false;
    std::int32_t next_index = -1;
    std::array<double, 3> next_lo{};
    std::array<double, 3> next_hi{};
    double next_before = 0.0;
    for (int j = 0; j < children; ++j) {
      const double child_mass = nodes_[static_cast<std::size_t>(first + j)].mass;
      if (std::abs(cursor - u) < best_dev) {  // cut before child
        best_dev = std::abs(cursor - u);
        best_cut = cursor;
      }
      if (!found && u >= cursor && u < cursor + child_mass) {
        const int c = curve_.child_at(state, j);
        next_lo = lo;
        next_hi = hi;
        for (int axis = 0; axis < 3; ++axis) {
          const auto a = static_cast<std::size_t>(axis);
          const double mid = 0.5 * (lo[a] + hi[a]);
          if (((c >> axis) & 1) != 0) {
            next_lo[a] = mid;
          } else {
            next_hi[a] = mid;
          }
        }
        next_index = first + j;
        next_before = cursor;
        found = true;
      }
      cursor += child_mass;
    }
    if (std::abs(cursor - u) < best_dev) {  // cut after last child
      best_dev = std::abs(cursor - u);
      best_cut = cursor;
    }
    if (!found) break;  // u fell into truncation slack; cuts won't improve
    index = next_index;
    lo = next_lo;
    hi = next_hi;
    mass_before = next_before;
  }
  return {level, best_dev, best_cut};
}

AnalyticPartition Cluster::resolve_cuts(std::uint64_t n, int p, double tolerance,
                                        int max_depth) {
  const double nd = static_cast<double>(n);
  const double grain_mass = 1.0 / static_cast<double>(p);
  const double tol_mass = tolerance * grain_mass;
  const double min_bucket_mass = 1.0 / nd;  // ~one element

  AnalyticPartition part;
  part.cut_mass.resize(static_cast<std::size_t>(p) + 1);
  part.cut_mass.front() = 0.0;
  part.cut_mass.back() = 1.0;
  for (int r = 1; r < p; ++r) {
    const double u = static_cast<double>(r) / static_cast<double>(p);
    const CutResult cut = descend_target(u, tol_mass, min_bucket_mass, max_depth);
    part.levels_used = std::max(part.levels_used, cut.levels);
    part.max_deviation_mass = std::max(part.max_deviation_mass, cut.deviation_mass);
    // Adjacent targets can in principle round to the same (or, at extreme
    // tolerances, crossing) bucket boundaries; keep the cut sequence
    // non-decreasing so per-rank work is never negative.
    part.cut_mass[static_cast<std::size_t>(r)] =
        std::max(part.cut_mass[static_cast<std::size_t>(r) - 1], cut.cut_mass);
  }
  return part;
}

SimBreakdown Cluster::charge_treesort(const TreesortQuery& query, int levels_used,
                                      const machine::MachineModel& machine) {
  const double n = static_cast<double>(query.n);
  const double grain_bytes = n / query.p * query.element_bytes;
  const int k = query.staged_splitters > 0 ? query.staged_splitters
                                           : std::min(query.p, 4096);
  const double levels = std::max(1, levels_used);
  SimBreakdown time;
  time.local_sort = machine.tc * grain_bytes * levels;
  time.splitter = (machine.ts + machine.tw * k * 8.0) * log2p(query.p) * levels;
  // Staged personalized exchange (Bruck, paper refs [4][34]): log p rounds,
  // each moving about half the grain -- this is why the exchange, not the
  // splitter selection, dominates the paper's weak scaling (Fig. 5).
  time.all2all = machine.tw * grain_bytes * std::max(1.0, 0.5 * log2p(query.p)) +
                 machine.ts * log2p(query.p);
  return time;
}

SimResult Cluster::treesort_result(const TreesortQuery& query,
                                   const machine::MachineModel& machine) {
  const AnalyticPartition cuts =
      resolve_cuts(query.n, query.p, query.tolerance, query.max_depth);
  const double n = static_cast<double>(query.n);
  SimResult result;
  result.levels_used = cuts.levels_used;
  result.max_deviation_elements = cuts.max_deviation_mass * n;
  result.achieved_tolerance = result.max_deviation_elements / (n / query.p);
  result.time = charge_treesort(query, cuts.levels_used, machine);
  return result;
}

ScaleStepModel Cluster::step_model(const AnalyticPartition& cuts, std::uint64_t n,
                                   const machine::PerfModel& model) const {
  const double nd = static_cast<double>(n);
  const int dim = density_.dim();
  const double surface = dim == 2 ? 4.0 : 6.0;
  const double exponent = dim == 2 ? 0.5 : 2.0 / 3.0;
  const int p = cuts.num_ranks();

  ScaleStepModel step;
  step.w_min = std::numeric_limits<double>::infinity();
  for (int r = 0; r < p; ++r) {
    const auto i = static_cast<std::size_t>(r);
    const double w = (cuts.cut_mass[i + 1] - cuts.cut_mass[i]) * nd;
    const double c = w > 0.0 ? surface * std::pow(w, exponent) : 0.0;
    step.w_max = std::max(step.w_max, w);
    step.w_min = std::min(step.w_min, w);
    step.c_max = std::max(step.c_max, c);
    step.total_boundary += c;
  }
  // lambda vs the *ideal* grain (Wmax / (N/p)): finite even when a coarse
  // tolerance leaves some rank empty.
  step.load_imbalance = step.w_max / (nd / p);
  step.step_seconds = model.application_time(step.w_max, step.c_max);
  return step;
}

ScaleEpochResult Cluster::epoch(const AnalyticPartition& cuts, std::uint64_t n,
                                int iterations, const machine::PerfModel& model) const {
  ScaleEpochResult result;
  result.step = step_model(cuts, n, model);

  const machine::MachineModel& m = model.machine();
  const double nd = static_cast<double>(n);
  const int dim = density_.dim();
  const double surface = dim == 2 ? 4.0 : 6.0;
  const double exponent = dim == 2 ? 0.5 : 2.0 / 3.0;
  const int p = cuts.num_ranks();
  const double iters = static_cast<double>(iterations);

  result.total_seconds = iters * result.step.step_seconds;
  result.compute_seconds = iters * model.compute_time(result.step.w_max);
  result.comm_seconds = iters * model.comm_time(result.step.c_max);

  const std::size_t nodes =
      (static_cast<std::size_t>(p) + static_cast<std::size_t>(m.cores_per_node) - 1) /
      static_cast<std::size_t>(m.cores_per_node);
  result.nodes = nodes;
  std::vector<double> busy_core_seconds(nodes, 0.0);  // per node, one epoch
  std::vector<double> nic_bytes(nodes, 0.0);
  for (int r = 0; r < p; ++r) {
    const auto i = static_cast<std::size_t>(r);
    const double w = (cuts.cut_mass[i + 1] - cuts.cut_mass[i]) * nd;
    const double c = w > 0.0 ? surface * std::pow(w, exponent) : 0.0;
    const auto node = static_cast<std::size_t>(m.node_of_rank(r));
    busy_core_seconds[node] += iters * model.compute_time(w);
    nic_bytes[node] += iters * c * model.app().bytes_per_element;
  }

  // Same constants the materialized epoch simulator charges
  // (power_model.hpp): idle draw for the whole epoch, active-core draw over
  // busy core-seconds, NIC draw per Gbit/s -- which integrates to a
  // rate-independent watts_per_gbps * gigabits moved.
  result.node_joules_min = std::numeric_limits<double>::infinity();
  for (std::size_t node = 0; node < nodes; ++node) {
    const double joules = m.idle_watts * result.total_seconds +
                          m.core_active_watts * busy_core_seconds[node] +
                          m.nic_watts_per_gbps * nic_bytes[node] * 8.0e-9;
    result.total_joules += joules;
    result.node_joules_min = std::min(result.node_joules_min, joules);
    result.node_joules_max = std::max(result.node_joules_max, joules);
  }
  result.node_joules_mean = result.total_joules / static_cast<double>(nodes);
  return result;
}

}  // namespace amr::sim
