// Cost model of one incremental adapt step (DESIGN.md §13).
//
// Between AMR steps the application changes a fraction of its octants and
// must restore the global SFC order. Two routes exist:
//
//   merge  -- sort the delta (radix over Δ), then one streaming splice
//             through the surviving prefix of the previous keyed order:
//             O(Δ log Δ + N) with no key re-encoding for survivors;
//   full   -- re-run the keyed radix sort over all N' = N + Δi - Δd
//             elements: O(N' · passes), each pass touching every element.
//
// This module prices both with the machine model's time-per-byte (tc), the
// same constant Eq. 2 uses for the local-sort term, so
// bench_micro_incremental can print a predicted column next to the
// measured one and the crossover default of
// IncrementalSortOptions::fallback_change_fraction has a model behind the
// measurement.
#pragma once

#include <cstddef>

#include "machine/perf_model.hpp"

namespace amr::sim {

struct AdaptStepPrediction {
  double merge_seconds = 0.0;      ///< delta sort + streaming splice
  double full_sort_seconds = 0.0;  ///< keyed radix re-sort of the edited stream
  double speedup = 1.0;            ///< full / merge
  bool merge_wins = false;
};

/// Price an adapt step that edits `changes` octants (inserts + deletes) of
/// a previously sorted array of `n` octants. `threads` mirrors
/// IncrementalSortOptions::num_threads: <= 0 uses the shared pool's width.
[[nodiscard]] AdaptStepPrediction predict_adapt_step(
    std::size_t n, std::size_t changes, int threads,
    const machine::PerfModel& model);

/// Change fraction at which the two routes break even under the model
/// (bisection on predict_adapt_step). The measured counterpart is
/// BENCH_incremental.json's crossover; IncrementalSortOptions'
/// fallback_change_fraction default sits at the measured value.
[[nodiscard]] double predicted_crossover_fraction(std::size_t n, int threads,
                                                  const machine::PerfModel& model);

}  // namespace amr::sim
