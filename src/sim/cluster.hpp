// sim::Cluster -- the analytic scale-out substrate (DESIGN.md §17).
//
// The paper's headline numbers live at 262,144 ranks over 262 *billion*
// elements, far beyond anything this repo can materialize. What the
// splitter-selection control flow actually consumes, though, is only the
// expected element mass of dyadic boxes in curve visit order -- so the
// whole 262k-rank regime is answerable from a *histogram tree over the
// analytic density* (density.hpp): a lazily expanded tree whose node
// holds the expected mass of one curve-ordered box.
//
// Cluster owns one such tree per (distribution, curve) and shares it
// across every query: all p-1 cut descents of one partition walk the same
// tree, every (n, p, tolerance) sweep point re-walks it, and expansions
// are memoized so a full weak-scaling sweep 16 -> 262,144 ranks costs one
// tree of a few million nodes (16 bytes each) instead of 2^62 octants.
// Per expansion the per-axis CDF is evaluated at lo/mid/hi once and child
// masses are formed exactly as Density::box_probability would -- the
// descent is bit-for-bit the one simulate_treesort always ran, which now
// delegates here (splitter_sim.cpp).
//
// Beyond splitter depth/deviation, Cluster reports the chosen *positions*
// (mass coordinates) of every cut, which is what turns the analytic run
// into partition-quality and energy curves: per-rank work is a cut-mass
// difference, per-rank communication follows the discrete surface-to-
// volume bound of SFC partitions (c_r ~ s * w_r^{(d-1)/d}, the analytic
// route of Gadouleau & Weinzierl, arXiv:2106.12856), and the per-node
// energy integral is the same idle/core/NIC power model the materialized
// epoch simulator charges (power_model.hpp) -- evaluated in O(p) instead
// of O(N).
//
// Not thread-safe: expansion mutates the shared tree. All element counts
// are 64-bit (std::uint64_t / double mass fractions); nothing in here may
// ever hold an element count in an int -- see the ScaleSim overflow-canary
// tests pinning p=262,144 x 1e6-element grains.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "machine/perf_model.hpp"
#include "octree/generate.hpp"
#include "octree/octant.hpp"
#include "sfc/curve.hpp"
#include "sim/density.hpp"
#include "sim/splitter_sim.hpp"

namespace amr::sim {

/// One analytic partition: cut_mass[r] is the global mass coordinate of
/// splitter r (cut_mass[0] = 0, cut_mass[p] = 1), so rank r owns mass
/// cut_mass[r+1] - cut_mass[r] and w_r = that times N.
struct AnalyticPartition {
  std::vector<double> cut_mass;         ///< size p+1, non-decreasing
  int levels_used = 0;                  ///< deepest refinement any cut needed
  double max_deviation_mass = 0.0;      ///< worst |cut - target| in mass
  [[nodiscard]] int num_ranks() const { return static_cast<int>(cut_mass.size()) - 1; }
};

/// Analytic Alg. 2 / Eq. 3 view of one partition at N elements.
struct ScaleStepModel {
  double w_max = 0.0;            ///< max per-rank elements
  double w_min = 0.0;
  double load_imbalance = 1.0;   ///< lambda = w_max / w_min
  double c_max = 0.0;            ///< surface-model max per-rank ghost elements
  double total_boundary = 0.0;   ///< sum of per-rank boundaries
  double step_seconds = 0.0;     ///< Eq. 3 with the analytic Wmax/Cmax
};

/// An `iterations`-step bulk-synchronous epoch plus its energy integral.
struct ScaleEpochResult {
  double total_seconds = 0.0;
  double compute_seconds = 0.0;   ///< iterations x max-rank compute
  double comm_seconds = 0.0;      ///< iterations x max-rank exchange
  double total_joules = 0.0;
  std::size_t nodes = 0;          ///< ceil(p / cores_per_node)
  double node_joules_min = 0.0;
  double node_joules_mean = 0.0;
  double node_joules_max = 0.0;
  ScaleStepModel step;
};

class Cluster {
 public:
  Cluster(const octree::GenerateOptions& distribution, sfc::CurveKind kind);

  /// Everything one distributed-TreeSort pricing needs besides the machine.
  /// Mirrors SimConfig minus the fields the Cluster was constructed with.
  struct TreesortQuery {
    std::uint64_t n = 1'000'000;  ///< global element count (64-bit: the
                                  ///< 262k-rank sweeps exceed 2^37)
    int p = 64;
    double tolerance = 0.0;
    int staged_splitters = 0;     ///< Eq. 2's k; 0 means min(p, 4096)
    int max_depth = octree::kMaxDepth;
    double element_bytes = 32.0;
  };

  /// Resolve all p-1 target cuts against the shared histogram tree:
  /// bit-for-bit the refinement simulate_treesort executes, plus the
  /// chosen cut positions. Expansions are memoized across calls.
  [[nodiscard]] AnalyticPartition resolve_cuts(std::uint64_t n, int p,
                                               double tolerance,
                                               int max_depth = octree::kMaxDepth);

  /// Eq. 2 phase charging for a treesort whose descent used `levels_used`
  /// levels. Pure function of the query + machine (no tree access), so a
  /// multi-machine sweep resolves cuts once and charges per machine.
  [[nodiscard]] static SimBreakdown charge_treesort(const TreesortQuery& query,
                                                    int levels_used,
                                                    const machine::MachineModel& machine);

  /// resolve_cuts + charge_treesort in simulate_treesort's SimResult shape
  /// (the function simulate_treesort now delegates to).
  [[nodiscard]] SimResult treesort_result(const TreesortQuery& query,
                                          const machine::MachineModel& machine);

  /// Analytic partition quality at N elements: work from cut masses,
  /// communication from the discrete surface-to-volume model
  /// c_r = s_d * w_r^{(d-1)/d} (s_3 = 6, s_2 = 4: the boundary of a
  /// compact SFC segment of w cells is within a small constant of a
  /// cube's/square's surface), Eq. 3 from the resulting Wmax/Cmax.
  [[nodiscard]] ScaleStepModel step_model(const AnalyticPartition& cuts,
                                          std::uint64_t n,
                                          const machine::PerfModel& model) const;

  /// `iterations` bulk-synchronous steps (compute barrier exchange) with
  /// the per-node energy integral: idle draw over the epoch, active-core
  /// draw over each rank's busy time, NIC draw per byte moved -- the same
  /// constants power_model.hpp charges, evaluated in O(p).
  [[nodiscard]] ScaleEpochResult epoch(const AnalyticPartition& cuts, std::uint64_t n,
                                       int iterations,
                                       const machine::PerfModel& model) const;

  /// Histogram-tree nodes expanded so far (memoization observability).
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  [[nodiscard]] const sfc::Curve& curve() const { return curve_; }

 private:
  struct Node {
    double mass = 0.0;
    std::int32_t first_child = -1;  ///< index of child 0 in nodes_, -1 = leaf
    std::uint8_t state = 0;         ///< curve orientation state
  };

  struct CutResult {
    int levels = 0;
    double deviation_mass = 0.0;
    double cut_mass = 0.0;
  };

  /// Expand `index` (box [lo, hi)) if unexpanded; returns first_child.
  std::int32_t expand(std::int32_t index, const std::array<double, 3>& lo,
                      const std::array<double, 3>& hi);

  /// Descend one target cut u, exactly splitter_sim's refinement rule.
  CutResult descend_target(double u, double tol_mass, double min_bucket_mass,
                           int max_depth);

  Density density_;
  sfc::Curve curve_;
  std::vector<Node> nodes_;
};

}  // namespace amr::sim
