// Partitioner-as-a-service (DESIGN.md §17): a batch front-end that takes
// many concurrent partition jobs -- mesh spec x machine model x
// application profile -- and schedules them over the process-wide compute
// pool with bounded admission and a keyed artifact cache.
//
// Layering. A Server owns a small set of *dispatcher* threads that pull
// jobs from a bounded queue and run the pipeline (generate -> sort ->
// partition -> metrics). The pipeline's own parallelism (tree_sort's
// bucket passes, metrics) lands on ThreadPool::global() as usual:
// dispatchers are deliberately NOT pool threads, because pool tasks must
// never call run() on their own pool (thread_pool.hpp's no-nesting rule).
// Dispatcher count bounds how many jobs are *in flight*; the global pool
// bounds how many cores any of them use; queue capacity bounds admission
// (submit() blocks when the backlog is full -- backpressure instead of
// unbounded memory).
//
// Caching. Two levels, keyed by exact field-wise equality (never by hash
// alone, so collisions cannot alias artifacts):
//
//   MeshSpec            -> MeshArtifact: the sorted tree + its aligned
//                          128-bit curve keys. Shared by every job that
//                          differs only in machine/ranks/profile/
//                          tolerance -- KernelPlan- and machine-
//                          independent partition *input*.
//   PartitionKey        -> JobResult: the cuts + exact metrics. Keyed by
//                          the mesh key PLUS ranks, partitioner,
//                          tolerance, the application profile and the
//                          *resolved* machine constants (tc/ts/tw, node
//                          shape) as well as the machine name -- two jobs
//                          differing in any model input never share cuts.
//
// Entries hold shared_futures: the first job to need an artifact computes
// it, concurrent identical jobs block on the same future, so a burst of
// duplicate shapes does the work once and every caller observes the
// identical (bit-for-bit) result. All pipeline stages are deterministic
// (seeded generation, bit-deterministic sort/partition for any thread
// count), which is what makes a warm hit exactly the cold computation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "machine/machine_model.hpp"
#include "machine/perf_model.hpp"
#include "obs/telemetry.hpp"
#include "octree/generate.hpp"
#include "partition/metrics.hpp"
#include "partition/partition.hpp"
#include "sfc/curve.hpp"

namespace amr::serve {

/// Everything that determines a mesh, value-wise. Generation is a pure
/// function of these fields (seeded), so the spec doubles as the mesh
/// cache key.
struct MeshSpec {
  std::size_t points = 4000;
  octree::PointDistribution distribution = octree::PointDistribution::kNormal;
  std::uint64_t seed = 42;
  int max_level = 9;
  std::size_t max_points_per_leaf = 1;
  int dim = 3;
  double normal_mean = 0.5;
  double normal_sigma = 0.125;
  double lognormal_m = 0.0;
  double lognormal_s = 0.5;
  sfc::CurveKind curve = sfc::CurveKind::kHilbert;
  bool balance = true;  ///< 2:1 balance after generation

  friend bool operator==(const MeshSpec&, const MeshSpec&) = default;

  [[nodiscard]] octree::GenerateOptions generate_options() const;
};

enum class Partitioner { kTreeSort, kOptiPart };

[[nodiscard]] std::string to_string(Partitioner p);

/// One partition request: which mesh, on which machine, for which
/// application, with which partitioner.
struct JobSpec {
  MeshSpec mesh;
  std::string machine = "wisconsin8";  ///< preset name (machine_by_name)
  int ranks = 16;
  Partitioner partitioner = Partitioner::kOptiPart;
  double tolerance = 0.0;  ///< TreeSort flexibility (ignored by OptiPart)
  machine::ApplicationProfile profile;

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// Machine-independent product of the mesh stage: the sorted (optionally
/// balanced) tree plus its aligned 128-bit curve keys.
struct MeshArtifact {
  std::vector<octree::Octant> tree;
  std::vector<sfc::CurveKey> keys;
};

struct JobResult {
  partition::Partition cuts;
  partition::Metrics metrics;       ///< exact (stride 1)
  double predicted_seconds = 0.0;   ///< Eq. 3 under the job's own model
  std::size_t mesh_elements = 0;
  // Per-serve observability (not part of the cached artifact):
  bool mesh_cache_hit = false;
  bool partition_cache_hit = false;
};

/// Full partition-artifact key: the job spec (which embeds the mesh key,
/// profile and tolerance) plus the *resolved* machine constants. The name
/// alone would suffice while the registry is immutable; pinning tc/ts/tw
/// and the node shape means a re-parameterized preset can never serve
/// stale artifacts.
struct PartitionKey {
  JobSpec spec;
  double tc = 0.0;
  double ts = 0.0;
  double tw = 0.0;
  int cores_per_node = 0;
  int total_nodes = 0;

  friend bool operator==(const PartitionKey&, const PartitionKey&) = default;
};

struct MeshSpecHash {
  std::size_t operator()(const MeshSpec& spec) const noexcept;
};
struct PartitionKeyHash {
  std::size_t operator()(const PartitionKey& key) const noexcept;
};

struct ServerOptions {
  /// Dispatcher (in-flight job) threads. Compute within a job still runs
  /// on ThreadPool::global().
  int dispatchers = 4;
  /// Bounded admission: submit() blocks while this many jobs are queued
  /// (in-flight jobs do not count against it).
  std::size_t queue_capacity = 64;
  bool cache_enabled = true;
};

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t mesh_cache_hits = 0;
  std::uint64_t mesh_cache_misses = 0;
  std::uint64_t partition_cache_hits = 0;
  std::uint64_t partition_cache_misses = 0;
  obs::LatencyHistogram latency_ns;  ///< per-job service latency
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  /// Drains every queued job (all futures complete), then joins.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue a job; blocks while the queue is at capacity. The future
  /// carries the result or the pipeline's exception (e.g. an unknown
  /// machine name).
  std::future<JobResult> submit(JobSpec spec);

  /// Snapshot of the counters and the latency histogram.
  [[nodiscard]] ServerStats stats() const;

  [[nodiscard]] const ServerOptions& options() const { return options_; }

 private:
  struct Pending {
    JobSpec spec;
    std::promise<JobResult> promise;
  };

  void dispatcher_loop();
  JobResult execute(const JobSpec& spec);
  std::shared_ptr<const MeshArtifact> mesh_for(const MeshSpec& spec, bool* hit);

  ServerOptions options_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_space_;
  std::condition_variable queue_work_;
  std::deque<Pending> queue_;
  bool stopping_ = false;

  std::mutex mesh_mutex_;
  std::unordered_map<MeshSpec,
                     std::shared_future<std::shared_ptr<const MeshArtifact>>,
                     MeshSpecHash>
      mesh_cache_;
  std::mutex partition_mutex_;
  std::unordered_map<PartitionKey,
                     std::shared_future<std::shared_ptr<const JobResult>>,
                     PartitionKeyHash>
      partition_cache_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;

  std::vector<std::thread> dispatchers_;
};

/// Run the full pipeline for one spec inline (no queue, no cache) -- the
/// reference computation the cache-correctness tests compare bitwise
/// against Server results.
[[nodiscard]] JobResult execute_job(const JobSpec& spec);

}  // namespace amr::serve
