#include "serve/serve.hpp"

#include <stdexcept>
#include <utility>

#include "octree/balance.hpp"
#include "octree/treesort.hpp"
#include "partition/optipart.hpp"
#include "util/timer.hpp"

namespace amr::serve {

namespace {

/// Boost-style hash combiner; keys are compared field-wise afterwards, so
/// the hash only spreads buckets and can never alias artifacts.
std::size_t combine(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

std::size_t hash_double(double v) { return std::hash<double>{}(v); }

MeshArtifact build_mesh(const MeshSpec& spec) {
  const sfc::Curve curve(spec.curve, spec.dim);
  MeshArtifact artifact;
  artifact.tree = octree::random_octree(spec.points, curve, spec.generate_options());
  if (spec.balance) artifact.tree = octree::balance_octree(artifact.tree, curve);
  artifact.keys = octree::tree_sort_with_keys(artifact.tree, curve);
  return artifact;
}

JobResult partition_mesh(const MeshArtifact& artifact, const JobSpec& spec,
                         const machine::MachineModel& machine) {
  const sfc::Curve curve(spec.mesh.curve, spec.mesh.dim);
  const machine::PerfModel model(machine, spec.profile);
  JobResult result;
  if (spec.partitioner == Partitioner::kTreeSort) {
    partition::TreeSortPartitionOptions options;
    options.tolerance = spec.tolerance;
    result.cuts = partition::treesort_partition(artifact.tree, artifact.keys, curve,
                                                spec.ranks, options);
  } else {
    result.cuts =
        partition::optipart_partition(artifact.tree, curve, spec.ranks, model);
  }
  result.metrics = partition::compute_metrics(artifact.tree, curve, result.cuts);
  result.predicted_seconds = result.metrics.predicted_time(model);
  result.mesh_elements = artifact.tree.size();
  return result;
}

}  // namespace

octree::GenerateOptions MeshSpec::generate_options() const {
  octree::GenerateOptions options;
  options.distribution = distribution;
  options.seed = seed;
  options.max_points_per_leaf = max_points_per_leaf;
  options.max_level = max_level;
  options.dim = dim;
  options.normal_mean = normal_mean;
  options.normal_sigma = normal_sigma;
  options.lognormal_m = lognormal_m;
  options.lognormal_s = lognormal_s;
  return options;
}

std::string to_string(Partitioner p) {
  return p == Partitioner::kTreeSort ? "treesort" : "optipart";
}

std::size_t MeshSpecHash::operator()(const MeshSpec& spec) const noexcept {
  std::size_t h = std::hash<std::size_t>{}(spec.points);
  h = combine(h, static_cast<std::size_t>(spec.distribution));
  h = combine(h, std::hash<std::uint64_t>{}(spec.seed));
  h = combine(h, static_cast<std::size_t>(spec.max_level));
  h = combine(h, spec.max_points_per_leaf);
  h = combine(h, static_cast<std::size_t>(spec.dim));
  h = combine(h, hash_double(spec.normal_mean));
  h = combine(h, hash_double(spec.normal_sigma));
  h = combine(h, hash_double(spec.lognormal_m));
  h = combine(h, hash_double(spec.lognormal_s));
  h = combine(h, static_cast<std::size_t>(spec.curve));
  h = combine(h, spec.balance ? 1u : 0u);
  return h;
}

std::size_t PartitionKeyHash::operator()(const PartitionKey& key) const noexcept {
  std::size_t h = MeshSpecHash{}(key.spec.mesh);
  h = combine(h, std::hash<std::string>{}(key.spec.machine));
  h = combine(h, static_cast<std::size_t>(key.spec.ranks));
  h = combine(h, static_cast<std::size_t>(key.spec.partitioner));
  h = combine(h, hash_double(key.spec.tolerance));
  h = combine(h, hash_double(key.spec.profile.alpha));
  h = combine(h, hash_double(key.spec.profile.bytes_per_element));
  h = combine(h, key.spec.profile.include_latency_term ? 1u : 0u);
  h = combine(h, hash_double(key.spec.profile.steps_per_repartition));
  h = combine(h, hash_double(key.spec.profile.migration_cost_factor));
  h = combine(h, hash_double(key.tc));
  h = combine(h, hash_double(key.ts));
  h = combine(h, hash_double(key.tw));
  h = combine(h, static_cast<std::size_t>(key.cores_per_node));
  h = combine(h, static_cast<std::size_t>(key.total_nodes));
  return h;
}

JobResult execute_job(const JobSpec& spec) {
  const machine::MachineModel machine = machine::machine_by_name(spec.machine);
  const MeshArtifact artifact = build_mesh(spec.mesh);
  return partition_mesh(artifact, spec, machine);
}

Server::Server(ServerOptions options) : options_(options) {
  if (options_.dispatchers < 1) options_.dispatchers = 1;
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  dispatchers_.reserve(static_cast<std::size_t>(options_.dispatchers));
  for (int i = 0; i < options_.dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

Server::~Server() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_work_.notify_all();
  queue_space_.notify_all();
  for (std::thread& dispatcher : dispatchers_) dispatcher.join();
}

std::future<JobResult> Server::submit(JobSpec spec) {
  Pending pending;
  pending.spec = std::move(spec);
  std::future<JobResult> future = pending.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_space_.wait(lock, [this] {
      return stopping_ || queue_.size() < options_.queue_capacity;
    });
    if (stopping_) throw std::runtime_error("serve::Server is shutting down");
    queue_.push_back(std::move(pending));
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }
  queue_work_.notify_one();
  return future;
}

void Server::dispatcher_loop() {
  for (;;) {
    Pending job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_work_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and the backlog is drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_space_.notify_one();

    const util::Timer timer;
    try {
      JobResult result = execute(job.spec);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.completed;
        stats_.latency_ns.record(static_cast<std::int64_t>(timer.seconds() * 1e9));
      }
      job.promise.set_value(std::move(result));
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.completed;
      }
      job.promise.set_exception(std::current_exception());
    }
  }
}

std::shared_ptr<const MeshArtifact> Server::mesh_for(const MeshSpec& spec, bool* hit) {
  std::shared_future<std::shared_ptr<const MeshArtifact>> future;
  std::promise<std::shared_ptr<const MeshArtifact>> mine;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(mesh_mutex_);
    const auto it = mesh_cache_.find(spec);
    if (it != mesh_cache_.end()) {
      future = it->second;
    } else {
      future = mine.get_future().share();
      mesh_cache_.emplace(spec, future);
      owner = true;
    }
  }
  *hit = !owner;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++(owner ? stats_.mesh_cache_misses : stats_.mesh_cache_hits);
  }
  if (!owner) return future.get();  // may block on a concurrent builder
  try {
    auto artifact = std::make_shared<const MeshArtifact>(build_mesh(spec));
    mine.set_value(artifact);
    return artifact;
  } catch (...) {
    mine.set_exception(std::current_exception());
    const std::lock_guard<std::mutex> lock(mesh_mutex_);
    mesh_cache_.erase(spec);  // failures are not cached; waiters still see it
    throw;
  }
}

JobResult Server::execute(const JobSpec& spec) {
  // Resolve the machine before touching any cache: an unknown name throws
  // here and is never memoized.
  const machine::MachineModel machine = machine::machine_by_name(spec.machine);
  if (!options_.cache_enabled) {
    return partition_mesh(build_mesh(spec.mesh), spec, machine);
  }

  PartitionKey key;
  key.spec = spec;
  key.tc = machine.tc;
  key.ts = machine.ts;
  key.tw = machine.tw;
  key.cores_per_node = machine.cores_per_node;
  key.total_nodes = machine.total_nodes;

  std::shared_future<std::shared_ptr<const JobResult>> future;
  std::promise<std::shared_ptr<const JobResult>> mine;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(partition_mutex_);
    const auto it = partition_cache_.find(key);
    if (it != partition_cache_.end()) {
      future = it->second;
    } else {
      future = mine.get_future().share();
      partition_cache_.emplace(key, future);
      owner = true;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++(owner ? stats_.partition_cache_misses : stats_.partition_cache_hits);
  }

  if (!owner) {
    JobResult result = *future.get();
    result.partition_cache_hit = true;
    return result;
  }
  try {
    bool mesh_hit = false;
    const std::shared_ptr<const MeshArtifact> mesh = mesh_for(spec.mesh, &mesh_hit);
    auto cached = std::make_shared<const JobResult>(partition_mesh(*mesh, spec, machine));
    mine.set_value(cached);
    JobResult result = *cached;
    result.mesh_cache_hit = mesh_hit;
    return result;
  } catch (...) {
    mine.set_exception(std::current_exception());
    const std::lock_guard<std::mutex> lock(partition_mutex_);
    partition_cache_.erase(key);
    throw;
  }
}

ServerStats Server::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace amr::serve
