// Precomputed face adjacency of a complete linear octree (CSR layout).
//
// Partition-quality sweeps evaluate many partitions of the *same* tree
// (tolerance sweeps, OptiPart refinement rounds, the Fig. 7-12 benches).
// The face-neighbor structure does not depend on the partition, so it is
// computed once here -- one O(N log N) pass -- after which per-partition
// work/boundary metrics and communication matrices are pure integer
// passes over the CSR arrays.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mesh/comm_matrix.hpp"
#include "octree/octant.hpp"
#include "partition/metrics.hpp"
#include "partition/partition.hpp"
#include "sfc/curve.hpp"

namespace amr::mesh {

struct Adjacency {
  /// CSR: neighbors of element i are neighbor_ids[row[i] .. row[i+1]).
  std::vector<std::uint64_t> row;
  std::vector<std::uint32_t> neighbor_ids;

  [[nodiscard]] std::size_t num_elements() const { return row.size() - 1; }
  [[nodiscard]] std::span<const std::uint32_t> neighbors_of(std::size_t i) const {
    return std::span<const std::uint32_t>(neighbor_ids)
        .subspan(row[i], row[i + 1] - row[i]);
  }
};

/// One-time neighbor enumeration over the whole tree.
[[nodiscard]] Adjacency build_adjacency(std::span<const octree::Octant> tree,
                                        const sfc::Curve& curve);

/// Alg. 2 metrics from precomputed adjacency (identical to
/// partition::compute_metrics with stride 1).
[[nodiscard]] partition::Metrics metrics_from_adjacency(const Adjacency& adjacency,
                                                        const partition::Partition& part);

/// Communication matrix from precomputed adjacency (identical to
/// build_comm_matrix).
[[nodiscard]] CommMatrix comm_matrix_from_adjacency(const Adjacency& adjacency,
                                                    const partition::Partition& part);

}  // namespace amr::mesh
