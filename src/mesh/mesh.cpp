#include "mesh/mesh.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "octree/search.hpp"

namespace amr::mesh {

namespace {

constexpr double kUnit = 1.0 / static_cast<double>(std::uint32_t{1} << octree::kMaxDepth);

double face_area_unit(const octree::Octant& a, const octree::Octant& b, int dim) {
  const double area = octree::shared_face_area(a, b, dim);
  return dim == 3 ? area * kUnit * kUnit : area * kUnit;
}

double center_dist_unit(const octree::Octant& a, const octree::Octant& b) {
  return 0.5 * (static_cast<double>(a.size()) + static_cast<double>(b.size())) * kUnit;
}

/// Global face pair (i < elements of the lower side): enumerating only the
/// positive-direction faces of every element discovers each interior face
/// exactly once, including level jumps (the lower element sees all finer
/// neighbors through face_neighbor_leaves).
struct GlobalFace {
  std::size_t i;
  std::size_t j;
  double area;
  double dist;
};

template <typename FaceSink, typename BoundarySink>
void enumerate_faces(std::span<const octree::Octant> tree, const sfc::Curve& curve,
                     FaceSink&& face_sink, BoundarySink&& boundary_sink) {
  const int faces = curve.dim() == 3 ? 6 : 4;
  std::vector<std::size_t> neighbors;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    for (int face = 0; face < faces; ++face) {
      octree::Octant region;
      if (!tree[i].face_neighbor(face, region)) {
        boundary_sink(i, tree[i].face_area(curve.dim()) * (curve.dim() == 3
                                                               ? kUnit * kUnit
                                                               : kUnit),
                      0.5 * static_cast<double>(tree[i].size()) * kUnit);
        continue;
      }
      if ((face & 1) == 0) continue;  // interior faces found from the low side
      neighbors.clear();
      octree::face_neighbor_leaves(tree, curve, i, face, neighbors);
      for (const std::size_t j : neighbors) {
        face_sink(i, j, face_area_unit(tree[i], tree[j], curve.dim()),
                  center_dist_unit(tree[i], tree[j]));
      }
    }
  }
}

}  // namespace

std::size_t LocalMesh::send_volume() const {
  std::size_t total = 0;
  for (const auto& list : send_lists) total += list.size();
  return total;
}

void LocalMesh::build_overlap_split() {
  const std::size_t n = elements.size();
  interior_elements.clear();
  boundary_elements.clear();

  // Stable partition: owned-owned faces first, ghost faces last. The
  // overlapped matvec streams faces[0, num_owned_faces) before the halo
  // lands and the ghost tail after; stability keeps each group in its
  // original relative order, so every row still accumulates its owned
  // fluxes before its ghost fluxes -- the same per-row order the fused
  // kernel sees on this list -- and the phase split changes no bits.
  {
    std::vector<Face> reordered;
    reordered.reserve(faces.size());
    for (const Face& f : faces) {
      if (!f.b_is_ghost) reordered.push_back(f);
    }
    num_owned_faces = reordered.size();
    for (const Face& f : faces) {
      if (f.b_is_ghost) reordered.push_back(f);
    }
    faces = std::move(reordered);
  }

  boundary_mask.assign(n, 0);
  for (std::size_t i = num_owned_faces; i < faces.size(); ++i) {
    boundary_mask[faces[i].a] = 1;
  }

  // Same treatment for the wall faces: interior-row walls belong to the
  // interior phase, boundary-row walls to the boundary phase.
  {
    std::vector<BoundaryFace> reordered;
    reordered.reserve(boundary_faces.size());
    for (const BoundaryFace& f : boundary_faces) {
      if (boundary_mask[f.a] == 0) reordered.push_back(f);
    }
    num_interior_walls = reordered.size();
    for (const BoundaryFace& f : boundary_faces) {
      if (boundary_mask[f.a] != 0) reordered.push_back(f);
    }
    boundary_faces = std::move(reordered);
  }

  face_ref_offsets.assign(n + 1, 0);
  wall_offsets.assign(n + 1, 0);
  for (const Face& f : faces) {
    ++face_ref_offsets[f.a + 1];
    if (!f.b_is_ghost) ++face_ref_offsets[f.b + 1];
  }
  for (const BoundaryFace& f : boundary_faces) ++wall_offsets[f.a + 1];
  for (std::size_t e = 0; e < n; ++e) {
    face_ref_offsets[e + 1] += face_ref_offsets[e];
    wall_offsets[e + 1] += wall_offsets[e];
  }

  face_refs.resize(face_ref_offsets[n]);
  gather_refs.resize(face_ref_offsets[n]);
  wall_refs.resize(wall_offsets[n]);
  wall_coeffs.resize(wall_offsets[n]);
  // Fill by walking the (reordered) face lists in order, so each element's
  // references stay in face-list order (the bit-identity contract of the
  // CSR). The gather entry precomputes the same `area / dist` division
  // apply_local performs, so reusing it in the kernel reproduces the bits
  // exactly.
  std::vector<std::uint32_t> cursor(face_ref_offsets.begin(),
                                    face_ref_offsets.end() - 1);
  for (std::size_t i = 0; i < faces.size(); ++i) {
    const Face& f = faces[i];
    const double k = f.area / f.dist;
    const std::uint32_t pos_a = cursor[f.a]++;
    face_refs[pos_a] = static_cast<std::uint32_t>(i << 1U);
    gather_refs[pos_a] = {k, f.b, f.b_is_ghost ? 1U : 0U};
    if (!f.b_is_ghost) {
      const std::uint32_t pos_b = cursor[f.b]++;
      face_refs[pos_b] = static_cast<std::uint32_t>((i << 1U) | 1U);
      gather_refs[pos_b] = {k, f.a, 0U};
    }
  }
  cursor.assign(wall_offsets.begin(), wall_offsets.end() - 1);
  for (std::size_t i = 0; i < boundary_faces.size(); ++i) {
    const BoundaryFace& f = boundary_faces[i];
    const std::uint32_t pos = cursor[f.a]++;
    wall_refs[pos] = static_cast<std::uint32_t>(i);
    wall_coeffs[pos] = f.area / f.dist;
  }

  for (std::size_t e = 0; e < n; ++e) {
    auto& bucket = boundary_mask[e] != 0 ? boundary_elements : interior_elements;
    bucket.push_back(static_cast<std::uint32_t>(e));
  }
}

std::vector<LocalMesh> build_local_meshes(std::span<const octree::Octant> tree,
                                          const sfc::Curve& curve,
                                          const partition::Partition& part) {
  const int p = part.num_ranks();
  std::vector<LocalMesh> meshes(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    LocalMesh& m = meshes[static_cast<std::size_t>(r)];
    m.rank = r;
    m.global_begin = part.offsets[static_cast<std::size_t>(r)];
    const std::size_t end = part.offsets[static_cast<std::size_t>(r) + 1];
    m.elements.assign(tree.begin() + static_cast<std::ptrdiff_t>(m.global_begin),
                      tree.begin() + static_cast<std::ptrdiff_t>(end));
  }

  // Pass 1: collect global faces and per-rank boundary faces; register
  // ghost requirements as (needer, remote global index) pairs.
  std::vector<GlobalFace> global_faces;
  std::vector<std::pair<int, std::size_t>> ghost_pairs;
  enumerate_faces(
      tree, curve,
      [&](std::size_t i, std::size_t j, double area, double dist) {
        global_faces.push_back({i, j, area, dist});
        const int ri = part.owner_of(i);
        const int rj = part.owner_of(j);
        if (ri != rj) {
          ghost_pairs.emplace_back(ri, j);
          ghost_pairs.emplace_back(rj, i);
        }
      },
      [&](std::size_t i, double area, double dist) {
        LocalMesh& m = meshes[static_cast<std::size_t>(part.owner_of(i))];
        m.boundary_faces.push_back(
            {static_cast<std::uint32_t>(i - m.global_begin), area, dist});
      });

  // Ghost slots in ascending global order per needer, and matched
  // send/recv channel lists.
  std::sort(ghost_pairs.begin(), ghost_pairs.end());
  ghost_pairs.erase(std::unique(ghost_pairs.begin(), ghost_pairs.end()),
                    ghost_pairs.end());

  std::vector<std::unordered_map<std::size_t, std::uint32_t>> slot_of(
      static_cast<std::size_t>(p));
  auto channel_index = [](LocalMesh& m, int peer) {
    const auto it = std::lower_bound(m.peers.begin(), m.peers.end(), peer);
    if (it != m.peers.end() && *it == peer) {
      return static_cast<std::size_t>(it - m.peers.begin());
    }
    const std::size_t at = static_cast<std::size_t>(it - m.peers.begin());
    m.peers.insert(it, peer);
    // Note: `insert(pos, {})` would pick the initializer_list overload and
    // insert nothing; spell the empty element out.
    m.send_lists.emplace(m.send_lists.begin() + static_cast<std::ptrdiff_t>(at));
    m.recv_lists.emplace(m.recv_lists.begin() + static_cast<std::ptrdiff_t>(at));
    return at;
  };

  for (const auto& [needer, global_idx] : ghost_pairs) {
    const int owner = part.owner_of(global_idx);
    LocalMesh& need_mesh = meshes[static_cast<std::size_t>(needer)];
    LocalMesh& own_mesh = meshes[static_cast<std::size_t>(owner)];

    const auto slot = static_cast<std::uint32_t>(need_mesh.ghosts.size());
    slot_of[static_cast<std::size_t>(needer)][global_idx] = slot;
    need_mesh.ghosts.push_back(tree[global_idx]);
    need_mesh.ghost_global.push_back(global_idx);
    need_mesh.ghost_owner.push_back(owner);

    const std::size_t need_channel = channel_index(need_mesh, owner);
    need_mesh.recv_lists[need_channel].push_back(slot);
    const std::size_t own_channel = channel_index(own_mesh, needer);
    own_mesh.send_lists[own_channel].push_back(
        static_cast<std::uint32_t>(global_idx - own_mesh.global_begin));
  }

  // Pass 2: assign faces. Owned-owned faces are stored once on their rank;
  // cross-rank faces appear on both ranks against the ghost copy.
  for (const GlobalFace& f : global_faces) {
    const int ri = part.owner_of(f.i);
    const int rj = part.owner_of(f.j);
    LocalMesh& mi = meshes[static_cast<std::size_t>(ri)];
    if (ri == rj) {
      mi.faces.push_back({static_cast<std::uint32_t>(f.i - mi.global_begin),
                          static_cast<std::uint32_t>(f.j - mi.global_begin), false,
                          f.area, f.dist});
      continue;
    }
    LocalMesh& mj = meshes[static_cast<std::size_t>(rj)];
    mi.faces.push_back({static_cast<std::uint32_t>(f.i - mi.global_begin),
                        slot_of[static_cast<std::size_t>(ri)].at(f.j), true, f.area,
                        f.dist});
    mj.faces.push_back({static_cast<std::uint32_t>(f.j - mj.global_begin),
                        slot_of[static_cast<std::size_t>(rj)].at(f.i), true, f.area,
                        f.dist});
  }

  for (LocalMesh& m : meshes) m.build_overlap_split();
  return meshes;
}

GlobalMesh build_global_mesh(std::vector<octree::Octant> tree, const sfc::Curve& curve) {
  GlobalMesh mesh;
  mesh.elements = std::move(tree);
  enumerate_faces(
      mesh.elements, curve,
      [&](std::size_t i, std::size_t j, double area, double dist) {
        mesh.faces.push_back({static_cast<std::uint32_t>(i),
                              static_cast<std::uint32_t>(j), false, area, dist});
      },
      [&](std::size_t i, double area, double dist) {
        mesh.boundary_faces.push_back({static_cast<std::uint32_t>(i), area, dist});
      });
  return mesh;
}

}  // namespace amr::mesh
