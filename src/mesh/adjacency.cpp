#include "mesh/adjacency.hpp"

#include <algorithm>

#include "octree/search.hpp"
#include "util/stats.hpp"

namespace amr::mesh {

Adjacency build_adjacency(std::span<const octree::Octant> tree,
                          const sfc::Curve& curve) {
  Adjacency adjacency;
  adjacency.row.resize(tree.size() + 1, 0);

  std::vector<std::size_t> neighbors;
  const int faces = curve.dim() == 3 ? 6 : 4;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    neighbors.clear();
    for (int face = 0; face < faces; ++face) {
      octree::face_neighbor_leaves(tree, curve, i, face, neighbors);
    }
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()), neighbors.end());
    for (const std::size_t j : neighbors) {
      adjacency.neighbor_ids.push_back(static_cast<std::uint32_t>(j));
    }
    adjacency.row[i + 1] = adjacency.neighbor_ids.size();
  }
  return adjacency;
}

partition::Metrics metrics_from_adjacency(const Adjacency& adjacency,
                                          const partition::Partition& part) {
  const int p = part.num_ranks();
  partition::Metrics m;
  m.work.assign(static_cast<std::size_t>(p), 0.0);
  m.boundary.assign(static_cast<std::size_t>(p), 0.0);
  for (int r = 0; r < p; ++r) {
    m.work[static_cast<std::size_t>(r)] = static_cast<double>(part.size_of(r));
  }

  m.degree.assign(static_cast<std::size_t>(p), 0.0);
  std::vector<char> peer_seen(static_cast<std::size_t>(p), 0);
  for (int r = 0; r < p; ++r) {
    const std::size_t begin = part.offsets[static_cast<std::size_t>(r)];
    const std::size_t end = part.offsets[static_cast<std::size_t>(r) + 1];
    std::fill(peer_seen.begin(), peer_seen.end(), 0);
    for (std::size_t i = begin; i < end; ++i) {
      bool is_boundary = false;
      for (const std::uint32_t j : adjacency.neighbors_of(i)) {
        if (j < begin || j >= end) {
          is_boundary = true;
          peer_seen[static_cast<std::size_t>(part.owner_of(j))] = 1;
        }
      }
      if (is_boundary) m.boundary[static_cast<std::size_t>(r)] += 1.0;
    }
    for (int q = 0; q < p; ++q) {
      m.degree[static_cast<std::size_t>(r)] += peer_seen[static_cast<std::size_t>(q)];
    }
  }

  for (int r = 0; r < p; ++r) {
    m.w_max = std::max(m.w_max, m.work[static_cast<std::size_t>(r)]);
    m.c_max = std::max(m.c_max, m.boundary[static_cast<std::size_t>(r)]);
    m.m_max = std::max(m.m_max, m.degree[static_cast<std::size_t>(r)]);
    m.total_boundary += m.boundary[static_cast<std::size_t>(r)];
  }
  m.load_imbalance = util::max_min_ratio(m.work);
  m.comm_imbalance = util::max_min_ratio(m.boundary);
  return m;
}

CommMatrix comm_matrix_from_adjacency(const Adjacency& adjacency,
                                      const partition::Partition& part) {
  CommMatrix matrix(part.num_ranks());
  // Neighbor lists are deduplicated per element, so each (needer, remote
  // element) pair appears exactly once per owning element i; dedup across
  // i of the same rank via sort/unique as in build_comm_matrix.
  std::vector<std::pair<int, std::uint32_t>> ghost_pairs;
  for (int r = 0; r < part.num_ranks(); ++r) {
    const std::size_t begin = part.offsets[static_cast<std::size_t>(r)];
    const std::size_t end = part.offsets[static_cast<std::size_t>(r) + 1];
    for (std::size_t i = begin; i < end; ++i) {
      for (const std::uint32_t j : adjacency.neighbors_of(i)) {
        if (j < begin || j >= end) ghost_pairs.emplace_back(r, j);
      }
    }
  }
  std::sort(ghost_pairs.begin(), ghost_pairs.end());
  ghost_pairs.erase(std::unique(ghost_pairs.begin(), ghost_pairs.end()),
                    ghost_pairs.end());
  for (const auto& [needer, element] : ghost_pairs) {
    matrix.add(needer, part.owner_of(element));
  }
  return matrix;
}

}  // namespace amr::mesh
