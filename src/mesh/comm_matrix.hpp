// The communication matrix M (paper §5.5).
//
//   M[i][j] = number of elements rank i needs read-only (ghost/halo) access
//   to on rank j; 0 when i and j share no data.
//
// The paper uses two metrics over M to characterize partition quality:
// the number of non-zeros NNZ (total messages exchanged per matvec) and
// the total amount of data communicated (sum of entries).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "octree/octant.hpp"
#include "partition/partition.hpp"
#include "sfc/curve.hpp"

namespace amr::mesh {

class CommMatrix {
 public:
  explicit CommMatrix(int num_ranks) : num_ranks_(num_ranks) {}

  void add(int needer, int owner, double elements = 1.0);

  [[nodiscard]] int num_ranks() const { return num_ranks_; }
  /// Number of non-zero entries (the paper's NNZ metric).
  [[nodiscard]] std::size_t nnz() const { return entries_.size(); }
  /// Sum of all entries: total ghost elements moved per exchange.
  [[nodiscard]] double total_elements() const;
  /// Largest per-rank communication volume: max over i of
  /// (ghosts received by i + elements i sends), the Cmax of Eq. 3.
  [[nodiscard]] double c_max() const;
  /// Ghost elements rank i receives (row sum).
  [[nodiscard]] double recv_of(int rank) const;
  /// Elements rank i sends to others (column sum).
  [[nodiscard]] double send_of(int rank) const;
  /// Number of peers rank i talks to (row + column non-zeros).
  [[nodiscard]] int degree_of(int rank) const;

  [[nodiscard]] const std::map<std::pair<int, int>, double>& entries() const {
    return entries_;
  }

 private:
  int num_ranks_;
  std::map<std::pair<int, int>, double> entries_;
};

/// Build M for a partition of a complete linear octree: rank i needs every
/// remote element that shares (part of) a face with one of its elements.
/// Ghost elements are counted once per (needer, element) pair, exactly the
/// halo a FEM matvec exchanges.
[[nodiscard]] CommMatrix build_comm_matrix(std::span<const octree::Octant> tree,
                                           const sfc::Curve& curve,
                                           const partition::Partition& part);

}  // namespace amr::mesh
