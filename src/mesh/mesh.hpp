// Distributed FEM mesh construction (paper §5.3/§5.5).
//
// From a partitioned complete linear octree we build, per rank: the owned
// elements, the ghost (halo) elements -- remote elements sharing a face
// with an owned one -- the face list the Laplacian matvec iterates, and the
// matched send/receive lists of the ghost exchange. Send and receive sides
// enumerate each (owner -> needer) channel in ascending global element
// order, so payloads can be exchanged position-by-position without keys.
//
// The mesh requires a 2:1 face-balanced tree only for FEM accuracy, not
// for correctness of the construction: neighbor enumeration handles any
// level jump.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "octree/octant.hpp"
#include "partition/partition.hpp"
#include "sfc/curve.hpp"

namespace amr::mesh {

/// One interior face the matvec integrates over. `b_is_ghost` selects the
/// index space of `b` (owned elements vs ghost slots).
struct Face {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  bool b_is_ghost = false;
  double area = 0.0;  ///< shared face area, unit-cube normalized
  double dist = 0.0;  ///< center-to-center distance, unit-cube normalized
};

/// A face on the domain boundary (Dirichlet data lives there).
struct BoundaryFace {
  std::uint32_t a = 0;
  double area = 0.0;
  double dist = 0.0;  ///< center-to-face distance
};

struct LocalMesh {
  int rank = 0;
  std::size_t global_begin = 0;  ///< global index of elements[0]

  std::vector<octree::Octant> elements;  ///< owned, in SFC order
  std::vector<octree::Octant> ghosts;    ///< halo elements, ascending global idx
  std::vector<std::size_t> ghost_global;
  std::vector<int> ghost_owner;

  /// Owned-owned faces (stored once) and owned-ghost faces. After
  /// build_overlap_split() the list is stably partitioned: faces
  /// [0, num_owned_faces) are owned-owned, the rest are ghost faces, with
  /// relative order preserved inside each group -- so the overlapped
  /// matvec's interior kernel streams the owned prefix branch-free and
  /// the boundary kernel streams the ghost tail, and every per-row
  /// accumulation order matches the fused apply_local bit for bit.
  std::vector<Face> faces;
  /// Domain-boundary (wall) faces. After build_overlap_split() the list is
  /// stably partitioned: [0, num_interior_walls) sit on interior rows, the
  /// rest on boundary rows (rows that touch a ghost face).
  std::vector<BoundaryFace> boundary_faces;

  std::vector<int> peers;  ///< ranks exchanged with, ascending
  /// send_lists[k]: local element indices shipped to peers[k].
  std::vector<std::vector<std::uint32_t>> send_lists;
  /// recv_lists[k]: ghost slots filled by peers[k], matching the peer's
  /// send order.
  std::vector<std::vector<std::uint32_t>> recv_lists;

  // --- Overlap split (build_overlap_split) -------------------------------
  // Interior elements touch no ghost-backed face, so their matvec rows
  // depend only on owned values and can be computed while the ghost
  // exchange is in flight; boundary elements have at least one ghost face
  // and must wait for it. Ghost faces always carry the owned element on
  // the `a` side, so "boundary" means "appears as f.a of a ghost face".
  std::vector<std::uint32_t> interior_elements;  ///< ascending local index
  std::vector<std::uint32_t> boundary_elements;  ///< ascending local index

  /// One precomputed gather term per face reference: the transmissibility
  /// (the exact `area / dist` apply_local divides out per face) plus the
  /// paired value index, so the overlap kernel never touches the 32-byte
  /// Face records or re-divides in its inner loop.
  struct GatherRef {
    double k = 0.0;           ///< f.area / f.dist, computed once
    std::uint32_t other = 0;  ///< paired element (owned index or ghost slot)
    std::uint32_t ghost = 0;  ///< 1 if `other` indexes the ghost array
  };


  /// Element -> face references, CSR. A reference packs face_index * 2 +
  /// side, side 1 meaning the element is the face's `b` (never a ghost).
  /// Per element, references appear in face-list order: walking them
  /// reproduces apply_local's per-element accumulation order bit-exactly,
  /// which is what keeps the phase-split kernel identical to the fused one
  /// under IEEE non-associativity.
  std::vector<std::uint32_t> face_ref_offsets;  ///< size elements.size() + 1
  std::vector<std::uint32_t> face_refs;
  std::vector<GatherRef> gather_refs;  ///< parallel to face_refs
  std::vector<std::uint32_t> wall_offsets;  ///< boundary_faces CSR, same shape
  std::vector<std::uint32_t> wall_refs;
  std::vector<double> wall_coeffs;  ///< area/dist per wall ref, parallel

  /// 1 for elements that touch a ghost face (the boundary set), 0 for
  /// interior.
  std::vector<std::uint8_t> boundary_mask;
  /// faces[0, num_owned_faces) are owned-owned; the rest are ghost faces.
  std::size_t num_owned_faces = 0;
  /// boundary_faces[0, num_interior_walls) sit on interior rows.
  std::size_t num_interior_walls = 0;

  /// Build the interior/boundary element split, stably partition `faces`
  /// (owned-owned first, ghost last) and `boundary_faces` (interior rows
  /// first), and build the element->face CSR over the new order. Called by
  /// both mesh constructions once faces are final; idempotent.
  void build_overlap_split();
  [[nodiscard]] bool has_overlap_split() const {
    return face_ref_offsets.size() == elements.size() + 1;
  }

  [[nodiscard]] std::size_t send_volume() const;
  [[nodiscard]] std::size_t recv_volume() const { return ghosts.size(); }
};

/// Build every rank's LocalMesh in one pass over the global tree.
[[nodiscard]] std::vector<LocalMesh> build_local_meshes(
    std::span<const octree::Octant> tree, const sfc::Curve& curve,
    const partition::Partition& part);

/// The undistributed mesh: global face list for the reference matvec.
struct GlobalMesh {
  std::vector<octree::Octant> elements;
  std::vector<Face> faces;  ///< b never a ghost
  std::vector<BoundaryFace> boundary_faces;
};

[[nodiscard]] GlobalMesh build_global_mesh(std::vector<octree::Octant> tree,
                                           const sfc::Curve& curve);

}  // namespace amr::mesh
