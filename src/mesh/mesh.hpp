// Distributed FEM mesh construction (paper §5.3/§5.5).
//
// From a partitioned complete linear octree we build, per rank: the owned
// elements, the ghost (halo) elements -- remote elements sharing a face
// with an owned one -- the face list the Laplacian matvec iterates, and the
// matched send/receive lists of the ghost exchange. Send and receive sides
// enumerate each (owner -> needer) channel in ascending global element
// order, so payloads can be exchanged position-by-position without keys.
//
// The mesh requires a 2:1 face-balanced tree only for FEM accuracy, not
// for correctness of the construction: neighbor enumeration handles any
// level jump.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "octree/octant.hpp"
#include "partition/partition.hpp"
#include "sfc/curve.hpp"

namespace amr::mesh {

/// One interior face the matvec integrates over. `b_is_ghost` selects the
/// index space of `b` (owned elements vs ghost slots).
struct Face {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  bool b_is_ghost = false;
  double area = 0.0;  ///< shared face area, unit-cube normalized
  double dist = 0.0;  ///< center-to-center distance, unit-cube normalized
};

/// A face on the domain boundary (Dirichlet data lives there).
struct BoundaryFace {
  std::uint32_t a = 0;
  double area = 0.0;
  double dist = 0.0;  ///< center-to-face distance
};

struct LocalMesh {
  int rank = 0;
  std::size_t global_begin = 0;  ///< global index of elements[0]

  std::vector<octree::Octant> elements;  ///< owned, in SFC order
  std::vector<octree::Octant> ghosts;    ///< halo elements, ascending global idx
  std::vector<std::size_t> ghost_global;
  std::vector<int> ghost_owner;

  std::vector<Face> faces;  ///< owned-owned (stored once) and owned-ghost
  std::vector<BoundaryFace> boundary_faces;

  std::vector<int> peers;  ///< ranks exchanged with, ascending
  /// send_lists[k]: local element indices shipped to peers[k].
  std::vector<std::vector<std::uint32_t>> send_lists;
  /// recv_lists[k]: ghost slots filled by peers[k], matching the peer's
  /// send order.
  std::vector<std::vector<std::uint32_t>> recv_lists;

  [[nodiscard]] std::size_t send_volume() const;
  [[nodiscard]] std::size_t recv_volume() const { return ghosts.size(); }
};

/// Build every rank's LocalMesh in one pass over the global tree.
[[nodiscard]] std::vector<LocalMesh> build_local_meshes(
    std::span<const octree::Octant> tree, const sfc::Curve& curve,
    const partition::Partition& part);

/// The undistributed mesh: global face list for the reference matvec.
struct GlobalMesh {
  std::vector<octree::Octant> elements;
  std::vector<Face> faces;  ///< b never a ghost
  std::vector<BoundaryFace> boundary_faces;
};

[[nodiscard]] GlobalMesh build_global_mesh(std::vector<octree::Octant> tree,
                                           const sfc::Curve& curve);

}  // namespace amr::mesh
