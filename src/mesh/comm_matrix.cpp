#include "mesh/comm_matrix.hpp"

#include <algorithm>

#include "octree/search.hpp"

namespace amr::mesh {

void CommMatrix::add(int needer, int owner, double elements) {
  entries_[{needer, owner}] += elements;
}

double CommMatrix::total_elements() const {
  double total = 0.0;
  for (const auto& [key, count] : entries_) total += count;
  return total;
}

double CommMatrix::c_max() const {
  std::vector<double> recv(static_cast<std::size_t>(num_ranks_), 0.0);
  std::vector<double> send(static_cast<std::size_t>(num_ranks_), 0.0);
  for (const auto& [key, count] : entries_) {
    recv[static_cast<std::size_t>(key.first)] += count;
    send[static_cast<std::size_t>(key.second)] += count;
  }
  double best = 0.0;
  for (int r = 0; r < num_ranks_; ++r) {
    best = std::max(best, std::max(recv[static_cast<std::size_t>(r)],
                                   send[static_cast<std::size_t>(r)]));
  }
  return best;
}

double CommMatrix::recv_of(int rank) const {
  double total = 0.0;
  for (const auto& [key, count] : entries_) {
    if (key.first == rank) total += count;
  }
  return total;
}

double CommMatrix::send_of(int rank) const {
  double total = 0.0;
  for (const auto& [key, count] : entries_) {
    if (key.second == rank) total += count;
  }
  return total;
}

int CommMatrix::degree_of(int rank) const {
  int degree = 0;
  for (const auto& [key, count] : entries_) {
    if (key.first == rank || key.second == rank) ++degree;
  }
  return degree;
}

CommMatrix build_comm_matrix(std::span<const octree::Octant> tree,
                             const sfc::Curve& curve,
                             const partition::Partition& part) {
  CommMatrix matrix(part.num_ranks());

  // Collect (needer rank, remote element) pairs, then deduplicate: an
  // element adjacent to several of rank i's octants is still shipped once.
  std::vector<std::pair<int, std::size_t>> ghost_pairs;
  std::vector<std::size_t> neighbors;
  const int faces = curve.dim() == 3 ? 6 : 4;

  for (int r = 0; r < part.num_ranks(); ++r) {
    const std::size_t begin = part.offsets[static_cast<std::size_t>(r)];
    const std::size_t end = part.offsets[static_cast<std::size_t>(r) + 1];
    for (std::size_t i = begin; i < end; ++i) {
      neighbors.clear();
      for (int face = 0; face < faces; ++face) {
        octree::face_neighbor_leaves(tree, curve, i, face, neighbors);
      }
      for (const std::size_t j : neighbors) {
        if (j < begin || j >= end) ghost_pairs.emplace_back(r, j);
      }
    }
  }

  std::sort(ghost_pairs.begin(), ghost_pairs.end());
  ghost_pairs.erase(std::unique(ghost_pairs.begin(), ghost_pairs.end()),
                    ghost_pairs.end());
  for (const auto& [needer, element] : ghost_pairs) {
    matrix.add(needer, part.owner_of(element));
  }
  return matrix;
}

}  // namespace amr::mesh
