// Torus interconnect geometry.
//
// Titan's Gemini network is a 3D torus; the distance messages travel --
// and thus link congestion and effective latency -- depends on where the
// communicating ranks' nodes sit in it. This header provides the geometry:
// node coordinates in an (X, Y, Z) torus and minimal hop distances with
// wraparound.
#pragma once

#include <array>
#include <cstdint>

namespace amr::alloc {

struct TorusConfig {
  std::array<int, 3> dims{8, 8, 8};  ///< nodes per torus dimension
  int cores_per_node = 16;

  [[nodiscard]] int total_nodes() const { return dims[0] * dims[1] * dims[2]; }
  [[nodiscard]] std::int64_t total_cores() const {
    return static_cast<std::int64_t>(total_nodes()) * cores_per_node;
  }
};

/// Coordinates of node `index` (row-major x-fastest).
[[nodiscard]] std::array<int, 3> torus_coords(const TorusConfig& config, int index);

/// Node index of coordinates.
[[nodiscard]] int torus_index(const TorusConfig& config, const std::array<int, 3>& at);

/// Minimal hop count between two nodes (per-dimension wraparound).
[[nodiscard]] int torus_hops(const TorusConfig& config, int node_a, int node_b);

/// ORNL Titan's Gemini torus (25x16x24 girdle, 2 nodes per Gemini ASIC --
/// modeled here as a 25x16x48 node torus).
[[nodiscard]] TorusConfig titan_torus();

}  // namespace amr::alloc
