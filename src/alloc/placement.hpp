// SFC-based rank placement (the paper's second SFC application, §1/§2:
// "resource allocations [3, 32]").
//
// A partition decides *which elements* a rank owns; placement decides
// *which node* the rank runs on. Because SFC partitions give geometrically
// local ranks numerically close ids, walking the torus nodes along a
// space-filling curve and assigning consecutive ranks to consecutive nodes
// keeps communicating ranks physically close -- fewer hops per ghost
// exchange than the scheduler's linear or scattered allocations.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/torus.hpp"
#include "mesh/comm_matrix.hpp"
#include "sfc/curve.hpp"

namespace amr::alloc {

enum class PlacementStrategy {
  kLinear,  ///< node = rank / cores_per_node in row-major node order
  kRandom,  ///< nodes shuffled (a busy scheduler's scattered allocation)
  kSfc,     ///< nodes ordered along a space-filling curve of the torus
};

[[nodiscard]] std::string to_string(PlacementStrategy strategy);

/// Placement of `p` ranks: result[r] = node index hosting rank r. Ranks
/// fill nodes in blocks of cores_per_node along the strategy's node order.
[[nodiscard]] std::vector<int> place_ranks(int p, const TorusConfig& config,
                                           PlacementStrategy strategy,
                                           sfc::CurveKind curve = sfc::CurveKind::kHilbert,
                                           std::uint64_t seed = 1);

/// Node visit order of a strategy (length = nodes needed for p ranks).
[[nodiscard]] std::vector<int> node_order(int nodes_needed, const TorusConfig& config,
                                          PlacementStrategy strategy,
                                          sfc::CurveKind curve, std::uint64_t seed);

struct HopReport {
  double average_hops = 0.0;  ///< ghost-element-weighted mean hop distance
  int max_hops = 0;
  double on_node_fraction = 0.0;  ///< traffic that never leaves a node
};

/// Evaluate a placement against the application's communication matrix.
[[nodiscard]] HopReport evaluate_placement(const mesh::CommMatrix& comm,
                                           const std::vector<int>& placement,
                                           const TorusConfig& config);

struct CongestionReport {
  double max_link_load = 0.0;   ///< elements over the hottest link
  double mean_link_load = 0.0;  ///< over links that carry any traffic
  std::size_t links_used = 0;
};

/// Route every flow with dimension-ordered routing (X, then Y, then Z,
/// shortest wrap direction -- the deterministic routing of torus networks
/// like Gemini) and accumulate per-link loads. The hottest link bounds the
/// exchange's completion time on a real torus; SFC placement should lower
/// it along with the average hop count.
[[nodiscard]] CongestionReport evaluate_congestion(const mesh::CommMatrix& comm,
                                                   const std::vector<int>& placement,
                                                   const TorusConfig& config);

}  // namespace amr::alloc
