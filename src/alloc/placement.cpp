#include "alloc/placement.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "octree/octant.hpp"
#include "util/rng.hpp"

namespace amr::alloc {

std::string to_string(PlacementStrategy strategy) {
  switch (strategy) {
    case PlacementStrategy::kLinear: return "linear";
    case PlacementStrategy::kRandom: return "random";
    case PlacementStrategy::kSfc: return "sfc";
  }
  return "?";
}

namespace {

/// Torus nodes ordered along a space-filling curve: embed the grid in the
/// smallest power-of-two cube, enumerate curve ranks of all in-range
/// coordinates, and sort by rank (out-of-range cells are simply skipped,
/// the standard treatment for non-power-of-two domains).
std::vector<int> sfc_node_order(const TorusConfig& config, sfc::CurveKind kind) {
  const sfc::Curve curve(kind, 3);
  int level = 0;
  while ((1 << level) < std::max({config.dims[0], config.dims[1], config.dims[2]})) {
    ++level;
  }
  level = std::max(level, 1);

  std::vector<std::pair<std::uint64_t, int>> ranked;
  ranked.reserve(static_cast<std::size_t>(config.total_nodes()));
  for (int n = 0; n < config.total_nodes(); ++n) {
    const auto at = torus_coords(config, n);
    octree::Octant cell;
    cell.level = static_cast<std::uint8_t>(level);
    cell.x = static_cast<std::uint32_t>(at[0]) << (octree::kMaxDepth - level);
    cell.y = static_cast<std::uint32_t>(at[1]) << (octree::kMaxDepth - level);
    cell.z = static_cast<std::uint32_t>(at[2]) << (octree::kMaxDepth - level);
    ranked.emplace_back(curve.rank_at_own_level(cell), n);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<int> order;
  order.reserve(ranked.size());
  for (const auto& [rank, node] : ranked) order.push_back(node);
  return order;
}

}  // namespace

std::vector<int> node_order(int nodes_needed, const TorusConfig& config,
                            PlacementStrategy strategy, sfc::CurveKind curve,
                            std::uint64_t seed) {
  if (nodes_needed > config.total_nodes()) {
    throw std::invalid_argument("placement: more nodes needed than the torus has");
  }
  std::vector<int> order;
  switch (strategy) {
    case PlacementStrategy::kLinear: {
      order.resize(static_cast<std::size_t>(config.total_nodes()));
      std::iota(order.begin(), order.end(), 0);
      break;
    }
    case PlacementStrategy::kRandom: {
      order.resize(static_cast<std::size_t>(config.total_nodes()));
      std::iota(order.begin(), order.end(), 0);
      util::Rng rng = util::make_rng(seed);
      std::shuffle(order.begin(), order.end(), rng);
      break;
    }
    case PlacementStrategy::kSfc: {
      order = sfc_node_order(config, curve);
      break;
    }
  }
  order.resize(static_cast<std::size_t>(nodes_needed));
  return order;
}

std::vector<int> place_ranks(int p, const TorusConfig& config,
                             PlacementStrategy strategy, sfc::CurveKind curve,
                             std::uint64_t seed) {
  const int nodes_needed =
      (p + config.cores_per_node - 1) / config.cores_per_node;
  const auto order = node_order(nodes_needed, config, strategy, curve, seed);
  std::vector<int> placement(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    placement[static_cast<std::size_t>(r)] =
        order[static_cast<std::size_t>(r / config.cores_per_node)];
  }
  return placement;
}

HopReport evaluate_placement(const mesh::CommMatrix& comm,
                             const std::vector<int>& placement,
                             const TorusConfig& config) {
  HopReport report;
  double total_elements = 0.0;
  double weighted_hops = 0.0;
  double on_node = 0.0;
  for (const auto& [key, elements] : comm.entries()) {
    const auto [needer, owner] = key;
    assert(needer < static_cast<int>(placement.size()) &&
           owner < static_cast<int>(placement.size()));
    const int hops = torus_hops(config, placement[static_cast<std::size_t>(needer)],
                                placement[static_cast<std::size_t>(owner)]);
    total_elements += elements;
    weighted_hops += elements * hops;
    if (hops == 0) on_node += elements;
    report.max_hops = std::max(report.max_hops, hops);
  }
  if (total_elements > 0.0) {
    report.average_hops = weighted_hops / total_elements;
    report.on_node_fraction = on_node / total_elements;
  }
  return report;
}

CongestionReport evaluate_congestion(const mesh::CommMatrix& comm,
                                     const std::vector<int>& placement,
                                     const TorusConfig& config) {
  // Link id: (node, dimension, direction) -> flattened index.
  const auto link_id = [&](int node, int dim, int positive) {
    return (static_cast<std::size_t>(node) * 3 + static_cast<std::size_t>(dim)) * 2 +
           static_cast<std::size_t>(positive);
  };
  std::vector<double> load(static_cast<std::size_t>(config.total_nodes()) * 6, 0.0);

  for (const auto& [key, elements] : comm.entries()) {
    const auto [needer, owner] = key;
    auto at = torus_coords(config, placement[static_cast<std::size_t>(owner)]);
    const auto to = torus_coords(config, placement[static_cast<std::size_t>(needer)]);
    // Dimension-ordered routing, shortest wrap direction per dimension.
    for (int d = 0; d < 3; ++d) {
      const int span = config.dims[static_cast<std::size_t>(d)];
      while (at[static_cast<std::size_t>(d)] != to[static_cast<std::size_t>(d)]) {
        const int forward = (to[static_cast<std::size_t>(d)] -
                             at[static_cast<std::size_t>(d)] + span) %
                            span;
        const bool positive = forward <= span - forward;
        load[link_id(torus_index(config, at), d, positive ? 1 : 0)] += elements;
        at[static_cast<std::size_t>(d)] =
            (at[static_cast<std::size_t>(d)] + (positive ? 1 : span - 1)) % span;
      }
    }
  }

  CongestionReport report;
  double total = 0.0;
  for (const double l : load) {
    if (l <= 0.0) continue;
    report.max_link_load = std::max(report.max_link_load, l);
    total += l;
    ++report.links_used;
  }
  if (report.links_used > 0) {
    report.mean_link_load = total / static_cast<double>(report.links_used);
  }
  return report;
}

}  // namespace amr::alloc
