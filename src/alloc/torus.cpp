#include "alloc/torus.hpp"

#include <cassert>
#include <cmath>

namespace amr::alloc {

std::array<int, 3> torus_coords(const TorusConfig& config, int index) {
  assert(index >= 0 && index < config.total_nodes());
  std::array<int, 3> at{};
  at[0] = index % config.dims[0];
  at[1] = (index / config.dims[0]) % config.dims[1];
  at[2] = index / (config.dims[0] * config.dims[1]);
  return at;
}

int torus_index(const TorusConfig& config, const std::array<int, 3>& at) {
  return at[0] + config.dims[0] * (at[1] + config.dims[1] * at[2]);
}

int torus_hops(const TorusConfig& config, int node_a, int node_b) {
  const auto a = torus_coords(config, node_a);
  const auto b = torus_coords(config, node_b);
  int hops = 0;
  for (int d = 0; d < 3; ++d) {
    const int span = config.dims[static_cast<std::size_t>(d)];
    const int direct = std::abs(a[static_cast<std::size_t>(d)] - b[static_cast<std::size_t>(d)]);
    hops += std::min(direct, span - direct);
  }
  return hops;
}

TorusConfig titan_torus() {
  TorusConfig config;
  config.dims = {25, 16, 48};
  config.cores_per_node = 16;
  return config;
}

}  // namespace amr::alloc
