#include "fuzz/oracles.hpp"

#include <algorithm>
#include <sstream>

#include "octree/balance.hpp"
#include "octree/treesort.hpp"
#include "sfc/key.hpp"

namespace amr::fuzz {

namespace {

using octree::Octant;

std::size_t total_size(const std::vector<std::vector<Octant>>& pieces) {
  std::size_t n = 0;
  for (const auto& piece : pieces) n += piece.size();
  return n;
}

}  // namespace

std::string OracleResult::summary() const {
  if (failures.empty()) return "ok";
  std::ostringstream out;
  out << failures.size() << " oracle failure(s):";
  for (const std::string& f : failures) out << "\n  - " << f;
  return out.str();
}

std::vector<Octant> sorted_union(const std::vector<std::vector<Octant>>& pieces,
                                 const sfc::Curve& curve) {
  std::vector<Octant> all;
  all.reserve(total_size(pieces));
  for (const auto& piece : pieces) all.insert(all.end(), piece.begin(), piece.end());
  octree::tree_sort(all, curve);
  return all;
}

void check_matches_sequential(const std::vector<std::vector<Octant>>& outputs,
                              const std::vector<Octant>& reference,
                              const sfc::Curve& curve, OracleResult& result) {
  std::vector<Octant> concatenated;
  concatenated.reserve(reference.size());
  for (const auto& piece : outputs) {
    concatenated.insert(concatenated.end(), piece.begin(), piece.end());
  }
  if (concatenated.size() != reference.size()) {
    std::ostringstream out;
    out << "distributed output holds " << concatenated.size()
        << " elements, sequential reference " << reference.size();
    result.fail(out.str());
    return;
  }
  if (!octree::is_sfc_sorted(concatenated, curve)) {
    result.fail("concatenated output is not SFC-sorted");
  }
  // Equal octants are bit-identical, so ties cannot mask a mismatch:
  // multiset equality + sortedness on both sides implies elementwise
  // equality, and any difference pinpoints the first divergence.
  for (std::size_t i = 0; i < concatenated.size(); ++i) {
    if (!(concatenated[i] == reference[i])) {
      std::ostringstream out;
      out << "output diverges from sequential tree_sort at global index " << i
          << ": got " << concatenated[i].to_string() << ", expected "
          << reference[i].to_string();
      result.fail(out.str());
      return;
    }
  }
}

void check_conservation(const std::vector<std::vector<Octant>>& inputs,
                        const std::vector<std::vector<Octant>>& outputs,
                        OracleResult& result) {
  const std::size_t in = total_size(inputs);
  const std::size_t out = total_size(outputs);
  if (in != out) {
    std::ostringstream msg;
    msg << "element count not conserved: " << in << " in, " << out << " out";
    result.fail(msg.str());
  }
}

void check_splitters(const simmpi::SplitterSet& splitters,
                     const std::vector<Octant>& reference,
                     const std::vector<std::vector<Octant>>& outputs,
                     const sfc::Curve& curve, OracleResult& result) {
  const std::size_t p = outputs.size();
  const std::size_t n = reference.size();
  if (splitters.keys.size() != p || splitters.codes.size() != p ||
      splitters.infinite.size() != p || splitters.cuts.size() != p + 1) {
    result.fail("splitter set has inconsistent sizes");
    return;
  }
  for (std::size_t r = 1; r < p; ++r) {
    if (splitters.codes[r] < splitters.codes[r - 1]) {
      std::ostringstream out;
      out << "splitter codes not monotone at rank " << r;
      result.fail(out.str());
    }
  }
  if (splitters.cuts.front() != 0 || splitters.cuts.back() != n) {
    result.fail("splitter cuts do not span [0, N]");
  }
  for (std::size_t r = 1; r <= p; ++r) {
    if (splitters.cuts[r] < splitters.cuts[r - 1]) {
      std::ostringstream out;
      out << "splitter cuts not monotone at rank " << r;
      result.fail(out.str());
    }
  }
  // Non-infinite splitter codes must be the curve keys of their octants.
  for (std::size_t r = 0; r < p; ++r) {
    const sfc::CurveKey expected = splitters.infinite[r] != 0
                                       ? sfc::key_supremum()
                                       : sfc::curve_key(curve, splitters.keys[r]);
    if (splitters.codes[r] != expected) {
      std::ostringstream out;
      out << "splitter code of rank " << r << " does not encode its key";
      result.fail(out.str());
    }
  }
  // Routing / cut agreement: walking the sequential reference through
  // dest_of_key must land exactly cuts[r+1]-cuts[r] elements on rank r,
  // in non-decreasing destination order. This is the invariant that makes
  // the reported cuts, partition_quality's Wmax, and the alltoallv
  // exchange tell the same story.
  std::vector<std::size_t> routed(p, 0);
  int prev_dest = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int dest = splitters.dest_of_key(sfc::curve_key(curve, reference[i]));
    if (dest < 0 || static_cast<std::size_t>(dest) >= p) {
      std::ostringstream out;
      out << "dest_of_key returned out-of-range rank " << dest << " at index " << i;
      result.fail(out.str());
      return;
    }
    if (dest < prev_dest) {
      std::ostringstream out;
      out << "dest_of_key not monotone over the sorted reference at index " << i;
      result.fail(out.str());
      return;
    }
    prev_dest = dest;
    ++routed[static_cast<std::size_t>(dest)];
  }
  for (std::size_t r = 0; r < p; ++r) {
    const std::size_t promised = splitters.cuts[r + 1] - splitters.cuts[r];
    if (routed[r] != promised) {
      std::ostringstream out;
      out << "rank " << r << ": dest_of_key routes " << routed[r]
          << " elements but cuts promise " << promised;
      result.fail(out.str());
    }
    if (outputs[r].size() != promised) {
      std::ostringstream out;
      out << "rank " << r << ": exchange delivered " << outputs[r].size()
          << " elements but cuts promise " << promised;
      result.fail(out.str());
    }
  }
}

void check_partition_offsets(const partition::Partition& part, std::size_t n,
                             OracleResult& result) {
  if (part.offsets.empty()) {
    result.fail("partition offsets empty");
    return;
  }
  if (part.offsets.front() != 0) result.fail("partition offsets[0] != 0");
  if (part.offsets.back() != n) {
    std::ostringstream out;
    out << "partition offsets end at " << part.offsets.back() << ", not N=" << n;
    result.fail(out.str());
  }
  for (std::size_t r = 1; r < part.offsets.size(); ++r) {
    if (part.offsets[r] < part.offsets[r - 1]) {
      std::ostringstream out;
      out << "partition offsets decrease at index " << r;
      result.fail(out.str());
      return;
    }
  }
}

void check_balance_preserved(const std::vector<Octant>& reference,
                             const std::vector<std::vector<Octant>>& outputs,
                             const sfc::Curve& curve, OracleResult& result) {
  if (!octree::is_complete(reference, curve) ||
      !octree::is_face_balanced(reference, curve)) {
    return;  // precondition does not hold; nothing to preserve
  }
  std::vector<Octant> concatenated;
  for (const auto& piece : outputs) {
    concatenated.insert(concatenated.end(), piece.begin(), piece.end());
  }
  if (!octree::is_complete(concatenated, curve)) {
    result.fail("complete input union became incomplete after repartitioning");
  }
  if (!octree::is_face_balanced(concatenated, curve)) {
    result.fail("2:1-balanced input union lost balance after repartitioning");
  }
}

void check_optipart_trace(const simmpi::DistOptiPartTrace& trace,
                          OracleResult& result) {
  if (trace.rounds.empty()) {
    result.fail("optipart trace recorded no rounds");
    return;
  }
  double running_min = trace.rounds.front().predicted_time;
  for (const auto& round : trace.rounds) {
    running_min = std::min(running_min, round.predicted_time);
  }
  const double eps = 1e-12 * (1.0 + std::abs(running_min));
  if (trace.chosen_time > running_min + eps) {
    std::ostringstream out;
    out << "optipart chose Tp=" << trace.chosen_time
        << " but a evaluated round modeled " << running_min;
    result.fail(out.str());
  }
  if (trace.chosen_time > trace.rounds.front().predicted_time + eps) {
    std::ostringstream out;
    out << "optipart chose Tp=" << trace.chosen_time
        << " worse than the equal-split baseline round Tp="
        << trace.rounds.front().predicted_time;
    result.fail(out.str());
  }
}

}  // namespace amr::fuzz
