// Differential and invariant oracles for the distributed layer.
//
// Every oracle cross-checks a distributed result against a sequential
// reference or a structural invariant of the algorithms (§3.1-3.4):
//
//  * the redistributed array, concatenated by rank, must equal the
//    sequential tree_sort of the union of the inputs, element for element;
//  * the element multiset is conserved across the alltoallv exchange;
//  * splitter codes and cuts are monotone, mutually consistent, and
//    dest_of_key routing reproduces exactly the per-rank counts the cuts
//    promise;
//  * Partition::offsets are well-formed;
//  * a complete 2:1-balanced union stays complete and balanced across
//    repartitioning;
//  * OptiPart's accepted partition never models slower than its equal-split
//    baseline round, and the achieved distribution matches the accepted
//    splitters.
//
// Oracles append human-readable failure strings to an OracleResult instead
// of asserting, so the fuzz driver can report every broken invariant of a
// case at once together with the replay line.
#pragma once

#include <string>
#include <vector>

#include "octree/octant.hpp"
#include "partition/partition.hpp"
#include "sfc/curve.hpp"
#include "simmpi/dist_treesort.hpp"

namespace amr::fuzz {

struct OracleResult {
  std::vector<std::string> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  void fail(std::string message) { failures.push_back(std::move(message)); }
  [[nodiscard]] std::string summary() const;
};

/// Sequential reference: the union of all per-rank inputs, tree_sorted.
[[nodiscard]] std::vector<octree::Octant> sorted_union(
    const std::vector<std::vector<octree::Octant>>& pieces, const sfc::Curve& curve);

/// The distributed output (outputs[r] = rank r's final array) must
/// concatenate, in rank order, to exactly `reference` (the sequential sort
/// of the input union). Covers conservation, global order, and the
/// distributed/sequential differential in one check.
void check_matches_sequential(const std::vector<std::vector<octree::Octant>>& outputs,
                              const std::vector<octree::Octant>& reference,
                              const sfc::Curve& curve, OracleResult& result);

/// Element-count conservation across the exchange (cheap standalone form,
/// reported separately so a sort bug and a loss bug read differently).
void check_conservation(const std::vector<std::vector<octree::Octant>>& inputs,
                        const std::vector<std::vector<octree::Octant>>& outputs,
                        OracleResult& result);

/// Splitter invariants: sizes, code monotonicity, cut well-formedness,
/// cut/dest_of_key agreement on the reference array, and per-rank output
/// sizes equal to the cut ranges.
void check_splitters(const simmpi::SplitterSet& splitters,
                     const std::vector<octree::Octant>& reference,
                     const std::vector<std::vector<octree::Octant>>& outputs,
                     const sfc::Curve& curve, OracleResult& result);

/// Partition::offsets well-formedness for `n` elements: size p+1, first 0,
/// last n, non-decreasing.
void check_partition_offsets(const partition::Partition& part, std::size_t n,
                             OracleResult& result);

/// If the input union was complete and 2:1 face-balanced, the output union
/// must be too (repartitioning only moves elements).
void check_balance_preserved(const std::vector<octree::Octant>& reference,
                             const std::vector<std::vector<octree::Octant>>& outputs,
                             const sfc::Curve& curve, OracleResult& result);

/// OptiPart model invariants: the accepted round's modeled Tp is the
/// running minimum of the trace and never exceeds the first (equal-split
/// baseline) round.
void check_optipart_trace(const simmpi::DistOptiPartTrace& trace,
                          OracleResult& result);

}  // namespace amr::fuzz
