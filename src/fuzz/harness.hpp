// Differential fuzz harness for the distributed layer.
//
// run_case executes one CaseSpec end to end: generate per-rank inputs,
// compute the sequential reference (tree_sort of the union), run
// dist_treesort, dist_samplesort, and dist_optipart over simmpi -- with
// the case's schedule-perturbation seed applied to every barrier, publish,
// and mailbox operation -- and check every applicable oracle. Specs with
// matvec_iterations > 0 additionally push complete-tree unions through
// mesh construction and all three dist_fem matvec variants (collective,
// p2p, overlapped), pinned bit-identical to the sequential engine. A stall
// caught by the watchdog is reported as an oracle failure carrying the
// per-rank diagnostic, not a hang.
//
// seed_corpus() is the deterministic built-in matrix (curves x dims x rank
// counts x shapes) that CI runs on every push; the fuzz_dist tool adds a
// time-boxed random mode on top via random_case().
#pragma once

#include <vector>

#include "fuzz/generators.hpp"
#include "fuzz/oracles.hpp"

namespace amr::fuzz {

struct CaseResult {
  CaseSpec spec;
  OracleResult oracles;
  std::size_t total_elements = 0;

  [[nodiscard]] bool ok() const { return oracles.ok(); }
};

/// Run one case under all applicable oracles. Never hangs (watchdog) and
/// never throws for a distributed-layer defect: every violated invariant
/// lands in the result's OracleResult tagged with the algorithm name.
[[nodiscard]] CaseResult run_case(const CaseSpec& spec);

/// The fixed seed corpus: a deterministic matrix over curves, dimensions,
/// rank counts, and all input shapes, plus the pinned regression cases for
/// previously fixed bugs. Small enough for CI (seconds, not minutes).
[[nodiscard]] std::vector<CaseSpec> seed_corpus();

}  // namespace amr::fuzz
