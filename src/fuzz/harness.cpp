#include "fuzz/harness.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "app/application.hpp"
#include "fem/laplacian.hpp"
#include "machine/machine_model.hpp"
#include "machine/perf_model.hpp"
#include "mesh/mesh.hpp"
#include "octree/incremental.hpp"
#include "octree/treesort.hpp"
#include "partition/partition.hpp"
#include "simmpi/dist_fem.hpp"
#include "simmpi/dist_mesh.hpp"
#include "simmpi/dist_samplesort.hpp"
#include "simmpi/dist_treesort.hpp"
#include "simmpi/runtime.hpp"

namespace amr::fuzz {

namespace {

using octree::Octant;

simmpi::ContextOptions context_options(const CaseSpec& spec) {
  simmpi::ContextOptions options;
  options.perturb_seed = spec.perturb_seed;
  return options;
}

void run_treesort_case(const CaseSpec& spec,
                       const std::vector<std::vector<Octant>>& inputs,
                       const std::vector<Octant>& reference, CaseResult& result) {
  const sfc::Curve curve(spec.curve, spec.dim);
  const std::size_t p = inputs.size();
  std::vector<std::vector<Octant>> outputs(p);
  std::vector<simmpi::DistSortReport> reports(p);
  try {
    simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = inputs[r];
      simmpi::DistSortOptions options;
      options.tolerance = spec.tolerance;
      options.max_splitters_per_round = spec.max_splitters_per_round;
      reports[r] = simmpi::dist_treesort(local, comm, curve, options);
      outputs[r] = std::move(local);
    });
  } catch (const simmpi::DeadlockError& e) {
    result.oracles.fail(std::string("treesort: watchdog stall: ") + e.what());
    return;
  }

  OracleResult o;
  // tolerance == 0 means the cuts are the ideal split, so the concatenated
  // output must equal the sequential sort element for element. With
  // tolerance > 0 the cut positions may legally differ, so check order +
  // multiset via the splitter oracle instead.
  if (spec.tolerance == 0.0) {
    check_matches_sequential(outputs, reference, curve, o);
  }
  check_conservation(inputs, outputs, o);
  check_splitters(reports[0].splitter_set, reference, outputs, curve, o);
  for (std::size_t r = 1; r < p; ++r) {
    if (reports[r].splitter_set.cuts != reports[0].splitter_set.cuts ||
        reports[r].splitter_set.codes != reports[0].splitter_set.codes) {
      o.fail("ranks disagree on the splitter set (rank " + std::to_string(r) + ")");
      break;
    }
  }
  partition::Partition part;
  part.offsets = reports[0].splitter_set.cuts;
  check_partition_offsets(part, reference.size(), o);
  check_balance_preserved(reference, outputs, curve, o);
  for (std::string& f : o.failures) {
    result.oracles.fail("treesort: " + std::move(f));
  }
}

void run_samplesort_case(const CaseSpec& spec,
                         const std::vector<std::vector<Octant>>& inputs,
                         const std::vector<Octant>& reference, CaseResult& result) {
  const sfc::Curve curve(spec.curve, spec.dim);
  const std::size_t p = inputs.size();
  std::vector<std::vector<Octant>> outputs(p);
  try {
    simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = inputs[r];
      simmpi::dist_samplesort(local, comm, curve);
      outputs[r] = std::move(local);
    });
  } catch (const simmpi::DeadlockError& e) {
    result.oracles.fail(std::string("samplesort: watchdog stall: ") + e.what());
    return;
  }

  OracleResult o;
  // SampleSort's cuts depend on where the samples land, so only the
  // differential (order + multiset) and conservation oracles apply.
  check_matches_sequential(outputs, reference, curve, o);
  check_conservation(inputs, outputs, o);
  for (std::string& f : o.failures) {
    result.oracles.fail("samplesort: " + std::move(f));
  }
}

void run_optipart_case(const CaseSpec& spec,
                       const std::vector<std::vector<Octant>>& inputs,
                       const std::vector<Octant>& reference, CaseResult& result) {
  const sfc::Curve curve(spec.curve, spec.dim);
  const machine::PerfModel model(machine::wisconsin8(), machine::ApplicationProfile{});
  const std::size_t p = inputs.size();
  std::vector<std::vector<Octant>> outputs(p);
  std::vector<simmpi::DistSortReport> reports(p);
  std::vector<simmpi::DistOptiPartTrace> traces(p);
  try {
    simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = inputs[r];
      reports[r] = simmpi::dist_optipart(local, comm, curve, model,
                                         octree::kMaxDepth, &traces[r]);
      outputs[r] = std::move(local);
    });
  } catch (const simmpi::DeadlockError& e) {
    result.oracles.fail(std::string("optipart: watchdog stall: ") + e.what());
    return;
  }

  OracleResult o;
  check_conservation(inputs, outputs, o);
  check_splitters(reports[0].splitter_set, reference, outputs, curve, o);
  check_optipart_trace(traces[0], o);
  for (std::size_t r = 1; r < p; ++r) {
    if (traces[r].chosen_depth != traces[0].chosen_depth ||
        traces[r].chosen_time != traces[0].chosen_time) {
      o.fail("ranks disagree on the accepted OptiPart round (rank " +
             std::to_string(r) + ")");
      break;
    }
  }
  check_balance_preserved(reference, outputs, curve, o);
  for (std::string& f : o.failures) {
    result.oracles.fail("optipart: " + std::move(f));
  }
}

/// Differential matvec stage: sort + mesh the case's union, then run the
/// collective, p2p, and overlapped matvec variants plus the sequential
/// engine over the SAME per-rank meshes and demand bit-identical results
/// (same perturbation seed applied to every run). Skipped unless the spec
/// asks for iterations and the union is a complete tree (mesh construction
/// resolves neighbors; overlapping or duplicate unions have no mesh).
void run_matvec_case(const CaseSpec& spec,
                     const std::vector<std::vector<Octant>>& inputs,
                     const std::vector<Octant>& reference, CaseResult& result) {
  if (spec.matvec_iterations <= 0 || spec.app != AppKind::kMatvec) return;
  const sfc::Curve curve(spec.curve, spec.dim);
  if (!octree::is_complete(reference, curve)) return;

  const std::size_t p = inputs.size();
  std::vector<mesh::LocalMesh> meshes(p);
  try {
    simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = inputs[r];
      const simmpi::DistSortOptions options;  // tolerance 0: same split always
      const auto report = simmpi::dist_treesort(local, comm, curve, options);
      meshes[r] =
          simmpi::dist_build_local_mesh(local, report.splitters, comm, curve, nullptr);
    });
  } catch (const simmpi::DeadlockError& e) {
    result.oracles.fail(std::string("matvec: watchdog stall in sort/mesh: ") +
                        e.what());
    return;
  }

  const auto init_u = [](const mesh::LocalMesh& m) {
    std::vector<double> u(m.elements.size());
    for (std::size_t i = 0; i < u.size(); ++i) {
      const auto a = m.elements[i].anchor_unit();
      u[i] = std::sin(6.28 * a[0]) * std::cos(6.28 * a[1]);
    }
    return u;
  };

  using Variant = simmpi::DistFemReport (*)(const mesh::LocalMesh&, simmpi::Comm&,
                                            int, std::vector<double>&);
  const auto run_variant = [&](Variant fn, const char* name,
                               std::vector<std::vector<double>>& out) {
    out.assign(p, {});
    try {
      simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
        const std::size_t r = static_cast<std::size_t>(comm.rank());
        std::vector<double> u = init_u(meshes[r]);
        (void)fn(meshes[r], comm, spec.matvec_iterations, u);
        out[r] = std::move(u);
      });
    } catch (const simmpi::DeadlockError& e) {
      result.oracles.fail(std::string("matvec: watchdog stall in ") + name + ": " +
                          e.what());
      return false;
    }
    return true;
  };

  std::vector<std::vector<double>> overlapped;
  std::vector<std::vector<double>> p2p;
  std::vector<std::vector<double>> collective;
  if (!run_variant(&simmpi::dist_matvec_loop_overlapped, "overlapped", overlapped) ||
      !run_variant(&simmpi::dist_matvec_loop_p2p, "p2p", p2p) ||
      !run_variant(&simmpi::dist_matvec_loop, "collective", collective)) {
    return;
  }

  // Sequential engine over the gathered meshes: the ground truth every
  // threaded variant must match bit for bit.
  const fem::DistributedLaplacian engine(meshes);
  std::vector<std::vector<double>> ref(p);
  std::vector<std::vector<double>> tmp;
  for (std::size_t r = 0; r < p; ++r) ref[r] = init_u(meshes[r]);
  for (int it = 0; it < spec.matvec_iterations; ++it) {
    engine.matvec(ref, tmp);
    std::swap(ref, tmp);
  }

  OracleResult o;
  const auto compare = [&](const std::vector<std::vector<double>>& got,
                           const char* name) {
    for (std::size_t r = 0; r < p; ++r) {
      if (got[r].size() != ref[r].size()) {
        o.fail(std::string(name) + ": rank " + std::to_string(r) +
               " piece size mismatch");
        return;
      }
      if (!got[r].empty() &&
          std::memcmp(got[r].data(), ref[r].data(),
                      got[r].size() * sizeof(double)) != 0) {
        for (std::size_t i = 0; i < got[r].size(); ++i) {
          if (std::memcmp(&got[r][i], &ref[r][i], sizeof(double)) != 0) {
            o.fail(std::string(name) + ": rank " + std::to_string(r) +
                   " diverges from the sequential engine at element " +
                   std::to_string(i));
            return;
          }
        }
      }
    }
  };
  compare(overlapped, "overlapped");
  compare(p2p, "p2p");
  compare(collective, "collective");
  for (std::string& f : o.failures) {
    result.oracles.fail("matvec: " + std::move(f));
  }
}

/// Differential multigrid stage (`app=multigrid`): sort + mesh the case's
/// union, run the distributed V-cycle epoch on real threads, and demand it
/// bit-identical, per rank, to the application's lockstep sequential
/// oracle -- the coarsened hierarchies, transfers, smoother sweeps and the
/// overlapped fine-level halo schedule all pinned with one memcmp. Skipped
/// under the same completeness rule as the matvec stage.
void run_multigrid_case(const CaseSpec& spec,
                        const std::vector<std::vector<Octant>>& inputs,
                        const std::vector<Octant>& reference, CaseResult& result) {
  if (spec.matvec_iterations <= 0 || spec.app != AppKind::kMultigrid) return;
  const sfc::Curve curve(spec.curve, spec.dim);
  if (!octree::is_complete(reference, curve)) return;

  const std::size_t p = inputs.size();
  std::vector<mesh::LocalMesh> meshes(p);
  try {
    simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = inputs[r];
      const simmpi::DistSortOptions options;  // tolerance 0: same split always
      const auto report = simmpi::dist_treesort(local, comm, curve, options);
      meshes[r] =
          simmpi::dist_build_local_mesh(local, report.splitters, comm, curve, nullptr);
    });
  } catch (const simmpi::DeadlockError& e) {
    result.oracles.fail(std::string("multigrid: watchdog stall in sort/mesh: ") +
                        e.what());
    return;
  }

  // The incoming state is the V-cycle right-hand side.
  const auto init_u = [](const mesh::LocalMesh& m) {
    std::vector<double> u(m.elements.size());
    for (std::size_t i = 0; i < u.size(); ++i) {
      const auto a = m.elements[i].anchor_unit();
      u[i] = std::sin(6.28 * a[0]) * std::cos(6.28 * a[1]);
    }
    return u;
  };

  const app::Application& mg = app::multigrid_app();
  std::vector<std::vector<double>> distributed(p);
  try {
    simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      std::vector<double> u = init_u(meshes[r]);
      (void)mg.run_epoch(meshes[r], curve, comm, spec.matvec_iterations, u);
      distributed[r] = std::move(u);
    });
  } catch (const simmpi::DeadlockError& e) {
    result.oracles.fail(std::string("multigrid: watchdog stall in epoch: ") +
                        e.what());
    return;
  }

  std::vector<std::vector<double>> init(p);
  for (std::size_t r = 0; r < p; ++r) init[r] = init_u(meshes[r]);
  const std::vector<std::vector<double>> ref =
      mg.run_epoch_sequential(meshes, curve, spec.matvec_iterations, init);

  OracleResult o;
  for (std::size_t r = 0; r < p; ++r) {
    if (distributed[r].size() != ref[r].size()) {
      o.fail("rank " + std::to_string(r) + " piece size mismatch");
      break;
    }
    if (!distributed[r].empty() &&
        std::memcmp(distributed[r].data(), ref[r].data(),
                    distributed[r].size() * sizeof(double)) != 0) {
      for (std::size_t i = 0; i < distributed[r].size(); ++i) {
        if (std::memcmp(&distributed[r][i], &ref[r][i], sizeof(double)) != 0) {
          o.fail("rank " + std::to_string(r) +
                 " diverges from the sequential V-cycle at element " +
                 std::to_string(i));
          break;
        }
      }
      break;
    }
  }
  for (std::string& f : o.failures) {
    result.oracles.fail("multigrid: " + std::move(f));
  }
}

/// The oracle builds the edited stream with the library's own positional
/// replay (octree::apply_delta), which mirrors tree_sort_incremental's
/// delete sanitizer exactly.

/// Incremental-repartitioning differential stage. Establishes the previous
/// epoch with a from-scratch tolerance-0 sort, derives each rank's delta
/// from the spec, then pins:
///   1. dist_treesort_incremental bit-identical, element for element, to a
///      from-scratch dist_treesort over the edited stream (both routes --
///      merge and full fallback -- land here, whichever the change
///      fraction selects);
///   2. the returned key cache equal to keys_of(curve, local) per rank;
///   3. rank agreement on the route, the change count, and the splitters;
///   4. dist_optipart_incremental with migration_cost_factor = 0
///      bit-identical to from-scratch dist_optipart on the edited stream
///      (the migration term off must reproduce the seed partitioner), and
///      with the default profile: conservation + rank agreement on the
///      keep/adopt decision, with kept cuts routing back to previous codes.
void run_incremental_case(const CaseSpec& spec,
                          const std::vector<std::vector<Octant>>& inputs,
                          CaseResult& result) {
  if (spec.change_fraction <= 0.0) return;
  const sfc::Curve curve(spec.curve, spec.dim);
  const std::size_t p = inputs.size();

  // Previous epoch: tolerance 0 so the starting split is deterministic.
  std::vector<std::vector<Octant>> prev(p);
  std::vector<simmpi::DistSortReport> prev_reports(p);
  try {
    simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = inputs[r];
      prev_reports[r] =
          simmpi::dist_treesort(local, comm, curve, simmpi::DistSortOptions{});
      prev[r] = std::move(local);
    });
  } catch (const simmpi::DeadlockError& e) {
    result.oracles.fail(std::string("incremental: watchdog stall in setup: ") +
                        e.what());
    return;
  }

  std::vector<octree::DeltaStream> deltas(p);
  std::vector<std::vector<Octant>> edited(p);
  for (std::size_t r = 0; r < p; ++r) {
    deltas[r] = make_delta(spec, static_cast<int>(r), prev[r].size());
    edited[r] = octree::apply_delta(prev[r], deltas[r]);
  }

  // From-scratch ground truth over the edited stream.
  std::vector<std::vector<Octant>> scratch(p);
  std::vector<simmpi::DistSortReport> scratch_reports(p);
  std::vector<std::vector<Octant>> inc(p);
  std::vector<std::vector<sfc::CurveKey>> inc_keys(p);
  std::vector<simmpi::DistIncrementalReport> inc_reports(p);
  try {
    simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = edited[r];
      scratch_reports[r] =
          simmpi::dist_treesort(local, comm, curve, simmpi::DistSortOptions{});
      scratch[r] = std::move(local);
    });
    simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = prev[r];
      auto keys = sfc::keys_of(curve, local);
      inc_reports[r] = simmpi::dist_treesort_incremental(local, keys, comm, curve,
                                                         deltas[r]);
      inc[r] = std::move(local);
      inc_keys[r] = std::move(keys);
    });
  } catch (const simmpi::DeadlockError& e) {
    result.oracles.fail(std::string("incremental: watchdog stall in sort: ") +
                        e.what());
    return;
  }

  OracleResult o;
  for (std::size_t r = 0; r < p; ++r) {
    if (inc[r] != scratch[r]) {
      o.fail("incremental sort diverges from from-scratch on rank " +
             std::to_string(r));
      break;
    }
  }
  for (std::size_t r = 0; r < p; ++r) {
    if (inc_keys[r] != sfc::keys_of(curve, inc[r])) {
      o.fail("returned key cache is stale on rank " + std::to_string(r));
      break;
    }
  }
  check_conservation(edited, inc, o);
  for (std::size_t r = 1; r < p; ++r) {
    if (inc_reports[r].merge_path != inc_reports[0].merge_path ||
        inc_reports[r].global_changes != inc_reports[0].global_changes) {
      o.fail("ranks disagree on the merge/full route (rank " + std::to_string(r) +
             ")");
      break;
    }
  }
  for (std::size_t r = 0; r < p; ++r) {
    if (inc_reports[r].sort.splitter_set.codes !=
            scratch_reports[r].splitter_set.codes ||
        inc_reports[r].sort.splitter_set.cuts !=
            scratch_reports[r].splitter_set.cuts) {
      o.fail("incremental splitters differ from from-scratch (rank " +
             std::to_string(r) + ")");
      break;
    }
  }

  // diff_sorted differential oracle (the driver's adaptation -> delta
  // glue): diffing the previous global order against the edited+re-sorted
  // one must yield a delta whose replay through tree_sort_incremental
  // reproduces the new order -- elements and key cache -- bit for bit.
  {
    std::vector<Octant> old_all;
    std::vector<Octant> new_all;
    for (std::size_t r = 0; r < p; ++r) {
      old_all.insert(old_all.end(), prev[r].begin(), prev[r].end());
      new_all.insert(new_all.end(), scratch[r].begin(), scratch[r].end());
    }
    const auto old_keys = sfc::keys_of(curve, old_all);
    const auto new_keys = sfc::keys_of(curve, new_all);
    const octree::DeltaStream global_delta =
        octree::diff_sorted(old_all, old_keys, new_all, new_keys);
    if (old_all.size() - global_delta.delete_positions.size() +
            global_delta.inserts.size() !=
        new_all.size()) {
      o.fail("diff_sorted delta sizes are inconsistent with the two orders");
    }
    std::vector<Octant> replay = old_all;
    std::vector<sfc::CurveKey> replay_keys = old_keys;
    (void)octree::tree_sort_incremental(replay, replay_keys, curve, global_delta);
    if (replay != new_all) {
      o.fail("replaying the diff_sorted delta does not reproduce the new order");
    } else if (replay_keys != new_keys) {
      o.fail("replaying the diff_sorted delta left a stale key cache");
    }
  }

  // Migration term off: the incremental partitioner must reproduce the
  // from-scratch OptiPart result exactly.
  machine::ApplicationProfile app0;
  app0.migration_cost_factor = 0.0;
  const machine::PerfModel model0(machine::wisconsin8(), app0);
  std::vector<std::vector<Octant>> opt_scratch(p);
  std::vector<std::vector<Octant>> opt_inc(p);
  std::vector<simmpi::RepartitionDecision> decisions0(p);
  try {
    simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = edited[r];
      (void)simmpi::dist_optipart(local, comm, curve, model0, octree::kMaxDepth);
      opt_scratch[r] = std::move(local);
    });
    simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = prev[r];
      auto keys = sfc::keys_of(curve, local);
      (void)simmpi::dist_optipart_incremental(
          local, keys, comm, curve, model0, prev_reports[r].splitter_set,
          deltas[r], {}, nullptr, &decisions0[r]);
      opt_inc[r] = std::move(local);
    });
  } catch (const simmpi::DeadlockError& e) {
    result.oracles.fail(std::string("incremental: watchdog stall in optipart: ") +
                        e.what());
    return;
  }
  for (std::size_t r = 0; r < p; ++r) {
    if (decisions0[r].kept_previous) {
      o.fail("migration factor 0 kept the previous cuts on rank " +
             std::to_string(r));
      break;
    }
  }
  for (std::size_t r = 0; r < p; ++r) {
    if (opt_inc[r] != opt_scratch[r]) {
      o.fail("factor-0 incremental OptiPart diverges from from-scratch on rank " +
             std::to_string(r));
      break;
    }
  }

  // Default profile: the keep/adopt decision is collective and conservative.
  const machine::PerfModel model1(machine::wisconsin8(),
                                  machine::ApplicationProfile{});
  std::vector<std::vector<Octant>> opt_mig(p);
  std::vector<simmpi::DistIncrementalReport> mig_reports(p);
  std::vector<simmpi::RepartitionDecision> decisions1(p);
  try {
    simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = prev[r];
      auto keys = sfc::keys_of(curve, local);
      mig_reports[r] = simmpi::dist_optipart_incremental(
          local, keys, comm, curve, model1, prev_reports[r].splitter_set,
          deltas[r], {}, nullptr, &decisions1[r]);
      opt_mig[r] = std::move(local);
    });
  } catch (const simmpi::DeadlockError& e) {
    result.oracles.fail(
        std::string("incremental: watchdog stall in migration decision: ") +
        e.what());
    return;
  }
  check_conservation(edited, opt_mig, o);
  for (std::size_t r = 1; r < p; ++r) {
    if (decisions1[r].kept_previous != decisions1[0].kept_previous ||
        decisions1[r].moved_elements != decisions1[0].moved_elements) {
      o.fail("ranks disagree on the migration decision (rank " +
             std::to_string(r) + ")");
      break;
    }
  }
  if (decisions1[0].kept_previous) {
    if (!(decisions1[0].previous_objective < decisions1[0].candidate_objective)) {
      o.fail("kept the previous cuts without a better objective");
    }
    for (std::size_t r = 0; r < p; ++r) {
      if (mig_reports[r].sort.splitter_set.codes !=
          prev_reports[r].splitter_set.codes) {
        o.fail("kept-previous result does not route by the previous codes (rank " +
               std::to_string(r) + ")");
        break;
      }
    }
  }
  for (std::string& f : o.failures) {
    result.oracles.fail("incremental: " + std::move(f));
  }
}

}  // namespace

CaseResult run_case(const CaseSpec& spec) {
  CaseResult result;
  result.spec = spec;
  const auto inputs = make_inputs(spec);
  const sfc::Curve curve(spec.curve, spec.dim);
  const auto reference = sorted_union(inputs, curve);
  result.total_elements = reference.size();

  run_treesort_case(spec, inputs, reference, result);
  run_samplesort_case(spec, inputs, reference, result);
  run_optipart_case(spec, inputs, reference, result);
  run_matvec_case(spec, inputs, reference, result);
  run_multigrid_case(spec, inputs, reference, result);
  run_incremental_case(spec, inputs, result);
  return result;
}

std::vector<CaseSpec> seed_corpus() {
  std::vector<CaseSpec> corpus;
  constexpr sfc::CurveKind kCurves[] = {sfc::CurveKind::kMorton,
                                        sfc::CurveKind::kHilbert,
                                        sfc::CurveKind::kMoore};
  constexpr InputShape kShapes[] = {
      InputShape::kUniform,        InputShape::kNormal,
      InputShape::kLogNormal,      InputShape::kRandomOctants,
      InputShape::kDuplicateHeavy, InputShape::kSingleRankEmpty,
      InputShape::kAllOnOneRank,   InputShape::kIdenticalRanks,
      InputShape::kBalancedTree,
  };
  // Every shape under every curve, alternating dim and rank count so the
  // matrix stays small but each (curve, dim) and (curve, p) pair occurs.
  std::uint64_t seed = 100;
  for (const sfc::CurveKind curve : kCurves) {
    int i = 0;
    for (const InputShape shape : kShapes) {
      CaseSpec spec;
      spec.curve = curve;
      spec.dim = (i % 2 == 0) ? 3 : 2;
      spec.ranks = (i % 3 == 0) ? 4 : (i % 3 == 1) ? 7 : 2;
      spec.shape = shape;
      spec.elements_per_rank = 400;
      spec.seed = seed++;
      ++i;
      corpus.push_back(spec);
    }
  }
  // Knob coverage: tolerance and staged-splitter cap on the shapes that
  // exercise the cut fixup hardest.
  {
    CaseSpec spec;
    spec.shape = InputShape::kRandomOctants;
    spec.ranks = 8;
    spec.tolerance = 0.3;
    spec.seed = seed++;
    corpus.push_back(spec);
    spec.tolerance = 0.1;
    spec.max_splitters_per_round = 2;
    spec.seed = seed++;
    corpus.push_back(spec);
  }
  // Pinned regressions. duplicate_heavy with p >> distinct buckets used to
  // leave SplitterSet::codes non-monotone after the cut-only fixup, making
  // dest_of_key (upper_bound) routing disagree with the cuts.
  {
    CaseSpec spec;
    spec.shape = InputShape::kDuplicateHeavy;
    spec.ranks = 8;
    spec.elements_per_rank = 200;
    spec.seed = 1;  // pool of 2 distinct octants
    corpus.push_back(spec);
    spec.ranks = 16;
    spec.seed = 3;  // pool of 1 distinct octant: every splitter collapses
    corpus.push_back(spec);
  }
  // Schedule-perturbed replays of the structurally hardest shapes: the
  // same oracles must hold under adversarial interleavings (this is the
  // mode that exposed the allreduce in==out aliasing race).
  {
    CaseSpec spec;
    spec.shape = InputShape::kRandomOctants;
    spec.ranks = 4;
    spec.elements_per_rank = 300;
    spec.seed = seed++;
    spec.perturb_seed = 42;
    corpus.push_back(spec);
    spec.shape = InputShape::kSingleRankEmpty;
    spec.perturb_seed = 43;
    spec.seed = seed++;
    corpus.push_back(spec);
    spec.shape = InputShape::kDuplicateHeavy;
    spec.ranks = 8;
    spec.elements_per_rank = 150;
    spec.perturb_seed = 44;
    spec.seed = 2;
    corpus.push_back(spec);
  }
  // Overlapped-matvec differential stage: balanced complete trees pushed
  // through sort -> mesh -> all three matvec variants + the sequential
  // engine, pinned bit-identical -- including under perturbed schedules,
  // where the overlap window (irecv posted, interior kernel running,
  // wait racing the peer's isend) gets adversarial interleavings.
  {
    CaseSpec spec;
    spec.shape = InputShape::kBalancedTree;
    spec.ranks = 4;
    spec.dim = 3;
    spec.elements_per_rank = 250;
    spec.matvec_iterations = 3;
    spec.seed = seed++;
    corpus.push_back(spec);
    spec.curve = sfc::CurveKind::kMorton;
    spec.dim = 2;
    spec.ranks = 6;
    spec.matvec_iterations = 2;
    spec.perturb_seed = 45;
    spec.seed = seed++;
    corpus.push_back(spec);
    spec.curve = sfc::CurveKind::kMoore;
    spec.dim = 3;
    spec.ranks = 8;
    spec.elements_per_rank = 150;
    spec.matvec_iterations = 2;
    spec.perturb_seed = 46;
    spec.seed = seed++;
    corpus.push_back(spec);
  }
  // Multigrid differential stage: the same balanced complete trees, but
  // the V-cycle epoch against its lockstep sequential oracle -- coarse
  // hierarchies differ per rank (only complete sibling groups inside a
  // slice coarsen), so these also pin that the wire schedule is
  // independent of a rank's local level count. Both dims, a perturbed
  // schedule, and a rank count high enough to leave some ranks too small
  // to coarsen at all.
  {
    CaseSpec spec;
    spec.shape = InputShape::kBalancedTree;
    spec.app = AppKind::kMultigrid;
    spec.ranks = 4;
    spec.dim = 3;
    spec.elements_per_rank = 250;
    spec.matvec_iterations = 2;
    spec.seed = seed++;
    corpus.push_back(spec);
    spec.curve = sfc::CurveKind::kMorton;
    spec.dim = 2;
    spec.ranks = 6;
    spec.matvec_iterations = 3;
    spec.perturb_seed = 49;
    spec.seed = seed++;
    corpus.push_back(spec);
    spec.curve = sfc::CurveKind::kMoore;
    spec.dim = 3;
    spec.ranks = 12;
    spec.elements_per_rank = 120;
    spec.matvec_iterations = 2;
    spec.perturb_seed = 50;
    spec.seed = seed++;
    corpus.push_back(spec);
  }
  // Incremental-repartitioning differential stage: the corpus cases the
  // issue names (duplicate-heavy deltas, an empty rank, every delete on one
  // rank), a change fraction on each side of the merge/full-fallback
  // threshold, and perturbed-schedule replays so the threaded merge and the
  // migration-decision allreduce get adversarial interleavings.
  {
    CaseSpec spec;
    spec.shape = InputShape::kDuplicateHeavy;
    spec.ranks = 8;
    spec.elements_per_rank = 150;
    spec.seed = 2;
    spec.change_fraction = 0.05;
    spec.delta_shape = DeltaShape::kMixed;
    corpus.push_back(spec);
    spec.shape = InputShape::kSingleRankEmpty;
    spec.ranks = 4;
    spec.elements_per_rank = 300;
    spec.seed = seed++;
    spec.change_fraction = 0.02;
    spec.delta_shape = DeltaShape::kInsertsOnly;
    corpus.push_back(spec);
    spec.shape = InputShape::kRandomOctants;
    spec.seed = seed++;
    spec.change_fraction = 0.1;
    spec.delta_shape = DeltaShape::kDeletesOneRank;
    corpus.push_back(spec);
    // Above the fallback threshold: the full-resort route must agree too.
    spec.curve = sfc::CurveKind::kMorton;
    spec.dim = 2;
    spec.seed = seed++;
    spec.change_fraction = 0.6;
    spec.delta_shape = DeltaShape::kMixed;
    corpus.push_back(spec);
    // Perturbed replays of the hardest two.
    spec.curve = sfc::CurveKind::kHilbert;
    spec.dim = 3;
    spec.shape = InputShape::kDuplicateHeavy;
    spec.ranks = 8;
    spec.elements_per_rank = 150;
    spec.seed = 2;
    spec.change_fraction = 0.05;
    spec.perturb_seed = 47;
    corpus.push_back(spec);
    spec.shape = InputShape::kRandomOctants;
    spec.ranks = 4;
    spec.elements_per_rank = 300;
    spec.seed = seed++;
    spec.change_fraction = 0.1;
    spec.delta_shape = DeltaShape::kDeletesOneRank;
    spec.perturb_seed = 48;
    corpus.push_back(spec);
  }
  return corpus;
}

}  // namespace amr::fuzz
