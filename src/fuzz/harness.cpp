#include "fuzz/harness.hpp"

#include <utility>

#include "machine/machine_model.hpp"
#include "machine/perf_model.hpp"
#include "partition/partition.hpp"
#include "simmpi/dist_samplesort.hpp"
#include "simmpi/dist_treesort.hpp"
#include "simmpi/runtime.hpp"

namespace amr::fuzz {

namespace {

using octree::Octant;

simmpi::ContextOptions context_options(const CaseSpec& spec) {
  simmpi::ContextOptions options;
  options.perturb_seed = spec.perturb_seed;
  return options;
}

void run_treesort_case(const CaseSpec& spec,
                       const std::vector<std::vector<Octant>>& inputs,
                       const std::vector<Octant>& reference, CaseResult& result) {
  const sfc::Curve curve(spec.curve, spec.dim);
  const std::size_t p = inputs.size();
  std::vector<std::vector<Octant>> outputs(p);
  std::vector<simmpi::DistSortReport> reports(p);
  try {
    simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = inputs[r];
      simmpi::DistSortOptions options;
      options.tolerance = spec.tolerance;
      options.max_splitters_per_round = spec.max_splitters_per_round;
      reports[r] = simmpi::dist_treesort(local, comm, curve, options);
      outputs[r] = std::move(local);
    });
  } catch (const simmpi::DeadlockError& e) {
    result.oracles.fail(std::string("treesort: watchdog stall: ") + e.what());
    return;
  }

  OracleResult o;
  // tolerance == 0 means the cuts are the ideal split, so the concatenated
  // output must equal the sequential sort element for element. With
  // tolerance > 0 the cut positions may legally differ, so check order +
  // multiset via the splitter oracle instead.
  if (spec.tolerance == 0.0) {
    check_matches_sequential(outputs, reference, curve, o);
  }
  check_conservation(inputs, outputs, o);
  check_splitters(reports[0].splitter_set, reference, outputs, curve, o);
  for (std::size_t r = 1; r < p; ++r) {
    if (reports[r].splitter_set.cuts != reports[0].splitter_set.cuts ||
        reports[r].splitter_set.codes != reports[0].splitter_set.codes) {
      o.fail("ranks disagree on the splitter set (rank " + std::to_string(r) + ")");
      break;
    }
  }
  partition::Partition part;
  part.offsets = reports[0].splitter_set.cuts;
  check_partition_offsets(part, reference.size(), o);
  check_balance_preserved(reference, outputs, curve, o);
  for (std::string& f : o.failures) {
    result.oracles.fail("treesort: " + std::move(f));
  }
}

void run_samplesort_case(const CaseSpec& spec,
                         const std::vector<std::vector<Octant>>& inputs,
                         const std::vector<Octant>& reference, CaseResult& result) {
  const sfc::Curve curve(spec.curve, spec.dim);
  const std::size_t p = inputs.size();
  std::vector<std::vector<Octant>> outputs(p);
  try {
    simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = inputs[r];
      simmpi::dist_samplesort(local, comm, curve);
      outputs[r] = std::move(local);
    });
  } catch (const simmpi::DeadlockError& e) {
    result.oracles.fail(std::string("samplesort: watchdog stall: ") + e.what());
    return;
  }

  OracleResult o;
  // SampleSort's cuts depend on where the samples land, so only the
  // differential (order + multiset) and conservation oracles apply.
  check_matches_sequential(outputs, reference, curve, o);
  check_conservation(inputs, outputs, o);
  for (std::string& f : o.failures) {
    result.oracles.fail("samplesort: " + std::move(f));
  }
}

void run_optipart_case(const CaseSpec& spec,
                       const std::vector<std::vector<Octant>>& inputs,
                       const std::vector<Octant>& reference, CaseResult& result) {
  const sfc::Curve curve(spec.curve, spec.dim);
  const machine::PerfModel model(machine::wisconsin8(), machine::ApplicationProfile{});
  const std::size_t p = inputs.size();
  std::vector<std::vector<Octant>> outputs(p);
  std::vector<simmpi::DistSortReport> reports(p);
  std::vector<simmpi::DistOptiPartTrace> traces(p);
  try {
    simmpi::run_ranks(spec.ranks, context_options(spec), [&](simmpi::Comm& comm) {
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      auto local = inputs[r];
      reports[r] = simmpi::dist_optipart(local, comm, curve, model,
                                         octree::kMaxDepth, &traces[r]);
      outputs[r] = std::move(local);
    });
  } catch (const simmpi::DeadlockError& e) {
    result.oracles.fail(std::string("optipart: watchdog stall: ") + e.what());
    return;
  }

  OracleResult o;
  check_conservation(inputs, outputs, o);
  check_splitters(reports[0].splitter_set, reference, outputs, curve, o);
  check_optipart_trace(traces[0], o);
  for (std::size_t r = 1; r < p; ++r) {
    if (traces[r].chosen_depth != traces[0].chosen_depth ||
        traces[r].chosen_time != traces[0].chosen_time) {
      o.fail("ranks disagree on the accepted OptiPart round (rank " +
             std::to_string(r) + ")");
      break;
    }
  }
  check_balance_preserved(reference, outputs, curve, o);
  for (std::string& f : o.failures) {
    result.oracles.fail("optipart: " + std::move(f));
  }
}

}  // namespace

CaseResult run_case(const CaseSpec& spec) {
  CaseResult result;
  result.spec = spec;
  const auto inputs = make_inputs(spec);
  const sfc::Curve curve(spec.curve, spec.dim);
  const auto reference = sorted_union(inputs, curve);
  result.total_elements = reference.size();

  run_treesort_case(spec, inputs, reference, result);
  run_samplesort_case(spec, inputs, reference, result);
  run_optipart_case(spec, inputs, reference, result);
  return result;
}

std::vector<CaseSpec> seed_corpus() {
  std::vector<CaseSpec> corpus;
  constexpr sfc::CurveKind kCurves[] = {sfc::CurveKind::kMorton,
                                        sfc::CurveKind::kHilbert,
                                        sfc::CurveKind::kMoore};
  constexpr InputShape kShapes[] = {
      InputShape::kUniform,        InputShape::kNormal,
      InputShape::kLogNormal,      InputShape::kRandomOctants,
      InputShape::kDuplicateHeavy, InputShape::kSingleRankEmpty,
      InputShape::kAllOnOneRank,   InputShape::kIdenticalRanks,
      InputShape::kBalancedTree,
  };
  // Every shape under every curve, alternating dim and rank count so the
  // matrix stays small but each (curve, dim) and (curve, p) pair occurs.
  std::uint64_t seed = 100;
  for (const sfc::CurveKind curve : kCurves) {
    int i = 0;
    for (const InputShape shape : kShapes) {
      CaseSpec spec;
      spec.curve = curve;
      spec.dim = (i % 2 == 0) ? 3 : 2;
      spec.ranks = (i % 3 == 0) ? 4 : (i % 3 == 1) ? 7 : 2;
      spec.shape = shape;
      spec.elements_per_rank = 400;
      spec.seed = seed++;
      ++i;
      corpus.push_back(spec);
    }
  }
  // Knob coverage: tolerance and staged-splitter cap on the shapes that
  // exercise the cut fixup hardest.
  {
    CaseSpec spec;
    spec.shape = InputShape::kRandomOctants;
    spec.ranks = 8;
    spec.tolerance = 0.3;
    spec.seed = seed++;
    corpus.push_back(spec);
    spec.tolerance = 0.1;
    spec.max_splitters_per_round = 2;
    spec.seed = seed++;
    corpus.push_back(spec);
  }
  // Pinned regressions. duplicate_heavy with p >> distinct buckets used to
  // leave SplitterSet::codes non-monotone after the cut-only fixup, making
  // dest_of_key (upper_bound) routing disagree with the cuts.
  {
    CaseSpec spec;
    spec.shape = InputShape::kDuplicateHeavy;
    spec.ranks = 8;
    spec.elements_per_rank = 200;
    spec.seed = 1;  // pool of 2 distinct octants
    corpus.push_back(spec);
    spec.ranks = 16;
    spec.seed = 3;  // pool of 1 distinct octant: every splitter collapses
    corpus.push_back(spec);
  }
  // Schedule-perturbed replays of the structurally hardest shapes: the
  // same oracles must hold under adversarial interleavings (this is the
  // mode that exposed the allreduce in==out aliasing race).
  {
    CaseSpec spec;
    spec.shape = InputShape::kRandomOctants;
    spec.ranks = 4;
    spec.elements_per_rank = 300;
    spec.seed = seed++;
    spec.perturb_seed = 42;
    corpus.push_back(spec);
    spec.shape = InputShape::kSingleRankEmpty;
    spec.perturb_seed = 43;
    spec.seed = seed++;
    corpus.push_back(spec);
    spec.shape = InputShape::kDuplicateHeavy;
    spec.ranks = 8;
    spec.elements_per_rank = 150;
    spec.perturb_seed = 44;
    spec.seed = 2;
    corpus.push_back(spec);
  }
  return corpus;
}

}  // namespace amr::fuzz
