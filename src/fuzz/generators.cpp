#include "fuzz/generators.hpp"

#include <random>
#include <sstream>

#include "octree/balance.hpp"
#include "octree/generate.hpp"

namespace amr::fuzz {

namespace {

using octree::Octant;

constexpr struct {
  InputShape shape;
  const char* name;
} kShapeNames[] = {
    {InputShape::kUniform, "uniform"},
    {InputShape::kNormal, "normal"},
    {InputShape::kLogNormal, "lognormal"},
    {InputShape::kRandomOctants, "random_octants"},
    {InputShape::kDuplicateHeavy, "duplicate_heavy"},
    {InputShape::kSingleRankEmpty, "single_rank_empty"},
    {InputShape::kAllOnOneRank, "all_on_one_rank"},
    {InputShape::kIdenticalRanks, "identical_ranks"},
    {InputShape::kBalancedTree, "balanced_tree"},
};

constexpr struct {
  DeltaShape shape;
  const char* name;
} kDeltaShapeNames[] = {
    {DeltaShape::kMixed, "mixed"},
    {DeltaShape::kInsertsOnly, "inserts_only"},
    {DeltaShape::kDeletesOneRank, "deletes_one_rank"},
};

constexpr struct {
  AppKind app;
  const char* name;
} kAppNames[] = {
    {AppKind::kMatvec, "matvec"},
    {AppKind::kMultigrid, "multigrid"},
};

/// Random octants at random levels, quantized to their level grid. z is
/// forced to 0 in 2D so the octants are valid quadrants.
std::vector<Octant> random_octants(std::size_t n, int dim, std::uint64_t seed) {
  util::Rng rng = util::make_rng(seed);
  std::uniform_int_distribution<std::uint32_t> coord(0,
                                                     (1U << octree::kMaxDepth) - 1);
  std::uniform_int_distribution<int> lvl(1, 14);
  std::vector<Octant> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(octree::octant_from_point(coord(rng), coord(rng),
                                            dim == 3 ? coord(rng) : 0U, lvl(rng)));
  }
  return out;
}

std::vector<Octant> point_cloud_octree(const CaseSpec& spec,
                                       octree::PointDistribution dist,
                                       std::uint64_t seed) {
  const sfc::Curve curve(spec.curve, spec.dim);
  octree::GenerateOptions options;
  options.distribution = dist;
  options.seed = seed;
  options.dim = spec.dim;
  options.max_level = 10;
  return octree::random_octree(spec.elements_per_rank, curve, options);
}

}  // namespace

std::string to_string(InputShape shape) {
  for (const auto& entry : kShapeNames) {
    if (entry.shape == shape) return entry.name;
  }
  return "unknown";
}

std::optional<InputShape> shape_from_string(const std::string& name) {
  for (const auto& entry : kShapeNames) {
    if (name == entry.name) return entry.shape;
  }
  return std::nullopt;
}

std::string to_string(DeltaShape shape) {
  for (const auto& entry : kDeltaShapeNames) {
    if (entry.shape == shape) return entry.name;
  }
  return "unknown";
}

std::optional<DeltaShape> delta_shape_from_string(const std::string& name) {
  for (const auto& entry : kDeltaShapeNames) {
    if (name == entry.name) return entry.shape;
  }
  return std::nullopt;
}

std::string to_string(AppKind app) {
  for (const auto& entry : kAppNames) {
    if (entry.app == app) return entry.name;
  }
  return "unknown";
}

std::optional<AppKind> app_kind_from_string(const std::string& name) {
  for (const auto& entry : kAppNames) {
    if (name == entry.name) return entry.app;
  }
  return std::nullopt;
}

std::string to_string(const CaseSpec& spec) {
  std::ostringstream out;
  out << "curve=" << sfc::to_string(spec.curve) << " dim=" << spec.dim
      << " p=" << spec.ranks << " shape=" << to_string(spec.shape)
      << " n=" << spec.elements_per_rank << " tol=" << spec.tolerance
      << " stage=" << spec.max_splitters_per_round << " seed=" << spec.seed
      << " perturb=" << spec.perturb_seed << " matvec=" << spec.matvec_iterations
      << " delta=" << spec.change_fraction
      << " delta_shape=" << to_string(spec.delta_shape)
      << " app=" << to_string(spec.app);
  return out.str();
}

std::optional<CaseSpec> case_from_string(const std::string& line) {
  const std::size_t hash = line.find('#');
  std::istringstream in(hash == std::string::npos ? line : line.substr(0, hash));
  CaseSpec spec;
  bool any = false;
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "curve") {
        spec.curve = sfc::curve_kind_from_string(value);
      } else if (key == "dim") {
        spec.dim = std::stoi(value);
      } else if (key == "p") {
        spec.ranks = std::stoi(value);
      } else if (key == "shape") {
        const auto shape = shape_from_string(value);
        if (!shape.has_value()) return std::nullopt;
        spec.shape = *shape;
      } else if (key == "n") {
        spec.elements_per_rank = std::stoull(value);
      } else if (key == "tol") {
        spec.tolerance = std::stod(value);
      } else if (key == "stage") {
        spec.max_splitters_per_round = std::stoi(value);
      } else if (key == "seed") {
        spec.seed = std::stoull(value);
      } else if (key == "perturb") {
        spec.perturb_seed = std::stoull(value);
      } else if (key == "matvec") {
        spec.matvec_iterations = std::stoi(value);
      } else if (key == "delta") {
        spec.change_fraction = std::stod(value);
      } else if (key == "delta_shape") {
        const auto shape = delta_shape_from_string(value);
        if (!shape.has_value()) return std::nullopt;
        spec.delta_shape = *shape;
      } else if (key == "app") {
        const auto app = app_kind_from_string(value);
        if (!app.has_value()) return std::nullopt;
        spec.app = *app;
      } else {
        return std::nullopt;
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
    any = true;
  }
  if (!any) return std::nullopt;
  if (spec.dim != 2 && spec.dim != 3) return std::nullopt;
  if (spec.ranks < 1 || spec.ranks > 64) return std::nullopt;
  if (spec.change_fraction < 0.0 || spec.change_fraction > 4.0) return std::nullopt;
  return spec;
}

std::vector<std::vector<Octant>> make_inputs(const CaseSpec& spec) {
  const std::size_t p = static_cast<std::size_t>(spec.ranks);
  std::vector<std::vector<Octant>> inputs(p);
  switch (spec.shape) {
    case InputShape::kUniform:
    case InputShape::kNormal:
    case InputShape::kLogNormal: {
      const octree::PointDistribution dist =
          spec.shape == InputShape::kUniform ? octree::PointDistribution::kUniform
          : spec.shape == InputShape::kNormal
              ? octree::PointDistribution::kNormal
              : octree::PointDistribution::kLogNormal;
      for (std::size_t r = 0; r < p; ++r) {
        inputs[r] = point_cloud_octree(spec, dist, util::split_seed(spec.seed, r));
      }
      break;
    }
    case InputShape::kRandomOctants:
      for (std::size_t r = 0; r < p; ++r) {
        inputs[r] = random_octants(spec.elements_per_rank, spec.dim,
                                   util::split_seed(spec.seed, r));
      }
      break;
    case InputShape::kDuplicateHeavy: {
      // p >> distinct buckets: the whole cohort draws from a pool so small
      // that most splitter targets collapse onto the same bucket boundary.
      const std::size_t pool_size = 1 + spec.seed % 3;  // 1..3 distinct octants
      const auto pool = random_octants(pool_size, spec.dim,
                                       util::split_seed(spec.seed, 1000));
      for (std::size_t r = 0; r < p; ++r) {
        util::Rng rng = util::make_rng(spec.seed, r);
        inputs[r].reserve(spec.elements_per_rank);
        for (std::size_t i = 0; i < spec.elements_per_rank; ++i) {
          inputs[r].push_back(pool[rng() % pool.size()]);
        }
      }
      break;
    }
    case InputShape::kSingleRankEmpty:
      for (std::size_t r = 1; r < p; ++r) {
        inputs[r] = random_octants(spec.elements_per_rank, spec.dim,
                                   util::split_seed(spec.seed, r));
      }
      break;
    case InputShape::kAllOnOneRank:
      inputs[p - 1] = random_octants(spec.elements_per_rank * p, spec.dim,
                                     util::split_seed(spec.seed, 7));
      break;
    case InputShape::kIdenticalRanks: {
      const auto shared = random_octants(spec.elements_per_rank, spec.dim,
                                         util::split_seed(spec.seed, 11));
      for (std::size_t r = 0; r < p; ++r) inputs[r] = shared;
      break;
    }
    case InputShape::kBalancedTree: {
      // One complete 2:1-balanced tree, dealt to ranks in contiguous
      // slices: repartitioning must preserve completeness and balance of
      // the union (it only moves elements).
      const sfc::Curve curve(spec.curve, spec.dim);
      octree::GenerateOptions options;
      options.seed = spec.seed;
      options.dim = spec.dim;
      options.max_level = 8;
      auto tree = octree::random_octree(spec.elements_per_rank * p, curve, options);
      tree = octree::balance_octree(std::move(tree), curve);
      const std::size_t chunk = tree.size() / p;
      for (std::size_t r = 0; r < p; ++r) {
        const std::size_t lo = r * chunk;
        const std::size_t hi = r + 1 == p ? tree.size() : lo + chunk;
        inputs[r].assign(tree.begin() + static_cast<std::ptrdiff_t>(lo),
                         tree.begin() + static_cast<std::ptrdiff_t>(hi));
      }
      break;
    }
  }
  return inputs;
}

octree::DeltaStream make_delta(const CaseSpec& spec, int rank,
                               std::size_t local_size) {
  octree::DeltaStream delta;
  if (spec.change_fraction <= 0.0) return delta;
  const auto changes = static_cast<std::size_t>(
      spec.change_fraction * static_cast<double>(local_size));
  util::Rng rng = util::make_rng(spec.seed ^ 0x9e3779b97f4a7c15ULL,
                                 static_cast<std::uint64_t>(rank));
  // Split the edit budget per shape. Deletes draw positions with
  // replacement -- duplicates are the sanitizer's job to drop, and
  // regenerating the stream must reproduce them bit-for-bit.
  std::size_t inserts = 0;
  std::size_t deletes = 0;
  switch (spec.delta_shape) {
    case DeltaShape::kMixed:
      inserts = changes / 2;
      deletes = changes - inserts;
      break;
    case DeltaShape::kInsertsOnly:
      inserts = changes;
      break;
    case DeltaShape::kDeletesOneRank:
      if (rank == 0) {
        deletes = changes;
      } else {
        inserts = changes;
      }
      break;
  }
  if (local_size == 0) deletes = 0;
  delta.inserts =
      random_octants(inserts, spec.dim, util::split_seed(rng(), 17));
  if (spec.shape == InputShape::kDuplicateHeavy && !delta.inserts.empty()) {
    // Keep the duplicate pressure on: half the inserts re-add octants from
    // the same tiny pool the inputs were drawn from.
    const std::size_t pool_size = 1 + spec.seed % 3;
    const auto pool = random_octants(pool_size, spec.dim,
                                     util::split_seed(spec.seed, 1000));
    for (std::size_t i = 0; i < delta.inserts.size(); i += 2) {
      delta.inserts[i] = pool[rng() % pool.size()];
    }
  }
  delta.delete_positions.reserve(deletes);
  for (std::size_t i = 0; i < deletes; ++i) {
    delta.delete_positions.push_back(rng() % local_size);
  }
  return delta;
}

CaseSpec random_case(util::Rng& rng) {
  CaseSpec spec;
  constexpr sfc::CurveKind kCurves[] = {sfc::CurveKind::kMorton,
                                        sfc::CurveKind::kHilbert,
                                        sfc::CurveKind::kMoore};
  constexpr InputShape kShapes[] = {
      InputShape::kUniform,        InputShape::kNormal,
      InputShape::kLogNormal,      InputShape::kRandomOctants,
      InputShape::kDuplicateHeavy, InputShape::kSingleRankEmpty,
      InputShape::kAllOnOneRank,   InputShape::kIdenticalRanks,
      InputShape::kBalancedTree,
  };
  constexpr int kRanks[] = {2, 3, 4, 5, 7, 8, 12, 16};
  constexpr double kTolerances[] = {0.0, 0.0, 0.1, 0.3};
  spec.curve = kCurves[rng() % std::size(kCurves)];
  spec.dim = (rng() & 1U) != 0 ? 3 : 2;
  spec.ranks = kRanks[rng() % std::size(kRanks)];
  spec.shape = kShapes[rng() % std::size(kShapes)];
  spec.elements_per_rank = 100 + rng() % 900;
  spec.tolerance = kTolerances[rng() % std::size(kTolerances)];
  spec.max_splitters_per_round =
      (rng() & 3U) == 0 ? 1 + static_cast<int>(rng() % 4) : 0;
  spec.seed = rng();
  spec.perturb_seed = (rng() & 1U) != 0 ? rng() | 1U : 0;
  // The solve stage needs a complete union; only the balanced-tree shape
  // guarantees one, so only those cases draw iterations -- half of them
  // running the multigrid epoch instead of the matvec loop.
  if (spec.shape == InputShape::kBalancedTree && (rng() & 1U) != 0) {
    spec.matvec_iterations = 1 + static_cast<int>(rng() % 4);
    spec.app = (rng() & 1U) != 0 ? AppKind::kMultigrid : AppKind::kMatvec;
  }
  // Half the cases also exercise the incremental stage, sweeping change
  // fractions across the merge/full-fallback boundary.
  if ((rng() & 1U) != 0) {
    constexpr double kFractions[] = {0.005, 0.02, 0.1, 0.3, 0.6};
    constexpr DeltaShape kDeltaShapes[] = {DeltaShape::kMixed,
                                           DeltaShape::kInsertsOnly,
                                           DeltaShape::kDeletesOneRank};
    spec.change_fraction = kFractions[rng() % std::size(kFractions)];
    spec.delta_shape = kDeltaShapes[rng() % std::size(kDeltaShapes)];
  }
  return spec;
}

}  // namespace amr::fuzz
