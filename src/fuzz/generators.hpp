// Randomized and adversarial input generators for the distributed-layer
// fuzz harness.
//
// A CaseSpec fully determines one differential-fuzz case: the curve, the
// dimension, the rank count, the shape of the per-rank input distribution,
// sizes, algorithm knobs (tolerance, staged-splitter cap), the data seed,
// and the simmpi schedule-perturbation seed. Specs serialize to a single
// `key=value` line so failing cases can be recorded as corpus files and
// replayed bit-for-bit.
//
// Shapes cover the paper's generator mix (uniform / normal / log-normal
// point clouds, §4.2) plus the adversarial distributions that historically
// break splitter selection: duplicate-heavy inputs where p far exceeds the
// number of distinct buckets, empty ranks, everything on one rank, and
// identical inputs on every rank.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "octree/incremental.hpp"
#include "octree/octant.hpp"
#include "sfc/curve.hpp"
#include "util/rng.hpp"

namespace amr::fuzz {

enum class InputShape {
  kUniform,         ///< octree from uniform points (paper §4.2)
  kNormal,          ///< octree from normal points
  kLogNormal,       ///< octree from log-normal points
  kRandomOctants,   ///< independent random octants at random levels
  kDuplicateHeavy,  ///< all ranks draw from a tiny pool of distinct octants
  kSingleRankEmpty, ///< like kRandomOctants but rank 0 starts empty
  kAllOnOneRank,    ///< every element starts on the last rank
  kIdenticalRanks,  ///< the same element vector on every rank
  kBalancedTree,    ///< a 2:1-balanced complete tree scattered across ranks
};

[[nodiscard]] std::string to_string(InputShape shape);
[[nodiscard]] std::optional<InputShape> shape_from_string(const std::string& name);

/// How the incremental stage's per-rank delta stream is composed.
/// Serialized as `delta_shape=`.
enum class DeltaShape {
  kMixed,             ///< inserts and deletes interleaved on every rank
  kInsertsOnly,       ///< refinement burst: no deletes anywhere
  kDeletesOneRank,    ///< every delete lands on rank 0; others insert only
};

[[nodiscard]] std::string to_string(DeltaShape shape);
[[nodiscard]] std::optional<DeltaShape> delta_shape_from_string(const std::string& name);

/// Which app::Application the solve stage checks against its sequential
/// oracle. Serialized as `app=`.
enum class AppKind {
  kMatvec,     ///< overlapped matvec loop vs DistributedLaplacian
  kMultigrid,  ///< V-cycle epoch vs the lockstep sequential V-cycle
};

[[nodiscard]] std::string to_string(AppKind app);
[[nodiscard]] std::optional<AppKind> app_kind_from_string(const std::string& name);

struct CaseSpec {
  sfc::CurveKind curve = sfc::CurveKind::kHilbert;
  int dim = 3;
  int ranks = 4;
  InputShape shape = InputShape::kRandomOctants;
  std::size_t elements_per_rank = 1000;
  double tolerance = 0.0;           ///< dist_treesort flexible tolerance
  int max_splitters_per_round = 0;  ///< staged-splitter cap (0 = unstaged)
  std::uint64_t seed = 1;
  std::uint64_t perturb_seed = 0;   ///< 0 = no schedule perturbation
  /// > 0 runs the distributed-solve differential stage (the `app=` kernel)
  /// for this many iterations after the sort (needs a complete union;
  /// other shapes skip the stage). Serialized as `matvec=`.
  int matvec_iterations = 0;
  /// Which application kernel the solve stage runs.
  AppKind app = AppKind::kMatvec;
  /// > 0 runs the incremental-repartitioning differential stage: after the
  /// from-scratch sort, each rank applies a delta of about this fraction of
  /// its local size and the incremental path is checked bit-identical to a
  /// full re-sort of the edited stream. Serialized as `delta=`.
  double change_fraction = 0.0;
  DeltaShape delta_shape = DeltaShape::kMixed;
};

/// One-line `key=value` form, parseable by case_from_string.
[[nodiscard]] std::string to_string(const CaseSpec& spec);

/// Parse a corpus line; std::nullopt (never a crash) on malformed input.
/// `#` starts a comment; blank lines yield nullopt.
[[nodiscard]] std::optional<CaseSpec> case_from_string(const std::string& line);

/// Per-rank starting arrays for the case. inputs[r] is rank r's local
/// array before any distributed call. Point-cloud shapes adapt an octree
/// per rank, so sizes track (not equal) elements_per_rank.
[[nodiscard]] std::vector<std::vector<octree::Octant>> make_inputs(const CaseSpec& spec);

/// Deterministic per-rank delta for the incremental stage: roughly
/// change_fraction * local_size edits, composed per delta_shape. Inserts
/// are fresh random octants (plus, for duplicate-heavy inputs, re-inserts
/// of already-present octants via the shared seed pool); delete positions
/// index the rank's current sorted local array. Pure function of
/// (spec, rank, local_size) so the oracle can regenerate it.
[[nodiscard]] octree::DeltaStream make_delta(const CaseSpec& spec, int rank,
                                             std::size_t local_size);

/// Draw a random spec for the time-boxed fuzz mode: random curve x dim x
/// p x shape x knobs, sized to stay fast, with data and perturbation
/// seeds derived from `rng`.
[[nodiscard]] CaseSpec random_case(util::Rng& rng);

}  // namespace amr::fuzz
