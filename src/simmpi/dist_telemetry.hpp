// simmpi: cross-rank telemetry reduction (DESIGN.md §16).
//
// A LatencyHistogram is a fixed array of bucket counts plus four scalar
// moments, and its merge is bucket-wise addition -- exactly the shape of
// an allreduce. allreduce_histogram() folds every rank's local histogram
// into the identical global histogram on all ranks: the bucket array,
// count, and sum ride one kSum vector reduction; min and max ride kMin /
// kMax scalar reductions. Because the merge is associative and
// commutative, the reduced histogram (and so every quantile read from it)
// is bit-for-bit the histogram of all ranks' samples ingested as one
// stream -- telemetry_test pins this against a single-stream oracle.
//
// This is the fleet-wide-quantile primitive a service front end needs:
// each rank keeps recording lock-free, and one collective per reporting
// interval yields exact-within-bucket global p50/p99/p999.
#pragma once

#include "obs/telemetry.hpp"
#include "simmpi/comm.hpp"

namespace amr::simmpi {

/// Reduce each rank's `local` histogram to the global merge on all ranks.
/// Collective: every rank of `comm` must call with its own local state.
[[nodiscard]] obs::LatencyHistogram allreduce_histogram(
    Comm& comm, const obs::LatencyHistogram& local);

}  // namespace amr::simmpi
