// simmpi: a thread-backed message-passing substrate.
//
// The paper's algorithms are MPI programs; this repository has no cluster,
// so simmpi provides the MPI subset they need -- barrier, broadcast,
// (all)reduce, exclusive scan, (all)gather(v), alltoallv -- over
// std::thread "ranks" sharing a Context. Every rank runs real code on a
// real thread: the algorithms are exercised with genuine concurrency and
// their collective traffic is metered into a per-rank CostLedger, which the
// machine model converts to modeled time on the target interconnect.
//
// Collectives follow a publish/barrier/read/barrier discipline: each rank
// publishes a pointer to its contribution, a sense-reversing barrier
// establishes happens-before, peers read what they need, and a second
// barrier releases the slots. That is O(p) work per rank per collective --
// fine for the p <= 64 thread counts simmpi is used at (the cluster
// simulator covers large p).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <numeric>
#include <span>
#include <tuple>
#include <vector>

namespace amr::simmpi {

/// Per-rank communication accounting (fed to the machine model).
struct CostLedger {
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t collectives = 0;

  void record(std::uint64_t bytes, std::uint64_t messages) {
    bytes_sent += bytes;
    messages_sent += messages;
    ++collectives;
  }
};

/// Shared state of one communicator. Constructed once per run_ranks call.
class Context {
 public:
  explicit Context(int size);

  [[nodiscard]] int size() const { return size_; }

  /// Sense-reversing barrier over all ranks.
  void barrier();

  /// Publication slots (one per rank) used by the collectives.
  std::vector<const void*> slots;
  std::vector<std::size_t> counts;
  std::vector<CostLedger> ledgers;

  /// Point-to-point mailboxes: FIFO per (src, dst, tag).
  void post(int src, int dst, int tag, std::vector<std::byte> payload);
  [[nodiscard]] std::vector<std::byte> take(int src, int dst, int tag);

 private:
  int size_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  bool sense_ = false;

  std::mutex mail_mutex_;
  std::condition_variable mail_cv_;
  std::map<std::tuple<int, int, int>, std::deque<std::vector<std::byte>>> mailboxes_;
};

enum class ReduceOp { kSum, kMax, kMin };

/// One rank's view of the communicator.
class Comm {
 public:
  Comm(Context& context, int rank) : context_(&context), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return context_->size(); }
  [[nodiscard]] CostLedger& ledger() {
    return context_->ledgers[static_cast<std::size_t>(rank_)];
  }

  void barrier() { context_->barrier(); }

  /// Broadcast root's `data` (resized on non-roots).
  template <typename T>
  void bcast(std::vector<T>& data, int root) {
    publish(data.data(), data.size());
    if (rank_ != root) {
      const auto* src = static_cast<const T*>(context_->slots[static_cast<std::size_t>(root)]);
      data.assign(src, src + context_->counts[static_cast<std::size_t>(root)]);
    } else {
      ledger().record(data.size() * sizeof(T) * static_cast<std::size_t>(size() - 1),
                      static_cast<std::size_t>(size() - 1));
    }
    barrier();
  }

  /// Element-wise allreduce of equal-length vectors.
  template <typename T>
  void allreduce(std::span<const T> in, std::span<T> out, ReduceOp op) {
    publish(in.data(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i];
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      const auto* theirs = static_cast<const T*>(context_->slots[static_cast<std::size_t>(r)]);
      for (std::size_t i = 0; i < in.size(); ++i) {
        out[i] = combine(out[i], theirs[i], op);
      }
    }
    ledger().record(in.size() * sizeof(T), 1);
    barrier();
  }

  template <typename T>
  [[nodiscard]] T allreduce_one(T value, ReduceOp op) {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
    return out;
  }

  /// Exclusive prefix sum across ranks of a single value.
  template <typename T>
  [[nodiscard]] T exscan_sum(T value) {
    publish(&value, 1);
    T acc{};
    for (int r = 0; r < rank_; ++r) {
      acc += *static_cast<const T*>(context_->slots[static_cast<std::size_t>(r)]);
    }
    ledger().record(sizeof(T), 1);
    barrier();
    return acc;
  }

  /// Gather one value from every rank (available on all ranks).
  template <typename T>
  [[nodiscard]] std::vector<T> allgather_one(T value) {
    publish(&value, 1);
    std::vector<T> out(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      out[static_cast<std::size_t>(r)] =
          *static_cast<const T*>(context_->slots[static_cast<std::size_t>(r)]);
    }
    ledger().record(sizeof(T), 1);
    barrier();
    return out;
  }

  /// Variable-length allgather.
  template <typename T>
  [[nodiscard]] std::vector<T> allgatherv(std::span<const T> mine) {
    publish(mine.data(), mine.size());
    std::vector<T> out;
    for (int r = 0; r < size(); ++r) {
      const auto* src = static_cast<const T*>(context_->slots[static_cast<std::size_t>(r)]);
      out.insert(out.end(), src, src + context_->counts[static_cast<std::size_t>(r)]);
    }
    ledger().record(mine.size() * sizeof(T), 1);
    barrier();
    return out;
  }

  /// Personalized all-to-all: send[q] goes to rank q; returns recv where
  /// recv[q] came from rank q.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& send) {
    publish(&send, 1);
    std::vector<std::vector<T>> recv(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      const auto* theirs = static_cast<const std::vector<std::vector<T>>*>(
          context_->slots[static_cast<std::size_t>(r)]);
      recv[static_cast<std::size_t>(r)] = (*theirs)[static_cast<std::size_t>(rank_)];
    }
    std::uint64_t bytes = 0;
    std::uint64_t messages = 0;
    for (int q = 0; q < size(); ++q) {
      if (q == rank_ || send[static_cast<std::size_t>(q)].empty()) continue;
      bytes += send[static_cast<std::size_t>(q)].size() * sizeof(T);
      ++messages;
    }
    ledger().record(bytes, messages);
    barrier();
    return recv;
  }

  /// Asynchronous tagged point-to-point send (buffered: returns once the
  /// payload is queued; no rendezvous). T must be trivially copyable.
  template <typename T>
  void send(std::span<const T> data, int dst, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> payload(data.size() * sizeof(T));
    if (!data.empty()) std::memcpy(payload.data(), data.data(), payload.size());
    context_->post(rank_, dst, tag, std::move(payload));
    ledger().record(data.size() * sizeof(T), 1);
  }

  /// Blocking tagged receive: waits for the next message from `src` with
  /// `tag` (FIFO per channel, like MPI's non-overtaking rule).
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int src, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte> payload = context_->take(src, rank_, tag);
    std::vector<T> data(payload.size() / sizeof(T));
    if (!data.empty()) std::memcpy(data.data(), payload.data(), payload.size());
    return data;
  }

 private:
  void publish(const void* data, std::size_t count) {
    context_->slots[static_cast<std::size_t>(rank_)] = data;
    context_->counts[static_cast<std::size_t>(rank_)] = count;
    barrier();
  }

  template <typename T>
  static T combine(T a, T b, ReduceOp op) {
    switch (op) {
      case ReduceOp::kSum: return a + b;
      case ReduceOp::kMax: return a > b ? a : b;
      case ReduceOp::kMin: return a < b ? a : b;
    }
    return a;
  }

  Context* context_;
  int rank_;
};

}  // namespace amr::simmpi
