// simmpi: a thread-backed message-passing substrate.
//
// The paper's algorithms are MPI programs; this repository has no cluster,
// so simmpi provides the MPI subset they need -- barrier, broadcast,
// (all)reduce, exclusive scan, (all)gather(v), alltoallv -- over
// std::thread "ranks" sharing a Context. Every rank runs real code on a
// real thread: the algorithms are exercised with genuine concurrency and
// their collective traffic is metered into a per-rank CostLedger, which the
// machine model converts to modeled time on the target interconnect.
//
// Collectives follow a publish/barrier/read/barrier discipline: each rank
// publishes a pointer to its contribution, a sense-reversing barrier
// establishes happens-before, peers read what they need, and a second
// barrier releases the slots. That is O(p) work per rank per collective --
// fine for the p <= 64 thread counts simmpi is used at (the cluster
// simulator covers large p).
//
// Two correctness-tooling features live here (used by the amr::fuzz
// harness and the TSan CI job):
//
//  * Schedule perturbation: with a nonzero perturb_seed, every blocking
//    primitive (barrier entry, publish, mailbox post/take) first draws
//    from a per-rank deterministic RNG and either proceeds, yields, or
//    sleeps a few microseconds. The injected schedule is reproducible
//    from the seed, so a failing interleaving can be replayed.
//  * Stall watchdog: barriers and mailbox receives wait with a timeout;
//    on expiry they throw DeadlockError carrying a per-rank activity dump
//    (who is at a barrier, who is blocked receiving from whom, which
//    mailboxes hold undelivered messages) instead of hanging forever.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <span>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "obs/recorder.hpp"
#include "util/rng.hpp"

namespace amr::simmpi {

/// Per-rank communication accounting (fed to the machine model).
/// Collective traffic (publish/barrier primitives) and point-to-point
/// traffic (mailbox post/take) are metered separately: the machine model
/// prices them differently, and the conservation invariant -- every p2p
/// byte posted is eventually taken -- only holds for the p2p counters.
struct CostLedger {
  std::uint64_t bytes_sent = 0;      ///< collective payload bytes
  std::uint64_t messages_sent = 0;   ///< collective point-to-point messages
  std::uint64_t collectives = 0;     ///< number of collective operations

  std::uint64_t p2p_bytes_sent = 0;
  std::uint64_t p2p_messages_sent = 0;
  std::uint64_t p2p_bytes_received = 0;
  std::uint64_t p2p_messages_received = 0;

  void record(std::uint64_t bytes, std::uint64_t messages) {
    bytes_sent += bytes;
    messages_sent += messages;
    ++collectives;
  }

  void record_p2p_send(std::uint64_t bytes) {
    p2p_bytes_sent += bytes;
    ++p2p_messages_sent;
  }

  void record_p2p_recv(std::uint64_t bytes) {
    p2p_bytes_received += bytes;
    ++p2p_messages_received;
  }

  [[nodiscard]] std::uint64_t total_bytes_sent() const {
    return bytes_sent + p2p_bytes_sent;
  }

  [[nodiscard]] std::uint64_t total_messages_sent() const {
    return messages_sent + p2p_messages_sent;
  }
};

/// A blocking primitive stalled past the watchdog timeout. what() carries
/// the per-rank activity dump at the moment of expiry.
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Knobs of one communicator, settable per run_ranks call. The defaults
/// come from the environment so CI jobs can perturb every existing test
/// without code changes:
///   AMR_SIMMPI_PERTURB_SEED   nonzero enables schedule perturbation
///   AMR_SIMMPI_PERTURB_DELAY_US  max injected sleep (default 50)
///   AMR_SIMMPI_WATCHDOG_MS    stall watchdog (default 120000; <= 0 waits
///                             forever, the pre-watchdog behavior)
struct ContextOptions {
  std::uint64_t perturb_seed = 0;  ///< 0 = no injected yields/sleeps
  int perturb_max_delay_us = 50;
  std::chrono::milliseconds watchdog{120000};

  [[nodiscard]] static ContextOptions from_env();
};

/// Shared state of one communicator. Constructed once per run_ranks call.
class Context {
 public:
  explicit Context(int size, ContextOptions options = ContextOptions::from_env());

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] const ContextOptions& options() const { return options_; }

  /// Sense-reversing barrier over all ranks. Throws DeadlockError if the
  /// cohort fails to assemble within the watchdog timeout.
  void barrier(int rank);

  /// Publication slots (one per rank) used by the collectives.
  std::vector<const void*> slots;
  std::vector<std::size_t> counts;
  std::vector<CostLedger> ledgers;

  /// Point-to-point mailboxes: FIFO per (src, dst, tag).
  void post(int src, int dst, int tag, std::vector<std::byte> payload);
  [[nodiscard]] std::vector<std::byte> take(int src, int dst, int tag);

  /// Nonblocking variant of take: pops the channel's front message into
  /// `out` and returns true, or returns false immediately if the mailbox
  /// is empty. Used by Request::test.
  [[nodiscard]] bool try_take(int src, int dst, int tag, std::vector<std::byte>& out);

  /// Seeded random yield/sleep at a scheduling point of `rank`; no-op
  /// unless perturbation is enabled. Exposed so layered code (e.g. the
  /// fuzz harness) can add its own perturbation points.
  void maybe_perturb(int rank);

  /// Human-readable per-rank activity + pending-mailbox summary (what the
  /// watchdog prints). Safe to call from any thread.
  [[nodiscard]] std::string dump_state();

  /// Called by the runtime when a rank's body returns, so a stall dump can
  /// distinguish "never arrived" from "already gone".
  void mark_finished(int rank) { set_activity(rank, kFinished); }

 private:
  // Per-rank activity, encoded in one atomic word so the watchdog can read
  // a consistent snapshot without taking locks: low 3 bits = kind, then
  // 16 bits of peer rank and 16 bits of tag for receives.
  enum Activity : std::uint64_t {
    kBody = 0,
    kBarrier = 1,
    kRecvWait = 2,
    kFinished = 3,
  };
  void set_activity(int rank, Activity a, int peer = 0, int tag = 0) {
    activity_[static_cast<std::size_t>(rank)].store(
        static_cast<std::uint64_t>(a) |
            (static_cast<std::uint64_t>(static_cast<std::uint16_t>(peer)) << 3) |
            (static_cast<std::uint64_t>(static_cast<std::uint16_t>(tag)) << 19),
        std::memory_order_relaxed);
  }
  [[noreturn]] void throw_deadlock(const char* where, int rank);

  int size_;
  ContextOptions options_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  bool sense_ = false;

  std::mutex mail_mutex_;
  std::condition_variable mail_cv_;
  std::map<std::tuple<int, int, int>, std::deque<std::vector<std::byte>>> mailboxes_;

  std::unique_ptr<std::atomic<std::uint64_t>[]> activity_;
  std::vector<util::Rng> perturb_rngs_;  ///< each touched only by its own rank
};

enum class ReduceOp { kSum, kMax, kMin };

/// Handle to one or more pending nonblocking operations (isend, irecv,
/// ialltoallv). Move-only; completing an already-complete request is a
/// no-op, so default-constructed and moved-from handles are safe to wait
/// on.
///
/// Semantics (documented in DESIGN.md, "Nonblocking simmpi"):
///  * isend is buffered: the payload is copied and posted before the call
///    returns, so send requests are born complete.
///  * irecv matches at completion time (wait/test), not at post time.
///    Channels are FIFO, so multiple outstanding irecvs on the SAME
///    (src, tag) channel must be completed in the order they were posted;
///    requests on distinct channels may be completed in any order.
///  * wait honors the context watchdog and throws DeadlockError with the
///    cohort activity dump if the matching message never arrives.
class Request {
 public:
  Request() = default;
  Request(Request&&) noexcept = default;
  Request& operator=(Request&&) noexcept = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// True once every constituent operation has completed.
  [[nodiscard]] bool done() const;

  /// Attempt to complete without blocking; returns done().
  bool test();

  /// Block until every constituent operation has completed (watchdogged).
  void wait();

 private:
  friend class Comm;
  struct Op {
    Context* context = nullptr;
    int src = 0;
    int dst = 0;
    int tag = 0;
    bool complete = false;
    CostLedger* ledger = nullptr;  ///< receiver ledger; null for sends
    std::function<void(std::vector<std::byte>&&)> deliver;  ///< null for sends
  };
  void complete_op(Op& op, std::vector<std::byte>&& payload);

  std::vector<Op> ops_;
};

/// Complete every request. Requests on distinct channels are drained in
/// order with a blocking wait each -- progress does not require polling,
/// because isend is buffered and cannot stall.
void wait_all(std::span<Request> requests);

/// Poll every request once; true when all are done.
bool test_all(std::span<Request> requests);

/// One rank's view of the communicator.
class Comm {
 public:
  Comm(Context& context, int rank) : context_(&context), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return context_->size(); }
  [[nodiscard]] CostLedger& ledger() {
    return context_->ledgers[static_cast<std::size_t>(rank_)];
  }

  void barrier() { context_->barrier(rank_); }

  /// Broadcast root's `data` (resized on non-roots).
  template <typename T>
  void bcast(std::vector<T>& data, int root) {
    AMR_SPAN_NAMED(span, "simmpi.bcast");
    publish(data.data(), data.size());
    if (rank_ != root) {
      const auto* src = static_cast<const T*>(context_->slots[static_cast<std::size_t>(root)]);
      data.assign(src, src + context_->counts[static_cast<std::size_t>(root)]);
    } else {
      ledger().record(data.size() * sizeof(T) * static_cast<std::size_t>(size() - 1),
                      static_cast<std::size_t>(size() - 1));
    }
    span.set_value(static_cast<std::int64_t>(data.size() * sizeof(T)));
    barrier();
  }

  /// Element-wise allreduce of equal-length vectors. `out` may alias `in`
  /// (MPI_IN_PLACE style): the combination is built in a local buffer and
  /// only copied out after the closing barrier, when no peer can still be
  /// reading our published input.
  template <typename T>
  void allreduce(std::span<const T> in, std::span<T> out, ReduceOp op) {
    AMR_SPAN_NAMED(span, "simmpi.allreduce");
    span.set_value(static_cast<std::int64_t>(in.size() * sizeof(T)));
    publish(in.data(), in.size());
    std::vector<T> acc(in.begin(), in.end());
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      const auto* theirs = static_cast<const T*>(context_->slots[static_cast<std::size_t>(r)]);
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] = combine(acc[i], theirs[i], op);
      }
    }
    ledger().record(in.size() * sizeof(T), 1);
    barrier();
    std::copy(acc.begin(), acc.end(), out.begin());
  }

  template <typename T>
  [[nodiscard]] T allreduce_one(T value, ReduceOp op) {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
    return out;
  }

  /// Exclusive prefix sum across ranks of a single value.
  template <typename T>
  [[nodiscard]] T exscan_sum(T value) {
    AMR_SPAN("simmpi.exscan");
    publish(&value, 1);
    T acc{};
    for (int r = 0; r < rank_; ++r) {
      acc += *static_cast<const T*>(context_->slots[static_cast<std::size_t>(r)]);
    }
    ledger().record(sizeof(T), 1);
    barrier();
    return acc;
  }

  /// Gather one value from every rank (available on all ranks).
  template <typename T>
  [[nodiscard]] std::vector<T> allgather_one(T value) {
    AMR_SPAN("simmpi.allgather");
    publish(&value, 1);
    std::vector<T> out(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      out[static_cast<std::size_t>(r)] =
          *static_cast<const T*>(context_->slots[static_cast<std::size_t>(r)]);
    }
    ledger().record(sizeof(T), 1);
    barrier();
    return out;
  }

  /// Variable-length allgather.
  template <typename T>
  [[nodiscard]] std::vector<T> allgatherv(std::span<const T> mine) {
    AMR_SPAN_NAMED(span, "simmpi.allgatherv");
    span.set_value(static_cast<std::int64_t>(mine.size() * sizeof(T)));
    publish(mine.data(), mine.size());
    std::vector<T> out;
    for (int r = 0; r < size(); ++r) {
      const auto* src = static_cast<const T*>(context_->slots[static_cast<std::size_t>(r)]);
      out.insert(out.end(), src, src + context_->counts[static_cast<std::size_t>(r)]);
    }
    ledger().record(mine.size() * sizeof(T), 1);
    barrier();
    return out;
  }

  /// Personalized all-to-all: send[q] goes to rank q; returns recv where
  /// recv[q] came from rank q.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& send) {
    AMR_SPAN_NAMED(span, "simmpi.alltoallv");
    publish(&send, 1);
    std::vector<std::vector<T>> recv(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      const auto* theirs = static_cast<const std::vector<std::vector<T>>*>(
          context_->slots[static_cast<std::size_t>(r)]);
      recv[static_cast<std::size_t>(r)] = (*theirs)[static_cast<std::size_t>(rank_)];
    }
    std::uint64_t bytes = 0;
    std::uint64_t messages = 0;
    for (int q = 0; q < size(); ++q) {
      if (q == rank_ || send[static_cast<std::size_t>(q)].empty()) continue;
      bytes += send[static_cast<std::size_t>(q)].size() * sizeof(T);
      ++messages;
    }
    ledger().record(bytes, messages);
    span.set_value(static_cast<std::int64_t>(bytes));
    barrier();
    return recv;
  }

  /// Asynchronous tagged point-to-point send (buffered: returns once the
  /// payload is queued; no rendezvous). T must be trivially copyable.
  template <typename T>
  void send(std::span<const T> data, int dst, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    AMR_SPAN_NAMED(span, "simmpi.send");
    span.set_value(static_cast<std::int64_t>(data.size() * sizeof(T)));
    std::vector<std::byte> payload(data.size() * sizeof(T));
    if (!data.empty()) std::memcpy(payload.data(), data.data(), payload.size());
    context_->post(rank_, dst, tag, std::move(payload));
    ledger().record_p2p_send(data.size() * sizeof(T));
  }

  /// Blocking tagged receive: waits for the next message from `src` with
  /// `tag` (FIFO per channel, like MPI's non-overtaking rule). Throws
  /// DeadlockError if no message arrives within the watchdog timeout.
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int src, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    AMR_SPAN_NAMED(span, "simmpi.recv");
    const std::vector<std::byte> payload = context_->take(src, rank_, tag);
    span.set_value(static_cast<std::int64_t>(payload.size()));
    ledger().record_p2p_recv(payload.size());
    std::vector<T> data(payload.size() / sizeof(T));
    if (!data.empty()) std::memcpy(data.data(), payload.data(), payload.size());
    return data;
  }

  /// Nonblocking send. Like send(), the payload is copied and posted
  /// before returning (the transfer cannot stall), so the request is born
  /// complete; it exists so call sites read symmetrically with irecv and
  /// so mixed send/recv request lists can go through one wait_all.
  template <typename T>
  [[nodiscard]] Request isend(std::span<const T> data, int dst, int tag = 0) {
    send(data, dst, tag);
    Request r;
    Request::Op op;
    op.context = context_;
    op.src = rank_;
    op.dst = dst;
    op.tag = tag;
    op.complete = true;
    r.ops_.push_back(std::move(op));
    return r;
  }

  /// Nonblocking tagged receive into `out`. The message is matched and
  /// deserialized when the request completes (wait or a successful test);
  /// until then `out` must stay alive and must not be read.
  template <typename T>
  [[nodiscard]] Request irecv(std::vector<T>& out, int src, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    Request r;
    Request::Op op;
    op.context = context_;
    op.src = src;
    op.dst = rank_;
    op.tag = tag;
    op.ledger = &ledger();
    op.deliver = [&out](std::vector<std::byte>&& payload) {
      out.resize(payload.size() / sizeof(T));
      if (!out.empty()) std::memcpy(out.data(), payload.data(), payload.size());
    };
    r.ops_.push_back(std::move(op));
    return r;
  }

  /// Nonblocking tagged receive straight into caller-owned storage; the
  /// message length must equal the span's. Skips the intermediate vector,
  /// so a halo lands in its final slots in one copy -- the overlapped
  /// matvec receives each peer's payload directly into the ghost array.
  template <typename T>
  [[nodiscard]] Request irecv_into(std::span<T> out, int src, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    Request r;
    Request::Op op;
    op.context = context_;
    op.src = src;
    op.dst = rank_;
    op.tag = tag;
    op.ledger = &ledger();
    op.deliver = [out](std::vector<std::byte>&& payload) {
      assert(payload.size() == out.size() * sizeof(T));
      if (!out.empty()) std::memcpy(out.data(), payload.data(), payload.size());
    };
    r.ops_.push_back(std::move(op));
    return r;
  }

  /// Nonblocking personalized all-to-all over the mailboxes: send[q] goes
  /// to rank q, recv[q] (resized to size()) receives from rank q; the self
  /// lane is copied at post time. Unlike the collective alltoallv there is
  /// no barrier, so ranks can overlap the flight with local work -- the
  /// price is that empty lanes still cost a (zero-byte) message, because a
  /// receiver cannot know a peer had nothing to say without hearing so.
  template <typename T>
  [[nodiscard]] Request ialltoallv(const std::vector<std::vector<T>>& send_lanes,
                                   std::vector<std::vector<T>>& recv_lanes,
                                   int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv_lanes.assign(static_cast<std::size_t>(size()), {});
    recv_lanes[static_cast<std::size_t>(rank_)] =
        send_lanes[static_cast<std::size_t>(rank_)];
    Request r;
    for (int q = 0; q < size(); ++q) {
      if (q == rank_) continue;
      Request recv_part = irecv(recv_lanes[static_cast<std::size_t>(q)], q, tag);
      r.ops_.push_back(std::move(recv_part.ops_.front()));
    }
    for (int q = 0; q < size(); ++q) {
      if (q == rank_) continue;
      send(std::span<const T>(send_lanes[static_cast<std::size_t>(q)]), q, tag);
    }
    return r;
  }

 private:
  void publish(const void* data, std::size_t count) {
    context_->maybe_perturb(rank_);
    context_->slots[static_cast<std::size_t>(rank_)] = data;
    context_->counts[static_cast<std::size_t>(rank_)] = count;
    barrier();
  }

  template <typename T>
  static T combine(T a, T b, ReduceOp op) {
    switch (op) {
      case ReduceOp::kSum: return a + b;
      case ReduceOp::kMax: return a > b ? a : b;
      case ReduceOp::kMin: return a < b ? a : b;
    }
    return a;
  }

  Context* context_;
  int rank_;
};

}  // namespace amr::simmpi
