#include "simmpi/dist_treesort.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "octree/treesort.hpp"
#include "sfc/key.hpp"
#include "simmpi/phase_trace.hpp"
#include "util/timer.hpp"

namespace amr::simmpi {

int SplitterSet::dest_of_key(sfc::CurveKey key) const {
  const auto it = std::upper_bound(codes.begin(), codes.end(), key);
  return static_cast<int>(it - codes.begin()) - 1;
}

namespace {

using octree::Octant;

constexpr std::size_t kNoPos = std::numeric_limits<std::size_t>::max();

struct BoxState {
  Octant box;            ///< bucket box; at round `depth` its level is depth-1
  int state = 0;         ///< curve orientation inside box
  std::size_t glo = 0;   ///< global element range of box
  std::size_t ghi = 0;
  std::size_t llo = 0;   ///< local element range of box
  std::size_t lhi = 0;
  /// Digit field of the box's curve key (level byte excluded): the visit
  /// ranks of the descent path, maintained incrementally so splitter codes
  /// never need a curve_key() re-encode.
  sfc::CurveKey digits = 0;
};

struct TargetState {
  std::size_t target = 0;
  bool done = false;
  int depth_done = 0;  ///< last depth this target was refined at (staging)
  std::size_t best_pos = 0;
  std::size_t best_dev = kNoPos;
  Octant best_key;            ///< first octant of the right-hand side
  sfc::CurveKey best_code = 0;  ///< curve key of best_key, cached from the descent
  bool key_infinite = false;  ///< cut at N: nothing to the right
  BoxState cur;
};

/// First index in [lo, hi) for which `pred` is false (std::partition_point
/// over indices).
template <typename Pred>
std::size_t partition_point_index(std::size_t lo, std::size_t hi, Pred pred) {
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (pred(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

class SplitterSearch {
 public:
  /// `keys` are the curve keys of the (sorted) local elements, aligned with
  /// `local`; bucket boundaries are then found by key-digit probes.
  SplitterSearch(std::vector<Octant>& local, std::span<const sfc::CurveKey> keys,
                 Comm& comm, const sfc::Curve& curve)
      : local_(local), keys_(keys), comm_(comm), curve_(curve) {
    n_global_ = comm_.allreduce_one<std::uint64_t>(local_.size(), ReduceOp::kSum);
  }

  [[nodiscard]] std::uint64_t global_elements() const { return n_global_; }

  void init_targets() {
    const int p = comm_.size();
    targets_.clear();
    targets_.resize(static_cast<std::size_t>(p) - 1);
    for (int r = 1; r < p; ++r) {
      TargetState& t = targets_[static_cast<std::size_t>(r) - 1];
      t.target = static_cast<std::size_t>(
          static_cast<unsigned __int128>(n_global_) * static_cast<unsigned>(r) /
          static_cast<unsigned>(p));
      t.cur = BoxState{octree::root_octant(), 0, 0,
                       static_cast<std::size_t>(n_global_), 0, local_.size()};
      // The array ends are always available cuts.
      if (t.target <= n_global_ - t.target) {
        t.best_pos = 0;
        t.best_dev = t.target;
        t.best_key = octree::root_octant();
        t.best_code = 0;  // curve key of the root: zero digits, level 0
      } else {
        t.best_pos = static_cast<std::size_t>(n_global_);
        t.best_dev = static_cast<std::size_t>(n_global_) - t.target;
        t.key_infinite = true;
      }
    }
  }

  /// One breadth-first refinement round at `depth`. Returns false when no
  /// target could advance (all converged). With a staged cap k, each call
  /// handles at most k active targets (one reduction per stage); callers
  /// keep the same depth until the round reports staging complete via
  /// `stage_remaining()`.
  bool refine_round(int depth) {
    const int children = curve_.num_children();
    const int fields = children + 1;  // ancestor bucket + child ranks

    // Unique active boxes (targets agree across ranks on glo values).
    std::vector<std::size_t> box_targets;  // indices of active targets
    for (std::size_t i = 0; i < targets_.size(); ++i) {
      if (!targets_[i].done && targets_[i].depth_done < depth) {
        box_targets.push_back(i);
      }
    }
    if (box_targets.empty()) return false;
    if (max_per_round_ > 0 &&
        box_targets.size() > static_cast<std::size_t>(max_per_round_)) {
      box_targets.resize(static_cast<std::size_t>(max_per_round_));
      stage_remaining_ = true;
    } else {
      stage_remaining_ = false;
    }
    for (const std::size_t i : box_targets) {
      targets_[i].depth_done = depth;
    }
    std::sort(box_targets.begin(), box_targets.end(), [&](std::size_t a, std::size_t b) {
      return targets_[a].cur.glo < targets_[b].cur.glo;
    });
    std::vector<std::size_t> unique_boxes;  // representative target index
    for (const std::size_t i : box_targets) {
      if (unique_boxes.empty() ||
          targets_[unique_boxes.back()].cur.glo != targets_[i].cur.glo) {
        unique_boxes.push_back(i);
      }
    }

    // Local bucket counts per box: [ancestors, child rank 0, 1, ...].
    std::vector<std::uint64_t> local_counts(unique_boxes.size() *
                                            static_cast<std::size_t>(fields));
    std::vector<std::size_t> local_bounds(unique_boxes.size() *
                                          static_cast<std::size_t>(fields + 1));
    const int dim = curve_.dim();
    for (std::size_t b = 0; b < unique_boxes.size(); ++b) {
      const BoxState& box = targets_[unique_boxes[b]].cur;
      // Bucket boundaries via cached key digits: the digit at `depth`
      // already is the visit rank, so no orientation state is consulted.
      std::size_t cursor = partition_point_index(
          box.llo, box.lhi,
          [&](std::size_t i) { return sfc::key_level(keys_[i]) < depth; });
      std::size_t* bounds = &local_bounds[b * static_cast<std::size_t>(fields + 1)];
      bounds[0] = box.llo;
      bounds[1] = cursor;
      for (int j = 0; j < children; ++j) {
        cursor = partition_point_index(cursor, box.lhi, [&](std::size_t i) {
          return sfc::key_digit(keys_[i], depth, dim) <= j;
        });
        bounds[j + 2] = cursor;
      }
      std::uint64_t* counts = &local_counts[b * static_cast<std::size_t>(fields)];
      for (int f = 0; f < fields; ++f) {
        counts[f] = bounds[f + 1] - bounds[f];
      }
    }

    std::vector<std::uint64_t> global_counts(local_counts.size());
    comm_.allreduce<std::uint64_t>(local_counts, global_counts, ReduceOp::kSum);

    // Deterministic, identical-on-every-rank target updates.
    bool any_active = false;
    for (std::size_t b = 0; b < unique_boxes.size(); ++b) {
      const BoxState rep = targets_[unique_boxes[b]].cur;
      const std::uint64_t* counts = &global_counts[b * static_cast<std::size_t>(fields)];
      const std::size_t* bounds = &local_bounds[b * static_cast<std::size_t>(fields + 1)];

      // Global start position of each visited child.
      std::vector<std::size_t> child_start(static_cast<std::size_t>(children) + 1);
      child_start[0] = rep.glo + counts[0];
      for (int j = 0; j < children; ++j) {
        child_start[static_cast<std::size_t>(j) + 1] =
            child_start[static_cast<std::size_t>(j)] + counts[j + 1];
      }

      // Child j's curve key extends the box's digit string with visit rank
      // j at this depth (the key digit *is* the rank, orientation already
      // folded in) and a level byte of `depth`.
      const int digit_shift = sfc::kKeyLevelBits + dim * (octree::kMaxDepth - depth);
      for (const std::size_t ti : box_targets) {
        TargetState& t = targets_[ti];
        if (t.done || t.cur.glo != rep.glo) continue;

        for (int j = 0; j < children; ++j) {
          const std::size_t cut = child_start[static_cast<std::size_t>(j)];
          const std::size_t dev = cut >= t.target ? cut - t.target : t.target - cut;
          if (dev < t.best_dev) {
            t.best_dev = dev;
            t.best_pos = cut;
            t.best_key = rep.box.child(curve_.child_at(rep.state, j), curve_.dim());
            t.best_code = rep.digits |
                          (static_cast<sfc::CurveKey>(j) << digit_shift) |
                          static_cast<unsigned>(depth);
            t.key_infinite = false;
          }
        }
        if (t.best_dev <= tol_elements_) {
          t.done = true;
          continue;
        }
        // Descend into the child bucket containing the target.
        int descend = -1;
        for (int j = 0; j < children; ++j) {
          if (t.target >= child_start[static_cast<std::size_t>(j)] &&
              t.target < child_start[static_cast<std::size_t>(j) + 1]) {
            descend = j;
            break;
          }
        }
        if (descend < 0 ||
            child_start[static_cast<std::size_t>(descend) + 1] -
                    child_start[static_cast<std::size_t>(descend)] <=
                1) {
          t.done = true;
          continue;
        }
        const int child = curve_.child_at(rep.state, descend);
        t.cur.box = rep.box.child(child, curve_.dim());
        t.cur.state = curve_.next_state(rep.state, child);
        t.cur.digits =
            rep.digits | (static_cast<sfc::CurveKey>(descend) << digit_shift);
        t.cur.glo = child_start[static_cast<std::size_t>(descend)];
        t.cur.ghi = child_start[static_cast<std::size_t>(descend) + 1];
        t.cur.llo = bounds[descend + 1];
        t.cur.lhi = bounds[descend + 2];
        any_active = true;
      }
    }
    return any_active;
  }

  void set_tolerance(std::size_t tol_elements) { tol_elements_ = tol_elements; }
  void set_max_per_round(int k) { max_per_round_ = k; }
  [[nodiscard]] bool stage_remaining() const { return stage_remaining_; }

  /// Current splitters (monotonicity enforced, like the ordered selection
  /// of the real algorithm).
  [[nodiscard]] SplitterSet splitters() const {
    const int p = comm_.size();
    SplitterSet s;
    s.keys.resize(static_cast<std::size_t>(p));
    s.infinite.assign(static_cast<std::size_t>(p), 0);
    s.cuts.resize(static_cast<std::size_t>(p) + 1);
    s.keys[0] = octree::root_octant();
    s.cuts[0] = 0;
    s.cuts[static_cast<std::size_t>(p)] = static_cast<std::size_t>(n_global_);
    for (int r = 1; r < p; ++r) {
      const TargetState& t = targets_[static_cast<std::size_t>(r) - 1];
      // A cut at N ("infinite") is tracked by flag for the exchange, but
      // the exported key must still order correctly for consumers using
      // plain key comparison (owner_by_keys): use the curve-maximal cell.
      s.keys[static_cast<std::size_t>(r)] =
          t.key_infinite ? curve_.last_descendant(octree::root_octant()) : t.best_key;
      s.infinite[static_cast<std::size_t>(r)] = t.key_infinite ? 1 : 0;
      s.cuts[static_cast<std::size_t>(r)] = t.best_pos;
    }
    s.codes.resize(static_cast<std::size_t>(p));
    s.codes[0] = 0;  // root splitter: minus infinity
    for (int r = 1; r < p; ++r) {
      const TargetState& t = targets_[static_cast<std::size_t>(r) - 1];
      // The code was cached along the descent (best_code tracks best_key);
      // no curve_key re-encode. check_splitters recomputes codes from keys
      // independently, pinning the two in sync.
      s.codes[static_cast<std::size_t>(r)] =
          t.key_infinite ? sfc::key_supremum() : t.best_code;
    }
    // Ordered selection: cuts AND codes must both be non-decreasing.
    // Targets converge independently, so two of them can settle on the
    // same cut position with *different* keys (one stopped at a coarse
    // bucket boundary, the other refined to a descendant boundary at the
    // same position -- possible whenever a bucket is empty, a tolerance
    // ends targets at different depths, or p exceeds the number of
    // distinct buckets). Equal cuts with inverted codes leave `codes`
    // unsorted, and dest_of_key's binary search is then undefined for
    // probe keys in the inverted span -- partition_quality's boundary
    // probes land there even though no element does. Collapse any such
    // pair onto its predecessor; the position is identical, so ownership
    // ranges are unchanged.
    for (int r = 1; r < p; ++r) {
      const std::size_t i = static_cast<std::size_t>(r);
      if (s.cuts[i] < s.cuts[i - 1] || s.codes[i] < s.codes[i - 1]) {
        s.cuts[i] = s.cuts[i - 1];
        s.keys[i] = s.keys[i - 1];
        s.infinite[i] = s.infinite[i - 1];
        s.codes[i] = s.codes[i - 1];
      }
    }
    return s;
  }

 private:
  std::vector<Octant>& local_;
  std::span<const sfc::CurveKey> keys_;
  Comm& comm_;
  const sfc::Curve& curve_;
  std::uint64_t n_global_ = 0;
  std::size_t tol_elements_ = 0;
  int max_per_round_ = 0;
  bool stage_remaining_ = false;
  std::vector<TargetState> targets_;
};

/// Alg. 2 over the prospective splitters: per-rank work and boundary
/// octants, reduced to Wmax / Cmax / Tp. Identical result on every rank.
struct Quality {
  double w_max = 0.0;
  double c_max = 0.0;
  double time = 0.0;
};

/// Quality plus the data-migration profile of adopting the splitters from
/// the *current* element placement: per-rank work counts (prefix-summable
/// into fresh cuts), the global number of elements that would change rank,
/// and the bottleneck per-rank in+out volume the migration term prices.
struct MigrationQuality {
  Quality q;
  std::vector<std::uint64_t> work;  ///< per-rank element counts under the cuts
  std::uint64_t moved_total = 0;    ///< global elements changing rank
  std::uint64_t volume_max = 0;     ///< max per-rank in+out element volume
};

MigrationQuality partition_quality_mig(std::span<const Octant> local,
                                       std::span<const sfc::CurveKey> local_keys,
                                       Comm& comm, const sfc::Curve& curve,
                                       const SplitterSet& splitters,
                                       const machine::PerfModel& model) {
  const int p = comm.size();
  const std::size_t me = static_cast<std::size_t>(comm.rank());
  const std::size_t sp = static_cast<std::size_t>(p);
  // Four p-wide sections in one reduction: [work | boundary | stay | n],
  // where stay[r] counts rank r's residents that the splitters keep on r
  // and n[r] is rank r's current element count. in = work - stay and
  // out = n - stay then give the migration volumes.
  std::vector<std::uint64_t> counts(4 * sp, 0);
  const int faces = curve.dim() == 3 ? 6 : 4;

  for (std::size_t i = 0; i < local.size(); ++i) {
    const Octant& o = local[i];
    const int r = splitters.dest_of_key(local_keys[i]);
    counts[static_cast<std::size_t>(r)]++;
    if (static_cast<std::size_t>(r) == me) counts[2 * sp + me]++;
    bool boundary = false;
    for (int face = 0; face < faces && !boundary; ++face) {
      Octant region;
      if (!o.face_neighbor(face, region)) continue;
      // The neighbor region's first/last descendants in *curve order*
      // bracket its contiguous SFC interval; if either end falls outside
      // our prospective range the octant is (conservatively) a boundary
      // octant. Their keys come straight from the region's digit string
      // (zero / maximal padding), no descent needed.
      if (splitters.dest_of_key(sfc::key_min_descendant(curve, region)) != r ||
          splitters.dest_of_key(sfc::key_max_descendant(curve, region)) != r) {
        boundary = true;
      }
    }
    if (boundary) counts[sp + static_cast<std::size_t>(r)]++;
  }
  counts[3 * sp + me] = local.size();

  std::vector<std::uint64_t> global(counts.size());
  comm.allreduce<std::uint64_t>(counts, global, ReduceOp::kSum);

  MigrationQuality m;
  m.work.assign(global.begin(), global.begin() + static_cast<std::ptrdiff_t>(sp));
  for (std::size_t r = 0; r < sp; ++r) {
    const std::uint64_t work = global[r];
    const std::uint64_t stay = global[2 * sp + r];
    const std::uint64_t n = global[3 * sp + r];
    const std::uint64_t in = work - stay;
    const std::uint64_t out = n - stay;
    m.moved_total += in;
    m.volume_max = std::max(m.volume_max, in + out);
    m.q.w_max = std::max(m.q.w_max, static_cast<double>(work));
    m.q.c_max = std::max(m.q.c_max, static_cast<double>(global[sp + r]));
  }
  m.q.time = model.application_time(m.q.w_max, m.q.c_max);
  return m;
}

Quality partition_quality(std::span<const Octant> local,
                          std::span<const sfc::CurveKey> local_keys, Comm& comm,
                          const sfc::Curve& curve, const SplitterSet& splitters,
                          const machine::PerfModel& model) {
  return partition_quality_mig(local, local_keys, comm, curve, splitters, model).q;
}

/// The Alg. 3 refine loop shared by dist_optipart and its incremental
/// variant: refine to >= p buckets, then keep refining while the Eq. 3
/// model keeps improving. Factoring it guarantees the incremental path's
/// candidate search is *identical* to the from-scratch one (the
/// migration-term-zero equivalence the property tests pin).
struct RefineResult {
  SplitterSet best;
  Quality best_quality;
  int best_depth = 0;
  int levels_used = 0;
};

RefineResult optipart_refine(SplitterSearch& search, std::span<const Octant> local,
                             std::span<const sfc::CurveKey> local_keys, Comm& comm,
                             const sfc::Curve& curve, const machine::PerfModel& model,
                             int max_depth, DistOptiPartTrace* trace) {
  // Initial refinement: enough rounds to expose >= p buckets (Alg. 3 l. 2).
  const int children = curve.num_children();
  int depth = 0;
  std::size_t buckets = 1;
  while (buckets < static_cast<std::size_t>(comm.size()) && depth < max_depth) {
    ++depth;
    buckets *= static_cast<std::size_t>(children);
    search.refine_round(depth);
  }

  RefineResult result;
  result.best = search.splitters();
  result.best_quality =
      partition_quality(local, local_keys, comm, curve, result.best, model);
  result.best_depth = depth;
  if (trace != nullptr) {
    trace->rounds.push_back({depth, result.best_quality.w_max,
                             result.best_quality.c_max, result.best_quality.time});
  }

  // `while default >= current`: refine while the model keeps improving.
  while (depth < max_depth) {
    ++depth;
    AMR_INSTANT("optipart.round");
    if (!search.refine_round(depth)) break;
    const SplitterSet candidate = search.splitters();
    const Quality q =
        partition_quality(local, local_keys, comm, curve, candidate, model);
    if (trace != nullptr) {
      trace->rounds.push_back({depth, q.w_max, q.c_max, q.time});
    }
    if (q.time <= result.best_quality.time) {
      result.best = candidate;
      result.best_quality = q;
      result.best_depth = depth;
    } else {
      break;
    }
  }
  result.levels_used = depth;
  return result;
}

/// Tag of the element exchange's point-to-point messages. Distinct from
/// the halo exchange (tag 0) and the mesh-construction rounds so phases of
/// a pipeline that interleave across ranks never match each other's
/// messages.
constexpr int kTagElementExchange = 100;

/// The element exchange plus final local sort, over the nonblocking API.
/// `local_keys` are the pre-exchange curve keys aligned with `local`.
///
/// `local` is key-sorted and the splitter codes are monotone, so each
/// destination owns one contiguous slice of it: every receive is posted
/// up front, each slice is isent directly out of `local` (no per-
/// destination staging copies), and incoming pieces are concatenated in
/// ascending source order as they complete -- the same assembly order the
/// old Alltoallv produced, with no barrier anywhere in the exchange.
void exchange_and_sort(std::vector<Octant>& local,
                       std::span<const sfc::CurveKey> local_keys, Comm& comm,
                       const sfc::Curve& curve, const SplitterSet& splitters,
                       DistSortReport& report) {
  util::Timer timer;
  PhaseScope phase(comm, "treesort.exchange", "treesort.exchange/bytes",
                   "treesort.exchange/msgs");
  const int p = comm.size();
  const int me = comm.rank();

  std::vector<std::vector<Octant>> incoming(static_cast<std::size_t>(p));
  std::vector<Request> recvs(static_cast<std::size_t>(p));
  for (int q = 0; q < p; ++q) {
    if (q == me) continue;
    recvs[static_cast<std::size_t>(q)] =
        comm.irecv<Octant>(incoming[static_cast<std::size_t>(q)], q,
                           kTagElementExchange);
  }

  std::size_t keep_lo = 0;
  std::size_t keep_hi = 0;
  std::size_t begin = 0;
  for (int q = 0; q < p; ++q) {
    const std::size_t end =
        partition_point_index(begin, local.size(), [&](std::size_t i) {
          return splitters.dest_of_key(local_keys[i]) <= q;
        });
    if (q == me) {
      keep_lo = begin;
      keep_hi = end;
    } else {
      Request sent = comm.isend<Octant>(
          std::span<const Octant>(local.data() + begin, end - begin), q,
          kTagElementExchange);
      (void)sent;  // buffered: complete at post
    }
    begin = end;
  }

  std::vector<Octant> merged;
  for (int q = 0; q < p; ++q) {
    if (q == me) {
      merged.insert(merged.end(),
                    local.begin() + static_cast<std::ptrdiff_t>(keep_lo),
                    local.begin() + static_cast<std::ptrdiff_t>(keep_hi));
      continue;
    }
    auto& piece = incoming[static_cast<std::size_t>(q)];
    recvs[static_cast<std::size_t>(q)].wait();
    merged.insert(merged.end(), piece.begin(), piece.end());
  }
  local = std::move(merged);
  phase.close();  // close the exchange phase before the local re-sort
  report.exchange_seconds = timer.seconds();

  timer.reset();
  {
    AMR_SPAN("treesort.local_sort");
    octree::tree_sort(local, curve);
  }
  report.local_sort_seconds += timer.seconds();
  report.local_elements = local.size();
  report.splitters = splitters.keys;
  report.splitter_set = splitters;
}

/// Incremental counterpart of exchange_and_sort: the key cache rides along,
/// and the final assembly is a tournament merge of the kept slice with the
/// incoming sorted pieces instead of a full local re-sort. Keys are
/// re-encoded only for received elements (O(moved), not O(N/p)). Curve keys
/// are injective, so the merged octant sequence is bit-identical to the
/// from-scratch sort of the same multiset.
void exchange_and_merge(std::vector<Octant>& local, std::vector<sfc::CurveKey>& keys,
                        Comm& comm, const sfc::Curve& curve,
                        const SplitterSet& splitters, DistSortReport& report) {
  util::Timer timer;
  const int p = comm.size();
  const int me = comm.rank();

  std::vector<std::vector<Octant>> incoming(static_cast<std::size_t>(p));
  std::size_t keep_lo = 0;
  std::size_t keep_hi = 0;
  {
    PhaseScope phase(comm, "treesort.exchange", "treesort.exchange/bytes",
                     "treesort.exchange/msgs");
    std::vector<Request> recvs(static_cast<std::size_t>(p));
    for (int q = 0; q < p; ++q) {
      if (q == me) continue;
      recvs[static_cast<std::size_t>(q)] =
          comm.irecv<Octant>(incoming[static_cast<std::size_t>(q)], q,
                             kTagElementExchange);
    }
    std::size_t begin = 0;
    for (int q = 0; q < p; ++q) {
      const std::size_t end =
          partition_point_index(begin, local.size(), [&](std::size_t i) {
            return splitters.dest_of_key(keys[i]) <= q;
          });
      if (q == me) {
        keep_lo = begin;
        keep_hi = end;
      } else {
        Request sent = comm.isend<Octant>(
            std::span<const Octant>(local.data() + begin, end - begin), q,
            kTagElementExchange);
        (void)sent;  // buffered: complete at post
      }
      begin = end;
    }
    for (int q = 0; q < p; ++q) {
      if (q != me) recvs[static_cast<std::size_t>(q)].wait();
    }
  }
  report.exchange_seconds = timer.seconds();

  timer.reset();
  {
    AMR_SPAN("sort.merge");
    struct Run {
      std::vector<Octant> e;
      std::vector<sfc::CurveKey> k;
    };
    std::vector<Run> runs;
    runs.reserve(static_cast<std::size_t>(p));
    for (int q = 0; q < p; ++q) {
      if (q == me) {
        if (keep_hi == keep_lo) continue;
        Run r;
        r.e.assign(local.begin() + static_cast<std::ptrdiff_t>(keep_lo),
                   local.begin() + static_cast<std::ptrdiff_t>(keep_hi));
        r.k.assign(keys.begin() + static_cast<std::ptrdiff_t>(keep_lo),
                   keys.begin() + static_cast<std::ptrdiff_t>(keep_hi));
        runs.push_back(std::move(r));
      } else if (!incoming[static_cast<std::size_t>(q)].empty()) {
        Run r;
        r.e = std::move(incoming[static_cast<std::size_t>(q)]);
        r.k = sfc::keys_of(curve, r.e);
        runs.push_back(std::move(r));
      }
    }
    // Pieces from different sources can interleave in key space (the delta
    // strays), so merge pairwise, tournament style -- O(total log p).
    while (runs.size() > 1) {
      std::vector<Run> next;
      next.reserve((runs.size() + 1) / 2);
      for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
        Run merged;
        octree::merge_keyed_runs(runs[i].e, runs[i].k, runs[i + 1].e,
                                 runs[i + 1].k, merged.e, merged.k);
        next.push_back(std::move(merged));
      }
      if (runs.size() % 2 != 0) next.push_back(std::move(runs.back()));
      runs = std::move(next);
    }
    if (runs.empty()) {
      local.clear();
      keys.clear();
    } else {
      local = std::move(runs[0].e);
      keys = std::move(runs[0].k);
    }
  }
  report.local_sort_seconds += timer.seconds();
  report.local_elements = local.size();
  report.splitters = splitters.keys;
  report.splitter_set = splitters;
}

/// Shared head of the incremental entry points: agree globally on the
/// merge-vs-fallback route (one allreduce -- the decision must be identical
/// on every rank even though local change fractions differ), then splice
/// the delta into the local slice.
struct SpliceResult {
  bool merge_path = false;
  std::uint64_t global_changes = 0;
  double seconds = 0.0;
};

SpliceResult splice_local_delta(std::vector<Octant>& local,
                                std::vector<sfc::CurveKey>& keys, Comm& comm,
                                const sfc::Curve& curve,
                                const octree::DeltaStream& delta,
                                const DistIncrementalOptions& options) {
  const std::vector<std::uint64_t> stats = {
      static_cast<std::uint64_t>(delta.inserts.size() +
                                 delta.delete_positions.size()),
      static_cast<std::uint64_t>(local.size())};
  std::vector<std::uint64_t> gstats(2);
  comm.allreduce<std::uint64_t>(stats, gstats, ReduceOp::kSum);

  SpliceResult result;
  result.global_changes = gstats[0];
  result.merge_path =
      gstats[1] > 0 && static_cast<double>(gstats[0]) <=
                           options.fallback_change_fraction *
                               static_cast<double>(gstats[1]);
  // Pin the local route to the *global* decision: a rank whose own slice
  // churned heavily still merges when the fleet merges (and vice versa),
  // keeping every rank on the same side of the span taxonomy.
  octree::IncrementalSortOptions iopt;
  iopt.fallback_change_fraction =
      result.merge_path ? std::numeric_limits<double>::infinity() : 0.0;
  // Time only the local splice: merge_seconds is compared against the
  // from-scratch route's local_sort_seconds, which likewise excludes
  // communication, so the route-decision allreduce above must not be
  // charged to the merge (at small slices the barrier would dominate and
  // drown the very effect the timer exists to show).
  util::Timer timer;
  octree::tree_sort_incremental(local, keys, curve, delta, iopt);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace

DistSortReport dist_treesort(std::vector<Octant>& local, Comm& comm,
                             const sfc::Curve& curve, const DistSortOptions& options) {
  DistSortReport report;
  util::Timer timer;
  std::vector<sfc::CurveKey> local_keys;
  {
    AMR_SPAN("treesort.local_sort");
    local_keys = octree::tree_sort_with_keys(local, curve);
  }
  report.local_sort_seconds = timer.seconds();

  timer.reset();
  SplitterSet splitters;
  {
    PhaseScope splitter_phase(comm, "treesort.splitter", "treesort.splitter/bytes",
                              "treesort.splitter/msgs");
    SplitterSearch search(local, local_keys, comm, curve);
    report.global_elements = search.global_elements();
    const double grain = static_cast<double>(search.global_elements()) /
                         static_cast<double>(comm.size());
    search.set_tolerance(static_cast<std::size_t>(options.tolerance * grain));
    search.set_max_per_round(options.max_splitters_per_round);
    search.init_targets();
    int depth = 1;
    for (; depth <= options.max_depth; ++depth) {
      bool any = search.refine_round(depth);
      while (search.stage_remaining()) {
        any = search.refine_round(depth) || any;
      }
      if (!any) break;
    }
    report.levels_used = depth - 1;
    splitters = search.splitters();
  }
  report.splitter_seconds = timer.seconds();

  exchange_and_sort(local, local_keys, comm, curve, splitters, report);
  return report;
}

DistSortReport dist_optipart(std::vector<Octant>& local, Comm& comm,
                             const sfc::Curve& curve, const machine::PerfModel& model,
                             int max_depth, DistOptiPartTrace* trace) {
  DistSortReport report;
  util::Timer timer;
  std::vector<sfc::CurveKey> local_keys;
  {
    AMR_SPAN("treesort.local_sort");
    local_keys = octree::tree_sort_with_keys(local, curve);
  }
  report.local_sort_seconds = timer.seconds();

  timer.reset();
  SplitterSet best;
  {
    PhaseScope sweep_phase(comm, "optipart.sweep", "optipart.sweep/bytes",
                           "optipart.sweep/msgs");
    SplitterSearch search(local, local_keys, comm, curve);
    report.global_elements = search.global_elements();
    search.set_tolerance(0);
    search.init_targets();

    RefineResult refined = optipart_refine(search, local, local_keys, comm, curve,
                                           model, max_depth, trace);
    best = std::move(refined.best);
    report.levels_used = refined.levels_used;
    if (trace != nullptr) {
      trace->chosen_depth = refined.best_depth;
      trace->chosen_time = refined.best_quality.time;
    }
  }
  report.splitter_seconds = timer.seconds();

  exchange_and_sort(local, local_keys, comm, curve, best, report);
  return report;
}

DistIncrementalReport dist_treesort_incremental(std::vector<Octant>& local,
                                                std::vector<sfc::CurveKey>& keys,
                                                Comm& comm, const sfc::Curve& curve,
                                                const octree::DeltaStream& delta,
                                                const DistIncrementalOptions& options) {
  DistIncrementalReport inc;
  const SpliceResult spliced =
      splice_local_delta(local, keys, comm, curve, delta, options);
  inc.merge_path = spliced.merge_path;
  inc.global_changes = spliced.global_changes;
  inc.merge_seconds = spliced.seconds;
  inc.sort.local_sort_seconds = spliced.seconds;

  util::Timer timer;
  SplitterSet splitters;
  {
    PhaseScope splitter_phase(comm, "treesort.splitter", "treesort.splitter/bytes",
                              "treesort.splitter/msgs");
    SplitterSearch search(local, keys, comm, curve);
    inc.sort.global_elements = search.global_elements();
    const double grain = static_cast<double>(search.global_elements()) /
                         static_cast<double>(comm.size());
    search.set_tolerance(
        static_cast<std::size_t>(options.sort.tolerance * grain));
    search.set_max_per_round(options.sort.max_splitters_per_round);
    search.init_targets();
    int depth = 1;
    for (; depth <= options.sort.max_depth; ++depth) {
      bool any = search.refine_round(depth);
      while (search.stage_remaining()) {
        any = search.refine_round(depth) || any;
      }
      if (!any) break;
    }
    inc.sort.levels_used = depth - 1;
    splitters = search.splitters();
  }
  inc.sort.splitter_seconds = timer.seconds();

  exchange_and_merge(local, keys, comm, curve, splitters, inc.sort);
  return inc;
}

DistIncrementalReport dist_optipart_incremental(
    std::vector<Octant>& local, std::vector<sfc::CurveKey>& keys, Comm& comm,
    const sfc::Curve& curve, const machine::PerfModel& model,
    const SplitterSet& previous, const octree::DeltaStream& delta,
    const DistIncrementalOptions& options, DistOptiPartTrace* trace,
    RepartitionDecision* decision) {
  DistIncrementalReport inc;
  const SpliceResult spliced =
      splice_local_delta(local, keys, comm, curve, delta, options);
  inc.merge_path = spliced.merge_path;
  inc.global_changes = spliced.global_changes;
  inc.merge_seconds = spliced.seconds;
  inc.sort.local_sort_seconds = spliced.seconds;

  util::Timer timer;
  SplitterSet chosen;
  RepartitionDecision dec;
  {
    PhaseScope sweep_phase(comm, "optipart.sweep", "optipart.sweep/bytes",
                           "optipart.sweep/msgs");
    SplitterSearch search(local, keys, comm, curve);
    inc.sort.global_elements = search.global_elements();
    search.set_tolerance(0);
    search.init_targets();

    RefineResult refined = optipart_refine(search, local, keys, comm, curve, model,
                                           options.sort.max_depth, trace);
    inc.sort.levels_used = refined.levels_used;
    if (trace != nullptr) {
      trace->chosen_depth = refined.best_depth;
      trace->chosen_time = refined.best_quality.time;
    }

    // Migration-aware adoption: price both the previous cuts and the
    // refined candidate on the post-delta data, amortizing each step model
    // over the repartition horizon and charging the candidate (and the
    // previous cuts, which still have to re-home the delta strays) for the
    // bytes it moves. All inputs are allreduced, so ranks agree.
    AMR_SPAN("part.migrate");
    const MigrationQuality prev_q =
        partition_quality_mig(local, keys, comm, curve, previous, model);
    const MigrationQuality cand_q =
        partition_quality_mig(local, keys, comm, curve, refined.best, model);
    dec.previous_step_seconds = prev_q.q.time;
    dec.candidate_step_seconds = cand_q.q.time;
    dec.previous_objective = model.repartition_objective(
        prev_q.q.time, static_cast<double>(prev_q.volume_max));
    dec.candidate_objective = model.repartition_objective(
        cand_q.q.time, static_cast<double>(cand_q.volume_max));
    // Factor 0 means data movement is free: always adopt the model-best
    // candidate, which is exactly the seed OptiPart rule.
    dec.kept_previous = model.app().migration_cost_factor > 0.0 &&
                        dec.previous_objective < dec.candidate_objective;
    const MigrationQuality& chosen_q = dec.kept_previous ? prev_q : cand_q;
    dec.moved_elements = chosen_q.moved_total;
    dec.predicted_migration_seconds =
        model.migration_time(static_cast<double>(chosen_q.volume_max));
    chosen = dec.kept_previous ? previous : refined.best;
    if (dec.kept_previous) {
      // The previous splitters' global cut positions are stale after the
      // delta; refresh them from the per-rank work counts just evaluated
      // (the codes, which actually route elements, are unchanged).
      chosen.cuts.assign(static_cast<std::size_t>(comm.size()) + 1, 0);
      for (std::size_t r = 0; r < chosen_q.work.size(); ++r) {
        chosen.cuts[r + 1] = chosen.cuts[r] + chosen_q.work[r];
      }
    }
  }
  inc.sort.splitter_seconds = timer.seconds();
  if (decision != nullptr) *decision = dec;

  exchange_and_merge(local, keys, comm, curve, chosen, inc.sort);
  return inc;
}

}  // namespace amr::simmpi
