#include "simmpi/dist_treesort.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "octree/treesort.hpp"
#include "sfc/key.hpp"
#include "simmpi/phase_trace.hpp"
#include "util/timer.hpp"

namespace amr::simmpi {

int SplitterSet::dest_of_key(sfc::CurveKey key) const {
  const auto it = std::upper_bound(codes.begin(), codes.end(), key);
  return static_cast<int>(it - codes.begin()) - 1;
}

namespace {

using octree::Octant;

constexpr std::size_t kNoPos = std::numeric_limits<std::size_t>::max();

struct BoxState {
  Octant box;            ///< bucket box; at round `depth` its level is depth-1
  int state = 0;         ///< curve orientation inside box
  std::size_t glo = 0;   ///< global element range of box
  std::size_t ghi = 0;
  std::size_t llo = 0;   ///< local element range of box
  std::size_t lhi = 0;
};

struct TargetState {
  std::size_t target = 0;
  bool done = false;
  int depth_done = 0;  ///< last depth this target was refined at (staging)
  std::size_t best_pos = 0;
  std::size_t best_dev = kNoPos;
  Octant best_key;            ///< first octant of the right-hand side
  bool key_infinite = false;  ///< cut at N: nothing to the right
  BoxState cur;
};

/// First index in [lo, hi) for which `pred` is false (std::partition_point
/// over indices).
template <typename Pred>
std::size_t partition_point_index(std::size_t lo, std::size_t hi, Pred pred) {
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (pred(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

class SplitterSearch {
 public:
  /// `keys` are the curve keys of the (sorted) local elements, aligned with
  /// `local`; bucket boundaries are then found by key-digit probes.
  SplitterSearch(std::vector<Octant>& local, std::span<const sfc::CurveKey> keys,
                 Comm& comm, const sfc::Curve& curve)
      : local_(local), keys_(keys), comm_(comm), curve_(curve) {
    n_global_ = comm_.allreduce_one<std::uint64_t>(local_.size(), ReduceOp::kSum);
  }

  [[nodiscard]] std::uint64_t global_elements() const { return n_global_; }

  void init_targets() {
    const int p = comm_.size();
    targets_.clear();
    targets_.resize(static_cast<std::size_t>(p) - 1);
    for (int r = 1; r < p; ++r) {
      TargetState& t = targets_[static_cast<std::size_t>(r) - 1];
      t.target = static_cast<std::size_t>(
          static_cast<unsigned __int128>(n_global_) * static_cast<unsigned>(r) /
          static_cast<unsigned>(p));
      t.cur = BoxState{octree::root_octant(), 0, 0,
                       static_cast<std::size_t>(n_global_), 0, local_.size()};
      // The array ends are always available cuts.
      if (t.target <= n_global_ - t.target) {
        t.best_pos = 0;
        t.best_dev = t.target;
        t.best_key = octree::root_octant();
      } else {
        t.best_pos = static_cast<std::size_t>(n_global_);
        t.best_dev = static_cast<std::size_t>(n_global_) - t.target;
        t.key_infinite = true;
      }
    }
  }

  /// One breadth-first refinement round at `depth`. Returns false when no
  /// target could advance (all converged). With a staged cap k, each call
  /// handles at most k active targets (one reduction per stage); callers
  /// keep the same depth until the round reports staging complete via
  /// `stage_remaining()`.
  bool refine_round(int depth) {
    const int children = curve_.num_children();
    const int fields = children + 1;  // ancestor bucket + child ranks

    // Unique active boxes (targets agree across ranks on glo values).
    std::vector<std::size_t> box_targets;  // indices of active targets
    for (std::size_t i = 0; i < targets_.size(); ++i) {
      if (!targets_[i].done && targets_[i].depth_done < depth) {
        box_targets.push_back(i);
      }
    }
    if (box_targets.empty()) return false;
    if (max_per_round_ > 0 &&
        box_targets.size() > static_cast<std::size_t>(max_per_round_)) {
      box_targets.resize(static_cast<std::size_t>(max_per_round_));
      stage_remaining_ = true;
    } else {
      stage_remaining_ = false;
    }
    for (const std::size_t i : box_targets) {
      targets_[i].depth_done = depth;
    }
    std::sort(box_targets.begin(), box_targets.end(), [&](std::size_t a, std::size_t b) {
      return targets_[a].cur.glo < targets_[b].cur.glo;
    });
    std::vector<std::size_t> unique_boxes;  // representative target index
    for (const std::size_t i : box_targets) {
      if (unique_boxes.empty() ||
          targets_[unique_boxes.back()].cur.glo != targets_[i].cur.glo) {
        unique_boxes.push_back(i);
      }
    }

    // Local bucket counts per box: [ancestors, child rank 0, 1, ...].
    std::vector<std::uint64_t> local_counts(unique_boxes.size() *
                                            static_cast<std::size_t>(fields));
    std::vector<std::size_t> local_bounds(unique_boxes.size() *
                                          static_cast<std::size_t>(fields + 1));
    const int dim = curve_.dim();
    for (std::size_t b = 0; b < unique_boxes.size(); ++b) {
      const BoxState& box = targets_[unique_boxes[b]].cur;
      // Bucket boundaries via cached key digits: the digit at `depth`
      // already is the visit rank, so no orientation state is consulted.
      std::size_t cursor = partition_point_index(
          box.llo, box.lhi,
          [&](std::size_t i) { return sfc::key_level(keys_[i]) < depth; });
      std::size_t* bounds = &local_bounds[b * static_cast<std::size_t>(fields + 1)];
      bounds[0] = box.llo;
      bounds[1] = cursor;
      for (int j = 0; j < children; ++j) {
        cursor = partition_point_index(cursor, box.lhi, [&](std::size_t i) {
          return sfc::key_digit(keys_[i], depth, dim) <= j;
        });
        bounds[j + 2] = cursor;
      }
      std::uint64_t* counts = &local_counts[b * static_cast<std::size_t>(fields)];
      for (int f = 0; f < fields; ++f) {
        counts[f] = bounds[f + 1] - bounds[f];
      }
    }

    std::vector<std::uint64_t> global_counts(local_counts.size());
    comm_.allreduce<std::uint64_t>(local_counts, global_counts, ReduceOp::kSum);

    // Deterministic, identical-on-every-rank target updates.
    bool any_active = false;
    for (std::size_t b = 0; b < unique_boxes.size(); ++b) {
      const BoxState rep = targets_[unique_boxes[b]].cur;
      const std::uint64_t* counts = &global_counts[b * static_cast<std::size_t>(fields)];
      const std::size_t* bounds = &local_bounds[b * static_cast<std::size_t>(fields + 1)];

      // Global start position of each visited child.
      std::vector<std::size_t> child_start(static_cast<std::size_t>(children) + 1);
      child_start[0] = rep.glo + counts[0];
      for (int j = 0; j < children; ++j) {
        child_start[static_cast<std::size_t>(j) + 1] =
            child_start[static_cast<std::size_t>(j)] + counts[j + 1];
      }

      for (const std::size_t ti : box_targets) {
        TargetState& t = targets_[ti];
        if (t.done || t.cur.glo != rep.glo) continue;

        for (int j = 0; j < children; ++j) {
          const std::size_t cut = child_start[static_cast<std::size_t>(j)];
          const std::size_t dev = cut >= t.target ? cut - t.target : t.target - cut;
          if (dev < t.best_dev) {
            t.best_dev = dev;
            t.best_pos = cut;
            t.best_key = rep.box.child(curve_.child_at(rep.state, j), curve_.dim());
            t.key_infinite = false;
          }
        }
        if (t.best_dev <= tol_elements_) {
          t.done = true;
          continue;
        }
        // Descend into the child bucket containing the target.
        int descend = -1;
        for (int j = 0; j < children; ++j) {
          if (t.target >= child_start[static_cast<std::size_t>(j)] &&
              t.target < child_start[static_cast<std::size_t>(j) + 1]) {
            descend = j;
            break;
          }
        }
        if (descend < 0 ||
            child_start[static_cast<std::size_t>(descend) + 1] -
                    child_start[static_cast<std::size_t>(descend)] <=
                1) {
          t.done = true;
          continue;
        }
        const int child = curve_.child_at(rep.state, descend);
        t.cur.box = rep.box.child(child, curve_.dim());
        t.cur.state = curve_.next_state(rep.state, child);
        t.cur.glo = child_start[static_cast<std::size_t>(descend)];
        t.cur.ghi = child_start[static_cast<std::size_t>(descend) + 1];
        t.cur.llo = bounds[descend + 1];
        t.cur.lhi = bounds[descend + 2];
        any_active = true;
      }
    }
    return any_active;
  }

  void set_tolerance(std::size_t tol_elements) { tol_elements_ = tol_elements; }
  void set_max_per_round(int k) { max_per_round_ = k; }
  [[nodiscard]] bool stage_remaining() const { return stage_remaining_; }

  /// Current splitters (monotonicity enforced, like the ordered selection
  /// of the real algorithm).
  [[nodiscard]] SplitterSet splitters() const {
    const int p = comm_.size();
    SplitterSet s;
    s.keys.resize(static_cast<std::size_t>(p));
    s.infinite.assign(static_cast<std::size_t>(p), 0);
    s.cuts.resize(static_cast<std::size_t>(p) + 1);
    s.keys[0] = octree::root_octant();
    s.cuts[0] = 0;
    s.cuts[static_cast<std::size_t>(p)] = static_cast<std::size_t>(n_global_);
    for (int r = 1; r < p; ++r) {
      const TargetState& t = targets_[static_cast<std::size_t>(r) - 1];
      // A cut at N ("infinite") is tracked by flag for the exchange, but
      // the exported key must still order correctly for consumers using
      // plain key comparison (owner_by_keys): use the curve-maximal cell.
      s.keys[static_cast<std::size_t>(r)] =
          t.key_infinite ? curve_.last_descendant(octree::root_octant()) : t.best_key;
      s.infinite[static_cast<std::size_t>(r)] = t.key_infinite ? 1 : 0;
      s.cuts[static_cast<std::size_t>(r)] = t.best_pos;
    }
    s.codes.resize(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      s.codes[static_cast<std::size_t>(r)] =
          s.infinite[static_cast<std::size_t>(r)] != 0
              ? sfc::key_supremum()
              : sfc::curve_key(curve_, s.keys[static_cast<std::size_t>(r)]);
    }
    // Ordered selection: cuts AND codes must both be non-decreasing.
    // Targets converge independently, so two of them can settle on the
    // same cut position with *different* keys (one stopped at a coarse
    // bucket boundary, the other refined to a descendant boundary at the
    // same position -- possible whenever a bucket is empty, a tolerance
    // ends targets at different depths, or p exceeds the number of
    // distinct buckets). Equal cuts with inverted codes leave `codes`
    // unsorted, and dest_of_key's binary search is then undefined for
    // probe keys in the inverted span -- partition_quality's boundary
    // probes land there even though no element does. Collapse any such
    // pair onto its predecessor; the position is identical, so ownership
    // ranges are unchanged.
    for (int r = 1; r < p; ++r) {
      const std::size_t i = static_cast<std::size_t>(r);
      if (s.cuts[i] < s.cuts[i - 1] || s.codes[i] < s.codes[i - 1]) {
        s.cuts[i] = s.cuts[i - 1];
        s.keys[i] = s.keys[i - 1];
        s.infinite[i] = s.infinite[i - 1];
        s.codes[i] = s.codes[i - 1];
      }
    }
    return s;
  }

 private:
  std::vector<Octant>& local_;
  std::span<const sfc::CurveKey> keys_;
  Comm& comm_;
  const sfc::Curve& curve_;
  std::uint64_t n_global_ = 0;
  std::size_t tol_elements_ = 0;
  int max_per_round_ = 0;
  bool stage_remaining_ = false;
  std::vector<TargetState> targets_;
};

/// Alg. 2 over the prospective splitters: per-rank work and boundary
/// octants, reduced to Wmax / Cmax / Tp. Identical result on every rank.
struct Quality {
  double w_max = 0.0;
  double c_max = 0.0;
  double time = 0.0;
};

Quality partition_quality(std::span<const Octant> local,
                          std::span<const sfc::CurveKey> local_keys, Comm& comm,
                          const sfc::Curve& curve, const SplitterSet& splitters,
                          const machine::PerfModel& model) {
  const int p = comm.size();
  std::vector<std::uint64_t> counts(2 * static_cast<std::size_t>(p), 0);
  const int faces = curve.dim() == 3 ? 6 : 4;

  for (std::size_t i = 0; i < local.size(); ++i) {
    const Octant& o = local[i];
    const int r = splitters.dest_of_key(local_keys[i]);
    counts[static_cast<std::size_t>(r)]++;
    bool boundary = false;
    for (int face = 0; face < faces && !boundary; ++face) {
      Octant region;
      if (!o.face_neighbor(face, region)) continue;
      // The neighbor region's first/last descendants in *curve order*
      // bracket its contiguous SFC interval; if either end falls outside
      // our prospective range the octant is (conservatively) a boundary
      // octant. Their keys come straight from the region's digit string
      // (zero / maximal padding), no descent needed.
      if (splitters.dest_of_key(sfc::key_min_descendant(curve, region)) != r ||
          splitters.dest_of_key(sfc::key_max_descendant(curve, region)) != r) {
        boundary = true;
      }
    }
    if (boundary) counts[static_cast<std::size_t>(p + r)]++;
  }

  std::vector<std::uint64_t> global(counts.size());
  comm.allreduce<std::uint64_t>(counts, global, ReduceOp::kSum);

  Quality q;
  for (int r = 0; r < p; ++r) {
    q.w_max = std::max(q.w_max, static_cast<double>(global[static_cast<std::size_t>(r)]));
    q.c_max =
        std::max(q.c_max, static_cast<double>(global[static_cast<std::size_t>(p + r)]));
  }
  q.time = model.application_time(q.w_max, q.c_max);
  return q;
}

/// Tag of the element exchange's point-to-point messages. Distinct from
/// the halo exchange (tag 0) and the mesh-construction rounds so phases of
/// a pipeline that interleave across ranks never match each other's
/// messages.
constexpr int kTagElementExchange = 100;

/// The element exchange plus final local sort, over the nonblocking API.
/// `local_keys` are the pre-exchange curve keys aligned with `local`.
///
/// `local` is key-sorted and the splitter codes are monotone, so each
/// destination owns one contiguous slice of it: every receive is posted
/// up front, each slice is isent directly out of `local` (no per-
/// destination staging copies), and incoming pieces are concatenated in
/// ascending source order as they complete -- the same assembly order the
/// old Alltoallv produced, with no barrier anywhere in the exchange.
void exchange_and_sort(std::vector<Octant>& local,
                       std::span<const sfc::CurveKey> local_keys, Comm& comm,
                       const sfc::Curve& curve, const SplitterSet& splitters,
                       DistSortReport& report) {
  util::Timer timer;
  PhaseScope phase(comm, "treesort.exchange", "treesort.exchange/bytes",
                   "treesort.exchange/msgs");
  const int p = comm.size();
  const int me = comm.rank();

  std::vector<std::vector<Octant>> incoming(static_cast<std::size_t>(p));
  std::vector<Request> recvs(static_cast<std::size_t>(p));
  for (int q = 0; q < p; ++q) {
    if (q == me) continue;
    recvs[static_cast<std::size_t>(q)] =
        comm.irecv<Octant>(incoming[static_cast<std::size_t>(q)], q,
                           kTagElementExchange);
  }

  std::size_t keep_lo = 0;
  std::size_t keep_hi = 0;
  std::size_t begin = 0;
  for (int q = 0; q < p; ++q) {
    const std::size_t end =
        partition_point_index(begin, local.size(), [&](std::size_t i) {
          return splitters.dest_of_key(local_keys[i]) <= q;
        });
    if (q == me) {
      keep_lo = begin;
      keep_hi = end;
    } else {
      Request sent = comm.isend<Octant>(
          std::span<const Octant>(local.data() + begin, end - begin), q,
          kTagElementExchange);
      (void)sent;  // buffered: complete at post
    }
    begin = end;
  }

  std::vector<Octant> merged;
  for (int q = 0; q < p; ++q) {
    if (q == me) {
      merged.insert(merged.end(),
                    local.begin() + static_cast<std::ptrdiff_t>(keep_lo),
                    local.begin() + static_cast<std::ptrdiff_t>(keep_hi));
      continue;
    }
    auto& piece = incoming[static_cast<std::size_t>(q)];
    recvs[static_cast<std::size_t>(q)].wait();
    merged.insert(merged.end(), piece.begin(), piece.end());
  }
  local = std::move(merged);
  phase.close();  // close the exchange phase before the local re-sort
  report.exchange_seconds = timer.seconds();

  timer.reset();
  {
    AMR_SPAN("treesort.local_sort");
    octree::tree_sort(local, curve);
  }
  report.local_sort_seconds += timer.seconds();
  report.local_elements = local.size();
  report.splitters = splitters.keys;
  report.splitter_set = splitters;
}

}  // namespace

DistSortReport dist_treesort(std::vector<Octant>& local, Comm& comm,
                             const sfc::Curve& curve, const DistSortOptions& options) {
  DistSortReport report;
  util::Timer timer;
  std::vector<sfc::CurveKey> local_keys;
  {
    AMR_SPAN("treesort.local_sort");
    local_keys = octree::tree_sort_with_keys(local, curve);
  }
  report.local_sort_seconds = timer.seconds();

  timer.reset();
  SplitterSet splitters;
  {
    PhaseScope splitter_phase(comm, "treesort.splitter", "treesort.splitter/bytes",
                              "treesort.splitter/msgs");
    SplitterSearch search(local, local_keys, comm, curve);
    report.global_elements = search.global_elements();
    const double grain = static_cast<double>(search.global_elements()) /
                         static_cast<double>(comm.size());
    search.set_tolerance(static_cast<std::size_t>(options.tolerance * grain));
    search.set_max_per_round(options.max_splitters_per_round);
    search.init_targets();
    int depth = 1;
    for (; depth <= options.max_depth; ++depth) {
      bool any = search.refine_round(depth);
      while (search.stage_remaining()) {
        any = search.refine_round(depth) || any;
      }
      if (!any) break;
    }
    report.levels_used = depth - 1;
    splitters = search.splitters();
  }
  report.splitter_seconds = timer.seconds();

  exchange_and_sort(local, local_keys, comm, curve, splitters, report);
  return report;
}

DistSortReport dist_optipart(std::vector<Octant>& local, Comm& comm,
                             const sfc::Curve& curve, const machine::PerfModel& model,
                             int max_depth, DistOptiPartTrace* trace) {
  DistSortReport report;
  util::Timer timer;
  std::vector<sfc::CurveKey> local_keys;
  {
    AMR_SPAN("treesort.local_sort");
    local_keys = octree::tree_sort_with_keys(local, curve);
  }
  report.local_sort_seconds = timer.seconds();

  timer.reset();
  SplitterSet best;
  {
    PhaseScope sweep_phase(comm, "optipart.sweep", "optipart.sweep/bytes",
                           "optipart.sweep/msgs");
    SplitterSearch search(local, local_keys, comm, curve);
    report.global_elements = search.global_elements();
    search.set_tolerance(0);
    search.init_targets();

    // Initial refinement: enough rounds to expose >= p buckets (Alg. 3 l. 2).
    const int children = curve.num_children();
    int depth = 0;
    std::size_t buckets = 1;
    while (buckets < static_cast<std::size_t>(comm.size()) && depth < max_depth) {
      ++depth;
      buckets *= static_cast<std::size_t>(children);
      search.refine_round(depth);
    }

    best = search.splitters();
    Quality best_quality =
        partition_quality(local, local_keys, comm, curve, best, model);
    int best_depth = depth;
    if (trace != nullptr) {
      trace->rounds.push_back(
          {depth, best_quality.w_max, best_quality.c_max, best_quality.time});
    }

    // `while default >= current`: refine while the model keeps improving.
    while (depth < max_depth) {
      ++depth;
      AMR_INSTANT("optipart.round");
      if (!search.refine_round(depth)) break;
      const SplitterSet candidate = search.splitters();
      const Quality q =
          partition_quality(local, local_keys, comm, curve, candidate, model);
      if (trace != nullptr) {
        trace->rounds.push_back({depth, q.w_max, q.c_max, q.time});
      }
      if (q.time <= best_quality.time) {
        best = candidate;
        best_quality = q;
        best_depth = depth;
      } else {
        break;
      }
    }
    report.levels_used = depth;
    if (trace != nullptr) {
      trace->chosen_depth = best_depth;
      trace->chosen_time = best_quality.time;
    }
  }
  report.splitter_seconds = timer.seconds();

  exchange_and_sort(local, local_keys, comm, curve, best, report);
  return report;
}

}  // namespace amr::simmpi
