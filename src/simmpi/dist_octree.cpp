#include "simmpi/dist_octree.hpp"

#include <algorithm>
#include <cassert>

#include "partition/partition.hpp"
#include "simmpi/dist_treesort.hpp"

namespace amr::simmpi {

namespace {

using octree::Octant;

// Where a box sits relative to this rank's key interval [lo, hi)
// (hi == nullptr for the last rank).
enum class Overlap { kOutside, kInside, kStraddling };

class RangeBuilder {
 public:
  RangeBuilder(const sfc::Curve& curve, const DistOctreeOptions& options,
               const Octant& lo_key, const Octant* hi_key)
      : curve_(curve), options_(options), lo_key_(lo_key), hi_key_(hi_key) {}

  std::vector<Octant> build(std::vector<Octant>& cells) {
    scratch_.resize(cells.size());
    leaves_.clear();
    descend(octree::root_octant(), std::span<Octant>(cells), 1, 0);
    return std::move(leaves_);
  }

 private:
  [[nodiscard]] Overlap classify(const Octant& box) const {
    // The box's SFC interval is [first_descendant, last_descendant]; the
    // rank owns [lo_key, hi_key) (hi_key == nullptr: unbounded above).
    const Octant first = curve_.first_descendant(box);
    const Octant last = curve_.last_descendant(box);
    if (curve_.compare(last, lo_key_) < 0) return Overlap::kOutside;  // before
    if (hi_key_ != nullptr && curve_.compare(first, *hi_key_) >= 0) {
      return Overlap::kOutside;  // after
    }
    const bool starts_inside = curve_.compare(first, lo_key_) >= 0;
    const bool ends_inside =
        hi_key_ == nullptr || curve_.compare(last, *hi_key_) < 0;
    return starts_inside && ends_inside ? Overlap::kInside : Overlap::kStraddling;
  }

  void descend(const Octant& box, std::span<Octant> cells, int depth, int state) {
    const Overlap overlap = classify(box);
    if (overlap == Overlap::kOutside) return;
    const bool must_split = overlap == Overlap::kStraddling;
    if (!must_split && (cells.size() <= options_.max_points_per_leaf ||
                        static_cast<int>(box.level) >= options_.max_level)) {
      leaves_.push_back(box);
      return;
    }
    if (static_cast<int>(box.level) >= octree::kMaxDepth) {
      // Cannot split further; the splitters are cell-granular, so a
      // max-depth cell is never straddling -- emit defensively.
      leaves_.push_back(box);
      return;
    }

    // Bucket the cells by child in visit order (same as the sequential
    // builder in octree/generate.cpp).
    const int children = curve_.num_children();
    std::array<std::size_t, 8> counts{};
    for (const Octant& cell : cells) {
      counts[static_cast<std::size_t>(cell.child_number(depth, curve_.dim()))]++;
    }
    std::array<std::size_t, 8> start{};
    std::size_t running = 0;
    for (int j = 0; j < children; ++j) {
      const int c = curve_.child_at(state, j);
      start[static_cast<std::size_t>(c)] = running;
      running += counts[static_cast<std::size_t>(c)];
    }
    auto cursor = start;
    auto scratch = std::span<Octant>(scratch_).first(cells.size());
    for (const Octant& cell : cells) {
      scratch[cursor[static_cast<std::size_t>(cell.child_number(depth, curve_.dim()))]++] =
          cell;
    }
    std::copy(scratch.begin(), scratch.end(), cells.begin());

    for (int j = 0; j < children; ++j) {
      const int c = curve_.child_at(state, j);
      descend(box.child(c, curve_.dim()),
              cells.subspan(start[static_cast<std::size_t>(c)],
                            counts[static_cast<std::size_t>(c)]),
              depth + 1, curve_.next_state(state, c));
    }
  }

  const sfc::Curve& curve_;
  const DistOctreeOptions& options_;
  Octant lo_key_;
  const Octant* hi_key_;
  std::vector<Octant> scratch_;
  std::vector<Octant> leaves_;
};

}  // namespace

DistOctreeResult dist_points_to_octree(std::vector<std::array<std::uint32_t, 3>> points,
                                       Comm& comm, const sfc::Curve& curve,
                                       const DistOctreeOptions& options) {
  // 1: distribute the point cells by SFC order.
  std::vector<Octant> cells;
  cells.reserve(points.size());
  for (const auto& point : points) {
    cells.push_back(octree::octant_from_point(point[0], point[1], point[2],
                                              octree::kMaxDepth));
  }
  points.clear();
  points.shrink_to_fit();

  DistSortOptions sort_options;
  sort_options.tolerance = options.tolerance;
  const DistSortReport sorted = dist_treesort(cells, comm, curve, sort_options);

  // 2: range-restricted top-down construction.
  DistOctreeResult result;
  result.splitters = sorted.splitters;
  result.local_points = cells.size();
  const int me = comm.rank();
  const Octant lo_key = sorted.splitters[static_cast<std::size_t>(me)];
  const Octant* hi_key = me + 1 < comm.size()
                             ? &sorted.splitters[static_cast<std::size_t>(me) + 1]
                             : nullptr;
  RangeBuilder builder(curve, options, lo_key, hi_key);
  result.leaves = builder.build(cells);
  return result;
}

}  // namespace amr::simmpi
