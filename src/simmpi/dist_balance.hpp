// Distributed 2:1 balancing: each rank ripple-refines its own leaves until
// no leaf anywhere is more than one level coarser than an adjacent leaf --
// without any rank holding the global tree.
//
// Each round: (1) every rank pushes its boundary leaves to the ranks their
// neighbor regions touch (the dist_mesh shell protocol); (2) violations
// are marked against the merged local+shell view -- a *remote* fine leaf in
// the shell can force a local coarse leaf to split, which is exactly how
// imbalance ripples across rank boundaries; (3) marked local leaves split
// in curve order; (4) an allreduce counts global marks and the loop runs
// until a quiet round. Because refinement-only 2:1 balancing has a unique
// fixpoint (the closure of the input under the balance constraint), the
// gathered result equals the sequential octree::balance_octree of the
// gathered input -- which is what the tests assert.
//
// Note: ranks keep their original key intervals, so the balanced tree may
// be load-imbalanced afterwards; re-partitioning after balancing is the
// normal AMR sequence (see examples/distributed_pipeline).
#pragma once

#include <vector>

#include "octree/balance.hpp"
#include "octree/octant.hpp"
#include "sfc/curve.hpp"
#include "simmpi/comm.hpp"

namespace amr::simmpi {

struct DistBalanceReport {
  int rounds = 0;
  std::size_t local_splits = 0;
};

/// Balance this rank's piece (a contiguous curve interval of a globally
/// complete linear octree, delimited by `splitters`). Face balance only,
/// matching the mesh layer's requirement.
std::vector<octree::Octant> dist_balance_octree(
    std::vector<octree::Octant> local, const std::vector<octree::Octant>& splitters,
    Comm& comm, const sfc::Curve& curve, DistBalanceReport* report = nullptr);

}  // namespace amr::simmpi
