// HaloExchange: the reusable nonblocking ghost-exchange schedule every
// distributed application kernel shares (DESIGN.md §15).
//
// Extracted from dist_matvec_loop_overlapped so the matvec epoch and the
// multigrid fine-level smoother run the exact same wire schedule: receives
// posted first (a matched wait can complete as soon as the peer's send
// lands), buffered sends that cannot stall, and contiguous recv lists
// landing via irecv_into directly in their final ghost slots with no
// scatter pass. The contiguity analysis runs once at construction; post()
// and finish() bracket the overlap window (the caller streams
// ghost-independent work between them).
//
// The helper records no spans of its own -- callers own the span taxonomy
// (matvec.post/matvec.wait vs mg.post/mg.wait) because the recorder stores
// literal name pointers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mesh/mesh.hpp"
#include "simmpi/comm.hpp"

namespace amr::simmpi {

class HaloExchange {
 public:
  HaloExchange() = default;
  /// Precompute which peers' recv lists are contiguous ghost runs. The
  /// mesh must outlive the exchange.
  explicit HaloExchange(const mesh::LocalMesh& mesh);

  /// Put the whole halo of `u` in flight: post every irecv (contiguous
  /// lists straight into `ghosts`), then every buffered isend. `ghosts`
  /// must stay valid until finish() returns. Returns the number of ghost
  /// elements sent (the Cmax unit of Eq. 3).
  std::uint64_t post(Comm& comm, std::span<const double> u, std::span<double> ghosts);

  /// Wait for every request, then scatter the non-contiguous payloads into
  /// their ghost slots. After this `ghosts` is current.
  void finish(std::span<double> ghosts);

 private:
  const mesh::LocalMesh* mesh_ = nullptr;
  std::vector<bool> contiguous_;
  std::vector<std::vector<double>> incoming_;  ///< non-contiguous payloads
  std::vector<double> payload_;                ///< send scratch (isend buffers)
  std::vector<Request> requests_;
};

}  // namespace amr::simmpi
