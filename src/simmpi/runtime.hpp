// Launches a cohort of simmpi ranks on real threads and joins them,
// propagating the first exception any rank throws.
#pragma once

#include <functional>
#include <vector>

#include "simmpi/comm.hpp"

namespace amr::simmpi {

struct RunResult {
  std::vector<CostLedger> ledgers;  ///< per-rank traffic accounting
};

/// Run `body(comm)` on `num_ranks` threads sharing one communicator.
/// Blocks until every rank returns.
///
/// A rank throwing DeadlockError (stall watchdog expiry) does not abort
/// the process: every blocking primitive has the same watchdog, so all
/// stalled peers unwind too, the cohort joins, and run_ranks rethrows one
/// DeadlockError carrying the per-rank diagnostic -- a would-be hang
/// becomes a testable failure. Any other exception mirrors MPI's
/// abort-on-error semantics and terminates the process.
RunResult run_ranks(int num_ranks, const std::function<void(Comm&)>& body);

/// Same, with explicit communicator options (schedule perturbation seed,
/// stall watchdog) instead of the environment defaults.
RunResult run_ranks(int num_ranks, const ContextOptions& options,
                    const std::function<void(Comm&)>& body);

}  // namespace amr::simmpi
