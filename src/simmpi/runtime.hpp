// Launches a cohort of simmpi ranks on real threads and joins them,
// propagating the first exception any rank throws.
#pragma once

#include <functional>
#include <vector>

#include "simmpi/comm.hpp"

namespace amr::simmpi {

struct RunResult {
  std::vector<CostLedger> ledgers;  ///< per-rank traffic accounting
};

/// Run `body(comm)` on `num_ranks` threads sharing one communicator.
/// Blocks until every rank returns. Exceptions from rank bodies are
/// rethrown (the first one, by rank order).
RunResult run_ranks(int num_ranks, const std::function<void(Comm&)>& body);

}  // namespace amr::simmpi
