#include "simmpi/halo.hpp"

#include <cassert>

namespace amr::simmpi {

HaloExchange::HaloExchange(const mesh::LocalMesh& mesh) : mesh_(&mesh) {
  assert(mesh.has_overlap_split());
  // Ghost slots are ascending by global index and each peer owns one
  // contiguous global range, so a peer's recv list is normally a
  // contiguous block of the ghost array: those payloads can land in their
  // final slots in one copy (irecv_into) with no scatter pass.
  contiguous_.assign(mesh.peers.size(), false);
  for (std::size_t k = 0; k < mesh.peers.size(); ++k) {
    const auto& list = mesh.recv_lists[k];
    bool is_run = !list.empty();
    for (std::size_t i = 1; is_run && i < list.size(); ++i) {
      is_run = list[i] == list[0] + i;
    }
    contiguous_[k] = is_run;
  }
  incoming_.resize(mesh.peers.size());
}

std::uint64_t HaloExchange::post(Comm& comm, std::span<const double> u,
                                 std::span<double> ghosts) {
  assert(mesh_ != nullptr);
  const mesh::LocalMesh& mesh = *mesh_;
  std::uint64_t sent = 0;
  requests_.clear();
  for (std::size_t k = 0; k < mesh.peers.size(); ++k) {
    if (mesh.recv_lists[k].empty()) continue;
    if (contiguous_[k]) {
      requests_.push_back(comm.irecv_into<double>(
          std::span<double>(ghosts.data() + mesh.recv_lists[k][0],
                            mesh.recv_lists[k].size()),
          mesh.peers[k], /*tag=*/0));
    } else {
      requests_.push_back(comm.irecv<double>(incoming_[k], mesh.peers[k], /*tag=*/0));
    }
  }
  for (std::size_t k = 0; k < mesh.peers.size(); ++k) {
    if (mesh.send_lists[k].empty()) continue;
    payload_.clear();
    payload_.reserve(mesh.send_lists[k].size());
    for (const std::uint32_t idx : mesh.send_lists[k]) payload_.push_back(u[idx]);
    requests_.push_back(comm.isend<double>(payload_, mesh.peers[k], /*tag=*/0));
    sent += payload_.size();
  }
  return sent;
}

void HaloExchange::finish(std::span<double> ghosts) {
  assert(mesh_ != nullptr);
  const mesh::LocalMesh& mesh = *mesh_;
  wait_all(requests_);
  for (std::size_t k = 0; k < mesh.peers.size(); ++k) {
    if (contiguous_[k] || mesh.recv_lists[k].empty()) continue;
    assert(incoming_[k].size() == mesh.recv_lists[k].size());
    for (std::size_t i = 0; i < incoming_[k].size(); ++i) {
      ghosts[mesh.recv_lists[k][i]] = incoming_[k][i];
    }
  }
}

}  // namespace amr::simmpi
