// Distributed octree construction from distributed points (the
// points-to-octree step of Dendro-class pipelines, paper §4.2 at cluster
// scale): no rank ever holds all points or the whole tree.
//
//  1. Points become max-depth cells and are partitioned by distributed
//     TreeSort (with an optional load tolerance -- the paper's flexible
//     partitioning applies from the very first step of the pipeline).
//  2. Each rank runs the usual top-down construction over its own point
//     range, but restricted to its SFC interval: a box fully inside the
//     interval splits by point count as usual; a box straddling an
//     interval edge is always split (recursively, until its pieces are
//     fully owned); boxes outside are skipped. Interval tests use the
//     curve's first/last descendants against the agreed splitter keys.
//
// The concatenation of all ranks' leaves is a complete linear octree of
// the whole domain (verified in the tests), and each rank's piece is a
// contiguous curve interval ready for dist_build_local_mesh.
#pragma once

#include <array>
#include <vector>

#include "octree/generate.hpp"
#include "octree/octant.hpp"
#include "sfc/curve.hpp"
#include "simmpi/comm.hpp"

namespace amr::simmpi {

struct DistOctreeOptions {
  std::size_t max_points_per_leaf = 1;
  int max_level = 18;
  /// Load tolerance of the underlying distributed TreeSort.
  double tolerance = 0.0;
};

struct DistOctreeResult {
  std::vector<octree::Octant> leaves;     ///< this rank's contiguous piece
  std::vector<octree::Octant> splitters;  ///< agreed rank interval keys
  std::size_t local_points = 0;           ///< points after redistribution
};

/// Build this rank's piece of the global adaptive octree from its local
/// point set (quantized finest-grid coordinates).
DistOctreeResult dist_points_to_octree(
    std::vector<std::array<std::uint32_t, 3>> points, Comm& comm,
    const sfc::Curve& curve, const DistOctreeOptions& options = {});

}  // namespace amr::simmpi
