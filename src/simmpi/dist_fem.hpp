// Threaded distributed FEM matvec: the same LocalMesh kernel as
// fem::DistributedLaplacian, but with the ghost exchange done through
// simmpi's Alltoallv by concurrently running ranks. Used by the
// integration tests and examples to validate that the sequential "global
// engine" and a genuinely parallel execution agree bit-for-bit.
#pragma once

#include <vector>

#include "mesh/mesh.hpp"
#include "simmpi/comm.hpp"

namespace amr::simmpi {

struct DistFemReport {
  double compute_seconds = 0.0;
  double exchange_seconds = 0.0;
  std::uint64_t ghost_elements_sent = 0;
};

/// Run `iterations` matvecs of u <- L u on this rank's piece of the mesh.
/// `u` holds the local values on entry and the result on exit. The ghost
/// exchange goes through Alltoallv (a collective, like the staged exchange
/// of the partitioners).
DistFemReport dist_matvec_loop(const mesh::LocalMesh& mesh, Comm& comm, int iterations,
                               std::vector<double>& u);

/// Same computation, but the halo moves over tagged point-to-point
/// messages between actual neighbor pairs only -- the sparse exchange most
/// production FEM codes use. Must produce bit-identical results to the
/// collective variant (tested), while sending messages only along the
/// communication matrix's non-zeros.
DistFemReport dist_matvec_loop_p2p(const mesh::LocalMesh& mesh, Comm& comm,
                                   int iterations, std::vector<double>& u);

}  // namespace amr::simmpi
