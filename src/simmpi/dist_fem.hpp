// Threaded distributed FEM matvec: the same operator as
// fem::DistributedLaplacian, but with the ghost exchange done through
// simmpi's Alltoallv by concurrently running ranks, and the compute side
// executed by the SoA KernelPlan engine (fem/engine.hpp) on the shared
// process pool. Used by the integration tests and examples to validate
// that the sequential "global engine" and a genuinely parallel execution
// agree bit-for-bit.
#pragma once

#include <vector>

#include "fem/engine.hpp"
#include "mesh/mesh.hpp"
#include "simmpi/comm.hpp"

namespace amr::simmpi {

struct DistFemReport {
  double compute_seconds = 0.0;   ///< all kernel time (interior + boundary)
  double exchange_seconds = 0.0;  ///< all exchange time (post + wait + scatter)

  // Phase breakdown. The blocking variants charge the whole exchange to
  // exchange_wait_seconds (nothing is hidden); the overlapped variant
  // splits posting (cannot stall) from the wait that runs after the
  // interior kernel, so exchange_wait_seconds is the *exposed* part.
  double post_seconds = 0.0;
  double exchange_wait_seconds = 0.0;
  double interior_compute_seconds = 0.0;
  double boundary_compute_seconds = 0.0;
  /// KernelPlan build time (zero when the caller passed a prebuilt plan).
  double plan_seconds = 0.0;

  std::uint64_t ghost_elements_sent = 0;

  /// Share of exchange time not hidden behind compute (1.0 for the
  /// blocking variants; < 1.0 once overlap hides any of the wait).
  [[nodiscard]] double exposed_comm_fraction() const {
    return exchange_seconds > 0.0 ? exchange_wait_seconds / exchange_seconds : 0.0;
  }
};

/// Run `iterations` matvecs of u <- L u on this rank's piece of the mesh.
/// `u` holds the local values on entry and the result on exit. The ghost
/// exchange goes through Alltoallv (a collective, like the staged exchange
/// of the partitioners). Each variant has a second overload taking a
/// prebuilt KernelPlan for the mesh: the loop epochs of a solver should
/// build the plan once and amortize it, while the mesh-only overloads
/// build it on entry (recorded as the fem.plan span / plan_seconds).
DistFemReport dist_matvec_loop(const mesh::LocalMesh& mesh, Comm& comm, int iterations,
                               std::vector<double>& u);
DistFemReport dist_matvec_loop(const mesh::LocalMesh& mesh,
                               const fem::KernelPlan& plan, Comm& comm,
                               int iterations, std::vector<double>& u);

/// Same computation, but the halo moves over tagged point-to-point
/// messages between actual neighbor pairs only -- the sparse exchange most
/// production FEM codes use. Must produce bit-identical results to the
/// collective variant (tested), while sending messages only along the
/// communication matrix's non-zeros.
DistFemReport dist_matvec_loop_p2p(const mesh::LocalMesh& mesh, Comm& comm,
                                   int iterations, std::vector<double>& u);
DistFemReport dist_matvec_loop_p2p(const mesh::LocalMesh& mesh,
                                   const fem::KernelPlan& plan, Comm& comm,
                                   int iterations, std::vector<double>& u);

/// Overlapped variant: post irecv/isend for the halo, stream the plan's
/// interior rows on the pool (they read no ghosts) while the messages are
/// in flight, wait, then stream the ghost-row tail. Contiguous recv lists
/// land via irecv_into directly in their ghost slots, skipping the
/// scatter pass. Bit-identical to both blocking variants and the
/// sequential engine -- the plan preserves each row's accumulation order
/// exactly (see fem/engine.hpp). Requires mesh.build_overlap_split(),
/// which both mesh constructions run.
DistFemReport dist_matvec_loop_overlapped(const mesh::LocalMesh& mesh, Comm& comm,
                                          int iterations, std::vector<double>& u);
DistFemReport dist_matvec_loop_overlapped(const mesh::LocalMesh& mesh,
                                          const fem::KernelPlan& plan, Comm& comm,
                                          int iterations, std::vector<double>& u);

}  // namespace amr::simmpi
