#include "simmpi/dist_balance.hpp"

#include <algorithm>
#include <cassert>

#include "octree/search.hpp"
#include "partition/partition.hpp"
#include "simmpi/phase_trace.hpp"

namespace amr::simmpi {

namespace {

using octree::Octant;

// Point on the face of `region` shared with the octant the region was
// derived from (region = same-level neighbor across `face` of that octant;
// the shared plane is region's face `face ^ 1`).
std::array<std::uint32_t, 3> shared_face_point(const Octant& region, int face) {
  std::array<std::uint32_t, 3> point{region.x, region.y, region.z};
  const int region_face = face ^ 1;
  if ((region_face & 1) == 1) {
    const std::uint32_t last = region.size() - 1;
    point[static_cast<std::size_t>(region_face / 2)] += last;
  }
  return point;
}

}  // namespace

std::vector<Octant> dist_balance_octree(std::vector<Octant> local,
                                        const std::vector<Octant>& splitters,
                                        Comm& comm, const sfc::Curve& curve,
                                        DistBalanceReport* report) {
  const int p = comm.size();
  const int me = comm.rank();
  const int faces = curve.dim() == 3 ? 6 : 4;
  DistBalanceReport stats;

  const auto owner_of = [&](const Octant& o) {
    return partition::owner_by_keys(splitters, o, curve);
  };

  PhaseScope phase(comm, "balance.ripple", "balance.ripple/bytes",
                   "balance.ripple/msgs");
  for (;;) {
    ++stats.rounds;
    AMR_SPAN("balance.round");

    // (1) Shell exchange: push leaves whose neighbor regions cross ranks.
    std::vector<std::vector<Octant>> push(static_cast<std::size_t>(p));
    {
      std::vector<std::vector<char>> already(static_cast<std::size_t>(p));
      for (auto& flags : already) flags.assign(local.size(), 0);
      for (std::size_t i = 0; i < local.size(); ++i) {
        for (int face = 0; face < faces; ++face) {
          Octant region;
          if (!local[i].face_neighbor(face, region)) continue;
          const int r_lo = owner_of(curve.first_descendant(region));
          const int r_hi = owner_of(curve.last_descendant(region));
          for (int q = r_lo; q <= r_hi; ++q) {
            if (q == me || already[static_cast<std::size_t>(q)][i] != 0) continue;
            already[static_cast<std::size_t>(q)][i] = 1;
            push[static_cast<std::size_t>(q)].push_back(local[i]);
          }
        }
      }
    }
    const auto shells = comm.alltoallv(push);
    std::vector<Octant> merged = local;
    for (const auto& shell : shells) {
      merged.insert(merged.end(), shell.begin(), shell.end());
    }
    std::sort(merged.begin(), merged.end(), curve.comparator());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

    // (2) Mark local leaves more than one level coarser than any adjacent
    // leaf. Drivers include shell leaves: remote refinement ripples in.
    std::vector<char> marked(local.size(), 0);
    std::uint64_t marks = 0;
    for (const Octant& fine : merged) {
      for (int face = 0; face < faces; ++face) {
        Octant region;
        if (!fine.face_neighbor(face, region)) continue;
        const auto probe = shared_face_point(region, face);
        const std::size_t mi =
            octree::leaf_lookup(merged, curve, probe[0], probe[1], probe[2]);
        const Octant& cover = merged[mi];
        // merged covers every point adjacent to *local* leaves; for probes
        // next to shell-only drivers the true cover may be absent, in
        // which case the lookup lands on an unrelated leaf -- but then the
        // true cover is remote (local leaves are all in merged), so the
        // violation is that rank's to fix.
        if (!cover.contains_point(probe[0], probe[1], probe[2])) continue;
        if (static_cast<int>(cover.level) + 1 >= static_cast<int>(fine.level)) {
          continue;  // no violation
        }
        if (owner_of(cover) != me) continue;  // the owner marks it
        const auto it =
            std::lower_bound(local.begin(), local.end(), cover, curve.comparator());
        if (it == local.end() || !(*it == cover)) continue;  // shell-only copy
        const auto li = static_cast<std::size_t>(it - local.begin());
        if (marked[li] == 0) {
          marked[li] = 1;
          ++marks;
        }
      }
    }

    // (3) Split marked leaves in place (children in curve order keep the
    // array sorted).
    if (marks > 0) {
      std::vector<Octant> next;
      next.reserve(local.size() + marks * 8);
      for (std::size_t i = 0; i < local.size(); ++i) {
        if (marked[i] == 0) {
          next.push_back(local[i]);
          continue;
        }
        const int state = curve.state_at(local[i], local[i].level);
        for (int j = 0; j < curve.num_children(); ++j) {
          next.push_back(local[i].child(curve.child_at(state, j), curve.dim()));
        }
      }
      local = std::move(next);
      stats.local_splits += marks;
    }

    // (4) Quiet round everywhere? Done.
    const std::uint64_t global_marks = comm.allreduce_one(marks, ReduceOp::kSum);
    if (global_marks == 0) break;
    assert(stats.rounds <= 2 * octree::kMaxDepth && "distributed balance diverged");
  }

  if (report != nullptr) *report = stats;
  return local;
}

}  // namespace amr::simmpi
