#include "simmpi/dist_samplesort.hpp"

#include <algorithm>

#include "octree/treesort.hpp"
#include "sfc/key.hpp"
#include "util/timer.hpp"

namespace amr::simmpi {

namespace {

/// Sort `octants` by curve order via precomputed 128-bit keys (one table
/// walk per element instead of one per comparison) and return the keys
/// aligned with the sorted order.
std::vector<sfc::CurveKey> key_sort(std::vector<octree::Octant>& octants,
                                    const sfc::Curve& curve) {
  struct Item {
    sfc::CurveKey key;
    octree::Octant oct;
  };
  std::vector<Item> items;
  items.reserve(octants.size());
  for (const octree::Octant& o : octants) {
    items.push_back({sfc::curve_key(curve, o), o});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.key < b.key; });
  std::vector<sfc::CurveKey> keys(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    octants[i] = items[i].oct;
    keys[i] = items[i].key;
  }
  return keys;
}

}  // namespace

SampleSortReport dist_samplesort(std::vector<octree::Octant>& local, Comm& comm,
                                 const sfc::Curve& curve) {
  SampleSortReport report;
  const int p = comm.size();

  util::Timer timer;
  const std::vector<sfc::CurveKey> local_keys = key_sort(local, curve);
  report.local_sort_seconds = timer.seconds();

  timer.reset();
  report.global_elements = comm.allreduce_one<std::uint64_t>(local.size(), ReduceOp::kSum);

  // p-1 equally spaced local samples; gathered everywhere.
  std::vector<octree::Octant> samples;
  if (!local.empty()) {
    for (int s = 1; s < p; ++s) {
      samples.push_back(
          local[static_cast<std::size_t>(static_cast<unsigned __int128>(local.size()) *
                                         static_cast<unsigned>(s) /
                                         static_cast<unsigned>(p))]);
    }
  }
  std::vector<octree::Octant> all_samples = comm.allgatherv<octree::Octant>(samples);
  const std::vector<sfc::CurveKey> sample_keys = key_sort(all_samples, curve);

  // Splitter key codes: every destination search below is then a binary
  // search over 128-bit integers.
  std::vector<sfc::CurveKey> splitter_codes;
  if (!all_samples.empty()) {
    for (int s = 1; s < p; ++s) {
      splitter_codes.push_back(
          sample_keys[static_cast<std::size_t>(
              static_cast<unsigned __int128>(all_samples.size()) *
              static_cast<unsigned>(s) / static_cast<unsigned>(p))]);
    }
  }
  report.splitter_seconds = timer.seconds();

  timer.reset();
  std::vector<std::vector<octree::Octant>> send(static_cast<std::size_t>(p));
  for (std::size_t i = 0; i < local.size(); ++i) {
    // Destination: number of splitters <= element.
    const auto it = std::upper_bound(splitter_codes.begin(), splitter_codes.end(),
                                     local_keys[i]);
    send[static_cast<std::size_t>(it - splitter_codes.begin())].push_back(local[i]);
  }
  auto recv = comm.alltoallv(send);
  local.clear();
  for (auto& part : recv) {
    local.insert(local.end(), part.begin(), part.end());
  }
  report.exchange_seconds = timer.seconds();

  timer.reset();
  octree::tree_sort(local, curve);
  report.local_sort_seconds += timer.seconds();
  report.local_elements = local.size();
  return report;
}

}  // namespace amr::simmpi
