#include "simmpi/dist_samplesort.hpp"

#include <algorithm>

#include "octree/treesort.hpp"
#include "sfc/key.hpp"

#include "simmpi/phase_trace.hpp"
#include "util/timer.hpp"

namespace amr::simmpi {

namespace {

/// Tag of samplesort's element-exchange messages (distinct from the halo
/// exchange and treesort's exchange; see kTagElementExchange there).
constexpr int kTagSampleExchange = 104;

/// Sort `octants` by curve order via precomputed 128-bit keys (one table
/// walk per element instead of one per comparison) and return the keys
/// aligned with the sorted order.
std::vector<sfc::CurveKey> key_sort(std::vector<octree::Octant>& octants,
                                    const sfc::Curve& curve) {
  struct Item {
    sfc::CurveKey key;
    octree::Octant oct;
  };
  std::vector<Item> items;
  items.reserve(octants.size());
  for (const octree::Octant& o : octants) {
    items.push_back({sfc::curve_key(curve, o), o});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.key < b.key; });
  std::vector<sfc::CurveKey> keys(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    octants[i] = items[i].oct;
    keys[i] = items[i].key;
  }
  return keys;
}

}  // namespace

SampleSortReport dist_samplesort(std::vector<octree::Octant>& local, Comm& comm,
                                 const sfc::Curve& curve) {
  SampleSortReport report;
  const int p = comm.size();

  util::Timer timer;
  std::vector<sfc::CurveKey> local_keys;
  {
    AMR_SPAN("samplesort.local_sort");
    local_keys = key_sort(local, curve);
  }
  report.local_sort_seconds = timer.seconds();

  timer.reset();
  PhaseScope splitter_phase(comm, "samplesort.splitter",
                            "samplesort.splitter/bytes", "samplesort.splitter/msgs");
  report.global_elements = comm.allreduce_one<std::uint64_t>(local.size(), ReduceOp::kSum);

  // p-1 equally spaced local samples; gathered everywhere.
  std::vector<octree::Octant> samples;
  if (!local.empty()) {
    for (int s = 1; s < p; ++s) {
      samples.push_back(
          local[static_cast<std::size_t>(static_cast<unsigned __int128>(local.size()) *
                                         static_cast<unsigned>(s) /
                                         static_cast<unsigned>(p))]);
    }
  }
  std::vector<octree::Octant> all_samples = comm.allgatherv<octree::Octant>(samples);
  const std::vector<sfc::CurveKey> sample_keys = key_sort(all_samples, curve);

  // Splitter key codes: every destination search below is then a binary
  // search over 128-bit integers.
  std::vector<sfc::CurveKey> splitter_codes;
  if (!all_samples.empty()) {
    for (int s = 1; s < p; ++s) {
      splitter_codes.push_back(
          sample_keys[static_cast<std::size_t>(
              static_cast<unsigned __int128>(all_samples.size()) *
              static_cast<unsigned>(s) / static_cast<unsigned>(p))]);
    }
  }
  splitter_phase.close();
  report.splitter_seconds = timer.seconds();

  timer.reset();
  PhaseScope exchange_phase(comm, "samplesort.exchange",
                            "samplesort.exchange/bytes", "samplesort.exchange/msgs");
  // Nonblocking exchange without staging copies: `local` is key-sorted and
  // the splitter codes are monotone, so destination q's elements are the
  // contiguous slice [lower_bound(codes[q-1]), lower_bound(codes[q]))
  // (destination of a key = number of splitters <= it). Receives go up
  // first, slices are isent straight out of `local`, and pieces are
  // concatenated in ascending source order -- the Alltoallv's assembly
  // order, minus its two barriers.
  const int me = comm.rank();
  std::vector<std::vector<octree::Octant>> incoming(static_cast<std::size_t>(p));
  std::vector<Request> recvs(static_cast<std::size_t>(p));
  for (int q = 0; q < p; ++q) {
    if (q == me) continue;
    recvs[static_cast<std::size_t>(q)] = comm.irecv<octree::Octant>(
        incoming[static_cast<std::size_t>(q)], q, kTagSampleExchange);
  }
  std::size_t keep_lo = 0;
  std::size_t keep_hi = 0;
  std::size_t begin = 0;
  for (int q = 0; q < p; ++q) {
    // Slice for destination q ends at the first key >= splitter_codes[q];
    // the last destination (and the no-samples case, where everything goes
    // to rank 0) takes the rest.
    const std::size_t end =
        static_cast<std::size_t>(q) < splitter_codes.size()
            ? static_cast<std::size_t>(
                  std::lower_bound(local_keys.begin() +
                                       static_cast<std::ptrdiff_t>(begin),
                                   local_keys.end(),
                                   splitter_codes[static_cast<std::size_t>(q)]) -
                  local_keys.begin())
            : local.size();
    if (q == me) {
      keep_lo = begin;
      keep_hi = end;
    } else {
      Request sent = comm.isend<octree::Octant>(
          std::span<const octree::Octant>(local.data() + begin, end - begin), q,
          kTagSampleExchange);
      (void)sent;  // buffered: complete at post
    }
    begin = end;
  }
  std::vector<octree::Octant> merged;
  for (int q = 0; q < p; ++q) {
    if (q == me) {
      merged.insert(merged.end(),
                    local.begin() + static_cast<std::ptrdiff_t>(keep_lo),
                    local.begin() + static_cast<std::ptrdiff_t>(keep_hi));
      continue;
    }
    auto& piece = incoming[static_cast<std::size_t>(q)];
    recvs[static_cast<std::size_t>(q)].wait();
    merged.insert(merged.end(), piece.begin(), piece.end());
  }
  local = std::move(merged);
  exchange_phase.close();
  report.exchange_seconds = timer.seconds();

  timer.reset();
  {
    AMR_SPAN("samplesort.local_sort");
    octree::tree_sort(local, curve);
  }
  report.local_sort_seconds += timer.seconds();
  report.local_elements = local.size();
  return report;
}

}  // namespace amr::simmpi
