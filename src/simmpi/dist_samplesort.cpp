#include "simmpi/dist_samplesort.hpp"

#include <algorithm>

#include "octree/treesort.hpp"
#include "util/timer.hpp"

namespace amr::simmpi {

SampleSortReport dist_samplesort(std::vector<octree::Octant>& local, Comm& comm,
                                 const sfc::Curve& curve) {
  SampleSortReport report;
  const int p = comm.size();

  util::Timer timer;
  std::sort(local.begin(), local.end(), curve.comparator());
  report.local_sort_seconds = timer.seconds();

  timer.reset();
  report.global_elements = comm.allreduce_one<std::uint64_t>(local.size(), ReduceOp::kSum);

  // p-1 equally spaced local samples; gathered everywhere.
  std::vector<octree::Octant> samples;
  if (!local.empty()) {
    for (int s = 1; s < p; ++s) {
      samples.push_back(
          local[static_cast<std::size_t>(static_cast<unsigned __int128>(local.size()) *
                                         static_cast<unsigned>(s) /
                                         static_cast<unsigned>(p))]);
    }
  }
  std::vector<octree::Octant> all_samples = comm.allgatherv<octree::Octant>(samples);
  std::sort(all_samples.begin(), all_samples.end(), curve.comparator());

  std::vector<octree::Octant> splitters;
  if (!all_samples.empty()) {
    for (int s = 1; s < p; ++s) {
      splitters.push_back(
          all_samples[static_cast<std::size_t>(
              static_cast<unsigned __int128>(all_samples.size()) *
              static_cast<unsigned>(s) / static_cast<unsigned>(p))]);
    }
  }
  report.splitter_seconds = timer.seconds();

  timer.reset();
  std::vector<std::vector<octree::Octant>> send(static_cast<std::size_t>(p));
  for (const octree::Octant& o : local) {
    // Destination: number of splitters <= o.
    const auto it = std::upper_bound(splitters.begin(), splitters.end(), o,
                                     [&](const octree::Octant& probe,
                                         const octree::Octant& key) {
                                       return curve.compare(probe, key) < 0;
                                     });
    send[static_cast<std::size_t>(it - splitters.begin())].push_back(o);
  }
  auto recv = comm.alltoallv(send);
  local.clear();
  for (auto& part : recv) {
    local.insert(local.end(), part.begin(), part.end());
  }
  report.exchange_seconds = timer.seconds();

  timer.reset();
  octree::tree_sort(local, curve);
  report.local_sort_seconds += timer.seconds();
  report.local_elements = local.size();
  return report;
}

}  // namespace amr::simmpi
