#include "simmpi/dist_telemetry.hpp"

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace amr::simmpi {

obs::LatencyHistogram allreduce_histogram(Comm& comm,
                                          const obs::LatencyHistogram& local) {
  using obs::LatencyHistogram;
  constexpr std::size_t kBuckets = LatencyHistogram::kBucketCount;

  // Wire image: [buckets..., count, sum] under one kSum reduction. Bucket
  // counts and the total are non-negative and far below 2^63; the sample
  // sum is a plain int64 addition either way.
  std::vector<std::int64_t> wire(kBuckets + 2);
  const auto& buckets = local.buckets();
  for (std::size_t i = 0; i < kBuckets; ++i) {
    wire[i] = static_cast<std::int64_t>(buckets[i]);
  }
  wire[kBuckets] = static_cast<std::int64_t>(local.count());
  wire[kBuckets + 1] = local.count() > 0 ? local.sum() : 0;

  std::vector<std::int64_t> reduced(wire.size());
  comm.allreduce(std::span<const std::int64_t>(wire), std::span<std::int64_t>(reduced),
                 ReduceOp::kSum);

  // Empty ranks contribute the identity sentinels so kMin/kMax ignore them.
  const std::int64_t my_min =
      local.count() > 0 ? local.min() : std::numeric_limits<std::int64_t>::max();
  const std::int64_t my_max =
      local.count() > 0 ? local.max() : std::numeric_limits<std::int64_t>::min();
  const std::int64_t global_min = comm.allreduce_one(my_min, ReduceOp::kMin);
  const std::int64_t global_max = comm.allreduce_one(my_max, ReduceOp::kMax);

  std::array<std::uint64_t, LatencyHistogram::kBucketCount> merged_buckets{};
  for (std::size_t i = 0; i < kBuckets; ++i) {
    merged_buckets[i] = static_cast<std::uint64_t>(reduced[i]);
  }
  return LatencyHistogram::from_parts(
      merged_buckets, static_cast<std::uint64_t>(reduced[kBuckets]),
      reduced[kBuckets + 1], global_min, global_max);
}

}  // namespace amr::simmpi
