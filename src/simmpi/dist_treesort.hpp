// Distributed TreeSort and distributed OptiPart over simmpi (paper §3.1,
// §3.4, Algorithms 2 & 3).
//
// The splitter selection proceeds breadth-first: every rank buckets its
// local (pre-sorted) elements at the current refinement depth, a single
// allreduce yields the global bucket counts, and every rank -- running the
// identical deterministic update -- advances each target cut r*N/p into
// the bucket containing it, keeping the closest bucket boundary seen so
// far as the candidate splitter. No comparisons cross ranks: ranks agree
// on the splitters because they agree on the global counts (the property
// that distinguishes TreeSort from SampleSort/HykSort, §3.1).
//
//  * dist_treesort: refine until every cut is within tolerance * N/p
//    (tolerance 0 = fully load-balanced distributed sort).
//  * dist_optipart: refine level-synchronously, evaluate PartitionQuality
//    (Alg. 2) after each round from the same reduction, and stop when the
//    model Tp = alpha*tc*Wmax + tw*Cmax predicts the next refinement to be
//    slower.
//
// Both finish with the Alltoallv element exchange and a local TreeSort.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/perf_model.hpp"
#include "octree/incremental.hpp"
#include "octree/octant.hpp"
#include "sfc/curve.hpp"
#include "sfc/key.hpp"
#include "simmpi/comm.hpp"

namespace amr::simmpi {

/// The splitters every rank agreed on, in the three aligned views the
/// pipeline uses: octant keys (keys[0] is the root, i.e. minus infinity),
/// global cut positions (cuts[r] is the first global index of rank r), and
/// 128-bit curve-key codes for routing. Invariants (asserted by the fuzz
/// oracles): codes and cuts are non-decreasing, and for every rank the
/// number of elements dest_of_key routes to r equals cuts[r+1] - cuts[r].
struct SplitterSet {
  std::vector<octree::Octant> keys;  ///< size p
  std::vector<char> infinite;        ///< 1 for trailing ranks that own nothing
  std::vector<std::size_t> cuts;     ///< size p+1 global positions
  std::vector<sfc::CurveKey> codes;  ///< curve keys of `keys`; infinite -> supremum

  /// Destination rank of an element given its curve key: the last r with
  /// codes[r] <= key. Infinite splitters encode as key_supremum(), which no
  /// element key reaches, so those ranks receive nothing.
  [[nodiscard]] int dest_of_key(sfc::CurveKey key) const;
};

struct DistSortOptions {
  double tolerance = 0.0;
  int max_depth = octree::kMaxDepth;
  /// Staged splitter cap k <= p (paper §3.1, Eq. 2): at most this many
  /// splitter targets are refined per reduction round, bounding both the
  /// auxiliary storage and each reduction's payload at the cost of more
  /// rounds. 0 means no cap (Eq. 1 behavior). The resulting splitters are
  /// identical; only the collective schedule changes.
  int max_splitters_per_round = 0;
};

struct DistSortReport {
  int levels_used = 0;
  std::size_t global_elements = 0;
  std::size_t local_elements = 0;  ///< after the exchange
  double local_sort_seconds = 0.0;
  double splitter_seconds = 0.0;
  double exchange_seconds = 0.0;
  /// Splitter keys agreed on (index r = first octant of rank r).
  std::vector<octree::Octant> splitters;
  /// Full splitter state used for the exchange (keys + cuts + codes);
  /// identical on every rank.
  SplitterSet splitter_set;
};

/// Distributed TreeSort: on return `local` holds this rank's contiguous
/// SFC range of the global array.
DistSortReport dist_treesort(std::vector<octree::Octant>& local, Comm& comm,
                             const sfc::Curve& curve,
                             const DistSortOptions& options = {});

/// Distributed OptiPart (Alg. 3). Quality rounds are recorded in the
/// report of the bench that needs them via the returned trace.
struct DistOptiPartTrace {
  struct Round {
    int depth = 0;
    double w_max = 0.0;
    double c_max = 0.0;
    double predicted_time = 0.0;
  };
  std::vector<Round> rounds;
  /// Refinement depth / modeled Tp of the accepted partition. By Alg. 3's
  /// `while default >= current` rule this is the running minimum of the
  /// evaluated rounds, so chosen_time never exceeds rounds[0] (the >= p
  /// buckets equal-split baseline) -- a fuzz-oracle invariant.
  int chosen_depth = 0;
  double chosen_time = 0.0;
};

DistSortReport dist_optipart(std::vector<octree::Octant>& local, Comm& comm,
                             const sfc::Curve& curve, const machine::PerfModel& model,
                             int max_depth = octree::kMaxDepth,
                             DistOptiPartTrace* trace = nullptr);

// ---------------------------------------------------------------------------
// Incremental path: splice an AMR delta into the previous keyed order by
// sorted-merge instead of re-sorting, and let the migration-augmented model
// decide whether new cuts pay for the data they move (DESIGN.md §13).
// ---------------------------------------------------------------------------

struct DistIncrementalOptions {
  DistSortOptions sort;
  /// Global change-fraction crossover: when the allreduced delta exceeds
  /// this fraction of the previous global element count, every rank takes
  /// the from-scratch radix path instead of the merge (the measured
  /// crossover of bench_micro_incremental). The result is element-wise
  /// identical either way.
  double fallback_change_fraction = 0.25;
};

struct DistIncrementalReport {
  DistSortReport sort;        ///< same shape as the from-scratch report
  bool merge_path = false;    ///< global route decision, identical on all ranks
  std::uint64_t global_changes = 0;  ///< allreduced inserts + deletes
  double merge_seconds = 0.0;        ///< local splice (merge or fallback sort)
};

/// Incremental distributed TreeSort. `local`/`keys` hold this rank's slice
/// of the previous globally sorted order with its aligned 128-bit key
/// cache; `delta` is this rank's insert/delete stream (delete positions
/// index the local slice). On return they hold the rank's slice of the
/// re-sorted global order -- element-wise identical to dist_treesort run
/// from scratch on the edited stream -- and the key cache stays aligned, so
/// successive AMR steps remain incremental.
DistIncrementalReport dist_treesort_incremental(
    std::vector<octree::Octant>& local, std::vector<sfc::CurveKey>& keys,
    Comm& comm, const sfc::Curve& curve, const octree::DeltaStream& delta,
    const DistIncrementalOptions& options = {});

/// Outcome of the migration-aware repartition decision. All inputs are
/// allreduced, so every rank computes the identical decision.
struct RepartitionDecision {
  bool kept_previous = false;  ///< previous cuts beat the refined candidate
  std::uint64_t moved_elements = 0;  ///< global elements changing rank (chosen cuts)
  double predicted_migration_seconds = 0.0;  ///< migration_time of the choice
  double previous_step_seconds = 0.0;   ///< Eq. 3 Tp of the previous cuts
  double candidate_step_seconds = 0.0;  ///< Eq. 3 Tp of the refined candidate
  double previous_objective = 0.0;   ///< horizon*Tp + migration, keep branch
  double candidate_objective = 0.0;  ///< horizon*Tp + migration, move branch
};

/// Migration-aware incremental OptiPart: splice `delta` (sorted-merge, as
/// dist_treesort_incremental), re-run the Alg. 3 refine loop for the
/// model-best candidate cuts, then choose between the *previous* cuts and
/// the candidate by PerfModel::repartition_objective -- the candidate only
/// wins if its per-step advantage over the repartition horizon covers the
/// one-time bytes it moves across the interconnect. With
/// migration_cost_factor == 0 the candidate is adopted unconditionally,
/// reproducing dist_optipart's cuts exactly. `trace` records the refine
/// rounds of the candidate search (not the keep/move decision, which lands
/// in `decision`).
DistIncrementalReport dist_optipart_incremental(
    std::vector<octree::Octant>& local, std::vector<sfc::CurveKey>& keys,
    Comm& comm, const sfc::Curve& curve, const machine::PerfModel& model,
    const SplitterSet& previous, const octree::DeltaStream& delta,
    const DistIncrementalOptions& options = {}, DistOptiPartTrace* trace = nullptr,
    RepartitionDecision* decision = nullptr);

}  // namespace amr::simmpi
