// Distributed TreeSort and distributed OptiPart over simmpi (paper §3.1,
// §3.4, Algorithms 2 & 3).
//
// The splitter selection proceeds breadth-first: every rank buckets its
// local (pre-sorted) elements at the current refinement depth, a single
// allreduce yields the global bucket counts, and every rank -- running the
// identical deterministic update -- advances each target cut r*N/p into
// the bucket containing it, keeping the closest bucket boundary seen so
// far as the candidate splitter. No comparisons cross ranks: ranks agree
// on the splitters because they agree on the global counts (the property
// that distinguishes TreeSort from SampleSort/HykSort, §3.1).
//
//  * dist_treesort: refine until every cut is within tolerance * N/p
//    (tolerance 0 = fully load-balanced distributed sort).
//  * dist_optipart: refine level-synchronously, evaluate PartitionQuality
//    (Alg. 2) after each round from the same reduction, and stop when the
//    model Tp = alpha*tc*Wmax + tw*Cmax predicts the next refinement to be
//    slower.
//
// Both finish with the Alltoallv element exchange and a local TreeSort.
#pragma once

#include <vector>

#include "machine/perf_model.hpp"
#include "octree/octant.hpp"
#include "sfc/curve.hpp"
#include "sfc/key.hpp"
#include "simmpi/comm.hpp"

namespace amr::simmpi {

/// The splitters every rank agreed on, in the three aligned views the
/// pipeline uses: octant keys (keys[0] is the root, i.e. minus infinity),
/// global cut positions (cuts[r] is the first global index of rank r), and
/// 128-bit curve-key codes for routing. Invariants (asserted by the fuzz
/// oracles): codes and cuts are non-decreasing, and for every rank the
/// number of elements dest_of_key routes to r equals cuts[r+1] - cuts[r].
struct SplitterSet {
  std::vector<octree::Octant> keys;  ///< size p
  std::vector<char> infinite;        ///< 1 for trailing ranks that own nothing
  std::vector<std::size_t> cuts;     ///< size p+1 global positions
  std::vector<sfc::CurveKey> codes;  ///< curve keys of `keys`; infinite -> supremum

  /// Destination rank of an element given its curve key: the last r with
  /// codes[r] <= key. Infinite splitters encode as key_supremum(), which no
  /// element key reaches, so those ranks receive nothing.
  [[nodiscard]] int dest_of_key(sfc::CurveKey key) const;
};

struct DistSortOptions {
  double tolerance = 0.0;
  int max_depth = octree::kMaxDepth;
  /// Staged splitter cap k <= p (paper §3.1, Eq. 2): at most this many
  /// splitter targets are refined per reduction round, bounding both the
  /// auxiliary storage and each reduction's payload at the cost of more
  /// rounds. 0 means no cap (Eq. 1 behavior). The resulting splitters are
  /// identical; only the collective schedule changes.
  int max_splitters_per_round = 0;
};

struct DistSortReport {
  int levels_used = 0;
  std::size_t global_elements = 0;
  std::size_t local_elements = 0;  ///< after the exchange
  double local_sort_seconds = 0.0;
  double splitter_seconds = 0.0;
  double exchange_seconds = 0.0;
  /// Splitter keys agreed on (index r = first octant of rank r).
  std::vector<octree::Octant> splitters;
  /// Full splitter state used for the exchange (keys + cuts + codes);
  /// identical on every rank.
  SplitterSet splitter_set;
};

/// Distributed TreeSort: on return `local` holds this rank's contiguous
/// SFC range of the global array.
DistSortReport dist_treesort(std::vector<octree::Octant>& local, Comm& comm,
                             const sfc::Curve& curve,
                             const DistSortOptions& options = {});

/// Distributed OptiPart (Alg. 3). Quality rounds are recorded in the
/// report of the bench that needs them via the returned trace.
struct DistOptiPartTrace {
  struct Round {
    int depth = 0;
    double w_max = 0.0;
    double c_max = 0.0;
    double predicted_time = 0.0;
  };
  std::vector<Round> rounds;
  /// Refinement depth / modeled Tp of the accepted partition. By Alg. 3's
  /// `while default >= current` rule this is the running minimum of the
  /// evaluated rounds, so chosen_time never exceeds rounds[0] (the >= p
  /// buckets equal-split baseline) -- a fuzz-oracle invariant.
  int chosen_depth = 0;
  double chosen_time = 0.0;
};

DistSortReport dist_optipart(std::vector<octree::Octant>& local, Comm& comm,
                             const sfc::Curve& curve, const machine::PerfModel& model,
                             int max_depth = octree::kMaxDepth,
                             DistOptiPartTrace* trace = nullptr);

}  // namespace amr::simmpi
