// PhaseScope: a traced pipeline phase with exact communication-byte
// attribution (DESIGN.md §11).
//
// Opens an AMR_SPAN for the scope and, when tracing is enabled, snapshots
// the rank's CostLedger at entry and emits a "<phase>/bytes" counter with
// the delta of total_bytes_sent() at exit. Because the ledger is the
// single source of truth for every byte simmpi moves, phases that tile
// all communication of a run satisfy an exact conservation law: per rank,
// the sum of the phase byte counters equals the final ledger total (the
// obs report test pins this).
//
// All names must be string literals (the recorder stores pointers); by
// convention the counter names are the span name + "/bytes" and
// "/msgs", which is what obs::aggregate_phases joins on. The message
// counter feeds the ts * M latency term of the validation report's
// predictions.
#pragma once

#include "obs/recorder.hpp"
#include "simmpi/comm.hpp"

namespace amr::simmpi {

class PhaseScope {
 public:
  PhaseScope(Comm& comm, const char* span_name, const char* bytes_counter_name,
             const char* msgs_counter_name = nullptr)
      : span_(span_name) {
    if (!obs::enabled()) return;
    comm_ = &comm;
    counter_name_ = bytes_counter_name;
    msgs_name_ = msgs_counter_name;
    start_bytes_ = comm.ledger().total_bytes_sent();
    start_msgs_ = comm.ledger().total_messages_sent();
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  /// Emit the byte counter and record the span now instead of at scope
  /// exit. Idempotent.
  void close() {
    if (comm_ != nullptr) {
      const std::uint64_t moved = comm_->ledger().total_bytes_sent() - start_bytes_;
      obs::counter(counter_name_, static_cast<std::int64_t>(moved));
      if (msgs_name_ != nullptr) {
        obs::counter(msgs_name_, static_cast<std::int64_t>(
                                     comm_->ledger().total_messages_sent() -
                                     start_msgs_));
      }
      span_.set_value(static_cast<std::int64_t>(moved));
      comm_ = nullptr;
    }
    span_.close();
  }

  ~PhaseScope() { close(); }

 private:
  Comm* comm_ = nullptr;
  const char* counter_name_ = nullptr;
  const char* msgs_name_ = nullptr;
  std::uint64_t start_bytes_ = 0;
  std::uint64_t start_msgs_ = 0;
  obs::SpanScope span_;  ///< declared last: destroyed first, after the counter
};

}  // namespace amr::simmpi
