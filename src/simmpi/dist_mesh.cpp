#include "simmpi/dist_mesh.hpp"

#include <algorithm>
#include <cassert>


#include "octree/search.hpp"
#include "partition/partition.hpp"
#include "simmpi/phase_trace.hpp"

namespace amr::simmpi {

namespace {

using octree::Octant;

constexpr double kUnit = 1.0 / static_cast<double>(std::uint32_t{1} << octree::kMaxDepth);

// Tags of the construction's three nonblocking all-to-all rounds. Ranks
// drift through the rounds without barriers, so each round needs its own
// tag to never match a slower peer's earlier-round messages.
constexpr int kTagMeshPush = 101;
constexpr int kTagMeshKeep = 102;
constexpr int kTagMeshIds = 103;

}  // namespace

mesh::LocalMesh dist_build_local_mesh(const std::vector<Octant>& local,
                                      const std::vector<Octant>& splitters,
                                      Comm& comm, const sfc::Curve& curve,
                                      DistMeshReport* report) {
  const int p = comm.size();
  const int me = comm.rank();
  const int faces = curve.dim() == 3 ? 6 : 4;
  DistMeshReport stats;

  mesh::LocalMesh out;
  out.rank = me;
  out.elements = local;
  PhaseScope push_phase(comm, "mesh.push", "mesh.push/bytes", "mesh.push/msgs");
  out.global_begin = comm.exscan_sum<std::uint64_t>(local.size());

  const auto owner_of = [&](const Octant& o) {
    return partition::owner_by_keys(splitters, o, curve);
  };

  // --- Round 1: push boundary leaves to every rank whose interval their
  // face regions touch. ---
  std::vector<std::vector<Octant>> push(static_cast<std::size_t>(p));
  {
    std::vector<std::vector<char>> already(static_cast<std::size_t>(p));
    for (auto& flags : already) flags.assign(local.size(), 0);
    for (std::size_t i = 0; i < local.size(); ++i) {
      for (int face = 0; face < faces; ++face) {
        Octant region;
        if (!local[i].face_neighbor(face, region)) continue;
        // Owners whose SFC interval the region touches: the region's
        // descendants are contiguous in curve order between its first and
        // last descendant cells (NOT its geometric corners).
        const int r_lo = owner_of(curve.first_descendant(region));
        const int r_hi = owner_of(curve.last_descendant(region));
        for (int q = r_lo; q <= r_hi; ++q) {
          if (q == me || already[static_cast<std::size_t>(q)][i] != 0) continue;
          already[static_cast<std::size_t>(q)][i] = 1;
          push[static_cast<std::size_t>(q)].push_back(local[i]);
          ++stats.candidates_sent;
        }
      }
    }
  }
  std::vector<std::vector<Octant>> candidates;
  Request push_round = comm.ialltoallv(push, candidates, kTagMeshPush);

  // Merged local + shell, sorted: the search structure for ghost
  // filtering and face enumeration near the rank boundary. Seed it with
  // the local copy while the candidate messages are in flight.
  std::vector<Octant> merged = local;
  merged.reserve(2 * local.size());
  push_round.wait();
  for (std::size_t q = 0; q < candidates.size(); ++q) {
    if (static_cast<int>(q) == me) continue;
    const auto& from_peer = candidates[q];
    stats.candidates_received += from_peer.size();
    merged.insert(merged.end(), from_peer.begin(), from_peer.end());
  }
  std::sort(merged.begin(), merged.end(), curve.comparator());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  push_phase.close();

  obs::SpanScope filter_span("mesh.filter");
  // --- Filter: a shell octant is a ghost iff it is face-adjacent to one
  // of our leaves. Also collect the faces while we are at it. ---
  const auto is_local = [&](const Octant& o) { return owner_of(o) == me; };
  std::vector<Octant> ghost_keys;
  std::vector<std::pair<std::size_t, Octant>> ghost_faces;  // (local idx, ghost key)
  std::vector<std::pair<std::size_t, std::size_t>> local_faces;  // local idx pairs
  {
    std::vector<std::size_t> neighbors;
    for (std::size_t i = 0; i < local.size(); ++i) {
      const std::size_t mi = static_cast<std::size_t>(
          std::lower_bound(merged.begin(), merged.end(), local[i],
                           curve.comparator()) -
          merged.begin());
      assert(merged[mi] == local[i]);
      for (int face = 0; face < faces; ++face) {
        Octant region;
        if (!local[i].face_neighbor(face, region)) {
          out.boundary_faces.push_back(
              {static_cast<std::uint32_t>(i),
               local[i].face_area(curve.dim()) *
                   (curve.dim() == 3 ? kUnit * kUnit : kUnit),
               0.5 * static_cast<double>(local[i].size()) * kUnit});
          continue;
        }
        neighbors.clear();
        octree::face_neighbor_leaves(merged, curve, mi, face, neighbors);
        for (const std::size_t mj : neighbors) {
          const Octant& nb = merged[mj];
          if (is_local(nb)) {
            // Store each owned-owned face once (from the curve-lower side).
            if (curve.compare(local[i], nb) < 0) {
              const std::size_t j = static_cast<std::size_t>(
                  std::lower_bound(local.begin(), local.end(), nb,
                                   curve.comparator()) -
                  local.begin());
              local_faces.emplace_back(i, j);
            }
          } else {
            ghost_faces.emplace_back(i, nb);
            ghost_keys.push_back(nb);
          }
        }
      }
    }
  }
  std::sort(ghost_keys.begin(), ghost_keys.end(), curve.comparator());
  ghost_keys.erase(std::unique(ghost_keys.begin(), ghost_keys.end()),
                   ghost_keys.end());
  stats.ghosts_kept = ghost_keys.size();

  // Ghost bookkeeping: slots in curve order, grouped channels.
  out.ghosts = ghost_keys;
  out.ghost_owner.resize(ghost_keys.size());
  out.ghost_global.assign(ghost_keys.size(), 0);
  std::vector<std::vector<Octant>> keep(static_cast<std::size_t>(p));
  for (std::size_t g = 0; g < ghost_keys.size(); ++g) {
    const int owner = owner_of(ghost_keys[g]);
    out.ghost_owner[g] = owner;
    keep[static_cast<std::size_t>(owner)].push_back(ghost_keys[g]);
  }
  // recv channels: peers ascending; slots of that owner's ghosts in curve
  // order (ghost_keys is already curve-sorted, so a linear pass groups
  // them in order).
  for (int q = 0; q < p; ++q) {
    if (q == me || keep[static_cast<std::size_t>(q)].empty()) continue;
    out.peers.push_back(q);
    out.recv_lists.emplace_back();
    out.send_lists.emplace_back();
    auto& slots = out.recv_lists.back();
    for (std::size_t g = 0; g < ghost_keys.size(); ++g) {
      if (out.ghost_owner[g] == q) slots.push_back(static_cast<std::uint32_t>(g));
    }
  }

  // --- Round 2: echo kept keys to their owners; owners reply with their
  // global indices and assemble send lists. ---
  filter_span.close();
  PhaseScope keep_phase(comm, "mesh.keep", "mesh.keep/bytes", "mesh.keep/msgs");
  std::vector<std::vector<Octant>> requests;
  comm.ialltoallv(keep, requests, kTagMeshKeep).wait();
  keep_phase.close();
  std::vector<std::vector<std::uint64_t>> reply(static_cast<std::size_t>(p));
  std::vector<std::vector<std::uint32_t>> send_for(static_cast<std::size_t>(p));
  for (int q = 0; q < p; ++q) {
    for (const Octant& wanted : requests[static_cast<std::size_t>(q)]) {
      const auto it = std::lower_bound(local.begin(), local.end(), wanted,
                                       curve.comparator());
      assert(it != local.end() && *it == wanted);
      const auto idx = static_cast<std::uint32_t>(it - local.begin());
      send_for[static_cast<std::size_t>(q)].push_back(idx);
      reply[static_cast<std::size_t>(q)].push_back(out.global_begin + idx);
    }
  }
  PhaseScope ids_phase(comm, "mesh.ids", "mesh.ids/bytes", "mesh.ids/msgs");
  std::vector<std::vector<std::uint64_t>> global_ids;
  Request id_round = comm.ialltoallv(reply, global_ids, kTagMeshIds);

  // Attach send lists to channels while the replies are in flight (they
  // depend only on send_for; add channels for pure-send peers).
  for (int q = 0; q < p; ++q) {
    if (send_for[static_cast<std::size_t>(q)].empty()) continue;
    const auto it = std::lower_bound(out.peers.begin(), out.peers.end(), q);
    std::size_t k;
    if (it != out.peers.end() && *it == q) {
      k = static_cast<std::size_t>(it - out.peers.begin());
    } else {
      k = static_cast<std::size_t>(it - out.peers.begin());
      out.peers.insert(it, q);
      out.send_lists.emplace(out.send_lists.begin() + static_cast<std::ptrdiff_t>(k));
      out.recv_lists.emplace(out.recv_lists.begin() + static_cast<std::ptrdiff_t>(k));
    }
    out.send_lists[k] = std::move(send_for[static_cast<std::size_t>(q)]);
  }
  id_round.wait();
  ids_phase.close();

  // Fill ghost_global from the owners' replies (same per-channel order).
  for (std::size_t k = 0; k < out.peers.size(); ++k) {
    const auto& ids = global_ids[static_cast<std::size_t>(out.peers[k])];
    assert(ids.size() == out.recv_lists[k].size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      out.ghost_global[out.recv_lists[k][i]] = static_cast<std::size_t>(ids[i]);
    }
  }

  // --- Faces with proper areas/distances. ---
  const auto slot_of = [&](const Octant& key) {
    const auto it = std::lower_bound(out.ghosts.begin(), out.ghosts.end(), key,
                                     curve.comparator());
    assert(it != out.ghosts.end() && *it == key);
    return static_cast<std::uint32_t>(it - out.ghosts.begin());
  };
  for (const auto& [i, j] : local_faces) {
    out.faces.push_back({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j),
                         false,
                         octree::shared_face_area(local[i], local[j], curve.dim()) *
                             (curve.dim() == 3 ? kUnit * kUnit : kUnit),
                         0.5 * (static_cast<double>(local[i].size()) +
                                static_cast<double>(local[j].size())) *
                             kUnit});
  }
  for (const auto& [i, key] : ghost_faces) {
    out.faces.push_back({static_cast<std::uint32_t>(i), slot_of(key), true,
                         octree::shared_face_area(local[i], key, curve.dim()) *
                             (curve.dim() == 3 ? kUnit * kUnit : kUnit),
                         0.5 * (static_cast<double>(local[i].size()) +
                                static_cast<double>(key.size())) *
                             kUnit});
  }

  out.build_overlap_split();
  if (report != nullptr) *report = stats;
  return out;
}

}  // namespace amr::simmpi
