// The baseline the paper compares against (§5.2): SFC partitioning via
// parallel SampleSort with Morton/Hilbert ordering, as implemented in
// Dendro [36]. Every rank sorts locally, contributes p-1 equally spaced
// sample keys, the gathered samples are sorted and p-1 global splitters
// picked, and an Alltoallv redistributes the elements. Comparison-based
// splitter selection is the structural difference from TreeSort's
// bucket-count selection; the partition it converges to is the ideal
// equal split (no communication-awareness).
#pragma once

#include <vector>

#include "octree/octant.hpp"
#include "sfc/curve.hpp"
#include "simmpi/comm.hpp"

namespace amr::simmpi {

struct SampleSortReport {
  std::size_t global_elements = 0;
  std::size_t local_elements = 0;
  double local_sort_seconds = 0.0;
  double splitter_seconds = 0.0;
  double exchange_seconds = 0.0;
};

/// Sort/partition the distributed array by sample-based splitter selection.
SampleSortReport dist_samplesort(std::vector<octree::Octant>& local, Comm& comm,
                                 const sfc::Curve& curve);

}  // namespace amr::simmpi
