#include "simmpi/runtime.hpp"

#include <stdexcept>
#include <thread>

#include "util/log.hpp"
#include "util/thread_id.hpp"

namespace amr::simmpi {

RunResult run_ranks(int num_ranks, const ContextOptions& options,
                    const std::function<void(Comm&)>& body) {
  if (num_ranks < 1) throw std::invalid_argument("run_ranks: num_ranks must be >= 1");

  Context context(num_ranks, options);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks));
  std::vector<std::string> stalls(static_cast<std::size_t>(num_ranks));

  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      // Stamp the thread with its rank so trace events and log lines
      // written inside the body carry the rank they acted for.
      const util::ScopedRank rank_scope(r);
      Comm comm(context, r);
      try {
        body(comm);
        context.mark_finished(r);
      } catch (const DeadlockError& e) {
        // Watchdog expiry: peers stalled in the same cohort unwind on
        // their own watchdogs, so recording and returning lets the join
        // below complete and the stall surface as one thrown diagnostic.
        stalls[static_cast<std::size_t>(r)] = e.what();
        context.mark_finished(r);
      } catch (const std::exception& e) {
        // A throwing rank cannot keep its collective schedule, and peers
        // would deadlock in the next barrier -- mirror MPI's abort-on-error
        // semantics and take the process down loudly.
        AMR_LOG_ERROR << "rank " << r << " aborted: " << e.what();
        std::terminate();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& stall : stalls) {
    if (!stall.empty()) throw DeadlockError(stall);
  }
  return RunResult{context.ledgers};
}

RunResult run_ranks(int num_ranks, const std::function<void(Comm&)>& body) {
  return run_ranks(num_ranks, ContextOptions::from_env(), body);
}

}  // namespace amr::simmpi
