#include "simmpi/runtime.hpp"

#include <stdexcept>
#include <thread>

#include "util/log.hpp"

namespace amr::simmpi {

RunResult run_ranks(int num_ranks, const std::function<void(Comm&)>& body) {
  if (num_ranks < 1) throw std::invalid_argument("run_ranks: num_ranks must be >= 1");

  Context context(num_ranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks));

  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(context, r);
      try {
        body(comm);
      } catch (const std::exception& e) {
        // A throwing rank cannot keep its collective schedule, and peers
        // would deadlock in the next barrier -- mirror MPI's abort-on-error
        // semantics and take the process down loudly.
        AMR_LOG_ERROR << "rank " << r << " aborted: " << e.what();
        std::terminate();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return RunResult{context.ledgers};
}

}  // namespace amr::simmpi
