#include "simmpi/dist_fem.hpp"

#include <cassert>

#include "simmpi/halo.hpp"
#include "simmpi/phase_trace.hpp"
#include "util/timer.hpp"

namespace amr::simmpi {

namespace {

/// Build the mesh's KernelPlan, recorded as the fem.plan span and charged
/// to report.plan_seconds -- the once-per-mesh setup cost the prebuilt-
/// plan overloads amortize away.
fem::KernelPlan timed_plan(const mesh::LocalMesh& mesh, DistFemReport& report) {
  const util::Timer timer;
  AMR_SPAN("fem.plan");
  fem::KernelPlan plan = fem::KernelPlan::build(mesh);
  report.plan_seconds = timer.seconds();
  return plan;
}

}  // namespace

DistFemReport dist_matvec_loop(const mesh::LocalMesh& mesh, Comm& comm, int iterations,
                               std::vector<double>& u) {
  DistFemReport report;
  const fem::KernelPlan plan = timed_plan(mesh, report);
  DistFemReport loop = dist_matvec_loop(mesh, plan, comm, iterations, u);
  loop.plan_seconds = report.plan_seconds;
  return loop;
}

DistFemReport dist_matvec_loop(const mesh::LocalMesh& mesh,
                               const fem::KernelPlan& plan, Comm& comm,
                               int iterations, std::vector<double>& u) {
  assert(u.size() == mesh.elements.size());
  assert(plan.num_rows() == mesh.elements.size());
  DistFemReport report;
  std::vector<double> ghosts(mesh.ghosts.size());
  std::vector<double> out(u.size());
  util::Timer timer;

  for (int it = 0; it < iterations; ++it) {
    timer.reset();
    {
      PhaseScope exchange_phase(comm, "matvec.exchange", "matvec.exchange/bytes",
                                "matvec.exchange/msgs");
      std::vector<std::vector<double>> send(static_cast<std::size_t>(comm.size()));
      for (std::size_t k = 0; k < mesh.peers.size(); ++k) {
        auto& payload = send[static_cast<std::size_t>(mesh.peers[k])];
        payload.reserve(mesh.send_lists[k].size());
        for (const std::uint32_t idx : mesh.send_lists[k]) {
          payload.push_back(u[idx]);
        }
        report.ghost_elements_sent += mesh.send_lists[k].size();
      }
      auto recv = comm.alltoallv(send);
      for (std::size_t k = 0; k < mesh.peers.size(); ++k) {
        const auto& payload = recv[static_cast<std::size_t>(mesh.peers[k])];
        assert(payload.size() == mesh.recv_lists[k].size());
        for (std::size_t i = 0; i < payload.size(); ++i) {
          ghosts[mesh.recv_lists[k][i]] = payload[i];
        }
      }
    }
    const double exchange = timer.seconds();
    report.exchange_seconds += exchange;
    report.exchange_wait_seconds += exchange;  // blocking: fully exposed

    timer.reset();
    {
      AMR_SPAN("matvec.compute");
      plan.apply(u, ghosts, out);
    }
    std::swap(u, out);
    report.compute_seconds += timer.seconds();
  }
  return report;
}

DistFemReport dist_matvec_loop_p2p(const mesh::LocalMesh& mesh, Comm& comm,
                                   int iterations, std::vector<double>& u) {
  DistFemReport report;
  const fem::KernelPlan plan = timed_plan(mesh, report);
  DistFemReport loop = dist_matvec_loop_p2p(mesh, plan, comm, iterations, u);
  loop.plan_seconds = report.plan_seconds;
  return loop;
}

DistFemReport dist_matvec_loop_p2p(const mesh::LocalMesh& mesh,
                                   const fem::KernelPlan& plan, Comm& comm,
                                   int iterations, std::vector<double>& u) {
  assert(u.size() == mesh.elements.size());
  assert(plan.num_rows() == mesh.elements.size());
  DistFemReport report;
  std::vector<double> ghosts(mesh.ghosts.size());
  std::vector<double> out(u.size());
  std::vector<double> payload;
  util::Timer timer;

  for (int it = 0; it < iterations; ++it) {
    timer.reset();
    {
      PhaseScope exchange_phase(comm, "matvec.exchange", "matvec.exchange/bytes",
                                "matvec.exchange/msgs");
      // Post all sends, then drain all receives: buffered sends cannot
      // deadlock, and per-channel FIFO keeps iterations ordered.
      for (std::size_t k = 0; k < mesh.peers.size(); ++k) {
        if (mesh.send_lists[k].empty()) continue;
        payload.clear();
        payload.reserve(mesh.send_lists[k].size());
        for (const std::uint32_t idx : mesh.send_lists[k]) payload.push_back(u[idx]);
        comm.send<double>(payload, mesh.peers[k], /*tag=*/0);
        report.ghost_elements_sent += payload.size();
      }
      for (std::size_t k = 0; k < mesh.peers.size(); ++k) {
        if (mesh.recv_lists[k].empty()) continue;
        const std::vector<double> incoming =
            comm.recv<double>(mesh.peers[k], /*tag=*/0);
        assert(incoming.size() == mesh.recv_lists[k].size());
        for (std::size_t i = 0; i < incoming.size(); ++i) {
          ghosts[mesh.recv_lists[k][i]] = incoming[i];
        }
      }
    }
    const double exchange = timer.seconds();
    report.exchange_seconds += exchange;
    report.exchange_wait_seconds += exchange;  // blocking: fully exposed

    timer.reset();
    {
      AMR_SPAN("matvec.compute");
      plan.apply(u, ghosts, out);
    }
    std::swap(u, out);
    report.compute_seconds += timer.seconds();
  }
  return report;
}

DistFemReport dist_matvec_loop_overlapped(const mesh::LocalMesh& mesh, Comm& comm,
                                          int iterations, std::vector<double>& u) {
  DistFemReport report;
  const fem::KernelPlan plan = timed_plan(mesh, report);
  DistFemReport loop = dist_matvec_loop_overlapped(mesh, plan, comm, iterations, u);
  loop.plan_seconds = report.plan_seconds;
  return loop;
}

DistFemReport dist_matvec_loop_overlapped(const mesh::LocalMesh& mesh,
                                          const fem::KernelPlan& plan, Comm& comm,
                                          int iterations, std::vector<double>& u) {
  assert(u.size() == mesh.elements.size());
  assert(mesh.has_overlap_split());
  assert(plan.num_rows() == mesh.elements.size());
  DistFemReport report;
  std::vector<double> ghosts(mesh.ghosts.size());
  std::vector<double> out(u.size());
  HaloExchange halo(mesh);
  util::Timer timer;

  for (int it = 0; it < iterations; ++it) {
    // Phase 1: put the whole halo in flight (receives posted first so a
    // matched wait can complete as soon as the peer's send lands; isend is
    // buffered and cannot stall -- see simmpi/halo.hpp).
    timer.reset();
    PhaseScope post_phase(comm, "matvec.post", "matvec.post/bytes",
                          "matvec.post/msgs");
    report.ghost_elements_sent += halo.post(comm, u, ghosts);
    post_phase.close();
    report.post_seconds += timer.seconds();

    // Phase 2: interior rows read no ghost values -- stream them on the
    // shared pool while the messages travel.
    timer.reset();
    {
      AMR_SPAN("matvec.interior");
      AMR_SPAN("fem.interior");
      plan.apply_interior(u, out);
    }
    report.interior_compute_seconds += timer.seconds();

    // Phase 3: the exposed part of the exchange. Contiguous peers are
    // already in place; only irregular recv lists need the scatter pass.
    timer.reset();
    {
      AMR_SPAN("matvec.wait");
      halo.finish(ghosts);
    }
    report.exchange_wait_seconds += timer.seconds();

    // Phase 4: boundary rows, now that the halo is current.
    timer.reset();
    {
      AMR_SPAN("matvec.boundary");
      AMR_SPAN("fem.tail");
      plan.apply_tail(u, ghosts, out);
    }
    report.boundary_compute_seconds += timer.seconds();
    std::swap(u, out);
  }
  report.compute_seconds =
      report.interior_compute_seconds + report.boundary_compute_seconds;
  report.exchange_seconds = report.post_seconds + report.exchange_wait_seconds;
  return report;
}

}  // namespace amr::simmpi
