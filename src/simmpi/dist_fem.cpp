#include "simmpi/dist_fem.hpp"

#include <cassert>

#include "fem/laplacian.hpp"
#include "util/timer.hpp"

namespace amr::simmpi {

DistFemReport dist_matvec_loop(const mesh::LocalMesh& mesh, Comm& comm, int iterations,
                               std::vector<double>& u) {
  assert(u.size() == mesh.elements.size());
  DistFemReport report;
  std::vector<double> ghosts(mesh.ghosts.size());
  std::vector<double> out(u.size());
  util::Timer timer;

  for (int it = 0; it < iterations; ++it) {
    timer.reset();
    std::vector<std::vector<double>> send(static_cast<std::size_t>(comm.size()));
    for (std::size_t k = 0; k < mesh.peers.size(); ++k) {
      auto& payload = send[static_cast<std::size_t>(mesh.peers[k])];
      payload.reserve(mesh.send_lists[k].size());
      for (const std::uint32_t idx : mesh.send_lists[k]) {
        payload.push_back(u[idx]);
      }
      report.ghost_elements_sent += mesh.send_lists[k].size();
    }
    auto recv = comm.alltoallv(send);
    for (std::size_t k = 0; k < mesh.peers.size(); ++k) {
      const auto& payload = recv[static_cast<std::size_t>(mesh.peers[k])];
      assert(payload.size() == mesh.recv_lists[k].size());
      for (std::size_t i = 0; i < payload.size(); ++i) {
        ghosts[mesh.recv_lists[k][i]] = payload[i];
      }
    }
    report.exchange_seconds += timer.seconds();

    timer.reset();
    fem::apply_local(mesh, u, ghosts, out);
    std::swap(u, out);
    report.compute_seconds += timer.seconds();
  }
  return report;
}

DistFemReport dist_matvec_loop_p2p(const mesh::LocalMesh& mesh, Comm& comm,
                                   int iterations, std::vector<double>& u) {
  assert(u.size() == mesh.elements.size());
  DistFemReport report;
  std::vector<double> ghosts(mesh.ghosts.size());
  std::vector<double> out(u.size());
  std::vector<double> payload;
  util::Timer timer;

  for (int it = 0; it < iterations; ++it) {
    timer.reset();
    // Post all sends, then drain all receives: buffered sends cannot
    // deadlock, and per-channel FIFO keeps iterations ordered.
    for (std::size_t k = 0; k < mesh.peers.size(); ++k) {
      if (mesh.send_lists[k].empty()) continue;
      payload.clear();
      payload.reserve(mesh.send_lists[k].size());
      for (const std::uint32_t idx : mesh.send_lists[k]) payload.push_back(u[idx]);
      comm.send<double>(payload, mesh.peers[k], /*tag=*/0);
      report.ghost_elements_sent += payload.size();
    }
    for (std::size_t k = 0; k < mesh.peers.size(); ++k) {
      if (mesh.recv_lists[k].empty()) continue;
      const std::vector<double> incoming = comm.recv<double>(mesh.peers[k], /*tag=*/0);
      assert(incoming.size() == mesh.recv_lists[k].size());
      for (std::size_t i = 0; i < incoming.size(); ++i) {
        ghosts[mesh.recv_lists[k][i]] = incoming[i];
      }
    }
    report.exchange_seconds += timer.seconds();

    timer.reset();
    fem::apply_local(mesh, u, ghosts, out);
    std::swap(u, out);
    report.compute_seconds += timer.seconds();
  }
  return report;
}

}  // namespace amr::simmpi
