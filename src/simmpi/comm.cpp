#include "simmpi/comm.hpp"

#include <cstdlib>
#include <sstream>
#include <thread>

#include "obs/telemetry.hpp"

namespace amr::simmpi {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

std::int64_t env_i64(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoll(value, nullptr, 10);
}

}  // namespace

ContextOptions ContextOptions::from_env() {
  ContextOptions options;
  options.perturb_seed = env_u64("AMR_SIMMPI_PERTURB_SEED", 0);
  options.perturb_max_delay_us =
      static_cast<int>(env_i64("AMR_SIMMPI_PERTURB_DELAY_US", 50));
  options.watchdog =
      std::chrono::milliseconds(env_i64("AMR_SIMMPI_WATCHDOG_MS", 120000));
  return options;
}

Context::Context(int size, ContextOptions options)
    : slots(static_cast<std::size_t>(size), nullptr),
      counts(static_cast<std::size_t>(size), 0),
      ledgers(static_cast<std::size_t>(size)),
      size_(size),
      options_(options),
      activity_(new std::atomic<std::uint64_t>[static_cast<std::size_t>(size)]) {
  for (int r = 0; r < size; ++r) {
    activity_[static_cast<std::size_t>(r)].store(kBody, std::memory_order_relaxed);
  }
  if (options_.perturb_seed != 0) {
    perturb_rngs_.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      perturb_rngs_.push_back(
          util::make_rng(options_.perturb_seed, static_cast<std::uint64_t>(r)));
    }
  }
}

void Context::maybe_perturb(int rank) {
  if (options_.perturb_seed == 0) return;
  util::Rng& rng = perturb_rngs_[static_cast<std::size_t>(rank)];
  const std::uint64_t draw = rng();
  switch (draw & 3U) {
    case 0:  // proceed unperturbed
      break;
    case 1:
      std::this_thread::yield();
      break;
    default: {
      const int max_us = options_.perturb_max_delay_us > 0 ? options_.perturb_max_delay_us : 1;
      std::this_thread::sleep_for(std::chrono::microseconds(
          1 + static_cast<int>((draw >> 2) % static_cast<std::uint64_t>(max_us))));
      break;
    }
  }
}

std::string Context::dump_state() {
  std::ostringstream out;
  for (int r = 0; r < size_; ++r) {
    const std::uint64_t a =
        activity_[static_cast<std::size_t>(r)].load(std::memory_order_relaxed);
    out << "  rank " << r << ": ";
    switch (a & 7U) {
      case kBody: out << "running (not in a blocking primitive)"; break;
      case kBarrier: out << "waiting at barrier"; break;
      case kRecvWait:
        out << "blocked in recv(src=" << static_cast<int>((a >> 3) & 0xffffU)
            << ", tag=" << static_cast<int>((a >> 19) & 0xffffU) << ")";
        break;
      case kFinished: out << "finished (returned from rank body)"; break;
      default: out << "unknown"; break;
    }
    out << "\n";
  }
  {
    std::lock_guard<std::mutex> lock(mail_mutex_);
    bool any = false;
    for (const auto& [channel, queue] : mailboxes_) {
      if (queue.empty()) continue;
      if (!any) {
        out << "  undelivered mailboxes:\n";
        any = true;
      }
      out << "    src=" << std::get<0>(channel) << " dst=" << std::get<1>(channel)
          << " tag=" << std::get<2>(channel) << ": " << queue.size()
          << " message(s)\n";
    }
    if (!any) out << "  no undelivered point-to-point messages\n";
  }
  return out.str();
}

void Context::throw_deadlock(const char* where, int rank) {
  std::ostringstream out;
  out << "simmpi watchdog: rank " << rank << " stalled in " << where << " for "
      << options_.watchdog.count() << " ms; cohort state:\n"
      << dump_state() << obs::flight_dump();
  throw DeadlockError(out.str());
}

void Context::post(int src, int dst, int tag, std::vector<std::byte> payload) {
  maybe_perturb(src);
  {
    std::lock_guard<std::mutex> lock(mail_mutex_);
    mailboxes_[{src, dst, tag}].push_back(std::move(payload));
  }
  mail_cv_.notify_all();
}

std::vector<std::byte> Context::take(int src, int dst, int tag) {
  maybe_perturb(dst);
  set_activity(dst, kRecvWait, src, tag);
  std::unique_lock<std::mutex> lock(mail_mutex_);
  const std::tuple<int, int, int> channel{src, dst, tag};
  const auto ready = [&] {
    const auto it = mailboxes_.find(channel);
    return it != mailboxes_.end() && !it->second.empty();
  };
  if (options_.watchdog.count() <= 0) {
    mail_cv_.wait(lock, ready);
  } else if (!mail_cv_.wait_for(lock, options_.watchdog, ready)) {
    lock.unlock();  // dump_state() re-takes mail_mutex_
    throw_deadlock("recv", dst);
  }
  auto& queue = mailboxes_[channel];
  std::vector<std::byte> payload = std::move(queue.front());
  queue.pop_front();
  set_activity(dst, kBody);
  return payload;
}

bool Context::try_take(int src, int dst, int tag, std::vector<std::byte>& out) {
  maybe_perturb(dst);
  std::lock_guard<std::mutex> lock(mail_mutex_);
  const auto it = mailboxes_.find({src, dst, tag});
  if (it == mailboxes_.end() || it->second.empty()) return false;
  out = std::move(it->second.front());
  it->second.pop_front();
  return true;
}

bool Request::done() const {
  for (const Op& op : ops_) {
    if (!op.complete) return false;
  }
  return true;
}

void Request::complete_op(Op& op, std::vector<std::byte>&& payload) {
  if (op.ledger != nullptr) op.ledger->record_p2p_recv(payload.size());
  if (op.deliver) op.deliver(std::move(payload));
  op.complete = true;
}

bool Request::test() {
  for (Op& op : ops_) {
    if (op.complete) continue;
    std::vector<std::byte> payload;
    if (!op.context->try_take(op.src, op.dst, op.tag, payload)) return false;
    complete_op(op, std::move(payload));
  }
  return true;
}

void Request::wait() {
  for (Op& op : ops_) {
    if (op.complete) continue;
    AMR_SPAN_NAMED(span, "simmpi.wait");
    std::vector<std::byte> payload = op.context->take(op.src, op.dst, op.tag);
    span.set_value(static_cast<std::int64_t>(payload.size()));
    complete_op(op, std::move(payload));
  }
}

void wait_all(std::span<Request> requests) {
  for (Request& r : requests) r.wait();
}

bool test_all(std::span<Request> requests) {
  bool all = true;
  for (Request& r : requests) all = r.test() && all;
  return all;
}

void Context::barrier(int rank) {
  maybe_perturb(rank);
  set_activity(rank, kBarrier);
  std::unique_lock<std::mutex> lock(mutex_);
  const bool my_sense = sense_;
  if (++arrived_ == size_) {
    arrived_ = 0;
    sense_ = !sense_;
    cv_.notify_all();
    set_activity(rank, kBody);
    return;
  }
  const auto released = [&] { return sense_ != my_sense; };
  if (options_.watchdog.count() <= 0) {
    cv_.wait(lock, released);
  } else if (!cv_.wait_for(lock, options_.watchdog, released)) {
    lock.unlock();
    throw_deadlock("barrier", rank);
  }
  set_activity(rank, kBody);
}

}  // namespace amr::simmpi
