#include "simmpi/comm.hpp"

namespace amr::simmpi {

Context::Context(int size)
    : slots(static_cast<std::size_t>(size), nullptr),
      counts(static_cast<std::size_t>(size), 0),
      ledgers(static_cast<std::size_t>(size)),
      size_(size) {}

void Context::post(int src, int dst, int tag, std::vector<std::byte> payload) {
  {
    std::lock_guard<std::mutex> lock(mail_mutex_);
    mailboxes_[{src, dst, tag}].push_back(std::move(payload));
  }
  mail_cv_.notify_all();
}

std::vector<std::byte> Context::take(int src, int dst, int tag) {
  std::unique_lock<std::mutex> lock(mail_mutex_);
  const std::tuple<int, int, int> channel{src, dst, tag};
  mail_cv_.wait(lock, [&] {
    const auto it = mailboxes_.find(channel);
    return it != mailboxes_.end() && !it->second.empty();
  });
  auto& queue = mailboxes_[channel];
  std::vector<std::byte> payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

void Context::barrier() {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool my_sense = sense_;
  if (++arrived_ == size_) {
    arrived_ = 0;
    sense_ = !sense_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return sense_ != my_sense; });
}

}  // namespace amr::simmpi
