// Distributed mesh construction: every rank builds its LocalMesh from its
// own contiguous SFC range plus the agreed splitter keys -- no rank ever
// sees the global tree (unlike mesh::build_local_meshes, which is the
// sequential engine's shortcut). This is how Dendro-class AMR frameworks
// actually operate, and the shape of §5.5's ghost/halo construction.
//
// Protocol (two message rounds over simmpi):
//  1. Boundary push: every rank scans its leaves; a leaf whose same-level
//     face region extends beyond the rank's key interval is sent to every
//     rank whose interval that region touches (the owner span of the
//     region's extreme descendants -- contiguous in rank space). Both
//     sides push, so each rank receives a superset of its ghost layer.
//  2. Keep-list reply: the receiver keeps exactly the candidates that are
//     face-adjacent to one of its own leaves (checked against the merged
//     local+shell tree) and echoes the kept keys to their owners, from
//     which the owners assemble their send lists.
//
// Channels are ordered by octant key on both sides, so payloads exchange
// positionally, exactly like the mesh:: construction orders by global
// index. The result is verified in the tests to match the sequential
// engine's LocalMesh element-for-element, face-for-face.
#pragma once

#include <vector>

#include "mesh/mesh.hpp"
#include "simmpi/comm.hpp"

namespace amr::simmpi {

struct DistMeshReport {
  std::size_t candidates_sent = 0;
  std::size_t candidates_received = 0;
  std::size_t ghosts_kept = 0;
};

/// Build this rank's LocalMesh from its local (sorted, contiguous) element
/// range and the splitter keys all ranks agreed on (e.g. from
/// dist_treesort's report). `local` must be exactly the rank's range.
mesh::LocalMesh dist_build_local_mesh(const std::vector<octree::Octant>& local,
                                      const std::vector<octree::Octant>& splitters,
                                      Comm& comm, const sfc::Curve& curve,
                                      DistMeshReport* report = nullptr);

}  // namespace amr::simmpi
