#include "io/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "util/log.hpp"

namespace amr::io {

namespace {

constexpr std::uint32_t kMagic = 0x414d5250;  // "AMRP"
// v2 added the endianness tag (was a zero `reserved` word in v1, so v1
// files fail the version check rather than being misread).
constexpr std::uint32_t kVersion = 2;
// Written in native byte order; reads back as 0x04030201 under a reader of
// the opposite endianness.
constexpr std::uint32_t kEndianTag = 0x01020304;
constexpr std::uint32_t kEndianTagSwapped = 0x04030201;

struct Header {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t dim = 3;
  std::uint32_t endian = kEndianTag;
  std::uint64_t tree_count = 0;
  std::uint64_t offsets_count = 0;
  std::uint64_t field_count = 0;
};

constexpr std::uint32_t byteswap32(std::uint32_t v) {
  return ((v & 0x000000ffU) << 24) | ((v & 0x0000ff00U) << 8) |
         ((v & 0x00ff0000U) >> 8) | ((v & 0xff000000U) >> 24);
}

template <typename T>
void append(std::vector<std::byte>& out, const T* data, std::size_t count) {
  const std::size_t bytes = count * sizeof(T);
  const std::size_t at = out.size();
  out.resize(at + bytes);
  if (bytes > 0) std::memcpy(out.data() + at, data, bytes);
}

template <typename T>
bool take(std::span<const std::byte>& in, T* data, std::size_t count) {
  const std::size_t bytes = count * sizeof(T);
  if (in.size() < bytes) return false;
  if (bytes > 0) std::memcpy(data, in.data(), bytes);
  in = in.subspan(bytes);
  return true;
}

// Octants are stored field-by-field (not as the in-memory struct) so the
// file layout does not depend on padding.
struct PackedOctant {
  std::uint32_t x;
  std::uint32_t y;
  std::uint32_t z;
  std::uint32_t level;
};

}  // namespace

std::vector<std::byte> checkpoint_to_bytes(const Checkpoint& checkpoint) {
  Header header;
  header.dim = static_cast<std::uint32_t>(checkpoint.dim);
  header.tree_count = checkpoint.tree.size();
  header.offsets_count = checkpoint.part.offsets.size();
  header.field_count = checkpoint.field.size();

  std::vector<std::byte> out;
  append(out, &header, 1);
  std::vector<PackedOctant> packed;
  packed.reserve(checkpoint.tree.size());
  for (const octree::Octant& o : checkpoint.tree) {
    packed.push_back({o.x, o.y, o.z, o.level});
  }
  append(out, packed.data(), packed.size());
  std::vector<std::uint64_t> offsets(checkpoint.part.offsets.begin(),
                                     checkpoint.part.offsets.end());
  append(out, offsets.data(), offsets.size());
  append(out, checkpoint.field.data(), checkpoint.field.size());
  return out;
}

std::optional<Checkpoint> checkpoint_from_bytes(std::span<const std::byte> bytes) {
  Header header;
  if (!take(bytes, &header, 1)) return std::nullopt;
  if (header.magic == byteswap32(kMagic) || header.endian == kEndianTagSwapped) {
    AMR_LOG_WARN << "checkpoint written on a machine of the opposite byte order "
                    "(endianness tag 0x" << std::hex << header.endian << std::dec
                 << "); refusing to decode";
    return std::nullopt;
  }
  if (header.magic != kMagic) return std::nullopt;
  if (header.version != kVersion) {
    AMR_LOG_WARN << "checkpoint format version " << header.version
                 << " does not match reader version " << kVersion;
    return std::nullopt;
  }
  if (header.endian != kEndianTag) {
    AMR_LOG_WARN << "checkpoint endianness tag 0x" << std::hex << header.endian
                 << std::dec << " is neither native nor swapped; corrupt header";
    return std::nullopt;
  }
  if (header.dim != 2 && header.dim != 3) return std::nullopt;

  Checkpoint checkpoint;
  checkpoint.dim = static_cast<int>(header.dim);

  std::vector<PackedOctant> packed(header.tree_count);
  if (!take(bytes, packed.data(), packed.size())) return std::nullopt;
  checkpoint.tree.reserve(packed.size());
  for (const PackedOctant& o : packed) {
    if (o.level > static_cast<std::uint32_t>(octree::kMaxDepth)) return std::nullopt;
    checkpoint.tree.push_back(
        {o.x, o.y, o.z, static_cast<std::uint8_t>(o.level)});
  }

  std::vector<std::uint64_t> offsets(header.offsets_count);
  if (!take(bytes, offsets.data(), offsets.size())) return std::nullopt;
  checkpoint.part.offsets.assign(offsets.begin(), offsets.end());
  if (!offsets.empty() &&
      (offsets.front() != 0 || offsets.back() != header.tree_count)) {
    return std::nullopt;
  }

  checkpoint.field.resize(header.field_count);
  if (!take(bytes, checkpoint.field.data(), checkpoint.field.size())) {
    return std::nullopt;
  }
  if (!checkpoint.field.empty() && checkpoint.field.size() != checkpoint.tree.size()) {
    return std::nullopt;
  }
  if (!bytes.empty()) return std::nullopt;  // trailing garbage
  return checkpoint;
}

bool save_checkpoint(const std::string& path, const Checkpoint& checkpoint) {
  const auto bytes = checkpoint_to_bytes(checkpoint);
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    AMR_LOG_WARN << "could not open " << path << " for writing";
    return false;
  }
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(file);
}

std::optional<Checkpoint> load_checkpoint(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return std::nullopt;
  const std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  file.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!file) return std::nullopt;
  return checkpoint_from_bytes(bytes);
}

}  // namespace amr::io
