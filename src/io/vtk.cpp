#include "io/vtk.hpp"

#include <array>
#include <fstream>
#include <sstream>

#include "util/log.hpp"

namespace amr::io {

namespace {

using Vertex = std::array<std::uint32_t, 3>;

constexpr double kUnit = 1.0 / static_cast<double>(std::uint32_t{1} << octree::kMaxDepth);

}  // namespace

std::string vtk_to_string(std::span<const octree::Octant> tree,
                          std::span<const CellField> fields) {
  for (const CellField& field : fields) {
    if (field.values.size() != tree.size()) {
      AMR_LOG_WARN << "vtk field " << field.name << " has " << field.values.size()
                   << " values for " << tree.size() << " cells";
      return {};
    }
  }

  // Deduplicate the 8 corner vertices of every voxel.
  std::map<Vertex, std::size_t> vertex_ids;
  std::vector<Vertex> vertices;
  std::vector<std::array<std::size_t, 8>> cells;
  cells.reserve(tree.size());
  for (const octree::Octant& o : tree) {
    const std::uint32_t s = o.size();
    std::array<std::size_t, 8> cell{};
    // VTK_VOXEL ordering: x fastest, then y, then z.
    int corner = 0;
    for (std::uint32_t dz = 0; dz <= 1; ++dz) {
      for (std::uint32_t dy = 0; dy <= 1; ++dy) {
        for (std::uint32_t dx = 0; dx <= 1; ++dx) {
          const Vertex v{o.x + dx * s, o.y + dy * s, o.z + dz * s};
          auto [it, inserted] = vertex_ids.emplace(v, vertices.size());
          if (inserted) vertices.push_back(v);
          cell[static_cast<std::size_t>(corner++)] = it->second;
        }
      }
    }
    cells.push_back(cell);
  }

  std::ostringstream os;
  os << "# vtk DataFile Version 3.0\n";
  os << "amrpart linear octree\n";
  os << "ASCII\n";
  os << "DATASET UNSTRUCTURED_GRID\n";
  os << "POINTS " << vertices.size() << " double\n";
  for (const Vertex& v : vertices) {
    os << v[0] * kUnit << ' ' << v[1] * kUnit << ' ' << v[2] * kUnit << '\n';
  }
  os << "CELLS " << cells.size() << ' ' << cells.size() * 9 << '\n';
  for (const auto& cell : cells) {
    os << 8;
    for (const std::size_t id : cell) os << ' ' << id;
    os << '\n';
  }
  os << "CELL_TYPES " << cells.size() << '\n';
  for (std::size_t i = 0; i < cells.size(); ++i) os << "11\n";  // VTK_VOXEL

  if (!fields.empty()) {
    os << "CELL_DATA " << cells.size() << '\n';
    for (const CellField& field : fields) {
      os << "SCALARS " << field.name << " double 1\n";
      os << "LOOKUP_TABLE default\n";
      for (const double v : field.values) os << v << '\n';
    }
  }
  return os.str();
}

bool write_vtk(const std::string& path, std::span<const octree::Octant> tree,
               std::span<const CellField> fields) {
  const std::string contents = vtk_to_string(tree, fields);
  if (contents.empty() && !tree.empty()) return false;
  std::ofstream file(path);
  if (!file) {
    AMR_LOG_WARN << "could not open " << path << " for writing";
    return false;
  }
  file << contents;
  return static_cast<bool>(file);
}

}  // namespace amr::io
