// Binary checkpointing of octrees, partitions, and solution fields.
//
// AMR runs are long; production frameworks checkpoint the mesh + partition
// + fields and restart from them. Format: a small header (magic, version,
// endianness tag, dim, counts) followed by raw native-endian arrays. The
// payload still uses the writer's byte order (these are restart files, not
// interchange files), but the header's 0x01020304 endianness tag makes a
// reader on a machine of the opposite byte order -- or one fed a file from
// such a machine -- fail loudly at load instead of silently decoding
// garbage coordinates. Version mismatches are rejected the same way.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "octree/octant.hpp"
#include "partition/partition.hpp"

namespace amr::io {

struct Checkpoint {
  int dim = 3;
  std::vector<octree::Octant> tree;
  partition::Partition part;             ///< empty offsets if not saved
  std::vector<double> field;             ///< empty if not saved

  friend bool operator==(const Checkpoint&, const Checkpoint&) = default;
};

/// Serialize to a byte buffer (exposed for tests).
[[nodiscard]] std::vector<std::byte> checkpoint_to_bytes(const Checkpoint& checkpoint);

/// Parse a byte buffer; std::nullopt on malformed input (wrong magic,
/// truncation, inconsistent counts).
[[nodiscard]] std::optional<Checkpoint> checkpoint_from_bytes(
    std::span<const std::byte> bytes);

/// Write / read a checkpoint file. Readers validate sizes and magic.
bool save_checkpoint(const std::string& path, const Checkpoint& checkpoint);
[[nodiscard]] std::optional<Checkpoint> load_checkpoint(const std::string& path);

}  // namespace amr::io
