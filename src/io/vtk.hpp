// Legacy-VTK export of linear octrees.
//
// Writes an ASCII unstructured grid of voxel cells (one per leaf) with
// per-cell scalar fields -- refinement level, owning rank, and any
// user-supplied solution field -- so meshes, partitions and Poisson
// solutions can be inspected in ParaView/VisIt. Vertices are deduplicated
// across cells.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "octree/octant.hpp"

namespace amr::io {

struct CellField {
  std::string name;
  std::vector<double> values;  ///< one per leaf
};

/// Write `tree` as a legacy VTK unstructured grid. Every field must have
/// one value per leaf. Returns false (and logs) on I/O failure or size
/// mismatch.
bool write_vtk(const std::string& path, std::span<const octree::Octant> tree,
               std::span<const CellField> fields);

/// Serialize to a string (the file contents); useful for tests.
[[nodiscard]] std::string vtk_to_string(std::span<const octree::Octant> tree,
                                        std::span<const CellField> fields);

}  // namespace amr::io
