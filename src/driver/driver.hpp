// amr::Driver -- the dynamic AMR time-stepping loop with repartitioning in
// the loop (DESIGN.md §14; ROADMAP item 1).
//
// The paper's premise is meshes that *change*: "applications requiring
// repeated partitioning, such as Adaptive Mesh Refinement" (§1). This
// driver closes that loop. Every step:
//
//   1. estimate  -- the scenario's face-sampled error indicator per leaf
//   2. flag      -- refine where err > refine_threshold; count consecutive
//                   coarsen requests (err < coarsen_threshold) per leaf and
//                   only derefine a sibling group once every child has
//                   asked for deref_count straight steps (the Athena
//                   `deref_count` hysteresis, SNIPPETS.md §1-2, which stops
//                   newly refined cells from collapsing right back)
//   3. adapt     -- coarsen eligible groups, refine flagged leaves,
//                   re-establish the 2:1 balance; all three preserve curve
//                   order, so the adapted tree is itself a sorted array
//   4. diff      -- octree::diff_sorted turns (old, new) into a DeltaStream
//                   and the stream is split per rank along the previous cuts
//   5. repartition -- dist_treesort_incremental / dist_optipart_incremental
//                   splice the delta by sorted-merge and decide keep-vs-move
//                   with the migration-aware objective (or, on the
//                   from-scratch route, re-sort and re-partition from
//                   nothing -- bit-identical result, the fuzz-pinned oracle)
//   6. solve     -- a distributed application epoch on the new partition
//                   (dist_build_local_mesh + app::Application::run_epoch;
//                   the default matvec app is dist_matvec_loop_overlapped)
//   7. account   -- per-step StepMetrics: adaptation sizes, delta size,
//                   route taken, keep/move decision, migrated elements,
//                   partition quality, Eq. 3 prediction, wall times
//
// The adaptation runs on the global tree (the driver is a campaign
// harness; simmpi ranks are threads in this process), while sorting,
// partitioning, meshing and the solve run genuinely distributed. Step 0
// establishes the first epoch from scratch on both routes, so campaigns
// with the same scenario and options differ only in how steps >= 1
// repartition.
#pragma once

#include <cstddef>
#include <fstream>
#include <memory>
#include <span>
#include <vector>

#include "driver/scenario.hpp"
#include "machine/perf_model.hpp"
#include "obs/metrics.hpp"
#include "octree/balance.hpp"
#include "octree/incremental.hpp"
#include "octree/octant.hpp"
#include "sfc/curve.hpp"
#include "sfc/key.hpp"
#include "simmpi/dist_treesort.hpp"

namespace amr::app {
class Application;
}

namespace amr::driver {

/// How each step's repartition reaches the new epoch. Both routes produce
/// the same global element order; with migration_cost_factor == 0 they are
/// bit-identical per rank and per splitter (driver_test + fuzz pin this).
enum class RepartitionRoute {
  kIncremental,  ///< sorted-merge splice + migration-aware refresh (PR 6)
  kFromScratch,  ///< full re-sort + fresh partition every step
};

enum class Partitioner {
  kOptiPart,    ///< Alg. 3 model-guided cuts
  kEqualSplit,  ///< tolerance-0 distributed TreeSort (the paper's default)
};

[[nodiscard]] std::string to_string(RepartitionRoute route);
[[nodiscard]] std::string to_string(Partitioner partitioner);

struct DriverOptions {
  int ranks = 8;
  int steps = 8;
  /// Refinement band: leaves refine up to max_level and never coarsen
  /// below min_level (which is also the starting uniform level).
  int max_level = 6;
  int min_level = 3;
  /// Campaign time reached by the last step: t advances linearly from 0 to
  /// t_end over `steps`. 1.0 sweeps the scenario's whole trajectory; CFL-
  /// realistic campaigns (the feature moves ~1 fine cell per step, the
  /// regime incremental repartitioning targets) use a partial sweep --
  /// e.g. the bench's campaigns -- since per-step change tracks feature
  /// speed x step count, not wall-clock ambition.
  double t_end = 1.0;
  double refine_threshold = 0.10;
  double coarsen_threshold = 0.02;
  /// Hysteresis: steps a leaf must consecutively ask to coarsen before its
  /// sibling group may merge (Athena's deref_count).
  int deref_count = 2;
  RepartitionRoute route = RepartitionRoute::kIncremental;
  Partitioner partitioner = Partitioner::kOptiPart;
  /// Distributed solve iterations (matvec sweeps / V-cycles) per step; 0
  /// skips mesh build + solve (partition-only campaigns, e.g. the bench's
  /// route comparison).
  int matvec_iterations = 4;
  /// The application kernel the solve epoch runs (app::Application);
  /// nullptr means app::matvec_app(), the pre-refactor behavior bit for
  /// bit.
  const app::Application* application = nullptr;
  /// Incremental-route knobs (merge/fallback crossover, sort options).
  simmpi::DistIncrementalOptions incremental;
  /// OptiPart refinement cap.
  int optipart_max_depth = octree::kMaxDepth;
  octree::BalanceMode balance_mode = octree::BalanceMode::kFace;
  /// Partition-quality sampling stride (1 = exact; benches at large n may
  /// sample, like OptiPart's own estimator).
  int quality_sample_stride = 1;
  /// Campaign-timeline sink: one JSONL record per completed step (plus one
  /// campaign header), streamed as the campaign runs -- long campaigns are
  /// observable mid-flight and a crash loses at most the current step.
  /// nullptr consults AMR_TIMELINE (a path, opened in append mode so
  /// multi-campaign benches interleave whole campaigns, not bytes).
  std::ostream* timeline = nullptr;
};

/// One step's accounting. Sizes are global; seconds are wall times of this
/// campaign harness (the distributed phases run p ranks on threads).
struct StepMetrics {
  int step = 0;
  double t = 0.0;               ///< campaign time in [0, 1]
  std::size_t leaves = 0;       ///< after adaptation
  std::size_t refined = 0;      ///< leaves split by the error flags
  std::size_t coarsened = 0;    ///< sibling groups merged
  std::size_t balance_splits = 0;
  std::size_t delta_inserts = 0;
  std::size_t delta_deletes = 0;
  double change_fraction = 0.0;  ///< (inserts+deletes) / previous leaves
  bool first_epoch = false;      ///< step 0: partitioned from scratch
  bool merge_route = false;      ///< incremental splice took the merge path
  bool kept_previous = false;    ///< migration-aware decision kept old cuts
  /// Elements whose owner changed between the previous and the new cuts
  /// (keyed migration_volume; meaningless on the first epoch).
  std::size_t migrated = 0;
  double load_imbalance = 1.0;
  double c_max = 0.0;
  double predicted_step_seconds = 0.0;  ///< Eq. 3 of the adopted partition
  double adapt_seconds = 0.0;
  double diff_seconds = 0.0;
  double repartition_seconds = 0.0;  ///< whole distributed sort+partition epoch
  double sort_seconds = 0.0;   ///< local splice/sort portion (max over ranks)
  double solve_seconds = 0.0;  ///< distributed matvec epoch (0 if skipped)
  simmpi::RepartitionDecision decision;  ///< incremental route only
};

struct CampaignResult {
  std::vector<StepMetrics> steps;

  [[nodiscard]] double total_repartition_seconds() const;
  [[nodiscard]] double total_sort_seconds() const;
  [[nodiscard]] double total_predicted_seconds() const;
  [[nodiscard]] double mean_change_fraction() const;  ///< over steps >= 1
};

class Driver {
 public:
  /// Builds the initial mesh: uniform at min_level, refined to the t=0
  /// error fixpoint (capped at max_level), 2:1 balanced.
  Driver(const Scenario& scenario, const sfc::Curve& curve,
         const machine::PerfModel& model, const DriverOptions& options);

  /// Advance one step; returns its metrics. Steps past options.steps keep
  /// advancing with t clamped to 1.
  StepMetrics step();

  /// Run the remaining steps of the campaign and collect the results.
  [[nodiscard]] CampaignResult run();

  [[nodiscard]] int steps_done() const { return steps_done_; }
  /// The adapted global tree (sorted, complete, 2:1 balanced).
  [[nodiscard]] const std::vector<octree::Octant>& tree() const { return tree_; }
  /// Hysteresis counters aligned with tree() (for tests).
  [[nodiscard]] std::span<const int> deref_counters() const { return deref_; }
  /// Per-rank slices of the current epoch (concatenation == tree()).
  [[nodiscard]] const std::vector<std::vector<octree::Octant>>& slices() const {
    return slices_;
  }
  [[nodiscard]] const simmpi::SplitterSet& splitters() const { return splitters_; }

  /// Fold a campaign's per-step metrics into a RunMetrics subtree
  /// ("driver" node: config, per-step children, campaign totals).
  static void append_campaign(obs::RunMetrics& node, const CampaignResult& result,
                              const DriverOptions& options, const Scenario& scenario);

  /// The timeline sink in effect (options.timeline, or the AMR_TIMELINE
  /// file the constructor opened), nullptr when the timeline is off.
  [[nodiscard]] std::ostream* timeline_sink() const { return timeline_; }

 private:
  void adapt(double t, StepMetrics& m);
  void repartition(const octree::DeltaStream& global_delta, StepMetrics& m);
  void solve_epoch(StepMetrics& m);

  Scenario scenario_;
  sfc::Curve curve_;
  machine::PerfModel model_;
  DriverOptions options_;

  std::vector<octree::Octant> tree_;
  std::vector<sfc::CurveKey> tree_keys_;
  std::vector<int> deref_;  ///< aligned with tree_

  std::vector<std::vector<octree::Octant>> slices_;
  std::vector<std::vector<sfc::CurveKey>> slice_keys_;
  simmpi::SplitterSet splitters_;
  bool have_epoch_ = false;
  int steps_done_ = 0;

  std::ostream* timeline_ = nullptr;
  std::unique_ptr<std::ofstream> owned_timeline_;  ///< AMR_TIMELINE file
};

/// Serialize one step's StepMetrics as a single campaign-timeline JSONL
/// record (one line, newline-terminated): step identity, adaptation and
/// delta sizes, the repartition route actually taken ("first" / "scratch"
/// / "merge" / "full"), keep-vs-adopt, migration volume, Eq. 3 predicted
/// vs measured seconds, wall times, and a snapshot of the cumulative
/// per-phase latency histograms from the telemetry registry. Schema in
/// DESIGN.md §16; driver_test checks each line parses and carries the
/// required fields.
void write_timeline_record(std::ostream& out, const StepMetrics& m,
                           RepartitionRoute configured_route);

}  // namespace amr::driver
