#include "driver/driver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <ostream>

#include "app/application.hpp"
#include "mesh/mesh.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"
#include "octree/adapt.hpp"
#include "octree/generate.hpp"
#include "octree/treesort.hpp"
#include "partition/metrics.hpp"
#include "partition/partition.hpp"
#include "simmpi/dist_fem.hpp"
#include "simmpi/dist_mesh.hpp"
#include "simmpi/runtime.hpp"
#include "util/timer.hpp"

namespace amr::driver {

namespace {

/// Carry per-leaf counters across an adaptation: leaves present in both
/// orders (equal keys -- keys are injective, so equal means identical)
/// keep their counter, everything the adaptation created starts at zero.
std::vector<int> remap_counters(std::span<const sfc::CurveKey> old_keys,
                                std::span<const int> old_counters,
                                std::span<const sfc::CurveKey> new_keys) {
  std::vector<int> out(new_keys.size(), 0);
  std::size_t i = 0;
  for (std::size_t j = 0; j < new_keys.size(); ++j) {
    while (i < old_keys.size() && old_keys[i] < new_keys[j]) ++i;
    if (i < old_keys.size() && old_keys[i] == new_keys[j]) out[j] = old_counters[i];
  }
  return out;
}

/// Cell center of a leaf in unit coordinates (z = 0.5 in 2D so the 3D
/// scenario fields evaluate on the mid-plane).
std::array<double, 3> center_of(const octree::Octant& o, int dim) {
  const double h = static_cast<double>(o.size()) /
                   static_cast<double>(1U << octree::kMaxDepth);
  auto c = o.anchor_unit();
  c[0] += 0.5 * h;
  c[1] += 0.5 * h;
  c[2] = dim == 3 ? c[2] + 0.5 * h : 0.5;
  return c;
}

/// Telemetry histogram ids of the driver's per-step phases (nanosecond
/// samples, cumulative over every campaign in the process).
struct PhaseMetricIds {
  obs::MetricId adapt;
  obs::MetricId diff;
  obs::MetricId repartition;
  obs::MetricId sort;
  obs::MetricId solve;
};

const PhaseMetricIds& phase_metric_ids() {
  static const PhaseMetricIds ids{
      obs::Registry::global().histogram("driver.adapt_ns"),
      obs::Registry::global().histogram("driver.diff_ns"),
      obs::Registry::global().histogram("driver.repartition_ns"),
      obs::Registry::global().histogram("driver.sort_ns"),
      obs::Registry::global().histogram("driver.solve_ns"),
  };
  return ids;
}

std::int64_t seconds_to_ns(double seconds) {
  return static_cast<std::int64_t>(std::llround(seconds * 1e9));
}

void write_phase_snapshot(std::ostream& out, const char* name, obs::MetricId id,
                          bool& first) {
  if (!first) out << ", ";
  first = false;
  out << "\"" << name << "\": ";
  obs::Registry::global().histogram_value(id).to_json(out);
}

}  // namespace

std::string to_string(RepartitionRoute route) {
  return route == RepartitionRoute::kIncremental ? "incremental" : "scratch";
}

std::string to_string(Partitioner partitioner) {
  return partitioner == Partitioner::kOptiPart ? "optipart" : "equal";
}

double CampaignResult::total_repartition_seconds() const {
  double s = 0.0;
  for (const StepMetrics& m : steps) s += m.repartition_seconds;
  return s;
}

double CampaignResult::total_sort_seconds() const {
  double s = 0.0;
  for (const StepMetrics& m : steps) s += m.sort_seconds;
  return s;
}

double CampaignResult::total_predicted_seconds() const {
  double s = 0.0;
  for (const StepMetrics& m : steps) s += m.predicted_step_seconds;
  return s;
}

double CampaignResult::mean_change_fraction() const {
  double s = 0.0;
  std::size_t n = 0;
  for (const StepMetrics& m : steps) {
    if (m.first_epoch) continue;
    s += m.change_fraction;
    ++n;
  }
  return n > 0 ? s / static_cast<double>(n) : 0.0;
}

Driver::Driver(const Scenario& scenario, const sfc::Curve& curve,
               const machine::PerfModel& model, const DriverOptions& options)
    : scenario_(scenario), curve_(curve), model_(model), options_(options) {
  assert(options_.ranks > 0 && options_.min_level >= 0 &&
         options_.min_level <= options_.max_level &&
         options_.max_level <= octree::kMaxDepth);
  tree_ = octree::uniform_octree(options_.min_level, curve_);
  octree::refine_to_fixpoint(tree_, curve_, [&](const octree::Octant& o) {
    return o.level < options_.max_level &&
           scenario_.error(o, 0.0) > options_.refine_threshold;
  });
  tree_ = octree::balance_octree(std::move(tree_), curve_, nullptr,
                                 options_.balance_mode);
  tree_keys_ = sfc::keys_of(curve_, tree_);
  deref_.assign(tree_.size(), 0);

  timeline_ = options_.timeline;
  if (timeline_ == nullptr) {
    if (const char* env = std::getenv("AMR_TIMELINE");
        env != nullptr && env[0] != '\0') {
      owned_timeline_ = std::make_unique<std::ofstream>(env, std::ios::app);
      if (*owned_timeline_) timeline_ = owned_timeline_.get();
    }
  }
  if (timeline_ != nullptr) {
    // The timeline embeds per-phase histogram snapshots, so streaming it
    // implies recording them.
    obs::set_telemetry_enabled(true);
    *timeline_ << "{\"type\": \"campaign\", \"scenario\": \""
               << to_string(scenario_.kind) << "\", \"dim\": " << scenario_.dim
               << ", \"ranks\": " << options_.ranks
               << ", \"steps\": " << options_.steps << ", \"route\": \""
               << to_string(options_.route) << "\", \"partitioner\": \""
               << to_string(options_.partitioner)
               << "\", \"min_level\": " << options_.min_level
               << ", \"max_level\": " << options_.max_level << "}\n";
    timeline_->flush();
  }
}

void Driver::adapt(double t, StepMetrics& m) {
  AMR_SPAN("driver.adapt");
  util::Timer timer;
  const int children = curve_.num_children();

  // Flag pass: refresh the hysteresis counters from this step's indicator.
  // A leaf asks to coarsen only while its error stays below the coarsen
  // threshold; any louder step resets its streak.
  std::vector<double> err(tree_.size());
  for (std::size_t i = 0; i < tree_.size(); ++i) {
    err[i] = scenario_.error(tree_[i], t);
    deref_[i] = err[i] < options_.coarsen_threshold ? deref_[i] + 1 : 0;
  }

  // Coarsen: a complete sibling group merges only when every child has
  // asked for deref_count consecutive steps and the parent stays within
  // the refinement band.
  const std::size_t before_coarsen = tree_.size();
  std::vector<octree::Octant> coarsened = octree::coarsen_octree_if(
      tree_, curve_,
      [&](const octree::Octant& parent, std::size_t group_begin) {
        if (static_cast<int>(parent.level) < options_.min_level) return false;
        for (int c = 0; c < children; ++c) {
          if (deref_[group_begin + static_cast<std::size_t>(c)] <
              options_.deref_count) {
            return false;
          }
        }
        return true;
      });
  m.coarsened = (before_coarsen - coarsened.size()) /
                static_cast<std::size_t>(children - 1);

  // Refine to the fixpoint of this step's indicator (the predicate
  // re-evaluates the field, so fresh children that are still too coarse
  // for a fast-moving feature split again within the same step).
  std::vector<octree::Octant> refined = coarsened;
  octree::refine_to_fixpoint(refined, curve_, [&](const octree::Octant& o) {
    return o.level < options_.max_level &&
           scenario_.error(o, t) > options_.refine_threshold;
  });
  m.refined =
      (refined.size() - coarsened.size()) / static_cast<std::size_t>(children - 1);

  octree::BalanceStats stats;
  std::vector<octree::Octant> balanced =
      octree::balance_octree(std::move(refined), curve_, &stats, options_.balance_mode);
  m.balance_splits = stats.leaves_split;

  // One counter remap old -> new: survivors (coarsen kept them, refine /
  // balance did not split them) carry their streak, every created leaf --
  // merged parent, refined child, balance split -- starts a fresh one.
  std::vector<sfc::CurveKey> new_keys = sfc::keys_of(curve_, balanced);
  deref_ = remap_counters(tree_keys_, deref_, new_keys);
  tree_ = std::move(balanced);
  tree_keys_ = std::move(new_keys);
  m.leaves = tree_.size();
  m.adapt_seconds = timer.seconds();
}

void Driver::repartition(const octree::DeltaStream& global_delta, StepMetrics& m) {
  AMR_SPAN("driver.repartition");
  util::Timer timer;
  const int p = options_.ranks;
  const bool scratch =
      !have_epoch_ || options_.route == RepartitionRoute::kFromScratch;

  // Previous epoch's splitters, kept for the migration accounting below.
  const std::vector<octree::Octant> previous_keys = splitters_.keys;
  const simmpi::SplitterSet previous = splitters_;

  std::vector<simmpi::DistSortReport> reports(static_cast<std::size_t>(p));
  std::vector<simmpi::DistIncrementalReport> inc_reports(static_cast<std::size_t>(p));
  std::vector<simmpi::RepartitionDecision> decisions(static_cast<std::size_t>(p));

  if (scratch) {
    // From-scratch epoch: every rank starts from its current slice with its
    // share of the delta applied positionally (step 0: equal chunks of the
    // fresh tree, no delta) and re-sorts / re-partitions from nothing.
    std::vector<std::vector<octree::Octant>> start(static_cast<std::size_t>(p));
    if (!have_epoch_) {
      const partition::Partition init =
          partition::ideal_partition(tree_.size(), p);
      for (int r = 0; r < p; ++r) {
        start[static_cast<std::size_t>(r)].assign(
            tree_.begin() + static_cast<std::ptrdiff_t>(init.offsets[r]),
            tree_.begin() + static_cast<std::ptrdiff_t>(init.offsets[r + 1]));
      }
    } else {
      const std::vector<sfc::CurveKey> ins_keys =
          sfc::keys_of(curve_, global_delta.inserts);
      for (int r = 0; r < p; ++r) {
        start[static_cast<std::size_t>(r)] = slices_[static_cast<std::size_t>(r)];
      }
      // Delete positions index the previous *global* order; peel each
      // rank's range off against its cut, erasing back-to-front so the
      // positional indices stay valid.
      for (int r = 0; r < p; ++r) {
        auto& mine = start[static_cast<std::size_t>(r)];
        const std::size_t lo = previous.cuts[static_cast<std::size_t>(r)];
        const std::size_t hi = previous.cuts[static_cast<std::size_t>(r) + 1];
        const auto begin = std::lower_bound(global_delta.delete_positions.begin(),
                                            global_delta.delete_positions.end(), lo);
        const auto end = std::lower_bound(global_delta.delete_positions.begin(),
                                          global_delta.delete_positions.end(), hi);
        for (auto it = end; it != begin;) {
          --it;
          mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(*it - lo));
        }
      }
      for (std::size_t i = 0; i < global_delta.inserts.size(); ++i) {
        const int r = previous.dest_of_key(ins_keys[i]);
        start[static_cast<std::size_t>(r)].push_back(global_delta.inserts[i]);
      }
    }

    simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
      const int r = comm.rank();
      std::vector<octree::Octant>& local = start[static_cast<std::size_t>(r)];
      if (options_.partitioner == Partitioner::kOptiPart) {
        reports[static_cast<std::size_t>(r)] = simmpi::dist_optipart(
            local, comm, curve_, model_, options_.optipart_max_depth);
      } else {
        reports[static_cast<std::size_t>(r)] =
            simmpi::dist_treesort(local, comm, curve_, options_.incremental.sort);
      }
      slices_[static_cast<std::size_t>(r)] = std::move(local);
      slice_keys_[static_cast<std::size_t>(r)] =
          sfc::keys_of(curve_, slices_[static_cast<std::size_t>(r)]);
    });
    splitters_ = reports[0].splitter_set;
    m.sort_seconds = 0.0;
    for (const auto& rep : reports) {
      m.sort_seconds = std::max(m.sort_seconds, rep.local_sort_seconds);
    }
  } else {
    // Incremental epoch: split the global delta along the previous cuts
    // (deletes are positional) and by the previous splitters (inserts may
    // land on any rank; the previous owner keeps the merges local), then
    // splice + refresh in place.
    std::vector<octree::DeltaStream> local_delta(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      const std::size_t lo = splitters_.cuts[static_cast<std::size_t>(r)];
      const std::size_t hi = splitters_.cuts[static_cast<std::size_t>(r) + 1];
      const auto begin = std::lower_bound(global_delta.delete_positions.begin(),
                                          global_delta.delete_positions.end(), lo);
      const auto end = std::lower_bound(global_delta.delete_positions.begin(),
                                        global_delta.delete_positions.end(), hi);
      auto& mine = local_delta[static_cast<std::size_t>(r)].delete_positions;
      mine.reserve(static_cast<std::size_t>(end - begin));
      for (auto it = begin; it != end; ++it) mine.push_back(*it - lo);
    }
    const std::vector<sfc::CurveKey> ins_keys =
        sfc::keys_of(curve_, global_delta.inserts);
    for (std::size_t i = 0; i < global_delta.inserts.size(); ++i) {
      const int r = splitters_.dest_of_key(ins_keys[i]);
      local_delta[static_cast<std::size_t>(r)].inserts.push_back(
          global_delta.inserts[i]);
    }

    simmpi::run_ranks(p, [&](simmpi::Comm& comm) {
      const int r = comm.rank();
      auto& local = slices_[static_cast<std::size_t>(r)];
      auto& keys = slice_keys_[static_cast<std::size_t>(r)];
      if (options_.partitioner == Partitioner::kOptiPart) {
        inc_reports[static_cast<std::size_t>(r)] = simmpi::dist_optipart_incremental(
            local, keys, comm, curve_, model_, previous,
            local_delta[static_cast<std::size_t>(r)], options_.incremental, nullptr,
            &decisions[static_cast<std::size_t>(r)]);
      } else {
        inc_reports[static_cast<std::size_t>(r)] = simmpi::dist_treesort_incremental(
            local, keys, comm, curve_, local_delta[static_cast<std::size_t>(r)],
            options_.incremental);
      }
    });
    splitters_ = inc_reports[0].sort.splitter_set;
    m.merge_route = inc_reports[0].merge_path;
    m.decision = decisions[0];
    m.kept_previous = decisions[0].kept_previous;
    m.sort_seconds = 0.0;
    for (const auto& rep : inc_reports) {
      m.sort_seconds = std::max(m.sort_seconds, rep.merge_seconds);
    }
  }

  m.first_epoch = !have_epoch_;
  if (have_epoch_) {
    m.migrated = partition::migration_volume(
        tree_, tree_keys_, curve_, previous_keys,
        partition::Partition{splitters_.cuts});
  }
  have_epoch_ = true;
  m.repartition_seconds = timer.seconds();

  const partition::Partition part{splitters_.cuts};
  partition::QualityOptions quality;
  quality.sample_stride = options_.quality_sample_stride;
  const partition::Metrics metrics =
      partition::compute_metrics(tree_, curve_, part, quality);
  m.load_imbalance = metrics.load_imbalance;
  m.c_max = metrics.c_max;
  m.predicted_step_seconds = metrics.predicted_time(model_);
}

void Driver::solve_epoch(StepMetrics& m) {
  if (options_.matvec_iterations <= 0) return;
  AMR_SPAN("driver.solve");
  util::Timer timer;
  const double t = m.t;
  const app::Application& application =
      options_.application != nullptr ? *options_.application : app::matvec_app();
  simmpi::run_ranks(options_.ranks, [&](simmpi::Comm& comm) {
    const int r = comm.rank();
    const mesh::LocalMesh mesh = simmpi::dist_build_local_mesh(
        slices_[static_cast<std::size_t>(r)], splitters_.keys, comm, curve_);
    std::vector<double> u(mesh.elements.size());
    for (std::size_t i = 0; i < mesh.elements.size(); ++i) {
      u[i] = scenario_.value(center_of(mesh.elements[i], curve_.dim()), t);
    }
    application.run_epoch(mesh, curve_, comm, options_.matvec_iterations, u);
  });
  m.solve_seconds = timer.seconds();
}

StepMetrics Driver::step() {
  StepMetrics m;
  m.step = steps_done_;
  const int last = options_.steps - 1;
  m.t = last > 0 ? options_.t_end * std::min(1.0, static_cast<double>(steps_done_) /
                                                      static_cast<double>(last))
                 : 0.0;

  if (slices_.empty()) {
    slices_.resize(static_cast<std::size_t>(options_.ranks));
    slice_keys_.resize(static_cast<std::size_t>(options_.ranks));
  }

  octree::DeltaStream delta;
  if (!have_epoch_) {
    // Step 0: the constructor already built the t=0 mesh; establish the
    // first epoch from scratch (there is no previous order to diff).
    m.leaves = tree_.size();
  } else {
    const std::vector<octree::Octant> old_tree = tree_;
    const std::vector<sfc::CurveKey> old_keys = tree_keys_;
    adapt(m.t, m);
    {
      AMR_SPAN("driver.diff");
      util::Timer timer;
      delta = octree::diff_sorted(old_tree, old_keys, tree_, tree_keys_);
      m.diff_seconds = timer.seconds();
    }
    m.delta_inserts = delta.inserts.size();
    m.delta_deletes = delta.delete_positions.size();
    m.change_fraction =
        old_tree.empty()
            ? 0.0
            : static_cast<double>(delta.inserts.size() +
                                  delta.delete_positions.size()) /
                  static_cast<double>(old_tree.size());
  }

  repartition(delta, m);
  solve_epoch(m);
  ++steps_done_;

  // Feed the cumulative per-phase histograms (no-ops when telemetry is
  // off) and stream the step's timeline record before handing metrics
  // back, so a campaign that dies mid-run has every completed step on
  // disk.
  const PhaseMetricIds& ids = phase_metric_ids();
  obs::Registry& registry = obs::Registry::global();
  registry.observe(ids.adapt, seconds_to_ns(m.adapt_seconds));
  registry.observe(ids.diff, seconds_to_ns(m.diff_seconds));
  registry.observe(ids.repartition, seconds_to_ns(m.repartition_seconds));
  registry.observe(ids.sort, seconds_to_ns(m.sort_seconds));
  registry.observe(ids.solve, seconds_to_ns(m.solve_seconds));
  if (timeline_ != nullptr) {
    write_timeline_record(*timeline_, m, options_.route);
    timeline_->flush();
  }
  return m;
}

CampaignResult Driver::run() {
  CampaignResult result;
  result.steps.reserve(static_cast<std::size_t>(options_.steps));
  while (steps_done_ < options_.steps) result.steps.push_back(step());
  return result;
}

void Driver::append_campaign(obs::RunMetrics& node, const CampaignResult& result,
                             const DriverOptions& options, const Scenario& scenario) {
  obs::RunMetrics& d = node.child("driver");
  obs::RunMetrics& config = d.child("config");
  config.set("ranks", options.ranks);
  config.set("steps", options.steps);
  config.set("min_level", options.min_level);
  config.set("max_level", options.max_level);
  config.set("deref_count", options.deref_count);
  config.set("route_incremental",
             options.route == RepartitionRoute::kIncremental ? 1.0 : 0.0);
  config.set("partitioner_optipart",
             options.partitioner == Partitioner::kOptiPart ? 1.0 : 0.0);
  config.set("scenario", static_cast<double>(static_cast<int>(scenario.kind)));
  config.set("dim", scenario.dim);

  for (const StepMetrics& m : result.steps) {
    obs::RunMetrics& s = d.child("step." + std::to_string(m.step));
    s.set("t", m.t);
    s.set("leaves", static_cast<double>(m.leaves));
    s.set("refined", static_cast<double>(m.refined));
    s.set("coarsened", static_cast<double>(m.coarsened));
    s.set("balance_splits", static_cast<double>(m.balance_splits));
    s.set("delta_inserts", static_cast<double>(m.delta_inserts));
    s.set("delta_deletes", static_cast<double>(m.delta_deletes));
    s.set("change_fraction", m.change_fraction);
    s.set("first_epoch", m.first_epoch ? 1.0 : 0.0);
    s.set("merge_route", m.merge_route ? 1.0 : 0.0);
    s.set("kept_previous", m.kept_previous ? 1.0 : 0.0);
    s.set("migrated", static_cast<double>(m.migrated));
    s.set("load_imbalance", m.load_imbalance);
    s.set("c_max", m.c_max);
    s.set("predicted_step_seconds", m.predicted_step_seconds);
    s.set("adapt_seconds", m.adapt_seconds);
    s.set("diff_seconds", m.diff_seconds);
    s.set("repartition_seconds", m.repartition_seconds);
    s.set("sort_seconds", m.sort_seconds);
    s.set("solve_seconds", m.solve_seconds);
  }

  obs::RunMetrics& totals = d.child("totals");
  totals.set("steps", static_cast<double>(result.steps.size()));
  totals.set("repartition_seconds", result.total_repartition_seconds());
  totals.set("sort_seconds", result.total_sort_seconds());
  totals.set("predicted_seconds", result.total_predicted_seconds());
  totals.set("mean_change_fraction", result.mean_change_fraction());
}

void write_timeline_record(std::ostream& out, const StepMetrics& m,
                           RepartitionRoute configured_route) {
  // The route the step actually took, which StepMetrics alone cannot
  // name: step 0 always partitions from scratch, and the incremental
  // route may have spliced (merge) or fallen back to a full local sort.
  const char* route = "full";
  if (m.first_epoch) {
    route = "first";
  } else if (configured_route == RepartitionRoute::kFromScratch) {
    route = "scratch";
  } else if (m.merge_route) {
    route = "merge";
  }

  const double measured = m.adapt_seconds + m.diff_seconds +
                          m.repartition_seconds + m.solve_seconds;
  out << "{\"type\": \"step\", \"step\": " << m.step << ", \"t\": " << m.t
      << ", \"route\": \"" << route << "\", \"leaves\": " << m.leaves
      << ", \"refined\": " << m.refined << ", \"coarsened\": " << m.coarsened
      << ", \"balance_splits\": " << m.balance_splits
      << ", \"delta_inserts\": " << m.delta_inserts
      << ", \"delta_deletes\": " << m.delta_deletes
      << ", \"change_fraction\": " << m.change_fraction
      << ", \"kept_previous\": " << (m.kept_previous ? "true" : "false")
      << ", \"migrated\": " << m.migrated
      << ", \"load_imbalance\": " << m.load_imbalance << ", \"c_max\": " << m.c_max
      << ", \"predicted_step_seconds\": " << m.predicted_step_seconds
      << ", \"measured_step_seconds\": " << measured
      << ", \"adapt_seconds\": " << m.adapt_seconds
      << ", \"diff_seconds\": " << m.diff_seconds
      << ", \"repartition_seconds\": " << m.repartition_seconds
      << ", \"sort_seconds\": " << m.sort_seconds
      << ", \"solve_seconds\": " << m.solve_seconds << ", \"phases\": {";
  const PhaseMetricIds& ids = phase_metric_ids();
  bool first = true;
  write_phase_snapshot(out, "adapt_ns", ids.adapt, first);
  write_phase_snapshot(out, "diff_ns", ids.diff, first);
  write_phase_snapshot(out, "repartition_ns", ids.repartition, first);
  write_phase_snapshot(out, "sort_ns", ids.sort, first);
  write_phase_snapshot(out, "solve_ns", ids.solve, first);
  out << "}}\n";
}

}  // namespace amr::driver
