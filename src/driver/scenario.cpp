#include "driver/scenario.hpp"

#include <cmath>

namespace amr::driver {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Smooth step: 0 far below the edge, 1 far above, transition width w.
double edge(double signed_distance, double w) {
  return 0.5 * (1.0 + std::tanh(signed_distance / w));
}

double sq(double v) { return v * v; }

}  // namespace

std::string to_string(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kMovingGaussian: return "gaussian";
    case ScenarioKind::kBlastShell: return "blast";
    case ScenarioKind::kSlottedCylinder: return "slotted";
  }
  return "?";
}

std::optional<ScenarioKind> scenario_from_string(const std::string& name) {
  if (name == "gaussian") return ScenarioKind::kMovingGaussian;
  if (name == "blast") return ScenarioKind::kBlastShell;
  if (name == "slotted") return ScenarioKind::kSlottedCylinder;
  return std::nullopt;
}

double Scenario::value(const std::array<double, 3>& x, double t) const {
  switch (kind) {
    case ScenarioKind::kMovingGaussian: {
      // Bump center sweeps the main diagonal from 0.2 to 0.8.
      const double c = 0.2 + 0.6 * t;
      double d2 = sq(x[0] - c) + sq(x[1] - c);
      if (dim == 3) d2 += sq(x[2] - 0.5);
      const double sigma = 2.0 * width;
      return std::exp(-d2 / (2.0 * sigma * sigma));
    }
    case ScenarioKind::kBlastShell: {
      // Shell radius grows from 0.1 to 0.4: the refined band expands and
      // its area (so the leaf count) grows with it.
      double d2 = sq(x[0] - 0.5) + sq(x[1] - 0.5);
      if (dim == 3) d2 += sq(x[2] - 0.5);
      const double r = 0.1 + 0.3 * t;
      return std::exp(-sq((std::sqrt(d2) - r) / width));
    }
    case ScenarioKind::kSlottedCylinder: {
      // A disk of radius 0.15 orbiting the domain center at radius 0.25,
      // with a slot of half-width 0.025 cut from its leading half. The
      // disk rotates rigidly (one revolution over the campaign), so the
      // slot's orientation co-rotates: u is the along-slot coordinate.
      const double theta = 2.0 * kPi * t;
      const double cx = 0.5 + 0.25 * std::cos(theta);
      const double cy = 0.5 + 0.25 * std::sin(theta);
      const double px = x[0] - cx;
      const double py = x[1] - cy;
      double d2 = sq(px) + sq(py);
      if (dim == 3) d2 += sq(x[2] - 0.5);
      const double disk = edge(0.15 - std::sqrt(d2), width);
      // Rotate into the disk frame: u across the slot, v along it.
      const double u = px * std::cos(theta) + py * std::sin(theta);
      const double v = -px * std::sin(theta) + py * std::cos(theta);
      const double slot =
          edge(0.025 - std::abs(u), width) * edge(v, width);
      return disk * (1.0 - slot);
    }
  }
  return 0.0;
}

double Scenario::error(const octree::Octant& o, double t) const {
  const double h = static_cast<double>(o.size()) /
                   static_cast<double>(1U << octree::kMaxDepth);
  auto center = o.anchor_unit();
  center[0] += 0.5 * h;
  center[1] += 0.5 * h;
  if (dim == 3) center[2] += 0.5 * h;
  const double phi_c = value(center, t);
  double err = 0.0;
  for (int axis = 0; axis < dim; ++axis) {
    for (const double sign : {-0.5, 0.5}) {
      auto s = center;
      s[static_cast<std::size_t>(axis)] += sign * h;
      err = std::max(err, std::abs(value(s, t) - phi_c));
    }
  }
  return err;
}

Scenario make_scenario(ScenarioKind kind, int dim) {
  Scenario s;
  s.kind = kind;
  s.dim = dim;
  return s;
}

std::array<ScenarioKind, 3> all_scenarios() {
  return {ScenarioKind::kMovingGaussian, ScenarioKind::kBlastShell,
          ScenarioKind::kSlottedCylinder};
}

}  // namespace amr::driver
