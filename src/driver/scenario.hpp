// Time-dependent scenario generators for the dynamic AMR driver.
//
// A Scenario is an analytic field phi(x, t) over the unit cube whose sharp
// feature moves as t advances from 0 to 1 -- the solution stand-in that
// drives refinement. The three kinds cover the classic dynamic-AMR motions
// (cf. the Athena problem generators referenced in SNIPPETS.md §1-2):
//
//   kMovingGaussian   a Gaussian bump translating along the main diagonal
//                     (the amr_cycle example's moving front, made a field)
//   kBlastShell       a thin spherical shell expanding from the center --
//                     the blast-wave shape: the refined region *grows*
//   kSlottedCylinder  a Zalesak-style slotted disk rotating about the
//                     domain center -- rigid rotation, so the refined
//                     region translates without changing size, and the
//                     slot keeps a sub-feature in play
//
// The driver never sees the field directly: it asks for an error indicator
// per leaf, a face-sampled gradient estimate err = max_f |phi(face_f) -
// phi(center)| (the discrete-derivative detector of Athena's
// RefinementCondition, SNIPPETS.md §1). err scales with h*|grad phi|, so
// refining a flagged cell halves its indicator -- exactly the feedback a
// threshold pair (refine above, coarsen below) needs to converge to a
// graded mesh that tracks the feature.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "octree/octant.hpp"

namespace amr::driver {

enum class ScenarioKind { kMovingGaussian, kBlastShell, kSlottedCylinder };

[[nodiscard]] std::string to_string(ScenarioKind kind);
[[nodiscard]] std::optional<ScenarioKind> scenario_from_string(const std::string& name);

struct Scenario {
  ScenarioKind kind = ScenarioKind::kMovingGaussian;
  int dim = 3;

  /// Feature sharpness: the length scale of the field's transition band.
  /// Cells with h >> width get large indicators near the feature.
  double width = 0.03;

  /// Field value at unit-cube point `x` and campaign time `t` in [0, 1].
  [[nodiscard]] double value(const std::array<double, 3>& x, double t) const;

  /// Face-sampled error indicator for a leaf: the largest field difference
  /// between the cell center and its 2*dim face midpoints. In [0, ~1] for
  /// the unit-amplitude fields above.
  [[nodiscard]] double error(const octree::Octant& o, double t) const;
};

/// A scenario of the given kind with the default feature parameters.
[[nodiscard]] Scenario make_scenario(ScenarioKind kind, int dim = 3);

/// All three kinds, for campaign sweeps.
[[nodiscard]] std::array<ScenarioKind, 3> all_scenarios();

}  // namespace amr::driver
