// Skilling's algorithm for the Hilbert curve ("Programming the Hilbert
// curve", AIP Conf. Proc. 707, 2004).
//
// This is the reference implementation of the coordinate <-> Hilbert-index
// mapping. It is deliberately independent of the table-driven machinery in
// hilbert.hpp: the state tables are *generated from* and *tested against*
// these routines, so a bug in the fast path cannot hide.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>

namespace amr::sfc {

/// Maximum refinement depth supported by the 64-bit index routines below:
/// dim * bits must be <= 64.
inline constexpr int kSkillingMaxBits = 21;

/// In-place conversion of axes to the "transposed" Hilbert representation.
/// `x` holds one coordinate per dimension, each with `bits` significant bits.
template <int Dim>
constexpr void axes_to_transpose(std::array<std::uint32_t, Dim>& x, int bits) {
  const std::uint32_t m = std::uint32_t{1} << (bits - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < Dim; ++i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;  // invert
      } else {
        const std::uint32_t t = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<std::size_t>(i)] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < Dim; ++i) {
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  }
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if (x[Dim - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < Dim; ++i) x[static_cast<std::size_t>(i)] ^= t;
}

/// Inverse of axes_to_transpose.
template <int Dim>
constexpr void transpose_to_axes(std::array<std::uint32_t, Dim>& x, int bits) {
  const std::uint32_t n = std::uint32_t{2} << (bits - 1);
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[Dim - 1] >> 1;
  for (int i = Dim - 1; i > 0; --i) {
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  }
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != n; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = Dim - 1; i >= 0; --i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<std::size_t>(i)] ^= t;
      }
    }
  }
}

/// Pack the transposed representation into a single index: the most
/// significant bit of the index is bit (bits-1) of x[0], then bit (bits-1)
/// of x[1], ... down to bit 0 of x[Dim-1].
template <int Dim>
[[nodiscard]] constexpr std::uint64_t transpose_to_index(
    const std::array<std::uint32_t, Dim>& x, int bits) {
  std::uint64_t index = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < Dim; ++i) {
      index = (index << 1) |
              ((x[static_cast<std::size_t>(i)] >> b) & std::uint32_t{1});
    }
  }
  return index;
}

/// Unpack a Hilbert index into the transposed representation.
template <int Dim>
[[nodiscard]] constexpr std::array<std::uint32_t, Dim> index_to_transpose(
    std::uint64_t index, int bits) {
  std::array<std::uint32_t, Dim> x{};
  for (int b = 0; b < bits; ++b) {
    for (int i = Dim - 1; i >= 0; --i) {
      x[static_cast<std::size_t>(i)] |= static_cast<std::uint32_t>(index & 1U) << b;
      index >>= 1;
    }
  }
  return x;
}

/// Hilbert index of the point with the given coordinates on a 2^bits grid.
template <int Dim>
[[nodiscard]] constexpr std::uint64_t hilbert_index(std::array<std::uint32_t, Dim> coords,
                                                    int bits) {
  assert(bits >= 1 && Dim * bits <= 64);
  axes_to_transpose<Dim>(coords, bits);
  return transpose_to_index<Dim>(coords, bits);
}

/// Coordinates of the point with the given Hilbert index on a 2^bits grid.
template <int Dim>
[[nodiscard]] constexpr std::array<std::uint32_t, Dim> hilbert_coords(std::uint64_t index,
                                                                      int bits) {
  assert(bits >= 1 && Dim * bits <= 64);
  auto x = index_to_transpose<Dim>(index, bits);
  transpose_to_axes<Dim>(x, bits);
  return x;
}

/// Morton (Z-order) index: plain bit interleaving, x least significant.
template <int Dim>
[[nodiscard]] constexpr std::uint64_t morton_index(
    const std::array<std::uint32_t, Dim>& coords, int bits) {
  assert(bits >= 1 && Dim * bits <= 64);
  std::uint64_t index = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = Dim - 1; i >= 0; --i) {
      index = (index << 1) |
              ((coords[static_cast<std::size_t>(i)] >> b) & std::uint32_t{1});
    }
  }
  return index;
}

}  // namespace amr::sfc
